// Active probing: the second signal feeding the breakers. Population-level
// outcome aggregation (guard.go) only sees providers users are loading from;
// a provider that died *while quarantined* would never produce another
// outcome and the breaker could only advance blind. The prober closes the
// loop by periodically fetching a probe object from each alternate provider
// through an ordinary HTTP transport — which makes it deterministic under
// internal/netsim and internal/faultinject, both of which inject at the
// transport layer.

package guard

import (
	"context"
	"io"
	"net/http"
	"net/url"
	"sort"
	"sync"
	"time"
)

// Prober periodically fetches one probe URL per alternate provider and
// reports the outcome. It holds no breaker state itself: Targets supplies
// the provider → candidate-URL map (typically from the engine's rule set)
// and Report receives each outcome (typically Engine.ObserveProviderOutcome,
// so probe results flow through exactly the same breaker transitions as
// user reports).
type Prober struct {
	// Targets returns the providers to probe, each with candidate URLs in
	// preference order. Called once per probe cycle.
	Targets func() map[string][]string
	// Report receives one outcome per probed provider: good means the
	// probe object was fetched without server failure; deltaMs is the
	// fetch latency.
	Report func(provider string, good bool, deltaMs float64)
	// Interval between probe cycles. Zero disables Start (ProbeOnce still
	// works for manual/simulated probing).
	Interval time.Duration
	// Timeout bounds each individual probe fetch. Default 2s.
	Timeout time.Duration
	// Client issues the probe requests. Default http.DefaultClient. Tests
	// and simulations swap in a client whose transport is netsim- or
	// faultinject-backed.
	Client *http.Client
	// Resolve optionally maps a logical provider hostname to a dialable
	// host:port (mirrors oak.Client's resolver, for simulated networks).
	// Returning false skips the provider.
	Resolve func(host string) (string, bool)
	// Logf receives probe errors. Default: silent.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	stop chan struct{}
	done chan struct{}
}

// Start launches the probe loop in a goroutine. It is a no-op when the
// prober is already running, has no Interval, or is missing Targets/Report.
func (p *Prober) Start() {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.stop != nil || p.Interval <= 0 || p.Targets == nil || p.Report == nil {
		return
	}
	p.stop = make(chan struct{})
	p.done = make(chan struct{})
	go p.loop(p.stop, p.done)
}

// Stop halts the probe loop and waits for the in-flight cycle to finish.
// Safe to call when not running.
func (p *Prober) Stop() {
	p.mu.Lock()
	stop, done := p.stop, p.done
	p.stop, p.done = nil, nil
	p.mu.Unlock()
	if stop == nil {
		return
	}
	close(stop)
	<-done
}

func (p *Prober) loop(stop <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	t := time.NewTicker(p.Interval)
	defer t.Stop()
	for {
		select {
		case <-stop:
			return
		case <-t.C:
			p.ProbeOnce()
		}
	}
}

// ProbeOnce runs a single probe cycle synchronously: every provider from
// Targets is probed (first candidate URL, in sorted provider order for
// determinism) and its outcome handed to Report.
func (p *Prober) ProbeOnce() {
	if p.Targets == nil || p.Report == nil {
		return
	}
	targets := p.Targets()
	providers := make([]string, 0, len(targets))
	for prov, urls := range targets {
		if len(urls) > 0 {
			providers = append(providers, prov)
		}
	}
	sort.Strings(providers)
	for _, prov := range providers {
		good, deltaMs, ok := p.probe(prov, targets[prov][0])
		if ok {
			p.Report(prov, good, deltaMs)
		}
	}
}

// probe fetches one URL; ok is false when the probe could not even be
// attempted (unparseable URL, unresolvable host) — no outcome is reported
// then, so configuration mistakes never trip breakers.
func (p *Prober) probe(provider, rawURL string) (good bool, deltaMs float64, ok bool) {
	u, err := url.Parse(rawURL)
	if err != nil || u.Host == "" {
		p.logf("guard: probe %s: bad url %q: %v", provider, rawURL, err)
		return false, 0, false
	}
	if p.Resolve != nil {
		addr, found := p.Resolve(u.Hostname())
		if !found {
			return false, 0, false
		}
		u.Host = addr
	}
	timeout := p.Timeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	client := p.Client
	if client == nil {
		client = http.DefaultClient
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u.String(), nil)
	if err != nil {
		p.logf("guard: probe %s: %v", provider, err)
		return false, 0, false
	}
	req.Host = u.Hostname() // preserve the logical host when resolved
	start := time.Now()
	resp, err := client.Do(req)
	elapsed := float64(time.Since(start)) / float64(time.Millisecond)
	if err != nil {
		p.logf("guard: probe %s: %v", provider, err)
		return false, elapsed, true
	}
	_, copyErr := io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20))
	resp.Body.Close()
	if copyErr != nil {
		p.logf("guard: probe %s: body: %v", provider, copyErr)
		return false, elapsed, true
	}
	return resp.StatusCode < 500, elapsed, true
}

func (p *Prober) logf(format string, args ...any) {
	if p.Logf != nil {
		p.Logf(format, args...)
	}
}
