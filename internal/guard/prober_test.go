package guard

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"oak/internal/faultinject"
)

// recorder collects Report callbacks.
type recorder struct {
	mu       sync.Mutex
	outcomes map[string][]bool
}

func newRecorder() *recorder { return &recorder{outcomes: make(map[string][]bool)} }

func (r *recorder) report(provider string, good bool, deltaMs float64) {
	r.mu.Lock()
	r.outcomes[provider] = append(r.outcomes[provider], good)
	r.mu.Unlock()
}

func (r *recorder) get(provider string) []bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]bool(nil), r.outcomes[provider]...)
}

func TestProbeOnce(t *testing.T) {
	okSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("probe ok"))
	}))
	defer okSrv.Close()
	deadSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "down", http.StatusInternalServerError)
	}))
	defer deadSrv.Close()

	resolve := func(host string) (string, bool) {
		switch host {
		case "good.example":
			return hostPort(t, okSrv.URL), true
		case "dead.example":
			return hostPort(t, deadSrv.URL), true
		default:
			return "", false
		}
	}

	rec := newRecorder()
	p := &Prober{
		Targets: func() map[string][]string {
			return map[string][]string{
				"good.example":    {"http://good.example/lib.js"},
				"dead.example":    {"http://dead.example/lib.js"},
				"unknown.example": {"http://unknown.example/lib.js"}, // unresolvable: skipped
				"empty.example":   {},                                // no URLs: skipped
			}
		},
		Report:  rec.report,
		Resolve: resolve,
		Timeout: 2 * time.Second,
	}
	p.ProbeOnce()

	if got := rec.get("good.example"); len(got) != 1 || !got[0] {
		t.Fatalf("good.example outcomes = %v", got)
	}
	if got := rec.get("dead.example"); len(got) != 1 || got[0] {
		t.Fatalf("dead.example outcomes = %v", got)
	}
	if got := rec.get("unknown.example"); len(got) != 0 {
		t.Fatalf("unresolvable provider reported: %v", got)
	}
	if got := rec.get("empty.example"); len(got) != 0 {
		t.Fatalf("URL-less provider reported: %v", got)
	}
}

// TestProbeFaultInjection runs probes through a deterministic fault-injecting
// transport: with ErrorRate 1 every probe fails and reports bad.
func TestProbeFaultInjection(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	rec := newRecorder()
	p := &Prober{
		Targets: func() map[string][]string {
			return map[string][]string{"cdn.example": {"http://cdn.example/lib.js"}}
		},
		Report: rec.report,
		Resolve: func(string) (string, bool) {
			return hostPort(t, srv.URL), true
		},
		Client: &http.Client{Transport: &faultinject.Transport{
			Base:      http.DefaultTransport,
			Seed:      1,
			ErrorRate: 1,
		}},
	}
	p.ProbeOnce()
	if got := rec.get("cdn.example"); len(got) != 1 || got[0] {
		t.Fatalf("outcomes under ErrorRate=1: %v, want one bad", got)
	}
}

func TestProberStartStop(t *testing.T) {
	var hits atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		w.Write([]byte("ok"))
	}))
	defer srv.Close()

	rec := newRecorder()
	p := &Prober{
		Targets: func() map[string][]string {
			return map[string][]string{"cdn.example": {srv.URL + "/probe.js"}}
		},
		Report:   rec.report,
		Interval: 5 * time.Millisecond,
	}
	p.Start()
	p.Start() // idempotent
	deadline := time.Now().Add(2 * time.Second)
	for hits.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	p.Stop()
	p.Stop() // idempotent
	if hits.Load() < 2 {
		t.Fatalf("prober hit the target %d times, want >= 2", hits.Load())
	}
	settled := hits.Load()
	time.Sleep(25 * time.Millisecond)
	if hits.Load() != settled {
		t.Fatal("prober kept probing after Stop")
	}
	if got := rec.get("cdn.example"); len(got) == 0 || !got[0] {
		t.Fatalf("outcomes = %v", got)
	}
}

func TestProberMisconfiguredStart(t *testing.T) {
	p := &Prober{Interval: time.Millisecond} // no Targets/Report
	p.Start()                                // must not panic or spin
	p.Stop()
	(&Prober{}).ProbeOnce() // no-op
}

func hostPort(t *testing.T, rawURL string) string {
	t.Helper()
	u, err := url.Parse(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}
