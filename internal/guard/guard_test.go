package guard

import (
	"encoding/json"
	"sync"
	"testing"
	"time"
)

// testClock is a manually advanced clock for deterministic cool-downs.
type testClock struct {
	mu  sync.Mutex
	now time.Time
}

func newTestClock() *testClock {
	return &testClock{now: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	c.now = c.now.Add(d)
	c.mu.Unlock()
}

func newTestSet(clk *testClock) *Set {
	return New(Config{
		TripThreshold:    3,
		OpenFor:          time.Minute,
		HalfOpenCanaries: 2,
		CloseAfter:       2,
		PanicThreshold:   2,
		Now:              clk.Now,
	})
}

func TestBreakerLifecycle(t *testing.T) {
	clk := newTestClock()
	s := newTestSet(clk)

	// Unknown provider: closed, admits, good outcomes are no-ops.
	if d := s.Allow("cdn.example"); !d.Admit || d.Canary || d.State != Closed {
		t.Fatalf("unknown provider decision = %+v", d)
	}
	if tr := s.Observe("cdn.example", true, 1); tr != TransitionNone {
		t.Fatalf("good outcome on unknown provider: transition %v", tr)
	}
	if got := len(s.Snapshot()); got != 0 {
		t.Fatalf("good outcome should not create a breaker, snapshot has %d", got)
	}

	// Bad outcomes below threshold: still closed, still admitting.
	s.Observe("cdn.example", false, 40)
	s.Observe("cdn.example", false, 41)
	if st := s.State("cdn.example"); st != Closed {
		t.Fatalf("state after 2 bad = %v, want Closed", st)
	}
	if d := s.Allow("cdn.example"); !d.Admit {
		t.Fatal("closed breaker must admit")
	}

	// A good outcome resets the consecutive count.
	s.Observe("cdn.example", true, 1)
	s.Observe("cdn.example", false, 40)
	s.Observe("cdn.example", false, 41)
	if st := s.State("cdn.example"); st != Closed {
		t.Fatal("good outcome should have reset the bad streak")
	}

	// Third consecutive bad trips.
	if tr := s.Observe("cdn.example", false, 42); tr != TransitionTrip {
		t.Fatalf("3rd consecutive bad: transition %v, want Trip", tr)
	}
	if d := s.Allow("cdn.example"); d.Admit || d.State != Open {
		t.Fatalf("open breaker decision = %+v", d)
	}
	if open := s.OpenProviders(); len(open) != 1 || open[0] != "cdn.example" {
		t.Fatalf("OpenProviders = %v", open)
	}
	// Outcomes while open are stale and ignored.
	if tr := s.Observe("cdn.example", true, 1); tr != TransitionNone {
		t.Fatalf("stale outcome while open: transition %v", tr)
	}

	// Cool-down not elapsed: still denied.
	clk.Advance(30 * time.Second)
	if d := s.Allow("cdn.example"); d.Admit {
		t.Fatal("admitted before cool-down elapsed")
	}

	// Cool-down elapsed: half-open, two canaries then denial.
	clk.Advance(31 * time.Second)
	d1 := s.Allow("cdn.example")
	d2 := s.Allow("cdn.example")
	d3 := s.Allow("cdn.example")
	if !d1.Admit || !d1.Canary || !d2.Admit || !d2.Canary {
		t.Fatalf("canary decisions = %+v, %+v", d1, d2)
	}
	if d3.Admit {
		t.Fatalf("third activation admitted past canary budget: %+v", d3)
	}
	if d3.State != HalfOpen {
		t.Fatalf("budget-exhausted state = %v, want HalfOpen", d3.State)
	}

	// One good canary outcome: not enough to close.
	if tr := s.Observe("cdn.example", true, 2); tr != TransitionNone {
		t.Fatalf("1st good canary transition %v", tr)
	}
	// Second closes.
	if tr := s.Observe("cdn.example", true, 2); tr != TransitionClose {
		t.Fatalf("2nd good canary transition %v, want Close", tr)
	}
	if st := s.State("cdn.example"); st != Closed {
		t.Fatalf("state after close = %v", st)
	}
	if d := s.Allow("cdn.example"); !d.Admit || d.Canary {
		t.Fatalf("closed-after-recovery decision = %+v", d)
	}
}

func TestHalfOpenBadReopens(t *testing.T) {
	clk := newTestClock()
	s := newTestSet(clk)
	for i := 0; i < 3; i++ {
		s.Observe("cdn.example", false, 50)
	}
	clk.Advance(2 * time.Minute)
	if d := s.Allow("cdn.example"); !d.Canary {
		t.Fatalf("want canary admission, got %+v", d)
	}
	if tr := s.Observe("cdn.example", false, 60); tr != TransitionReopen {
		t.Fatalf("bad canary transition %v, want Reopen", tr)
	}
	if d := s.Allow("cdn.example"); d.Admit {
		t.Fatal("reopened breaker admitted")
	}
	// The reopen starts a fresh cool-down.
	clk.Advance(2 * time.Minute)
	if d := s.Allow("cdn.example"); !d.Admit || !d.Canary {
		t.Fatalf("post-reopen cool-down decision = %+v", d)
	}
}

func TestForceOpenForceClose(t *testing.T) {
	clk := newTestClock()
	s := newTestSet(clk)
	if !s.ForceOpen("cdn.example") {
		t.Fatal("ForceOpen on fresh provider should report a transition")
	}
	if s.ForceOpen("cdn.example") {
		t.Fatal("ForceOpen on already-open provider should report false")
	}
	if d := s.Allow("cdn.example"); d.Admit {
		t.Fatal("force-opened breaker admitted")
	}
	if !s.ForceClose("cdn.example") {
		t.Fatal("ForceClose on open provider should report a transition")
	}
	if s.ForceClose("cdn.example") {
		t.Fatal("ForceClose on closed provider should report false")
	}
	if d := s.Allow("cdn.example"); !d.Admit {
		t.Fatal("force-closed breaker denied")
	}
	// ForceClose also clears a pending bad streak.
	s.Observe("cdn.example", false, 10)
	s.Observe("cdn.example", false, 10)
	s.ForceClose("cdn.example")
	s.Observe("cdn.example", false, 10)
	if st := s.State("cdn.example"); st != Closed {
		t.Fatal("bad streak should have been reset by ForceClose")
	}
}

func TestRuleQuarantine(t *testing.T) {
	s := newTestSet(newTestClock()) // PanicThreshold 2
	if s.ObserveRulePanic("r1") {
		t.Fatal("first panic should not quarantine")
	}
	if s.RuleQuarantined("r1") {
		t.Fatal("not yet quarantined")
	}
	if !s.ObserveRulePanic("r1") {
		t.Fatal("second panic should quarantine")
	}
	if s.ObserveRulePanic("r1") {
		t.Fatal("crossing the threshold reports true exactly once")
	}
	if !s.RuleQuarantined("r1") {
		t.Fatal("rule should be quarantined")
	}
	if got := s.QuarantinedRules(); len(got) != 1 || got[0] != "r1" {
		t.Fatalf("QuarantinedRules = %v", got)
	}
	if s.QuarantineRule("r1") {
		t.Fatal("manual quarantine of quarantined rule reports false")
	}
	s.ReleaseRule("r1")
	if s.RuleQuarantined("r1") {
		t.Fatal("released rule still quarantined")
	}
	if !s.QuarantineRule("r2") {
		t.Fatal("manual quarantine of fresh rule reports true")
	}
	if !s.RuleQuarantined("r2") {
		t.Fatal("manually quarantined rule not quarantined")
	}
}

func TestExportImportRoundTrip(t *testing.T) {
	clk := newTestClock()
	s := newTestSet(clk)

	// Healthy set exports nil.
	if p := s.Export(); p != nil {
		t.Fatalf("healthy export = %+v, want nil", p)
	}
	// Good outcomes and resolved streaks keep it nil.
	s.Observe("cdn.example", false, 5)
	s.Observe("cdn.example", true, 1)
	if p := s.Export(); p != nil {
		t.Fatalf("reset-streak export = %+v, want nil", p)
	}

	// Build interesting state: one open, one mid-streak, one quarantined rule.
	for i := 0; i < 3; i++ {
		s.Observe("dead.example", false, 90)
	}
	s.Observe("slow.example", false, 20)
	s.ObserveRulePanic("r1")
	s.ObserveRulePanic("r1")

	p := s.Export()
	if p == nil {
		t.Fatal("export = nil with open breaker")
	}
	if len(p.Breakers) != 2 || p.Breakers[0].Provider != "dead.example" || p.Breakers[1].Provider != "slow.example" {
		t.Fatalf("breakers = %+v", p.Breakers)
	}
	if p.Breakers[0].State != "open" || p.Breakers[1].ConsecutiveBad != 1 {
		t.Fatalf("breakers = %+v", p.Breakers)
	}
	if len(p.Rules) != 1 || !p.Rules[0].Quarantined || p.Rules[0].Panics != 2 {
		t.Fatalf("rules = %+v", p.Rules)
	}

	// JSON round-trip into a fresh set preserves behaviour.
	raw, err := json.Marshal(p)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Persisted
	if err := json.Unmarshal(raw, &decoded); err != nil {
		t.Fatal(err)
	}
	s2 := newTestSet(clk)
	s2.Import(&decoded)
	if d := s2.Allow("dead.example"); d.Admit {
		t.Fatal("imported open breaker admitted")
	}
	if !s2.RuleQuarantined("r1") {
		t.Fatal("imported rule quarantine lost")
	}
	// Mid-streak breaker trips after (threshold - streak) more bad outcomes.
	s2.Observe("slow.example", false, 20)
	if tr := s2.Observe("slow.example", false, 20); tr != TransitionTrip {
		t.Fatalf("imported streak transition %v, want Trip", tr)
	}
	// The imported openedAt honours the cool-down.
	clk.Advance(2 * time.Minute)
	if d := s2.Allow("dead.example"); !d.Admit || !d.Canary {
		t.Fatalf("imported breaker after cool-down: %+v", d)
	}

	// Import(nil) clears everything.
	s2.Import(nil)
	if p := s2.Export(); p != nil {
		t.Fatalf("cleared export = %+v, want nil", p)
	}
	if d := s2.Allow("dead.example"); !d.Admit {
		t.Fatal("cleared set denied")
	}
}

func TestSnapshotStatuses(t *testing.T) {
	clk := newTestClock()
	s := newTestSet(clk)
	for i := 0; i < 3; i++ {
		s.Observe("b.example", false, 70)
	}
	s.Observe("a.example", false, 15)
	snap := s.Snapshot()
	if len(snap) != 2 || snap[0].Provider != "a.example" || snap[1].Provider != "b.example" {
		t.Fatalf("snapshot = %+v", snap)
	}
	if snap[0].State != "closed" || snap[0].ConsecutiveBad != 1 {
		t.Fatalf("a.example status = %+v", snap[0])
	}
	if snap[1].State != "open" || snap[1].Trips != 1 {
		t.Fatalf("b.example status = %+v", snap[1])
	}
	clk.Advance(10 * time.Second)
	snap = s.Snapshot()
	if snap[1].OpenForMs < 9999 || snap[1].OpenForMs > 10001 {
		t.Fatalf("OpenForMs = %v, want ~10000", snap[1].OpenForMs)
	}
}

func TestConcurrentAccess(t *testing.T) {
	clk := newTestClock()
	s := newTestSet(clk)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			providers := []string{"x.example", "y.example", "z.example"}
			for i := 0; i < 500; i++ {
				p := providers[(g+i)%len(providers)]
				s.Allow(p)
				s.Observe(p, i%3 == 0, float64(i%50))
				if i%17 == 0 {
					s.Snapshot()
					s.Export()
					s.OpenProviders()
				}
				if i%31 == 0 {
					s.ObserveRulePanic("r")
					s.QuarantinedRules()
				}
				if i%101 == 0 {
					clk.Advance(time.Second)
				}
			}
		}(g)
	}
	wg.Wait()
}
