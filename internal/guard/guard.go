// Package guard implements population-level guardrails for Oak's own
// interventions: per-provider circuit breakers and self-healing rule
// quarantine.
//
// Oak's control loop (paper §4.2.3) is strictly per-user — a user must
// personally suffer a bad rewrite before the engine deactivates their rule.
// When an alternate provider dies globally, that loop converges one painful
// report at a time, activating *new* users onto the dead provider all the
// while. The guard closes that gap with aggregate state: outcomes for an
// alternate provider are pooled across every user (and an optional active
// prober, see Prober), and a provider that accumulates enough consecutive
// bad outcomes trips a breaker.
//
// Breaker lifecycle (classic closed → open → half-open):
//
//	closed:    activations flow freely. Consecutive bad outcomes count
//	           toward TripThreshold; any good outcome resets the count.
//	open:      tripped. No activations are admitted; the engine bulk-
//	           deactivates existing activations on the provider. After
//	           OpenFor elapses the breaker moves to half-open on its next
//	           consultation.
//	half-open: at most HalfOpenCanaries activations are admitted as
//	           canaries. CloseAfter good observed outcomes close the
//	           breaker; a single bad outcome reopens it (fresh cool-down).
//
// The same Set also quarantines rules implicated in rewrite panics: a rule
// whose application panics PanicThreshold times is quarantined — skipped on
// the serve path and refused new activations — until released.
//
// A Set only aggregates and decides; it never touches engine state itself.
// Callers act on the returned Transition (trip ⇒ bulk rollback), which keeps
// the Set's mutex a leaf lock — safe to consult from under any engine lock.
package guard

import (
	"sort"
	"sync"
	"time"
)

// State is one breaker's position in the closed → open → half-open cycle.
type State int

const (
	// Closed admits every activation (the healthy steady state).
	Closed State = iota
	// Open admits nothing: the provider is quarantined.
	Open
	// HalfOpen admits a bounded number of canary activations to test
	// whether the provider recovered.
	HalfOpen
)

// String names the state as it appears in metrics and snapshots.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half-open"
	default:
		return "unknown"
	}
}

// parseState inverts String; unknown input parses as Closed (a snapshot from
// a future format degrades to "no quarantine" rather than failing the load).
func parseState(s string) State {
	switch s {
	case "open":
		return Open
	case "half-open":
		return HalfOpen
	default:
		return Closed
	}
}

// Transition is what an observed outcome did to a breaker. The caller acts
// on it: a trip or reopen must bulk-deactivate the provider's activations.
type Transition int

const (
	// TransitionNone: the breaker did not change state.
	TransitionNone Transition = iota
	// TransitionTrip: closed → open. The provider crossed TripThreshold
	// consecutive bad outcomes and is now quarantined.
	TransitionTrip
	// TransitionReopen: half-open → open. A canary outcome was bad; the
	// provider goes back into quarantine with a fresh cool-down.
	TransitionReopen
	// TransitionClose: half-open → closed. Enough canary outcomes were
	// good; the provider is re-admitted.
	TransitionClose
)

// Config tunes a Set. Zero fields take the defaults.
type Config struct {
	// TripThreshold is how many consecutive bad outcomes (pooled across
	// all users) trip a provider's breaker. Default 5.
	TripThreshold int
	// OpenFor is the quarantine cool-down: how long an open breaker waits
	// before admitting canaries. Default 30s.
	OpenFor time.Duration
	// HalfOpenCanaries bounds how many canary activations a half-open
	// breaker admits per episode. Default 3.
	HalfOpenCanaries int
	// CloseAfter is how many good outcomes a half-open breaker needs to
	// close. Default 2.
	CloseAfter int
	// PanicThreshold is how many rewrite panics quarantine a rule.
	// Default 3.
	PanicThreshold int
	// Now overrides the clock (tests, simulation). Default time.Now.
	Now func() time.Time
}

// Defaults for Config's zero fields.
const (
	DefaultTripThreshold    = 5
	DefaultOpenFor          = 30 * time.Second
	DefaultHalfOpenCanaries = 3
	DefaultCloseAfter       = 2
	DefaultPanicThreshold   = 3
)

// normalized fills zero fields with defaults.
func (c Config) normalized() Config {
	if c.TripThreshold <= 0 {
		c.TripThreshold = DefaultTripThreshold
	}
	if c.OpenFor <= 0 {
		c.OpenFor = DefaultOpenFor
	}
	if c.HalfOpenCanaries <= 0 {
		c.HalfOpenCanaries = DefaultHalfOpenCanaries
	}
	if c.CloseAfter <= 0 {
		c.CloseAfter = DefaultCloseAfter
	}
	if c.PanicThreshold <= 0 {
		c.PanicThreshold = DefaultPanicThreshold
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	return c
}

// breaker is one provider's aggregate state.
type breaker struct {
	state          State
	consecutiveBad int
	openedAt       time.Time
	halfOpenGood   int
	canariesUsed   int
	trips          uint64 // lifetime trip count (incl. reopens)
	lastDeltaMs    float64
}

// ruleHealth tracks rewrite panics attributed to one rule.
type ruleHealth struct {
	panics      int
	quarantined bool
}

// Set is a collection of per-provider breakers plus the rule-quarantine
// table, guarded by one mutex. All methods are safe for concurrent use, and
// none ever calls out while holding the mutex — the Set is a leaf lock.
type Set struct {
	mu       sync.Mutex
	cfg      Config
	breakers map[string]*breaker
	rules    map[string]*ruleHealth
}

// New builds a Set with the given configuration.
func New(cfg Config) *Set {
	return &Set{
		cfg:      cfg.normalized(),
		breakers: make(map[string]*breaker),
		rules:    make(map[string]*ruleHealth),
	}
}

// Decision is the verdict of consulting a breaker before an activation.
type Decision struct {
	// Admit says whether the activation may proceed.
	Admit bool
	// Canary marks an admission that consumed a half-open canary slot;
	// its outcome decides whether the breaker closes or reopens.
	Canary bool
	// State is the breaker's state at decision time.
	State State
}

// Allow consults the provider's breaker before an activation. A closed (or
// unknown) provider admits freely; an open one admits nothing until its
// cool-down elapses, at which point the breaker moves to half-open and
// admits up to HalfOpenCanaries canary activations.
func (s *Set) Allow(provider string) Decision {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[provider]
	if b == nil {
		return Decision{Admit: true, State: Closed}
	}
	s.advanceLocked(b)
	switch b.state {
	case Open:
		return Decision{State: Open}
	case HalfOpen:
		if b.canariesUsed < s.cfg.HalfOpenCanaries {
			b.canariesUsed++
			return Decision{Admit: true, Canary: true, State: HalfOpen}
		}
		return Decision{State: HalfOpen}
	default:
		return Decision{Admit: true, State: Closed}
	}
}

// Observe feeds one population-level outcome for a provider: good reports a
// load (or probe) that went fine, bad one where the provider violated;
// deltaMs is the latency distance that judged it (informational). The
// returned Transition tells the caller what to do — a trip or reopen means
// the provider's existing activations must be bulk-deactivated.
func (s *Set) Observe(provider string, good bool, deltaMs float64) Transition {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[provider]
	if b == nil {
		if good {
			return TransitionNone // nothing tracked, nothing to reset
		}
		b = &breaker{}
		s.breakers[provider] = b
	}
	b.lastDeltaMs = deltaMs
	s.advanceLocked(b)
	switch b.state {
	case Closed:
		if good {
			b.consecutiveBad = 0
			return TransitionNone
		}
		b.consecutiveBad++
		if b.consecutiveBad >= s.cfg.TripThreshold {
			s.openLocked(b)
			return TransitionTrip
		}
		return TransitionNone
	case Open:
		// Outcomes while open are stale: they describe loads begun before
		// the rollback finished. The cool-down decides what happens next.
		return TransitionNone
	default: // HalfOpen: every outcome is canary evidence
		if good {
			b.halfOpenGood++
			if b.halfOpenGood >= s.cfg.CloseAfter {
				*b = breaker{trips: b.trips, lastDeltaMs: b.lastDeltaMs}
				return TransitionClose
			}
			return TransitionNone
		}
		s.openLocked(b)
		return TransitionReopen
	}
}

// advanceLocked moves an open breaker whose cool-down elapsed to half-open.
func (s *Set) advanceLocked(b *breaker) {
	if b.state == Open && s.cfg.Now().Sub(b.openedAt) >= s.cfg.OpenFor {
		b.state = HalfOpen
		b.halfOpenGood = 0
		b.canariesUsed = 0
	}
}

// openLocked (re)opens a breaker with a fresh cool-down.
func (s *Set) openLocked(b *breaker) {
	b.state = Open
	b.openedAt = s.cfg.Now()
	b.consecutiveBad = 0
	b.halfOpenGood = 0
	b.canariesUsed = 0
	b.trips++
}

// ForceOpen trips the provider's breaker unconditionally (manual quarantine
// override). It reports whether the breaker was not already open — when
// true, the caller must bulk-deactivate the provider's activations, exactly
// as after TransitionTrip.
func (s *Set) ForceOpen(provider string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[provider]
	if b == nil {
		b = &breaker{}
		s.breakers[provider] = b
	}
	if b.state == Open {
		return false
	}
	s.openLocked(b)
	return true
}

// ForceClose resets the provider's breaker to closed (manual re-admission
// override), reporting whether there was a non-closed breaker to reset.
func (s *Set) ForceClose(provider string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[provider]
	if b == nil || b.state == Closed {
		if b != nil {
			b.consecutiveBad = 0
		}
		return false
	}
	*b = breaker{trips: b.trips}
	return true
}

// State reports the provider's current breaker state (Closed for providers
// never observed).
func (s *Set) State(provider string) State {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.breakers[provider]
	if b == nil {
		return Closed
	}
	s.advanceLocked(b)
	return b.state
}

// OpenProviders lists the providers whose breakers are open, sorted.
func (s *Set) OpenProviders() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for p, b := range s.breakers {
		s.advanceLocked(b)
		if b.state == Open {
			out = append(out, p)
		}
	}
	sort.Strings(out)
	return out
}

// ProviderStatus is one breaker's state for metrics surfaces.
type ProviderStatus struct {
	Provider       string  `json:"provider"`
	State          string  `json:"state"`
	ConsecutiveBad int     `json:"consecutive_bad,omitempty"`
	HalfOpenGood   int     `json:"half_open_good,omitempty"`
	CanariesUsed   int     `json:"canaries_used,omitempty"`
	Trips          uint64  `json:"trips,omitempty"`
	LastDeltaMs    float64 `json:"last_delta_ms,omitempty"`
	// OpenForMs is how long the breaker has been open (open state only).
	OpenForMs float64 `json:"open_for_ms,omitempty"`
}

// Snapshot returns every tracked breaker's status, sorted by provider.
func (s *Set) Snapshot() []ProviderStatus {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]ProviderStatus, 0, len(s.breakers))
	for p, b := range s.breakers {
		s.advanceLocked(b)
		ps := ProviderStatus{
			Provider:       p,
			State:          b.state.String(),
			ConsecutiveBad: b.consecutiveBad,
			HalfOpenGood:   b.halfOpenGood,
			CanariesUsed:   b.canariesUsed,
			Trips:          b.trips,
			LastDeltaMs:    b.lastDeltaMs,
		}
		if b.state == Open {
			ps.OpenForMs = float64(s.cfg.Now().Sub(b.openedAt)) / float64(time.Millisecond)
		}
		out = append(out, ps)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Provider < out[j].Provider })
	return out
}

// ObserveRulePanic records one rewrite panic attributed to a rule. It
// reports true exactly when this panic crosses PanicThreshold and
// quarantines the rule — the caller then bulk-deactivates it.
func (s *Set) ObserveRulePanic(ruleID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rh := s.rules[ruleID]
	if rh == nil {
		rh = &ruleHealth{}
		s.rules[ruleID] = rh
	}
	rh.panics++
	if rh.quarantined || rh.panics < s.cfg.PanicThreshold {
		return false
	}
	rh.quarantined = true
	return true
}

// QuarantineRule quarantines a rule unconditionally (manual override),
// reporting whether it was not already quarantined.
func (s *Set) QuarantineRule(ruleID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rh := s.rules[ruleID]
	if rh == nil {
		rh = &ruleHealth{}
		s.rules[ruleID] = rh
	}
	if rh.quarantined {
		return false
	}
	rh.quarantined = true
	return true
}

// ReleaseRule lifts a rule's quarantine and resets its panic count.
func (s *Set) ReleaseRule(ruleID string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.rules, ruleID)
}

// RuleQuarantined reports whether the rule is quarantined.
func (s *Set) RuleQuarantined(ruleID string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	rh := s.rules[ruleID]
	return rh != nil && rh.quarantined
}

// QuarantinedRules lists quarantined rule IDs, sorted.
func (s *Set) QuarantinedRules() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
	for id, rh := range s.rules {
		if rh.quarantined {
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

// Persisted is the guard state as stored inside an engine snapshot. Only
// breakers that deviate from the healthy steady state and rules with panic
// history are included, so a guard with nothing to say exports nil and the
// snapshot is byte-identical to one from an engine without a guard.
type Persisted struct {
	Breakers []PersistedBreaker `json:"breakers,omitempty"`
	Rules    []PersistedRule    `json:"rules,omitempty"`
}

// PersistedBreaker is one breaker's durable state.
type PersistedBreaker struct {
	Provider       string    `json:"provider"`
	State          string    `json:"state"`
	ConsecutiveBad int       `json:"consecutiveBad,omitempty"`
	OpenedAt       time.Time `json:"openedAt"`
	HalfOpenGood   int       `json:"halfOpenGood,omitempty"`
	CanariesUsed   int       `json:"canariesUsed,omitempty"`
}

// PersistedRule is one rule's durable panic-quarantine state.
type PersistedRule struct {
	RuleID      string `json:"ruleId"`
	Panics      int    `json:"panics,omitempty"`
	Quarantined bool   `json:"quarantined,omitempty"`
}

// Export captures the durable guard state, or nil when there is none (every
// breaker closed and quiet, no rule panic history).
func (s *Set) Export() *Persisted {
	s.mu.Lock()
	defer s.mu.Unlock()
	var p Persisted
	for name, b := range s.breakers {
		if b.state == Closed && b.consecutiveBad == 0 {
			continue
		}
		p.Breakers = append(p.Breakers, PersistedBreaker{
			Provider:       name,
			State:          b.state.String(),
			ConsecutiveBad: b.consecutiveBad,
			OpenedAt:       b.openedAt,
			HalfOpenGood:   b.halfOpenGood,
			CanariesUsed:   b.canariesUsed,
		})
	}
	for id, rh := range s.rules {
		if rh.panics == 0 && !rh.quarantined {
			continue
		}
		p.Rules = append(p.Rules, PersistedRule{RuleID: id, Panics: rh.panics, Quarantined: rh.quarantined})
	}
	if len(p.Breakers) == 0 && len(p.Rules) == 0 {
		return nil
	}
	sort.Slice(p.Breakers, func(i, j int) bool { return p.Breakers[i].Provider < p.Breakers[j].Provider })
	sort.Slice(p.Rules, func(i, j int) bool { return p.Rules[i].RuleID < p.Rules[j].RuleID })
	return &p
}

// Import replaces the Set's state with a previously exported one. nil (the
// empty export, and what legacy snapshots decode to) clears everything.
func (s *Set) Import(p *Persisted) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.breakers = make(map[string]*breaker)
	s.rules = make(map[string]*ruleHealth)
	if p == nil {
		return
	}
	for _, pb := range p.Breakers {
		if pb.Provider == "" {
			continue
		}
		s.breakers[pb.Provider] = &breaker{
			state:          parseState(pb.State),
			consecutiveBad: pb.ConsecutiveBad,
			openedAt:       pb.OpenedAt,
			halfOpenGood:   pb.HalfOpenGood,
			canariesUsed:   pb.CanariesUsed,
		}
	}
	for _, pr := range p.Rules {
		if pr.RuleID == "" {
			continue
		}
		s.rules[pr.RuleID] = &ruleHealth{panics: pr.Panics, quarantined: pr.Quarantined}
	}
}
