package report

import (
	"slices"
	"strings"
	"sync"
)

// ServerPerf is the server-oriented view Oak derives from a report: all
// objects fetched from one server address, summarised per the paper's
// small/large split. "These reports make no decisions on what objects may
// need to be acted on, but instead store the raw information about the
// observed performance" — decisions happen later, in core.
type ServerPerf struct {
	// Addr is the server address (paper: IP) the client connected to.
	Addr string
	// Hosts are all domain names that resolved to this server during the
	// load, sorted. Rule matching works on these names.
	Hosts []string
	// SmallCount and SmallMeanTimeMs summarise objects under the 50 KB
	// threshold: the count and the mean download time (milliseconds).
	SmallCount      int
	SmallMeanTimeMs float64
	// LargeCount and LargeMeanTputBps summarise objects at or over the
	// threshold: the count and mean achieved throughput (bytes/second).
	LargeCount       int
	LargeMeanTputBps float64
	// URLs are the object URLs fetched from this server, in report order.
	URLs []string
	// ScriptURLs are the subset of URLs that are external scripts; the
	// rule matcher's external-JavaScript pass walks these.
	ScriptURLs []string
}

// HasHost reports whether the given hostname resolved to this server.
func (s *ServerPerf) HasHost(host string) bool {
	for _, h := range s.Hosts {
		if h == host {
			return true
		}
	}
	return false
}

// serverAcc accumulates one server's summary inside a GroupScratch. Its
// slices are scratch — reused across reports — and are copied into
// exact-size slabs when the grouping materialises its result.
type serverAcc struct {
	addr      string
	hosts     []string
	urls      []string
	scripts   []string
	smallCnt  int
	smallMean float64
	largeCnt  int
	largeMean float64
}

// GroupScratch holds the reusable working memory of GroupByServer. Ingest
// runs grouping once per report; with a scratch the only allocations left
// are the three exact-size slabs the caller keeps (pointer slice, struct
// slab, string slab). A GroupScratch is not safe for concurrent use; pool
// one per worker, or use the package-level GroupByServer which draws from a
// shared pool.
type GroupScratch struct {
	byAddr map[string]int // addr → index into accs
	accs   []serverAcc
}

// NewGroupScratch returns an empty grouping scratch.
func NewGroupScratch() *GroupScratch {
	return &GroupScratch{byAddr: make(map[string]int, 8)}
}

var groupScratchPool = sync.Pool{New: func() any { return NewGroupScratch() }}

// GroupByServer folds a report into per-server performance summaries,
// implementing Section 4.2's grouping: objects are grouped by the address
// the client ultimately connected to, keeping track of all related domain
// names; small objects contribute their mean time, large objects their mean
// throughput. The result is sorted by address for determinism.
func GroupByServer(r *Report) []*ServerPerf {
	gs := groupScratchPool.Get().(*GroupScratch)
	out := gs.Group(r)
	groupScratchPool.Put(gs)
	return out
}

// linearAccLimit is the server count below which the grouping finds an
// entry's accumulator by scanning instead of hashing: typical reports touch
// a handful of servers, and comparing a few short strings beats a map
// lookup plus the hash. Past the limit the scratch migrates every
// accumulator into its map and stays there for the rest of the report.
const linearAccLimit = 12

// Group is GroupByServer against this scratch. The returned summaries are
// freshly allocated and safe to retain; the scratch is immediately reusable.
func (gs *GroupScratch) Group(r *Report) []*ServerPerf {
	if len(gs.byAddr) != 0 {
		clear(gs.byAddr)
	}
	useMap := false
	gs.accs = gs.accs[:0]
	for i := range r.Entries {
		e := &r.Entries[i]
		addr := e.ServerAddr
		if addr == "" {
			// Fall back to the hostname when the client did not record an
			// address (pure-simulation clients identify servers by name).
			addr = e.Host()
		}
		if addr == "" {
			continue
		}
		ai := -1
		if useMap {
			if j, ok := gs.byAddr[addr]; ok {
				ai = j
			}
		} else {
			for j := range gs.accs {
				if gs.accs[j].addr == addr {
					ai = j
					break
				}
			}
		}
		if ai < 0 {
			ai = len(gs.accs)
			if ai < cap(gs.accs) {
				gs.accs = gs.accs[:ai+1]
				a := &gs.accs[ai]
				a.addr = addr
				a.hosts = a.hosts[:0]
				a.urls = a.urls[:0]
				a.scripts = a.scripts[:0]
				a.smallCnt, a.smallMean = 0, 0
				a.largeCnt, a.largeMean = 0, 0
			} else {
				gs.accs = append(gs.accs, serverAcc{addr: addr})
			}
			switch {
			case useMap:
				gs.byAddr[addr] = ai
			case len(gs.accs) > linearAccLimit:
				useMap = true
				for j := range gs.accs {
					gs.byAddr[gs.accs[j].addr] = j
				}
			}
		}
		a := &gs.accs[ai]
		if host := e.Host(); host != "" && !slices.Contains(a.hosts, host) {
			a.hosts = append(a.hosts, host)
		}
		a.urls = append(a.urls, e.URL)
		if e.Kind == KindScript {
			a.scripts = append(a.scripts, e.URL)
		}
		if e.IsSmall() {
			// Incremental mean keeps this single-pass.
			a.smallCnt++
			a.smallMean += (e.DurationMillis - a.smallMean) / float64(a.smallCnt)
		} else {
			a.largeCnt++
			a.largeMean += (e.ThroughputBps() - a.largeMean) / float64(a.largeCnt)
		}
	}
	total := 0
	for i := range gs.accs {
		a := &gs.accs[i]
		slices.Sort(a.hosts)
		total += len(a.hosts) + len(a.urls) + len(a.scripts)
	}
	out := make([]*ServerPerf, len(gs.accs))
	structs := make([]ServerPerf, len(gs.accs))
	slab := make([]string, 0, total)
	for i := range gs.accs {
		a := &gs.accs[i]
		sp := &structs[i]
		sp.Addr = a.addr
		sp.Hosts, slab = slabCopy(slab, a.hosts)
		sp.URLs, slab = slabCopy(slab, a.urls)
		sp.ScriptURLs, slab = slabCopy(slab, a.scripts)
		sp.SmallCount, sp.SmallMeanTimeMs = a.smallCnt, a.smallMean
		sp.LargeCount, sp.LargeMeanTputBps = a.largeCnt, a.largeMean
		out[i] = sp
	}
	// Sort the pointer slice, not the accumulators: serverAcc is an 11-word
	// struct, and moving those around showed up as pure copy cost in ingest
	// profiles.
	slices.SortFunc(out, func(x, y *ServerPerf) int { return strings.Compare(x.Addr, y.Addr) })
	return out
}

// slabCopy appends src to the slab and returns the full-capacity-clipped
// sub-slice holding the copy (nil when src is empty, matching the appends
// the pre-slab grouping produced).
func slabCopy(slab, src []string) ([]string, []string) {
	if len(src) == 0 {
		return nil, slab
	}
	start := len(slab)
	slab = append(slab, src...)
	return slab[start:len(slab):len(slab)], slab
}

// SmallTimes extracts the small-object mean times (ms) of servers that have
// small objects, parallel to the returned server subset.
func SmallTimes(servers []*ServerPerf) (subset []*ServerPerf, times []float64) {
	for _, s := range servers {
		if s.SmallCount > 0 {
			subset = append(subset, s)
			times = append(times, s.SmallMeanTimeMs)
		}
	}
	return subset, times
}

// LargeTputs extracts the large-object mean throughputs (B/s) of servers
// that have large objects, parallel to the returned server subset.
func LargeTputs(servers []*ServerPerf) (subset []*ServerPerf, tputs []float64) {
	for _, s := range servers {
		if s.LargeCount > 0 {
			subset = append(subset, s)
			tputs = append(tputs, s.LargeMeanTputBps)
		}
	}
	return subset, tputs
}
