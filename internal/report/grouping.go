package report

import (
	"sort"
)

// ServerPerf is the server-oriented view Oak derives from a report: all
// objects fetched from one server address, summarised per the paper's
// small/large split. "These reports make no decisions on what objects may
// need to be acted on, but instead store the raw information about the
// observed performance" — decisions happen later, in core.
type ServerPerf struct {
	// Addr is the server address (paper: IP) the client connected to.
	Addr string
	// Hosts are all domain names that resolved to this server during the
	// load, sorted. Rule matching works on these names.
	Hosts []string
	// SmallCount and SmallMeanTimeMs summarise objects under the 50 KB
	// threshold: the count and the mean download time (milliseconds).
	SmallCount      int
	SmallMeanTimeMs float64
	// LargeCount and LargeMeanTputBps summarise objects at or over the
	// threshold: the count and mean achieved throughput (bytes/second).
	LargeCount       int
	LargeMeanTputBps float64
	// URLs are the object URLs fetched from this server, in report order.
	URLs []string
	// ScriptURLs are the subset of URLs that are external scripts; the
	// rule matcher's external-JavaScript pass walks these.
	ScriptURLs []string
}

// HasHost reports whether the given hostname resolved to this server.
func (s *ServerPerf) HasHost(host string) bool {
	for _, h := range s.Hosts {
		if h == host {
			return true
		}
	}
	return false
}

// GroupByServer folds a report into per-server performance summaries,
// implementing Section 4.2's grouping: objects are grouped by the address
// the client ultimately connected to, keeping track of all related domain
// names; small objects contribute their mean time, large objects their mean
// throughput. The result is sorted by address for determinism.
func GroupByServer(r *Report) []*ServerPerf {
	byAddr := make(map[string]*ServerPerf)
	var order []string
	for _, e := range r.Entries {
		addr := e.ServerAddr
		if addr == "" {
			// Fall back to the hostname when the client did not record an
			// address (pure-simulation clients identify servers by name).
			addr = e.Host()
		}
		if addr == "" {
			continue
		}
		sp, ok := byAddr[addr]
		if !ok {
			sp = &ServerPerf{Addr: addr}
			byAddr[addr] = sp
			order = append(order, addr)
		}
		if host := e.Host(); host != "" && !sp.HasHost(host) {
			sp.Hosts = append(sp.Hosts, host)
		}
		sp.URLs = append(sp.URLs, e.URL)
		if e.Kind == KindScript {
			sp.ScriptURLs = append(sp.ScriptURLs, e.URL)
		}
		if e.IsSmall() {
			// Incremental mean keeps this single-pass.
			sp.SmallCount++
			sp.SmallMeanTimeMs += (e.DurationMillis - sp.SmallMeanTimeMs) / float64(sp.SmallCount)
		} else {
			sp.LargeCount++
			sp.LargeMeanTputBps += (e.ThroughputBps() - sp.LargeMeanTputBps) / float64(sp.LargeCount)
		}
	}
	out := make([]*ServerPerf, 0, len(byAddr))
	for _, addr := range order {
		sp := byAddr[addr]
		sort.Strings(sp.Hosts)
		out = append(out, sp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Addr < out[j].Addr })
	return out
}

// SmallTimes extracts the small-object mean times (ms) of servers that have
// small objects, parallel to the returned server subset.
func SmallTimes(servers []*ServerPerf) (subset []*ServerPerf, times []float64) {
	for _, s := range servers {
		if s.SmallCount > 0 {
			subset = append(subset, s)
			times = append(times, s.SmallMeanTimeMs)
		}
	}
	return subset, times
}

// LargeTputs extracts the large-object mean throughputs (B/s) of servers
// that have large objects, parallel to the returned server subset.
func LargeTputs(servers []*ServerPerf) (subset []*ServerPerf, tputs []float64) {
	for _, s := range servers {
		if s.LargeCount > 0 {
			subset = append(subset, s)
			tputs = append(tputs, s.LargeMeanTputBps)
		}
	}
	return subset, tputs
}
