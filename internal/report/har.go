package report

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// HAR import. The paper's client is built on infrastructure "designed for
// use with outputting HAR files", and Oak's report format is a HAR subset.
// FromHAR converts a standard HTTP Archive (exported by any browser's
// devtools) into an Oak report, so captured real-world sessions can be
// replayed through the engine or analysed with cmd/oakreport.

// harFile mirrors the parts of the HAR 1.2 schema Oak consumes.
type harFile struct {
	Log struct {
		Pages []struct {
			ID    string `json:"id"`
			Title string `json:"title"`
		} `json:"pages"`
		Entries []harEntry `json:"entries"`
	} `json:"log"`
}

type harEntry struct {
	Pageref string  `json:"pageref"`
	Time    float64 `json:"time"` // total elapsed ms
	Request struct {
		Method string `json:"method"`
		URL    string `json:"url"`
	} `json:"request"`
	Response struct {
		Status  int `json:"status"`
		Content struct {
			Size     int64  `json:"size"`
			MimeType string `json:"mimeType"`
		} `json:"content"`
		BodySize int64 `json:"bodySize"`
	} `json:"response"`
	ServerIPAddress string `json:"serverIPAddress"`
	Initiator       struct {
		URL string `json:"url"`
	} `json:"_initiator"`
}

// FromHAR converts HAR data into an Oak report for the given user. Only
// successful GET responses become entries (Oak measures object downloads);
// entries without a server address fall back to hostname grouping, exactly
// like simulated clients.
func FromHAR(data []byte, userID string) (*Report, error) {
	var har harFile
	if err := json.Unmarshal(data, &har); err != nil {
		return nil, fmt.Errorf("report: decode har: %w", err)
	}
	rep := &Report{
		UserID:            userID,
		GeneratedAtUnixMs: time.Now().UnixMilli(),
	}
	if len(har.Log.Pages) > 0 {
		rep.Page = pagePath(har.Log.Pages[0].Title, har.Log.Pages[0].ID)
	}
	for _, e := range har.Log.Entries {
		if e.Request.Method != "" && e.Request.Method != "GET" {
			continue
		}
		if e.Response.Status >= 400 || e.Response.Status == 0 && e.Time <= 0 {
			continue
		}
		size := e.Response.Content.Size
		if size <= 0 {
			size = e.Response.BodySize
		}
		if size < 0 {
			size = 0
		}
		rep.Entries = append(rep.Entries, Entry{
			URL:            e.Request.URL,
			ServerAddr:     e.ServerIPAddress,
			SizeBytes:      size,
			DurationMillis: e.Time,
			InitiatorURL:   e.Initiator.URL,
			Kind:           kindForMime(e.Response.Content.MimeType),
		})
	}
	if len(rep.Entries) == 0 {
		return nil, fmt.Errorf("report: har contains no usable entries")
	}
	return rep, nil
}

// pagePath derives a site-relative page path from HAR page metadata: page
// titles in HARs are usually the full URL.
func pagePath(title, id string) string {
	for _, candidate := range []string{title, id} {
		if i := strings.Index(candidate, "://"); i >= 0 {
			rest := candidate[i+3:]
			if j := strings.IndexByte(rest, '/'); j >= 0 {
				return rest[j:]
			}
			return "/"
		}
		if strings.HasPrefix(candidate, "/") {
			return candidate
		}
	}
	return "/"
}

// kindForMime maps a MIME type to Oak's coarse object kinds.
func kindForMime(mime string) ObjectKind {
	mime = strings.ToLower(mime)
	switch {
	case strings.Contains(mime, "javascript"), strings.Contains(mime, "ecmascript"):
		return KindScript
	case strings.HasPrefix(mime, "image/"):
		return KindImage
	case strings.Contains(mime, "css"):
		return KindCSS
	case strings.Contains(mime, "html"):
		return KindHTML
	case mime == "":
		return ""
	default:
		return KindOther
	}
}
