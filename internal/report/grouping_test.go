package report

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func groupedReport() *Report {
	return &Report{
		UserID: "u1",
		Page:   "/",
		Entries: []Entry{
			// Two small objects on 10.0.0.2 via two hostnames.
			{URL: "http://cdn.example/a.js", ServerAddr: "10.0.0.2", SizeBytes: 1024, DurationMillis: 100, Kind: KindScript},
			{URL: "http://alt.example/b.js", ServerAddr: "10.0.0.2", SizeBytes: 2048, DurationMillis: 300, Kind: KindScript},
			// One large object on 10.0.0.3: 100 KB in 1 s -> 102400 B/s.
			{URL: "http://img.example/c.jpg", ServerAddr: "10.0.0.3", SizeBytes: 100 * 1024, DurationMillis: 1000, Kind: KindImage},
			// Small + large mix on 10.0.0.4.
			{URL: "http://mix.example/d.css", ServerAddr: "10.0.0.4", SizeBytes: 512, DurationMillis: 50, Kind: KindCSS},
			{URL: "http://mix.example/e.bin", ServerAddr: "10.0.0.4", SizeBytes: 200 * 1024, DurationMillis: 2000},
		},
	}
}

func TestGroupByServer(t *testing.T) {
	servers := GroupByServer(groupedReport())
	if len(servers) != 3 {
		t.Fatalf("got %d servers, want 3", len(servers))
	}
	byAddr := make(map[string]*ServerPerf)
	for _, s := range servers {
		byAddr[s.Addr] = s
	}

	s2 := byAddr["10.0.0.2"]
	if s2 == nil {
		t.Fatal("missing server 10.0.0.2")
	}
	if s2.SmallCount != 2 {
		t.Errorf("10.0.0.2 SmallCount = %d, want 2", s2.SmallCount)
	}
	if math.Abs(s2.SmallMeanTimeMs-200) > 1e-9 {
		t.Errorf("10.0.0.2 SmallMeanTimeMs = %v, want 200", s2.SmallMeanTimeMs)
	}
	if !reflect.DeepEqual(s2.Hosts, []string{"alt.example", "cdn.example"}) {
		t.Errorf("10.0.0.2 Hosts = %v, want sorted [alt.example cdn.example]", s2.Hosts)
	}
	if len(s2.ScriptURLs) != 2 {
		t.Errorf("10.0.0.2 ScriptURLs = %v, want 2 scripts", s2.ScriptURLs)
	}

	s3 := byAddr["10.0.0.3"]
	if s3.LargeCount != 1 || s3.SmallCount != 0 {
		t.Errorf("10.0.0.3 counts = (%d small, %d large), want (0, 1)", s3.SmallCount, s3.LargeCount)
	}
	if math.Abs(s3.LargeMeanTputBps-102400) > 1e-6 {
		t.Errorf("10.0.0.3 LargeMeanTputBps = %v, want 102400", s3.LargeMeanTputBps)
	}

	s4 := byAddr["10.0.0.4"]
	if s4.SmallCount != 1 || s4.LargeCount != 1 {
		t.Errorf("10.0.0.4 counts = (%d, %d), want (1, 1)", s4.SmallCount, s4.LargeCount)
	}
}

func TestGroupByServerSortedAndDeterministic(t *testing.T) {
	a := GroupByServer(groupedReport())
	b := GroupByServer(groupedReport())
	if !reflect.DeepEqual(a, b) {
		t.Error("GroupByServer not deterministic")
	}
	for i := 1; i < len(a); i++ {
		if a[i-1].Addr >= a[i].Addr {
			t.Errorf("servers not sorted: %q >= %q", a[i-1].Addr, a[i].Addr)
		}
	}
}

func TestGroupByServerFallsBackToHost(t *testing.T) {
	r := &Report{
		UserID: "u",
		Entries: []Entry{
			{URL: "http://noaddr.example/x.js", SizeBytes: 10, DurationMillis: 1},
		},
	}
	servers := GroupByServer(r)
	if len(servers) != 1 || servers[0].Addr != "noaddr.example" {
		t.Errorf("fallback grouping = %+v, want addr noaddr.example", servers)
	}
}

func TestGroupByServerSkipsUnidentifiable(t *testing.T) {
	r := &Report{
		UserID: "u",
		Entries: []Entry{
			{URL: "::not-a-url::", SizeBytes: 10, DurationMillis: 1},
		},
	}
	if servers := GroupByServer(r); len(servers) != 0 {
		t.Errorf("got %d servers for unidentifiable entry, want 0", len(servers))
	}
}

func TestSmallTimesLargeTputs(t *testing.T) {
	servers := GroupByServer(groupedReport())
	smallSubset, times := SmallTimes(servers)
	if len(smallSubset) != 2 || len(times) != 2 {
		t.Fatalf("SmallTimes subset = %d servers, want 2", len(smallSubset))
	}
	for i, s := range smallSubset {
		if times[i] != s.SmallMeanTimeMs {
			t.Errorf("times[%d] = %v, want %v", i, times[i], s.SmallMeanTimeMs)
		}
	}
	largeSubset, tputs := LargeTputs(servers)
	if len(largeSubset) != 2 || len(tputs) != 2 {
		t.Fatalf("LargeTputs subset = %d servers, want 2", len(largeSubset))
	}
}

// entrySet generates random small reports for property testing.
type entrySet []Entry

var _ quick.Generator = entrySet(nil)

func (entrySet) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size+1)
	es := make(entrySet, n)
	for i := range es {
		es[i] = Entry{
			URL:            fmt.Sprintf("http://h%d.example/o%d", r.Intn(5), i),
			ServerAddr:     fmt.Sprintf("10.0.0.%d", r.Intn(5)),
			SizeBytes:      int64(r.Intn(200 * 1024)),
			DurationMillis: 1 + r.Float64()*1000,
		}
	}
	return reflect.ValueOf(es)
}

// Property: grouping conserves the entry count across servers.
func TestQuickGroupingConservesEntries(t *testing.T) {
	f := func(es entrySet) bool {
		r := &Report{UserID: "u", Entries: es}
		var total int
		for _, s := range GroupByServer(r) {
			total += s.SmallCount + s.LargeCount
			if len(s.URLs) != s.SmallCount+s.LargeCount {
				return false
			}
		}
		return total == len(es)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every server's mean small time is within the min/max of its own
// entries' durations.
func TestQuickGroupMeansBounded(t *testing.T) {
	f := func(es entrySet) bool {
		r := &Report{UserID: "u", Entries: es}
		for _, s := range GroupByServer(r) {
			if s.SmallCount == 0 {
				continue
			}
			min, max := math.Inf(1), math.Inf(-1)
			for _, e := range es {
				if e.ServerAddr == s.Addr && e.IsSmall() {
					min = math.Min(min, e.DurationMillis)
					max = math.Max(max, e.DurationMillis)
				}
			}
			if s.SmallMeanTimeMs < min-1e-6 || s.SmallMeanTimeMs > max+1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: JSON round-trip preserves reports exactly (field-for-field).
func TestQuickReportRoundTrip(t *testing.T) {
	f := func(es entrySet) bool {
		r := &Report{UserID: "u", Page: "/p", GeneratedAtUnixMs: 12345, Entries: es}
		data, err := r.Marshal()
		if err != nil {
			return false
		}
		got, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(*got, *r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
