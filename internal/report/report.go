// Package report defines the performance reports Oak clients submit and the
// per-server grouping the Oak server derives from them.
//
// The paper (Sections 4 and 5, "Implementation") uses a HAR-like format
// restricted to three fields per object: the loaded URL, the size of the
// loaded object, and its timing. Reports carry the client's identifying
// cookie so the server can associate performance with a particular user, and
// are submitted via HTTP POST after the page load completes.
package report

import (
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"
)

// SmallObjectThreshold splits objects into "small" (mean download time is
// the performance signal) and "large" (mean throughput is the signal), per
// Section 4.2 of the paper.
const SmallObjectThreshold = 50 * 1024 // 50 KB

// Entry records one object download: the limited HAR-like field set the
// paper's client emits, plus the server address the connection ultimately
// reached (the client resolves names; Oak groups by address).
type Entry struct {
	// URL is the full URL the object was fetched from.
	URL string `json:"url"`
	// ServerAddr is the address (paper: IP) the client connected to.
	ServerAddr string `json:"serverAddr"`
	// SizeBytes is the size of the downloaded object.
	SizeBytes int64 `json:"sizeBytes"`
	// DurationMillis is the download time in milliseconds. Milliseconds are
	// used on the wire (JSON has no duration type); Duration() converts.
	DurationMillis float64 `json:"durationMillis"`
	// InitiatorURL is the URL of the resource whose content caused this
	// fetch ("" when the page itself did). It encodes the paper's
	// connection-dependency information (Figure 6): Oak only needs to know
	// that a block on the page led to this connection, not execution order.
	InitiatorURL string `json:"initiatorUrl,omitempty"`
	// Kind is the coarse object type (script, image, css, other). Scripts
	// participate in the external-JavaScript rule-matching pass.
	Kind ObjectKind `json:"kind,omitempty"`
	// Failed marks an object the client could not download (provider dead,
	// timed out, or serving errors). DurationMillis then records how long
	// the client spent trying — a dead provider is the strongest
	// under-performance signal a report can carry, so partial page loads
	// still report.
	Failed bool `json:"failed,omitempty"`

	// host caches the hostname of URL; hostKnown distinguishes a computed
	// empty host from "not computed yet". The decoders fill it once at
	// decode time; Host() falls back lazily for hand-built entries.
	host      string
	hostKnown bool
}

// Duration returns the entry's download time.
func (e Entry) Duration() time.Duration {
	return time.Duration(e.DurationMillis * float64(time.Millisecond))
}

// Host returns the hostname component of the entry URL, or "" if the URL is
// unparseable. The result is memoized on the entry: decoders precompute it,
// and the first call computes it for entries built in code.
func (e *Entry) Host() string {
	if !e.hostKnown {
		e.host = hostOf(e.URL)
		e.hostKnown = true
	}
	return e.host
}

// setHost primes the host cache (used by decoders and tests).
func (e *Entry) setHost(h string) {
	e.host = h
	e.hostKnown = true
}

// IsSmall reports whether the entry falls in the small-object regime
// (timing, not throughput, is its performance signal).
func (e Entry) IsSmall() bool { return e.SizeBytes < SmallObjectThreshold }

// ThroughputBps returns the achieved download throughput in bytes/second,
// or 0 if the duration is not positive.
func (e Entry) ThroughputBps() float64 {
	if e.DurationMillis <= 0 {
		return 0
	}
	return float64(e.SizeBytes) / (e.DurationMillis / 1000)
}

// ObjectKind is the coarse type of a fetched object.
type ObjectKind string

// Object kinds. Scripts matter to rule matching; the rest are informational.
const (
	KindScript ObjectKind = "script"
	KindImage  ObjectKind = "image"
	KindCSS    ObjectKind = "css"
	KindHTML   ObjectKind = "html"
	KindOther  ObjectKind = "other"
)

// Report is one page-load performance report from one client.
type Report struct {
	// UserID is the identifying cookie value Oak issued to this client.
	UserID string `json:"userId"`
	// Page is the site-relative path of the loaded page (e.g. "/index.html").
	Page string `json:"page"`
	// GeneratedAtUnixMs timestamps the report (client clock, Unix millis).
	GeneratedAtUnixMs int64 `json:"generatedAtUnixMs"`
	// Entries lists every object downloaded during the page load.
	Entries []Entry `json:"entries"`

	// pooled marks a report issued by the report pool (see pool.go); Release
	// returns it. Never serialized.
	pooled bool
}

// Validation errors returned by Validate.
var (
	ErrNoUserID  = errors.New("report: missing user id")
	ErrNoEntries = errors.New("report: no entries")
)

// Validate checks structural invariants the Oak server relies on.
func (r *Report) Validate() error {
	if r.UserID == "" {
		return ErrNoUserID
	}
	if len(r.Entries) == 0 {
		return ErrNoEntries
	}
	for i, e := range r.Entries {
		if e.URL == "" {
			return fmt.Errorf("report: entry %d: empty url", i)
		}
		if e.SizeBytes < 0 {
			return fmt.Errorf("report: entry %d: negative size %d", i, e.SizeBytes)
		}
		if e.DurationMillis < 0 {
			return fmt.Errorf("report: entry %d: negative duration %v", i, e.DurationMillis)
		}
	}
	return nil
}

// FailedCount returns how many entries mark failed downloads.
func (r *Report) FailedCount() int {
	n := 0
	for _, e := range r.Entries {
		if e.Failed {
			n++
		}
	}
	return n
}

// GeneratedAt returns the report timestamp as a time.Time.
func (r *Report) GeneratedAt() time.Time {
	return time.UnixMilli(r.GeneratedAtUnixMs)
}

// Marshal encodes the report as JSON (the POST body format).
func (r *Report) Marshal() ([]byte, error) {
	return json.Marshal(r)
}

// Unmarshal decodes a JSON report body.
func Unmarshal(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &r, nil
}

// WireSize returns the JSON-encoded size of the report in bytes. Figure 15
// of the paper studies this distribution (median < 10 KB).
func (r *Report) WireSize() (int, error) {
	data, err := r.Marshal()
	if err != nil {
		return 0, err
	}
	return len(data), nil
}

// PageLoadTime approximates the total page load time as the maximum entry
// duration (objects load concurrently; the slowest gate completes the load).
// It returns 0 for an empty report.
func (r *Report) PageLoadTime() time.Duration {
	var max time.Duration
	for _, e := range r.Entries {
		if d := e.Duration(); d > max {
			max = d
		}
	}
	return max
}

// TotalBytes returns the sum of entry sizes.
func (r *Report) TotalBytes() int64 {
	var total int64
	for _, e := range r.Entries {
		total += e.SizeBytes
	}
	return total
}

// ExternalFraction returns the fraction of entries whose host is neither
// originHost nor one of its subdomains — the paper's Figure 1 metric.
// It returns 0 for an empty report.
func (r *Report) ExternalFraction(originHost string) float64 {
	if len(r.Entries) == 0 {
		return 0
	}
	var external int
	for i := range r.Entries {
		if IsExternalHost(r.Entries[i].Host(), originHost) {
			external++
		}
	}
	return float64(external) / float64(len(r.Entries))
}

// IsExternalHost reports whether host belongs to a different site than
// originHost. Subdomains of the origin do not count as external, matching
// the paper's measurement methodology ("We do not consider sub-domains of
// the original domain to be outside hosts").
func IsExternalHost(host, originHost string) bool {
	if host == "" || originHost == "" {
		return false
	}
	host = strings.ToLower(host)
	originHost = strings.ToLower(originHost)
	if host == originHost {
		return false
	}
	return !strings.HasSuffix(host, "."+originHost)
}
