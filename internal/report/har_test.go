package report

import (
	"strings"
	"testing"
)

const sampleHAR = `{
  "log": {
    "version": "1.2",
    "pages": [{"id": "page_1", "title": "http://news.example/world/index.html"}],
    "entries": [
      {
        "pageref": "page_1",
        "time": 123.4,
        "request": {"method": "GET", "url": "http://news.example/world/index.html"},
        "response": {"status": 200, "content": {"size": 20480, "mimeType": "text/html"}},
        "serverIPAddress": "93.184.216.34"
      },
      {
        "pageref": "page_1",
        "time": 88.0,
        "request": {"method": "GET", "url": "http://cdn.example/app.js"},
        "response": {"status": 200, "content": {"size": 51200, "mimeType": "application/javascript"}},
        "serverIPAddress": "151.101.1.1",
        "_initiator": {"url": "http://news.example/world/index.html"}
      },
      {
        "pageref": "page_1",
        "time": 45.5,
        "request": {"method": "GET", "url": "http://img.example/logo.png"},
        "response": {"status": 200, "content": {"size": -1, "mimeType": "image/png"}, "bodySize": 4096},
        "serverIPAddress": "151.101.2.2"
      },
      {
        "pageref": "page_1",
        "time": 30.0,
        "request": {"method": "POST", "url": "http://api.example/beacon"},
        "response": {"status": 204, "content": {"size": 0, "mimeType": ""}}
      },
      {
        "pageref": "page_1",
        "time": 10.0,
        "request": {"method": "GET", "url": "http://gone.example/missing.css"},
        "response": {"status": 404, "content": {"size": 100, "mimeType": "text/css"}}
      }
    ]
  }
}`

func TestFromHAR(t *testing.T) {
	rep, err := FromHAR([]byte(sampleHAR), "har-user")
	if err != nil {
		t.Fatal(err)
	}
	if rep.UserID != "har-user" {
		t.Errorf("UserID = %q", rep.UserID)
	}
	if rep.Page != "/world/index.html" {
		t.Errorf("Page = %q, want /world/index.html", rep.Page)
	}
	// POST and 404 entries excluded.
	if len(rep.Entries) != 3 {
		t.Fatalf("entries = %d, want 3: %+v", len(rep.Entries), rep.Entries)
	}
	if err := rep.Validate(); err != nil {
		t.Fatalf("converted report invalid: %v", err)
	}

	byURL := make(map[string]Entry)
	for _, e := range rep.Entries {
		byURL[e.URL] = e
	}
	js := byURL["http://cdn.example/app.js"]
	if js.Kind != KindScript || js.SizeBytes != 51200 || js.ServerAddr != "151.101.1.1" {
		t.Errorf("js entry = %+v", js)
	}
	if js.InitiatorURL != "http://news.example/world/index.html" {
		t.Errorf("initiator = %q", js.InitiatorURL)
	}
	// Negative content size falls back to bodySize.
	img := byURL["http://img.example/logo.png"]
	if img.SizeBytes != 4096 || img.Kind != KindImage {
		t.Errorf("img entry = %+v", img)
	}
	html := byURL["http://news.example/world/index.html"]
	if html.Kind != KindHTML {
		t.Errorf("html kind = %q", html.Kind)
	}
}

func TestFromHARGrouping(t *testing.T) {
	rep, err := FromHAR([]byte(sampleHAR), "u")
	if err != nil {
		t.Fatal(err)
	}
	servers := GroupByServer(rep)
	if len(servers) != 3 {
		t.Errorf("servers = %d, want 3", len(servers))
	}
}

func TestFromHARErrors(t *testing.T) {
	if _, err := FromHAR([]byte("{oops"), "u"); err == nil {
		t.Error("bad json: want error")
	}
	if _, err := FromHAR([]byte(`{"log":{"entries":[]}}`), "u"); err == nil {
		t.Error("empty har: want error")
	}
	onlyPost := `{"log":{"entries":[{"request":{"method":"POST","url":"http://x/y"},"response":{"status":200,"content":{}},"time":5}]}}`
	if _, err := FromHAR([]byte(onlyPost), "u"); err == nil {
		t.Error("no GET entries: want error")
	}
}

func TestPagePath(t *testing.T) {
	tests := []struct {
		title, id, want string
	}{
		{"http://a.example/x/y.html", "p1", "/x/y.html"},
		{"https://a.example", "p1", "/"},
		{"Some Title", "/direct/path.html", "/direct/path.html"},
		{"Some Title", "page_1", "/"},
	}
	for _, tt := range tests {
		if got := pagePath(tt.title, tt.id); got != tt.want {
			t.Errorf("pagePath(%q, %q) = %q, want %q", tt.title, tt.id, got, tt.want)
		}
	}
}

func TestKindForMime(t *testing.T) {
	tests := []struct {
		mime string
		want ObjectKind
	}{
		{"application/javascript", KindScript},
		{"text/javascript; charset=utf-8", KindScript},
		{"image/webp", KindImage},
		{"text/css", KindCSS},
		{"text/html", KindHTML},
		{"font/woff2", KindOther},
		{"", ""},
	}
	for _, tt := range tests {
		if got := kindForMime(tt.mime); got != tt.want {
			t.Errorf("kindForMime(%q) = %q, want %q", tt.mime, got, tt.want)
		}
	}
}

func TestFromHARLargeSample(t *testing.T) {
	// A HAR with many entries round-trips through validation and grouping.
	var b strings.Builder
	b.WriteString(`{"log":{"pages":[{"id":"p","title":"http://site.example/"}],"entries":[`)
	for i := 0; i < 60; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		host := []string{"a.example", "b.example", "c.example"}[i%3]
		b.WriteString(`{"time":50,"request":{"method":"GET","url":"http://` + host + `/o` +
			string(rune('0'+i%10)) + `.bin"},"response":{"status":200,"content":{"size":1000,"mimeType":"image/png"}},"serverIPAddress":"1.1.1.` +
			string(rune('1'+i%3)) + `"}`)
	}
	b.WriteString("]}}")
	rep, err := FromHAR([]byte(b.String()), "bulk")
	if err != nil {
		t.Fatal(err)
	}
	if err := rep.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(GroupByServer(rep)) != 3 {
		t.Errorf("grouping = %d servers, want 3", len(GroupByServer(rep)))
	}
}
