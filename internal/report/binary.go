package report

import (
	"encoding/binary"
	"errors"
	"math"
)

// OAKRPT1: a compact length-prefixed binary report encoding for
// instrumented clients. JSON spends most of a report's wire bytes on
// punctuation and repeated key names; the paper's reports are a restricted
// HAR subset (median < 10 KB) uploaded from clients where bytes and battery
// matter, so the binary format drops the keys entirely: the schema is fixed,
// fields appear in a fixed order, strings are uvarint-length-prefixed,
// integers are zigzag varints and durations are raw float64 bits.
//
// Layout (single report, Content-Type application/x-oak-report):
//
//	"OAKRPT1"                          7-byte magic
//	userID    uvarint len + bytes      first so routing can sniff it cheaply
//	page      uvarint len + bytes
//	generatedAtUnixMs zigzag varint
//	count     uvarint
//	entries   count ×:
//	  url           uvarint len + bytes
//	  serverAddr    uvarint len + bytes
//	  sizeBytes     zigzag varint
//	  durationMillis float64 bits, little-endian
//	  initiatorUrl  uvarint len + bytes
//	  kind          uvarint len + bytes
//	  flags         1 byte (bit0 = failed; other bits reserved, must be 0)
//
// A batch (Content-Type application/x-oak-report-batch) is a concatenation
// of frames, each a uvarint byte length followed by one single-report
// payload. Frames are self-describing, so the gateway slices a mixed-user
// batch into per-owner sub-batches without decoding entries.

// Content types for report submission. The JSON and NDJSON types predate the
// binary format; origin negotiates by Content-Type.
const (
	ContentTypeJSON        = "application/json"
	ContentTypeNDJSON      = "application/x-ndjson"
	ContentTypeBinary      = "application/x-oak-report"
	ContentTypeBinaryBatch = "application/x-oak-report-batch"
)

// binaryMagic identifies an OAKRPT1 payload.
const binaryMagic = "OAKRPT1"

// MaxBinaryStringLen bounds any single length-prefixed string, so a hostile
// length prefix cannot demand a huge allocation.
const MaxBinaryStringLen = 1 << 20

// binMinEntrySize is the smallest possible encoded entry (four empty
// strings, one-byte varints, 8 float bytes, flags): used to reject entry
// counts the remaining payload cannot possibly hold.
const binMinEntrySize = 13

// Typed decode errors. Hostile input maps to exactly these; callers gate
// status codes on them.
var (
	// ErrBinaryMagic means the payload does not start with OAKRPT1.
	ErrBinaryMagic = errors.New("report: not an OAKRPT1 payload")
	// ErrBinaryTruncated means the payload ended before a declared length.
	ErrBinaryTruncated = errors.New("report: truncated OAKRPT1 payload")
	// ErrBinaryOversized means a declared length exceeds the format limits
	// or the bytes actually present.
	ErrBinaryOversized = errors.New("report: OAKRPT1 length exceeds limit")
	// ErrBinaryCorrupt means a malformed varint, reserved flag bits, or
	// trailing bytes after the payload.
	ErrBinaryCorrupt = errors.New("report: corrupt OAKRPT1 payload")
)

// IsBinary reports whether data starts with the OAKRPT1 magic.
func IsBinary(data []byte) bool {
	return len(data) >= len(binaryMagic) && string(data[:len(binaryMagic)]) == binaryMagic
}

// AppendBinary appends the OAKRPT1 encoding of r to dst.
func (r *Report) AppendBinary(dst []byte) []byte {
	dst = append(dst, binaryMagic...)
	dst = appendBinString(dst, r.UserID)
	dst = appendBinString(dst, r.Page)
	dst = binary.AppendVarint(dst, r.GeneratedAtUnixMs)
	dst = binary.AppendUvarint(dst, uint64(len(r.Entries)))
	for i := range r.Entries {
		e := &r.Entries[i]
		dst = appendBinString(dst, e.URL)
		dst = appendBinString(dst, e.ServerAddr)
		dst = binary.AppendVarint(dst, e.SizeBytes)
		dst = binary.LittleEndian.AppendUint64(dst, math.Float64bits(e.DurationMillis))
		dst = appendBinString(dst, e.InitiatorURL)
		dst = appendBinString(dst, string(e.Kind))
		var flags byte
		if e.Failed {
			flags |= 1
		}
		dst = append(dst, flags)
	}
	return dst
}

// MarshalBinary encodes r as a single OAKRPT1 payload. It fails only when a
// string field exceeds MaxBinaryStringLen (such a payload could never be
// decoded back).
func (r *Report) MarshalBinary() ([]byte, error) {
	if len(r.UserID) > MaxBinaryStringLen || len(r.Page) > MaxBinaryStringLen {
		return nil, ErrBinaryOversized
	}
	for i := range r.Entries {
		e := &r.Entries[i]
		if len(e.URL) > MaxBinaryStringLen || len(e.ServerAddr) > MaxBinaryStringLen ||
			len(e.InitiatorURL) > MaxBinaryStringLen || len(e.Kind) > MaxBinaryStringLen {
			return nil, ErrBinaryOversized
		}
	}
	return r.AppendBinary(nil), nil
}

// UnmarshalBinary decodes a single OAKRPT1 payload into a fresh report.
func UnmarshalBinary(data []byte) (*Report, error) {
	r := &Report{}
	if err := decodeBinaryInto(data, r); err != nil {
		return nil, err
	}
	return r, nil
}

// DecodeBinaryPooled decodes a single OAKRPT1 payload into a pooled report
// (same ownership contract as DecodePooled).
func DecodeBinaryPooled(data []byte) (*Report, error) {
	r := acquireReport()
	if err := decodeBinaryInto(data, r); err != nil {
		r.Release()
		return nil, err
	}
	return r, nil
}

// decodeBinaryInto decodes data into r, recycling equal strings in place
// and precomputing entry hosts, exactly like the JSON fast path.
func decodeBinaryInto(data []byte, r *Report) error {
	if !IsBinary(data) {
		return ErrBinaryMagic
	}
	b := data[len(binaryMagic):]
	tok, b, err := binString(b)
	if err != nil {
		return err
	}
	setString(&r.UserID, tok)
	tok, b, err = binString(b)
	if err != nil {
		return err
	}
	setString(&r.Page, tok)
	gen, b, err := binVarint(b)
	if err != nil {
		return err
	}
	r.GeneratedAtUnixMs = gen
	count, b, err := binUvarint(b)
	if err != nil {
		return err
	}
	if count > uint64(len(b))/binMinEntrySize {
		return ErrBinaryOversized
	}
	if r.Entries == nil {
		r.Entries = make([]Entry, 0, count)
	} else {
		r.Entries = r.Entries[:0]
	}
	for n := 0; n < int(count); n++ {
		if n < cap(r.Entries) {
			r.Entries = r.Entries[:n+1]
		} else {
			r.Entries = append(r.Entries, Entry{})
		}
		e := &r.Entries[n]
		if tok, b, err = binString(b); err != nil {
			return err
		}
		if e.URL != string(tok) {
			e.URL = string(tok)
			e.hostKnown = false
		}
		if tok, b, err = binString(b); err != nil {
			return err
		}
		setString(&e.ServerAddr, tok)
		if e.SizeBytes, b, err = binVarint(b); err != nil {
			return err
		}
		if len(b) < 8 {
			return ErrBinaryTruncated
		}
		e.DurationMillis = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		if tok, b, err = binString(b); err != nil {
			return err
		}
		setString(&e.InitiatorURL, tok)
		if tok, b, err = binString(b); err != nil {
			return err
		}
		if string(e.Kind) != string(tok) {
			e.Kind = ObjectKind(tok)
		}
		if len(b) < 1 {
			return ErrBinaryTruncated
		}
		flags := b[0]
		b = b[1:]
		if flags&^1 != 0 {
			return ErrBinaryCorrupt
		}
		e.Failed = flags&1 != 0
		if !e.hostKnown {
			e.setHost(hostOf(e.URL))
		}
	}
	if len(b) != 0 {
		return ErrBinaryCorrupt
	}
	return nil
}

// SniffBinaryUser returns the userID of a single OAKRPT1 payload (or batch
// frame payload) without decoding the rest, for gateway routing. Malformed
// payloads yield "" — they still route deterministically and the owner
// backend rejects them properly.
func SniffBinaryUser(data []byte) string {
	if !IsBinary(data) {
		return ""
	}
	tok, _, err := binString(data[len(binaryMagic):])
	if err != nil {
		return ""
	}
	return string(tok)
}

// AppendBinaryFrame appends one batch frame (uvarint length + payload) to
// dst. scratch, if non-nil, is reused for the intermediate encoding; pass
// the previous call's second return to amortise it.
func AppendBinaryFrame(dst, scratch []byte, r *Report) (frame, scratch2 []byte) {
	scratch = r.AppendBinary(scratch[:0])
	dst = binary.AppendUvarint(dst, uint64(len(scratch)))
	return append(dst, scratch...), scratch
}

// NextBinaryFrame splits the first frame off a batch body. frame is the
// payload (decodable by UnmarshalBinary and sniffable by SniffBinaryUser),
// rest is the remaining batch. An empty body returns (nil, nil, nil).
func NextBinaryFrame(body []byte) (frame, rest []byte, err error) {
	if len(body) == 0 {
		return nil, nil, nil
	}
	n, size := binary.Uvarint(body)
	if size <= 0 {
		return nil, nil, ErrBinaryCorrupt
	}
	body = body[size:]
	if n > uint64(len(body)) {
		return nil, nil, ErrBinaryTruncated
	}
	return body[:n], body[n:], nil
}

func appendBinString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func binString(b []byte) (tok, rest []byte, err error) {
	n, rest, err := binUvarint(b)
	if err != nil {
		return nil, nil, err
	}
	if n > MaxBinaryStringLen {
		return nil, nil, ErrBinaryOversized
	}
	if n > uint64(len(rest)) {
		return nil, nil, ErrBinaryTruncated
	}
	return rest[:n], rest[n:], nil
}

// binUvarint reads a canonical (minimal-length) uvarint. Non-minimal
// encodings are rejected so every decodable payload re-encodes
// byte-identically — the property FuzzBinaryRoundTrip pins.
func binUvarint(b []byte) (uint64, []byte, error) {
	v, size := binary.Uvarint(b)
	if size == 0 {
		return 0, nil, ErrBinaryTruncated
	}
	if size < 0 || (size > 1 && b[size-1] == 0) {
		return 0, nil, ErrBinaryCorrupt
	}
	return v, b[size:], nil
}

func binVarint(b []byte) (int64, []byte, error) {
	v, size := binary.Varint(b)
	if size == 0 {
		return 0, nil, ErrBinaryTruncated
	}
	if size < 0 || (size > 1 && b[size-1] == 0) {
		return 0, nil, ErrBinaryCorrupt
	}
	return v, b[size:], nil
}
