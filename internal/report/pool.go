package report

import "sync"

// Report pooling. Decoding dominates ingest allocation: every report arrives
// as bytes, becomes a short-lived *Report, and dies as soon as the engine's
// shard has folded it into the user's profile. Pooled reports recycle the
// struct, the Entries backing array, and — via the decoders' string
// recycling — most of the string data too, since production traffic repeats
// the same URLs, hosts and kinds report after report.
//
// Ownership discipline: a pooled report obtained from DecodePooled /
// DecodeBinaryPooled is handed to the engine with the submit call, and the
// engine releases it exactly once on every path out of ingest (processed,
// validation-failed, cancelled while queued, shed, or engine closed). The
// caller must not touch the report after submitting it. Release is a no-op
// for reports the pool did not issue, so code paths shared with caller-owned
// reports need no special casing.

var reportPool = sync.Pool{New: func() any { return new(Report) }}

// acquireReport returns a pooled report whose contents are unspecified; the
// decoders overwrite every field (recycling equal strings in place).
func acquireReport() *Report {
	r := reportPool.Get().(*Report)
	r.pooled = true
	return r
}

// Release returns a pooled report to the pool. It is a no-op for nil
// receivers and for reports that did not come from the pool, and must be
// called at most once per decode — after it, the report may be reused by a
// concurrent decoder and must not be read.
func (r *Report) Release() {
	if r == nil || !r.pooled {
		return
	}
	r.pooled = false
	reportPool.Put(r)
}

// Pooled reports whether r came from the report pool and has not been
// released yet.
func (r *Report) Pooled() bool { return r != nil && r.pooled }
