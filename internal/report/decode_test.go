package report

import (
	"encoding/json"
	"fmt"
	"math"
	"net/url"
	"strings"
	"testing"
)

// referenceDecode is the pre-fast-path decoder: encoding/json straight into
// a zero Report. The fast path must be indistinguishable from it.
func referenceDecode(data []byte) (*Report, error) {
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return &r, nil
}

// equalDecoded compares two reports field by field, ignoring the unexported
// host cache (the fast path precomputes it, encoding/json cannot).
func equalDecoded(a, b *Report) bool {
	if (a == nil) != (b == nil) {
		return false
	}
	if a == nil {
		return true
	}
	if a.UserID != b.UserID || a.Page != b.Page || a.GeneratedAtUnixMs != b.GeneratedAtUnixMs {
		return false
	}
	if (a.Entries == nil) != (b.Entries == nil) || len(a.Entries) != len(b.Entries) {
		return false
	}
	for i := range a.Entries {
		x, y := &a.Entries[i], &b.Entries[i]
		if x.URL != y.URL || x.ServerAddr != y.ServerAddr || x.SizeBytes != y.SizeBytes ||
			math.Float64bits(x.DurationMillis) != math.Float64bits(y.DurationMillis) ||
			x.InitiatorURL != y.InitiatorURL || x.Kind != y.Kind || x.Failed != y.Failed {
			return false
		}
		// The precomputed host must agree with lazy url.Parse extraction.
		if x.Host() != y.Host() {
			return false
		}
	}
	return true
}

func decodeCorpus() [][]byte {
	full := &Report{
		UserID:            "user-42",
		Page:              "/index.html",
		GeneratedAtUnixMs: 1700000000123,
		Entries: []Entry{
			{URL: "http://s1.com/jquery.js?a=1&b=2", ServerAddr: "10.0.0.1:443", SizeBytes: 1024, DurationMillis: 95.5, InitiatorURL: "http://site.com/", Kind: KindScript},
			{URL: "https://cdn.example:8443/img.png", SizeBytes: 200 * 1024, DurationMillis: 2000, Kind: KindImage, Failed: true},
		},
	}
	canonical, _ := full.Marshal()
	corpus := [][]byte{
		canonical,
		[]byte(`{}`),
		[]byte(`{"userId":"u"}`),
		[]byte(`{"userId":"u","entries":[]}`),
		[]byte(`{"userId":"u","entries":[{}]}`),
		[]byte(`{"userId":"u","entries":[{"url":"http://a.com/x","durationMillis":0.1}]}`),
		[]byte(`  {  "userId" : "u" , "page" : "/p" }  `),
		[]byte(`{"userId":"a&b","page":"\t\n\"\\é"}`),
		[]byte(`{"userId":"u","generatedAtUnixMs":-5}`),
		[]byte(`{"userId":"u","generatedAtUnixMs":9223372036854775807}`),
		[]byte(`{"userId":"u","generatedAtUnixMs":9223372036854775808}`),
		[]byte(`{"userId":"u","generatedAtUnixMs":1.5}`),
		[]byte(`{"entries":[{"durationMillis":2e3}]}`),
		[]byte(`{"entries":[{"durationMillis":-0.25}]}`),
		[]byte(`{"entries":[{"durationMillis":0.1234567890123456789}]}`),
		[]byte(`{"entries":[{"sizeBytes":-0}]}`),
		[]byte(`{"entries":[{"sizeBytes":01}]}`),
		[]byte(`{"entries":[{"failed":true},{"failed":false}]}`),
		[]byte(`{"entries":[{"failed":null}]}`),
		[]byte(`{"userId":null}`),
		[]byte(`{"USERID":"case-insensitive"}`),
		[]byte(`{"userId":"dup","userId":"wins"}`),
		[]byte(`{"unknown":"ignored","userId":"u"}`),
		[]byte(`{"userId":"u"} trailing`),
		[]byte(`{"userId":"u",}`),
		[]byte(`[1,2,3]`),
		[]byte(`"just a string"`),
		[]byte(`{"userId":"😀"}`),
		[]byte("{\"userId\":\"café\"}"),
		[]byte(`{"entries":[{"url":"HTTP://UPPER.Example.COM:8080/x"}]}`),
		[]byte(`{"entries":[{"url":"http://user:pw@host.com/x"}]}`),
		[]byte(`{"entries":[{"url":"http://[::1]:80/x"}]}`),
		[]byte(`{"entries":[{"url":"not a url"}]}`),
		[]byte(``),
	}
	return corpus
}

func TestDecodeMatchesEncodingJSON(t *testing.T) {
	for _, data := range decodeCorpus() {
		want, wantErr := referenceDecode(data)
		got, gotErr := Decode(data)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("%s: err mismatch: ref=%v fast=%v", data, wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("%s: error text mismatch:\nref:  %v\nfast: %v", data, wantErr, gotErr)
			}
			continue
		}
		if !equalDecoded(want, got) {
			t.Fatalf("%s: decoded mismatch:\nref:  %+v\nfast: %+v", data, want, got)
		}
	}
}

// FuzzDecodeEquivalence pins the fast JSON path to encoding/json: identical
// reports on success, identical error text on failure, for both the fresh
// and the pooled decoder (the pooled one seeded with stale state to exercise
// string recycling and unseen-field zeroing).
func FuzzDecodeEquivalence(f *testing.F) {
	for _, data := range decodeCorpus() {
		f.Add(data)
	}
	stale := []byte(`{"userId":"stale-user","page":"/stale","generatedAtUnixMs":99,"entries":[` +
		`{"url":"http://stale.com/a.js","serverAddr":"ip-stale","sizeBytes":7,"durationMillis":7.5,"initiatorUrl":"http://stale.com/","kind":"script","failed":true},` +
		`{"url":"http://stale.com/b.js","kind":"script"},{"url":"http://stale.com/c.js"}]}`)
	f.Fuzz(func(t *testing.T, data []byte) {
		want, wantErr := referenceDecode(data)
		got, gotErr := Decode(data)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("err mismatch: ref=%v fast=%v", wantErr, gotErr)
		}
		if wantErr != nil {
			if wantErr.Error() != gotErr.Error() {
				t.Fatalf("error text mismatch:\nref:  %v\nfast: %v", wantErr, gotErr)
			}
			return
		}
		if !equalDecoded(want, got) {
			t.Fatalf("decoded mismatch:\nref:  %+v\nfast: %+v", want, got)
		}
		// Pooled path, with stale prior contents in the pooled report.
		pre, err := DecodePooled(stale)
		if err != nil {
			t.Fatalf("stale seed: %v", err)
		}
		pre.Release()
		pr, perr := DecodePooled(data)
		if perr != nil {
			t.Fatalf("pooled decode diverged: %v", perr)
		}
		if !equalDecoded(want, pr) {
			t.Fatalf("pooled mismatch:\nref:    %+v\npooled: %+v", want, pr)
		}
		pr.Release()
	})
}

// FuzzHostEquivalence pins fastHost against url.Parse(...).Hostname(): any
// URL the fast scanner claims to handle must yield exactly what url.Parse
// yields.
func FuzzHostEquivalence(f *testing.F) {
	seeds := []string{
		"http://s1.com/jquery.js", "https://cdn.example:8443/img.png",
		"HTTP://UPPER.Example.COM:8080/x", "http://user:pw@host.com/x",
		"http://[::1]:80/x", "http://host.com:/x", "http://host.com:abc/x",
		"//scheme-relative.com/x", "not a url", "", "http://", "http://%41.com/",
		"ftp://a.b-c_d~e/", "http://a.com?q=1", "http://a.com#f", "http://a.com:8080",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, raw string) {
		h, ok := fastHost(raw)
		if !ok {
			return // defers to url.Parse; nothing to check
		}
		u, err := url.Parse(raw)
		want := ""
		if err == nil {
			want = u.Hostname()
		}
		if h != want {
			t.Fatalf("fastHost(%q) = %q, url.Parse says %q (err=%v)", raw, h, want, err)
		}
	})
}

func TestPooledDecodeRecyclesStrings(t *testing.T) {
	body := []byte(`{"userId":"u1","page":"/p","generatedAtUnixMs":5,"entries":[{"url":"http://a.com/x.js","serverAddr":"ip-a","kind":"script"}]}`)
	r1, err := DecodePooled(body)
	if err != nil {
		t.Fatal(err)
	}
	if !r1.Pooled() {
		t.Fatal("DecodePooled returned unpooled report")
	}
	url1 := r1.Entries[0].URL
	host1 := r1.Entries[0].Host()
	r1.Release()
	if r1.Pooled() {
		t.Fatal("Release did not clear pooled mark")
	}

	allocs := testing.AllocsPerRun(100, func() {
		r, err := DecodePooled(body)
		if err != nil {
			t.Fatal(err)
		}
		if r.Entries[0].URL != url1 || r.Entries[0].Host() != host1 {
			t.Fatal("recycled decode mismatch")
		}
		r.Release()
	})
	if allocs > 1 {
		t.Fatalf("steady-state pooled decode allocated %.1f/op, want ≤1", allocs)
	}
}

func TestDecodeLargeCanonicalReport(t *testing.T) {
	rep := &Report{UserID: "u", Page: "/big", GeneratedAtUnixMs: 123}
	for i := 0; i < 40; i++ {
		rep.Entries = append(rep.Entries, Entry{
			URL:            fmt.Sprintf("http://s%d.example/obj-%d.js?x=%d&y=%d", i%7, i, i, i*3),
			ServerAddr:     fmt.Sprintf("10.0.0.%d:443", i%7),
			SizeBytes:      int64(i * 1837),
			DurationMillis: float64(i) * 13.25,
			InitiatorURL:   "http://site.com/big",
			Kind:           KindScript,
			Failed:         i%11 == 0,
		})
	}
	data, err := rep.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	want, _ := referenceDecode(data)
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDecoded(want, got) {
		t.Fatal("large canonical report decode mismatch")
	}
	// The canonical marshal of a report must take the fast path (this is
	// the wire shape every oak client emits).
	var probe Report
	if !decodeFastInto(data, &probe) {
		t.Fatal("canonical report fell off the fast path")
	}
	if strings.Contains(string(data), "\\u") {
		t.Log("corpus exercised escape sequences")
	}
}
