package report

import (
	"encoding/json"
	"fmt"
	"sync"
	"unicode/utf8"
)

// The JSON fast path. Reports have a fixed, tiny schema, yet encoding/json
// pays for full generality: reflection, field matching, interface boxing.
// decodeFastInto scans the byte slice directly into a *Report — no token
// stream, no intermediate maps — and bails out to encoding/json on ANY
// construct it cannot prove it handles identically: unknown or duplicate
// keys, case-insensitive key matches, null, non-ASCII string bytes,
// surrogate escapes, exponents, numeric overflow, trailing garbage. The
// fallback, not the fast path, produces every error, so error text and
// acceptance are encoding/json's own. FuzzDecodeEquivalence pins the two
// paths to byte-identical results.
//
// Strings are "recycled" when decoding into a pooled report: if the incoming
// token equals the string already in the target field (common — production
// traffic repeats the same URLs and hosts endlessly), the existing string is
// kept and no allocation happens. Strings are immutable, so sharing them
// across reports is safe.

// Decode parses a JSON report body, trying the fast path first. It is a
// drop-in replacement for Unmarshal (identical results and errors).
func Decode(data []byte) (*Report, error) {
	r := &Report{}
	if decodeFastInto(data, r) {
		return r, nil
	}
	*r = Report{}
	if err := json.Unmarshal(data, r); err != nil {
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return r, nil
}

// DecodePooled is Decode into a pooled report. On success the caller owns
// the report and must arrange exactly one Release (submitting to the engine
// transfers that obligation); on error nothing is retained.
func DecodePooled(data []byte) (*Report, error) {
	r := acquireReport()
	if decodeFastInto(data, r) {
		return r, nil
	}
	*r = Report{pooled: true}
	if err := json.Unmarshal(data, r); err != nil {
		r.Release()
		return nil, fmt.Errorf("report: decode: %w", err)
	}
	return r, nil
}

var fastDecPool = sync.Pool{New: func() any { return new(fastDecoder) }}

type fastDecoder struct {
	data []byte
	i    int
	buf  []byte // unescape scratch, reused across strings and decodes
}

// decodeFastInto scans data into r. false means "outside the fast-path
// subset": r may be partially overwritten and the caller must reset it and
// run the encoding/json fallback.
func decodeFastInto(data []byte, r *Report) bool {
	d := fastDecPool.Get().(*fastDecoder)
	d.data, d.i = data, 0
	ok := d.decodeReport(r)
	d.data = nil
	fastDecPool.Put(d)
	return ok
}

// Seen-field masks: duplicates punt to the fallback, unseen fields are
// zeroed afterwards so a recycled report matches a decode into zero memory.
const (
	seenUserID = 1 << iota
	seenPage
	seenGenerated
	seenEntries
)

const (
	eSeenURL = 1 << iota
	eSeenServerAddr
	eSeenSize
	eSeenDuration
	eSeenInitiator
	eSeenKind
	eSeenFailed
)

func (d *fastDecoder) decodeReport(r *Report) bool {
	d.skipWS()
	if !d.consume('{') {
		return false
	}
	seen := 0
	d.skipWS()
	if !d.consume('}') {
		for {
			key, ok := d.scanString()
			if !ok {
				return false
			}
			d.skipWS()
			if !d.consume(':') {
				return false
			}
			d.skipWS()
			switch string(key) {
			case "userId":
				if seen&seenUserID != 0 {
					return false
				}
				seen |= seenUserID
				tok, ok := d.scanString()
				if !ok {
					return false
				}
				setString(&r.UserID, tok)
			case "page":
				if seen&seenPage != 0 {
					return false
				}
				seen |= seenPage
				tok, ok := d.scanString()
				if !ok {
					return false
				}
				setString(&r.Page, tok)
			case "generatedAtUnixMs":
				if seen&seenGenerated != 0 {
					return false
				}
				seen |= seenGenerated
				v, ok := d.scanInt64()
				if !ok {
					return false
				}
				r.GeneratedAtUnixMs = v
			case "entries":
				if seen&seenEntries != 0 {
					return false
				}
				seen |= seenEntries
				if !d.decodeEntries(r) {
					return false
				}
			default:
				return false
			}
			d.skipWS()
			if d.consume(',') {
				d.skipWS()
				continue
			}
			if d.consume('}') {
				break
			}
			return false
		}
	}
	d.skipWS()
	if d.i != len(d.data) {
		return false
	}
	if seen&seenUserID == 0 {
		r.UserID = ""
	}
	if seen&seenPage == 0 {
		r.Page = ""
	}
	if seen&seenGenerated == 0 {
		r.GeneratedAtUnixMs = 0
	}
	if seen&seenEntries == 0 {
		r.Entries = nil
	}
	return true
}

func (d *fastDecoder) decodeEntries(r *Report) bool {
	if !d.consume('[') {
		return false
	}
	// Reuse the backing array; stale elements past the new length keep their
	// strings so recycling can match against them slot by slot.
	if r.Entries == nil {
		r.Entries = make([]Entry, 0, 4)
	} else {
		r.Entries = r.Entries[:0]
	}
	d.skipWS()
	if d.consume(']') {
		return true
	}
	for {
		n := len(r.Entries)
		if n < cap(r.Entries) {
			r.Entries = r.Entries[:n+1]
		} else {
			r.Entries = append(r.Entries, Entry{})
		}
		if !d.decodeEntry(&r.Entries[n]) {
			return false
		}
		d.skipWS()
		if d.consume(',') {
			d.skipWS()
			continue
		}
		if d.consume(']') {
			return true
		}
		return false
	}
}

func (d *fastDecoder) decodeEntry(e *Entry) bool {
	if !d.consume('{') {
		return false
	}
	seen := 0
	d.skipWS()
	if !d.consume('}') {
		for {
			key, ok := d.scanString()
			if !ok {
				return false
			}
			d.skipWS()
			if !d.consume(':') {
				return false
			}
			d.skipWS()
			switch string(key) {
			case "url":
				if seen&eSeenURL != 0 {
					return false
				}
				seen |= eSeenURL
				tok, ok := d.scanString()
				if !ok {
					return false
				}
				if e.URL != string(tok) {
					e.URL = string(tok)
					e.hostKnown = false
				}
			case "serverAddr":
				if seen&eSeenServerAddr != 0 {
					return false
				}
				seen |= eSeenServerAddr
				tok, ok := d.scanString()
				if !ok {
					return false
				}
				setString(&e.ServerAddr, tok)
			case "sizeBytes":
				if seen&eSeenSize != 0 {
					return false
				}
				seen |= eSeenSize
				v, ok := d.scanInt64()
				if !ok {
					return false
				}
				e.SizeBytes = v
			case "durationMillis":
				if seen&eSeenDuration != 0 {
					return false
				}
				seen |= eSeenDuration
				v, ok := d.scanFloat64()
				if !ok {
					return false
				}
				e.DurationMillis = v
			case "initiatorUrl":
				if seen&eSeenInitiator != 0 {
					return false
				}
				seen |= eSeenInitiator
				tok, ok := d.scanString()
				if !ok {
					return false
				}
				setString(&e.InitiatorURL, tok)
			case "kind":
				if seen&eSeenKind != 0 {
					return false
				}
				seen |= eSeenKind
				tok, ok := d.scanString()
				if !ok {
					return false
				}
				if string(e.Kind) != string(tok) {
					e.Kind = ObjectKind(tok)
				}
			case "failed":
				if seen&eSeenFailed != 0 {
					return false
				}
				seen |= eSeenFailed
				v, ok := d.scanBool()
				if !ok {
					return false
				}
				e.Failed = v
			default:
				return false
			}
			d.skipWS()
			if d.consume(',') {
				d.skipWS()
				continue
			}
			if d.consume('}') {
				break
			}
			return false
		}
	}
	if seen&eSeenURL == 0 && e.URL != "" {
		e.URL = ""
		e.hostKnown = false
	}
	if seen&eSeenServerAddr == 0 {
		e.ServerAddr = ""
	}
	if seen&eSeenSize == 0 {
		e.SizeBytes = 0
	}
	if seen&eSeenDuration == 0 {
		e.DurationMillis = 0
	}
	if seen&eSeenInitiator == 0 {
		e.InitiatorURL = ""
	}
	if seen&eSeenKind == 0 {
		e.Kind = ""
	}
	if seen&eSeenFailed == 0 {
		e.Failed = false
	}
	// Host extraction happens here, once, at decode time; a recycled URL
	// keeps its cached host.
	if !e.hostKnown {
		e.setHost(hostOf(e.URL))
	}
	return true
}

// setString stores tok into *dst, keeping the existing string when equal
// (the comparison against string(tok) does not allocate).
func setString(dst *string, tok []byte) {
	if *dst != string(tok) {
		*dst = string(tok)
	}
}

func (d *fastDecoder) skipWS() {
	for d.i < len(d.data) {
		switch d.data[d.i] {
		case ' ', '\t', '\n', '\r':
			d.i++
		default:
			return
		}
	}
}

func (d *fastDecoder) consume(c byte) bool {
	if d.i < len(d.data) && d.data[d.i] == c {
		d.i++
		return true
	}
	return false
}

// scanString scans a JSON string. The returned token aliases either the
// input or the decoder's scratch buffer — callers must consume it before the
// next scan. Non-ASCII bytes, control characters, surrogate escapes and
// invalid escapes all punt to the fallback.
func (d *fastDecoder) scanString() ([]byte, bool) {
	if d.i >= len(d.data) || d.data[d.i] != '"' {
		return nil, false
	}
	d.i++
	start := d.i
	for d.i < len(d.data) {
		c := d.data[d.i]
		if c == '"' {
			tok := d.data[start:d.i]
			d.i++
			return tok, true
		}
		if c == '\\' || c < 0x20 || c >= 0x80 {
			break
		}
		d.i++
	}
	if d.i >= len(d.data) || d.data[d.i] != '\\' {
		return nil, false
	}
	d.buf = append(d.buf[:0], d.data[start:d.i]...)
	for d.i < len(d.data) {
		c := d.data[d.i]
		switch {
		case c == '"':
			d.i++
			return d.buf, true
		case c == '\\':
			d.i++
			if d.i >= len(d.data) {
				return nil, false
			}
			e := d.data[d.i]
			d.i++
			switch e {
			case '"', '\\', '/':
				d.buf = append(d.buf, e)
			case 'b':
				d.buf = append(d.buf, '\b')
			case 'f':
				d.buf = append(d.buf, '\f')
			case 'n':
				d.buf = append(d.buf, '\n')
			case 'r':
				d.buf = append(d.buf, '\r')
			case 't':
				d.buf = append(d.buf, '\t')
			case 'u':
				if d.i+4 > len(d.data) {
					return nil, false
				}
				v, ok := hex4(d.data[d.i : d.i+4])
				if !ok {
					return nil, false
				}
				d.i += 4
				if v >= 0xD800 && v <= 0xDFFF {
					return nil, false // surrogate handling: slow path
				}
				d.buf = utf8.AppendRune(d.buf, rune(v))
			default:
				return nil, false
			}
		case c < 0x20 || c >= 0x80:
			return nil, false
		default:
			d.buf = append(d.buf, c)
			d.i++
		}
	}
	return nil, false
}

func hex4(b []byte) (uint32, bool) {
	var v uint32
	for _, c := range b {
		v <<= 4
		switch {
		case c >= '0' && c <= '9':
			v |= uint32(c - '0')
		case c >= 'a' && c <= 'f':
			v |= uint32(c-'a') + 10
		case c >= 'A' && c <= 'F':
			v |= uint32(c-'A') + 10
		default:
			return 0, false
		}
	}
	return v, true
}

// scanInt64 scans a JSON integer. Fractions, exponents, leading zeros and
// anything near overflow punt to the fallback.
func (d *fastDecoder) scanInt64() (int64, bool) {
	neg := false
	if d.i < len(d.data) && d.data[d.i] == '-' {
		neg = true
		d.i++
	}
	start := d.i
	var m uint64
	for d.i < len(d.data) {
		c := d.data[d.i]
		if c < '0' || c > '9' {
			break
		}
		if m > (1<<63-10)/10 {
			return 0, false
		}
		m = m*10 + uint64(c-'0')
		d.i++
	}
	n := d.i - start
	if n == 0 || (n > 1 && d.data[start] == '0') {
		return 0, false
	}
	if d.i < len(d.data) {
		if c := d.data[d.i]; c == '.' || c == 'e' || c == 'E' {
			return 0, false
		}
	}
	if neg {
		return -int64(m), true
	}
	return int64(m), true
}

// pow10 holds the exactly-representable powers of ten (10^0 .. 10^22).
var pow10 = [23]float64{
	1e0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11,
	1e12, 1e13, 1e14, 1e15, 1e16, 1e17, 1e18, 1e19, 1e20, 1e21, 1e22,
}

// scanFloat64 scans a JSON number whose mantissa fits in 2^53 and whose
// fractional part has at most 22 digits: for those, float64(m)/10^frac is
// exactly strconv.ParseFloat's fast path, so results are bit-identical to
// encoding/json. Exponents and longer mantissas punt to the fallback.
func (d *fastDecoder) scanFloat64() (float64, bool) {
	neg := false
	if d.i < len(d.data) && d.data[d.i] == '-' {
		neg = true
		d.i++
	}
	start := d.i
	var m uint64
	digits := 0
	for d.i < len(d.data) {
		c := d.data[d.i]
		if c < '0' || c > '9' {
			break
		}
		if digits >= 18 {
			return 0, false
		}
		m = m*10 + uint64(c-'0')
		digits++
		d.i++
	}
	intDigits := digits
	if intDigits == 0 || (intDigits > 1 && d.data[start] == '0') {
		return 0, false
	}
	frac := 0
	if d.i < len(d.data) && d.data[d.i] == '.' {
		d.i++
		for d.i < len(d.data) {
			c := d.data[d.i]
			if c < '0' || c > '9' {
				break
			}
			if digits >= 18 {
				return 0, false
			}
			m = m*10 + uint64(c-'0')
			digits++
			frac++
			d.i++
		}
		if frac == 0 {
			return 0, false
		}
	}
	if d.i < len(d.data) {
		if c := d.data[d.i]; c == 'e' || c == 'E' {
			return 0, false
		}
	}
	if m >= 1<<53 || frac > 22 {
		return 0, false
	}
	f := float64(m)
	if frac > 0 {
		f /= pow10[frac]
	}
	if neg {
		f = -f
	}
	return f, true
}

func (d *fastDecoder) scanBool() (bool, bool) {
	if d.i+4 <= len(d.data) && string(d.data[d.i:d.i+4]) == "true" {
		d.i += 4
		return true, true
	}
	if d.i+5 <= len(d.data) && string(d.data[d.i:d.i+5]) == "false" {
		d.i += 5
		return false, true
	}
	return false, false
}
