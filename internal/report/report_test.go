package report

import (
	"errors"
	"math"
	"strings"
	"testing"
	"time"
)

func validReport() *Report {
	return &Report{
		UserID:            "u1",
		Page:              "/index.html",
		GeneratedAtUnixMs: 1700000000000,
		Entries: []Entry{
			{URL: "http://origin.example/index.html", ServerAddr: "10.0.0.1", SizeBytes: 2048, DurationMillis: 30, Kind: KindHTML},
			{URL: "http://cdn.example/app.js", ServerAddr: "10.0.0.2", SizeBytes: 10240, DurationMillis: 80, Kind: KindScript},
			{URL: "http://img.example/hero.jpg", ServerAddr: "10.0.0.3", SizeBytes: 500 * 1024, DurationMillis: 400, Kind: KindImage},
		},
	}
}

func TestValidateOK(t *testing.T) {
	if err := validReport().Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
}

func TestValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Report)
		want   error
	}{
		{"no user", func(r *Report) { r.UserID = "" }, ErrNoUserID},
		{"no entries", func(r *Report) { r.Entries = nil }, ErrNoEntries},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validReport()
			tt.mutate(r)
			if err := r.Validate(); !errors.Is(err, tt.want) {
				t.Errorf("Validate() = %v, want %v", err, tt.want)
			}
		})
	}
}

func TestValidateEntryErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Report)
	}{
		{"empty url", func(r *Report) { r.Entries[1].URL = "" }},
		{"negative size", func(r *Report) { r.Entries[1].SizeBytes = -1 }},
		{"negative duration", func(r *Report) { r.Entries[1].DurationMillis = -5 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			r := validReport()
			tt.mutate(r)
			if err := r.Validate(); err == nil {
				t.Error("Validate() = nil, want error")
			}
		})
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	r := validReport()
	data, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.UserID != r.UserID || got.Page != r.Page || len(got.Entries) != len(r.Entries) {
		t.Errorf("round trip mismatch: got %+v", got)
	}
	if got.Entries[1].URL != r.Entries[1].URL || got.Entries[1].Kind != KindScript {
		t.Errorf("entry round trip mismatch: %+v", got.Entries[1])
	}
}

func TestUnmarshalBadJSON(t *testing.T) {
	if _, err := Unmarshal([]byte("{not json")); err == nil {
		t.Error("Unmarshal(bad) = nil error, want error")
	}
}

func TestEntryHelpers(t *testing.T) {
	e := Entry{URL: "http://cdn.example:8080/a/b.js", SizeBytes: 1000, DurationMillis: 500}
	if got := e.Host(); got != "cdn.example" {
		t.Errorf("Host() = %q, want cdn.example", got)
	}
	if !e.IsSmall() {
		t.Error("IsSmall() = false for 1000 bytes, want true")
	}
	if got := e.Duration(); got != 500*time.Millisecond {
		t.Errorf("Duration() = %v, want 500ms", got)
	}
	// 1000 bytes in 0.5 s = 2000 B/s.
	if got := e.ThroughputBps(); math.Abs(got-2000) > 1e-9 {
		t.Errorf("ThroughputBps() = %v, want 2000", got)
	}
}

func TestEntryBoundaries(t *testing.T) {
	small := Entry{SizeBytes: SmallObjectThreshold - 1}
	if !small.IsSmall() {
		t.Error("one byte under threshold should be small")
	}
	large := Entry{SizeBytes: SmallObjectThreshold}
	if large.IsSmall() {
		t.Error("at threshold should be large (paper: 'in excess of 50KB' uses throughput)")
	}
	zeroDur := Entry{SizeBytes: 100, DurationMillis: 0}
	if got := zeroDur.ThroughputBps(); got != 0 {
		t.Errorf("zero-duration throughput = %v, want 0", got)
	}
}

func TestPageLoadTime(t *testing.T) {
	r := validReport()
	if got := r.PageLoadTime(); got != 400*time.Millisecond {
		t.Errorf("PageLoadTime = %v, want 400ms", got)
	}
	empty := &Report{}
	if got := empty.PageLoadTime(); got != 0 {
		t.Errorf("empty PageLoadTime = %v, want 0", got)
	}
}

func TestTotalBytes(t *testing.T) {
	r := validReport()
	want := int64(2048 + 10240 + 500*1024)
	if got := r.TotalBytes(); got != want {
		t.Errorf("TotalBytes = %d, want %d", got, want)
	}
}

func TestExternalFraction(t *testing.T) {
	r := validReport()
	// origin.example is origin; cdn.example and img.example are external.
	got := r.ExternalFraction("origin.example")
	if math.Abs(got-2.0/3.0) > 1e-9 {
		t.Errorf("ExternalFraction = %v, want 2/3", got)
	}
}

func TestExternalFractionEmpty(t *testing.T) {
	empty := &Report{}
	if got := empty.ExternalFraction("x"); got != 0 {
		t.Errorf("empty ExternalFraction = %v, want 0", got)
	}
}

func TestIsExternalHost(t *testing.T) {
	tests := []struct {
		host, origin string
		want         bool
	}{
		{"cdn.example", "origin.example", true},
		{"origin.example", "origin.example", false},
		{"static.origin.example", "origin.example", false}, // subdomain
		{"ORIGIN.example", "origin.example", false},        // case-insensitive
		{"notorigin.example", "origin.example", true},      // suffix but not subdomain
		{"", "origin.example", false},
		{"cdn.example", "", false},
	}
	for _, tt := range tests {
		if got := IsExternalHost(tt.host, tt.origin); got != tt.want {
			t.Errorf("IsExternalHost(%q, %q) = %v, want %v", tt.host, tt.origin, got, tt.want)
		}
	}
}

func TestWireSize(t *testing.T) {
	r := validReport()
	n, err := r.WireSize()
	if err != nil {
		t.Fatal(err)
	}
	data, _ := r.Marshal()
	if n != len(data) {
		t.Errorf("WireSize = %d, want %d", n, len(data))
	}
	if n == 0 || !strings.Contains(string(data), "entries") {
		t.Errorf("suspicious wire encoding: %q", data)
	}
}

func TestGeneratedAt(t *testing.T) {
	r := validReport()
	if got := r.GeneratedAt().UnixMilli(); got != r.GeneratedAtUnixMs {
		t.Errorf("GeneratedAt = %d, want %d", got, r.GeneratedAtUnixMs)
	}
}
