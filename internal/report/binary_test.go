package report

import (
	"bytes"
	"errors"
	"math"
	"testing"
)

func sampleReport() *Report {
	return &Report{
		UserID:            "user-9",
		Page:              "/index.html",
		GeneratedAtUnixMs: 1700000000123,
		Entries: []Entry{
			{URL: "http://s1.com/jquery.js?a=1&b=2", ServerAddr: "10.0.0.1:443", SizeBytes: 1024, DurationMillis: 95.5, InitiatorURL: "http://site.com/", Kind: KindScript},
			{URL: "https://cdn.example:8443/img.png", SizeBytes: 200 * 1024, DurationMillis: 2000, Kind: KindImage, Failed: true},
			{URL: "http://s1.com/style.css", ServerAddr: "10.0.0.1:443", SizeBytes: -3, DurationMillis: math.Inf(1), Kind: KindCSS},
		},
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	r := sampleReport()
	data, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !IsBinary(data) {
		t.Fatal("IsBinary rejected own encoding")
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if !equalDecoded(r, got) {
		t.Fatalf("round trip mismatch:\nin:  %+v\nout: %+v", r, got)
	}
	if u := SniffBinaryUser(data); u != "user-9" {
		t.Fatalf("SniffBinaryUser = %q", u)
	}
	re := got.AppendBinary(nil)
	if !bytes.Equal(data, re) {
		t.Fatal("re-encode is not byte-identical")
	}
}

func TestBinarySmallerThanJSON(t *testing.T) {
	r := sampleReport()
	r.Entries[2].DurationMillis = 412.75 // Inf is binary-only; JSON cannot carry it
	j, err := r.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	b, err := r.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if float64(len(b)) > 0.75*float64(len(j)) {
		t.Fatalf("binary %dB is not ≥25%% smaller than JSON %dB", len(b), len(j))
	}
}

func TestBinaryHostileFrames(t *testing.T) {
	valid, _ := sampleReport().MarshalBinary()
	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrBinaryMagic},
		{"bad magic", []byte("NOPE"), ErrBinaryMagic},
		{"magic only", []byte(binaryMagic), ErrBinaryTruncated},
		{"truncated mid-string", valid[:len(binaryMagic)+3], ErrBinaryTruncated},
		{"truncated mid-entry", valid[:len(valid)-5], ErrBinaryTruncated},
		{"trailing garbage", append(append([]byte{}, valid...), 0xFF), ErrBinaryCorrupt},
		{"oversized string len", append([]byte(binaryMagic), 0xFF, 0xFF, 0xFF, 0xFF, 0x7F), ErrBinaryOversized},
		{"entry count exceeds body", func() []byte {
			b := []byte(binaryMagic)
			b = append(b, 1, 'u') // userID "u"
			b = append(b, 0)      // page ""
			b = append(b, 0)      // generatedAt 0
			b = append(b, 0xFF, 0xFF, 0xFF, 0x7F)
			return b
		}(), ErrBinaryOversized},
		{"reserved flag bits", func() []byte {
			r := &Report{UserID: "u", Entries: []Entry{{URL: "http://a.com/x"}}}
			b, _ := r.MarshalBinary()
			b[len(b)-1] = 0x80
			return b
		}(), ErrBinaryCorrupt},
	}
	for _, tc := range cases {
		if _, err := UnmarshalBinary(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s: got %v, want %v", tc.name, err, tc.want)
		}
		// The pooled path must agree and must not leak a live report.
		if _, err := DecodeBinaryPooled(tc.data); !errors.Is(err, tc.want) {
			t.Errorf("%s (pooled): got %v, want %v", tc.name, err, tc.want)
		}
	}
}

func TestBinaryBatchFraming(t *testing.T) {
	r1 := sampleReport()
	r2 := &Report{UserID: "other", Page: "/p", Entries: []Entry{{URL: "http://b.com/y.js", Kind: KindScript}}}
	var body, scratch []byte
	body, scratch = AppendBinaryFrame(body, scratch, r1)
	body, _ = AppendBinaryFrame(body, scratch, r2)

	frame, rest, err := NextBinaryFrame(body)
	if err != nil {
		t.Fatal(err)
	}
	if SniffBinaryUser(frame) != "user-9" {
		t.Fatalf("frame 1 user = %q", SniffBinaryUser(frame))
	}
	got1, err := UnmarshalBinary(frame)
	if err != nil || !equalDecoded(r1, got1) {
		t.Fatalf("frame 1 decode: err=%v", err)
	}
	frame, rest, err = NextBinaryFrame(rest)
	if err != nil {
		t.Fatal(err)
	}
	got2, err := UnmarshalBinary(frame)
	if err != nil || !equalDecoded(r2, got2) {
		t.Fatalf("frame 2 decode: err=%v", err)
	}
	if frame, rest, err = NextBinaryFrame(rest); err != nil || frame != nil || rest != nil {
		t.Fatalf("batch end: frame=%v rest=%v err=%v", frame, rest, err)
	}

	// Hostile: frame length longer than the body.
	if _, _, err := NextBinaryFrame([]byte{0x7F, 0x01}); !errors.Is(err, ErrBinaryTruncated) {
		t.Fatalf("truncated frame: %v", err)
	}
}

// FuzzBinaryRoundTrip pins two properties: decode(encode(r)) is identity for
// any decodable report, and arbitrary (including hostile) payloads either
// decode to something that re-encodes byte-identically or fail with one of
// the typed errors — never a panic, never an untyped error.
func FuzzBinaryRoundTrip(f *testing.F) {
	valid, _ := sampleReport().MarshalBinary()
	f.Add(valid)
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := UnmarshalBinary(data)
		if err != nil {
			if !errors.Is(err, ErrBinaryMagic) && !errors.Is(err, ErrBinaryTruncated) &&
				!errors.Is(err, ErrBinaryOversized) && !errors.Is(err, ErrBinaryCorrupt) {
				t.Fatalf("untyped decode error: %v", err)
			}
			return
		}
		re := r.AppendBinary(nil)
		if !bytes.Equal(data, re) {
			t.Fatalf("decode/encode not identity:\nin:  %x\nout: %x", data, re)
		}
		// Pooled decode must agree with the fresh one.
		pr, perr := DecodeBinaryPooled(data)
		if perr != nil {
			t.Fatalf("pooled decode diverged: %v", perr)
		}
		if !equalDecoded(r, pr) {
			t.Fatal("pooled binary decode mismatch")
		}
		pr.Release()
	})
}
