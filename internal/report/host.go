package report

import "net/url"

// Host extraction is on the ingest hot path: grouping consults every entry's
// hostname at least once per report, and url.Parse is far too heavy to run
// per entry per use. hostOf scans the common shape of a fetch URL
// (scheme://host[:port]/...) directly and defers to url.Parse only for
// constructs the scan cannot prove it handles identically (userinfo, IPv6
// literals, percent-escapes, relative references). The decoder precomputes
// the host when a report arrives, so steady-state ingest never parses twice.

// hostOf returns url.Parse(raw).Hostname() semantics for raw URLs.
func hostOf(raw string) string {
	host, ok := fastHost(raw)
	if ok {
		return host
	}
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return u.Hostname()
}

// fastHost extracts the hostname from scheme://host[:port][/?#]... forms.
// ok=false means "not proven equivalent, use url.Parse", never "no host".
func fastHost(raw string) (host string, ok bool) {
	// Scheme: [a-zA-Z][a-zA-Z0-9+.-]* followed by "://".
	i := 0
	n := len(raw)
	if n == 0 {
		return "", false
	}
	c := raw[0]
	if !isAlpha(c) {
		return "", false
	}
	for i = 1; i < n; i++ {
		c = raw[i]
		if isAlpha(c) || isDigit(c) || c == '+' || c == '-' || c == '.' {
			continue
		}
		break
	}
	if i+2 >= n || raw[i] != ':' || raw[i+1] != '/' || raw[i+2] != '/' {
		return "", false
	}
	// Authority: up to the first '/', '?' or '#'.
	start := i + 3
	end := start
	for end < n {
		c = raw[end]
		if c == '/' || c == '?' || c == '#' {
			break
		}
		end++
	}
	auth := raw[start:end]
	// url.Parse returns "" for the whole URL when any part of it errors —
	// an invalid escape in the path voids the host too. Defer to it when
	// the remainder carries escapes or control characters.
	for j := end; j < n; j++ {
		if c = raw[j]; c < 0x20 || c == 0x7F || c == '%' {
			return "", false
		}
	}
	// Defer anything beyond plain host[:port]: userinfo, IPv6 brackets,
	// percent-escapes, or characters url.Parse may reject or rewrite.
	colon := -1
	for j := 0; j < len(auth); j++ {
		switch c = auth[j]; {
		case isAlpha(c) || isDigit(c) || c == '-' || c == '.' || c == '_' || c == '~':
		case c == ':':
			if colon >= 0 {
				return "", false // second colon: IPv6-ish or invalid
			}
			colon = j
		default:
			return "", false
		}
	}
	if colon < 0 {
		return auth, true
	}
	// host:port — the port must be digits (possibly empty) or url.Parse errors.
	for j := colon + 1; j < len(auth); j++ {
		if !isDigit(auth[j]) {
			return "", false
		}
	}
	return auth[:colon], true
}

func isAlpha(c byte) bool { return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') }
func isDigit(c byte) bool { return c >= '0' && c <= '9' }
