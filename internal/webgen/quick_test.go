package webgen

import (
	"encoding/json"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"oak/internal/htmlscan"
	"oak/internal/report"
)

// seedGen yields small random generator configs for property tests.
type seedGen struct {
	Seed  int64
	Sites int
}

var _ quick.Generator = seedGen{}

func (seedGen) Generate(r *rand.Rand, _ int) reflect.Value {
	return reflect.ValueOf(seedGen{Seed: r.Int63n(1 << 20), Sites: 1 + r.Intn(3)})
}

// Property: every page's ground-truth object list is consistent — URLs
// parse, hosts match, sizes positive, loader references resolvable.
func TestQuickSiteConsistency(t *testing.T) {
	f := func(sg seedGen) bool {
		g := NewGenerator(Config{Seed: sg.Seed, NumSites: sg.Sites})
		for _, site := range g.Catalog() {
			for _, p := range site.Pages {
				for _, o := range p.Objects {
					if o.SizeBytes <= 0 {
						return false
					}
					if htmlscan.HostOf(o.URL) != o.Host {
						return false
					}
					if o.Tier == TierExternalJS {
						if o.ViaScript == "" {
							return false
						}
						if _, ok := site.Scripts[o.ViaScript]; !ok {
							return false
						}
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: subpages only use hosts the index uses (subset semantics), so
// site-wide rules built from index fragments cover every page.
func TestQuickSubpagesAreSubsets(t *testing.T) {
	f := func(sg seedGen) bool {
		g := NewGenerator(Config{Seed: sg.Seed, NumSites: sg.Sites})
		for _, site := range g.Catalog() {
			indexHosts := make(map[string]bool)
			for _, o := range site.Index().Objects {
				indexHosts[o.Host] = true
			}
			for _, p := range site.Pages[1:] {
				for _, o := range p.Objects {
					if !indexHosts[o.Host] {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: BuildRules alternatives never mention any default external
// host, for arbitrary seeds.
func TestQuickRulesFullyMirrored(t *testing.T) {
	f := func(sg seedGen) bool {
		g := NewGenerator(Config{Seed: sg.Seed, NumSites: 1})
		site := g.Site(0)
		hosts := site.ExternalHosts()
		for _, r := range BuildRules(site, []string{"na", "eu"}) {
			for _, alt := range r.Alternatives {
				for _, h := range hosts {
					if htmlscan.ContainsHost(alt, h) {
						return false
					}
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestSiteJSONRoundTrip(t *testing.T) {
	g := NewGenerator(Config{Seed: 9, NumSites: 1})
	site := g.Site(0)
	data, err := json.Marshal(site)
	if err != nil {
		t.Fatal(err)
	}
	var back Site
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if back.Domain != site.Domain || len(back.Pages) != len(site.Pages) {
		t.Errorf("round trip lost structure: %s/%d", back.Domain, len(back.Pages))
	}
	if back.Index().HTML != site.Index().HTML {
		t.Error("round trip lost HTML")
	}
	if len(back.Scripts) != len(site.Scripts) || len(back.Fragments) != len(site.Fragments) {
		t.Error("round trip lost scripts/fragments")
	}
}

func TestObjectKindsWellFormed(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, NumSites: 3})
	valid := map[report.ObjectKind]bool{
		report.KindImage: true, report.KindScript: true,
		report.KindCSS: true, report.KindOther: true, report.KindHTML: true,
	}
	for _, site := range g.Catalog() {
		for _, p := range site.Pages {
			for _, o := range p.Objects {
				if !valid[o.Kind] {
					t.Fatalf("object %s has kind %q", o.URL, o.Kind)
				}
			}
		}
	}
}
