package webgen

import (
	"fmt"
	"sort"

	"oak/internal/report"
	"oak/internal/rules"
)

// Assets is the servable content universe of a site: object sizes and kinds
// by URL, plus script bodies. The simulated client fetches against this;
// experiments extend it with mirror replicas.
type Assets struct {
	// Sizes maps object URL -> size in bytes.
	Sizes map[string]int64
	// Kinds maps object URL -> kind.
	Kinds map[string]report.ObjectKind
	// Scripts maps script URL -> body (for loader scripts the matcher or
	// client may fetch).
	Scripts map[string]string
}

// NewAssets builds the default (un-mirrored) asset universe of a site.
func NewAssets(site *Site) *Assets {
	a := &Assets{
		Sizes:   make(map[string]int64),
		Kinds:   make(map[string]report.ObjectKind),
		Scripts: make(map[string]string),
	}
	for _, p := range site.Pages {
		for _, o := range p.Objects {
			a.Sizes[o.URL] = o.SizeBytes
			a.Kinds[o.URL] = o.Kind
		}
	}
	for url, body := range site.Scripts {
		a.Scripts[url] = body
		if _, ok := a.Sizes[url]; !ok {
			a.Sizes[url] = int64(len(body))
		}
		a.Kinds[url] = report.KindScript
	}
	return a
}

// AddMirrors replicates every external object of the site into the given
// mirror zones: for each zone z, each object http://h/p gains a replica at
// http://MirrorHost(h, z)/p of the same size, and each script body is
// rewritten so a mirrored loader pulls mirrored targets. This emulates the
// paper's alternative-provider setup ("we replicate all external objects to
// 3 web servers: one in each of North America, Europe, and Asia").
func (a *Assets) AddMirrors(site *Site, zones []string) {
	hosts := site.ExternalHosts()
	// Longest-first so host substring collisions rewrite correctly.
	sorted := append([]string(nil), hosts...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })

	mirrorURL := func(url, zone string) string {
		out := url
		for _, h := range sorted {
			out = rewriteHost(out, h, MirrorHost(h, zone))
		}
		return out
	}

	for _, zone := range zones {
		for url, size := range snapshotSizes(a.Sizes) {
			m := mirrorURL(url, zone)
			if m != url {
				a.Sizes[m] = size
				a.Kinds[m] = a.Kinds[url]
			}
		}
		for url, body := range snapshotScripts(a.Scripts) {
			m := mirrorURL(url, zone)
			if m != url {
				a.Scripts[m] = mirrorURL(body, zone)
			}
		}
	}
}

// snapshotSizes copies the map so mirroring doesn't iterate while inserting.
func snapshotSizes(m map[string]int64) map[string]int64 {
	out := make(map[string]int64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func snapshotScripts(m map[string]string) map[string]string {
	out := make(map[string]string, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// FetchScript implements core.ScriptFetcher over the asset universe.
func (a *Assets) FetchScript(url string) (string, error) {
	body, ok := a.Scripts[url]
	if !ok {
		return "", fmt.Errorf("webgen: no script %q", url)
	}
	return body, nil
}

// BuildRules generates the experiment rule set of Section 5.3: one Type 2
// replacement rule per matchable external domain, whose alternatives point
// at the domain's replicas in each mirror zone (clients are later steered to
// their closest zone by the engine's alternative-selection policy).
//
// Hosts with no fragment (TierHidden) yield no rule — their connections
// cannot be tied to page text, exactly the unmatchable residue of Figure 8.
func BuildRules(site *Site, zones []string) []*rules.Rule {
	hosts := site.ExternalHosts()
	sorted := append([]string(nil), hosts...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })

	var out []*rules.Rule
	for _, h := range hosts {
		frag := site.Fragments[h]
		if frag == "" {
			continue
		}
		alts := make([]string, 0, len(zones))
		for _, zone := range zones {
			alt := frag
			for _, hh := range sorted {
				alt = rewriteHost(alt, hh, MirrorHost(hh, zone))
			}
			alts = append(alts, alt)
		}
		out = append(out, &rules.Rule{
			ID:           "swap-" + h,
			Type:         rules.TypeReplaceSame,
			Default:      frag,
			Alternatives: alts,
			TTL:          0,
			Scope:        "*",
		})
	}
	return out
}
