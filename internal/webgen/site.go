package webgen

import (
	"fmt"
	"sort"
	"strings"

	"oak/internal/report"
)

// Tier is how an object's origin is discoverable from the page source —
// the matchability levels Figure 8 of the paper measures.
type Tier int

const (
	// TierDirect: the object URL sits in a src/href attribute ("strict
	// include"; the paper matches ≈42 % of servers at this level).
	TierDirect Tier = iota + 1
	// TierInlineText: the object's host appears inside an inline script
	// that constructs the URL programmatically (text match raises the
	// paper's median to ≈60 %).
	TierInlineText
	// TierExternalJS: the object is fetched by an external script; only
	// fetching and searching that script reveals the connection (≈81 %).
	TierExternalJS
	// TierHidden: a dynamic script picks the server on the fly; no static
	// analysis ties the object to page text (the paper's residual ≈19 %).
	TierHidden
)

// String names the tier.
func (t Tier) String() string {
	switch t {
	case TierDirect:
		return "direct"
	case TierInlineText:
		return "inline-text"
	case TierExternalJS:
		return "external-js"
	case TierHidden:
		return "hidden"
	default:
		return fmt.Sprintf("tier-%d", int(t))
	}
}

// Object is one resource a client fetches when loading a page.
type Object struct {
	// URL is the canonical (default-provider) URL of the object.
	URL string `json:"url"`
	// Host is the URL's hostname (denormalised for convenience).
	Host string `json:"host"`
	// SizeBytes is the object size.
	SizeBytes int64 `json:"sizeBytes"`
	// Kind is the coarse object type.
	Kind report.ObjectKind `json:"kind"`
	// Tier is the object's discoverability level.
	Tier Tier `json:"tier"`
	// ViaScript, for TierExternalJS objects, is the URL of the loader
	// script whose body references this object.
	ViaScript string `json:"viaScript,omitempty"`
}

// Page is one generated page of a site.
type Page struct {
	// Path is the site-relative path ("/index.html").
	Path string `json:"path"`
	// HTML is the default page markup.
	HTML string `json:"html"`
	// Objects is the ground-truth fetch list for a default load, in order.
	// It includes loader scripts and everything they pull in.
	Objects []Object `json:"objects"`
}

// Site is one generated website.
type Site struct {
	// Domain is the site's own (origin) domain.
	Domain string `json:"domain"`
	// Category labels the site (blog, commerce, ...), informational only.
	Category string `json:"category"`
	// Pages are the site's pages; Pages[0] is the index.
	Pages []*Page `json:"pages"`
	// Scripts maps external script URL -> body for every loader script any
	// page references (the content an external provider would serve).
	Scripts map[string]string `json:"scripts"`
	// Fragments maps an external host -> the exact HTML fragment through
	// which pages of this site lead to that host. Rules are built from
	// these fragments.
	Fragments map[string]string `json:"fragments"`
}

// ExternalHosts returns the distinct non-origin hosts contacted during a
// default load of any page, sorted.
func (s *Site) ExternalHosts() []string {
	seen := make(map[string]bool)
	for _, p := range s.Pages {
		for _, o := range p.Objects {
			if report.IsExternalHost(o.Host, s.Domain) {
				seen[o.Host] = true
			}
		}
	}
	hosts := make([]string, 0, len(seen))
	for h := range seen {
		hosts = append(hosts, h)
	}
	sort.Strings(hosts)
	return hosts
}

// Index returns the site's index page.
func (s *Site) Index() *Page {
	if len(s.Pages) == 0 {
		return nil
	}
	return s.Pages[0]
}

// Page returns the page at the given path, or nil.
func (s *Site) Page(path string) *Page {
	for _, p := range s.Pages {
		if p.Path == path {
			return p
		}
	}
	return nil
}

// ExternalFraction returns the fraction of index-page objects hosted off the
// site's own domain — the Figure 1 metric.
func (s *Site) ExternalFraction() float64 {
	idx := s.Index()
	if idx == nil || len(idx.Objects) == 0 {
		return 0
	}
	var ext int
	for _, o := range idx.Objects {
		if report.IsExternalHost(o.Host, s.Domain) {
			ext++
		}
	}
	return float64(ext) / float64(len(idx.Objects))
}

// ObjectsByHost groups a page's objects by host.
func (p *Page) ObjectsByHost() map[string][]Object {
	m := make(map[string][]Object)
	for _, o := range p.Objects {
		m[o.Host] = append(m[o.Host], o)
	}
	return m
}

// MirrorHost derives the hostname of a replica of host in the given mirror
// zone (e.g. zone "na" -> "cdn-example.mirror-na.example"). Dots in the
// original host are flattened so the mirror host is a clean label.
func MirrorHost(host, zone string) string {
	flat := strings.ReplaceAll(host, ".", "-")
	return fmt.Sprintf("%s.mirror-%s.example", flat, strings.ToLower(zone))
}

// rewriteHost swaps the hostname inside a fragment or URL string: every
// occurrence of the default host becomes the mirror host. Used both for
// building rule alternatives and alternate script bodies.
func rewriteHost(text, from, to string) string {
	return strings.ReplaceAll(text, from, to)
}
