// Package webgen generates synthetic websites and site catalogs calibrated
// to the measurement study in Section 2 of the paper: pages whose objects
// are mostly externally hosted (median ≈ 75 %), drawn from third-party
// providers dominated by advertising, analytics and social-networking
// domains, and included at varying levels of discoverability (the
// matchability tiers of Figure 8).
//
// The generated artifacts are fully self-describing: every page carries its
// HTML, the bodies of the external scripts it references, and the ground
// truth list of objects a client will fetch — enough for the simulated
// client to execute loads and for experiments to check Oak's decisions
// against an oracle.
package webgen

import "fmt"

// Category classifies a third-party provider, mirroring the outlier
// categorisation of Table 1 in the paper.
type Category string

// Provider categories.
const (
	CategoryCDN       Category = "CDN"
	CategoryAds       Category = "Ads/Analytics"
	CategoryAnalytics Category = "Analytics"
	CategorySocial    Category = "Social Networking"
	CategoryFonts     Category = "Fonts"
	CategoryVideo     Category = "Video"
	CategoryImages    Category = "Image Hosting"
)

// Provider is one third-party service domain.
type Provider struct {
	Host     string
	Category Category
	// Popularity weights how often sites embed this provider; the heavy
	// tail makes a few providers (fonts, big ad networks) near-universal,
	// which is what turns them into the "common problems" of Table 3.
	Popularity int
}

// namedProviders are real-world domains the paper itself reports (Tables 1
// and 3), used so reproduced tables read like the paper's.
func namedProviders() []Provider {
	return []Provider{
		{Host: "facebook.com", Category: CategorySocial, Popularity: 30},
		{Host: "stats.g.doubleclick.net", Category: CategoryAds, Popularity: 28},
		{Host: "sp.analytics.yahoo.com", Category: CategoryAds, Popularity: 18},
		{Host: "s-static.ak.facebook.com", Category: CategorySocial, Popularity: 16},
		{Host: "analytics.twitter.com", Category: CategorySocial, Popularity: 15},
		{Host: "counter.yadro.ru", Category: CategoryAds, Popularity: 8},
		{Host: "www.dsply.com", Category: CategoryAnalytics, Popularity: 7},
		{Host: "d31qbv1cthcecs.cloudfront.net", Category: CategoryAnalytics, Popularity: 12},
		{Host: "rtb-ap.vizury.com", Category: CategoryAds, Popularity: 6},
		{Host: "ib.adnxs.com", Category: CategoryAds, Popularity: 14},
		{Host: "fonts.googleapis.com", Category: CategoryFonts, Popularity: 35},
		{Host: "insights.hotjar.com", Category: CategoryAnalytics, Popularity: 20},
		{Host: "ad.doubleclick.com", Category: CategoryAds, Popularity: 22},
		{Host: "ads1.msads.net", Category: CategoryAds, Popularity: 10},
		{Host: "pubads.g.doubleclick.net", Category: CategoryAds, Popularity: 18},
		{Host: "vdp.mycdn.me", Category: CategoryCDN, Popularity: 4},
		{Host: "img1.qunarzz.com", Category: CategoryImages, Popularity: 3},
		{Host: "i.ytimg.com", Category: CategoryVideo, Popularity: 9},
		{Host: "ut06.xhcdn.com", Category: CategoryCDN, Popularity: 3},
		{Host: "img1a.flixcart.com", Category: CategoryImages, Popularity: 3},
	}
}

// syntheticProviders pads the pool with generated domains so catalogs have
// realistic provider diversity.
func syntheticProviders(n int) []Provider {
	kinds := []struct {
		pattern  string
		category Category
		pop      int
	}{
		{"cdn%02d.fastedge.example", CategoryCDN, 8},
		{"static%02d.webcache.example", CategoryCDN, 6},
		{"ads%02d.clicknet.example", CategoryAds, 7},
		{"track%02d.metricsly.example", CategoryAnalytics, 5},
		{"social%02d.connectsphere.example", CategorySocial, 4},
		{"img%02d.pixhost.example", CategoryImages, 5},
		{"media%02d.streambox.example", CategoryVideo, 3},
	}
	out := make([]Provider, 0, n)
	for i := 0; len(out) < n; i++ {
		k := kinds[i%len(kinds)]
		out = append(out, Provider{
			Host:     fmt.Sprintf(k.pattern, i/len(kinds)+1),
			Category: k.category,
			// Zipf-ish decay so early synthetic providers are common.
			Popularity: k.pop * 10 / (i/len(kinds) + 10),
		})
	}
	return out
}

// ProviderPool returns the full provider pool: the paper-named providers
// plus extra synthetic ones (total named + extra).
func ProviderPool(extra int) []Provider {
	pool := namedProviders()
	pool = append(pool, syntheticProviders(extra)...)
	return pool
}

// CategoryOf returns the category of a known provider host, or "" when the
// host is not in the pool (e.g. a site's own origin).
func CategoryOf(pool []Provider, host string) Category {
	for _, p := range pool {
		if p.Host == host {
			return p.Category
		}
	}
	return ""
}
