package webgen

import (
	"strings"
	"testing"

	"oak/internal/htmlscan"
	"oak/internal/rules"
)

func TestNewAssetsCoversAllObjects(t *testing.T) {
	s := smallCatalog(t, 3)[0]
	a := NewAssets(s)
	for _, p := range s.Pages {
		for _, o := range p.Objects {
			size, ok := a.Sizes[o.URL]
			if !ok {
				t.Fatalf("asset missing for %s", o.URL)
			}
			if size != o.SizeBytes {
				t.Errorf("size mismatch for %s: %d != %d", o.URL, size, o.SizeBytes)
			}
			if a.Kinds[o.URL] != o.Kind {
				t.Errorf("kind mismatch for %s", o.URL)
			}
		}
	}
	for url := range s.Scripts {
		if _, err := a.FetchScript(url); err != nil {
			t.Errorf("FetchScript(%s): %v", url, err)
		}
	}
}

func TestFetchScriptUnknown(t *testing.T) {
	a := NewAssets(smallCatalog(t, 1)[0])
	if _, err := a.FetchScript("http://nope.example/x.js"); err == nil {
		t.Error("FetchScript(unknown) = nil error")
	}
}

func TestAddMirrorsReplicates(t *testing.T) {
	s := smallCatalog(t, 3)[0]
	a := NewAssets(s)
	before := len(a.Sizes)
	a.AddMirrors(s, []string{"na", "eu", "as"})
	if len(a.Sizes) <= before {
		t.Fatal("AddMirrors added nothing")
	}
	// Every external object must have a replica per zone, same size.
	for _, p := range s.Pages {
		for _, o := range p.Objects {
			if o.Host == s.Domain {
				continue
			}
			for _, zone := range []string{"na", "eu", "as"} {
				m := rewriteHost(o.URL, o.Host, MirrorHost(o.Host, zone))
				size, ok := a.Sizes[m]
				if !ok {
					t.Fatalf("no %s replica for %s", zone, o.URL)
				}
				if size != o.SizeBytes {
					t.Errorf("replica size mismatch for %s", m)
				}
			}
		}
	}
}

func TestAddMirrorsRewritesScriptBodies(t *testing.T) {
	s := smallCatalog(t, 5)[0]
	a := NewAssets(s)
	a.AddMirrors(s, []string{"na"})
	for url, body := range s.Scripts {
		murl := url
		for _, h := range s.ExternalHosts() {
			murl = rewriteHost(murl, h, MirrorHost(h, "na"))
		}
		if murl == url {
			continue
		}
		mbody, ok := a.Scripts[murl]
		if !ok {
			t.Fatalf("no mirrored script for %s", url)
		}
		// The mirrored loader must reference mirrored targets only.
		for _, h := range s.ExternalHosts() {
			if htmlscan.ContainsHost(body, h) && htmlscan.ContainsHost(mbody, h) {
				t.Errorf("mirrored loader %s still references default host %s", murl, h)
			}
		}
	}
}

func TestBuildRules(t *testing.T) {
	s := smallCatalog(t, 5)[0]
	zones := []string{"na", "eu", "as"}
	rs := BuildRules(s, zones)
	if len(rs) == 0 {
		t.Fatal("no rules built")
	}
	matchable := 0
	for _, h := range s.ExternalHosts() {
		if s.Fragments[h] != "" {
			matchable++
		}
	}
	if len(rs) != matchable {
		t.Errorf("built %d rules, want %d (one per matchable host)", len(rs), matchable)
	}
	for _, r := range rs {
		if err := r.Compile(); err != nil {
			t.Errorf("rule %s invalid: %v", r.ID, err)
		}
		if r.Type != rules.TypeReplaceSame || len(r.Alternatives) != len(zones) {
			t.Errorf("rule %s: type %v, %d alts", r.ID, r.Type, len(r.Alternatives))
		}
		host := strings.TrimPrefix(r.ID, "swap-")
		for i, alt := range r.Alternatives {
			if htmlscan.ContainsHost(alt, host) {
				t.Errorf("rule %s alt %d still references default host", r.ID, i)
			}
			if !strings.Contains(alt, ".mirror-"+zones[i]+".example") {
				t.Errorf("rule %s alt %d not in zone %s: %q", r.ID, i, zones[i], alt)
			}
		}
	}
}

func TestBuildRulesSkipsHidden(t *testing.T) {
	// Force everything hidden: no rules possible.
	g := NewGenerator(Config{Seed: 3, NumSites: 1, TierWeights: [4]float64{0, 0, 0, 1}})
	s := g.Site(0)
	if rs := BuildRules(s, []string{"na"}); len(rs) != 0 {
		t.Errorf("hidden-only site produced %d rules", len(rs))
	}
}

func TestBuildRulesAllDirect(t *testing.T) {
	g := NewGenerator(Config{Seed: 3, NumSites: 1, TierWeights: [4]float64{1, 0, 0, 0}})
	s := g.Site(0)
	rs := BuildRules(s, []string{"na"})
	if len(rs) != len(s.ExternalHosts()) {
		t.Errorf("all-direct site: %d rules for %d hosts", len(rs), len(s.ExternalHosts()))
	}
}
