package webgen

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"

	"oak/internal/report"
)

// Config controls catalog generation. The zero value is usable: Normalize
// fills paper-calibrated defaults.
type Config struct {
	// Seed makes generation deterministic.
	Seed int64
	// NumSites is the catalog size (default 500, the Alexa set's size).
	NumSites int
	// PagesPerSite is how many pages each site has (default 3).
	PagesPerSite int
	// MinExternalHosts / MaxExternalHosts bound how many third-party
	// providers a site embeds (defaults 3 / 30; the H1/H2 split of the
	// paper's Table 2 falls inside this range).
	MinExternalHosts int
	MaxExternalHosts int
	// ObjectsPerHostMax bounds objects fetched per provider (default 4).
	ObjectsPerHostMax int
	// MeanExternalFraction centres the per-site external-object fraction
	// (default 0.75, the paper's Figure 1 median).
	MeanExternalFraction float64
	// ProviderPoolExtra pads the provider pool beyond the paper-named
	// domains (default 80).
	ProviderPoolExtra int
	// TierWeights distribute provider hosts across discoverability tiers
	// [direct, inline-text, external-js, hidden]. Defaults calibrate to
	// Figure 8's match-rate medians (≈42/18/21/19 %).
	TierWeights [4]float64
	// AdsWeight, when positive, fixes every site's ad/analytics/social
	// provider weighting instead of the default bimodal draw (most sites
	// lightly tracked, a minority stuffed). Values around 4 produce the
	// adPerf-style ad-heavy catalogs the scenario harness uses.
	AdsWeight float64
	// LargeObjectFraction is the chance an object is >= 50 KB (default 0.3).
	LargeObjectFraction float64
}

// Normalize fills zero fields with defaults and returns the result.
func (c Config) Normalize() Config {
	if c.NumSites <= 0 {
		c.NumSites = 500
	}
	if c.PagesPerSite <= 0 {
		c.PagesPerSite = 3
	}
	if c.MinExternalHosts <= 0 {
		c.MinExternalHosts = 3
	}
	if c.MaxExternalHosts <= 0 {
		c.MaxExternalHosts = 30
	}
	if c.MaxExternalHosts < c.MinExternalHosts {
		c.MaxExternalHosts = c.MinExternalHosts
	}
	if c.ObjectsPerHostMax <= 0 {
		c.ObjectsPerHostMax = 4
	}
	if c.MeanExternalFraction <= 0 || c.MeanExternalFraction >= 1 {
		c.MeanExternalFraction = 0.75
	}
	if c.ProviderPoolExtra <= 0 {
		c.ProviderPoolExtra = 80
	}
	if c.TierWeights == ([4]float64{}) {
		c.TierWeights = [4]float64{0.37, 0.19, 0.22, 0.22}
	}
	if c.LargeObjectFraction <= 0 {
		c.LargeObjectFraction = 0.18
	}
	return c
}

// Generator produces deterministic synthetic sites.
type Generator struct {
	cfg  Config
	rng  *rand.Rand
	pool []Provider
}

// NewGenerator builds a generator for the config.
func NewGenerator(cfg Config) *Generator {
	cfg = cfg.Normalize()
	return &Generator{
		cfg:  cfg,
		rng:  rand.New(rand.NewSource(cfg.Seed)),
		pool: ProviderPool(cfg.ProviderPoolExtra),
	}
}

// Pool exposes the provider pool (for category lookups in experiments).
func (g *Generator) Pool() []Provider { return g.pool }

// Catalog generates the full site catalog.
func (g *Generator) Catalog() []*Site {
	sites := make([]*Site, g.cfg.NumSites)
	for i := range sites {
		sites[i] = g.Site(i)
	}
	return sites
}

var siteCategories = []string{
	"news", "commerce", "social", "video", "travel", "reference", "blog", "portal",
}

// Site generates the i-th site of the catalog. Generation consumes the
// shared RNG stream, so sites are deterministic given (Seed, call order);
// Catalog always produces the same catalog for the same Config.
func (g *Generator) Site(i int) *Site {
	domain := fmt.Sprintf("site-%03d.example", i)
	site := &Site{
		Domain:    domain,
		Category:  siteCategories[i%len(siteCategories)],
		Scripts:   make(map[string]string),
		Fragments: make(map[string]string),
	}

	nExt := g.cfg.MinExternalHosts + g.rng.Intn(g.cfg.MaxExternalHosts-g.cfg.MinExternalHosts+1)
	// Sites differ sharply in how tracker-laden they are: most embed few
	// ad/analytics providers, a minority are stuffed with them. This
	// bimodality is what gives the outlier-count distribution its heavy
	// tail (paper Figure 2: ~40% of sites clean, ~20% with 4+ outliers).
	adsWeight := g.cfg.AdsWeight
	if adsWeight <= 0 {
		adsWeight = 0.05
		switch r := g.rng.Float64(); {
		case r < 0.20:
			adsWeight = 4.0
		case r < 0.40:
			adsWeight = 1.0
		}
	}
	providers := g.pickProviders(nExt, adsWeight)

	// Assign a discoverability tier per provider host.
	tiers := make(map[string]Tier, len(providers))
	for _, p := range providers {
		tiers[p.Host] = g.pickTier()
	}

	// Generate the objects each provider serves for this site.
	objsByHost := make(map[string][]Object, len(providers))
	var totalExt int
	for _, p := range providers {
		n := 1 + g.rng.Intn(g.cfg.ObjectsPerHostMax)
		objs := make([]Object, 0, n)
		for k := 0; k < n; k++ {
			objs = append(objs, g.object(p.Host, tiers[p.Host], i, k))
		}
		objsByHost[p.Host] = objs
		totalExt += n
	}

	// Loader scripts for external-js tier hosts: group up to 3 target hosts
	// per loader; the loader itself lives on a direct-tier provider (or the
	// first provider if none is direct), echoing the Figure 6 topology.
	loaderHost := ""
	for _, p := range providers {
		if tiers[p.Host] == TierDirect {
			loaderHost = p.Host
			break
		}
	}
	if loaderHost == "" {
		loaderHost = providers[0].Host
	}
	var jsHosts []string
	for _, p := range providers {
		if tiers[p.Host] == TierExternalJS {
			jsHosts = append(jsHosts, p.Host)
		}
	}
	sort.Strings(jsHosts)
	loaders := g.buildLoaders(site, i, loaderHost, jsHosts, objsByHost)

	// Origin objects: sized so the external fraction lands near the target.
	f := clamp(g.cfg.MeanExternalFraction+g.rng.NormFloat64()*0.12, 0.3, 0.95)
	nOrigin := int(float64(totalExt)*(1-f)/f + 0.5)
	if nOrigin < 2 {
		nOrigin = 2
	}
	originObjs := make([]Object, 0, nOrigin)
	for k := 0; k < nOrigin; k++ {
		originObjs = append(originObjs, g.object(domain, TierDirect, i, 1000+k))
	}

	// Build fragments per host and the page object lists.
	hostOrder := make([]string, 0, len(providers))
	for _, p := range providers {
		hostOrder = append(hostOrder, p.Host)
	}
	g.buildFragments(site, hostOrder, tiers, objsByHost, loaders)

	// Pages: the index embeds everything; subpages embed subsets.
	for pi := 0; pi < g.cfg.PagesPerSite; pi++ {
		include := hostOrder
		path := "/index.html"
		if pi > 0 {
			path = fmt.Sprintf("/page-%d.html", pi)
			include = g.subset(hostOrder)
		}
		site.Pages = append(site.Pages, g.renderPage(site, path, include, tiers, objsByHost, loaders, originObjs))
	}
	return site
}

// loaderInfo ties a loader script to the hosts it loads.
type loaderInfo struct {
	url     string
	host    string
	targets []string
}

// buildLoaders creates loader scripts (bodies stored in site.Scripts) and
// returns, per js-tier target host, its loader.
func (g *Generator) buildLoaders(site *Site, siteIdx int, loaderHost string, jsHosts []string, objsByHost map[string][]Object) map[string]loaderInfo {
	loaders := make(map[string]loaderInfo)
	for start := 0; start < len(jsHosts); start += 3 {
		end := start + 3
		if end > len(jsHosts) {
			end = len(jsHosts)
		}
		targets := jsHosts[start:end]
		url := fmt.Sprintf("http://%s/loader-%03d-%d.js", loaderHost, siteIdx, start/3)
		var b strings.Builder
		b.WriteString("// generated asset loader\n(function(){\n")
		for _, tgt := range targets {
			for _, o := range objsByHost[tgt] {
				fmt.Fprintf(&b, "  oakFetch(%q);\n", o.URL)
			}
		}
		b.WriteString("})();\n")
		site.Scripts[url] = b.String()
		info := loaderInfo{url: url, host: loaderHost, targets: targets}
		for _, tgt := range targets {
			loaders[tgt] = info
		}
	}
	return loaders
}

// buildFragments derives the per-host HTML fragment through which the page
// reaches each provider.
func (g *Generator) buildFragments(site *Site, hosts []string, tiers map[string]Tier, objsByHost map[string][]Object, loaders map[string]loaderInfo) {
	for _, h := range hosts {
		switch tiers[h] {
		case TierDirect:
			var b strings.Builder
			for _, o := range objsByHost[h] {
				b.WriteString(tagFor(o))
				b.WriteString("\n")
			}
			site.Fragments[h] = strings.TrimRight(b.String(), "\n")
		case TierInlineText:
			var urls []string
			for _, o := range objsByHost[h] {
				urls = append(urls, fmt.Sprintf("%q", o.URL))
			}
			site.Fragments[h] = fmt.Sprintf(
				"<script>\nvar assets = [%s];\nfor (var i = 0; i < assets.length; i++) { oakInject(assets[i]); }\n</script>",
				strings.Join(urls, ", "))
		case TierExternalJS:
			if l, ok := loaders[h]; ok {
				site.Fragments[h] = fmt.Sprintf("<script src=%q></script>", l.url)
			}
		case TierHidden:
			// No fragment: the connection is not discoverable from text.
		}
	}
}

// renderPage assembles page HTML and its ground-truth object list.
func (g *Generator) renderPage(site *Site, path string, include []string, tiers map[string]Tier, objsByHost map[string][]Object, loaders map[string]loaderInfo, originObjs []Object) *Page {
	var (
		b        strings.Builder
		objects  []Object
		rendered = make(map[string]bool) // fragment text -> already emitted
	)
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html>\n<head>\n<title>%s %s</title>\n", site.Domain, path)

	// Origin objects first.
	for _, o := range originObjs {
		b.WriteString(tagFor(o))
		b.WriteString("\n")
		objects = append(objects, o)
	}
	b.WriteString("</head>\n<body>\n")

	loaderEmitted := make(map[string]bool)
	for _, h := range include {
		frag := site.Fragments[h]
		switch tiers[h] {
		case TierDirect, TierInlineText:
			if frag != "" && !rendered[frag] {
				rendered[frag] = true
				b.WriteString(frag)
				b.WriteString("\n")
			}
			objects = append(objects, objsByHost[h]...)
		case TierExternalJS:
			l, ok := loaders[h]
			if !ok {
				continue
			}
			if frag != "" && !rendered[frag] {
				rendered[frag] = true
				b.WriteString(frag)
				b.WriteString("\n")
			}
			if !loaderEmitted[l.url] {
				loaderEmitted[l.url] = true
				objects = append(objects, Object{
					URL: l.url, Host: l.host,
					SizeBytes: int64(len(site.Scripts[l.url])),
					Kind:      report.KindScript, Tier: TierDirect,
				})
			}
			for _, o := range objsByHost[h] {
				o.ViaScript = l.url
				objects = append(objects, o)
			}
		case TierHidden:
			// Represented by an opaque bootstrap; the host never appears.
			objects = append(objects, objsByHost[h]...)
		}
	}
	b.WriteString("<script>oakDynamicBoot(selectServer());</script>\n")
	b.WriteString("</body>\n</html>\n")

	return &Page{Path: path, HTML: b.String(), Objects: objects}
}

// object generates one object served by host.
func (g *Generator) object(host string, tier Tier, siteIdx, k int) Object {
	var size int64
	if g.rng.Float64() < g.cfg.LargeObjectFraction {
		// Large objects start well above the threshold so throughput is a
		// transfer measurement, not a disguised RTT measurement.
		size = int64(2*report.SmallObjectThreshold + g.rng.Intn(400*1024))
	} else {
		size = int64(1024 + g.rng.Intn(report.SmallObjectThreshold-1024))
	}
	kinds := []report.ObjectKind{report.KindImage, report.KindScript, report.KindCSS, report.KindOther}
	kind := kinds[g.rng.Intn(len(kinds))]
	ext := map[report.ObjectKind]string{
		report.KindImage: "png", report.KindScript: "js",
		report.KindCSS: "css", report.KindOther: "bin",
	}[kind]
	return Object{
		URL:       fmt.Sprintf("http://%s/s%03d/obj-%d.%s", host, siteIdx, k, ext),
		Host:      host,
		SizeBytes: size,
		Kind:      kind,
		Tier:      tier,
	}
}

// tagFor renders the direct-inclusion HTML tag for an object.
func tagFor(o Object) string {
	switch o.Kind {
	case report.KindScript:
		return fmt.Sprintf("<script src=%q></script>", o.URL)
	case report.KindCSS:
		return fmt.Sprintf("<link rel=\"stylesheet\" href=%q>", o.URL)
	case report.KindImage:
		return fmt.Sprintf("<img src=%q>", o.URL)
	default:
		return fmt.Sprintf("<a href=%q>asset</a>", o.URL)
	}
}

// pickProviders samples n distinct providers, popularity-weighted, with the
// ad/analytics/social categories additionally scaled by adsWeight.
func (g *Generator) pickProviders(n int, adsWeight float64) []Provider {
	if n > len(g.pool) {
		n = len(g.pool)
	}
	weight := func(p Provider) float64 {
		w := float64(p.Popularity)
		switch p.Category {
		case CategoryAds, CategoryAnalytics, CategorySocial:
			w *= adsWeight
		}
		return w
	}
	var total float64
	for _, p := range g.pool {
		total += weight(p)
	}
	chosen := make([]Provider, 0, n)
	used := make(map[string]bool, n)
	for len(chosen) < n {
		r := g.rng.Float64() * total
		for _, p := range g.pool {
			r -= weight(p)
			if r < 0 {
				if !used[p.Host] {
					used[p.Host] = true
					chosen = append(chosen, p)
				}
				break
			}
		}
	}
	return chosen
}

// pickTier samples a discoverability tier from the configured weights.
func (g *Generator) pickTier() Tier {
	r := g.rng.Float64() * (g.cfg.TierWeights[0] + g.cfg.TierWeights[1] + g.cfg.TierWeights[2] + g.cfg.TierWeights[3])
	for i, w := range g.cfg.TierWeights {
		r -= w
		if r < 0 {
			return Tier(i + 1)
		}
	}
	return TierHidden
}

// subset returns a random non-empty subset of hosts (each kept with p=0.6).
func (g *Generator) subset(hosts []string) []string {
	var out []string
	for _, h := range hosts {
		if g.rng.Float64() < 0.6 {
			out = append(out, h)
		}
	}
	if len(out) == 0 && len(hosts) > 0 {
		out = append(out, hosts[g.rng.Intn(len(hosts))])
	}
	return out
}

func clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}
