package webgen

import (
	"strings"
	"testing"

	"oak/internal/htmlscan"
	"oak/internal/report"
	"oak/internal/stats"
)

func smallCatalog(t *testing.T, n int) []*Site {
	t.Helper()
	g := NewGenerator(Config{Seed: 42, NumSites: n})
	return g.Catalog()
}

func TestGeneratorDeterministic(t *testing.T) {
	a := NewGenerator(Config{Seed: 7, NumSites: 5}).Catalog()
	b := NewGenerator(Config{Seed: 7, NumSites: 5}).Catalog()
	for i := range a {
		if a[i].Domain != b[i].Domain {
			t.Fatalf("site %d domain differs", i)
		}
		if a[i].Index().HTML != b[i].Index().HTML {
			t.Fatalf("site %d HTML differs between identically seeded runs", i)
		}
		if len(a[i].Index().Objects) != len(b[i].Index().Objects) {
			t.Fatalf("site %d object count differs", i)
		}
	}
	c := NewGenerator(Config{Seed: 8, NumSites: 5}).Catalog()
	same := 0
	for i := range a {
		if a[i].Index().HTML == c[i].Index().HTML {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical catalogs")
	}
}

func TestSiteStructure(t *testing.T) {
	sites := smallCatalog(t, 10)
	for _, s := range sites {
		if s.Domain == "" || len(s.Pages) != 3 {
			t.Fatalf("site %q malformed: %d pages", s.Domain, len(s.Pages))
		}
		if s.Index().Path != "/index.html" {
			t.Errorf("index path = %q", s.Index().Path)
		}
		if len(s.Index().Objects) == 0 {
			t.Errorf("site %q has empty index", s.Domain)
		}
		if got := s.Page("/page-1.html"); got == nil {
			t.Errorf("site %q missing subpage", s.Domain)
		}
		if got := s.Page("/nope"); got != nil {
			t.Errorf("Page(/nope) = %+v, want nil", got)
		}
	}
}

func TestExternalFractionCalibration(t *testing.T) {
	sites := smallCatalog(t, 120)
	fracs := make([]float64, 0, len(sites))
	for _, s := range sites {
		fracs = append(fracs, s.ExternalFraction())
	}
	med, err := stats.Median(fracs)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 1 median is ~0.75; allow generation slack.
	if med < 0.6 || med > 0.88 {
		t.Errorf("median external fraction = %v, want ~0.75", med)
	}
}

func TestExternalHostCountsInRange(t *testing.T) {
	g := NewGenerator(Config{Seed: 1, NumSites: 30, MinExternalHosts: 5, MaxExternalHosts: 12})
	for _, s := range g.Catalog() {
		n := len(s.ExternalHosts())
		// Mirrors/loaders can only reuse chosen providers, so the count is
		// bounded by the config.
		if n < 5 || n > 12 {
			t.Errorf("site %s has %d external hosts, want 5..12", s.Domain, n)
		}
	}
}

func TestTierDiscoverabilityContract(t *testing.T) {
	sites := smallCatalog(t, 40)
	for _, s := range sites {
		idx := s.Index()
		for _, o := range idx.Objects {
			if o.Host == s.Domain {
				continue
			}
			inHTML := htmlscan.ContainsHost(idx.HTML, o.Host)
			switch o.Tier {
			case TierDirect, TierInlineText:
				if !inHTML {
					t.Errorf("site %s: %s-tier host %s absent from HTML", s.Domain, o.Tier, o.Host)
				}
			case TierExternalJS:
				if inHTML {
					t.Errorf("site %s: external-js host %s leaked into HTML", s.Domain, o.Host)
				}
				if o.ViaScript == "" {
					t.Errorf("site %s: external-js object %s has no ViaScript", s.Domain, o.URL)
				}
				body := s.Scripts[o.ViaScript]
				if !htmlscan.ContainsHost(body, o.Host) {
					t.Errorf("site %s: loader %s does not mention %s", s.Domain, o.ViaScript, o.Host)
				}
			case TierHidden:
				if inHTML {
					t.Errorf("site %s: hidden host %s discoverable in HTML", s.Domain, o.Host)
				}
				for _, body := range s.Scripts {
					if htmlscan.ContainsHost(body, o.Host) {
						t.Errorf("site %s: hidden host %s discoverable in a script", s.Domain, o.Host)
					}
				}
			}
		}
	}
}

func TestFragmentsAppearInIndexHTML(t *testing.T) {
	for _, s := range smallCatalog(t, 20) {
		html := s.Index().HTML
		for host, frag := range s.Fragments {
			if frag == "" {
				continue
			}
			if !strings.Contains(html, frag) {
				t.Errorf("site %s: fragment for %s not in index HTML", s.Domain, host)
			}
		}
	}
}

func TestObjectSizesValid(t *testing.T) {
	for _, s := range smallCatalog(t, 20) {
		var small, large int
		for _, p := range s.Pages {
			for _, o := range p.Objects {
				if o.SizeBytes <= 0 {
					t.Fatalf("object %s has size %d", o.URL, o.SizeBytes)
				}
				if o.SizeBytes < report.SmallObjectThreshold {
					small++
				} else {
					large++
				}
			}
		}
		if small == 0 {
			t.Errorf("site %s has no small objects", s.Domain)
		}
	}
}

func TestTierString(t *testing.T) {
	want := map[Tier]string{
		TierDirect: "direct", TierInlineText: "inline-text",
		TierExternalJS: "external-js", TierHidden: "hidden", Tier(9): "tier-9",
	}
	for tier, name := range want {
		if got := tier.String(); got != name {
			t.Errorf("Tier(%d).String() = %q, want %q", int(tier), got, name)
		}
	}
}

func TestMirrorHost(t *testing.T) {
	got := MirrorHost("cdn01.fastedge.example", "NA")
	want := "cdn01-fastedge-example.mirror-na.example"
	if got != want {
		t.Errorf("MirrorHost = %q, want %q", got, want)
	}
}

func TestProviderPool(t *testing.T) {
	pool := ProviderPool(50)
	if len(pool) != 20+50 {
		t.Errorf("pool size = %d, want 70", len(pool))
	}
	seen := make(map[string]bool)
	for _, p := range pool {
		if seen[p.Host] {
			t.Errorf("duplicate provider %s", p.Host)
		}
		seen[p.Host] = true
		if p.Popularity <= 0 {
			t.Errorf("provider %s has popularity %d", p.Host, p.Popularity)
		}
	}
	if got := CategoryOf(pool, "fonts.googleapis.com"); got != CategoryFonts {
		t.Errorf("CategoryOf(fonts.googleapis.com) = %q", got)
	}
	if got := CategoryOf(pool, "unknown.example"); got != "" {
		t.Errorf("CategoryOf(unknown) = %q, want empty", got)
	}
}

func TestConfigNormalize(t *testing.T) {
	c := Config{}.Normalize()
	if c.NumSites != 500 || c.PagesPerSite != 3 || c.MeanExternalFraction != 0.75 {
		t.Errorf("defaults wrong: %+v", c)
	}
	c2 := Config{MinExternalHosts: 10, MaxExternalHosts: 5}.Normalize()
	if c2.MaxExternalHosts < c2.MinExternalHosts {
		t.Error("max not raised to min")
	}
}

func TestObjectsByHost(t *testing.T) {
	s := smallCatalog(t, 1)[0]
	byHost := s.Index().ObjectsByHost()
	var total int
	for h, objs := range byHost {
		for _, o := range objs {
			if o.Host != h {
				t.Errorf("object %s grouped under %s", o.URL, h)
			}
		}
		total += len(objs)
	}
	if total != len(s.Index().Objects) {
		t.Errorf("grouping lost objects: %d != %d", total, len(s.Index().Objects))
	}
}
