package netsim

import (
	"math"
	"sort"
	"testing"
	"time"
)

func TestNoisyLoadDisabled(t *testing.T) {
	if got := (NoisyLoad{}).Factor(t0); got != 1 {
		t.Errorf("zero NoisyLoad factor = %v, want 1", got)
	}
}

func TestNoisyLoadNeverBelowOne(t *testing.T) {
	n := NoisyLoad{Salt: "s", Mu: 0.5, Sigma: 0.8}
	for i := 0; i < 500; i++ {
		f := n.Factor(t0.Add(time.Duration(i) * 10 * time.Minute))
		if f < 1 {
			t.Fatalf("factor %v below 1 at sample %d", f, i)
		}
	}
}

func TestNoisyLoadStableWithinPeriod(t *testing.T) {
	n := NoisyLoad{Salt: "s", Mu: 1, Sigma: 0.5, Period: time.Hour}
	base := t0.Truncate(time.Hour).Add(time.Minute)
	a := n.Factor(base)
	b := n.Factor(base.Add(30 * time.Minute))
	if a != b {
		t.Errorf("factor changed within one period: %v vs %v", a, b)
	}
}

func TestNoisyLoadVariesAcrossPeriods(t *testing.T) {
	n := NoisyLoad{Salt: "s", Mu: 1, Sigma: 0.5, Period: 10 * time.Minute}
	seen := make(map[float64]bool)
	for i := 0; i < 20; i++ {
		seen[n.Factor(t0.Add(time.Duration(i)*10*time.Minute))] = true
	}
	if len(seen) < 5 {
		t.Errorf("only %d distinct load levels across 20 periods", len(seen))
	}
}

func TestNoisyLoadSaltDecorrelates(t *testing.T) {
	a := NoisyLoad{Salt: "a", Mu: 1, Sigma: 0.5}
	b := NoisyLoad{Salt: "b", Mu: 1, Sigma: 0.5}
	var same int
	for i := 0; i < 30; i++ {
		at := t0.Add(time.Duration(i) * 10 * time.Minute)
		if a.Factor(at) == b.Factor(at) {
			same++
		}
	}
	if same > 5 {
		t.Errorf("different salts matched %d/30 times", same)
	}
}

func TestNoisyLoadMedianTracksMu(t *testing.T) {
	// With sigma small, the median factor should sit near exp(Mu).
	n := NoisyLoad{Salt: "med", Mu: 1.0, Sigma: 0.3}
	var fs []float64
	for i := 0; i < 400; i++ {
		fs = append(fs, n.Factor(t0.Add(time.Duration(i)*10*time.Minute)))
	}
	sort.Float64s(fs)
	med := fs[len(fs)/2]
	want := math.Exp(1.0)
	if med < want*0.8 || med > want*1.25 {
		t.Errorf("median factor = %v, want ~%v", med, want)
	}
}

func TestNoisyLoadMinMedianShape(t *testing.T) {
	// The property fig10 relies on: a busy server's idle moments are much
	// faster than its typical state.
	n := NoisyLoad{Salt: "shape", Mu: 1.4, Sigma: 0.7}
	var fs []float64
	for i := 0; i < 144; i++ {
		fs = append(fs, n.Factor(t0.Add(time.Duration(i)*30*time.Minute)))
	}
	sort.Float64s(fs)
	min, med := fs[0], fs[len(fs)/2]
	if ratio := min / med; ratio > 0.6 {
		t.Errorf("min/median load = %v, want a pronounced idle-vs-typical gap", ratio)
	}
}

func TestAnycastLatency(t *testing.T) {
	n := NewNetwork()
	if err := n.AddServer(&Server{
		Addr: "any", Hosts: []string{"any.example"}, Region: NorthAmerica,
		Anycast: true, ProcLatency: 5 * time.Millisecond, BandwidthBps: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	if err := n.AddServer(&Server{
		Addr: "uni", Hosts: []string{"uni.example"}, Region: NorthAmerica,
		ProcLatency: 5 * time.Millisecond, BandwidthBps: 1e6,
	}); err != nil {
		t.Fatal(err)
	}
	// From Asia, the anycast server answers at intra-region latency while
	// the unicast one pays the cross-global path.
	anyDur := dl(t, n, "c", Asia, "any.example", 1024, t0)
	uniDur := dl(t, n, "c", Asia, "uni.example", 1024, t0)
	if anyDur >= uniDur {
		t.Errorf("anycast (%v) not faster than unicast (%v) from a far region", anyDur, uniDur)
	}
	// From the server's own region they are equivalent.
	anyNear := dl(t, n, "c", NorthAmerica, "any.example", 1024, t0)
	uniNear := dl(t, n, "c", NorthAmerica, "uni.example", 1024, t0)
	diff := math.Abs(float64(anyNear) - float64(uniNear))
	if diff > float64(5*time.Millisecond) {
		t.Errorf("near-region anycast/unicast differ by %v", time.Duration(diff))
	}
}

func TestPathVariationPerPair(t *testing.T) {
	n := testNetwork(t)
	n.SetPathVariation(2.0)
	// Same client+server: deterministic. Different clients: can differ.
	a1 := dl(t, n, "client-a", NorthAmerica, "cdn.example", 100*1024, t0)
	a2 := dl(t, n, "client-a", NorthAmerica, "cdn.example", 100*1024, t0)
	if a1 != a2 {
		t.Error("path variation broke per-pair determinism")
	}
	var differs bool
	for i := 0; i < 10; i++ {
		b := dl(t, n, string(rune('b'+i))+"-client", NorthAmerica, "cdn.example", 100*1024, t0)
		if b != a1 {
			differs = true
		}
	}
	if !differs {
		t.Error("path variation identical across 10 clients")
	}
}

func TestPathVariationNegativeClamped(t *testing.T) {
	n := testNetwork(t)
	before := dl(t, n, "c", NorthAmerica, "cdn.example", 1024, t0)
	n.SetPathVariation(-5)
	after := dl(t, n, "c", NorthAmerica, "cdn.example", 1024, t0)
	if before != after {
		t.Error("negative path variation not treated as zero")
	}
}
