package netsim

import (
	"math"
	"time"
)

// LoadModel maps an instant to a load factor >= 1. The factor multiplies a
// server's processing latency and divides its effective bandwidth: a busy
// server is slower in both regimes. Figure 11 of the paper shows exactly
// this pattern — default providers fine at night, badly degraded during the
// day.
type LoadModel interface {
	Factor(t time.Time) float64
}

// ConstantLoad is a time-invariant load factor.
type ConstantLoad float64

var _ LoadModel = ConstantLoad(0)

// Factor implements LoadModel. Values below 1 are clamped to 1.
func (c ConstantLoad) Factor(time.Time) float64 {
	if c < 1 {
		return 1
	}
	return float64(c)
}

// DiurnalLoad is a sinusoidal daily load curve: factor 1 in the dead of
// night, rising to Peak at PeakHour (local to the server, expressed via
// UTCOffset).
type DiurnalLoad struct {
	// Peak is the maximum load factor (>= 1), reached once per day.
	Peak float64
	// PeakHour is the local hour [0,24) of maximum load.
	PeakHour float64
	// UTCOffset shifts the server's local time from UTC.
	UTCOffset time.Duration
}

var _ LoadModel = DiurnalLoad{}

// Factor implements LoadModel.
func (d DiurnalLoad) Factor(t time.Time) float64 {
	if d.Peak <= 1 {
		return 1
	}
	local := t.UTC().Add(d.UTCOffset)
	hour := float64(local.Hour()) + float64(local.Minute())/60 + float64(local.Second())/3600
	// Cosine centred on the peak hour: 1 at the peak, 0 twelve hours away.
	phase := (hour - d.PeakHour) / 24 * 2 * math.Pi
	shape := (math.Cos(phase) + 1) / 2 // in [0,1]
	return 1 + (d.Peak-1)*shape
}

// StepLoad applies Factor During the [Start, End) window and 1 outside it —
// a crude "the server got busy/broken for a while" model used for
// degradation experiments.
type StepLoad struct {
	Start, End time.Time
	During     float64
}

var _ LoadModel = StepLoad{}

// Factor implements LoadModel.
func (s StepLoad) Factor(t time.Time) float64 {
	if s.During > 1 && !t.Before(s.Start) && t.Before(s.End) {
		return s.During
	}
	return 1
}

// NoisyLoad models a server under fluctuating shared load: the factor is
// multiplicative lognormal-ish noise, resampled every Period. Unlike
// symmetric jitter this produces the heavy right tail real shared servers
// (e.g. PlanetLab nodes) show — mostly somewhat-loaded, occasionally idle,
// sometimes swamped — which is what drives the paper's Figure 10
// min/median-ratio separation.
type NoisyLoad struct {
	// Salt decorrelates different servers' noise streams.
	Salt string
	// Mu is the log of the typical load level: exp(Mu) is the median
	// factor. A busy shared server has Mu around 1 (median ~2.7x), so its
	// rare idle moments (the clamp at 1) are ~3x faster than typical —
	// exactly the paper's Figure 10 default-server behaviour.
	Mu float64
	// Sigma is the lognormal shape. Zero disables the noise entirely.
	Sigma float64
	// Period is how long one load level persists (default 10 minutes).
	Period time.Duration
}

var _ LoadModel = NoisyLoad{}

// Factor implements LoadModel.
func (n NoisyLoad) Factor(t time.Time) float64 {
	if n.Sigma <= 0 {
		return 1
	}
	period := n.Period
	if period <= 0 {
		period = 10 * time.Minute
	}
	bucket := t.UnixNano() / int64(period)
	// Irwin–Hall(4) approximation of a standard normal from four stable
	// uniforms, then exponentiate. Clamp below at 1: load never makes a
	// server faster than idle.
	var z float64
	for i := 0; i < 4; i++ {
		z += loadUniform(n.Salt, bucket, i)
	}
	z = (z - 2) * 1.732 // mean 0, sd ~1
	f := math.Exp(n.Mu + n.Sigma*z)
	if f < 1 {
		return 1
	}
	return f
}

// loadUniform hashes (salt, bucket, i) to [0,1).
func loadUniform(salt string, bucket int64, i int) float64 {
	h := uint64(1469598103934665603) // FNV offset
	mix := func(b byte) {
		h ^= uint64(b)
		h *= 1099511628211
	}
	for j := 0; j < len(salt); j++ {
		mix(salt[j])
	}
	for j := 0; j < 8; j++ {
		mix(byte(bucket >> (8 * j)))
	}
	mix(byte(i))
	return float64(h%1_000_000) / 1_000_000
}

// CombinedLoad multiplies several load models.
type CombinedLoad []LoadModel

var _ LoadModel = CombinedLoad(nil)

// Factor implements LoadModel.
func (c CombinedLoad) Factor(t time.Time) float64 {
	f := 1.0
	for _, m := range c {
		f *= m.Factor(t)
	}
	if f < 1 {
		return 1
	}
	return f
}
