package netsim

import (
	"math"
	"testing"
	"time"
)

func TestConstantLoad(t *testing.T) {
	if got := ConstantLoad(3).Factor(t0); got != 3 {
		t.Errorf("ConstantLoad(3) = %v", got)
	}
	if got := ConstantLoad(0.5).Factor(t0); got != 1 {
		t.Errorf("ConstantLoad(0.5) = %v, want clamped to 1", got)
	}
}

func TestDiurnalLoadPeakAndTrough(t *testing.T) {
	d := DiurnalLoad{Peak: 5, PeakHour: 14}
	peak := d.Factor(time.Date(2026, 1, 1, 14, 0, 0, 0, time.UTC))
	trough := d.Factor(time.Date(2026, 1, 1, 2, 0, 0, 0, time.UTC))
	if math.Abs(peak-5) > 0.01 {
		t.Errorf("peak factor = %v, want ~5", peak)
	}
	if math.Abs(trough-1) > 0.01 {
		t.Errorf("trough factor = %v, want ~1", trough)
	}
	noon := d.Factor(time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC))
	if noon <= trough || noon >= peak {
		t.Errorf("mid-morning factor %v not between trough %v and peak %v", noon, trough, peak)
	}
}

func TestDiurnalLoadUTCOffset(t *testing.T) {
	// Peak at 14:00 local, server 8 hours ahead of UTC: peak at 06:00 UTC.
	d := DiurnalLoad{Peak: 4, PeakHour: 14, UTCOffset: 8 * time.Hour}
	got := d.Factor(time.Date(2026, 1, 1, 6, 0, 0, 0, time.UTC))
	if math.Abs(got-4) > 0.01 {
		t.Errorf("offset peak = %v, want ~4", got)
	}
}

func TestDiurnalLoadDegenerate(t *testing.T) {
	if got := (DiurnalLoad{Peak: 1}).Factor(t0); got != 1 {
		t.Errorf("Peak=1 factor = %v", got)
	}
	if got := (DiurnalLoad{Peak: 0.3}).Factor(t0); got != 1 {
		t.Errorf("Peak<1 factor = %v", got)
	}
}

func TestDiurnalLoadAlwaysAtLeastOne(t *testing.T) {
	d := DiurnalLoad{Peak: 7, PeakHour: 3.5}
	for h := 0; h < 48; h++ {
		f := d.Factor(t0.Add(time.Duration(h) * time.Hour))
		if f < 1 || f > 7.0001 {
			t.Errorf("hour %d: factor %v outside [1, 7]", h, f)
		}
	}
}

func TestStepLoad(t *testing.T) {
	s := StepLoad{Start: t0.Add(time.Hour), End: t0.Add(2 * time.Hour), During: 10}
	if got := s.Factor(t0); got != 1 {
		t.Errorf("before window = %v", got)
	}
	if got := s.Factor(t0.Add(90 * time.Minute)); got != 10 {
		t.Errorf("inside window = %v", got)
	}
	if got := s.Factor(t0.Add(2 * time.Hour)); got != 1 {
		t.Errorf("at End (exclusive) = %v", got)
	}
}

func TestCombinedLoad(t *testing.T) {
	c := CombinedLoad{ConstantLoad(2), ConstantLoad(3)}
	if got := c.Factor(t0); got != 6 {
		t.Errorf("combined = %v, want 6", got)
	}
	if got := (CombinedLoad{}).Factor(t0); got != 1 {
		t.Errorf("empty combined = %v, want 1", got)
	}
}

func TestVirtualClock(t *testing.T) {
	c := NewVirtualClock(t0)
	if !c.Now().Equal(t0) {
		t.Error("initial time wrong")
	}
	got := c.Advance(90 * time.Minute)
	if !got.Equal(t0.Add(90 * time.Minute)) {
		t.Errorf("Advance returned %v", got)
	}
	if !c.Now().Equal(t0.Add(90 * time.Minute)) {
		t.Error("Now after Advance wrong")
	}
	c.Set(t0)
	if !c.Now().Equal(t0) {
		t.Error("Set failed")
	}
}

func TestWallClock(t *testing.T) {
	before := time.Now()
	got := WallClock{}.Now()
	after := time.Now()
	if got.Before(before) || got.After(after) {
		t.Errorf("WallClock.Now() = %v outside [%v, %v]", got, before, after)
	}
}
