package netsim

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
	"sync"
	"time"
)

// Region is a coarse geographic location, matching the paper's client and
// server placement (North America, Europe, Asia including Oceania).
type Region string

// The paper's three regions.
const (
	NorthAmerica Region = "NA"
	Europe       Region = "EU"
	Asia         Region = "AS"
)

// DefaultRTT returns a base round-trip time between two regions, roughly
// calibrated to wide-area Internet paths (intra-region tens of ms,
// cross-global hundreds).
func DefaultRTT(a, b Region) time.Duration {
	if a == b {
		return 40 * time.Millisecond
	}
	pair := string(a) + string(b)
	switch pair {
	case "NAEU", "EUNA":
		return 120 * time.Millisecond
	case "NAAS", "ASNA":
		return 200 * time.Millisecond
	case "EUAS", "ASEU":
		return 260 * time.Millisecond
	default:
		return 150 * time.Millisecond
	}
}

// Server is one simulated HTTP server.
type Server struct {
	// Addr identifies the server (stands in for its IP).
	Addr string
	// Hosts are the domain names that resolve to this server.
	Hosts []string
	// Region places the server for propagation delay.
	Region Region
	// Anycast marks a CDN-fronted service reachable at intra-region
	// latency from every client region (the norm for large third-party
	// providers). Region is ignored for propagation when set.
	Anycast bool
	// ProcLatency is per-request processing time at load factor 1.
	ProcLatency time.Duration
	// BandwidthBps is the serving bandwidth at load factor 1.
	BandwidthBps float64
	// JitterFrac is the +/- fraction of deterministic pseudo-jitter applied
	// to each download (e.g. 0.1 = up to 10% either way).
	JitterFrac float64
	// Load is the server's time-varying load model (nil = unloaded).
	Load LoadModel
}

// Degradation is an injectable performance fault on one server.
type Degradation struct {
	// ServerAddr is the afflicted server.
	ServerAddr string
	// Start and End bound the fault window; a zero End means forever.
	Start, End time.Time
	// ExtraDelay is added to every request during the window (the paper's
	// Section 5.1 injects 250 ms – 5 s steps this way).
	ExtraDelay time.Duration
	// TputFactor divides effective bandwidth during the window (>= 1).
	TputFactor float64
}

// active reports whether the degradation applies at time t.
func (d Degradation) active(t time.Time) bool {
	if t.Before(d.Start) {
		return false
	}
	return d.End.IsZero() || t.Before(d.End)
}

// ClientProfile models a client's access link: the paper's clients range
// from well-connected campus nodes to "users on narrow-bandwidth long-haul
// links" whose every path is slow. A profile widens or narrows the client's
// observed performance spread, which directly sets Oak's detection
// threshold (Section 5.1).
type ClientProfile struct {
	// BandwidthBps caps transfer throughput at the client's access link.
	// Zero means uncapped.
	BandwidthBps float64
	// LatencyFactor multiplies path RTT (>= 1; zero means 1).
	LatencyFactor float64
	// JitterFrac adds client-side jitter on top of the server's.
	JitterFrac float64
}

// Network is a deterministic wide-area network model. All methods are safe
// for concurrent use, and — because jitter is hash-derived rather than drawn
// from a shared RNG stream — results do not depend on call order.
type Network struct {
	mu           sync.RWMutex
	servers      map[string]*Server
	hostToAddr   map[string]string
	degradations []Degradation
	clients      map[string]ClientProfile
	pathVar      float64
}

// Errors returned by Network lookups.
var (
	ErrUnknownServer = errors.New("netsim: unknown server")
	ErrUnknownHost   = errors.New("netsim: unknown host")
)

// NewNetwork returns an empty network.
func NewNetwork() *Network {
	return &Network{
		servers:    make(map[string]*Server),
		hostToAddr: make(map[string]string),
		clients:    make(map[string]ClientProfile),
	}
}

// SetPathVariation makes path quality differ per (client, server) pair: a
// value v stretches each pair's latency by up to +v and shrinks its
// bandwidth by up to 1/(1+v), deterministically per pair. Distinct vantage
// points then see distinct server orderings — the reason the paper's
// per-client detection matters at all ("performance challenges which may be
// unique to that user, for example network blind-spots"). Zero disables.
func (n *Network) SetPathVariation(v float64) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if v < 0 {
		v = 0
	}
	n.pathVar = v
}

// SetClientProfile attaches an access-link profile to a client ID. Clients
// without a profile have an ideal link.
func (n *Network) SetClientProfile(clientID string, p ClientProfile) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.clients[clientID] = p
}

// AddServer registers a server and its hostnames. Re-adding an address
// replaces the server; its hostnames accumulate.
func (n *Network) AddServer(s *Server) error {
	if s == nil || s.Addr == "" {
		return errors.New("netsim: server needs an address")
	}
	if s.BandwidthBps <= 0 {
		return fmt.Errorf("netsim: server %s needs positive bandwidth", s.Addr)
	}
	cp := *s
	cp.Hosts = append([]string(nil), s.Hosts...)
	n.mu.Lock()
	defer n.mu.Unlock()
	n.servers[cp.Addr] = &cp
	for _, h := range cp.Hosts {
		n.hostToAddr[h] = cp.Addr
	}
	return nil
}

// SetServerLoad attaches (or clears, with nil) a time-varying load model on
// an already-registered server. The scenario harness uses this to impose
// diurnal swells and congestion on servers after world construction, without
// re-registering them.
func (n *Network) SetServerLoad(addr string, m LoadModel) error {
	n.mu.Lock()
	defer n.mu.Unlock()
	s, ok := n.servers[addr]
	if !ok {
		return fmt.Errorf("%w: %q", ErrUnknownServer, addr)
	}
	s.Load = m
	return nil
}

// Resolve maps a hostname to the server address it currently points at.
func (n *Network) Resolve(host string) (string, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	addr, ok := n.hostToAddr[host]
	if !ok {
		return "", fmt.Errorf("%w: %q", ErrUnknownHost, host)
	}
	return addr, nil
}

// Server returns the registered server for an address.
func (n *Network) Server(addr string) (*Server, error) {
	n.mu.RLock()
	defer n.mu.RUnlock()
	s, ok := n.servers[addr]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownServer, addr)
	}
	cp := *s
	return &cp, nil
}

// Servers lists registered server addresses, sorted.
func (n *Network) Servers() []string {
	n.mu.RLock()
	defer n.mu.RUnlock()
	addrs := make([]string, 0, len(n.servers))
	for a := range n.servers {
		addrs = append(addrs, a)
	}
	sort.Strings(addrs)
	return addrs
}

// Degrade injects a fault.
func (n *Network) Degrade(d Degradation) {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.degradations = append(n.degradations, d)
}

// ClearDegradations removes all injected faults (new loads see a healthy
// network; historical results are unaffected).
func (n *Network) ClearDegradations() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.degradations = nil
}

// DownloadSpec describes one simulated object fetch.
type DownloadSpec struct {
	// ClientID seeds deterministic jitter (stand-in for the client's
	// network micro-conditions).
	ClientID string
	// ClientRegion places the client.
	ClientRegion Region
	// Host is the server hostname being fetched from.
	Host string
	// SizeBytes is the object size.
	SizeBytes int64
	// At is the simulated instant of the request.
	At time.Time
}

// Download simulates fetching an object and returns the download duration
// and the address served from. The model is:
//
//	duration = 2*RTT (connect + request)
//	         + procLatency*load + extraDelay
//	         + size / (bandwidth / (load*tputFactor))
//	         all * (1 + jitter)
//
// Jitter is a deterministic hash of (client, host, at, size), so identical
// scenarios reproduce bit-for-bit regardless of goroutine interleaving.
func (n *Network) Download(spec DownloadSpec) (time.Duration, string, error) {
	addr, err := n.Resolve(spec.Host)
	if err != nil {
		return 0, "", err
	}
	n.mu.RLock()
	srv := n.servers[addr]
	degs := n.degradations
	prof := n.clients[spec.ClientID]
	pathVar := n.pathVar
	n.mu.RUnlock()
	if srv == nil {
		return 0, "", fmt.Errorf("%w: %q", ErrUnknownServer, addr)
	}

	load := 1.0
	if srv.Load != nil {
		load = srv.Load.Factor(spec.At)
	}
	var extraDelay time.Duration
	tputFactor := 1.0
	for _, d := range degs {
		if d.ServerAddr == addr && d.active(spec.At) {
			extraDelay += d.ExtraDelay
			if d.TputFactor > 1 {
				tputFactor *= d.TputFactor
			}
		}
	}

	rtt := DefaultRTT(spec.ClientRegion, srv.Region)
	if srv.Anycast {
		rtt = DefaultRTT(spec.ClientRegion, spec.ClientRegion)
	}
	if prof.LatencyFactor > 1 {
		rtt = time.Duration(float64(rtt) * prof.LatencyFactor)
	}
	base := 2*rtt + time.Duration(float64(srv.ProcLatency)*load) + extraDelay
	effBW := srv.BandwidthBps / (load * tputFactor)
	if prof.BandwidthBps > 0 && prof.BandwidthBps < effBW {
		effBW = prof.BandwidthBps
	}
	if pathVar > 0 {
		// Cubing the pair uniform gives path quality a thin bad tail: most
		// (client, server) pairs are near-nominal, a few are badly off —
		// the paper's "network blind-spots by third party providers".
		lu := pairUniform(spec.ClientID, addr, "lat")
		bu := pairUniform(spec.ClientID, addr, "bw")
		latStretch := 1 + pathVar*lu*lu*lu
		bwShrink := 1 + pathVar*bu*bu*bu
		base = time.Duration(float64(base) * latStretch)
		effBW /= bwShrink
	}
	transfer := time.Duration(float64(spec.SizeBytes) / effBW * float64(time.Second))
	total := base + transfer

	j := jitter(spec, addr) * (srv.JitterFrac + prof.JitterFrac)
	total = time.Duration(float64(total) * (1 + j))
	if total < time.Millisecond {
		total = time.Millisecond
	}
	return total, addr, nil
}

// pairUniform maps a (client, server, salt) triple to a stable uniform
// value in [0, 1) — the per-path component of the network model.
func pairUniform(clientID, addr, salt string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(clientID))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(addr))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(salt))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// jitter maps a download spec to a deterministic value in [-1, 1).
func jitter(spec DownloadSpec, addr string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(spec.ClientID))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(spec.Host))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(addr))
	_, _ = h.Write([]byte{0})
	var buf [16]byte
	putInt64(buf[:8], spec.At.UnixNano())
	putInt64(buf[8:], spec.SizeBytes)
	_, _ = h.Write(buf[:])
	v := h.Sum64()
	return float64(v)/math.MaxUint64*2 - 1
}

func putInt64(b []byte, v int64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
