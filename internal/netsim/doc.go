// Package netsim is a deterministic network simulator that stands in for
// the paper's PlanetLab testbed (Section 5.1: 25 vantage points across
// North America, Europe and Asia, loading live pages over production
// Internet paths).
//
// It models what Oak's detector actually consumes: per-object download
// durations shaped by region-to-region propagation delay, per-server
// processing latency and bandwidth, deterministic jitter, diurnal load
// swells, and injectable degradations. Experiments that span simulated days
// run against a virtual clock.
//
// Paper mapping:
//
//   - Regions and the RTT matrix reproduce the geographic spread of the
//     PlanetLab deployment (Section 5.1) — the spread that makes violator
//     detection harder for far-away clients (Figure 9).
//   - LoadModel / DiurnalLoad reproduces the time-of-day congestion that
//     drives Figure 11 (default providers fine at night, degraded by day).
//   - Injectable per-server degradations reproduce the controlled delay
//     injections of the sensitivity study (Figure 9) and the outlier-churn
//     measurement (Figure 3).
//   - The virtual clock lets the 72-hour runs of Figures 10–11 finish in
//     milliseconds while keeping every TTL and diurnal phase honest.
//
// Everything is seeded: a run is reproducible bit-for-bit.
package netsim
