package netsim

import (
	"errors"
	"testing"
	"time"
)

var t0 = time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)

func testNetwork(t *testing.T) *Network {
	t.Helper()
	n := NewNetwork()
	servers := []*Server{
		{Addr: "na-1", Hosts: []string{"cdn.example", "alt.example"}, Region: NorthAmerica,
			ProcLatency: 10 * time.Millisecond, BandwidthBps: 1e6},
		{Addr: "eu-1", Hosts: []string{"eu.example"}, Region: Europe,
			ProcLatency: 10 * time.Millisecond, BandwidthBps: 1e6},
		{Addr: "as-1", Hosts: []string{"as.example"}, Region: Asia,
			ProcLatency: 10 * time.Millisecond, BandwidthBps: 1e6},
	}
	for _, s := range servers {
		if err := n.AddServer(s); err != nil {
			t.Fatal(err)
		}
	}
	return n
}

func dl(t *testing.T, n *Network, client string, region Region, host string, size int64, at time.Time) time.Duration {
	t.Helper()
	d, _, err := n.Download(DownloadSpec{
		ClientID: client, ClientRegion: region, Host: host, SizeBytes: size, At: at,
	})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestResolve(t *testing.T) {
	n := testNetwork(t)
	addr, err := n.Resolve("cdn.example")
	if err != nil || addr != "na-1" {
		t.Errorf("Resolve = (%q, %v), want (na-1, nil)", addr, err)
	}
	if _, err := n.Resolve("nowhere.example"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("Resolve(unknown) err = %v, want ErrUnknownHost", err)
	}
	// Two hostnames on one server resolve to the same address.
	addr2, _ := n.Resolve("alt.example")
	if addr2 != "na-1" {
		t.Errorf("alt.example resolved to %q, want na-1", addr2)
	}
}

func TestServerLookup(t *testing.T) {
	n := testNetwork(t)
	s, err := n.Server("eu-1")
	if err != nil || s.Region != Europe {
		t.Errorf("Server(eu-1) = (%+v, %v)", s, err)
	}
	if _, err := n.Server("missing"); !errors.Is(err, ErrUnknownServer) {
		t.Errorf("Server(missing) err = %v", err)
	}
	want := []string{"as-1", "eu-1", "na-1"}
	got := n.Servers()
	if len(got) != 3 || got[0] != want[0] || got[1] != want[1] || got[2] != want[2] {
		t.Errorf("Servers() = %v, want %v", got, want)
	}
}

func TestAddServerValidation(t *testing.T) {
	n := NewNetwork()
	if err := n.AddServer(nil); err == nil {
		t.Error("AddServer(nil): want error")
	}
	if err := n.AddServer(&Server{Addr: ""}); err == nil {
		t.Error("AddServer(no addr): want error")
	}
	if err := n.AddServer(&Server{Addr: "x", BandwidthBps: 0}); err == nil {
		t.Error("AddServer(no bandwidth): want error")
	}
}

func TestDownloadDeterministic(t *testing.T) {
	n := testNetwork(t)
	a := dl(t, n, "c1", NorthAmerica, "cdn.example", 10240, t0)
	b := dl(t, n, "c1", NorthAmerica, "cdn.example", 10240, t0)
	if a != b {
		t.Errorf("identical downloads differ: %v vs %v", a, b)
	}
}

func TestDownloadRegionOrdering(t *testing.T) {
	n := testNetwork(t)
	near := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0)
	farEU := dl(t, n, "c1", Europe, "cdn.example", 1024, t0)
	farAS := dl(t, n, "c1", Asia, "cdn.example", 1024, t0)
	if !(near < farEU && farEU < farAS) {
		t.Errorf("distance ordering violated: NA=%v EU=%v AS=%v", near, farEU, farAS)
	}
}

func TestDownloadSizeMonotone(t *testing.T) {
	n := testNetwork(t)
	small := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0)
	large := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024*1024, t0)
	if large <= small {
		t.Errorf("1 MB (%v) not slower than 1 KB (%v)", large, small)
	}
	// 1 MB at 1 MB/s must take at least ~1 s.
	if large < 900*time.Millisecond {
		t.Errorf("1 MB at 1 MB/s took %v, want >= ~1 s", large)
	}
}

func TestDownloadUnknownHost(t *testing.T) {
	n := testNetwork(t)
	_, _, err := n.Download(DownloadSpec{ClientID: "c", ClientRegion: NorthAmerica,
		Host: "ghost.example", SizeBytes: 10, At: t0})
	if !errors.Is(err, ErrUnknownHost) {
		t.Errorf("err = %v, want ErrUnknownHost", err)
	}
}

func TestDegradationExtraDelay(t *testing.T) {
	n := testNetwork(t)
	before := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0)
	n.Degrade(Degradation{ServerAddr: "na-1", Start: t0, ExtraDelay: 2 * time.Second})
	after := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0)
	if after-before < 1500*time.Millisecond {
		t.Errorf("degradation added %v, want ~2s", after-before)
	}
	// Other servers unaffected.
	eu := dl(t, n, "c1", Europe, "eu.example", 1024, t0)
	n.ClearDegradations()
	eu2 := dl(t, n, "c1", Europe, "eu.example", 1024, t0)
	if eu != eu2 {
		t.Errorf("unrelated server changed by degradation: %v vs %v", eu, eu2)
	}
}

func TestDegradationWindow(t *testing.T) {
	n := testNetwork(t)
	n.Degrade(Degradation{
		ServerAddr: "na-1",
		Start:      t0.Add(time.Hour),
		End:        t0.Add(2 * time.Hour),
		ExtraDelay: 5 * time.Second,
	})
	during := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0.Add(90*time.Minute))
	outside := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0.Add(3*time.Hour))
	if during < 4*time.Second {
		t.Errorf("inside window: %v, want >= ~5s", during)
	}
	if outside > time.Second {
		t.Errorf("outside window: %v, want fast", outside)
	}
}

func TestDegradationTputFactor(t *testing.T) {
	n := testNetwork(t)
	fast := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024*1024, t0)
	n.Degrade(Degradation{ServerAddr: "na-1", Start: t0, TputFactor: 10})
	slow := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024*1024, t0)
	ratio := float64(slow) / float64(fast)
	if ratio < 5 {
		t.Errorf("tput degradation ratio %v, want ~10x on a transfer-dominated load", ratio)
	}
}

func TestClearDegradations(t *testing.T) {
	n := testNetwork(t)
	n.Degrade(Degradation{ServerAddr: "na-1", Start: t0, ExtraDelay: 5 * time.Second})
	n.ClearDegradations()
	d := dl(t, n, "c1", NorthAmerica, "cdn.example", 1024, t0)
	if d > time.Second {
		t.Errorf("degradation survived Clear: %v", d)
	}
}

func TestJitterBoundedAndVaries(t *testing.T) {
	n := NewNetwork()
	if err := n.AddServer(&Server{
		Addr: "j-1", Hosts: []string{"j.example"}, Region: NorthAmerica,
		ProcLatency: 10 * time.Millisecond, BandwidthBps: 1e6, JitterFrac: 0.2,
	}); err != nil {
		t.Fatal(err)
	}
	base := dl(t, n, "c1", NorthAmerica, "j.example", 1024, t0)
	varied := false
	for i := 1; i <= 20; i++ {
		d := dl(t, n, "c1", NorthAmerica, "j.example", 1024, t0.Add(time.Duration(i)*time.Minute))
		if d != base {
			varied = true
		}
		lo := float64(base) * 0.6
		hi := float64(base) * 1.5
		if float64(d) < lo || float64(d) > hi {
			t.Errorf("jittered duration %v outside [%v, %v]", d, time.Duration(lo), time.Duration(hi))
		}
	}
	if !varied {
		t.Error("jitter produced identical durations across instants")
	}
}

func TestDownloadMinimumDuration(t *testing.T) {
	n := NewNetwork()
	if err := n.AddServer(&Server{
		Addr: "fast", Hosts: []string{"f.example"}, Region: NorthAmerica, BandwidthBps: 1e12,
	}); err != nil {
		t.Fatal(err)
	}
	d := dl(t, n, "c", NorthAmerica, "f.example", 1, t0)
	if d < time.Millisecond {
		t.Errorf("duration %v below the 1ms floor", d)
	}
}

func TestClientProfileSlowsDownloads(t *testing.T) {
	n := testNetwork(t)
	fast := dl(t, n, "wired", NorthAmerica, "cdn.example", 500*1024, t0)
	n.SetClientProfile("narrow", ClientProfile{BandwidthBps: 50e3, LatencyFactor: 3})
	slow := dl(t, n, "narrow", NorthAmerica, "cdn.example", 500*1024, t0)
	if float64(slow) < 4*float64(fast) {
		t.Errorf("narrow link %v not much slower than wired %v", slow, fast)
	}
	// Profile applies only to the named client.
	other := dl(t, n, "wired", NorthAmerica, "cdn.example", 500*1024, t0)
	if other != fast {
		t.Error("profile leaked across clients")
	}
}

func TestClientProfileJitterAdds(t *testing.T) {
	n := testNetwork(t)
	n.SetClientProfile("jittery", ClientProfile{JitterFrac: 0.5})
	base := dl(t, n, "calm", NorthAmerica, "cdn.example", 1024, t0)
	var spread bool
	for i := 0; i < 10; i++ {
		at := t0.Add(time.Duration(i) * time.Minute)
		a := dl(t, n, "calm", NorthAmerica, "cdn.example", 1024, at)
		b := dl(t, n, "jittery", NorthAmerica, "cdn.example", 1024, at)
		if a != b {
			spread = true
		}
	}
	if !spread {
		t.Errorf("client jitter had no effect around base %v", base)
	}
}

func TestDefaultRTTSymmetric(t *testing.T) {
	regions := []Region{NorthAmerica, Europe, Asia}
	for _, a := range regions {
		for _, b := range regions {
			if DefaultRTT(a, b) != DefaultRTT(b, a) {
				t.Errorf("RTT(%s,%s) != RTT(%s,%s)", a, b, b, a)
			}
		}
	}
	if DefaultRTT(NorthAmerica, NorthAmerica) >= DefaultRTT(NorthAmerica, Asia) {
		t.Error("intra-region RTT should be below cross-global RTT")
	}
}
