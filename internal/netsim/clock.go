package netsim

import (
	"sync"
	"time"
)

// Clock supplies the current time. Production code uses WallClock; the
// experiment harness uses VirtualClock so 72-hour runs finish in
// milliseconds.
type Clock interface {
	Now() time.Time
}

// WallClock is the real time.Now.
type WallClock struct{}

// Now implements Clock.
func (WallClock) Now() time.Time { return time.Now() }

// VirtualClock is a manually advanced clock. It is safe for concurrent use.
type VirtualClock struct {
	mu sync.Mutex
	t  time.Time
}

var _ Clock = (*VirtualClock)(nil)

// NewVirtualClock returns a virtual clock starting at the given instant.
func NewVirtualClock(start time.Time) *VirtualClock {
	return &VirtualClock{t: start}
}

// Now implements Clock.
func (c *VirtualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

// Advance moves the clock forward by d and returns the new time.
func (c *VirtualClock) Advance(d time.Duration) time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
	return c.t
}

// Set jumps the clock to the given instant.
func (c *VirtualClock) Set(t time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = t
}
