package stats

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// maxRelErr is the sketch's worst-case relative error, (gamma-1)/(gamma+1),
// padded slightly for the discrete rank walk on small samples.
const maxRelErr = (sketchGamma - 1) / (sketchGamma + 1) * 1.3

func exactQuantile(xs []float64, q float64) float64 {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(math.Ceil(q*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return sorted[i]
}

func TestQuantileSketchAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var s QuantileSketch
	xs := make([]float64, 0, 5000)
	for i := 0; i < 5000; i++ {
		// Log-normal-ish download times: mostly tens of ms, long tail.
		v := math.Exp(rng.NormFloat64()*1.2 + 3.5)
		xs = append(xs, v)
		s.Add(v)
	}
	if s.Count() != 5000 {
		t.Fatalf("Count = %d, want 5000", s.Count())
	}
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		got := s.Quantile(q)
		want := exactQuantile(xs, q)
		rel := math.Abs(got-want) / want
		if rel > maxRelErr {
			t.Errorf("Quantile(%v) = %v, exact %v, rel err %.3f > %.3f",
				q, got, want, rel, maxRelErr)
		}
	}
}

func TestQuantileSketchEdgeCases(t *testing.T) {
	var s QuantileSketch
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("empty Quantile = %v, want 0", got)
	}
	// Hostile inputs must not panic and must land in edge buckets.
	for _, v := range []float64{0, -5, math.NaN(), math.Inf(1), math.Inf(-1), 1e300} {
		s.Add(v)
	}
	if s.Count() != 6 {
		t.Fatalf("Count = %d, want 6", s.Count())
	}
	if got := s.Quantile(-1); got != s.Quantile(0) {
		t.Errorf("q<0 not clamped: %v vs %v", got, s.Quantile(0))
	}
	if got := s.Quantile(2); got != s.Quantile(1) {
		t.Errorf("q>1 not clamped: %v vs %v", got, s.Quantile(1))
	}

	var one QuantileSketch
	one.Add(100)
	for _, q := range []float64{0, 0.5, 1} {
		got := one.Quantile(q)
		if math.Abs(got-100)/100 > maxRelErr {
			t.Errorf("single-value Quantile(%v) = %v, want ~100", q, got)
		}
	}
}

func TestQuantileSketchMergeEqualsConcat(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var a, b, both QuantileSketch
	for i := 0; i < 1000; i++ {
		v := rng.Float64() * 500
		a.Add(v)
		both.Add(v)
	}
	for i := 0; i < 700; i++ {
		v := 1000 + rng.Float64()*5000
		b.Add(v)
		both.Add(v)
	}
	a.Merge(&b)
	if a.Count() != both.Count() {
		t.Fatalf("merged Count = %d, want %d", a.Count(), both.Count())
	}
	for q := 0.05; q < 1; q += 0.05 {
		if ga, gb := a.Quantile(q), both.Quantile(q); ga != gb {
			t.Errorf("Quantile(%v): merged %v != concat %v", q, ga, gb)
		}
	}
	a.Merge(nil) // no-op
	if a.Count() != both.Count() {
		t.Fatalf("Merge(nil) changed count")
	}
}

func TestQuantileSketchDecay(t *testing.T) {
	var s QuantileSketch
	for i := 0; i < 1000; i++ {
		s.Add(50)
	}
	s.Decay()
	if s.Count() != 500 {
		t.Fatalf("after Decay Count = %d, want 500", s.Count())
	}
	// Odd counts round down; repeated decay drains the sketch.
	for i := 0; i < 20; i++ {
		s.Decay()
	}
	if s.Count() != 0 {
		t.Fatalf("after repeated Decay Count = %d, want 0", s.Count())
	}
	if got := s.Quantile(0.5); got != 0 {
		t.Errorf("drained Quantile = %v, want 0", got)
	}
}

func TestQuantileSketchResetAndMemory(t *testing.T) {
	var s QuantileSketch
	for i := 0; i < 100; i++ {
		s.Add(float64(i + 1))
	}
	s.Reset()
	if s.Count() != 0 || s.Quantile(0.5) != 0 {
		t.Fatalf("Reset left state: count=%d q50=%v", s.Count(), s.Quantile(0.5))
	}
	if got := s.MemoryBytes(); got != sketchBuckets*8+8 {
		t.Fatalf("MemoryBytes = %d, want %d", got, sketchBuckets*8+8)
	}
}

func TestHeavyHittersSkewedStream(t *testing.T) {
	h := NewHeavyHitters(4)
	// Zipf-ish: a dominates, then b, then c; long tail of singletons.
	for i := 0; i < 300; i++ {
		h.Add("a", 1)
	}
	for i := 0; i < 150; i++ {
		h.Add("b", 1)
	}
	for i := 0; i < 80; i++ {
		h.Add("c", 1)
	}
	for i := 0; i < 50; i++ {
		h.Add("tail-"+string(rune('a'+i%26))+string(rune('0'+i/26)), 1)
	}
	top := h.Top(3)
	if len(top) != 3 {
		t.Fatalf("Top(3) len = %d", len(top))
	}
	if top[0].Item != "a" || top[1].Item != "b" || top[2].Item != "c" {
		t.Fatalf("Top(3) order = %v, want a,b,c", top)
	}
	// Space-saving guarantee: estimate >= true count, error bounded.
	if top[0].Count < 300 || top[0].Count-top[0].Error > 300 {
		t.Errorf("a: count %d err %d excludes true 300", top[0].Count, top[0].Error)
	}
	if h.Len() != 4 {
		t.Errorf("Len = %d, want 4 (table full)", h.Len())
	}
}

func TestHeavyHittersBasics(t *testing.T) {
	h := NewHeavyHitters(0) // clamped to 1
	h.Add("x", 5)
	h.Add("x", 0) // zero weight is a no-op
	h.Add("y", 10)
	top := h.Top(0)
	if len(top) != 1 {
		t.Fatalf("k=1 tracked %d items", len(top))
	}
	if top[0].Item != "y" || top[0].Count != 15 || top[0].Error != 5 {
		t.Fatalf("replacement rule broken: %+v", top[0])
	}
}

func TestHeavyHittersMerge(t *testing.T) {
	a := NewHeavyHitters(3)
	b := NewHeavyHitters(3)
	a.Add("x", 10)
	a.Add("y", 5)
	b.Add("x", 7)
	b.Add("z", 20)
	b.Add("w", 1)
	a.Merge(b)
	if a.Len() > 3 {
		t.Fatalf("merge exceeded k: %d", a.Len())
	}
	top := a.Top(2)
	if top[0].Item != "z" || top[0].Count != 20 {
		t.Errorf("top after merge = %+v, want z/20", top[0])
	}
	if top[1].Item != "x" || top[1].Count != 17 {
		t.Errorf("second after merge = %+v, want x/17", top[1])
	}
	a.Merge(nil) // no-op
}

func BenchmarkQuantileSketchAdd(b *testing.B) {
	var s QuantileSketch
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i%2000) + 0.5)
	}
}

func BenchmarkQuantileSketchMerge(b *testing.B) {
	var a, o QuantileSketch
	for i := 0; i < 10000; i++ {
		o.Add(float64(i % 3000))
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a.Merge(&o)
	}
}
