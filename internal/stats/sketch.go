package stats

import (
	"math"
)

// QuantileSketch is a DDSketch-style streaming quantile estimator over
// positive values with relative-error guarantees and a fixed memory
// footprint.
//
// Values are binned into logarithmically spaced buckets: bucket i covers
// [sketchMin*gamma^i, sketchMin*gamma^(i+1)). A quantile query walks the
// cumulative counts and reports the log-midpoint of the bucket the rank
// falls into, which bounds the relative error by (gamma-1)/(gamma+1) ≈ 7%
// for the gamma used here — plenty for "did the p75 move by 1.5×?", the
// only question the population detector asks.
//
// Unlike t-digest, the bucket layout is static, which makes Merge a plain
// element-wise add: sketches from different shards (or different nodes)
// combine losslessly, and merging is associative and commutative. Decay
// halves every bucket, turning a baseline sketch into an exponentially
// weighted trailing window.
//
// The zero value is ready to use. QuantileSketch is not safe for concurrent
// use; callers synchronize (in the engine, the owning shard's lock or the
// population state's own mutex).
type QuantileSketch struct {
	buckets [sketchBuckets]uint64
	// count is the total weight across buckets, kept separately so Count
	// and the rank walk don't rescan the array on every Add.
	count uint64
}

const (
	// sketchBuckets fixes the memory ceiling: the sketch is this many
	// uint64 counters and nothing else, ~1 KiB per sketch regardless of
	// how many samples it has absorbed.
	sketchBuckets = 128
	// sketchMin is the smallest distinguishable value in milliseconds;
	// anything at or below it lands in bucket 0. With gamma=1.15 the top
	// bucket then starts around sketchMin*gamma^127 ≈ 2.9e6 ms, far past
	// any plausible download time.
	sketchMin = 0.05
	// sketchGamma is the bucket growth factor; relative error is bounded
	// by (gamma-1)/(gamma+1) ≈ 7%.
	sketchGamma = 1.15
)

// sketchLogGamma is math.Log(sketchGamma), precomputed since Add is on the
// ingest hot path.
var sketchLogGamma = math.Log(sketchGamma)

// sketchIndex maps a value to its bucket, clamping to the array bounds so
// pathological inputs (zero, negative, NaN, +Inf) degrade to the edge
// buckets instead of corrupting memory.
func sketchIndex(v float64) int {
	if !(v > sketchMin) { // catches <=min, NaN
		return 0
	}
	i := int(math.Log(v/sketchMin) / sketchLogGamma)
	if i < 0 {
		return 0
	}
	if i >= sketchBuckets {
		return sketchBuckets - 1
	}
	return i
}

// Add records one observation.
func (s *QuantileSketch) Add(v float64) {
	s.buckets[sketchIndex(v)]++
	s.count++
}

// Count returns the total number of recorded observations (after any
// Decay, the surviving weight).
func (s *QuantileSketch) Count() uint64 { return s.count }

// Quantile returns an estimate of the q-quantile (q in [0,1]) of the
// recorded values. It returns 0 for an empty sketch. Estimates carry the
// sketch's relative-error bound; q outside [0,1] is clamped.
func (s *QuantileSketch) Quantile(q float64) float64 {
	if s.count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the smallest value has rank 1.
	rank := uint64(math.Ceil(q * float64(s.count)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := 0; i < sketchBuckets; i++ {
		cum += s.buckets[i]
		if cum >= rank {
			return bucketValue(i)
		}
	}
	return bucketValue(sketchBuckets - 1)
}

// bucketValue returns the representative value (log-midpoint) of bucket i.
func bucketValue(i int) float64 {
	if i == 0 {
		return sketchMin
	}
	return sketchMin * math.Exp((float64(i)+0.5)*sketchLogGamma)
}

// Merge folds o into s. Because the bucket layout is static the merge is
// exact: the merged sketch answers queries as if it had seen both streams.
// o is unchanged; a nil o is a no-op.
func (s *QuantileSketch) Merge(o *QuantileSketch) {
	if o == nil {
		return
	}
	for i := range s.buckets {
		s.buckets[i] += o.buckets[i]
	}
	s.count += o.count
}

// Decay halves every bucket (integer division), giving the sketch an
// exponentially decaying memory: applied once per window, observations
// from k windows ago carry weight 2^-k. Used to keep the population
// baseline trailing instead of permanent.
func (s *QuantileSketch) Decay() {
	var total uint64
	for i := range s.buckets {
		s.buckets[i] /= 2
		total += s.buckets[i]
	}
	s.count = total
}

// Reset empties the sketch.
func (s *QuantileSketch) Reset() {
	*s = QuantileSketch{}
}

// MemoryBytes reports the fixed memory footprint of one sketch: the bucket
// array plus the count, independent of stream length. This is the
// bytes-per-provider ceiling quoted in the operations docs.
func (s *QuantileSketch) MemoryBytes() int {
	return sketchBuckets*8 + 8
}
