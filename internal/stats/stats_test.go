package stats

import (
	"errors"
	"math"
	"strings"
	"testing"
)

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) < 1e-9
}

func TestMedian(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		{name: "single", in: []float64{5}, want: 5},
		{name: "odd", in: []float64{3, 1, 2}, want: 2},
		{name: "even", in: []float64{4, 1, 3, 2}, want: 2.5},
		{name: "duplicates", in: []float64{2, 2, 2, 2}, want: 2},
		{name: "negative", in: []float64{-3, -1, -2}, want: -2},
		{name: "unsorted large", in: []float64{9, 7, 5, 3, 1}, want: 5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := Median(tt.in)
			if err != nil {
				t.Fatalf("Median(%v) error: %v", tt.in, err)
			}
			if !almostEqual(got, tt.want) {
				t.Errorf("Median(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMedianEmpty(t *testing.T) {
	if _, err := Median(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Median(nil) error = %v, want ErrEmpty", err)
	}
}

func TestMedianDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := Median(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 || in[1] != 1 || in[2] != 2 {
		t.Errorf("Median mutated input: %v", in)
	}
}

func TestMAD(t *testing.T) {
	tests := []struct {
		name string
		in   []float64
		want float64
	}{
		// median=2, deviations {1,0,1} -> median 1.
		{name: "simple", in: []float64{1, 2, 3}, want: 1},
		// all equal -> MAD 0.
		{name: "constant", in: []float64{4, 4, 4, 4}, want: 0},
		// median=3, devs {2,1,0,1,2} -> 1.
		{name: "symmetric", in: []float64{1, 2, 3, 4, 5}, want: 1},
		// An extreme outlier barely moves MAD: median=3, devs {2,1,0,1,997} -> 1.
		{name: "outlier robust", in: []float64{1, 2, 3, 4, 1000}, want: 1},
		{name: "single", in: []float64{7}, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got, err := MAD(tt.in)
			if err != nil {
				t.Fatalf("MAD(%v) error: %v", tt.in, err)
			}
			if !almostEqual(got, tt.want) {
				t.Errorf("MAD(%v) = %v, want %v", tt.in, got, tt.want)
			}
		})
	}
}

func TestMADEmpty(t *testing.T) {
	if _, err := MAD(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("MAD(nil) error = %v, want ErrEmpty", err)
	}
}

func TestMedianMADMatchesSeparateCalls(t *testing.T) {
	in := []float64{5, 1, 9, 3, 7, 2}
	med, mad, err := MedianMAD(in)
	if err != nil {
		t.Fatal(err)
	}
	wantMed, _ := Median(in)
	wantMAD, _ := MAD(in)
	if !almostEqual(med, wantMed) || !almostEqual(mad, wantMAD) {
		t.Errorf("MedianMAD = (%v,%v), want (%v,%v)", med, mad, wantMed, wantMAD)
	}
}

func TestPercentile(t *testing.T) {
	in := []float64{10, 20, 30, 40, 50}
	tests := []struct {
		p    float64
		want float64
	}{
		{0, 10},
		{0.25, 20},
		{0.5, 30},
		{0.75, 40},
		{1, 50},
		{0.1, 14}, // interpolated: rank 0.4 between 10 and 20
	}
	for _, tt := range tests {
		got, err := Percentile(in, tt.p)
		if err != nil {
			t.Fatalf("Percentile(p=%v) error: %v", tt.p, err)
		}
		if !almostEqual(got, tt.want) {
			t.Errorf("Percentile(p=%v) = %v, want %v", tt.p, got, tt.want)
		}
	}
}

func TestPercentileOutOfRange(t *testing.T) {
	if _, err := Percentile([]float64{1}, 1.5); err == nil {
		t.Error("Percentile(p=1.5) = nil error, want error")
	}
	if _, err := Percentile([]float64{1}, -0.1); err == nil {
		t.Error("Percentile(p=-0.1) = nil error, want error")
	}
}

func TestMeanStdDev(t *testing.T) {
	in := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	mean, err := Mean(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(mean, 5) {
		t.Errorf("Mean = %v, want 5", mean)
	}
	sd, err := StdDev(in)
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(sd, 2) {
		t.Errorf("StdDev = %v, want 2", sd)
	}
}

func TestMinMax(t *testing.T) {
	in := []float64{3, -1, 4, 1, 5}
	min, err := Min(in)
	if err != nil || min != -1 {
		t.Errorf("Min = (%v,%v), want (-1,nil)", min, err)
	}
	max, err := Max(in)
	if err != nil || max != 5 {
		t.Errorf("Max = (%v,%v), want (5,nil)", max, err)
	}
}

func TestMinMedianRatio(t *testing.T) {
	// median 4, min 1 -> 0.25.
	got, err := MinMedianRatio([]float64{1, 4, 8, 4, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, 0.25) {
		t.Errorf("MinMedianRatio = %v, want 0.25", got)
	}
}

func TestMinMedianRatioZeroMedian(t *testing.T) {
	if _, err := MinMedianRatio([]float64{0, 0, 0}); err == nil {
		t.Error("MinMedianRatio(zeros) = nil error, want error")
	}
}

func TestEmptyInputsReturnErrEmpty(t *testing.T) {
	if _, err := Mean(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Mean(nil): want ErrEmpty")
	}
	if _, err := Min(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Min(nil): want ErrEmpty")
	}
	if _, err := Max(nil); !errors.Is(err, ErrEmpty) {
		t.Error("Max(nil): want ErrEmpty")
	}
	if _, err := Percentile(nil, 0.5); !errors.Is(err, ErrEmpty) {
		t.Error("Percentile(nil): want ErrEmpty")
	}
	if _, err := MinMedianRatio(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MinMedianRatio(nil): want ErrEmpty")
	}
	if _, _, err := MedianMAD(nil); !errors.Is(err, ErrEmpty) {
		t.Error("MedianMAD(nil): want ErrEmpty")
	}
}

func TestSummarize(t *testing.T) {
	xs := make([]float64, 100)
	for i := range xs {
		xs[i] = float64(i + 1) // 1..100
	}
	s, err := Summarize(xs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Count != 100 || s.Min != 1 || s.Max != 100 {
		t.Errorf("summary = %+v", s)
	}
	if !almostEqual(s.Mean, 50.5) {
		t.Errorf("Mean = %v, want 50.5", s.Mean)
	}
	if s.P50 < 50 || s.P50 > 51 {
		t.Errorf("P50 = %v", s.P50)
	}
	if s.P90 < 90 || s.P90 > 91 {
		t.Errorf("P90 = %v", s.P90)
	}
	if s.P99 < 99 || s.P99 > 100 {
		t.Errorf("P99 = %v", s.P99)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); !errors.Is(err, ErrEmpty) {
		t.Errorf("Summarize(nil) err = %v, want ErrEmpty", err)
	}
}

func TestSummaryString(t *testing.T) {
	s, err := Summarize([]float64{1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	out := s.String()
	if !strings.Contains(out, "n=3") || !strings.Contains(out, "p50=2.0") {
		t.Errorf("String = %q", out)
	}
}

func TestSummarizeDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Summarize(xs); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[2] != 2 {
		t.Errorf("input mutated: %v", xs)
	}
}
