// Package stats provides the robust statistics Oak's violator detection is
// built on: medians, the median absolute deviation (MAD), percentiles, and
// empirical CDFs.
//
// The paper (Section 4.2.1) labels a server a violator when its small-object
// time exceeds median + 2*MAD, or its large-object throughput falls below
// median - 2*MAD. Everything needed to evaluate that criterion — and to
// reproduce the distributional figures of the evaluation — lives here.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by functions that cannot produce a meaningful result
// for an empty sample.
var ErrEmpty = errors.New("stats: empty sample")

// Median returns the median of xs. The input is not modified.
// It returns ErrEmpty for an empty sample.
func Median(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return medianSorted(sorted), nil
}

// medianSorted returns the median of an already-sorted, non-empty slice.
func medianSorted(sorted []float64) float64 {
	n := len(sorted)
	if n%2 == 1 {
		return sorted[n/2]
	}
	return (sorted[n/2-1] + sorted[n/2]) / 2
}

// MAD returns the median absolute deviation of xs:
//
//	MAD = median_i(|x_i - median_j(x_j)|)
//
// It is the paper's measure of spread, chosen because it is far less
// sensitive to the very outliers Oak is hunting than a standard deviation.
// The input is not modified. It returns ErrEmpty for an empty sample.
func MAD(xs []float64) (float64, error) {
	med, err := Median(xs)
	if err != nil {
		return 0, err
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - med)
	}
	sort.Float64s(devs)
	return medianSorted(devs), nil
}

// MedianMAD returns both the median and the MAD of xs in one pass over the
// sorted data. It returns ErrEmpty for an empty sample.
func MedianMAD(xs []float64) (median, mad float64, err error) {
	median, err = Median(xs)
	if err != nil {
		return 0, 0, err
	}
	devs := make([]float64, len(xs))
	for i, x := range xs {
		devs[i] = math.Abs(x - median)
	}
	sort.Float64s(devs)
	return median, medianSorted(devs), nil
}

// MedianMADInto is MedianMAD with caller-provided working memory: scratch is
// overwritten (grown as needed) and handed back for reuse, so steady-state
// callers — the engine evaluates the MAD criterion twice per report — sort
// into a recycled buffer instead of allocating one. xs is not modified, and
// the results are identical to MedianMAD's.
func MedianMADInto(xs, scratch []float64) (median, mad float64, scratch2 []float64, err error) {
	if len(xs) == 0 {
		return 0, 0, scratch, ErrEmpty
	}
	scratch = append(scratch[:0], xs...)
	sort.Float64s(scratch)
	median = medianSorted(scratch)
	for i, x := range scratch {
		scratch[i] = math.Abs(x - median)
	}
	sort.Float64s(scratch)
	return median, medianSorted(scratch), scratch, nil
}

// Percentile returns the p-quantile (0 <= p <= 1) of xs using linear
// interpolation between closest ranks. The input is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, errors.New("stats: percentile out of range [0,1]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return percentileSorted(sorted, p), nil
}

func percentileSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 1 {
		return sorted[0]
	}
	rank := p * float64(n-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo]
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// Mean returns the arithmetic mean of xs.
// It returns ErrEmpty for an empty sample.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// StdDev returns the population standard deviation of xs. It is used only by
// the ablation benchmarks that contrast MAD with classical dispersion.
func StdDev(xs []float64) (float64, error) {
	mean, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	var ss float64
	for _, x := range xs {
		d := x - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Min returns the smallest element of xs.
// It returns ErrEmpty for an empty sample.
func Min(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	min := xs[0]
	for _, x := range xs[1:] {
		if x < min {
			min = x
		}
	}
	return min, nil
}

// Max returns the largest element of xs.
// It returns ErrEmpty for an empty sample.
func Max(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	max := xs[0]
	for _, x := range xs[1:] {
		if x > max {
			max = x
		}
	}
	return max, nil
}

// MinMedianRatio returns min(xs)/median(xs), the metric of the paper's
// Figure 10: values near 1 indicate consistent per-load performance, small
// values indicate at least one badly under-performing component.
func MinMedianRatio(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	med := medianSorted(sorted)
	if med == 0 {
		return 0, errors.New("stats: zero median")
	}
	return sorted[0] / med, nil
}
