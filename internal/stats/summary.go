package stats

import (
	"fmt"
	"sort"
)

// Summary is a compact distribution description for operator-facing output
// (oakreport, audit logs).
type Summary struct {
	Count int
	Mean  float64
	Min   float64
	P50   float64
	P90   float64
	P99   float64
	Max   float64
}

// Summarize computes a Summary of xs. It returns ErrEmpty for an empty
// sample. The input is not modified.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	var sum float64
	for _, x := range sorted {
		sum += x
	}
	return Summary{
		Count: len(sorted),
		Mean:  sum / float64(len(sorted)),
		Min:   sorted[0],
		P50:   percentileSorted(sorted, 0.50),
		P90:   percentileSorted(sorted, 0.90),
		P99:   percentileSorted(sorted, 0.99),
		Max:   sorted[len(sorted)-1],
	}, nil
}

// String renders the summary on one line.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.1f min=%.1f p50=%.1f p90=%.1f p99=%.1f max=%.1f",
		s.Count, s.Mean, s.Min, s.P50, s.P90, s.P99, s.Max)
}
