package stats

import (
	"testing"
)

func TestOutlierThresholdUpper(t *testing.T) {
	// Times: median 100, MAD 10 -> cutoff 120.
	xs := []float64{90, 95, 100, 105, 110}
	th, err := NewOutlierThreshold(xs, 2, UpperOutlier)
	if err != nil {
		t.Fatal(err)
	}
	if th.Median != 100 {
		t.Errorf("Median = %v, want 100", th.Median)
	}
	if th.MAD != 5 {
		t.Errorf("MAD = %v, want 5", th.MAD)
	}
	if got := th.Cutoff(); got != 110 {
		t.Errorf("Cutoff = %v, want 110", got)
	}
	if th.IsOutlier(110) {
		t.Error("IsOutlier(110) = true, want false (boundary is not a violation)")
	}
	if !th.IsOutlier(111) {
		t.Error("IsOutlier(111) = false, want true")
	}
	if th.IsOutlier(90) {
		t.Error("IsOutlier(90) = true, want false (fast is never an upper outlier)")
	}
}

func TestOutlierThresholdLower(t *testing.T) {
	// Throughputs: lower is worse.
	xs := []float64{90, 95, 100, 105, 110}
	th, err := NewOutlierThreshold(xs, 2, LowerOutlier)
	if err != nil {
		t.Fatal(err)
	}
	if got := th.Cutoff(); got != 90 {
		t.Errorf("Cutoff = %v, want 90", got)
	}
	if th.IsOutlier(90) {
		t.Error("IsOutlier(90) = true, want false")
	}
	if !th.IsOutlier(89) {
		t.Error("IsOutlier(89) = false, want true")
	}
	if th.IsOutlier(200) {
		t.Error("IsOutlier(200) = true, want false (fast throughput is fine)")
	}
}

func TestOutlierDistance(t *testing.T) {
	xs := []float64{90, 95, 100, 105, 110}
	up, _ := NewOutlierThreshold(xs, 2, UpperOutlier)
	if got := up.Distance(130); got != 30 {
		t.Errorf("upper Distance(130) = %v, want 30", got)
	}
	if got := up.Distance(80); got != -20 {
		t.Errorf("upper Distance(80) = %v, want -20", got)
	}
	lo, _ := NewOutlierThreshold(xs, 2, LowerOutlier)
	if got := lo.Distance(70); got != 30 {
		t.Errorf("lower Distance(70) = %v, want 30", got)
	}
	if got := lo.Distance(120); got != -20 {
		t.Errorf("lower Distance(120) = %v, want -20", got)
	}
}

func TestOutliersIndices(t *testing.T) {
	// median 10, MAD 1 -> upper cutoff 12; 50 and 13 are outliers.
	xs := []float64{9, 10, 11, 13, 50, 10}
	got := Outliers(xs, 2, UpperOutlier)
	want := map[int]bool{3: true, 4: true}
	if len(got) != len(want) {
		t.Fatalf("Outliers = %v, want indices of {13, 50}", got)
	}
	for _, i := range got {
		if !want[i] {
			t.Errorf("unexpected outlier index %d (value %v)", i, xs[i])
		}
	}
}

func TestOutliersEmptyAndConstant(t *testing.T) {
	if got := Outliers(nil, 2, UpperOutlier); got != nil {
		t.Errorf("Outliers(nil) = %v, want nil", got)
	}
	// Constant sample: MAD 0, nothing is beyond median+0 strictly except
	// values greater than the median — there are none.
	if got := Outliers([]float64{5, 5, 5}, 2, UpperOutlier); got != nil {
		t.Errorf("Outliers(const) = %v, want nil", got)
	}
}

func TestOutliersConstantWithOneSlow(t *testing.T) {
	// With MAD 0 the criterion degenerates to "worse than the median at
	// all"; the single slow server must still be caught.
	xs := []float64{5, 5, 5, 5, 9}
	got := Outliers(xs, 2, UpperOutlier)
	if len(got) != 1 || got[0] != 4 {
		t.Errorf("Outliers = %v, want [4]", got)
	}
}
