package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

// sample is a quick.Generator producing non-empty bounded float samples so
// property tests stay numerically honest (no NaN/Inf, no overflow).
type sample []float64

var _ quick.Generator = sample(nil)

func (sample) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size+1)
	s := make(sample, n)
	for i := range s {
		s[i] = (r.Float64() - 0.5) * 1e6
	}
	return reflect.ValueOf(s)
}

var quickCfg = &quick.Config{MaxCount: 300}

// Property: the median lies within [min, max] of the sample.
func TestQuickMedianWithinRange(t *testing.T) {
	f := func(s sample) bool {
		med, err := Median(s)
		if err != nil {
			return false
		}
		min, _ := Min(s)
		max, _ := Max(s)
		return med >= min && med <= max
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: at most half the sample lies strictly above the median and at
// most half strictly below.
func TestQuickMedianSplitsSample(t *testing.T) {
	f := func(s sample) bool {
		med, err := Median(s)
		if err != nil {
			return false
		}
		var above, below int
		for _, x := range s {
			if x > med {
				above++
			} else if x < med {
				below++
			}
		}
		half := len(s) / 2
		return above <= half && below <= half
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: MAD is non-negative and translation-invariant.
func TestQuickMADTranslationInvariant(t *testing.T) {
	f := func(s sample, shiftRaw int16) bool {
		shift := float64(shiftRaw)
		mad1, err := MAD(s)
		if err != nil || mad1 < 0 {
			return false
		}
		shifted := make([]float64, len(s))
		for i, x := range s {
			shifted[i] = x + shift
		}
		mad2, err := MAD(shifted)
		if err != nil {
			return false
		}
		return math.Abs(mad1-mad2) < 1e-6*(1+math.Abs(mad1))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: MAD scales with positive scalar multiplication.
func TestQuickMADScales(t *testing.T) {
	f := func(s sample) bool {
		const scale = 3.5
		mad1, err := MAD(s)
		if err != nil {
			return false
		}
		scaled := make([]float64, len(s))
		for i, x := range s {
			scaled[i] = x * scale
		}
		mad2, err := MAD(scaled)
		if err != nil {
			return false
		}
		return math.Abs(mad2-scale*mad1) < 1e-6*(1+math.Abs(mad2))
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: MAD never exceeds the full range of the sample.
func TestQuickMADBoundedByRange(t *testing.T) {
	f := func(s sample) bool {
		mad, err := MAD(s)
		if err != nil {
			return false
		}
		min, _ := Min(s)
		max, _ := Max(s)
		return mad <= (max-min)+1e-9
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: the empirical CDF is monotone non-decreasing and hits 1 at max.
func TestQuickCDFMonotone(t *testing.T) {
	f := func(s sample) bool {
		c := NewCDF(s)
		sorted := append([]float64(nil), s...)
		sort.Float64s(sorted)
		prev := 0.0
		for _, x := range sorted {
			y := c.At(x)
			if y < prev {
				return false
			}
			prev = y
		}
		max, _ := Max(s)
		return c.At(max) == 1
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: Quantile and At are approximate inverses. With linear
// interpolation between closest ranks, At(Quantile(p)) can undershoot p by
// at most 2/n (one interpolation rank plus the off-by-one between the n-1
// rank scale and the 1/n step scale).
func TestQuickQuantileAtInverse(t *testing.T) {
	f := func(s sample, pRaw uint8) bool {
		p := float64(pRaw) / 255
		c := NewCDF(s)
		q, err := c.Quantile(p)
		if err != nil {
			return false
		}
		tol := 2/float64(len(s)) + 1e-9
		return c.At(q) >= p-tol
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: outlier detection never flags the best-performing element
// (minimum for upper-side, maximum for lower-side).
func TestQuickOutliersNeverFlagBest(t *testing.T) {
	f := func(s sample) bool {
		min, _ := Min(s)
		max, _ := Max(s)
		for _, i := range Outliers(s, 2, UpperOutlier) {
			if s[i] == min && min != max {
				return false
			}
		}
		for _, i := range Outliers(s, 2, LowerOutlier) {
			if s[i] == max && min != max {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}

// Property: increasing k can only shrink (or keep) the outlier set.
func TestQuickOutliersMonotoneInK(t *testing.T) {
	f := func(s sample) bool {
		k2 := Outliers(s, 2, UpperOutlier)
		k3 := Outliers(s, 3, UpperOutlier)
		set2 := make(map[int]bool, len(k2))
		for _, i := range k2 {
			set2[i] = true
		}
		for _, i := range k3 {
			if !set2[i] {
				return false
			}
		}
		return len(k3) <= len(k2)
	}
	if err := quick.Check(f, quickCfg); err != nil {
		t.Error(err)
	}
}
