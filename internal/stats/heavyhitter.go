package stats

import "sort"

// HeavyHitter is one entry reported by HeavyHitters.Top: an item, its
// estimated count, and the maximum overestimation error. The true count is
// in [Count-Error, Count].
type HeavyHitter struct {
	Item  string
	Count uint64
	Error uint64
}

// HeavyHitters is a space-saving top-k counter (Metwally et al.): it tracks
// at most k items exactly while the stream's tail shares slots, guaranteeing
// that any item with true frequency above Count/k is present and that
// per-item overestimation is bounded by the smallest tracked count. Memory
// is O(k) regardless of stream cardinality.
//
// The engine uses it to answer "which providers dominate the report stream"
// for the population status endpoint without tracking every hostname ever
// seen. Not safe for concurrent use; callers synchronize.
type HeavyHitters struct {
	k      int
	counts map[string]*hhEntry
}

type hhEntry struct {
	count uint64
	err   uint64
}

// NewHeavyHitters returns a counter tracking at most k items. k < 1 is
// treated as 1.
func NewHeavyHitters(k int) *HeavyHitters {
	if k < 1 {
		k = 1
	}
	return &HeavyHitters{k: k, counts: make(map[string]*hhEntry, k)}
}

// Add records weight observations of item. When the table is full, the
// minimum-count entry is evicted and the newcomer inherits its count as
// error bound — the space-saving replacement rule.
func (h *HeavyHitters) Add(item string, weight uint64) {
	if weight == 0 {
		return
	}
	if e, ok := h.counts[item]; ok {
		e.count += weight
		return
	}
	if len(h.counts) < h.k {
		h.counts[item] = &hhEntry{count: weight}
		return
	}
	// Evict the minimum.
	var minItem string
	var minEntry *hhEntry
	for it, e := range h.counts {
		if minEntry == nil || e.count < minEntry.count ||
			(e.count == minEntry.count && it < minItem) {
			minItem, minEntry = it, e
		}
	}
	delete(h.counts, minItem)
	h.counts[item] = &hhEntry{count: minEntry.count + weight, err: minEntry.count}
}

// Top returns the n highest-count items, descending by count (ties broken
// by item for determinism). n <= 0 or n > tracked returns all tracked.
func (h *HeavyHitters) Top(n int) []HeavyHitter {
	out := make([]HeavyHitter, 0, len(h.counts))
	for it, e := range h.counts {
		out = append(out, HeavyHitter{Item: it, Count: e.count, Error: e.err})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return out[i].Item < out[j].Item
	})
	if n > 0 && n < len(out) {
		out = out[:n]
	}
	return out
}

// Len returns how many items are currently tracked.
func (h *HeavyHitters) Len() int { return len(h.counts) }

// Merge folds o into h, summing counts and errors for shared items and
// re-trimming to k afterwards. The merged counter keeps the space-saving
// guarantees (with error bounds summed). o is unchanged; nil is a no-op.
func (h *HeavyHitters) Merge(o *HeavyHitters) {
	if o == nil {
		return
	}
	for it, e := range o.counts {
		if mine, ok := h.counts[it]; ok {
			mine.count += e.count
			mine.err += e.err
		} else {
			h.counts[it] = &hhEntry{count: e.count, err: e.err}
		}
	}
	if len(h.counts) <= h.k {
		return
	}
	keep := h.Top(h.k)
	nc := make(map[string]*hhEntry, h.k)
	for _, hh := range keep {
		nc[hh.Item] = &hhEntry{count: hh.Count, err: hh.Error}
	}
	h.counts = nc
}
