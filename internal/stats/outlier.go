package stats

// OutlierSide selects which tail of the sample counts as an outlier.
type OutlierSide int

const (
	// UpperOutlier flags values above median + k*MAD (e.g. download times:
	// longer is worse).
	UpperOutlier OutlierSide = iota + 1
	// LowerOutlier flags values below median - k*MAD (e.g. throughputs:
	// lower is worse).
	LowerOutlier
)

// DefaultMADMultiplier is the paper's k: a server is a violator when it is
// worse than the median by more than twice the MAD.
const DefaultMADMultiplier = 2.0

// OutlierThreshold describes a computed MAD criterion for one sample.
type OutlierThreshold struct {
	Median float64
	MAD    float64
	K      float64
	Side   OutlierSide
}

// NewOutlierThreshold computes the MAD criterion for xs with multiplier k on
// the given side. It returns ErrEmpty for an empty sample.
func NewOutlierThreshold(xs []float64, k float64, side OutlierSide) (OutlierThreshold, error) {
	med, mad, err := MedianMAD(xs)
	if err != nil {
		return OutlierThreshold{}, err
	}
	return OutlierThreshold{Median: med, MAD: mad, K: k, Side: side}, nil
}

// Cutoff returns the boundary value beyond which a sample is an outlier.
func (t OutlierThreshold) Cutoff() float64 {
	if t.Side == LowerOutlier {
		return t.Median - t.K*t.MAD
	}
	return t.Median + t.K*t.MAD
}

// IsOutlier reports whether x violates the threshold.
func (t OutlierThreshold) IsOutlier(x float64) bool {
	if t.Side == LowerOutlier {
		return x < t.Cutoff()
	}
	return x > t.Cutoff()
}

// Distance returns how far x sits beyond the median, in the "worse"
// direction; it is positive when x is worse than the median. The paper's
// rule-history mechanism (Section 4.2.3) records this distance at activation
// time and later keeps whichever of {default, alternate} minimises it.
func (t OutlierThreshold) Distance(x float64) float64 {
	if t.Side == LowerOutlier {
		return t.Median - x
	}
	return x - t.Median
}

// Outliers returns the indices of all elements of xs that violate the MAD
// criterion with multiplier k on the given side. A nil slice means none.
func Outliers(xs []float64, k float64, side OutlierSide) []int {
	t, err := NewOutlierThreshold(xs, k, side)
	if err != nil {
		return nil
	}
	var idx []int
	for i, x := range xs {
		if t.IsOutlier(x) {
			idx = append(idx, i)
		}
	}
	return idx
}
