package stats

import (
	"strings"
	"testing"
)

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3, 4})
	tests := []struct {
		x    float64
		want float64
	}{
		{0, 0},
		{1, 0.25},
		{2.5, 0.5},
		{4, 1},
		{100, 1},
	}
	for _, tt := range tests {
		if got := c.At(tt.x); !almostEqual(got, tt.want) {
			t.Errorf("At(%v) = %v, want %v", tt.x, got, tt.want)
		}
	}
}

func TestCDFAtEmpty(t *testing.T) {
	c := NewCDF(nil)
	if got := c.At(5); got != 0 {
		t.Errorf("empty CDF At(5) = %v, want 0", got)
	}
	if c.Len() != 0 {
		t.Errorf("empty CDF Len = %d, want 0", c.Len())
	}
}

func TestCDFQuantileMedian(t *testing.T) {
	c := NewCDF([]float64{4, 1, 3, 2})
	med, err := c.Median()
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(med, 2.5) {
		t.Errorf("Median = %v, want 2.5", med)
	}
	q, err := c.Quantile(0.9)
	if err != nil {
		t.Fatal(err)
	}
	if q < 3 || q > 4 {
		t.Errorf("Quantile(0.9) = %v, want in [3,4]", q)
	}
}

func TestCDFQuantileErrors(t *testing.T) {
	c := NewCDF(nil)
	if _, err := c.Quantile(0.5); err == nil {
		t.Error("empty Quantile: want error")
	}
	c = NewCDF([]float64{1})
	if _, err := c.Quantile(2); err == nil {
		t.Error("Quantile(2): want error")
	}
}

func TestCDFMinMax(t *testing.T) {
	c := NewCDF([]float64{5, 1, 9})
	min, err := c.Min()
	if err != nil || min != 1 {
		t.Errorf("Min = (%v, %v), want (1, nil)", min, err)
	}
	max, err := c.Max()
	if err != nil || max != 9 {
		t.Errorf("Max = (%v, %v), want (9, nil)", max, err)
	}
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]float64{0, 10})
	pts := c.Points(3)
	if len(pts) != 3 {
		t.Fatalf("Points(3) returned %d points", len(pts))
	}
	if pts[0].X != 0 || pts[2].X != 10 {
		t.Errorf("Points span = [%v, %v], want [0, 10]", pts[0].X, pts[2].X)
	}
	if pts[2].Y != 1 {
		t.Errorf("last point Y = %v, want 1", pts[2].Y)
	}
	// Monotone non-decreasing Y.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Errorf("CDF not monotone at %d: %v < %v", i, pts[i].Y, pts[i-1].Y)
		}
	}
}

func TestCDFPointsDegenerate(t *testing.T) {
	if pts := NewCDF(nil).Points(5); pts != nil {
		t.Errorf("empty Points = %v, want nil", pts)
	}
	pts := NewCDF([]float64{7, 7, 7}).Points(5)
	if len(pts) != 1 || pts[0].X != 7 || pts[0].Y != 1 {
		t.Errorf("constant Points = %v, want single (7,1)", pts)
	}
}

func TestCDFRender(t *testing.T) {
	out := NewCDF([]float64{1, 2}).Render(2)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 2 {
		t.Fatalf("Render(2) produced %d lines: %q", len(lines), out)
	}
	if !strings.Contains(lines[0], "\t") {
		t.Errorf("Render line missing tab separator: %q", lines[0])
	}
}
