package stats

import (
	"fmt"
	"sort"
	"strings"
)

// CDF is an empirical cumulative distribution function over a sample. It is
// the presentation vehicle for most of the paper's figures (1, 2, 3, 8, 10,
// 13, 14, 15).
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. The input is copied.
func NewCDF(xs []float64) *CDF {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// Len returns the sample size.
func (c *CDF) Len() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	i := sort.Search(len(c.sorted), func(i int) bool { return c.sorted[i] > x })
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the p-quantile of the sample (0 <= p <= 1).
func (c *CDF) Quantile(p float64) (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("stats: quantile %v out of range [0,1]", p)
	}
	return percentileSorted(c.sorted, p), nil
}

// Median returns the sample median.
func (c *CDF) Median() (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	return medianSorted(c.sorted), nil
}

// Min returns the smallest sample value.
func (c *CDF) Min() (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	return c.sorted[0], nil
}

// Max returns the largest sample value.
func (c *CDF) Max() (float64, error) {
	if len(c.sorted) == 0 {
		return 0, ErrEmpty
	}
	return c.sorted[len(c.sorted)-1], nil
}

// Points returns n evenly spaced (x, P(X<=x)) points spanning the sample
// range, suitable for plotting or textual rendering of the figure.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 || n <= 0 {
		return nil
	}
	min, max := c.sorted[0], c.sorted[len(c.sorted)-1]
	pts := make([]Point, 0, n)
	if n == 1 || min == max {
		return append(pts, Point{X: max, Y: 1})
	}
	step := (max - min) / float64(n-1)
	for i := 0; i < n; i++ {
		x := min + float64(i)*step
		pts = append(pts, Point{X: x, Y: c.At(x)})
	}
	return pts
}

// Point is one (x, y) sample of a rendered series.
type Point struct {
	X float64
	Y float64
}

// Render returns a textual table of the CDF with n rows, one "x\tP(X<=x)"
// pair per line, matching how the experiment harness prints figures.
func (c *CDF) Render(n int) string {
	var b strings.Builder
	for _, p := range c.Points(n) {
		fmt.Fprintf(&b, "%.4f\t%.4f\n", p.X, p.Y)
	}
	return b.String()
}
