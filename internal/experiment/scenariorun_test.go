package experiment

import (
	"bytes"
	"strings"
	"testing"
)

// runNamed runs an embedded scenario, failing the test on any error.
func runNamed(t *testing.T, name string) *ScenarioResult {
	t.Helper()
	spec, err := LoadScenario(name)
	if err != nil {
		t.Fatalf("LoadScenario(%q): %v", name, err)
	}
	res, err := RunScenario(spec)
	if err != nil {
		t.Fatalf("RunScenario(%q): %v", name, err)
	}
	return res
}

// TestScenarioDeterminism runs the same spec twice and requires the
// marshalled reports to be byte-identical — the property verify.sh and the
// committed BENCH_scenarios.json depend on.
func TestScenarioDeterminism(t *testing.T) {
	marshal := func() []byte {
		m := &ScenarioMatrix{
			SpecVersion: ScenarioSpecVersion,
			Results:     []*ScenarioResult{runNamed(t, "cellular")},
		}
		out, err := m.MarshalIndentStable()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		return out
	}
	a, b := marshal(), marshal()
	if !bytes.Equal(a, b) {
		t.Fatalf("same spec, different report bytes:\n%s\n---\n%s", a, b)
	}
}

// TestScenarioSeedChangesRun guards against the seed being ignored: a
// different seed must produce a different world or different numbers.
func TestScenarioSeedChangesRun(t *testing.T) {
	spec1, err := LoadScenario("cellular")
	if err != nil {
		t.Fatal(err)
	}
	spec2, err := LoadScenario("cellular")
	if err != nil {
		t.Fatal(err)
	}
	spec2.Seed = spec1.Seed + 1
	r1, err := RunScenario(spec1)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunScenario(spec2)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanPLTMillis == r2.MeanPLTMillis {
		t.Fatalf("seed change did not alter the run (mean PLT %v in both)", r1.MeanPLTMillis)
	}
}

// TestEmbeddedScenariosRunAndPass smoke-runs every embedded starter spec and
// requires each to pass its own expect gate — the same check verify.sh
// applies to a subset, here over the whole matrix.
func TestEmbeddedScenariosRunAndPass(t *testing.T) {
	if testing.Short() {
		t.Skip("matrix smoke skipped in -short")
	}
	for _, name := range ScenarioNames() {
		name := name
		t.Run(name, func(t *testing.T) {
			res := runNamed(t, name)
			if !res.Pass {
				t.Errorf("scenario %s failed its gate: %v", name, res.Failures)
			}
			if res.PageLoads == 0 || res.ReportsSubmitted == 0 {
				t.Errorf("scenario %s: empty run: %+v", name, res)
			}
		})
	}
}

// TestScenarioFlashcrowdMechanics pins the admission-queue and restart
// bookkeeping: the flash crowd must shed and retry, and the corrupted
// restart must recover every engine from the rotating backup.
func TestScenarioFlashcrowdMechanics(t *testing.T) {
	res := runNamed(t, "flashcrowd")
	if res.ReportsShed == 0 || res.ReportRetries == 0 {
		t.Errorf("flash crowd did not exercise the queue: shed=%d retries=%d",
			res.ReportsShed, res.ReportRetries)
	}
	if res.Restarts != 1 {
		t.Errorf("restarts = %d, want 1", res.Restarts)
	}
	if res.StateRecoveries != res.Sites {
		t.Errorf("state recoveries = %d, want one per site (%d)", res.StateRecoveries, res.Sites)
	}
	if res.ReportsProcessed >= res.ReportsSubmitted {
		t.Errorf("processed %d >= submitted %d despite sheds", res.ReportsProcessed, res.ReportsSubmitted)
	}
}

// TestScenarioBlackoutTripsBreakers pins the guard wiring: the mirror
// blackout must trip breakers after (not before) the fault starts.
func TestScenarioBlackoutTripsBreakers(t *testing.T) {
	res := runNamed(t, "blackout")
	if res.BreakerTrips == 0 {
		t.Fatal("mirror blackout tripped no breakers")
	}
	if res.ReportsToFirstTrip < 1 {
		t.Errorf("reports to first trip = %d, want >= 1", res.ReportsToFirstTrip)
	}
	if res.BulkRollbacks == 0 {
		t.Error("breaker trips rolled back no activations")
	}
}

// TestScenarioGateFailure forces an impossible floor and checks the gate
// reports a failure instead of passing silently.
func TestScenarioGateFailure(t *testing.T) {
	spec, err := LoadScenario("slowloris")
	if err != nil {
		t.Fatal(err)
	}
	spec.Expect = ScenarioExpect{MinBreakerTrips: 1000}
	res, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if res.Pass {
		t.Fatal("impossible floor passed the gate")
	}
	if len(res.Failures) == 0 || !strings.Contains(res.Failures[0], "breaker trips") {
		t.Fatalf("unexpected failure detail: %v", res.Failures)
	}
}

// TestScenarioMatrixRender sanity-checks the text rendering used by the CLI.
func TestScenarioMatrixRender(t *testing.T) {
	res := runNamed(t, "slowloris")
	m := &ScenarioMatrix{SpecVersion: ScenarioSpecVersion, Results: []*ScenarioResult{res}}
	out := m.Render()
	if !strings.Contains(out, "slowloris") || !strings.Contains(out, "scenario") {
		t.Fatalf("render missing content:\n%s", out)
	}
	if !m.Pass() {
		t.Fatalf("slowloris should pass: %v", res.Failures)
	}
}

// TestScenarioPopslowNeedsSynthesis is the ablation that justifies the
// population layer: popslow's victims report too rarely to clear the
// per-user violation gate, so running the same workload with synthesis
// disabled must collapse recall — and produce zero synthesized
// activations — while the shipped spec (synthesis on) passes its gate.
func TestScenarioPopslowNeedsSynthesis(t *testing.T) {
	on := runNamed(t, "popslow")
	if !on.Pass {
		t.Fatalf("popslow with synthesis failed its gate: %v", on.Failures)
	}
	if on.SynthesizedActivations == 0 || on.PopulationTrips == 0 {
		t.Fatalf("popslow did not exercise the population layer: %+v", on)
	}

	spec, err := LoadScenario("popslow")
	if err != nil {
		t.Fatal(err)
	}
	spec.Engine.Synthesis = nil
	spec.Expect = ScenarioExpect{} // gate belongs to the synthesis run
	off, err := RunScenario(spec)
	if err != nil {
		t.Fatal(err)
	}
	if off.SynthesizedActivations != 0 || off.PopulationTrips != 0 {
		t.Errorf("synthesis-less run synthesized anyway: %+v", off)
	}
	if off.Recall > 0.5 {
		t.Errorf("per-user detection alone reached recall %.2f on popslow; "+
			"the workload no longer demonstrates the population layer (want <= 0.5, synthesis run had %.2f)",
			off.Recall, on.Recall)
	}
	if off.Recall >= on.Recall {
		t.Errorf("synthesis did not improve recall: off %.2f >= on %.2f", off.Recall, on.Recall)
	}
}
