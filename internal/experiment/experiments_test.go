package experiment

import (
	"strconv"
	"strings"
	"testing"
)

// quickCfg is the reduced scale all experiment tests run at.
var quickCfg = Config{Seed: 1, Quick: true}

// midCfg is a slightly larger scale for the shape assertions that need
// statistical stability.
var midCfg = Config{Seed: 1, Sites: 120, Clients: 15}

// measured extracts the float at the start of the "measured" column of the
// named row in the result's first summary-style table.
func measured(t *testing.T, res *FigureResult, rowPrefix string) float64 {
	t.Helper()
	for _, tab := range res.Tables {
		for _, row := range tab.Rows {
			if len(row) >= 3 && strings.HasPrefix(row[0], rowPrefix) {
				val := strings.Fields(row[2])[0]
				val = strings.TrimSuffix(strings.TrimSuffix(val, "%"), "x")
				val = strings.TrimSuffix(val, "s")
				val = strings.TrimSuffix(val, " KB")
				f, err := strconv.ParseFloat(val, 64)
				if err != nil {
					t.Fatalf("row %q: parse %q: %v", rowPrefix, row[2], err)
				}
				return f
			}
		}
	}
	t.Fatalf("row %q not found in %s", rowPrefix, res.ID)
	return 0
}

func TestAllExperimentsRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			res, err := Run(id, quickCfg)
			if err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if res.ID != id {
				t.Errorf("result ID = %q, want %q", res.ID, id)
			}
			if len(res.Series) == 0 && len(res.Tables) == 0 {
				t.Error("experiment produced neither series nor tables")
			}
			if out := res.Render(); len(out) == 0 {
				t.Error("empty render")
			}
		})
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	a, err := Run("fig1", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run("fig1", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Render() != b.Render() {
		t.Error("fig1 not deterministic across runs with the same seed")
	}
}

func TestFig1Calibration(t *testing.T) {
	res, err := Run("fig1", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	med := measured(t, res, "median external fraction")
	if med < 0.62 || med > 0.88 {
		t.Errorf("median external fraction = %v, want ~0.75", med)
	}
}

func TestFig2Calibration(t *testing.T) {
	res, err := Run("fig2", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	ge1 := measured(t, res, "sites with >=1 outlier")
	ge4 := measured(t, res, "sites with >=4 outliers")
	if ge1 < 55 || ge1 > 92 {
		t.Errorf("sites with >=1 outlier = %v%%, want >60%% band", ge1)
	}
	if ge4 < 5 || ge4 > 35 {
		t.Errorf("sites with >=4 outliers = %v%%, want ~20%% band", ge4)
	}
	if ge4 >= ge1 {
		t.Error(">=4 fraction should be below >=1 fraction")
	}
}

func TestTable1AdsDominate(t *testing.T) {
	res, err := Run("table1", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	var adsy, total int
	for _, row := range res.Tables[0].Rows {
		total++
		switch {
		case strings.Contains(row[1], "Ads"), strings.Contains(row[1], "Analytics"),
			strings.Contains(row[1], "Social"):
			adsy++
		}
	}
	if total == 0 {
		t.Fatal("empty table1")
	}
	if adsy*2 < total {
		t.Errorf("ads/analytics/social = %d of %d top outliers, want majority", adsy, total)
	}
}

func TestFig3ChurnBand(t *testing.T) {
	res, err := Run("fig3", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	day1 := measured(t, res, "1 day")
	if day1 < 0.3 || day1 > 0.8 {
		t.Errorf("1-day vanish fraction = %v, want ~0.5 band", day1)
	}
}

func TestFig8TierOrdering(t *testing.T) {
	res, err := Run("fig8", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	direct := measured(t, res, "direct")
	text := measured(t, res, "text")
	js := measured(t, res, "external-js")
	if !(direct < text && text < js) {
		t.Errorf("tier medians not increasing: %v %v %v", direct, text, js)
	}
	if direct < 0.30 || direct > 0.55 {
		t.Errorf("direct median = %v, want ~0.42", direct)
	}
	if js < 0.70 || js > 0.95 {
		t.Errorf("external-js median = %v, want ~0.81", js)
	}
}

func TestFig9ThresholdOrdering(t *testing.T) {
	res, err := Run("fig9", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	na := measured(t, res, "NA")
	eu := measured(t, res, "EU")
	as := measured(t, res, "AS")
	if !(na < eu && eu < as) {
		t.Errorf("thresholds not ordered NA<EU<AS: %v %v %v", na, eu, as)
	}
	if na > 1.1 {
		t.Errorf("NA threshold = %vs, want <= ~1s", na)
	}
	if as < 3 {
		t.Errorf("AS threshold = %vs, want ~5s", as)
	}
}

func TestFig10OakBeatsDefault(t *testing.T) {
	res, err := Run("fig10", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	def := measured(t, res, "median ratio, default")
	oak := measured(t, res, "median ratio, oak")
	if oak <= def {
		t.Errorf("oak median ratio %v not above default %v", oak, def)
	}
	if def > 0.7 {
		t.Errorf("default ratio = %v, want degraded (~0.3-0.6)", def)
	}
	if oak < 0.6 {
		t.Errorf("oak ratio = %v, want consistent (>0.6)", oak)
	}
}

func TestFig11DiurnalShape(t *testing.T) {
	res, err := Run("fig11", quickCfg)
	if err != nil {
		t.Fatal(err)
	}
	peak := measured(t, res, "peak daytime ratio")
	trough := measured(t, res, "night-time ratio")
	if peak < 5 {
		t.Errorf("peak ratio = %vx, want large daytime gains (>10x in paper)", peak)
	}
	if trough > 2 {
		t.Errorf("night ratio = %vx, want ~1x", trough)
	}
}

func TestFig12MostChoicesCorrect(t *testing.T) {
	res, err := Run("fig12", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) != 4 {
		t.Fatalf("fig12 rows = %d, want 4 conditions", len(res.Tables[0].Rows))
	}
	for _, row := range res.Tables[0].Rows {
		frac := measured(t, res, row[0])
		if frac < 0.45 {
			t.Errorf("%s fully-correct = %v, want majority-correct", row[0], frac)
		}
	}
}

func TestFig13ImprovementOrdering(t *testing.T) {
	res, err := Run("fig13", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	h1c := measured(t, res, "H1-Close")
	h2c := measured(t, res, "H2-Close")
	if h1c < 0.4 || h1c > 0.85 {
		t.Errorf("H1-Close improved = %v, want ~0.57 band", h1c)
	}
	if h2c <= h1c-0.05 {
		t.Errorf("H2-Close (%v) should improve at least as much as H1-Close (%v)", h2c, h1c)
	}
	for _, row := range res.Tables[0].Rows {
		frac := measured(t, res, row[0])
		if frac < 0.5 {
			t.Errorf("%s improved = %v, want majority improved", row[0], frac)
		}
	}
}

func TestFig14IndividualRulesExist(t *testing.T) {
	res, err := Run("fig14", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	at18 := measured(t, res, "rules with <=18%")
	if at18 <= 0.05 {
		t.Errorf("individual-rule fraction = %v, want a visible individual tail", at18)
	}
}

func TestTable3HasBothColumns(t *testing.T) {
	res, err := Run("table3", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Tables[0].Rows) == 0 {
		t.Fatal("empty table3")
	}
	var haveIndividual, haveCommon bool
	for _, row := range res.Tables[0].Rows {
		if row[0] != "" {
			haveIndividual = true
		}
		if row[1] != "" {
			haveCommon = true
		}
	}
	if !haveIndividual || !haveCommon {
		t.Errorf("table3 missing a column: individual=%v common=%v", haveIndividual, haveCommon)
	}
}

func TestFig15ReportSizes(t *testing.T) {
	res, err := Run("fig15", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	med := measured(t, res, "median report size")
	if med <= 0 || med >= 20 {
		t.Errorf("median report size = %v KB, want < 10 KB scale", med)
	}
}

func TestTable2Selection(t *testing.T) {
	res, err := Run("table2", midCfg)
	if err != nil {
		t.Fatal(err)
	}
	var h1, h2 int
	for _, row := range res.Tables[0].Rows {
		n, err := strconv.Atoi(row[2])
		if err != nil {
			t.Fatalf("bad ext host count %q", row[2])
		}
		switch row[1] {
		case "H1":
			h1++
			if n <= 5 || n >= 15 {
				t.Errorf("H1 site %s has %d external hosts, want 5<n<15", row[0], n)
			}
		case "H2":
			h2++
			if n <= 15 {
				t.Errorf("H2 site %s has %d external hosts, want >15", row[0], n)
			}
		}
	}
	if h1 != 5 || h2 != 5 {
		t.Errorf("selected %d H1 / %d H2 sites, want 5/5", h1, h2)
	}
}
