package experiment

import (
	"fmt"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/rules"
	"oak/internal/stats"
	"oak/internal/webgen"
)

func init() {
	register("fig8", runFig8)
}

// runFig8 reproduces the paper's matching-coverage experiment: load each
// site once recording every contacted server, treat the entire index page
// as a single rule, and ask what fraction of servers can be tied to it at
// each evidence tier. Paper medians: ≈42 % strict includes, ≈60 % adding
// text matches, ≈81 % adding one layer of external JavaScript.
func runFig8(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	g := webgen.NewGenerator(webgen.Config{Seed: cfg.Seed, NumSites: cfg.Sites})
	pool := g.Pool()
	clock := netsim.NewVirtualClock(catalogStart)

	levels := []core.MatchLevel{core.MatchDirect, core.MatchText, core.MatchExternalJS}
	fracs := make(map[core.MatchLevel][]float64, len(levels))

	for _, site := range g.Catalog() {
		net := netsim.NewNetwork()
		assets, err := registerSiteWorld(net, site, pool, "")
		if err != nil {
			return nil, err
		}
		sc := &client.SimClient{
			ID: "probe", Region: netsim.NorthAmerica, Net: net, Assets: assets, Clock: clock,
		}
		page := site.Index()
		res, err := sc.Load(site, page, page.HTML)
		if err != nil {
			return nil, err
		}
		servers := report.GroupByServer(res.Report)
		var scriptURLs []string
		for _, s := range servers {
			scriptURLs = append(scriptURLs, s.ScriptURLs...)
		}
		// The whole index as one rule, per the paper's methodology.
		indexRule := &rules.Rule{ID: "index", Type: rules.TypeRemove, Default: page.HTML, Scope: "*"}
		for _, level := range levels {
			m := &core.Matcher{MaxLevel: level, Fetcher: assets, Depth: 1}
			var matched int
			for _, s := range servers {
				if m.Match(indexRule, s, scriptURLs) != core.MatchNone {
					matched++
				}
			}
			fracs[level] = append(fracs[level], float64(matched)/float64(len(servers)))
		}
	}

	result := &FigureResult{
		ID:    "fig8",
		Title: "CDF of fraction of servers matched per site, by matching tier",
	}
	summary := Table{
		Title:  "summary (median match fraction)",
		Header: []string{"tier", "paper", "measured"},
	}
	paper := map[core.MatchLevel]string{
		core.MatchDirect:     "0.42",
		core.MatchText:       "0.60",
		core.MatchExternalJS: "0.81",
	}
	for _, level := range levels {
		result.Series = append(result.Series, CDFSeries("match-"+level.String(), fracs[level], 21))
		med, err := stats.Median(fracs[level])
		if err != nil {
			return nil, err
		}
		summary.Rows = append(summary.Rows, []string{
			level.String(), paper[level], fmt.Sprintf("%.2f", med),
		})
	}
	result.Tables = []Table{summary}
	return result, nil
}
