package experiment

// Scenario reports: the per-run decision-quality record, the quality gate
// that turns a spec's `expect` block into pass/fail, and the matrix document
// `oakbench scenario` writes to BENCH_scenarios.json. Field order and float
// rounding are fixed so that identical runs marshal to identical bytes —
// verify.sh and the determinism test both depend on that.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"
)

// ScenarioResult is the decision-quality record of one scenario run. All
// fractional fields are rounded to 4 decimals.
type ScenarioResult struct {
	Name    string `json:"name"`
	Title   string `json:"title,omitempty"`
	Seed    int64  `json:"seed"`
	Loads   int    `json:"loads"`
	Sites   int    `json:"sites"`
	Clients int    `json:"clients"`

	// Detection quality. Precision is true activations over all activations;
	// recall is detected injured pairs over all injured pairs, where an
	// injured pair is a (site, client, matchable degraded provider) triple
	// with enough degraded rounds to clear the activation threshold.
	Precision        float64 `json:"precision"`
	Recall           float64 `json:"recall"`
	TrueActivations  int     `json:"trueActivations"`
	FalseActivations int     `json:"falseActivations"`
	InjuredPairs     int     `json:"injuredPairs"`
	DetectedPairs    int     `json:"detectedPairs"`

	// Time to mitigation, in degraded rounds (≈ reports per user) from the
	// start of the fault stretch to the activating report. Zero when nothing
	// was detected.
	MeanReportsToMitigate float64 `json:"meanReportsToMitigate"`
	MaxReportsToMitigate  int     `json:"maxReportsToMitigate"`

	// Page-serving quality.
	PageLoads            int     `json:"pageLoads"`
	DegradedPageLoads    int     `json:"degradedPageLoads"`
	DegradedPageFraction float64 `json:"degradedPageFraction"`
	MeanPLTMillis        float64 `json:"meanPLTMillis"`
	PagesModified        int     `json:"pagesModified"`

	// Report-path accounting. Submitted counts client attempts (including
	// retries); processed counts reports that reached an engine; shed/
	// retries/dropped are admission-queue outcomes; lost is transport loss.
	ReportsSubmitted int `json:"reportsSubmitted"`
	ReportsProcessed int `json:"reportsProcessed"`
	ReportsShed      int `json:"reportsShed"`
	ReportRetries    int `json:"reportRetries"`
	ReportsDropped   int `json:"reportsDropped"`
	ReportsLost      int `json:"reportsLost"`

	// Guard activity. ReportsToFirstTrip is rounds from the first mirror
	// fault to the first breaker trip (-1 = no trip).
	BreakerTrips       int `json:"breakerTrips"`
	BulkRollbacks      int `json:"bulkRollbacks"`
	ActivationsBlocked int `json:"activationsBlocked"`
	ReportsToFirstTrip int `json:"reportsToFirstTrip"`

	// Population-detection activity (all zero without engine.synthesis).
	PopulationTrips        int `json:"populationTrips"`
	SynthesizedActivations int `json:"synthesizedActivations"`
	SynthesisBlocked       int `json:"synthesisBlocked"`

	// Crash/recovery accounting.
	Restarts        int `json:"restarts"`
	StateRecoveries int `json:"stateRecoveries"`

	// Gate outcome: Pass is false when any Expect floor was missed, with one
	// human-readable line per miss.
	Pass     bool     `json:"pass"`
	Failures []string `json:"failures,omitempty"`
}

// round4 rounds to 4 decimals — the report's fixed float precision.
func round4(v float64) float64 {
	return math.Round(v*10000) / 10000
}

// applyGate evaluates the Expect floors against the result, filling Pass and
// Failures. Zero-valued floors are not enforced (MaxFalseActivations uses -1
// to mean "exactly zero").
func (r *ScenarioResult) applyGate(e ScenarioExpect) {
	fail := func(format string, args ...any) {
		r.Failures = append(r.Failures, fmt.Sprintf(format, args...))
	}
	if e.MinPrecision > 0 && r.Precision < e.MinPrecision {
		fail("precision %.4f below floor %.4f", r.Precision, e.MinPrecision)
	}
	if e.MinRecall > 0 && r.Recall < e.MinRecall {
		fail("recall %.4f below floor %.4f", r.Recall, e.MinRecall)
	}
	if e.MaxMeanReportsToMitigate > 0 && r.MeanReportsToMitigate > e.MaxMeanReportsToMitigate {
		fail("mean reports-to-mitigate %.2f above ceiling %.2f", r.MeanReportsToMitigate, e.MaxMeanReportsToMitigate)
	}
	if max := e.MaxFalseActivations; max != 0 {
		if max == -1 {
			max = 0
		}
		if r.FalseActivations > max {
			fail("%d false activations above ceiling %d", r.FalseActivations, max)
		}
	}
	if e.MinBreakerTrips > 0 && r.BreakerTrips < e.MinBreakerTrips {
		fail("%d breaker trips below floor %d", r.BreakerTrips, e.MinBreakerTrips)
	}
	if e.MaxReportsToFirstTrip > 0 {
		if r.ReportsToFirstTrip < 0 {
			fail("no breaker trip observed (ceiling %d)", e.MaxReportsToFirstTrip)
		} else if r.ReportsToFirstTrip > e.MaxReportsToFirstTrip {
			fail("%d reports to first trip above ceiling %d", r.ReportsToFirstTrip, e.MaxReportsToFirstTrip)
		}
	}
	if e.MaxDegradedPageFraction > 0 && r.DegradedPageFraction > e.MaxDegradedPageFraction {
		fail("degraded page fraction %.4f above ceiling %.4f", r.DegradedPageFraction, e.MaxDegradedPageFraction)
	}
	if e.MinShedReports > 0 && r.ReportsShed < e.MinShedReports {
		fail("%d shed reports below floor %d", r.ReportsShed, e.MinShedReports)
	}
	if e.MinStateRecoveries > 0 && r.StateRecoveries < e.MinStateRecoveries {
		fail("%d state recoveries below floor %d", r.StateRecoveries, e.MinStateRecoveries)
	}
	if e.MinSynthesizedActivations > 0 && r.SynthesizedActivations < e.MinSynthesizedActivations {
		fail("%d synthesized activations below floor %d", r.SynthesizedActivations, e.MinSynthesizedActivations)
	}
	r.Pass = len(r.Failures) == 0
}

// ScenarioMatrix is the top-level document of a matrix run.
type ScenarioMatrix struct {
	SpecVersion int               `json:"specVersion"`
	Results     []*ScenarioResult `json:"results"`
}

// Pass reports whether every result passed its gate.
func (m *ScenarioMatrix) Pass() bool {
	for _, r := range m.Results {
		if !r.Pass {
			return false
		}
	}
	return true
}

// MarshalIndentStable serialises the matrix with fixed indentation. Field
// order follows the struct declarations and floats are pre-rounded, so the
// bytes are a deterministic function of the runs.
func (m *ScenarioMatrix) MarshalIndentStable() ([]byte, error) {
	out, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(out, '\n'), nil
}

// Render formats the matrix as a compact text table plus gate failures.
func (m *ScenarioMatrix) Render() string {
	table := Table{
		Title: "scenario matrix (decision quality per injected ground truth)",
		Header: []string{
			"scenario", "prec", "recall", "ttm", "degr%", "shed", "trips", "recov", "gate",
		},
	}
	var failed []string
	for _, r := range m.Results {
		gate := "pass"
		if !r.Pass {
			gate = "FAIL"
			for _, f := range r.Failures {
				failed = append(failed, fmt.Sprintf("%s: %s", r.Name, f))
			}
		}
		table.Rows = append(table.Rows, []string{
			r.Name,
			fmt.Sprintf("%.2f", r.Precision),
			fmt.Sprintf("%.2f", r.Recall),
			fmt.Sprintf("%.1f", r.MeanReportsToMitigate),
			fmt.Sprintf("%.1f", 100*r.DegradedPageFraction),
			fmt.Sprintf("%d", r.ReportsShed),
			fmt.Sprintf("%d", r.BreakerTrips),
			fmt.Sprintf("%d", r.StateRecoveries),
			gate,
		})
	}
	var b strings.Builder
	b.WriteString(table.Render())
	for _, f := range failed {
		fmt.Fprintf(&b, "gate failure: %s\n", f)
	}
	return b.String()
}
