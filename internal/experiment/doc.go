// Package experiment regenerates every table and figure of the paper's
// measurement study (Section 2) and evaluation (Section 5) against the
// simulated substrate. Each runner returns a FigureResult whose series and
// tables mirror the rows the paper reports; cmd/oakbench prints them and
// the repository-root benchmarks regenerate them under `go test -bench`.
//
// Paper mapping (see DESIGN.md for the full per-experiment index):
//
//   - Section 2 (the case for user-targeted optimisation): fig1 (external
//     object fractions), fig2 (outliers per site across vantage points),
//     table1 (who the outliers are), fig3 (outlier churn over days).
//   - Section 5.2 (matching): fig8 — server match rates by evidence tier.
//   - Section 5.3 (detection): fig9 — sensitivity to injected delay by
//     client region.
//   - Section 5.4 (benchmark sites): fig10 (min/median ratios), fig11
//     (diurnal gains).
//   - Section 5.5 (real sites, H1/H2): table2, fig12 (correct choices),
//     fig13 (object-time ratios), fig14 (activation spread), table3.
//   - Section 4.4/5 (overheads): fig15 — report sizes.
//
// The scenario engine (scenario.go, scenariorun.go, scenarioreport.go)
// complements the figure runners: it compiles declarative JSON workload
// specs (embedded under scenarios/ at the repo root) into seeded
// end-to-end runs — webgen catalog, netsim network and client link
// classes, engine policy and guard, admission queue, and a fault schedule
// that doubles as ground truth — then scores every rule activation
// against what was injected and gates on per-spec decision-quality
// floors (precision, recall, time-to-mitigation, trips, recoveries).
// Run with `oakbench scenario`; authoring guide in docs/SCENARIOS.md.
//
// Ablations (ablation.go) probe the design decisions the paper fixes:
// MAD-vs-absolute thresholds, the k multiplier, the 50 KB small/large
// split, match depth, rule history, min-violations, and the
// Resource-Timing-only client of Section 6.
//
// Runners also surface the engine's own ingest/rewrite latency histograms
// (internal/obs) so benchmark output reports how fast the server ran, not
// just what it decided.
package experiment
