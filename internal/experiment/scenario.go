package experiment

// The scenario spec: a versioned, declarative description of one end-to-end
// workload. A spec names a seeded synthetic world (webgen catalog + netsim
// network), client access-link classes, engine policy, an optional
// admission-control model, and a schedule of injected faults — which double
// as the run's ground truth. RunScenario (scenariorun.go) compiles a spec
// into a simulation and emits a decision-quality report (scenarioreport.go).
//
// Specs are JSON (the stdlib-only constraint rules out a YAML dependency);
// the starter matrix ships as checked-in files under scenarios/ at the repo
// root, embedded so `oakbench scenario` works from any directory. See
// docs/SCENARIOS.md for the authoring guide.

import (
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"sort"
	"strings"

	"oak/scenarios"
)

// ScenarioSpecVersion is the spec schema version this build understands.
const ScenarioSpecVersion = 1

// maxScenarioSpecBytes bounds a spec file so a hostile path cannot feed the
// parser an unbounded document.
const maxScenarioSpecBytes = 1 << 20

// Typed loader errors. Callers distinguish a spec written for a different
// schema (ErrScenarioVersion) from one that is malformed (ErrScenarioSpec).
var (
	// ErrScenarioVersion marks a spec whose version field is not
	// ScenarioSpecVersion.
	ErrScenarioVersion = errors.New("experiment: unsupported scenario spec version")
	// ErrScenarioSpec marks a syntactically or semantically invalid spec.
	ErrScenarioSpec = errors.New("experiment: invalid scenario spec")
	// ErrScenarioUnknown marks a scenario name with no embedded spec.
	ErrScenarioUnknown = errors.New("experiment: unknown scenario")
)

// ScenarioSpec is one declarative workload. Zero-valued optional fields take
// the defaults documented per field; Validate rejects out-of-range values.
type ScenarioSpec struct {
	// Version must be ScenarioSpecVersion.
	Version int `json:"version"`
	// Name identifies the scenario ([a-z0-9-]; used as the CLI handle and
	// report key).
	Name string `json:"name"`
	// Title is the one-line human description shown in reports.
	Title string `json:"title,omitempty"`
	// Description documents intent; informational only.
	Description string `json:"description,omitempty"`
	// Seed drives all randomness. The same (spec, seed) reproduces the run
	// byte-for-byte.
	Seed int64 `json:"seed"`
	// Loads is how many page-load rounds each client performs (1..500).
	Loads int `json:"loads"`
	// IntervalMinutes is the simulated time between rounds (default 20).
	IntervalMinutes int `json:"intervalMinutes,omitempty"`
	// StartHourUTC is the virtual-clock hour of round 0 (default 8). Runs
	// start on a fixed date, 2026-04-06, so diurnal faults are phase-stable.
	StartHourUTC int `json:"startHourUTC,omitempty"`

	// World shapes the synthetic site catalog and network.
	World ScenarioWorld `json:"world"`
	// ClientClasses partition clients into access-link classes. Clients not
	// covered by any class get an ideal link.
	ClientClasses []ScenarioClientClass `json:"clientClasses,omitempty"`
	// Engine tunes the per-site Oak engines.
	Engine ScenarioEngine `json:"engine,omitempty"`
	// Admission, when present, bounds report ingest with a deterministic
	// virtual-time queue (capacity + service rate); overflow is shed and
	// clients retry. Absent = every report processed the round it is made.
	Admission *ScenarioAdmission `json:"admission,omitempty"`
	// Arrivals multiply client traffic during load windows (flash crowds).
	Arrivals []ScenarioArrival `json:"arrivals,omitempty"`
	// Faults is the injected ground truth: which providers are made slow,
	// when, and how, plus report-loss and engine-restart events.
	Faults []ScenarioFault `json:"faults"`
	// Expect is the decision-quality gate: a run failing any floor reports
	// pass=false and `oakbench scenario` exits non-zero.
	Expect ScenarioExpect `json:"expect,omitempty"`
}

// ScenarioWorld shapes the generated catalog and network.
type ScenarioWorld struct {
	// Sites is the catalog size (default 2, max 50).
	Sites int `json:"sites,omitempty"`
	// Clients is the number of vantage points (default 10, max 200),
	// distributed across regions like the paper's (half NA, rest EU/AS).
	Clients int `json:"clients,omitempty"`
	// PagesPerSite bounds per-site pages (default 1; only the index is
	// loaded, so 1 keeps worlds small).
	PagesPerSite int `json:"pagesPerSite,omitempty"`
	// MinExternalHosts / MaxExternalHosts bound third-party providers per
	// site (defaults 8 / 14).
	MinExternalHosts int `json:"minExternalHosts,omitempty"`
	MaxExternalHosts int `json:"maxExternalHosts,omitempty"`
	// AdsWeight > 0 forces ad-heavy generation (adPerf-style pages stuffed
	// with ad/analytics/social providers); 0 keeps the default mix.
	AdsWeight float64 `json:"adsWeight,omitempty"`
	// PathVariation sets per-(client,server) path quality spread (default
	// 2.0, matching the paper experiments; 0 disables).
	PathVariation float64 `json:"pathVariation,omitempty"`
}

// ScenarioClientClass gives a fraction of clients a non-ideal access link —
// cellular users, proxy-bound users, slow-loris stragglers.
type ScenarioClientClass struct {
	// Name labels the class in docs and reports.
	Name string `json:"name"`
	// Fraction of clients in this class (0..1]. Classes are assigned by
	// client index in listed order; fractions must sum to <= 1.
	Fraction float64 `json:"fraction"`
	// BandwidthKbps caps the access link (0 = uncapped).
	BandwidthKbps float64 `json:"bandwidthKbps,omitempty"`
	// LatencyFactor multiplies every path RTT (>= 1; 0 = 1).
	LatencyFactor float64 `json:"latencyFactor,omitempty"`
	// JitterFrac adds client-side jitter (0..1).
	JitterFrac float64 `json:"jitterFrac,omitempty"`
}

// ScenarioEngine tunes the Oak engines (one per site).
type ScenarioEngine struct {
	// MinViolations is the activation threshold (default 2).
	MinViolations int `json:"minViolations,omitempty"`
	// MADMultiplier is k in the violator criterion (default 2).
	MADMultiplier float64 `json:"madMultiplier,omitempty"`
	// Guard, when non-nil and enabled, wires the per-provider circuit
	// breakers (internal/guard) into every engine.
	Guard *ScenarioGuard `json:"guard,omitempty"`
	// Synthesis, when non-nil and enabled, wires population-level detection
	// and automatic rule synthesis (core.WithSynthesis) into every engine.
	Synthesis *ScenarioSynthesis `json:"synthesis,omitempty"`
}

// ScenarioGuard enables and tunes the circuit breakers.
type ScenarioGuard struct {
	Enabled bool `json:"enabled"`
	// TripThreshold is consecutive bad population-level outcomes before a
	// provider trips (default guard package default, 5).
	TripThreshold int `json:"tripThreshold,omitempty"`
	// OpenForMinutes is the quarantine cool-down in simulated minutes
	// (default 60).
	OpenForMinutes int `json:"openForMinutes,omitempty"`
	// HalfOpenCanaries / CloseAfter tune re-admission (guard defaults).
	HalfOpenCanaries int `json:"halfOpenCanaries,omitempty"`
	CloseAfter       int `json:"closeAfter,omitempty"`
}

// ScenarioSynthesis enables and tunes population-level detection. Zero
// fields take the core.SynthesisConfig defaults.
type ScenarioSynthesis struct {
	Enabled bool `json:"enabled"`
	// WindowMinutes is the aggregation window in simulated minutes
	// (default 2; size it to a small multiple of intervalMinutes so each
	// window sees a few rounds of traffic).
	WindowMinutes int `json:"windowMinutes,omitempty"`
	// DegradeFactor is the window-vs-baseline quantile ratio that flags a
	// provider (default 1.5).
	DegradeFactor float64 `json:"degradeFactor,omitempty"`
	// Quantile is the compared quantile (default 0.75).
	Quantile float64 `json:"quantile,omitempty"`
	// MinSamples / MinBaselineSamples floor the evidence per judgement
	// (defaults 20 / MinSamples).
	MinSamples         int `json:"minSamples,omitempty"`
	MinBaselineSamples int `json:"minBaselineSamples,omitempty"`
	// MaxProviders caps tracked providers per engine (default 64).
	MaxProviders int `json:"maxProviders,omitempty"`
}

// ScenarioAdmission is a deterministic virtual-time ingest queue: per round,
// arrivals beyond QueueCapacity are shed (clients retry next round, at most
// MaxRetries times), and ServiceRate queued reports are processed.
type ScenarioAdmission struct {
	// QueueCapacity is the backlog bound (> 0).
	QueueCapacity int `json:"queueCapacity"`
	// ServiceRate is reports processed per round (> 0).
	ServiceRate int `json:"serviceRate"`
	// MaxRetries bounds resubmissions of a shed report (default 2).
	MaxRetries int `json:"maxRetries,omitempty"`
}

// ScenarioArrival multiplies traffic during [FromLoad, ToLoad).
type ScenarioArrival struct {
	// FromLoad / ToLoad bound the window in load rounds; ToLoad 0 = end of
	// run.
	FromLoad int `json:"fromLoad"`
	ToLoad   int `json:"toLoad,omitempty"`
	// Multiplier is loads (and reports) per client per round in the window
	// (>= 1).
	Multiplier int `json:"multiplier"`
}

// Fault types understood by the runtime.
const (
	// FaultDegrade adds delay and/or divides throughput on the selected
	// servers during the window — the paper's §5.1 injection.
	FaultDegrade = "degrade"
	// FaultBlackout makes the selected servers effectively unusable during
	// the window (a fixed large delay + throughput collapse).
	FaultBlackout = "blackout"
	// FaultDiurnal attaches a diurnal load curve to the selected servers
	// for the whole run; ground truth counts the hours where the curve's
	// factor is ≥ 2.
	FaultDiurnal = "diurnal"
	// FaultReportLoss drops each report in the window with probability
	// Rate, deterministically per (seed, user, round) — transport failure
	// after client retries are exhausted.
	FaultReportLoss = "reportloss"
	// FaultRestart snapshots every engine to a state file, optionally
	// corrupts it (internal/faultinject), and reboots engines from disk at
	// the start of round AtLoad — the crash/recover path under load.
	FaultRestart = "restart"
)

// ScenarioFault is one injected event. Target selects servers for the
// server-directed types; windows are half-open load-round intervals.
type ScenarioFault struct {
	// Type is one of the Fault* constants.
	Type string `json:"type"`
	// Target selects the afflicted servers (degrade/blackout/diurnal).
	Target ScenarioTarget `json:"target,omitempty"`
	// FromLoad / ToLoad bound the fault window; ToLoad 0 = end of run.
	FromLoad int `json:"fromLoad,omitempty"`
	ToLoad   int `json:"toLoad,omitempty"`
	// ExtraDelayMs / TputFactor shape a degrade fault.
	ExtraDelayMs int     `json:"extraDelayMs,omitempty"`
	TputFactor   float64 `json:"tputFactor,omitempty"`
	// Peak / PeakHourUTC shape a diurnal fault (factor 1 at night rising
	// to Peak at PeakHourUTC).
	Peak        float64 `json:"peak,omitempty"`
	PeakHourUTC float64 `json:"peakHourUTC,omitempty"`
	// Rate is the drop probability of a reportloss fault (0..1].
	Rate float64 `json:"rate,omitempty"`
	// AtLoad is the round a restart fault fires before.
	AtLoad int `json:"atLoad,omitempty"`
	// Corrupt selects state-file damage for a restart fault: "", "none",
	// "truncate", "flip", or "empty". Damage exercises the .bak recovery
	// path; the engines must still come back.
	Corrupt string `json:"corrupt,omitempty"`
}

// ScenarioTarget selects provider servers. Criteria combine with AND; at
// least one must be set for server-directed faults. Selection is resolved
// against the generated world in deterministic (sorted) order.
type ScenarioTarget struct {
	// Hosts names default-provider hostnames explicitly.
	Hosts []string `json:"hosts,omitempty"`
	// Category keeps only providers of the named category: "ads",
	// "analytics", "social", "cdn", "fonts", "video", "images", or
	// "tracking" (= ads + analytics + social, the adPerf third-party set).
	Category string `json:"category,omitempty"`
	// Zone selects mirror (alternate) servers of the given replica zone
	// ("na", "eu", "as") instead of default providers.
	Zone string `json:"zone,omitempty"`
	// Matchable, when true, keeps only providers a rule can redirect
	// (non-hidden tiers) — the set detection can actually mitigate.
	Matchable bool `json:"matchable,omitempty"`
	// MaxCount caps how many (sorted) hosts are afflicted; 0 = all.
	MaxCount int `json:"maxCount,omitempty"`
}

// ScenarioExpect is the per-scenario quality gate. Zero-valued floors are
// not enforced.
type ScenarioExpect struct {
	// MinPrecision floors activation precision (true / all activations).
	MinPrecision float64 `json:"minPrecision,omitempty"`
	// MinRecall floors injured-pair recall.
	MinRecall float64 `json:"minRecall,omitempty"`
	// MaxMeanReportsToMitigate ceilings the mean reports-to-mitigation.
	MaxMeanReportsToMitigate float64 `json:"maxMeanReportsToMitigate,omitempty"`
	// MaxFalseActivations ceilings absolute false activations; use -1 to
	// require exactly zero.
	MaxFalseActivations int `json:"maxFalseActivations,omitempty"`
	// MinBreakerTrips floors guard trips (blackout scenarios).
	MinBreakerTrips int `json:"minBreakerTrips,omitempty"`
	// MaxReportsToFirstTrip ceilings rounds from blackout start to the
	// first breaker trip.
	MaxReportsToFirstTrip int `json:"maxReportsToFirstTrip,omitempty"`
	// MaxDegradedPageFraction ceilings the fraction of page loads served
	// while a fault was active and unmitigated for that user.
	MaxDegradedPageFraction float64 `json:"maxDegradedPageFraction,omitempty"`
	// MinShedReports floors sheds (flash-crowd scenarios must actually
	// overflow the queue to be exercising anything).
	MinShedReports int `json:"minShedReports,omitempty"`
	// MinStateRecoveries floors backup-state recoveries (restart-with-
	// corruption scenarios must exercise the .bak path).
	MinStateRecoveries int `json:"minStateRecoveries,omitempty"`
	// MinSynthesizedActivations floors population-synthesized activations
	// (synthesis scenarios must actually exercise the synthesizer).
	MinSynthesizedActivations int `json:"minSynthesizedActivations,omitempty"`
}

// specDefault fills documented defaults; called by Validate.
func (s *ScenarioSpec) specDefaults() {
	if s.IntervalMinutes == 0 {
		s.IntervalMinutes = 20
	}
	if s.StartHourUTC == 0 {
		s.StartHourUTC = 8
	}
	if s.World.Sites == 0 {
		s.World.Sites = 2
	}
	if s.World.Clients == 0 {
		s.World.Clients = 10
	}
	if s.World.PagesPerSite == 0 {
		s.World.PagesPerSite = 1
	}
	if s.World.MinExternalHosts == 0 {
		s.World.MinExternalHosts = 8
	}
	if s.World.MaxExternalHosts == 0 {
		s.World.MaxExternalHosts = 14
	}
	if s.World.PathVariation == 0 {
		s.World.PathVariation = 2.0
	}
	if s.Engine.MinViolations == 0 {
		s.Engine.MinViolations = 2
	}
	if s.Engine.MADMultiplier == 0 {
		s.Engine.MADMultiplier = 2
	}
	if s.Admission != nil && s.Admission.MaxRetries == 0 {
		s.Admission.MaxRetries = 2
	}
}

// invalidf wraps ErrScenarioSpec with detail.
func invalidf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrScenarioSpec, fmt.Sprintf(format, args...))
}

// scenarioNameOK reports whether a name is a clean CLI/report handle.
func scenarioNameOK(name string) bool {
	if name == "" || len(name) > 64 {
		return false
	}
	for i := 0; i < len(name); i++ {
		c := name[i]
		if c >= 'a' && c <= 'z' || c >= '0' && c <= '9' || c == '-' {
			continue
		}
		return false
	}
	return true
}

// window validates a [from, to) load window against the run length and
// returns the effective end (to 0 = run length).
func window(from, to, loads int, what string) (int, error) {
	if from < 0 || from >= loads {
		return 0, invalidf("%s: fromLoad %d outside run of %d loads", what, from, loads)
	}
	if to == 0 {
		to = loads
	}
	if to <= from || to > loads {
		return 0, invalidf("%s: window [%d,%d) invalid for run of %d loads", what, from, to, loads)
	}
	return to, nil
}

// Validate checks the spec and fills defaults. It mutates the receiver (a
// validated spec is fully defaulted) and returns a typed error on the first
// problem found.
func (s *ScenarioSpec) Validate() error {
	if s.Version != ScenarioSpecVersion {
		return fmt.Errorf("%w: got %d, want %d", ErrScenarioVersion, s.Version, ScenarioSpecVersion)
	}
	if !scenarioNameOK(s.Name) {
		return invalidf("name %q must be 1-64 chars of [a-z0-9-]", s.Name)
	}
	if s.Loads < 1 || s.Loads > 500 {
		return invalidf("loads %d outside [1,500]", s.Loads)
	}
	s.specDefaults()
	if s.IntervalMinutes < 1 || s.IntervalMinutes > 24*60 {
		return invalidf("intervalMinutes %d outside [1,1440]", s.IntervalMinutes)
	}
	if s.StartHourUTC < 0 || s.StartHourUTC > 23 {
		return invalidf("startHourUTC %d outside [0,23]", s.StartHourUTC)
	}
	w := s.World
	if w.Sites < 1 || w.Sites > 50 {
		return invalidf("world.sites %d outside [1,50]", w.Sites)
	}
	if w.Clients < 1 || w.Clients > 200 {
		return invalidf("world.clients %d outside [1,200]", w.Clients)
	}
	if w.MinExternalHosts < 1 || w.MaxExternalHosts < w.MinExternalHosts {
		return invalidf("world external-host bounds [%d,%d] invalid", w.MinExternalHosts, w.MaxExternalHosts)
	}
	if w.PathVariation < 0 || w.AdsWeight < 0 {
		return invalidf("world.pathVariation and world.adsWeight must be >= 0")
	}
	var fracSum float64
	for i, c := range s.ClientClasses {
		if c.Name == "" {
			return invalidf("clientClasses[%d]: missing name", i)
		}
		if c.Fraction <= 0 || c.Fraction > 1 {
			return invalidf("clientClasses[%d] %q: fraction %.3f outside (0,1]", i, c.Name, c.Fraction)
		}
		if c.BandwidthKbps < 0 || c.LatencyFactor < 0 || c.JitterFrac < 0 || c.JitterFrac > 1 {
			return invalidf("clientClasses[%d] %q: negative link parameter", i, c.Name)
		}
		fracSum += c.Fraction
	}
	if fracSum > 1.0001 {
		return invalidf("clientClasses fractions sum to %.3f > 1", fracSum)
	}
	if g := s.Engine.Guard; g != nil {
		if g.TripThreshold < 0 || g.OpenForMinutes < 0 || g.HalfOpenCanaries < 0 || g.CloseAfter < 0 {
			return invalidf("engine.guard: negative tuning value")
		}
	}
	if sy := s.Engine.Synthesis; sy != nil {
		if sy.WindowMinutes < 0 || sy.DegradeFactor < 0 || sy.MinSamples < 0 ||
			sy.MinBaselineSamples < 0 || sy.MaxProviders < 0 {
			return invalidf("engine.synthesis: negative tuning value")
		}
		if sy.Quantile < 0 || sy.Quantile >= 1 {
			return invalidf("engine.synthesis: quantile %.3f outside [0,1)", sy.Quantile)
		}
	}
	if a := s.Admission; a != nil {
		if a.QueueCapacity < 1 || a.ServiceRate < 1 {
			return invalidf("admission: queueCapacity and serviceRate must be >= 1")
		}
		if a.MaxRetries < 0 {
			return invalidf("admission: maxRetries must be >= 0")
		}
	}
	for i, a := range s.Arrivals {
		if a.Multiplier < 1 || a.Multiplier > 20 {
			return invalidf("arrivals[%d]: multiplier %d outside [1,20]", i, a.Multiplier)
		}
		if _, err := window(a.FromLoad, a.ToLoad, s.Loads, fmt.Sprintf("arrivals[%d]", i)); err != nil {
			return err
		}
	}
	if len(s.Faults) == 0 {
		// Fault-free scenarios are legal (they measure false-positive
		// behaviour), but the slice must be present so intent is explicit.
		if s.Faults == nil {
			return invalidf("faults must be present (use [] for a fault-free scenario)")
		}
	}
	for i, f := range s.Faults {
		what := fmt.Sprintf("faults[%d] (%s)", i, f.Type)
		switch f.Type {
		case FaultDegrade:
			if f.ExtraDelayMs <= 0 && f.TputFactor <= 1 {
				return invalidf("%s: needs extraDelayMs > 0 or tputFactor > 1", what)
			}
			if _, err := window(f.FromLoad, f.ToLoad, s.Loads, what); err != nil {
				return err
			}
		case FaultBlackout:
			if _, err := window(f.FromLoad, f.ToLoad, s.Loads, what); err != nil {
				return err
			}
		case FaultDiurnal:
			if f.Peak < 2 {
				return invalidf("%s: peak %.2f must be >= 2 (below 2 never crosses ground-truth threshold)", what, f.Peak)
			}
			if f.PeakHourUTC < 0 || f.PeakHourUTC >= 24 {
				return invalidf("%s: peakHourUTC %.1f outside [0,24)", what, f.PeakHourUTC)
			}
		case FaultReportLoss:
			if f.Rate <= 0 || f.Rate > 1 {
				return invalidf("%s: rate %.3f outside (0,1]", what, f.Rate)
			}
			if _, err := window(f.FromLoad, f.ToLoad, s.Loads, what); err != nil {
				return err
			}
		case FaultRestart:
			if f.AtLoad < 1 || f.AtLoad >= s.Loads {
				return invalidf("%s: atLoad %d outside [1,%d)", what, f.AtLoad, s.Loads)
			}
			switch f.Corrupt {
			case "", "none", "truncate", "flip", "empty":
			default:
				return invalidf("%s: unknown corrupt mode %q", what, f.Corrupt)
			}
		default:
			return invalidf("%s: unknown fault type", what)
		}
		if f.Type == FaultDegrade || f.Type == FaultBlackout || f.Type == FaultDiurnal {
			t := f.Target
			if len(t.Hosts) == 0 && t.Category == "" && t.Zone == "" && !t.Matchable && t.MaxCount == 0 {
				return invalidf("%s: empty target", what)
			}
			switch t.Zone {
			case "", "na", "eu", "as":
			default:
				return invalidf("%s: unknown mirror zone %q", what, t.Zone)
			}
			if t.MaxCount < 0 {
				return invalidf("%s: maxCount must be >= 0", what)
			}
		}
	}
	e := s.Expect
	if e.MinPrecision < 0 || e.MinPrecision > 1 || e.MinRecall < 0 || e.MinRecall > 1 ||
		e.MaxDegradedPageFraction < 0 || e.MaxDegradedPageFraction > 1 {
		return invalidf("expect: fractional floors must be in [0,1]")
	}
	if e.MaxMeanReportsToMitigate < 0 || e.MaxFalseActivations < -1 ||
		e.MinBreakerTrips < 0 || e.MaxReportsToFirstTrip < 0 ||
		e.MinShedReports < 0 || e.MinStateRecoveries < 0 ||
		e.MinSynthesizedActivations < 0 {
		return invalidf("expect: negative floor")
	}
	return nil
}

// ParseScenario decodes and validates one spec document. Unknown fields are
// rejected: a typo'd floor silently not enforced would be a fake gate.
func ParseScenario(data []byte) (*ScenarioSpec, error) {
	if len(data) > maxScenarioSpecBytes {
		return nil, invalidf("spec exceeds %d bytes", maxScenarioSpecBytes)
	}
	dec := json.NewDecoder(strings.NewReader(string(data)))
	dec.DisallowUnknownFields()
	var spec ScenarioSpec
	if err := dec.Decode(&spec); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrScenarioSpec, err)
	}
	// Trailing garbage after the document is hostile input, not a spec.
	if dec.More() {
		return nil, invalidf("trailing data after spec document")
	}
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	return &spec, nil
}

// LoadScenarioFile reads and parses a spec from disk.
func LoadScenarioFile(path string) (*ScenarioSpec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiment: read scenario: %w", err)
	}
	spec, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return spec, nil
}

// ScenarioNames lists the embedded starter scenarios, sorted.
func ScenarioNames() []string {
	entries, err := fs.ReadDir(scenarios.Files, ".")
	if err != nil {
		return nil
	}
	var names []string
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	return names
}

// LoadScenario returns the embedded starter scenario with the given name.
func LoadScenario(name string) (*ScenarioSpec, error) {
	data, err := fs.ReadFile(scenarios.Files, name+".json")
	if err != nil {
		return nil, fmt.Errorf("%w: %q (have %s)", ErrScenarioUnknown, name, strings.Join(ScenarioNames(), ", "))
	}
	spec, err := ParseScenario(data)
	if err != nil {
		return nil, fmt.Errorf("scenario %s: %w", name, err)
	}
	if spec.Name != name {
		return nil, fmt.Errorf("scenario %s: %w", name, invalidf("file name and spec name %q disagree", spec.Name))
	}
	return spec, nil
}
