package experiment

import "testing"

func TestAblationResourceTimingAPI(t *testing.T) {
	rows, err := AblationResourceTimingAPI(1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows", len(rows))
	}
	for _, r := range rows {
		// The restricted client can never beat full instrumentation.
		if r.APICoverage > r.FullCoverage+1e-9 {
			t.Errorf("optIn=%.1f: API coverage %v exceeds full coverage %v",
				r.OptInFraction, r.APICoverage, r.FullCoverage)
		}
	}
	// At realistic opt-in rates the API client misses a large share of the
	// genuinely degraded providers — the paper's Section 6 argument.
	low := rows[0]
	if low.FullCoverage <= 0 {
		t.Fatal("full instrumentation detected nothing; world misconfigured")
	}
	if low.APICoverage > 0.6*low.FullCoverage {
		t.Errorf("optIn=0.1: API coverage %v not clearly below full %v",
			low.APICoverage, low.FullCoverage)
	}
	// Coverage improves as more providers opt in.
	if rows[3].APICoverage <= rows[0].APICoverage {
		t.Errorf("API coverage not improving with opt-in: %v -> %v",
			rows[0].APICoverage, rows[3].APICoverage)
	}
}
