package experiment

import (
	"fmt"
	"time"

	"oak/internal/obs"
)

// latencyTable renders engine hot-path histograms as a result table, so
// figure runners (and the repository benchmarks that print their output)
// report how fast the engine itself ran alongside the paper's metrics.
func latencyTable(ingest, rewrite obs.Snapshot) Table {
	row := func(name string, s obs.Snapshot) []string {
		us := func(d time.Duration) string {
			return fmt.Sprintf("%.1f", float64(d)/float64(time.Microsecond))
		}
		return []string{
			name,
			fmt.Sprintf("%d", s.Count),
			us(s.Quantile(0.50)), us(s.Quantile(0.90)), us(s.Quantile(0.99)), us(s.Max),
		}
	}
	return Table{
		Title:  "engine latency (µs)",
		Header: []string{"path", "count", "p50", "p90", "p99", "max"},
		Rows: [][]string{
			row("report ingest", ingest),
			row("page rewrite", rewrite),
		},
	}
}
