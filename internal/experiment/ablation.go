package experiment

import (
	"fmt"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/rules"
	"oak/internal/stats"
	"oak/internal/webgen"
)

// Ablations of the design decisions DESIGN.md calls out. Each returns a
// small result the benchmarks and tests print/assert; none is a paper
// figure, so they live outside the figure registry.

// MADSweepResult is one row of the MAD-multiplier ablation.
type MADSweepResult struct {
	K float64
	// DetectionRate is how often the genuinely degraded server was flagged.
	DetectionRate float64
	// FalseFlagsPerLoad is the mean count of healthy servers flagged.
	FalseFlagsPerLoad float64
}

// AblationMADMultiplier sweeps the violator criterion's k over the fig9
// world with a fixed 2 s injected delay: small k over-flags healthy
// servers, large k misses the degraded one. The paper's k=2 sits at the
// knee.
func AblationMADMultiplier(seed int64, iterations int) ([]MADSweepResult, error) {
	var out []MADSweepResult
	for _, k := range []float64{1, 1.5, 2, 3, 4} {
		var detected int
		var falseFlags int
		for it := 0; it < iterations; it++ {
			w, err := fig9World()
			if err != nil {
				return nil, err
			}
			slowHost := fmt.Sprintf("file-%d.example", fig9Slow+1)
			w.net.Degrade(netsim.Degradation{ServerAddr: "srv-" + slowHost, ExtraDelay: 2 * time.Second})
			// A moderately noisy broadband client: the sweep should show
			// the k trade-off, not drown in path noise.
			w.net.SetClientProfile("u", netsim.ClientProfile{BandwidthBps: 22e3, JitterFrac: 0.30})
			clock := netsim.NewVirtualClock(catalogStart.Add(time.Duration(it) * 41 * time.Minute))
			sc := &client.SimClient{ID: "u", Region: netsim.NorthAmerica, Net: w.net, Assets: w.assets, Clock: clock}
			res, err := sc.Load(w.site, w.page, w.page.HTML)
			if err != nil {
				return nil, err
			}
			for _, v := range core.DetectViolators(report.GroupByServer(res.Report), k) {
				if v.Server.HasHost(slowHost) {
					detected++
				} else {
					falseFlags++
				}
			}
		}
		out = append(out, MADSweepResult{
			K:                 k,
			DetectionRate:     float64(detected) / float64(iterations),
			FalseFlagsPerLoad: float64(falseFlags) / float64(iterations),
		})
	}
	return out, nil
}

// AbsoluteVsRelativeResult compares threshold styles on a narrow-bandwidth
// client (the paper's Section 6 argument for relative thresholds).
type AbsoluteVsRelativeResult struct {
	// RelativeFlags and AbsoluteFlags count servers flagged for a client
	// whose every path is slow but uniformly so (nothing is actually wrong).
	RelativeFlags int
	AbsoluteFlags int
}

// AblationAbsoluteThreshold loads the fig9 page (all servers healthy) from
// a very narrow long-haul link. A fixed absolute threshold tuned for normal
// clients flags everything; the MAD criterion flags nothing.
func AblationAbsoluteThreshold(seed int64) (*AbsoluteVsRelativeResult, error) {
	w, err := fig9World()
	if err != nil {
		return nil, err
	}
	w.net.SetClientProfile("narrow", netsim.ClientProfile{
		BandwidthBps: 4e3, LatencyFactor: 5, JitterFrac: 0.2,
	})
	clock := netsim.NewVirtualClock(catalogStart)
	sc := &client.SimClient{ID: "narrow", Region: netsim.Asia, Net: w.net, Assets: w.assets, Clock: clock}
	res, err := sc.Load(w.site, w.page, w.page.HTML)
	if err != nil {
		return nil, err
	}
	servers := report.GroupByServer(res.Report)
	rel := core.DetectViolators(servers, stats.DefaultMADMultiplier)
	// An absolute policy tuned for a broadband client: small objects within
	// a second, large transfers above 100 KB/s.
	abs := core.DetectViolatorsAbsolute(servers, core.AbsoluteThresholds{
		MaxSmallTimeMs:  1000,
		MinLargeTputBps: 100e3,
	})
	return &AbsoluteVsRelativeResult{RelativeFlags: len(rel), AbsoluteFlags: len(abs)}, nil
}

// SizeSplitResult is one row of the small/large split ablation.
type SizeSplitResult struct {
	ThresholdKB int
	// SmallServers / LargeServers count how many servers end up with each
	// signal available on a typical catalog load.
	SmallServers int
	LargeServers int
}

// AblationSizeSplit sweeps the small/large object split point over a
// catalog load, showing how the 50 KB choice balances the two signal
// populations.
func AblationSizeSplit(seed int64) ([]SizeSplitResult, error) {
	g := webgen.NewGenerator(webgen.Config{Seed: seed, NumSites: 5})
	site := g.Site(2)
	net := netsim.NewNetwork()
	assets, err := registerSiteWorld(net, site, g.Pool(), "")
	if err != nil {
		return nil, err
	}
	sc := &client.SimClient{
		ID: "u", Region: netsim.NorthAmerica, Net: net, Assets: assets,
		Clock: netsim.NewVirtualClock(catalogStart),
	}
	page := site.Index()
	res, err := sc.Load(site, page, page.HTML)
	if err != nil {
		return nil, err
	}
	var out []SizeSplitResult
	for _, kb := range []int{10, 25, 50, 100, 200} {
		threshold := int64(kb * 1024)
		bySrv := make(map[string][2]bool) // addr -> (hasSmall, hasLarge)
		for _, e := range res.Report.Entries {
			v := bySrv[e.ServerAddr]
			if e.SizeBytes < threshold {
				v[0] = true
			} else {
				v[1] = true
			}
			bySrv[e.ServerAddr] = v
		}
		row := SizeSplitResult{ThresholdKB: kb}
		for _, v := range bySrv {
			if v[0] {
				row.SmallServers++
			}
			if v[1] {
				row.LargeServers++
			}
		}
		out = append(out, row)
	}
	return out, nil
}

// MatchDepthResult is one row of the script-expansion depth ablation.
type MatchDepthResult struct {
	Depth int
	// MedianMatchRate is the fig8-style median fraction of servers tied to
	// the whole-index rule.
	MedianMatchRate float64
}

// AblationMatchDepth sweeps the external-JavaScript expansion depth,
// reproducing the paper's observation that one layer captures most of the
// win and further layers pay off "rapidly diminishing" amounts.
func AblationMatchDepth(seed int64, sites int) ([]MatchDepthResult, error) {
	g := webgen.NewGenerator(webgen.Config{Seed: seed, NumSites: sites})
	pool := g.Pool()
	catalog := g.Catalog() // one catalog for every depth: Catalog() consumes RNG state
	clock := netsim.NewVirtualClock(catalogStart)
	var out []MatchDepthResult
	for _, depth := range []int{0, 1, 2} {
		var fracs []float64
		for _, site := range catalog {
			net := netsim.NewNetwork()
			assets, err := registerSiteWorld(net, site, pool, "")
			if err != nil {
				return nil, err
			}
			sc := &client.SimClient{ID: "u", Region: netsim.NorthAmerica, Net: net, Assets: assets, Clock: clock}
			page := site.Index()
			res, err := sc.Load(site, page, page.HTML)
			if err != nil {
				return nil, err
			}
			servers := report.GroupByServer(res.Report)
			var scriptURLs []string
			for _, s := range servers {
				scriptURLs = append(scriptURLs, s.ScriptURLs...)
			}
			m := &core.Matcher{MaxLevel: core.MatchExternalJS, Fetcher: assets, Depth: depth}
			if depth == 0 {
				m.MaxLevel = core.MatchText
			}
			indexRule := &rules.Rule{ID: "index", Type: rules.TypeRemove, Default: page.HTML, Scope: "*"}
			var matched int
			for _, s := range servers {
				if m.Match(indexRule, s, scriptURLs) != core.MatchNone {
					matched++
				}
			}
			fracs = append(fracs, float64(matched)/float64(len(servers)))
		}
		med, err := stats.Median(fracs)
		if err != nil {
			return nil, err
		}
		out = append(out, MatchDepthResult{Depth: depth, MedianMatchRate: med})
	}
	return out, nil
}

// HistoryPolicyResult compares rule-history strategies when the alternate
// itself turns bad mid-run.
type HistoryPolicyResult struct {
	// MeanPLTOak / MeanPLTNeverRevert / MeanPLTNoRules are mean PLTs (ms)
	// over the scenario under Oak's distance-minimising history, a naive
	// never-revert policy, and no Oak at all.
	MeanPLTOak         float64
	MeanPLTNeverRevert float64
	MeanPLTNoRules     float64
}

// AblationHistory runs a scenario where the default degrades, Oak switches,
// and then the alternate degrades even harder. Oak's history mechanism
// reverts; a never-revert policy stays pinned to the now-terrible
// alternate.
func AblationHistory(seed int64) (*HistoryPolicyResult, error) {
	run := func(mode string) (float64, error) {
		w, err := fig9World()
		if err != nil {
			return 0, err
		}
		slowHost := fmt.Sprintf("file-%d.example", fig9Slow+1)
		altHost := fmt.Sprintf("alt-file-%d.example", fig9Slow+1)
		start := catalogStart
		phase2 := start.Add(8 * 30 * time.Minute)
		// Phase 1 (loads 0-7): default degraded by 2 s, then it recovers.
		w.net.Degrade(netsim.Degradation{
			ServerAddr: "srv-" + slowHost, Start: start, End: phase2, ExtraDelay: 2 * time.Second,
		})
		// Phase 2 (loads 8+): the alternate degrades by 6 s. Oak's history
		// mechanism must notice and revert; a never-revert policy stays
		// pinned to the now-terrible alternate.
		w.net.Degrade(netsim.Degradation{
			ServerAddr: "srv-" + altHost, Start: phase2, ExtraDelay: 6 * time.Second,
		})
		fc := fig9Clients()[0]
		w.net.SetClientProfile("u", netsim.ClientProfile{BandwidthBps: 22e3, JitterFrac: 0.15})
		engine, err := core.NewEngine(w.rules)
		if err != nil {
			return 0, err
		}
		clock := netsim.NewVirtualClock(start)
		sc := &client.SimClient{ID: "u", Region: fc.region, Net: w.net, Assets: w.assets, Clock: clock}

		var totalMs float64
		const loads = 12
		var pinnedHTML string
		for li := 0; li < loads; li++ {
			var html string
			switch mode {
			case "none":
				html = w.page.HTML
			case "never-revert":
				if pinnedHTML == "" {
					pinnedHTML = w.page.HTML
				}
				html = pinnedHTML
			default: // oak
				html, _ = engine.ModifyPage("u", w.page.Path, w.page.HTML)
			}
			res, err := sc.Load(w.site, w.page, html)
			if err != nil {
				return 0, err
			}
			totalMs += float64(res.PLT) / float64(time.Millisecond)
			if mode != "none" {
				if _, err := engine.HandleReport(res.Report); err != nil {
					return 0, err
				}
			}
			if mode == "never-revert" {
				// Pin whatever the engine would serve next, but never allow
				// deactivation: once switched, stay switched.
				next, _ := engine.ModifyPage("u", w.page.Path, w.page.HTML)
				if pinnedHTML == w.page.HTML && next != w.page.HTML {
					pinnedHTML = next
				}
			}
			clock.Advance(30 * time.Minute)
		}
		return totalMs / loads, nil
	}

	oakPLT, err := run("oak")
	if err != nil {
		return nil, err
	}
	pinned, err := run("never-revert")
	if err != nil {
		return nil, err
	}
	none, err := run("none")
	if err != nil {
		return nil, err
	}
	return &HistoryPolicyResult{
		MeanPLTOak:         oakPLT,
		MeanPLTNeverRevert: pinned,
		MeanPLTNoRules:     none,
	}, nil
}

// MinViolationsResult is one row of the activation-threshold ablation.
type MinViolationsResult struct {
	MinViolations int
	// FalseActivations counts activations triggered by a single transient
	// burst; TrueActivationDelay is how many loads the persistent offender
	// needed before its rule activated (-1 = never).
	FalseActivations    int
	TrueActivationDelay int
}

// AblationMinViolations injects one transient burst on a healthy server and
// a persistent degradation on another, then sweeps MinViolations: low
// settings chase the transient, high settings delay the real fix.
func AblationMinViolations(seed int64) ([]MinViolationsResult, error) {
	var out []MinViolationsResult
	for _, mv := range []int{1, 2, 3, 4, 5} {
		w, err := fig9World()
		if err != nil {
			return nil, err
		}
		slowHost := fmt.Sprintf("file-%d.example", fig9Slow+1)
		transientHost := "file-5.example"
		start := catalogStart
		w.net.Degrade(netsim.Degradation{
			ServerAddr: "srv-" + slowHost, Start: start, ExtraDelay: 1500 * time.Millisecond,
		})
		// One-load transient burst on an otherwise healthy server.
		w.net.Degrade(netsim.Degradation{
			ServerAddr: "srv-" + transientHost,
			Start:      start, End: start.Add(10 * time.Minute),
			ExtraDelay: 1500 * time.Millisecond,
		})
		fc := fig9Clients()[0]
		w.net.SetClientProfile("u", fc.profile)
		engine, err := core.NewEngine(w.rules, core.WithPolicy(core.Policy{MinViolations: mv}))
		if err != nil {
			return nil, err
		}
		clock := netsim.NewVirtualClock(start)
		sc := &client.SimClient{ID: "u", Region: fc.region, Net: w.net, Assets: w.assets, Clock: clock}

		row := MinViolationsResult{MinViolations: mv, TrueActivationDelay: -1}
		for li := 0; li < 10; li++ {
			html, _ := engine.ModifyPage("u", w.page.Path, w.page.HTML)
			res, err := sc.Load(w.site, w.page, html)
			if err != nil {
				return nil, err
			}
			analysis, err := engine.HandleReport(res.Report)
			if err != nil {
				return nil, err
			}
			for _, ch := range analysis.Changes {
				if ch.Action != "activate" {
					continue
				}
				switch ch.RuleID {
				case "swap-" + transientHost:
					row.FalseActivations++
				case "swap-" + slowHost:
					if row.TrueActivationDelay < 0 {
						row.TrueActivationDelay = li + 1
					}
				}
			}
			clock.Advance(30 * time.Minute)
		}
		out = append(out, row)
	}
	return out, nil
}
