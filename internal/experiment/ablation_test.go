package experiment

import (
	"testing"
)

func TestAblationMADMultiplier(t *testing.T) {
	rows, err := AblationMADMultiplier(1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	byK := make(map[float64]MADSweepResult, len(rows))
	for _, r := range rows {
		byK[r.K] = r
	}
	// k=2 (the paper's choice) must reliably detect the 1s degradation.
	if byK[2].DetectionRate < 0.75 {
		t.Errorf("k=2 detection rate = %v, want reliable", byK[2].DetectionRate)
	}
	// Smaller k flags at least as many healthy servers as larger k.
	if byK[1].FalseFlagsPerLoad < byK[4].FalseFlagsPerLoad {
		t.Errorf("false flags not decreasing in k: k1=%v k4=%v",
			byK[1].FalseFlagsPerLoad, byK[4].FalseFlagsPerLoad)
	}
	// Detection never increases as k grows.
	for i := 1; i < len(rows); i++ {
		if rows[i].DetectionRate > rows[i-1].DetectionRate+1e-9 {
			t.Errorf("detection rate increased with k: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestAblationAbsoluteThreshold(t *testing.T) {
	res, err := AblationAbsoluteThreshold(1)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section 6 argument: uniformly slow clients trip absolute
	// thresholds everywhere but the relative criterion stays quiet.
	if res.AbsoluteFlags < 3 {
		t.Errorf("absolute policy flagged only %d servers on a narrow link, expected most", res.AbsoluteFlags)
	}
	if res.RelativeFlags > 1 {
		t.Errorf("relative policy flagged %d servers on a uniformly slow link, want ~0", res.RelativeFlags)
	}
}

func TestAblationSizeSplit(t *testing.T) {
	rows, err := AblationSizeSplit(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Growing the threshold can only grow the small-signal population and
	// shrink the large one.
	for i := 1; i < len(rows); i++ {
		if rows[i].SmallServers < rows[i-1].SmallServers {
			t.Errorf("small population shrank: %+v -> %+v", rows[i-1], rows[i])
		}
		if rows[i].LargeServers > rows[i-1].LargeServers {
			t.Errorf("large population grew: %+v -> %+v", rows[i-1], rows[i])
		}
	}
}

func TestAblationMatchDepth(t *testing.T) {
	rows, err := AblationMatchDepth(1, 15)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("got %d rows", len(rows))
	}
	// Depth 1 must beat depth 0 substantially; depth 2 adds little (the
	// paper's "rapidly diminishing payoff").
	if rows[1].MedianMatchRate <= rows[0].MedianMatchRate {
		t.Errorf("depth 1 (%v) not above depth 0 (%v)",
			rows[1].MedianMatchRate, rows[0].MedianMatchRate)
	}
	gain1 := rows[1].MedianMatchRate - rows[0].MedianMatchRate
	gain2 := rows[2].MedianMatchRate - rows[1].MedianMatchRate
	if gain2 > gain1 {
		t.Errorf("depth 2 gain (%v) exceeds depth 1 gain (%v): expected diminishing returns", gain2, gain1)
	}
}

func TestAblationHistory(t *testing.T) {
	res, err := AblationHistory(1)
	if err != nil {
		t.Fatal(err)
	}
	// Oak's history must beat both doing nothing and never reverting.
	if res.MeanPLTOak >= res.MeanPLTNoRules {
		t.Errorf("oak PLT %v not below no-rules PLT %v", res.MeanPLTOak, res.MeanPLTNoRules)
	}
	if res.MeanPLTOak >= res.MeanPLTNeverRevert {
		t.Errorf("oak PLT %v not below never-revert PLT %v", res.MeanPLTOak, res.MeanPLTNeverRevert)
	}
}

func TestAblationMinViolations(t *testing.T) {
	rows, err := AblationMinViolations(1)
	if err != nil {
		t.Fatal(err)
	}
	byMV := make(map[int]MinViolationsResult, len(rows))
	for _, r := range rows {
		byMV[r.MinViolations] = r
	}
	// A single-load transient fools MinViolations=1 but not >=2.
	if byMV[1].FalseActivations == 0 {
		t.Error("MinViolations=1 did not chase the transient burst")
	}
	if byMV[3].FalseActivations != 0 {
		t.Errorf("MinViolations=3 chased the transient %d times", byMV[3].FalseActivations)
	}
	// The persistent offender is eventually fixed at every setting, later
	// for stricter policies.
	for _, r := range rows {
		if r.TrueActivationDelay < 0 {
			t.Errorf("MinViolations=%d never activated on the persistent offender", r.MinViolations)
		}
	}
	if byMV[5].TrueActivationDelay < byMV[1].TrueActivationDelay {
		t.Errorf("stricter policy activated earlier: mv5=%d mv1=%d",
			byMV[5].TrueActivationDelay, byMV[1].TrueActivationDelay)
	}
}
