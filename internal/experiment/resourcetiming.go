package experiment

import (
	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/stats"
	"oak/internal/webgen"
)

// The paper's Section 6 weighs an alternative to browser modification: the
// JavaScript Resource Timing API. Its flaw is that cross-origin timing
// detail requires the provider to opt in with a Timing-Allow-Origin header,
// and most third parties don't — "this opt-in behavior means many providers
// are not visible with the API, rendering Oak less effective". This
// experiment quantifies that argument on the simulated catalog.

// ResourceTimingResult compares detection coverage under full client
// instrumentation vs an API-restricted client.
type ResourceTimingResult struct {
	// OptInFraction is the share of providers exposing timing headers.
	OptInFraction float64
	// FullCoverage / APICoverage are the fractions of truly-misbehaving
	// servers detected across the catalog by each client flavour.
	FullCoverage float64
	APICoverage  float64
}

// timingOptIn reports whether a provider would send Timing-Allow-Origin.
// Large CDN-class providers tend to; ad/analytics long tail does not.
func timingOptIn(host string, pool []webgen.Provider, optInFraction float64) bool {
	return pick(host, "timing-allow-origin") < optInFraction
}

// AblationResourceTimingAPI measures what fraction of genuinely degraded
// providers each reporting mechanism can flag, per opt-in rate.
func AblationResourceTimingAPI(seed int64, sites int) ([]ResourceTimingResult, error) {
	g := webgen.NewGenerator(webgen.Config{Seed: seed, NumSites: sites})
	pool := g.Pool()
	catalog := g.Catalog() // fixed catalog: every opt-in rate sees the same sites
	clock := netsim.NewVirtualClock(catalogStart)

	var out []ResourceTimingResult
	for _, optIn := range []float64{0.1, 0.3, 0.5, 0.8} {
		var truth, fullHit, apiHit int
		for _, site := range catalog {
			net := netsim.NewNetwork()
			assets, err := registerSiteWorld(net, site, pool, "")
			if err != nil {
				return nil, err
			}
			sc := &client.SimClient{
				ID: "u", Region: netsim.NorthAmerica, Net: net, Assets: assets, Clock: clock,
			}
			page := site.Index()
			res, err := sc.Load(site, page, page.HTML)
			if err != nil {
				return nil, err
			}

			// Ground truth: the persistently degraded providers on this page.
			degraded := make(map[string]bool)
			for _, h := range site.ExternalHosts() {
				if healthOf(h, pool) == healthDegraded {
					degraded[h] = true
				}
			}
			truth += len(degraded)

			// Full instrumentation sees every entry.
			fullServers := report.GroupByServer(res.Report)
			for _, v := range core.DetectViolators(fullServers, stats.DefaultMADMultiplier) {
				for _, h := range v.Server.Hosts {
					if degraded[h] {
						fullHit++
					}
				}
			}

			// The API-restricted client only sees timing detail for opt-in
			// providers (and the origin, which is same-origin).
			restricted := &report.Report{UserID: res.Report.UserID, Page: res.Report.Page}
			for _, e := range res.Report.Entries {
				host := e.Host()
				if host == site.Domain || timingOptIn(host, pool, optIn) {
					restricted.Entries = append(restricted.Entries, e)
				}
			}
			if len(restricted.Entries) > 0 {
				apiServers := report.GroupByServer(restricted)
				for _, v := range core.DetectViolators(apiServers, stats.DefaultMADMultiplier) {
					for _, h := range v.Server.Hosts {
						if degraded[h] {
							apiHit++
						}
					}
				}
			}
		}
		row := ResourceTimingResult{OptInFraction: optIn}
		if truth > 0 {
			row.FullCoverage = float64(fullHit) / float64(truth)
			row.APICoverage = float64(apiHit) / float64(truth)
		}
		out = append(out, row)
	}
	return out, nil
}
