package experiment

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/obs"
	"oak/internal/rules"
	"oak/internal/stats"
	"oak/internal/webgen"
)

func init() {
	register("table2", runTable2)
	register("fig12", runFig12)
	register("fig13", runFig13)
	register("fig14", runFig14)
	register("table3", runTable3)
}

// The replicated-sites experiment of Section 5.3: ten sites from the
// catalog — five "low-expectation" H1 sites (5–15 external hosts) and five
// "high-expectation" H2 sites (>15) with the best rule-match rates — are
// mirrored behind Oak. External objects stay on their (uncontrolled)
// production providers; replicas of every external object exist in three
// zones (NA/EU/AS) and every matchable domain gets a Type 2 rule whose
// alternatives point at the zone replicas. 25 worldwide clients load each
// site 15 times under three conditions: default, all-rules-forced, and
// normal Oak.

const (
	h12Loads    = 15
	h12Interval = 20 * time.Minute
)

// h12Pair is one (site, client, rule) outcome.
type h12Pair struct {
	h2    bool // site class: false = H1, true = H2
	close bool // client region == site home region
	// correctFrac is the fraction of post-report loads whose rule state
	// matched the oracle.
	correctFrac float64
	// ratio is mean default object time / mean Oak-choice object time,
	// valid only when the rule was activated at least once.
	ratio     float64
	activated bool
}

// h12SiteInfo describes one selected site.
type h12SiteInfo struct {
	domain    string
	h2        bool
	extHosts  int
	matchable float64
	home      netsim.Region
}

// h12Data is the shared outcome of the replicated-sites run.
type h12Data struct {
	pairs []h12Pair
	sites []h12SiteInfo
	// ruleUserFrac lists, per (site, rule), the fraction of the site's
	// users that activated the rule (Figure 14 / Table 3).
	ruleUserFrac []float64
	// ruleStats keeps the per-rule ledger stats with host names.
	ruleStats []core.RuleStat
	// ingest/rewrite aggregate engine latency histograms across all
	// per-site engines, surfaced in benchmark output.
	ingest, rewrite obs.Snapshot
}

var (
	h12Mu    sync.Mutex
	h12Cache = map[string]*h12Data{}
)

// h12SelectSites picks the H1/H2 site sets from the catalog: within each
// class, the five sites with the highest rule-activation match rate.
func h12SelectSites(catalog []*webgen.Site) (h1, h2 []*webgen.Site) {
	type cand struct {
		site  *webgen.Site
		score float64
	}
	var c1, c2 []cand
	for _, s := range catalog {
		n := len(s.ExternalHosts())
		if n <= 5 {
			continue
		}
		var matchable int
		for _, h := range s.ExternalHosts() {
			if s.Fragments[h] != "" {
				matchable++
			}
		}
		score := float64(matchable) / float64(n)
		switch {
		case n < 15:
			c1 = append(c1, cand{s, score})
		case n > 15:
			c2 = append(c2, cand{s, score})
		}
	}
	pick := func(cs []cand) []*webgen.Site {
		sort.Slice(cs, func(i, j int) bool {
			if cs[i].score != cs[j].score {
				return cs[i].score > cs[j].score
			}
			return cs[i].site.Domain < cs[j].site.Domain
		})
		var out []*webgen.Site
		for i := 0; i < len(cs) && i < 5; i++ {
			out = append(out, cs[i].site)
		}
		return out
	}
	return pick(c1), pick(c2)
}

// zoneSelector steers each user to its closest replica zone, implementing
// the paper's "each client is then directed to its closest alternative".
func zoneSelector(r *rules.Rule, _ int, userID string) int {
	z := zoneOf(regionOfClientID(userID))
	if z >= len(r.Alternatives) {
		z = len(r.Alternatives) - 1
	}
	if z < 0 {
		z = 0
	}
	return z
}

// h12Run executes (or returns cached) the replicated-sites experiment.
func h12Run(cfg Config) (*h12Data, error) {
	cfg = cfg.normalized()
	key := fmt.Sprintf("%d/%d/%v", cfg.Seed, cfg.Clients, cfg.Quick)
	h12Mu.Lock()
	defer h12Mu.Unlock()
	if d, ok := h12Cache[key]; ok {
		return d, nil
	}

	g := webgen.NewGenerator(webgen.Config{Seed: cfg.Seed, NumSites: cfg.Sites})
	pool := g.Pool()
	h1Sites, h2Sites := h12SelectSites(g.Catalog())
	if len(h1Sites) == 0 || len(h2Sites) == 0 {
		return nil, fmt.Errorf("h12: catalog too small to select sites (%d H1, %d H2)", len(h1Sites), len(h2Sites))
	}

	data := &h12Data{}
	for si, site := range append(append([]*webgen.Site(nil), h1Sites...), h2Sites...) {
		isH2 := si >= len(h1Sites)
		home := allRegions[si%len(allRegions)]
		if err := h12RunSite(cfg, site, pool, home, isH2, data); err != nil {
			return nil, err
		}
		data.sites = append(data.sites, h12SiteInfo{
			domain: site.Domain, h2: isH2,
			extHosts:  len(site.ExternalHosts()),
			matchable: matchableFrac(site),
			home:      home,
		})
	}
	h12Cache[key] = data
	return data, nil
}

func matchableFrac(site *webgen.Site) float64 {
	hosts := site.ExternalHosts()
	if len(hosts) == 0 {
		return 0
	}
	var m int
	for _, h := range hosts {
		if site.Fragments[h] != "" {
			m++
		}
	}
	return float64(m) / float64(len(hosts))
}

// h12RunSite runs the 15-load, 3-condition protocol for one site and
// appends results to data.
func h12RunSite(cfg Config, site *webgen.Site, pool []webgen.Provider, home netsim.Region, isH2 bool, data *h12Data) error {
	net := netsim.NewNetwork()
	assets, err := registerSiteWorld(net, site, pool, home)
	if err != nil {
		return err
	}
	ruleSet := webgen.BuildRules(site, mirrorZones)
	engine, err := core.NewEngine(ruleSet,
		// MinViolations is the paper's own example policy knob: switching
		// providers is not free, so a rule activates only once its server
		// has violated repeatedly for this user. Four violations filters
		// one-off statistical MAD flags while letting genuinely degraded
		// or client-specific-bad providers through within a few loads.
		core.WithPolicy(core.Policy{SelectAlternative: zoneSelector, MinViolations: 5}),
		core.WithScriptFetcher(assets),
	)
	if err != nil {
		return err
	}

	// Reverse map: any mirrored host -> its default host.
	toDefault := make(map[string]string)
	for _, h := range site.ExternalHosts() {
		for _, zone := range mirrorZones {
			toDefault[webgen.MirrorHost(h, zone)] = h
		}
	}
	hostOf := func(h string) string {
		if d, ok := toDefault[h]; ok {
			return d
		}
		return h
	}
	ruleHost := func(r *rules.Rule) string { return strings.TrimPrefix(r.ID, "swap-") }

	page := site.Index()

	// forcedHTML per zone: every rule applied with that zone's replica.
	forcedHTML := make([]string, len(mirrorZones))
	for z := range mirrorZones {
		acts := make([]rules.Activation, 0, len(ruleSet))
		for _, r := range ruleSet {
			acts = append(acts, rules.Activation{Rule: r, AltIndex: z})
		}
		forcedHTML[z], _ = rules.Apply(page.HTML, page.Path, acts)
	}

	type perRule struct {
		defMs      float64 // summed default-condition object time
		forcedMs   float64 // summed forced-condition object time
		defN       int
		forcedN    int
		oakMs      float64 // oak-condition time while rule active
		oakN       int
		correct    int // loads where oak state matched the oracle
		decisions  int
		activeHist []bool // per-load active state (post-report loads)
	}
	// state[client][ruleID]
	state := make([]map[string]*perRule, cfg.Clients)
	for ci := range state {
		state[ci] = make(map[string]*perRule)
		for _, r := range ruleSet {
			state[ci][r.ID] = &perRule{}
		}
	}

	start := time.Date(2026, 4, 6, 8, 0, 0, 0, time.UTC)
	for li := 0; li < h12Loads; li++ {
		at := start.Add(time.Duration(li) * h12Interval)
		clock := netsim.NewVirtualClock(at)
		for ci := 0; ci < cfg.Clients; ci++ {
			id := clientID(ci, cfg.Clients)
			sc := &client.SimClient{
				ID: id, Region: clientRegion(ci, cfg.Clients),
				Net: net, Assets: assets, Clock: clock,
			}
			zone := zoneOf(clientRegion(ci, cfg.Clients))

			defRes, err := sc.Load(site, page, page.HTML)
			if err != nil {
				return err
			}
			forcedRes, err := sc.Load(site, page, forcedHTML[zone])
			if err != nil {
				return err
			}
			activeNow := make(map[string]bool)
			for _, a := range engine.ActiveRules(id, page.Path) {
				activeNow[a.Rule.ID] = true
			}
			oakHTML, _ := engine.ModifyPage(id, page.Path, page.HTML)
			oakRes, err := sc.Load(site, page, oakHTML)
			if err != nil {
				return err
			}
			if _, err := engine.HandleReport(oakRes.Report); err != nil {
				return err
			}

			// Attribute per-host times for each condition.
			sum := func(rep *client.LoadResult) map[string]float64 {
				m := make(map[string]float64)
				for _, e := range rep.Report.Entries {
					m[hostOf(e.Host())] += e.DurationMillis
				}
				return m
			}
			defTimes, forcedTimes, oakTimes := sum(defRes), sum(forcedRes), sum(oakRes)

			for _, r := range ruleSet {
				pr := state[ci][r.ID]
				h := ruleHost(r)
				if t, ok := defTimes[h]; ok {
					pr.defMs += t
					pr.defN++
				}
				if t, ok := forcedTimes[h]; ok {
					pr.forcedMs += t
					pr.forcedN++
				}
				if li >= 1 { // post-report loads carry Oak decisions
					pr.activeHist = append(pr.activeHist, activeNow[r.ID])
					if activeNow[r.ID] {
						if t, ok := oakTimes[h]; ok {
							pr.oakMs += t
							pr.oakN++
						}
					}
				}
			}
		}
	}

	// Oracle + correctness + ratios.
	for ci := 0; ci < cfg.Clients; ci++ {
		closeBy := clientRegion(ci, cfg.Clients) == home
		for _, r := range ruleSet {
			pr := state[ci][r.ID]
			if pr.defN == 0 || pr.forcedN == 0 {
				continue
			}
			oracleEnable := pr.forcedMs/float64(pr.forcedN) < pr.defMs/float64(pr.defN)
			// Figure 12 evaluates the choices Oak actually made: decisions
			// on rules it activated at least once, judged from the first
			// activation onward (before that, Oak had no information about
			// the alternate — the paper's "experiential approach").
			firstActive := -1
			for i, a := range pr.activeHist {
				if a {
					firstActive = i
					break
				}
			}
			if firstActive < 0 {
				continue
			}
			var correct, decisions int
			for _, a := range pr.activeHist[firstActive:] {
				decisions++
				if a == oracleEnable {
					correct++
				}
			}
			if decisions == 0 {
				continue
			}
			pair := h12Pair{
				h2: isH2, close: closeBy,
				correctFrac: float64(correct) / float64(decisions),
				activated:   true,
			}
			if pr.oakN > 0 {
				oakMean := pr.oakMs / float64(pr.oakN)
				defMean := pr.defMs / float64(pr.defN)
				if oakMean > 0 {
					pair.ratio = defMean / oakMean
				}
			}
			data.pairs = append(data.pairs, pair)
		}
	}

	// Ledger: per-rule user fractions for this site.
	for _, st := range engine.Ledger().Stats() {
		data.ruleUserFrac = append(data.ruleUserFrac, st.UserFraction)
		data.ruleStats = append(data.ruleStats, st)
	}
	lat := engine.Latencies()
	data.ingest = data.ingest.Merge(lat.Ingest)
	data.rewrite = data.rewrite.Merge(lat.Rewrite)
	return nil
}

// conditionName labels the four experiment conditions.
func conditionName(h2, close bool) string {
	class := "H1"
	if h2 {
		class = "H2"
	}
	loc := "Far"
	if close {
		loc = "Close"
	}
	return class + "-" + loc
}

// runTable2 — the selected H1/H2 sites.
func runTable2(cfg Config) (*FigureResult, error) {
	data, err := h12Run(cfg)
	if err != nil {
		return nil, err
	}
	table := Table{
		Title:  "selected sites for low (H1) and high (H2) expected improvement",
		Header: []string{"site", "class", "external hosts", "match rate", "home region"},
	}
	for _, s := range data.sites {
		class := "H1"
		if s.h2 {
			class = "H2"
		}
		table.Rows = append(table.Rows, []string{
			s.domain, class, fmt.Sprintf("%d", s.extHosts),
			fmt.Sprintf("%.2f", s.matchable), string(s.home),
		})
	}
	return &FigureResult{
		ID:     "table2",
		Title:  "Selected sites (paper: 5 sites with 5-15 external hosts, 5 with >15)",
		Tables: []Table{table},
	}, nil
}

// runFig12 — fraction of correct rule choices per condition. Paper: ~80 %
// of H1 choices and ~74 % of H2 choices are entirely correct.
func runFig12(cfg Config) (*FigureResult, error) {
	data, err := h12Run(cfg)
	if err != nil {
		return nil, err
	}
	result := &FigureResult{
		ID:    "fig12",
		Title: "Fraction of correct rule choices, by condition",
	}
	summary := Table{
		Title:  "summary (fraction of (client,rule) pairs fully correct)",
		Header: []string{"condition", "paper", "measured"},
	}
	paper := map[string]string{
		"H1-Close": "~0.80", "H1-Far": "~0.80", "H2-Close": "~0.74", "H2-Far": "~0.74",
	}
	for _, h2 := range []bool{false, true} {
		for _, close := range []bool{true, false} {
			var fracs []float64
			var fullyCorrect, n int
			for _, p := range data.pairs {
				if p.h2 != h2 || p.close != close {
					continue
				}
				fracs = append(fracs, p.correctFrac)
				n++
				if p.correctFrac >= 1 {
					fullyCorrect++
				}
			}
			name := conditionName(h2, close)
			if len(fracs) == 0 {
				continue
			}
			result.Series = append(result.Series, CDFSeries("correct-"+name, fracs, 15))
			summary.Rows = append(summary.Rows, []string{
				name, paper[name], fmt.Sprintf("%.2f (n=%d)", float64(fullyCorrect)/float64(n), n),
			})
		}
	}
	result.Tables = []Table{summary, latencyTable(data.ingest, data.rewrite)}
	return result, nil
}

// runFig13 — default/Oak object-time ratio for protected objects with
// active rules. Paper improvement fractions: H1-Close 57 %, H1-Far 66 %,
// H2-Close 80 %, H2-Far 77 %.
func runFig13(cfg Config) (*FigureResult, error) {
	data, err := h12Run(cfg)
	if err != nil {
		return nil, err
	}
	result := &FigureResult{
		ID:    "fig13",
		Title: "Default/Oak object time ratio for Oak-protected objects with active rules",
	}
	summary := Table{
		Title:  "summary (fraction of cases improved, ratio > 1)",
		Header: []string{"condition", "paper", "measured"},
	}
	paper := map[string]string{
		"H1-Close": "0.57", "H1-Far": "0.66", "H2-Close": "0.80", "H2-Far": "0.77",
	}
	for _, h2 := range []bool{false, true} {
		for _, close := range []bool{true, false} {
			var ratios []float64
			var improved int
			for _, p := range data.pairs {
				if p.h2 != h2 || p.close != close || !p.activated || p.ratio == 0 {
					continue
				}
				ratios = append(ratios, p.ratio)
				if p.ratio > 1 {
					improved++
				}
			}
			name := conditionName(h2, close)
			if len(ratios) == 0 {
				continue
			}
			result.Series = append(result.Series, CDFSeries("ratio-"+name, ratios, 15))
			summary.Rows = append(summary.Rows, []string{
				name, paper[name],
				fmt.Sprintf("%.2f (n=%d)", float64(improved)/float64(len(ratios)), len(ratios)),
			})
		}
	}
	result.Tables = []Table{summary}
	return result, nil
}

// runFig14 — cumulative rule activation by fraction of a site's users.
// Paper: 80 % of rules never account for more than 18 % of their site's
// activations.
func runFig14(cfg Config) (*FigureResult, error) {
	data, err := h12Run(cfg)
	if err != nil {
		return nil, err
	}
	if len(data.ruleUserFrac) == 0 {
		return nil, fmt.Errorf("fig14: no rule activations recorded")
	}
	cdf := stats.NewCDF(data.ruleUserFrac)
	at18 := cdf.At(0.18)
	return &FigureResult{
		ID:     "fig14",
		Title:  "CDF of rules by fraction of users activating them",
		Series: []Series{CDFSeries("user-fraction", data.ruleUserFrac, 21)},
		Tables: []Table{{
			Title:  "summary",
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"rules with <=18% of users", "~0.80", fmt.Sprintf("%.2f", at18)},
			},
		}},
	}, nil
}

// runTable3 — example individual (<18 % of activations) vs common (>18 %)
// provider domains.
func runTable3(cfg Config) (*FigureResult, error) {
	data, err := h12Run(cfg)
	if err != nil {
		return nil, err
	}
	var individual, common []core.RuleStat
	for _, st := range data.ruleStats {
		if st.UserFraction > 0.18 {
			common = append(common, st)
		} else if st.Users > 0 {
			individual = append(individual, st)
		}
	}
	sort.Slice(common, func(i, j int) bool { return common[i].UserFraction > common[j].UserFraction })
	sort.Slice(individual, func(i, j int) bool { return individual[i].UserFraction < individual[j].UserFraction })

	table := Table{
		Title:  "individual vs common problem providers",
		Header: []string{"individual (<18%)", "common (>18%)"},
	}
	trim := func(st core.RuleStat) string {
		return fmt.Sprintf("%s (%.0f%%)", strings.TrimPrefix(st.RuleID, "swap-"), 100*st.UserFraction)
	}
	for i := 0; i < 5; i++ {
		var left, right string
		if i < len(individual) {
			left = trim(individual[i])
		}
		if i < len(common) {
			right = trim(common[i])
		}
		if left == "" && right == "" {
			break
		}
		table.Rows = append(table.Rows, []string{left, right})
	}
	return &FigureResult{
		ID:     "table3",
		Title:  "Examples of individually vs commonly activated rules",
		Tables: []Table{table},
		Notes: []string{fmt.Sprintf("%d individual rules, %d common rules across the ten sites",
			len(individual), len(common))},
	}, nil
}
