package experiment

import (
	"fmt"
	"hash/fnv"
	"time"

	"oak/internal/netsim"
	"oak/internal/webgen"
)

// The shared world model: how provider hosts become simulated servers.
//
// Server properties derive deterministically from the host name, so the
// same provider behaves identically across sites and experiments (the way a
// real third-party service would), without any global mutable state.

// hostHash gives a stable 64-bit hash of a host name.
func hostHash(host string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(host))
	return h.Sum64()
}

// pick returns a deterministic pseudo-uniform float in [0,1) derived from
// the host and a salt, independent across salts.
func pick(host string, salt string) float64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(host))
	_, _ = h.Write([]byte{0})
	_, _ = h.Write([]byte(salt))
	return float64(h.Sum64()%1_000_000) / 1_000_000
}

// providerHealth classifies a provider's long-term behaviour.
type providerHealth int

const (
	healthGood providerHealth = iota
	// healthDegraded: persistently slow (long-term misconfiguration or
	// overload — the stable half of the paper's Figure 3 outliers).
	healthDegraded
	// healthDiurnal: fine at night, badly loaded during the day (the
	// time-varying behaviour behind Figure 11).
	healthDiurnal
)

// healthOf classifies a host. Ads/analytics/social providers degrade far
// more often — that is exactly the paper's Table 1 finding, so the
// calibration bakes it in as ground truth and the experiments re-derive it.
// The mega-popular providers (doubleclick, facebook, fonts) stay healthy:
// they still top the outlier-occurrence ranking through sheer volume of
// appearances plus per-load statistical flags, which is how the paper's
// Table 1 is populated; persistent degradation lives in the long tail.
func healthOf(host string, pool []webgen.Provider) providerHealth {
	var prov *webgen.Provider
	for i := range pool {
		if pool[i].Host == host {
			prov = &pool[i]
			break
		}
	}
	if prov == nil {
		// Mirrors, origins and other unknown hosts are healthy by design.
		return healthGood
	}
	adsy := prov.Category == webgen.CategoryAds ||
		prov.Category == webgen.CategoryAnalytics ||
		prov.Category == webgen.CategorySocial
	p := pick(host, "health")

	// Diurnal overload can hit any provider below the mega tier.
	if prov.Popularity < 15 {
		diu := 0.01
		if adsy {
			diu = 0.06
		}
		if p >= 0.30 && p < 0.30+diu {
			return healthDiurnal
		}
	}
	// Persistent degradation only in the long tail of small providers.
	if prov.Popularity < 8 {
		deg := 0.012
		if adsy {
			deg = 0.30
		}
		if p < deg {
			return healthDegraded
		}
	}
	return healthGood
}

// regions used to place providers.
var allRegions = []netsim.Region{netsim.NorthAmerica, netsim.Europe, netsim.Asia}

// serverForHost builds the simulated server for a provider host. homeRegion
// overrides placement when non-empty (used by the replicated-sites
// experiment, whose sites are regional).
func serverForHost(host string, pool []webgen.Provider, homeRegion netsim.Region) *netsim.Server {
	region := allRegions[hostHash(host)%3]
	if homeRegion != "" {
		region = homeRegion
	}
	srv := &netsim.Server{
		Addr:         "srv-" + host,
		Hosts:        []string{host},
		Region:       region,
		Anycast:      pick(host, "anycast") < 0.99,
		ProcLatency:  time.Duration(5+pick(host, "proc")*15) * time.Millisecond,
		BandwidthBps: 450e3 + pick(host, "bw")*200e3,
		JitterFrac:   0.08 + pick(host, "jit")*0.08,
	}
	switch healthOf(host, pool) {
	case healthDegraded:
		srv.ProcLatency += time.Duration(300+pick(host, "slow")*900) * time.Millisecond
		srv.BandwidthBps /= 6
	case healthDiurnal:
		srv.Load = netsim.DiurnalLoad{
			Peak:      6 + pick(host, "peak")*8,
			PeakHour:  10 + pick(host, "hour")*8,
			UTCOffset: time.Duration(hostHash(host)%24) * time.Hour,
		}
	}
	return srv
}

// mirrorServer builds a healthy, well-provisioned replica server in a zone.
// Mirrors model "an alternate provider, which may present clients with
// reasonably close replicas" — deliberately clean so experiments measure
// Oak's decisions, not mirror luck.
func mirrorServer(host string, zone string) *netsim.Server {
	region := netsim.NorthAmerica
	switch zone {
	case "eu":
		region = netsim.Europe
	case "as":
		region = netsim.Asia
	}
	return &netsim.Server{
		Addr:         "srv-" + host,
		Hosts:        []string{host},
		Region:       region,
		ProcLatency:  18 * time.Millisecond,
		BandwidthBps: 550e3,
		JitterFrac:   0.10,
	}
}

// mirrorZones are the three replica zones of Section 5.3.
var mirrorZones = []string{"na", "eu", "as"}

// zoneOf maps a region to its mirror-zone index.
func zoneOf(r netsim.Region) int {
	switch r {
	case netsim.Europe:
		return 1
	case netsim.Asia:
		return 2
	default:
		return 0
	}
}

// clientRegion distributes vantage points like the paper's: half in North
// America, the rest split between Europe and Asia.
func clientRegion(i, total int) netsim.Region {
	half := (total + 1) / 2
	if i < half {
		return netsim.NorthAmerica
	}
	rest := i - half
	if rest%2 == 0 {
		return netsim.Europe
	}
	return netsim.Asia
}

// clientID encodes the region so engine policies can steer users to their
// closest mirror without a side channel.
func clientID(i, total int) string {
	return fmt.Sprintf("%s-client-%02d", clientRegion(i, total), i)
}

// regionOfClientID parses the region back out of a client ID.
func regionOfClientID(id string) netsim.Region {
	switch {
	case len(id) >= 2 && id[:2] == "EU":
		return netsim.Europe
	case len(id) >= 2 && id[:2] == "AS":
		return netsim.Asia
	default:
		return netsim.NorthAmerica
	}
}

// registerSiteWorld registers default servers for every host of the site
// (providers per their deterministic profile, origin healthy in its home
// region) and mirror servers in all zones. It returns the assets extended
// with the mirrors.
func registerSiteWorld(net *netsim.Network, site *webgen.Site, pool []webgen.Provider, homeRegion netsim.Region) (*webgen.Assets, error) {
	net.SetPathVariation(2.0)
	origin := &netsim.Server{
		Addr:         "srv-" + site.Domain,
		Hosts:        []string{site.Domain},
		Region:       homeRegion,
		Anycast:      true,
		ProcLatency:  8 * time.Millisecond,
		BandwidthBps: 800e3,
		JitterFrac:   0.08,
	}
	if homeRegion == "" {
		origin.Region = allRegions[hostHash(site.Domain)%3]
	}
	if err := net.AddServer(origin); err != nil {
		return nil, err
	}
	for _, h := range site.ExternalHosts() {
		if err := net.AddServer(serverForHost(h, pool, homeRegion)); err != nil {
			return nil, err
		}
	}
	assets := webgen.NewAssets(site)
	assets.AddMirrors(site, mirrorZones)
	for _, h := range site.ExternalHosts() {
		for _, zone := range mirrorZones {
			mh := webgen.MirrorHost(h, zone)
			if err := net.AddServer(mirrorServer(mh, zone)); err != nil {
				return nil, err
			}
		}
	}
	return assets, nil
}
