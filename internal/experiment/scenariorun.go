package experiment

// The scenario runtime: compile a validated ScenarioSpec into a seeded
// simulation — webgen catalog, netsim network with healthy baseline servers
// (ground truth is *injected*, never emergent), mirror replicas, one Oak
// engine per site — then drive every client through the full loop
// (ModifyPage → simulated load → report → HandleReport) round by round while
// applying the fault schedule, and score the engine's decisions against the
// schedule itself.
//
// Everything is deterministic per (spec, seed): the virtual clock replaces
// wall time, netsim jitter is hash-derived, report loss is hash-derived, and
// the admission queue runs in virtual time. The same spec produces the same
// report bytes on every run, which is what lets verify.sh gate on the
// numbers.

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/faultinject"
	"oak/internal/htmlscan"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/rules"
	"oak/internal/webgen"
)

// groundTruthFactor is the diurnal load factor at or above which a provider
// counts as degraded for scoring purposes.
const groundTruthFactor = 2.0

// blackoutDelay / blackoutTputFactor are the severity of a blackout fault:
// far beyond any detection threshold, the way a dead or routed-around
// provider looks to a client that still waits it out.
const (
	blackoutDelay      = 8 * time.Second
	blackoutTputFactor = 50.0
)

// categoryAliases maps spec-friendly category keys to webgen categories.
var categoryAliases = map[string][]webgen.Category{
	"ads":       {webgen.CategoryAds},
	"analytics": {webgen.CategoryAnalytics},
	"social":    {webgen.CategorySocial},
	"cdn":       {webgen.CategoryCDN},
	"fonts":     {webgen.CategoryFonts},
	"video":     {webgen.CategoryVideo},
	"images":    {webgen.CategoryImages},
	// tracking = the adPerf third-party set: ads + analytics + social.
	"tracking": {webgen.CategoryAds, webgen.CategoryAnalytics, webgen.CategorySocial},
}

// scenarioWorld is the compiled simulation state of one run.
type scenarioWorld struct {
	spec  *ScenarioSpec
	net   *netsim.Network
	clock *netsim.VirtualClock
	start time.Time

	sites   []*webgen.Site
	assets  []*webgen.Assets
	rules   [][]*rules.Rule
	engines []*core.Engine
	pool    []webgen.Provider

	// mitigates caches, per (site, rule), the default-provider hosts an
	// activation of that rule steers away from.
	mitigates map[siteRule][]string

	// providerHosts is the sorted union of external hosts across sites;
	// matchable marks hosts some site's rule can redirect.
	providerHosts []string
	matchable     map[string]bool

	// degradedRounds maps a server host (default provider or mirror) to the
	// sorted rounds during which it is degraded — the run's ground truth.
	degradedRounds map[string][]int
	// mirrorFault marks hosts degraded as mirrors (guard territory; they
	// never count against activation precision).
	mirrorFault map[string]bool
	// firstMirrorFaultRound is the earliest round any mirror fault starts
	// (-1 when none) — the zero point for reports-to-first-trip.
	firstMirrorFaultRound int

	// lossWindows are the compiled reportloss faults.
	lossWindows []lossWindow
	// restarts are the compiled restart faults, sorted by round.
	restarts []restartEvent
}

type lossWindow struct {
	from, to int
	rate     float64
}

type restartEvent struct {
	atLoad  int
	corrupt string
}

type siteRule struct {
	site int
	rule string
}

// ruleMitigates returns the default-provider hosts an activation of the
// rule steers away from: hosts referenced by the rule's default text plus
// hosts referenced by the loader scripts that text includes — the same
// match surface the engine ties rules to servers with. With webgen's shared
// loader scripts one rule can mitigate several providers at once, so scoring
// an activation against only its trigger server would under-credit it.
func (w *scenarioWorld) ruleMitigates(si int, ruleID string) []string {
	key := siteRule{site: si, rule: ruleID}
	if hosts, ok := w.mitigates[key]; ok {
		return hosts
	}
	var rl *rules.Rule
	for _, r := range w.rules[si] {
		if r.ID == ruleID {
			rl = r
			break
		}
	}
	var hosts []string
	if rl != nil {
		seen := make(map[string]bool)
		for _, h := range rl.DefaultHosts() {
			if !seen[h] {
				seen[h] = true
				hosts = append(hosts, h)
			}
		}
		for _, src := range rl.ScriptSrcs() {
			body, ok := w.assets[si].Scripts[src]
			if !ok {
				continue
			}
			for _, u := range htmlscan.URLsInText(body) {
				if h := htmlscan.HostOf(u); h != "" && !seen[h] {
					seen[h] = true
					hosts = append(hosts, h)
				}
			}
		}
	}
	w.mitigates[key] = hosts
	return hosts
}

// scenarioTime maps a load round to its virtual instant.
func (w *scenarioWorld) scenarioTime(round int) time.Time {
	return w.start.Add(time.Duration(round) * time.Duration(w.spec.IntervalMinutes) * time.Minute)
}

// degradedAt reports whether a server host is degraded at the given round.
func (w *scenarioWorld) degradedAt(host string, round int) bool {
	for _, r := range w.degradedRounds[host] {
		if r == round {
			return true
		}
		if r > round {
			return false
		}
	}
	return false
}

// addDegradedRounds merges [from, to) into a host's ground-truth round set.
func (w *scenarioWorld) addDegradedRounds(host string, from, to int) {
	set := make(map[int]bool, len(w.degradedRounds[host])+to-from)
	for _, r := range w.degradedRounds[host] {
		set[r] = true
	}
	for r := from; r < to; r++ {
		set[r] = true
	}
	merged := make([]int, 0, len(set))
	for r := range set {
		merged = append(merged, r)
	}
	sort.Ints(merged)
	w.degradedRounds[host] = merged
}

// buildScenarioWorld constructs the catalog, network, and engines.
func buildScenarioWorld(spec *ScenarioSpec) (*scenarioWorld, error) {
	w := &scenarioWorld{
		spec:                  spec,
		net:                   netsim.NewNetwork(),
		start:                 time.Date(2026, 4, 6, spec.StartHourUTC, 0, 0, 0, time.UTC),
		matchable:             make(map[string]bool),
		degradedRounds:        make(map[string][]int),
		mirrorFault:           make(map[string]bool),
		firstMirrorFaultRound: -1,
		mitigates:             make(map[siteRule][]string),
	}
	w.clock = netsim.NewVirtualClock(w.start)

	g := webgen.NewGenerator(webgen.Config{
		Seed:             spec.Seed,
		NumSites:         spec.World.Sites,
		PagesPerSite:     spec.World.PagesPerSite,
		MinExternalHosts: spec.World.MinExternalHosts,
		MaxExternalHosts: spec.World.MaxExternalHosts,
		AdsWeight:        spec.World.AdsWeight,
	})
	w.pool = g.Pool()
	w.sites = g.Catalog()
	w.net.SetPathVariation(spec.World.PathVariation)

	hostSet := make(map[string]bool)
	for si, site := range w.sites {
		// Origin: healthy, anycast, home region by hash.
		origin := &netsim.Server{
			Addr:         "srv-" + site.Domain,
			Hosts:        []string{site.Domain},
			Region:       allRegions[hostHash(site.Domain)%3],
			Anycast:      true,
			ProcLatency:  8 * time.Millisecond,
			BandwidthBps: 800e3,
			JitterFrac:   0.08,
		}
		if err := w.net.AddServer(origin); err != nil {
			return nil, err
		}
		// Providers: healthy baseline, deterministic per host. The world
		// model's long-term health classes (world.go) are deliberately NOT
		// applied: a scenario's ground truth is exactly its fault list.
		for _, h := range site.ExternalHosts() {
			if err := w.net.AddServer(scenarioServer(h)); err != nil {
				return nil, err
			}
			hostSet[h] = true
			if site.Fragments[h] != "" {
				w.matchable[h] = true
			}
		}
		assets := webgen.NewAssets(site)
		assets.AddMirrors(site, mirrorZones)
		for _, h := range site.ExternalHosts() {
			for _, zone := range mirrorZones {
				if err := w.net.AddServer(mirrorServer(webgen.MirrorHost(h, zone), zone)); err != nil {
					return nil, err
				}
			}
		}
		w.assets = append(w.assets, assets)
		w.rules = append(w.rules, webgen.BuildRules(site, mirrorZones))
		engine, err := w.buildEngine(si)
		if err != nil {
			return nil, err
		}
		w.engines = append(w.engines, engine)
	}
	for h := range hostSet {
		w.providerHosts = append(w.providerHosts, h)
	}
	sort.Strings(w.providerHosts)
	w.applyClientProfiles()
	return w, nil
}

// applyClientProfiles installs access-link profiles over the client index:
// classes claim their fraction of clients in spec order, lowest index first,
// and any remainder keeps the ideal default link.
func (w *scenarioWorld) applyClientProfiles() {
	n := w.spec.World.Clients
	assigned := 0
	for _, cls := range w.spec.ClientClasses {
		count := int(cls.Fraction*float64(n) + 0.5)
		for i := 0; i < count && assigned < n; i++ {
			w.net.SetClientProfile(clientID(assigned, n), netsim.ClientProfile{
				BandwidthBps:  cls.BandwidthKbps * 1000 / 8,
				LatencyFactor: cls.LatencyFactor,
				JitterFrac:    cls.JitterFrac,
			})
			assigned++
		}
	}
}

// buildEngine constructs (or, after a restart, reconstructs) site si's
// engine from the spec.
func (w *scenarioWorld) buildEngine(si int) (*core.Engine, error) {
	opts := []core.Option{
		core.WithPolicy(core.Policy{
			MinViolations:     w.spec.Engine.MinViolations,
			MADMultiplier:     w.spec.Engine.MADMultiplier,
			SelectAlternative: zoneSelector,
		}),
		core.WithScriptFetcher(w.assets[si]),
		core.WithClock(w.clock.Now),
		// Tracing off: scenario scoring reads AnalysisResults directly, and
		// matrix runs are hot loops.
		core.WithTraceCapacity(0),
	}
	if g := w.spec.Engine.Guard; g != nil && g.Enabled {
		openFor := time.Duration(g.OpenForMinutes) * time.Minute
		if g.OpenForMinutes == 0 {
			openFor = 60 * time.Minute
		}
		opts = append(opts, core.WithGuard(core.GuardConfig{
			TripThreshold:    g.TripThreshold,
			OpenFor:          openFor,
			HalfOpenCanaries: g.HalfOpenCanaries,
			CloseAfter:       g.CloseAfter,
		}))
	}
	if sy := w.spec.Engine.Synthesis; sy != nil && sy.Enabled {
		opts = append(opts, core.WithSynthesis(core.SynthesisConfig{
			Window:             time.Duration(sy.WindowMinutes) * time.Minute,
			DegradeFactor:      sy.DegradeFactor,
			Quantile:           sy.Quantile,
			MinSamples:         sy.MinSamples,
			MinBaselineSamples: sy.MinBaselineSamples,
			MaxProviders:       sy.MaxProviders,
		}))
	}
	return core.NewEngine(w.rules[si], opts...)
}

// scenarioServer builds the healthy baseline server for a provider host,
// with the same deterministic per-host latency/bandwidth spread as the world
// model but none of its emergent degradation — and always anycast. A
// non-anycast provider would be a persistent blind spot for far-region
// clients, i.e. emergent ground truth, and a scenario's ground truth must be
// exactly its fault list.
func scenarioServer(host string) *netsim.Server {
	return &netsim.Server{
		Addr:         "srv-" + host,
		Hosts:        []string{host},
		Region:       allRegions[hostHash(host)%3],
		Anycast:      true,
		ProcLatency:  time.Duration(5+pick(host, "proc")*15) * time.Millisecond,
		BandwidthBps: 450e3 + pick(host, "bw")*200e3,
		JitterFrac:   0.08 + pick(host, "jit")*0.08,
	}
}

// resolveTarget maps a target selector to the afflicted server hosts, in
// sorted order. Zone selectors transpose the selected default providers to
// their replicas in that zone.
func (w *scenarioWorld) resolveTarget(t ScenarioTarget) ([]string, error) {
	var hosts []string
	if len(t.Hosts) > 0 {
		for _, h := range t.Hosts {
			if _, err := w.net.Resolve(h); err != nil {
				return nil, invalidf("target host %q not in the generated world", h)
			}
			hosts = append(hosts, h)
		}
		sort.Strings(hosts)
	} else {
		hosts = append(hosts, w.providerHosts...)
	}
	if t.Category != "" {
		cats, ok := categoryAliases[t.Category]
		if !ok {
			return nil, invalidf("unknown target category %q", t.Category)
		}
		want := make(map[webgen.Category]bool, len(cats))
		for _, c := range cats {
			want[c] = true
		}
		byHost := make(map[string]webgen.Category, len(w.pool))
		for _, p := range w.pool {
			byHost[p.Host] = p.Category
		}
		var kept []string
		for _, h := range hosts {
			if want[byHost[h]] {
				kept = append(kept, h)
			}
		}
		hosts = kept
	}
	if t.Matchable {
		var kept []string
		for _, h := range hosts {
			if w.matchable[h] {
				kept = append(kept, h)
			}
		}
		hosts = kept
	}
	if t.MaxCount > 0 && len(hosts) > t.MaxCount {
		hosts = hosts[:t.MaxCount]
	}
	if t.Zone != "" {
		mirrored := make([]string, len(hosts))
		for i, h := range hosts {
			mirrored[i] = webgen.MirrorHost(h, t.Zone)
		}
		hosts = mirrored
	}
	if len(hosts) == 0 {
		return nil, invalidf("target matched no provider in the generated world")
	}
	return hosts, nil
}

// compileFaults resolves every fault against the world: netsim degradations
// and load models are installed, ground-truth round sets recorded, and
// report-loss / restart schedules extracted.
func (w *scenarioWorld) compileFaults() error {
	for i, f := range w.spec.Faults {
		what := fmt.Sprintf("faults[%d] (%s)", i, f.Type)
		switch f.Type {
		case FaultDegrade, FaultBlackout:
			to, err := window(f.FromLoad, f.ToLoad, w.spec.Loads, what)
			if err != nil {
				return err
			}
			hosts, err := w.resolveTarget(f.Target)
			if err != nil {
				return fmt.Errorf("%s: %w", what, err)
			}
			extra := time.Duration(f.ExtraDelayMs) * time.Millisecond
			tput := f.TputFactor
			if f.Type == FaultBlackout {
				extra, tput = blackoutDelay, blackoutTputFactor
			}
			for _, h := range hosts {
				w.net.Degrade(netsim.Degradation{
					ServerAddr: "srv-" + h,
					Start:      w.scenarioTime(f.FromLoad),
					End:        w.scenarioTime(to),
					ExtraDelay: extra,
					TputFactor: tput,
				})
				w.addDegradedRounds(h, f.FromLoad, to)
				if f.Target.Zone != "" {
					w.mirrorFault[h] = true
					if w.firstMirrorFaultRound < 0 || f.FromLoad < w.firstMirrorFaultRound {
						w.firstMirrorFaultRound = f.FromLoad
					}
				}
			}
		case FaultDiurnal:
			hosts, err := w.resolveTarget(f.Target)
			if err != nil {
				return fmt.Errorf("%s: %w", what, err)
			}
			model := netsim.DiurnalLoad{Peak: f.Peak, PeakHour: f.PeakHourUTC}
			for _, h := range hosts {
				if err := w.net.SetServerLoad("srv-"+h, model); err != nil {
					return fmt.Errorf("%s: %w", what, err)
				}
				// Ground truth: the rounds whose instant sits at or above
				// the scoring factor on the installed curve.
				for round := 0; round < w.spec.Loads; round++ {
					if model.Factor(w.scenarioTime(round)) >= groundTruthFactor {
						w.addDegradedRounds(h, round, round+1)
					}
				}
				if f.Target.Zone != "" {
					w.mirrorFault[h] = true
				}
			}
		case FaultReportLoss:
			to, err := window(f.FromLoad, f.ToLoad, w.spec.Loads, what)
			if err != nil {
				return err
			}
			w.lossWindows = append(w.lossWindows, lossWindow{from: f.FromLoad, to: to, rate: f.Rate})
		case FaultRestart:
			w.restarts = append(w.restarts, restartEvent{atLoad: f.AtLoad, corrupt: f.Corrupt})
		}
	}
	sort.Slice(w.restarts, func(i, j int) bool { return w.restarts[i].atLoad < w.restarts[j].atLoad })
	return nil
}

// reportLost decides, deterministically per (seed, site, user, round),
// whether a report is dropped by an active reportloss fault.
func (w *scenarioWorld) reportLost(site int, user string, round int) bool {
	for _, lw := range w.lossWindows {
		if round < lw.from || round >= lw.to {
			continue
		}
		key := fmt.Sprintf("loss/%d/%d/%s/%d", w.spec.Seed, site, user, round)
		if pick(key, "drop") < lw.rate {
			return true
		}
	}
	return false
}

// pendingReport is one report waiting in the admission queue.
type pendingReport struct {
	site    int
	rep     *report.Report
	retries int
}

// scenarioScore accumulates decision-quality bookkeeping across the run.
type scenarioScore struct {
	trueActivations  int
	falseActivations int
	// detected maps (site, user, host) → round of first true activation.
	detected map[pairKey]int

	pageLoads     int
	degradedLoads int
	pltSumMs      float64

	submitted, processed, shed, retries, dropped, lost int
	restarts, recoveries                               int
	firstTripRound, tripsBeforeFault                   int
}

type pairKey struct {
	site int
	user string
	host string
}

// RunScenario executes one validated spec end-to-end and scores the result.
// The spec must have passed Validate (ParseScenario / LoadScenario* return
// validated specs).
func RunScenario(spec *ScenarioSpec) (*ScenarioResult, error) {
	w, err := buildScenarioWorld(spec)
	if err != nil {
		return nil, err
	}
	if err := w.compileFaults(); err != nil {
		return nil, err
	}

	sc := &scenarioScore{detected: make(map[pairKey]int), firstTripRound: -1}
	var queue, retryNext []pendingReport

	// process runs one report through its site engine and scores the
	// resulting activations against ground truth at the given round.
	process := func(p pendingReport, round int) error {
		res, err := w.engines[p.site].HandleReport(p.rep)
		if err != nil {
			return fmt.Errorf("scenario %s: handle report: %w", spec.Name, err)
		}
		sc.processed++
		for _, ch := range res.Changes {
			if ch.Action != "activate" {
				continue
			}
			// An activation is true when it responds to a real problem:
			// its trigger server is ground-truth degraded (the detection
			// was right, whatever the catalog rule's reach), or the rule's
			// (possibly shared) mitigation surface steers away from a
			// degraded provider. Every degraded provider the activation
			// covers counts as a detected pair.
			credited := false
			mark := func(host string) {
				if !w.degradedAt(host, round) || w.mirrorFault[host] {
					return
				}
				credited = true
				key := pairKey{site: p.site, user: p.rep.UserID, host: host}
				if _, ok := sc.detected[key]; !ok {
					sc.detected[key] = round
				}
			}
			mark(strings.TrimPrefix(ch.Server, "srv-"))
			for _, host := range w.ruleMitigates(p.site, ch.RuleID) {
				mark(host)
			}
			if credited {
				sc.trueActivations++
			} else {
				sc.falseActivations++
				if os.Getenv("OAK_SCEN_DEBUG") != "" {
					fmt.Fprintf(os.Stderr, "DBG false: site=%d user=%s rule=%s server=%s round=%d\n",
						p.site, p.rep.UserID, ch.RuleID, ch.Server, round)
				}
			}
		}
		return nil
	}

	// submit routes a report through loss, then admission (or straight to
	// the engine).
	submit := func(p pendingReport, round int) error {
		sc.submitted++
		if w.reportLost(p.site, p.rep.UserID, round) {
			sc.lost++
			return nil
		}
		if spec.Admission == nil {
			return process(p, round)
		}
		if len(queue) >= spec.Admission.QueueCapacity {
			sc.shed++
			if p.retries < spec.Admission.MaxRetries {
				p.retries++
				sc.retries++
				retryNext = append(retryNext, p)
			} else {
				sc.dropped++
			}
			return nil
		}
		queue = append(queue, p)
		return nil
	}

	// restartEngines snapshots every engine to disk, optionally corrupts the
	// primaries, and reboots fresh engines from the files — the crash path.
	restartEngines := func(ev restartEvent) error {
		dir, err := os.MkdirTemp("", "oak-scenario-")
		if err != nil {
			return fmt.Errorf("scenario %s: restart: %w", spec.Name, err)
		}
		defer os.RemoveAll(dir)
		for si, e := range w.engines {
			path := filepath.Join(dir, fmt.Sprintf("site-%03d.state", si))
			// Two saves: the second rotates the first to .bak, giving the
			// corrupted-primary case something to recover from.
			if err := e.SaveStateFile(path); err != nil {
				return fmt.Errorf("scenario %s: save state: %w", spec.Name, err)
			}
			if err := e.SaveStateFile(path); err != nil {
				return fmt.Errorf("scenario %s: save state: %w", spec.Name, err)
			}
			switch ev.corrupt {
			case "truncate":
				err = faultinject.CorruptFile(path, spec.Seed, faultinject.Truncate)
			case "flip":
				err = faultinject.CorruptFile(path, spec.Seed, faultinject.FlipBytes)
			case "empty":
				err = faultinject.CorruptFile(path, spec.Seed, faultinject.Empty)
			}
			if err != nil {
				return fmt.Errorf("scenario %s: corrupt state: %w", spec.Name, err)
			}
			fresh, err := w.buildEngine(si)
			if err != nil {
				return fmt.Errorf("scenario %s: rebuild engine: %w", spec.Name, err)
			}
			src, err := fresh.LoadStateFile(path)
			if err != nil {
				return fmt.Errorf("scenario %s: reload state: %w", spec.Name, err)
			}
			if src == core.StateBackup {
				sc.recoveries++
			}
			w.engines[si] = fresh
		}
		sc.restarts++
		return nil
	}

	path := "/index.html"
	nextRestart := 0
	for round := 0; round < spec.Loads; round++ {
		for nextRestart < len(w.restarts) && w.restarts[nextRestart].atLoad == round {
			if err := restartEngines(w.restarts[nextRestart]); err != nil {
				return nil, err
			}
			nextRestart++
		}
		mult := 1
		for _, a := range spec.Arrivals {
			to := a.ToLoad
			if to == 0 {
				to = spec.Loads
			}
			if round >= a.FromLoad && round < to && a.Multiplier > mult {
				mult = a.Multiplier
			}
		}
		// Shed reports from last round retry ahead of this round's arrivals.
		if len(retryNext) > 0 {
			pending := retryNext
			retryNext = nil
			for _, p := range pending {
				if err := submit(p, round); err != nil {
					return nil, err
				}
			}
		}
		interval := time.Duration(spec.IntervalMinutes) * time.Minute
		for rep := 0; rep < mult; rep++ {
			at := w.scenarioTime(round).Add(time.Duration(rep) * interval / time.Duration(mult))
			w.clock.Set(at)
			for si, site := range w.sites {
				page := site.Index()
				for ci := 0; ci < spec.World.Clients; ci++ {
					id := clientID(ci, spec.World.Clients)
					engine := w.engines[si]
					active := engine.ActiveRules(id, path)
					html, _ := engine.ModifyPage(id, path, page.HTML)
					sc.pageLoads++
					if w.loadDegraded(si, active, round) {
						sc.degradedLoads++
					}
					sim := &client.SimClient{
						ID: id, Region: clientRegion(ci, spec.World.Clients),
						Net: w.net, Assets: w.assets[si], Clock: w.clock,
					}
					res, err := sim.Load(site, page, html)
					if err != nil {
						return nil, fmt.Errorf("scenario %s: load: %w", spec.Name, err)
					}
					sc.pltSumMs += float64(res.PLT) / float64(time.Millisecond)
					if err := submit(pendingReport{site: si, rep: res.Report}, round); err != nil {
						return nil, err
					}
				}
			}
		}
		// Service phase: drain up to ServiceRate queued reports.
		if spec.Admission != nil {
			n := spec.Admission.ServiceRate
			if n > len(queue) {
				n = len(queue)
			}
			for _, p := range queue[:n] {
				if err := process(p, round); err != nil {
					return nil, err
				}
			}
			queue = append([]pendingReport(nil), queue[n:]...)
		}
		// First-trip clock: trips before the first mirror fault are noise
		// (nothing to mitigate yet); the metric counts from fault start.
		trips := w.breakerTrips()
		if w.firstMirrorFaultRound >= 0 && round < w.firstMirrorFaultRound {
			sc.tripsBeforeFault = trips
		} else if sc.firstTripRound < 0 && trips > sc.tripsBeforeFault {
			sc.firstTripRound = round
		}
	}
	return w.score(sc)
}

// loadDegraded reports whether this page load is served degraded: some
// provider the page depends on is in a fault window with no active
// mitigation for this user, or an active rule steers the user onto a
// degraded mirror.
func (w *scenarioWorld) loadDegraded(si int, active []rules.Activation, round int) bool {
	mitigated := make(map[string]bool, len(active))
	for _, a := range active {
		if a.Rule == nil {
			continue
		}
		zone := altZone(a)
		for _, h := range w.ruleMitigates(si, a.Rule.ID) {
			mitigated[h] = true
			// The rule steers this user onto h's mirror in the selected
			// zone, which may itself be degraded (blackout).
			if zone != "" && w.degradedAt(webgen.MirrorHost(h, zone), round) {
				return true
			}
		}
	}
	for _, h := range w.sites[si].ExternalHosts() {
		if w.degradedAt(h, round) && !w.mirrorFault[h] && !mitigated[h] {
			return true
		}
	}
	return false
}

// altZone maps an activation's selected alternative to its mirror zone
// (webgen builds one alternative per zone, in mirrorZones order).
func altZone(a rules.Activation) string {
	if a.Rule == nil || len(a.Rule.Alternatives) == 0 {
		return ""
	}
	idx := a.AltIndex
	if idx < 0 {
		idx = 0
	}
	if idx >= len(a.Rule.Alternatives) {
		idx = len(a.Rule.Alternatives) - 1
	}
	if idx >= len(mirrorZones) {
		idx = len(mirrorZones) - 1
	}
	return mirrorZones[idx]
}

// breakerTrips sums guard breaker trips across engines.
func (w *scenarioWorld) breakerTrips() int {
	total := 0
	for _, e := range w.engines {
		total += int(e.Metrics().BreakerTrips)
	}
	return total
}

// score assembles the final report and applies the quality gate.
func (w *scenarioWorld) score(sc *scenarioScore) (*ScenarioResult, error) {
	spec := w.spec
	res := &ScenarioResult{
		Name:    spec.Name,
		Title:   spec.Title,
		Seed:    spec.Seed,
		Loads:   spec.Loads,
		Sites:   spec.World.Sites,
		Clients: spec.World.Clients,

		TrueActivations:  sc.trueActivations,
		FalseActivations: sc.falseActivations,

		PageLoads:         sc.pageLoads,
		DegradedPageLoads: sc.degradedLoads,

		ReportsSubmitted: sc.submitted,
		ReportsProcessed: sc.processed,
		ReportsShed:      sc.shed,
		ReportRetries:    sc.retries,
		ReportsDropped:   sc.dropped,
		ReportsLost:      sc.lost,

		Restarts:           sc.restarts,
		StateRecoveries:    sc.recoveries,
		ReportsToFirstTrip: -1,
	}

	// Injured pairs: every (site, client, matchable degraded default host)
	// with at least MinViolations+1 degraded rounds of evidence opportunity.
	minRounds := spec.Engine.MinViolations + 1
	var injured, detected int
	var ttmSum, ttmMax int
	for si, site := range w.sites {
		for _, h := range site.ExternalHosts() {
			if w.mirrorFault[h] || !w.matchable[h] || site.Fragments[h] == "" {
				continue
			}
			rounds := w.degradedRounds[h]
			if len(rounds) < minRounds {
				continue
			}
			for ci := 0; ci < spec.World.Clients; ci++ {
				injured++
				key := pairKey{site: si, user: clientID(ci, spec.World.Clients), host: h}
				dr, ok := sc.detected[key]
				if !ok {
					continue
				}
				detected++
				ttm := degradedRoundsUpTo(rounds, dr)
				ttmSum += ttm
				if ttm > ttmMax {
					ttmMax = ttm
				}
			}
		}
	}
	res.InjuredPairs = injured
	res.DetectedPairs = detected
	res.Recall = ratioOr(detected, injured, 1)
	res.Precision = ratioOr(sc.trueActivations, sc.trueActivations+sc.falseActivations, 1)
	if detected > 0 {
		res.MeanReportsToMitigate = round4(float64(ttmSum) / float64(detected))
		res.MaxReportsToMitigate = ttmMax
	}
	res.DegradedPageFraction = ratioOr(sc.degradedLoads, sc.pageLoads, 0)
	if sc.pageLoads > 0 {
		res.MeanPLTMillis = round4(sc.pltSumMs / float64(sc.pageLoads))
	}

	var modified, trips, rollbacks, blocked uint64
	var popTrips, synthesized, synthBlocked uint64
	for _, e := range w.engines {
		m := e.Metrics()
		modified += m.PagesModified
		trips += m.BreakerTrips
		rollbacks += m.BulkDeactivations
		blocked += m.ActivationsBlocked
		popTrips += m.PopulationTrips
		synthesized += m.SynthesizedActivations
		synthBlocked += m.SynthesisBlocked
	}
	res.PagesModified = int(modified)
	res.BreakerTrips = int(trips)
	res.BulkRollbacks = int(rollbacks)
	res.ActivationsBlocked = int(blocked)
	res.PopulationTrips = int(popTrips)
	res.SynthesizedActivations = int(synthesized)
	res.SynthesisBlocked = int(synthBlocked)
	if sc.firstTripRound >= 0 {
		from := w.firstMirrorFaultRound
		if from < 0 {
			from = 0
		}
		res.ReportsToFirstTrip = sc.firstTripRound - from + 1
	}

	res.applyGate(spec.Expect)
	return res, nil
}

// degradedRoundsUpTo counts the degraded rounds of the contiguous stretch
// containing (and ending at) round r — the reports-to-mitigation clock for a
// detection at r. Detection outside any stretch (late, after recovery)
// counts the whole preceding stretch.
func degradedRoundsUpTo(rounds []int, r int) int {
	// Index of the last degraded round <= r.
	i := sort.SearchInts(rounds, r+1) - 1
	if i < 0 {
		return 1
	}
	n := 1
	for i > 0 && rounds[i-1] == rounds[i]-1 {
		i--
		n++
	}
	return n
}

// ratioOr returns a/b rounded, or def when b is zero.
func ratioOr(a, b int, def float64) float64 {
	if b == 0 {
		return def
	}
	return round4(float64(a) / float64(b))
}
