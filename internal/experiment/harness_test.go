package experiment

import (
	"strings"
	"testing"
)

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2", "fig3", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "table1", "table2", "table3",
	}
	have := make(map[string]bool)
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", Config{}); err == nil {
		t.Error("Run(fig99) = nil error, want error listing known ids")
	}
}

func TestConfigNormalized(t *testing.T) {
	c := Config{}.normalized()
	if c.Sites != 500 || c.Clients != 25 {
		t.Errorf("defaults = %+v, want 500 sites / 25 clients", c)
	}
	q := Config{Quick: true}.normalized()
	if q.Sites > 40 || q.Clients > 9 {
		t.Errorf("quick config too large: %+v", q)
	}
	explicit := Config{Sites: 7, Clients: 3}.normalized()
	if explicit.Sites != 7 || explicit.Clients != 3 {
		t.Errorf("explicit config overridden: %+v", explicit)
	}
}

func TestTableRender(t *testing.T) {
	tab := Table{
		Title:  "t",
		Header: []string{"a", "longer"},
		Rows:   [][]string{{"xxxxx", "y"}},
	}
	out := tab.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 3 {
		t.Fatalf("Render produced %d lines: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "t") {
		t.Errorf("title missing: %q", lines[0])
	}
	// Columns aligned: header and row share the second-column offset.
	if strings.Index(lines[1], "longer") != strings.Index(lines[2], "y") {
		t.Errorf("columns misaligned:\n%q\n%q", lines[1], lines[2])
	}
}

func TestFigureResultRender(t *testing.T) {
	f := &FigureResult{
		ID:     "figX",
		Title:  "demo",
		Series: []Series{CDFSeries("s", []float64{1, 2, 3}, 3)},
		Tables: []Table{{Title: "tab", Header: []string{"h"}, Rows: [][]string{{"v"}}}},
		Notes:  []string{"shape matches"},
	}
	out := f.Render()
	for _, want := range []string{"figX", "demo", "series: s", "tab", "note: shape matches"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestCDFSeries(t *testing.T) {
	s := CDFSeries("x", []float64{0, 10}, 5)
	if s.Name != "x" || len(s.Points) != 5 {
		t.Errorf("CDFSeries = %+v", s)
	}
	if s.Points[4].Y != 1 {
		t.Errorf("last CDF point = %v, want 1", s.Points[4].Y)
	}
}
