package experiment

import (
	"errors"
	"os"
	"strings"
	"testing"
)

// minimalSpec returns a small valid spec document for mutation tests.
func minimalSpec() string {
	return `{
  "version": 1,
  "name": "t",
  "seed": 1,
  "loads": 4,
  "world": {"sites": 1, "clients": 2},
  "faults": []
}`
}

func TestEmbeddedScenariosParse(t *testing.T) {
	names := ScenarioNames()
	if len(names) < 5 {
		t.Fatalf("expected a starter matrix of at least 5 scenarios, got %v", names)
	}
	for _, name := range names {
		spec, err := LoadScenario(name)
		if err != nil {
			t.Fatalf("LoadScenario(%q): %v", name, err)
		}
		if spec.Name != name {
			t.Errorf("scenario %q: spec name %q", name, spec.Name)
		}
		if spec.Version != ScenarioSpecVersion {
			t.Errorf("scenario %q: version %d", name, spec.Version)
		}
		// Validated specs are fully defaulted.
		if spec.IntervalMinutes == 0 || spec.World.Clients == 0 || spec.Engine.MinViolations == 0 {
			t.Errorf("scenario %q: defaults not applied: %+v", name, spec)
		}
	}
}

func TestLoadScenarioUnknownName(t *testing.T) {
	_, err := LoadScenario("no-such-scenario")
	if !errors.Is(err, ErrScenarioUnknown) {
		t.Fatalf("want ErrScenarioUnknown, got %v", err)
	}
}

func TestParseScenarioValid(t *testing.T) {
	spec, err := ParseScenario([]byte(minimalSpec()))
	if err != nil {
		t.Fatalf("ParseScenario: %v", err)
	}
	if spec.IntervalMinutes != 20 || spec.StartHourUTC != 8 {
		t.Errorf("defaults not applied: interval=%d startHour=%d", spec.IntervalMinutes, spec.StartHourUTC)
	}
	if spec.Engine.MinViolations != 2 || spec.Engine.MADMultiplier != 2 {
		t.Errorf("engine defaults not applied: %+v", spec.Engine)
	}
}

// TestParseScenarioHostile feeds malformed and hostile documents and asserts
// each is rejected with the right typed error.
func TestParseScenarioHostile(t *testing.T) {
	mut := func(old, new string) string { return strings.Replace(minimalSpec(), old, new, 1) }
	cases := []struct {
		name string
		doc  string
		want error
	}{
		{"not json", "{", ErrScenarioSpec},
		{"trailing data", minimalSpec() + `{"version": 1}`, ErrScenarioSpec},
		{"unknown field", mut(`"seed": 1,`, `"seed": 1, "bogus": true,`), ErrScenarioSpec},
		{"typo'd floor is not silently ignored", mut(`"faults": []`,
			`"faults": [], "expect": {"minPrecison": 0.9}`), ErrScenarioSpec},
		{"wrong version", mut(`"version": 1`, `"version": 2`), ErrScenarioVersion},
		{"bad name", mut(`"name": "t"`, `"name": "T!"`), ErrScenarioSpec},
		{"zero loads", mut(`"loads": 4`, `"loads": 0`), ErrScenarioSpec},
		{"huge loads", mut(`"loads": 4`, `"loads": 100000`), ErrScenarioSpec},
		{"missing faults", mut(`,
  "faults": []`, ``), ErrScenarioSpec},
		{"unknown fault type", mut(`"faults": []`,
			`"faults": [{"type": "meteor"}]`), ErrScenarioSpec},
		{"degrade without severity", mut(`"faults": []`,
			`"faults": [{"type": "degrade", "target": {"matchable": true}}]`), ErrScenarioSpec},
		{"window beyond run", mut(`"faults": []`,
			`"faults": [{"type": "degrade", "target": {"matchable": true}, "fromLoad": 9, "extraDelayMs": 100}]`), ErrScenarioSpec},
		{"inverted window", mut(`"faults": []`,
			`"faults": [{"type": "degrade", "target": {"matchable": true}, "fromLoad": 2, "toLoad": 1, "extraDelayMs": 100}]`), ErrScenarioSpec},
		{"empty target", mut(`"faults": []`,
			`"faults": [{"type": "blackout", "fromLoad": 1}]`), ErrScenarioSpec},
		{"bad zone", mut(`"faults": []`,
			`"faults": [{"type": "blackout", "fromLoad": 1, "target": {"zone": "mars"}}]`), ErrScenarioSpec},
		{"diurnal peak below threshold", mut(`"faults": []`,
			`"faults": [{"type": "diurnal", "target": {"matchable": true}, "peak": 1.5}]`), ErrScenarioSpec},
		{"reportloss bad rate", mut(`"faults": []`,
			`"faults": [{"type": "reportloss", "fromLoad": 1, "rate": 1.5}]`), ErrScenarioSpec},
		{"restart bad corrupt mode", mut(`"faults": []`,
			`"faults": [{"type": "restart", "atLoad": 2, "corrupt": "shred"}]`), ErrScenarioSpec},
		{"restart at round zero", mut(`"faults": []`,
			`"faults": [{"type": "restart", "atLoad": 0}]`), ErrScenarioSpec},
		{"client class fractions above one", mut(`"world": {"sites": 1, "clients": 2},`,
			`"world": {"sites": 1, "clients": 2},
  "clientClasses": [{"name": "a", "fraction": 0.7}, {"name": "b", "fraction": 0.7}],`), ErrScenarioSpec},
		{"client class without name", mut(`"world": {"sites": 1, "clients": 2},`,
			`"world": {"sites": 1, "clients": 2},
  "clientClasses": [{"fraction": 0.5}],`), ErrScenarioSpec},
		{"admission zero capacity", mut(`"world": {"sites": 1, "clients": 2},`,
			`"world": {"sites": 1, "clients": 2},
  "admission": {"queueCapacity": 0, "serviceRate": 5},`), ErrScenarioSpec},
		{"arrival multiplier out of range", mut(`"world": {"sites": 1, "clients": 2},`,
			`"world": {"sites": 1, "clients": 2},
  "arrivals": [{"fromLoad": 0, "multiplier": 99}],`), ErrScenarioSpec},
		{"negative expect floor", mut(`"faults": []`,
			`"faults": [], "expect": {"minBreakerTrips": -3}`), ErrScenarioSpec},
		{"precision floor above one", mut(`"faults": []`,
			`"faults": [], "expect": {"minPrecision": 1.5}`), ErrScenarioSpec},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ParseScenario([]byte(tc.doc))
			if !errors.Is(err, tc.want) {
				t.Fatalf("want %v, got %v", tc.want, err)
			}
		})
	}
}

func TestParseScenarioOversized(t *testing.T) {
	doc := minimalSpec() + strings.Repeat(" ", maxScenarioSpecBytes)
	if _, err := ParseScenario([]byte(doc)); !errors.Is(err, ErrScenarioSpec) {
		t.Fatalf("oversized spec not rejected: %v", err)
	}
}

// TestScenarioUnknownCategoryRejected exercises target resolution: the
// category alias set is checked against the generated world at compile time.
func TestScenarioUnknownCategoryRejected(t *testing.T) {
	doc := strings.Replace(minimalSpec(), `"faults": []`,
		`"faults": [{"type": "degrade", "target": {"category": "widgets"}, "fromLoad": 1, "extraDelayMs": 100}]`, 1)
	spec, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = RunScenario(spec)
	if !errors.Is(err, ErrScenarioSpec) {
		t.Fatalf("unknown category: want ErrScenarioSpec, got %v", err)
	}
}

// TestScenarioDocsWorkedExample pins the acceptance criterion that
// docs/SCENARIOS.md is sufficient to author a scenario: the worked example
// embedded in the guide must parse, run, and pass its own gate as written.
func TestScenarioDocsWorkedExample(t *testing.T) {
	doc, err := os.ReadFile("../../docs/SCENARIOS.md")
	if err != nil {
		t.Fatalf("read authoring guide: %v", err)
	}
	const open, close = "```json\n", "```"
	start := strings.Index(string(doc), open)
	if start < 0 {
		t.Fatal("docs/SCENARIOS.md has no ```json worked example")
	}
	rest := string(doc)[start+len(open):]
	end := strings.Index(rest, close)
	if end < 0 {
		t.Fatal("worked example fence never closes")
	}
	spec, err := ParseScenario([]byte(rest[:end]))
	if err != nil {
		t.Fatalf("worked example does not parse: %v", err)
	}
	res, err := RunScenario(spec)
	if err != nil {
		t.Fatalf("worked example does not run: %v", err)
	}
	if !res.Pass {
		t.Fatalf("worked example fails its own gate: %v", res.Failures)
	}
}

func TestScenarioUnknownTargetHostRejected(t *testing.T) {
	doc := strings.Replace(minimalSpec(), `"faults": []`,
		`"faults": [{"type": "degrade", "target": {"hosts": ["nonexistent.example"]}, "fromLoad": 1, "extraDelayMs": 100}]`, 1)
	spec, err := ParseScenario([]byte(doc))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	_, err = RunScenario(spec)
	if !errors.Is(err, ErrScenarioSpec) {
		t.Fatalf("unknown host: want ErrScenarioSpec, got %v", err)
	}
}
