package experiment

import (
	"fmt"
	"sort"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/stats"
	"oak/internal/webgen"
)

// The catalog studies of Section 2: Figures 1, 2, 3, 15 and Table 1 are all
// measurements over the Alexa Top 500 from 25 vantage points. Their
// reproduction shares one machinery: generate the catalog, register each
// site's world, load each index from every vantage point, and analyse the
// resulting reports.

func init() {
	register("fig1", runFig1)
	register("fig2", runFig2)
	register("table1", runTable1)
	register("fig3", runFig3)
	register("fig15", runFig15)
}

// catalogStart anchors all catalog measurements mid-morning UTC.
var catalogStart = time.Date(2026, 3, 2, 9, 30, 0, 0, time.UTC)

// runFig1 — CDF of the fraction of objects with non-origin hostnames
// (paper: median 75 %).
func runFig1(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	g := webgen.NewGenerator(webgen.Config{Seed: cfg.Seed, NumSites: cfg.Sites})
	fracs := make([]float64, 0, cfg.Sites)
	for _, site := range g.Catalog() {
		fracs = append(fracs, site.ExternalFraction())
	}
	med, err := stats.Median(fracs)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:     "fig1",
		Title:  "CDF of fraction of objects with non-origin hostnames (Alexa-like catalog)",
		Series: []Series{CDFSeries("external-fraction", fracs, 21)},
		Tables: []Table{{
			Title:  "summary",
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"median external fraction", "0.75", fmt.Sprintf("%.2f", med)},
			},
		}},
	}, nil
}

// outlierScan loads every site's index from every vantage point and counts,
// per site, the servers flagged in a majority of vantage-point measurements.
// Majority voting separates *consistent* outliers (degraded or badly placed
// providers, visible from most of the world) from the one-off statistical
// flags any single MAD pass over ~15 servers produces — with k=2 the
// expected number of single-load flags is ≈1 for any timing distribution,
// so a per-load count would be pure noise. It also returns per-host outlier
// occurrence counts across all measurements (the Table 1 ranking).
func outlierScan(cfg Config, seedOffset int64, at time.Time) (perSite []int, hostCounts map[string]int, pool []webgen.Provider, err error) {
	g := webgen.NewGenerator(webgen.Config{Seed: cfg.Seed + seedOffset, NumSites: cfg.Sites})
	pool = g.Pool()
	hostCounts = make(map[string]int)
	clock := netsim.NewVirtualClock(at)

	for _, site := range g.Catalog() {
		net := netsim.NewNetwork()
		assets, werr := registerSiteWorld(net, site, pool, "")
		if werr != nil {
			return nil, nil, nil, werr
		}
		siteCounts := make(map[string]int)
		for ci := 0; ci < cfg.Clients; ci++ {
			sc := &client.SimClient{
				ID:     clientID(ci, cfg.Clients),
				Region: clientRegion(ci, cfg.Clients),
				Net:    net,
				Assets: assets,
				Clock:  clock,
			}
			page := site.Index()
			res, lerr := sc.Load(site, page, page.HTML)
			if lerr != nil {
				return nil, nil, nil, lerr
			}
			servers := report.GroupByServer(res.Report)
			for _, v := range core.DetectViolators(servers, stats.DefaultMADMultiplier) {
				for _, h := range v.Server.Hosts {
					siteCounts[h]++
					hostCounts[h]++
				}
			}
		}
		var consistent int
		for _, n := range siteCounts {
			if n*2 > cfg.Clients {
				consistent++
			}
		}
		perSite = append(perSite, consistent)
	}
	return perSite, hostCounts, pool, nil
}

// runFig2 — CDF of the number of outliers per site from 25 vantage points
// (paper: >60 % of sites have at least one, ~20 % have 4+).
func runFig2(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	perSite, _, _, err := outlierScan(cfg, 0, catalogStart)
	if err != nil {
		return nil, err
	}
	sample := make([]float64, len(perSite))
	var atLeast1, atLeast4 int
	for i, n := range perSite {
		sample[i] = float64(n)
		if n >= 1 {
			atLeast1++
		}
		if n >= 4 {
			atLeast4++
		}
	}
	total := float64(len(perSite))
	return &FigureResult{
		ID:     "fig2",
		Title:  "CDF of number of outliers per site, 25 vantage points",
		Series: []Series{CDFSeries("outliers-per-site", sample, 15)},
		Tables: []Table{{
			Title:  "summary",
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"sites with >=1 outlier", ">60%", fmt.Sprintf("%.0f%%", 100*float64(atLeast1)/total)},
				{"sites with >=4 outliers", "~20%", fmt.Sprintf("%.0f%%", 100*float64(atLeast4)/total)},
			},
		}},
	}, nil
}

// runTable1 — the most frequently seen outlier domains and their categories
// (paper: ads, analytics and social networking dominate).
func runTable1(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	_, hostCounts, pool, err := outlierScan(cfg, 0, catalogStart)
	if err != nil {
		return nil, err
	}
	type hc struct {
		host  string
		count int
	}
	ranked := make([]hc, 0, len(hostCounts))
	for h, c := range hostCounts {
		ranked = append(ranked, hc{h, c})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].count != ranked[j].count {
			return ranked[i].count > ranked[j].count
		}
		return ranked[i].host < ranked[j].host
	})
	table := Table{
		Title:  "most frequently seen outliers",
		Header: []string{"site", "category", "occurrences"},
	}
	adsy := 0
	top := ranked
	if len(top) > 10 {
		top = top[:10]
	}
	for _, r := range top {
		cat := webgen.CategoryOf(pool, r.host)
		if cat == "" {
			cat = "Origin/Other"
		}
		switch cat {
		case webgen.CategoryAds, webgen.CategoryAnalytics, webgen.CategorySocial:
			adsy++
		}
		table.Rows = append(table.Rows, []string{r.host, string(cat), fmt.Sprintf("%d", r.count)})
	}
	return &FigureResult{
		ID:     "table1",
		Title:  "Most frequently seen outliers and their categories",
		Tables: []Table{table},
		Notes: []string{fmt.Sprintf(
			"paper: ads/analytics/social dominate; measured: %d of top %d", adsy, len(top))},
	}, nil
}

// runFig3 — fraction of outliers which vanished after 1, 2 and 5 days
// (paper: ~52 % churn after one day, then nearly constant).
func runFig3(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()

	// Day 0 measurement, with ephemeral day-specific degradations layered
	// on top of the persistent provider health profile.
	dayOutliers := make([]map[int]map[string]bool, 0, 4) // per day: site -> hosts
	days := []int{0, 1, 2, 5}
	for _, day := range days {
		at := catalogStart.AddDate(0, 0, day)
		perSiteHosts, err := outlierHostsByDay(cfg, at, day)
		if err != nil {
			return nil, err
		}
		dayOutliers = append(dayOutliers, perSiteHosts)
	}

	var series Series
	series.Name = "fraction-vanished"
	table := Table{
		Title:  "summary",
		Header: []string{"interval", "paper (median vanish)", "measured (median vanish)"},
	}
	paperVals := map[int]string{1: "~0.52", 2: "~0.55", 5: "~0.57"}
	for di := 1; di < len(days); di++ {
		var fracs []float64
		for siteIdx, base := range dayOutliers[0] {
			if len(base) == 0 {
				continue
			}
			later := dayOutliers[di][siteIdx]
			var vanished int
			for h := range base {
				if !later[h] {
					vanished++
				}
			}
			fracs = append(fracs, float64(vanished)/float64(len(base)))
		}
		med, err := stats.Median(fracs)
		if err != nil {
			return nil, err
		}
		series.Points = append(series.Points, stats.Point{X: float64(days[di]), Y: med})
		table.Rows = append(table.Rows, []string{
			fmt.Sprintf("%d day(s)", days[di]), paperVals[days[di]], fmt.Sprintf("%.2f", med),
		})
	}
	return &FigureResult{
		ID:     "fig3",
		Title:  "Fraction of outliers which vanished after varying intervals",
		Series: []Series{series},
		Tables: []Table{table},
	}, nil
}

// outlierHostsByDay measures per-site outlier host sets on a given day,
// with that day's ephemeral degradations injected.
func outlierHostsByDay(cfg Config, at time.Time, day int) (map[int]map[string]bool, error) {
	g := webgen.NewGenerator(webgen.Config{Seed: cfg.Seed, NumSites: cfg.Sites})
	pool := g.Pool()
	clock := netsim.NewVirtualClock(at)
	out := make(map[int]map[string]bool)

	for siteIdx, site := range g.Catalog() {
		net := netsim.NewNetwork()
		assets, err := registerSiteWorld(net, site, pool, "")
		if err != nil {
			return nil, err
		}
		// Ephemeral faults: each (host, day) pair independently has a
		// chance of a one-day congestion event. Persistent degradations
		// come from healthOf inside registerSiteWorld.
		for _, h := range site.ExternalHosts() {
			if pick(h, fmt.Sprintf("ephemeral-%d", day)) < 0.22 {
				net.Degrade(netsim.Degradation{
					ServerAddr: "srv-" + h,
					Start:      at.Add(-12 * time.Hour),
					End:        at.Add(12 * time.Hour),
					ExtraDelay: time.Duration(800+pick(h, "edelay")*1700) * time.Millisecond,
				})
			}
		}
		counts := make(map[string]int)
		for ci := 0; ci < cfg.Clients; ci++ {
			sc := &client.SimClient{
				ID:     clientID(ci, cfg.Clients),
				Region: clientRegion(ci, cfg.Clients),
				Net:    net,
				Assets: assets,
				Clock:  clock,
			}
			page := site.Index()
			res, err := sc.Load(site, page, page.HTML)
			if err != nil {
				return nil, err
			}
			for _, v := range core.DetectViolators(report.GroupByServer(res.Report), stats.DefaultMADMultiplier) {
				for _, h := range v.Server.Hosts {
					counts[h]++
				}
			}
		}
		// Majority vote, as in outlierScan: only consistent outliers count.
		hosts := make(map[string]bool)
		for h, n := range counts {
			if n*2 > cfg.Clients {
				hosts[h] = true
			}
		}
		out[siteIdx] = hosts
	}
	return out, nil
}

// runFig15 — report sizes for the catalog (paper: median < 10 KB, worst
// case ~345 KB).
func runFig15(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	g := webgen.NewGenerator(webgen.Config{Seed: cfg.Seed, NumSites: cfg.Sites})
	pool := g.Pool()
	clock := netsim.NewVirtualClock(catalogStart)
	sizes := make([]float64, 0, cfg.Sites)
	for _, site := range g.Catalog() {
		net := netsim.NewNetwork()
		assets, err := registerSiteWorld(net, site, pool, "")
		if err != nil {
			return nil, err
		}
		sc := &client.SimClient{
			ID: "probe", Region: netsim.NorthAmerica, Net: net, Assets: assets, Clock: clock,
		}
		page := site.Index()
		res, err := sc.Load(site, page, page.HTML)
		if err != nil {
			return nil, err
		}
		n, err := res.Report.WireSize()
		if err != nil {
			return nil, err
		}
		sizes = append(sizes, float64(n)/1024) // KB
	}
	med, _ := stats.Median(sizes)
	max, _ := stats.Max(sizes)
	return &FigureResult{
		ID:     "fig15",
		Title:  "Report sizes from the catalog (KB)",
		Series: []Series{CDFSeries("report-kb", sizes, 20)},
		Tables: []Table{{
			Title:  "summary",
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"median report size", "<10 KB", fmt.Sprintf("%.1f KB", med)},
				{"max report size", "345 KB", fmt.Sprintf("%.1f KB", max)},
			},
		}},
	}, nil
}
