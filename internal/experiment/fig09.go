package experiment

import (
	"fmt"
	"math"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/rules"
	"oak/internal/stats"
	"oak/internal/webgen"
)

func init() {
	register("fig9", runFig9)
}

// fig9Delays are the injected delays of Section 5.1 (250 ms – 5 s).
var fig9Delays = []time.Duration{
	250 * time.Millisecond, 500 * time.Millisecond, 750 * time.Millisecond,
	1 * time.Second, 1500 * time.Millisecond, 2 * time.Second,
	2500 * time.Millisecond, 3 * time.Second, 3500 * time.Millisecond,
	4 * time.Second, 5 * time.Second,
}

// fig9Client describes one vantage point. The paper's three clients differ
// in how spread their observed timings are: the campus NA node sees tight
// timings, the Europe node spread ones, the cross-global Asia node very
// spread ones — which is what moves Oak's relative detection threshold.
type fig9Client struct {
	name    string
	region  netsim.Region
	profile netsim.ClientProfile
}

func fig9Clients() []fig9Client {
	return []fig9Client{
		{name: "NA", region: netsim.NorthAmerica,
			profile: netsim.ClientProfile{BandwidthBps: 22e3, JitterFrac: 0.95}},
		{name: "EU", region: netsim.Europe,
			profile: netsim.ClientProfile{BandwidthBps: 5.8e3, LatencyFactor: 3, JitterFrac: 1.0}},
		{name: "AS", region: netsim.Asia,
			profile: netsim.ClientProfile{BandwidthBps: 7.0e3, LatencyFactor: 4, JitterFrac: 0.55}},
	}
}

// fig9Sizes are the "objects of varying sizes" each external server hosts.
var fig9Sizes = []int64{20 * 1024, 40 * 1024, 80 * 1024}

const (
	fig9Servers = 5
	fig9Slow    = 2 // index of the server that receives injected delay
)

// fig9World builds the experiment world: an origin, five North-American
// file servers with distinct base performance, and one healthy alternate
// per file server, plus the page, assets, and Type 2 rules.
type fig9WorldT struct {
	net    *netsim.Network
	site   *webgen.Site
	page   *webgen.Page
	assets *webgen.Assets
	rules  []*rules.Rule
}

func fig9World() (*fig9WorldT, error) {
	net := netsim.NewNetwork()
	site := &webgen.Site{
		Domain:    "fig9-origin.example",
		Scripts:   map[string]string{},
		Fragments: map[string]string{},
	}
	assets := &webgen.Assets{
		Sizes:   map[string]int64{},
		Kinds:   map[string]report.ObjectKind{},
		Scripts: map[string]string{},
	}

	addServer := func(host string, bw float64, proc time.Duration) error {
		return net.AddServer(&netsim.Server{
			Addr: "srv-" + host, Hosts: []string{host},
			Region: netsim.NorthAmerica, ProcLatency: proc,
			BandwidthBps: bw, JitterFrac: 0.05,
		})
	}
	if err := addServer(site.Domain, 400e3, 10*time.Millisecond); err != nil {
		return nil, err
	}

	var (
		html    string
		objects []webgen.Object
		ruleSet []*rules.Rule
	)
	html = "<html><body>\n"
	// Two origin objects.
	for k, size := range []int64{8 * 1024, 30 * 1024} {
		u := fmt.Sprintf("http://%s/o%d.bin", site.Domain, k)
		assets.Sizes[u] = size
		assets.Kinds[u] = report.KindOther
		html += fmt.Sprintf("<img src=%q>\n", u)
		objects = append(objects, webgen.Object{URL: u, Host: site.Domain, SizeBytes: size, Kind: report.KindImage, Tier: webgen.TierDirect})
	}
	for i := 0; i < fig9Servers; i++ {
		host := fmt.Sprintf("file-%d.example", i+1)
		alt := fmt.Sprintf("alt-file-%d.example", i+1)
		// Identically provisioned file servers: the observed spread comes
		// from the client's own path, mirroring the paper's setup where the
		// same delay is visible or invisible purely by client location.
		bw := 300e3
		proc := 20 * time.Millisecond
		if err := addServer(host, bw, proc); err != nil {
			return nil, err
		}
		// Alternates mirror the middle server's healthy profile.
		if err := addServer(alt, 300e3, 20*time.Millisecond); err != nil {
			return nil, err
		}
		var frag, altFrag string
		for k, size := range fig9Sizes {
			u := fmt.Sprintf("http://%s/f%d.bin", host, k)
			au := fmt.Sprintf("http://%s/f%d.bin", alt, k)
			assets.Sizes[u] = size
			assets.Sizes[au] = size
			assets.Kinds[u] = report.KindOther
			assets.Kinds[au] = report.KindOther
			frag += fmt.Sprintf("<img src=%q>\n", u)
			altFrag += fmt.Sprintf("<img src=%q>\n", au)
			objects = append(objects, webgen.Object{URL: u, Host: host, SizeBytes: size, Kind: report.KindImage, Tier: webgen.TierDirect})
		}
		site.Fragments[host] = frag
		html += frag
		ruleSet = append(ruleSet, &rules.Rule{
			ID: "swap-" + host, Type: rules.TypeReplaceSame,
			Default: frag, Alternatives: []string{altFrag}, Scope: "*",
		})
	}
	html += "</body></html>\n"
	page := &webgen.Page{Path: "/index.html", HTML: html, Objects: objects}
	site.Pages = []*webgen.Page{page}
	return &fig9WorldT{net: net, site: site, page: page, assets: assets, rules: ruleSet}, nil
}

// runFig9 — PLT ratio between default and Oak for increasing injected
// delays, per client region. Paper: NA reacts from ~0.75 s, EU above ~2 s,
// AS only at ~5 s.
func runFig9(cfg Config) (*FigureResult, error) {
	cfg = cfg.normalized()
	// 20 iterations per (client, delay) point, as in the paper; the run is
	// cheap enough that Quick mode keeps full fidelity.
	iterations := 20

	result := &FigureResult{
		ID:    "fig9",
		Title: "PLT ratio (default/Oak) vs injected delay, by client region",
	}
	detect := Table{
		Title:  "detection threshold (first delay Oak flags the degraded server in a majority of runs)",
		Header: []string{"client", "paper", "measured"},
	}
	paperThresholds := map[string]string{"NA": "~0.75s", "EU": ">2s", "AS": "~5s"}

	for _, fc := range fig9Clients() {
		var pts, errBars []stats.Point
		threshold := "none"
		for _, delay := range fig9Delays {
			ratios := make([]float64, 0, iterations)
			var detections int
			for it := 0; it < iterations; it++ {
				r, det, err := fig9Iteration(fc, delay, it)
				if err != nil {
					return nil, err
				}
				ratios = append(ratios, r)
				if det {
					detections++
				}
			}
			mean, err := stats.Mean(ratios)
			if err != nil {
				return nil, err
			}
			sd, err := stats.StdDev(ratios)
			if err != nil {
				return nil, err
			}
			pts = append(pts, stats.Point{X: delay.Seconds(), Y: mean})
			errBars = append(errBars, stats.Point{X: delay.Seconds(), Y: sd})
			if threshold == "none" && float64(detections) >= 0.55*float64(iterations) {
				threshold = fmt.Sprintf("%.2fs", delay.Seconds())
			}
		}
		// The paper's Figure 9 plots the mean with standard-deviation error
		// bars; the stddev series carries the bars.
		result.Series = append(result.Series,
			Series{Name: "plt-ratio-" + fc.name, Points: pts},
			Series{Name: "plt-ratio-" + fc.name + "-stddev", Points: errBars})
		detect.Rows = append(detect.Rows, []string{fc.name, paperThresholds[fc.name], threshold})
	}
	result.Tables = []Table{detect}
	return result, nil
}

// fig9Iteration runs one default-vs-Oak comparison for a client and delay,
// returning PLT(default)/PLT(Oak) for the post-report load.
func fig9Iteration(fc fig9Client, delay time.Duration, iteration int) (ratio float64, detected bool, err error) {
	w, err := fig9World()
	if err != nil {
		return 0, false, err
	}
	w.net.SetClientProfile("u-"+fc.name, fc.profile)
	slowHost := fmt.Sprintf("file-%d.example", fig9Slow+1)
	w.net.Degrade(netsim.Degradation{ServerAddr: "srv-" + slowHost, ExtraDelay: delay})

	start := catalogStart.Add(time.Duration(iteration) * 37 * time.Minute)
	clock := netsim.NewVirtualClock(start)
	sc := &client.SimClient{
		ID: "u-" + fc.name, Region: fc.region, Net: w.net, Assets: w.assets, Clock: clock,
	}

	engine, err := core.NewEngine(w.rules)
	if err != nil {
		return 0, false, err
	}
	// Load 1: default page; report feeds Oak.
	res1, err := sc.Load(w.site, w.page, w.page.HTML)
	if err != nil {
		return 0, false, err
	}
	analysis, err := engine.HandleReport(res1.Report)
	if err != nil {
		return 0, false, err
	}
	for _, ch := range analysis.Changes {
		if ch.Action == "activate" && ch.RuleID == "swap-"+slowHost {
			detected = true
		}
	}
	clock.Advance(30 * time.Minute)

	// Load 2, Oak: whatever rules activated now apply.
	oakHTML, _ := engine.ModifyPage(sc.ID, w.page.Path, w.page.HTML)
	oakRes, err := sc.Load(w.site, w.page, oakHTML)
	if err != nil {
		return 0, false, err
	}
	// Load 2, default: same instant, unmodified page.
	defRes, err := sc.Load(w.site, w.page, w.page.HTML)
	if err != nil {
		return 0, false, err
	}
	if oakRes.PLT <= 0 {
		return 0, false, fmt.Errorf("fig9: zero Oak PLT")
	}
	ratio = float64(defRes.PLT) / float64(oakRes.PLT)
	if math.IsNaN(ratio) || math.IsInf(ratio, 0) {
		return 0, false, fmt.Errorf("fig9: bad ratio")
	}
	return ratio, detected, nil
}
