package experiment

import (
	"fmt"
	"sync"
	"time"

	"oak/internal/client"
	"oak/internal/core"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/rules"
	"oak/internal/stats"
	"oak/internal/webgen"
)

func init() {
	register("fig10", runFig10)
	register("fig11", runFig11)
}

// The benchmark-detection experiment of Section 5.2: a page of six object
// sets (30/50/100/500 KB each), one on the origin and five on external
// servers, each paired with an identical alternative set behind a Type 2
// rule. Clients worldwide reload the page every 30 minutes for 72 hours,
// once Oak-enabled and once with rules disabled. Two of the default servers
// are (as the paper discovered mid-experiment) badly behaved, with strongly
// diurnal load.

// fig10Sizes are the per-set object sizes of Section 5.2.
var fig10Sizes = []int64{30 * 1024, 50 * 1024, 100 * 1024, 500 * 1024}

const (
	fig10Sets     = 5 // external sets; set 0 lives on the origin
	fig10Interval = 30 * time.Minute
	fig10Duration = 72 * time.Hour
)

// fig10Data is the shared outcome both figure runners consume.
type fig10Data struct {
	// ratios[cond] lists min/median set-download ratios over all
	// (client, set) pairs; cond 0 = default, 1 = Oak.
	ratios [2][]float64
	// timeline is the per-load-slot mean PLT ratio default/Oak.
	timeline []stats.Point
	// lat holds the engine's ingest/rewrite latency histograms from the
	// Oak condition, surfaced in benchmark output.
	lat core.LatencySnapshots
}

var (
	fig10Mu    sync.Mutex
	fig10Cache = map[string]*fig10Data{}
)

// fig10Run executes (or returns the cached) benchmark-detection run.
func fig10Run(cfg Config) (*fig10Data, error) {
	cfg = cfg.normalized()
	key := fmt.Sprintf("%d/%d/%v", cfg.Seed, cfg.Clients, cfg.Quick)
	fig10Mu.Lock()
	defer fig10Mu.Unlock()
	if d, ok := fig10Cache[key]; ok {
		return d, nil
	}

	duration := fig10Duration
	if cfg.Quick {
		duration = 24 * time.Hour
	}
	loads := int(duration / fig10Interval)

	// --- world ---
	net := netsim.NewNetwork()
	site := &webgen.Site{
		Domain:    "bench-origin.example",
		Scripts:   map[string]string{},
		Fragments: map[string]string{},
	}
	assets := &webgen.Assets{
		Sizes:   map[string]int64{},
		Kinds:   map[string]report.ObjectKind{},
		Scripts: map[string]string{},
	}
	addServer := func(host string, load netsim.LoadModel) error {
		return net.AddServer(&netsim.Server{
			Addr: "srv-" + host, Hosts: []string{host},
			Region: netsim.NorthAmerica, ProcLatency: 20 * time.Millisecond,
			BandwidthBps: 300e3, JitterFrac: 0.10, Load: load,
		})
	}
	// Origin: modest steady noise.
	if err := addServer(site.Domain, netsim.NoisyLoad{Salt: "origin", Mu: 0.2, Sigma: 0.2}); err != nil {
		return nil, err
	}

	var (
		html    string
		objects []webgen.Object
		ruleSet []*rules.Rule
	)
	html = "<html><body>\n"
	addSet := func(host string) (frag string) {
		for k, size := range fig10Sizes {
			u := fmt.Sprintf("http://%s/set%d.bin", host, k)
			assets.Sizes[u] = size
			assets.Kinds[u] = report.KindOther
			frag += fmt.Sprintf("<img src=%q>\n", u)
			objects = append(objects, webgen.Object{
				URL: u, Host: host, SizeBytes: size,
				Kind: report.KindImage, Tier: webgen.TierDirect,
			})
		}
		return frag
	}
	html += addSet(site.Domain)

	for i := 0; i < fig10Sets; i++ {
		host := fmt.Sprintf("bench-%d.example", i+1)
		alt := fmt.Sprintf("alt-bench-%d.example", i+1)
		// All default servers carry PlanetLab-like load noise; two of them
		// (2 and 4) additionally swell badly during the day.
		var load netsim.LoadModel = netsim.NoisyLoad{Salt: host, Mu: 1.4, Sigma: 0.7}
		switch i {
		case 1:
			load = netsim.CombinedLoad{
				netsim.NoisyLoad{Salt: host, Mu: 1.4, Sigma: 0.7},
				netsim.DiurnalLoad{Peak: 6, PeakHour: 14},
			}
		case 3:
			load = netsim.CombinedLoad{
				netsim.NoisyLoad{Salt: host, Mu: 1.4, Sigma: 0.7},
				netsim.DiurnalLoad{Peak: 4, PeakHour: 17},
			}
		}
		if err := addServer(host, load); err != nil {
			return nil, err
		}
		// Alternates were "selected randomly" and happened to be healthy:
		// light steady noise only.
		if err := addServer(alt, netsim.NoisyLoad{Salt: alt, Mu: 0.2, Sigma: 0.2}); err != nil {
			return nil, err
		}
		frag := addSet(host)
		var altFrag string
		for k, size := range fig10Sizes {
			au := fmt.Sprintf("http://%s/set%d.bin", alt, k)
			assets.Sizes[au] = size
			assets.Kinds[au] = report.KindOther
			altFrag += fmt.Sprintf("<img src=%q>\n", au)
		}
		site.Fragments[host] = frag
		html += frag
		ruleSet = append(ruleSet, &rules.Rule{
			ID: "swap-" + host, Type: rules.TypeReplaceSame,
			Default: frag, Alternatives: []string{altFrag}, Scope: "*",
		})
	}
	html += "</body></html>\n"
	page := &webgen.Page{Path: "/index.html", HTML: html, Objects: objects}
	site.Pages = []*webgen.Page{page}

	engine, err := core.NewEngine(ruleSet)
	if err != nil {
		return nil, err
	}

	// --- run ---
	start := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	// setTimes[cond][client][setHost] accumulates per-load set times (ms).
	type setKey struct {
		client int
		host   string
	}
	setTimes := [2]map[setKey][]float64{make(map[setKey][]float64), make(map[setKey][]float64)}
	timeline := make([]stats.Point, 0, loads)

	hostsBySet := append([]string{site.Domain}, func() []string {
		var hs []string
		for i := 0; i < fig10Sets; i++ {
			hs = append(hs, fmt.Sprintf("bench-%d.example", i+1))
		}
		return hs
	}()...)

	for li := 0; li < loads; li++ {
		at := start.Add(time.Duration(li) * fig10Interval)
		clock := netsim.NewVirtualClock(at)
		var ratioSum float64
		var ratioN int
		for ci := 0; ci < cfg.Clients; ci++ {
			sc := &client.SimClient{
				ID:     clientID(ci, cfg.Clients),
				Region: clientRegion(ci, cfg.Clients),
				Net:    net, Assets: assets, Clock: clock,
			}
			// Default condition.
			defRes, err := sc.Load(site, page, page.HTML)
			if err != nil {
				return nil, err
			}
			// Oak condition: serve the user's modified page, then report.
			oakHTML, _ := engine.ModifyPage(sc.ID, page.Path, page.HTML)
			oakRes, err := sc.Load(site, page, oakHTML)
			if err != nil {
				return nil, err
			}
			if _, err := engine.HandleReport(oakRes.Report); err != nil {
				return nil, err
			}

			accumulate := func(cond int, rep *report.Report) {
				perHost := make(map[string]float64)
				for _, e := range rep.Entries {
					perHost[defaultHostOf(e.Host())] += e.DurationMillis
				}
				for _, h := range hostsBySet {
					if total, ok := perHost[h]; ok {
						k := setKey{client: ci, host: h}
						setTimes[cond][k] = append(setTimes[cond][k], total)
					}
				}
			}
			accumulate(0, defRes.Report)
			accumulate(1, oakRes.Report)

			if oakRes.PLT > 0 {
				ratioSum += float64(defRes.PLT) / float64(oakRes.PLT)
				ratioN++
			}
		}
		hours := at.Sub(start).Hours()
		if ratioN > 0 {
			timeline = append(timeline, stats.Point{X: hours, Y: ratioSum / float64(ratioN)})
		}
	}

	data := &fig10Data{timeline: timeline}
	for cond := 0; cond < 2; cond++ {
		for _, times := range setTimes[cond] {
			if len(times) < 4 {
				continue
			}
			r, err := stats.MinMedianRatio(times)
			if err != nil {
				continue
			}
			data.ratios[cond] = append(data.ratios[cond], r)
		}
	}
	data.lat = engine.Latencies()
	fig10Cache[key] = data
	return data, nil
}

// defaultHostOf maps an alternate host back to the default set it serves
// ("alt-bench-2.example" -> "bench-2.example"), so Oak-condition loads
// attribute alternate downloads to the set they replaced.
func defaultHostOf(host string) string {
	const altPrefix = "alt-"
	if len(host) > len(altPrefix) && host[:len(altPrefix)] == altPrefix {
		return host[len(altPrefix):]
	}
	return host
}

// runFig10 — Min/Median set-download ratio CDFs for default and Oak loads.
// Paper: Oak lifts the median ratio from ~0.3 to ~0.7 and pushes 90 % of
// loads above 0.5.
func runFig10(cfg Config) (*FigureResult, error) {
	data, err := fig10Run(cfg)
	if err != nil {
		return nil, err
	}
	defMed, err := stats.Median(data.ratios[0])
	if err != nil {
		return nil, err
	}
	oakMed, err := stats.Median(data.ratios[1])
	if err != nil {
		return nil, err
	}
	oakP10, err := stats.Percentile(data.ratios[1], 0.10)
	if err != nil {
		return nil, err
	}
	return &FigureResult{
		ID:    "fig10",
		Title: "Min/Median set-download ratio, Oak vs default",
		Series: []Series{
			CDFSeries("default", data.ratios[0], 21),
			CDFSeries("oak", data.ratios[1], 21),
		},
		Tables: []Table{{
			Title:  "summary",
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"median ratio, default", "~0.3", fmt.Sprintf("%.2f", defMed)},
				{"median ratio, oak", "~0.7", fmt.Sprintf("%.2f", oakMed)},
				{"oak 10th percentile (90% above)", ">0.5", fmt.Sprintf("%.2f", oakP10)},
			},
		}, latencyTable(data.lat.Ingest, data.lat.Rewrite)},
	}, nil
}

// runFig11 — average PLT ratio (default/Oak) over the 72-hour run. Paper:
// near 1 at night, rising past 10x when the bad default providers get busy
// during the day.
func runFig11(cfg Config) (*FigureResult, error) {
	data, err := fig10Run(cfg)
	if err != nil {
		return nil, err
	}
	var peak, trough float64
	trough = 1e18
	for _, p := range data.timeline {
		if p.Y > peak {
			peak = p.Y
		}
		if p.Y < trough {
			trough = p.Y
		}
	}
	return &FigureResult{
		ID:     "fig11",
		Title:  "Average PLT ratio (default/Oak) over the multi-day run",
		Series: []Series{{Name: "plt-ratio", Points: data.timeline}},
		Tables: []Table{{
			Title:  "summary",
			Header: []string{"metric", "paper", "measured"},
			Rows: [][]string{
				{"peak daytime ratio", ">10x", fmt.Sprintf("%.1fx", peak)},
				{"night-time ratio", "~1x", fmt.Sprintf("%.1fx", trough)},
			},
		}},
	}, nil
}
