package experiment

import (
	"fmt"
	"sort"
	"strings"

	"oak/internal/stats"
)

// Config scales an experiment run. Zero values take paper-scale defaults;
// tests use smaller numbers via Quick.
type Config struct {
	// Seed drives all randomness; a fixed seed reproduces a run exactly.
	Seed int64
	// Sites is the catalog size for catalog-wide studies (default 500).
	Sites int
	// Clients is the number of vantage points (default 25, the paper's).
	Clients int
	// Loads is per-client load count where the paper fixes one (default
	// depends on the experiment).
	Loads int
	// Quick shrinks everything for unit tests and smoke runs.
	Quick bool
}

// normalized applies defaults (and Quick scaling).
func (c Config) normalized() Config {
	if c.Sites <= 0 {
		c.Sites = 500
	}
	if c.Clients <= 0 {
		c.Clients = 25
	}
	if c.Quick {
		if c.Sites > 40 {
			c.Sites = 40
		}
		if c.Clients > 9 {
			c.Clients = 9
		}
	}
	return c
}

// Series is one plotted line: a name plus (x, y) points.
type Series struct {
	Name   string
	Points []stats.Point
}

// CDFSeries renders a sample as an n-point CDF series.
func CDFSeries(name string, sample []float64, n int) Series {
	return Series{Name: name, Points: stats.NewCDF(sample).Points(n)}
}

// Table is a titled text table.
type Table struct {
	Title  string
	Header []string
	Rows   [][]string
}

// Render formats the table with aligned columns.
func (t *Table) Render() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteString("\n")
	}
	writeRow(t.Header)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// FigureResult is the output of one experiment runner.
type FigureResult struct {
	// ID is the experiment identifier ("fig9", "table1", ...).
	ID string
	// Title describes what the paper's figure/table shows.
	Title string
	// Series are plotted lines (for figures).
	Series []Series
	// Tables are text tables (for tables, and summary stats of figures).
	Tables []Table
	// Notes carry headline comparisons against the paper's reported shape.
	Notes []string
}

// Render formats the whole result as text.
func (f *FigureResult) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	for _, s := range f.Series {
		fmt.Fprintf(&b, "\n-- series: %s --\n", s.Name)
		for _, p := range s.Points {
			fmt.Fprintf(&b, "%.4f\t%.4f\n", p.X, p.Y)
		}
	}
	for i := range f.Tables {
		b.WriteString("\n")
		b.WriteString(f.Tables[i].Render())
	}
	if len(f.Notes) > 0 {
		b.WriteString("\n")
		for _, n := range f.Notes {
			fmt.Fprintf(&b, "note: %s\n", n)
		}
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Config) (*FigureResult, error)

// registry maps experiment IDs to runners; see register calls across files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Run executes the experiment with the given ID.
func Run(id string, cfg Config) (*FigureResult, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiment: unknown id %q (have %s)", id, strings.Join(IDs(), ", "))
	}
	return r(cfg)
}

// IDs lists registered experiment IDs, sorted.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}
