// Package client implements Oak-enabled clients: the report-producing half
// of the system that the paper realised as a modified WebKit/PhantomJS.
//
// SimClient executes page loads against the netsim network and a webgen
// asset universe — the substitution used by the experiment harness.
// HTTPClient (httpclient.go) does the same over real net/http connections
// for the integration tests and examples.
//
// Both clients implement the same load semantics: fetch the (possibly
// Oak-rewritten) page, fetch every resource referenced by a src/href
// attribute, fetch every URL named in inline script text, fetch the URLs
// that fetched loader scripts reference (one layer, like a browser executing
// the script), and finally fetch "hidden" objects that dynamic code selects
// at runtime — connections no static analysis of the page can predict.
package client

import (
	"fmt"
	"sort"
	"time"

	"oak/internal/htmlscan"
	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/webgen"
)

// SimClient loads synthetic pages over the simulated network.
type SimClient struct {
	// ID is the client's Oak user identifier (its cookie value).
	ID string
	// Region places the client for propagation delay.
	Region netsim.Region
	// Net is the simulated network all fetches traverse.
	Net *netsim.Network
	// Assets resolves object URLs to sizes/kinds and script URLs to bodies.
	Assets *webgen.Assets
	// Clock supplies the simulated time of each load.
	Clock netsim.Clock
}

// LoadResult is one completed page load.
type LoadResult struct {
	// Report is the performance report the client would POST to Oak.
	Report *report.Report
	// PLT is the effective page load time: the longest dependency chain
	// (loader + dependent object for script-loaded resources, the object
	// itself otherwise).
	PLT time.Duration
}

// Load executes a page load. html is the page markup as delivered (the Oak
// server may have rewritten it); page supplies the ground truth for hidden
// objects, which rules cannot redirect.
func (c *SimClient) Load(site *webgen.Site, page *webgen.Page, html string) (*LoadResult, error) {
	if c.Net == nil || c.Assets == nil {
		return nil, fmt.Errorf("client: SimClient needs Net and Assets")
	}
	now := time.Now()
	if c.Clock != nil {
		now = c.Clock.Now()
	}

	rep := &report.Report{
		UserID:            c.ID,
		Page:              page.Path,
		GeneratedAtUnixMs: now.UnixMilli(),
	}
	fetched := make(map[string]bool)
	// chain tracks the dependency-chain completion time per entry index.
	var chains []time.Duration

	fetch := func(url string, kind report.ObjectKind, prefix time.Duration, initiator string) (time.Duration, error) {
		if fetched[url] {
			return 0, nil
		}
		size, ok := c.Assets.Sizes[url]
		if !ok {
			return 0, fmt.Errorf("client: no such object %q", url)
		}
		host := htmlscan.HostOf(url)
		dur, addr, err := c.Net.Download(netsim.DownloadSpec{
			ClientID:     c.ID,
			ClientRegion: c.Region,
			Host:         host,
			SizeBytes:    size,
			At:           now,
		})
		if err != nil {
			return 0, fmt.Errorf("client: fetch %q: %w", url, err)
		}
		fetched[url] = true
		rep.Entries = append(rep.Entries, report.Entry{
			URL:            url,
			ServerAddr:     addr,
			SizeBytes:      size,
			DurationMillis: float64(dur) / float64(time.Millisecond),
			InitiatorURL:   initiator,
			Kind:           kind,
		})
		chains = append(chains, prefix+dur)
		return dur, nil
	}

	// 1. Direct references (src/href attributes), including loader scripts.
	var scriptURLs []string
	for _, ref := range htmlscan.ExtractRefs(html) {
		if htmlscan.HostOf(ref.URL) == "" {
			continue // relative: part of the origin page itself
		}
		kind := kindForTag(ref.Tag, c.Assets.Kinds[ref.URL])
		dur, err := fetch(ref.URL, kind, 0, "")
		if err != nil {
			return nil, err
		}
		if ref.Tag == "script" && ref.Attr == "src" {
			scriptURLs = append(scriptURLs, ref.URL)
			// 2. Execute fetched loader scripts: fetch what they reference.
			if body, ok := c.Assets.Scripts[ref.URL]; ok {
				for _, u := range htmlscan.URLsInText(body) {
					if _, err := fetch(u, c.Assets.Kinds[u], dur, ref.URL); err != nil {
						return nil, err
					}
				}
			}
		}
	}

	// 3. Inline scripts that construct URLs in text.
	for _, body := range htmlscan.InlineScripts(html) {
		for _, u := range htmlscan.URLsInText(body) {
			if _, err := fetch(u, c.Assets.Kinds[u], 0, ""); err != nil {
				return nil, err
			}
		}
	}

	// 4. Hidden objects: dynamic server selection invisible to page text,
	// always from the canonical provider (rules cannot move these).
	for _, o := range page.Objects {
		if o.Tier != webgen.TierHidden {
			continue
		}
		if _, err := fetch(o.URL, o.Kind, 0, ""); err != nil {
			return nil, err
		}
	}

	var plt time.Duration
	for _, d := range chains {
		if d > plt {
			plt = d
		}
	}
	return &LoadResult{Report: rep, PLT: plt}, nil
}

// kindForTag maps an HTML tag to an object kind, preferring the asset
// universe's record when available.
func kindForTag(tag string, known report.ObjectKind) report.ObjectKind {
	if known != "" {
		return known
	}
	switch tag {
	case "script":
		return report.KindScript
	case "img":
		return report.KindImage
	case "link":
		return report.KindCSS
	default:
		return report.KindOther
	}
}

// RegisterSite registers every default-provider host of a site (origin and
// external) on the network, one simulated server per host, with properties
// drawn deterministically from the host name via the provided builder. It
// returns the registered hosts sorted.
func RegisterSite(net *netsim.Network, site *webgen.Site, build func(host string) *netsim.Server) ([]string, error) {
	hosts := map[string]bool{site.Domain: true}
	for _, h := range site.ExternalHosts() {
		hosts[h] = true
	}
	sorted := make([]string, 0, len(hosts))
	for h := range hosts {
		sorted = append(sorted, h)
	}
	sort.Strings(sorted)
	for _, h := range sorted {
		srv := build(h)
		if srv.Addr == "" {
			srv.Addr = "srv-" + h
		}
		if len(srv.Hosts) == 0 {
			srv.Hosts = []string{h}
		}
		if err := net.AddServer(srv); err != nil {
			return nil, err
		}
	}
	return sorted, nil
}
