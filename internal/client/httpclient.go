package client

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"sync"
	"time"

	"oak/internal/htmlscan"
	"oak/internal/report"
)

// HostResolver maps a logical hostname from page markup (e.g.
// "cdn.example") to a reachable base like "127.0.0.1:43117". Integration
// tests and examples run providers as loopback servers, so the client
// resolves names itself rather than through DNS — playing the role the
// browser's resolver plays for the paper's client.
type HostResolver func(host string) (string, bool)

// RetryPolicy bounds the client's retry behaviour: how many attempts a
// fetch or report submission gets, and the exponential-backoff schedule
// (with jitter) between them. The zero value takes defaults.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries, including the first
	// (default 3). 1 disables retries.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles per
	// retry (default 50ms).
	BaseDelay time.Duration
	// MaxDelay caps the backoff (default 1s).
	MaxDelay time.Duration
	// JitterFraction randomises each delay by ±this fraction, so a fleet
	// of clients recovering from the same outage does not retry in
	// lockstep (default 0.2).
	JitterFraction float64
}

// Retry defaults.
const (
	defaultMaxAttempts = 3
	defaultBaseDelay   = 50 * time.Millisecond
	defaultMaxDelay    = time.Second
	defaultJitter      = 0.2
)

// normalized fills defaults in.
func (p RetryPolicy) normalized() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = defaultMaxAttempts
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = defaultBaseDelay
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = defaultMaxDelay
	}
	if p.JitterFraction <= 0 {
		p.JitterFraction = defaultJitter
	}
	return p
}

// WireFormat selects how the client serialises reports for submission.
type WireFormat int

const (
	// WireJSON submits reports as JSON (Content-Type application/json):
	// the default, readable everywhere.
	WireJSON WireFormat = iota
	// WireBinary submits reports in the compact OAKRPT1 binary encoding
	// (Content-Type application/x-oak-report) — typically 60%+ fewer wire
	// bytes than JSON, which matters on the instrumented-client uplink. The
	// origin negotiates by Content-Type, so binary and JSON clients coexist
	// against the same endpoint; a pre-binary origin answers 400, which the
	// client surfaces rather than silently downgrading.
	WireBinary
)

// DefaultObjectTimeout bounds a single object-fetch attempt when
// HTTPClient.ObjectTimeout is zero. A hung provider then costs the page
// load a bounded delay — and yields a failed entry flagging that provider —
// instead of stalling the whole load on one dead connection.
const DefaultObjectTimeout = 10 * time.Second

// DefaultSubmitTimeout bounds a whole report submission — every attempt
// plus every backoff sleep — when HTTPClient.SubmitTimeout is zero. Without
// it, only individual attempts had deadlines, so a dead origin whose 503s
// carried long Retry-After hints could hold a submitter in backoff far past
// any useful horizon.
const DefaultSubmitTimeout = time.Minute

// HTTPClient is an Oak-enabled client over real HTTP: it loads pages,
// measures every object download, and reports the timings back to the Oak
// origin, exactly like the paper's modified-WebKit client.
//
// The client is resilient by default: every object fetch runs under a
// per-object deadline and a bounded retry schedule, a provider that stays
// dead yields a report entry marked Failed (a partial report — exactly the
// under-performance signal the server's detector needs) rather than
// aborting the load, and report submission backs off exponentially with
// jitter, honouring the origin's Retry-After when it sheds load.
type HTTPClient struct {
	// UserID is the client's Oak cookie value. Empty means "let the origin
	// issue one" — the client adopts the Set-Cookie it receives.
	UserID string
	// Resolve maps markup hostnames to reachable addresses.
	Resolve HostResolver
	// HTTP is the transport; nil means a shared default client with a sane
	// timeout (built once, so connections are reused across calls).
	HTTP *http.Client
	// ObjectTimeout bounds each object-fetch attempt (default
	// DefaultObjectTimeout).
	ObjectTimeout time.Duration
	// Retry tunes the backoff schedule for object fetches, page fetches
	// and report submission. Zero fields take defaults.
	Retry RetryPolicy
	// SubmitTimeout bounds a whole report submission including backoff
	// sleeps (default DefaultSubmitTimeout; negative disables the bound).
	SubmitTimeout time.Duration
	// Wire selects the report encoding SubmitReport puts on the wire:
	// WireJSON (default) or the compact WireBinary.
	Wire WireFormat
	// Seed makes the retry jitter deterministic for tests and simulations;
	// 0 seeds from the clock.
	Seed int64

	mu          sync.Mutex
	defaultHTTP *http.Client
	rng         *rand.Rand
}

// httpc returns the underlying http.Client, building (and caching) the
// default exactly once so its transport's connection pool is reused.
func (c *HTTPClient) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.defaultHTTP == nil {
		c.defaultHTTP = &http.Client{Timeout: 30 * time.Second}
	}
	return c.defaultHTTP
}

// backoff returns the jittered delay before retry number retry (0-based).
func (c *HTTPClient) backoff(retry int) time.Duration {
	p := c.Retry.normalized()
	d := p.BaseDelay << retry
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	c.mu.Lock()
	if c.rng == nil {
		seed := c.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		c.rng = rand.New(rand.NewSource(seed))
	}
	// Spread the delay across [1-j, 1+j] so a fleet does not retry in sync.
	factor := 1 + p.JitterFraction*(2*c.rng.Float64()-1)
	c.mu.Unlock()
	return time.Duration(float64(d) * factor)
}

// retryableStatus reports whether a response status is worth retrying:
// timeouts, throttling and server-side failures. 4xx apart from 408/429 is
// the client's own fault and will not improve.
func retryableStatus(code int) bool {
	return code == http.StatusRequestTimeout ||
		code == http.StatusTooManyRequests ||
		code >= 500
}

// retryAfterHint parses a Retry-After header, returning 0 when absent or
// unparseable. Both RFC 9110 forms are accepted: integral delta-seconds and
// an HTTP-date (http.ParseTime handles the three date layouts), the latter
// converted to a delay relative to now. A date in the past yields 0 — retry
// on the normal backoff schedule. Either way retryDelay clamps the hint, so
// a far-future date cannot park the client.
func retryAfterHint(resp *http.Response, now time.Time) time.Duration {
	if resp == nil {
		return 0
	}
	h := resp.Header.Get("Retry-After")
	if h == "" {
		return 0
	}
	if secs, err := strconv.Atoi(h); err == nil {
		if secs <= 0 {
			return 0
		}
		return time.Duration(secs) * time.Second
	}
	when, err := http.ParseTime(h)
	if err != nil {
		return 0
	}
	d := when.Sub(now)
	if d <= 0 {
		return 0
	}
	return d
}

// retryDelay combines the backoff schedule with a server-provided
// Retry-After hint: the server knows its own recovery horizon better than
// our schedule does, so the larger of the two wins (bounded to keep a
// hostile header from parking the client).
func (c *HTTPClient) retryDelay(retry int, hint time.Duration) time.Duration {
	d := c.backoff(retry)
	const maxHint = 30 * time.Second
	if hint > maxHint {
		hint = maxHint
	}
	if hint > d {
		return hint
	}
	return d
}

// fetchAttempt is one bounded GET: the request runs under the per-object
// deadline and the full body is read (a truncated body is an error, so
// torn responses surface instead of producing bogus timings).
func (c *HTTPClient) fetchAttempt(rawURL string) ([]byte, int, error) {
	timeout := c.ObjectTimeout
	if timeout <= 0 {
		timeout = DefaultObjectTimeout
	}
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rawURL, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, 0, err
	}
	data, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, resp.StatusCode, err
	}
	return data, resp.StatusCode, nil
}

// fetchObject downloads one object with retries. It returns the body and
// how long the successful attempt took; a provider that stays unreachable
// after the retry schedule is reported as failed (ok=false) together with
// the total time the client spent trying.
func (c *HTTPClient) fetchObject(rawURL string) (data []byte, attemptDur, totalDur time.Duration, ok bool) {
	p := c.Retry.normalized()
	start := time.Now()
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt - 1))
		}
		attemptStart := time.Now()
		body, status, err := c.fetchAttempt(rawURL)
		if err == nil && status == http.StatusOK {
			return body, time.Since(attemptStart), time.Since(start), true
		}
		if err == nil && !retryableStatus(status) {
			break // 4xx: trying again will not help
		}
	}
	return nil, 0, time.Since(start), false
}

// LoadPage fetches originBase+path from the Oak origin, loads every
// referenced object, and returns the resulting performance report (without
// submitting it). originBase is e.g. "http://127.0.0.1:40001".
//
// Object failures do not abort the load: an object whose provider stays
// dead through the retry schedule becomes a report entry with Failed set
// and the time the client spent trying as its duration, and the rest of the
// page keeps loading. Only an unreachable origin (or an unresolvable
// hostname, which is a harness configuration error) fails the load.
func (c *HTTPClient) LoadPage(originBase, path string) (*LoadResult, string, error) {
	html, err := c.fetchPage(originBase, path)
	if err != nil {
		return nil, "", err
	}

	rep := &report.Report{
		UserID:            c.UserID,
		Page:              path,
		GeneratedAtUnixMs: time.Now().UnixMilli(),
	}
	var chains []time.Duration
	fetched := make(map[string]bool)

	fetch := func(raw string, kind report.ObjectKind, prefix time.Duration, initiator string) (time.Duration, []byte, error) {
		if fetched[raw] {
			return 0, nil, nil
		}
		host := htmlscan.HostOf(raw)
		if host == "" {
			return 0, nil, nil // relative URL: served inline by the origin
		}
		addr, ok := c.Resolve(host)
		if !ok {
			return 0, nil, fmt.Errorf("client: cannot resolve %q", host)
		}
		u, err := url.Parse(raw)
		if err != nil {
			return 0, nil, fmt.Errorf("client: bad url %q: %w", raw, err)
		}
		fetched[raw] = true
		real := "http://" + addr + u.RequestURI()
		data, attemptDur, totalDur, ok := c.fetchObject(real)
		if !ok {
			// Partial report: the dead provider is recorded, not fatal. The
			// duration is the full time the client spent trying, which is
			// exactly the under-performance the server should see.
			rep.Entries = append(rep.Entries, report.Entry{
				URL:            raw,
				ServerAddr:     addr,
				DurationMillis: float64(totalDur) / float64(time.Millisecond),
				InitiatorURL:   initiator,
				Kind:           kind,
				Failed:         true,
			})
			chains = append(chains, prefix+totalDur)
			return 0, nil, nil
		}
		rep.Entries = append(rep.Entries, report.Entry{
			URL:            raw,
			ServerAddr:     addr,
			SizeBytes:      int64(len(data)),
			DurationMillis: float64(attemptDur) / float64(time.Millisecond),
			InitiatorURL:   initiator,
			Kind:           kind,
		})
		chains = append(chains, prefix+attemptDur)
		return attemptDur, data, nil
	}

	for _, ref := range htmlscan.ExtractRefs(html) {
		kind := kindForTag(ref.Tag, "")
		dur, data, err := fetch(ref.URL, kind, 0, "")
		if err != nil {
			return nil, "", err
		}
		if ref.Tag == "script" && ref.Attr == "src" && data != nil {
			for _, u := range htmlscan.URLsInText(string(data)) {
				if _, _, err := fetch(u, report.KindOther, dur, ref.URL); err != nil {
					return nil, "", err
				}
			}
		}
	}
	for _, inline := range htmlscan.InlineScripts(html) {
		for _, u := range htmlscan.URLsInText(inline) {
			if _, _, err := fetch(u, report.KindOther, 0, ""); err != nil {
				return nil, "", err
			}
		}
	}

	var plt time.Duration
	for _, d := range chains {
		if d > plt {
			plt = d
		}
	}
	return &LoadResult{Report: rep, PLT: plt}, html, nil
}

// fetchPage GETs the page itself from the origin, retrying transport
// errors and 5xx responses on the usual schedule. Without the page there is
// nothing to measure, so exhausting the retries is an error.
func (c *HTTPClient) fetchPage(originBase, path string) (string, error) {
	pageURL := strings.TrimSuffix(originBase, "/") + path
	p := c.Retry.normalized()
	var lastErr error
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			time.Sleep(c.backoff(attempt - 1))
		}
		req, err := http.NewRequest(http.MethodGet, pageURL, nil)
		if err != nil {
			return "", fmt.Errorf("client: build request: %w", err)
		}
		if c.UserID != "" {
			req.AddCookie(&http.Cookie{Name: "oak-user", Value: c.UserID})
		}
		resp, err := c.httpc().Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: fetch page: %w", err)
			continue
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("client: read page: %w", err)
			continue
		}
		if resp.StatusCode != http.StatusOK {
			lastErr = fmt.Errorf("client: page status %d", resp.StatusCode)
			if retryableStatus(resp.StatusCode) {
				continue
			}
			return "", lastErr
		}
		for _, ck := range resp.Cookies() {
			if ck.Name == "oak-user" && c.UserID == "" {
				c.UserID = ck.Value
			}
		}
		return string(body), nil
	}
	return "", lastErr
}

// reportPathV1 is the versioned report endpoint (origin.ReportPathV1); kept
// as a local constant so the client does not link the server package.
const reportPathV1 = "/oak/v1/report"

// SubmitResult is the terminal response of a SubmitBytes exchange: the
// status, headers and body of the last response received, whether or not
// that status is a success. Callers that relay responses (the cluster
// gateway) mirror all three.
type SubmitResult struct {
	Status int
	Header http.Header
	Body   []byte
}

// sleepCtx sleeps for d or until the context is done, whichever comes
// first, returning the context's error in the latter case.
func sleepCtx(ctx context.Context, d time.Duration) error {
	if d <= 0 {
		return ctx.Err()
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}

// SubmitBytes POSTs a pre-serialised body to an endpoint under the
// client's full retry machinery: transport failures and retryable statuses
// (408/429/5xx) are retried with exponential backoff and jitter, a
// Retry-After header from a shedding server is honoured (bounded), and the
// context deadline caps the whole exchange — attempts and backoff sleeps
// alike. The last response received is returned even when its status is a
// failure, so callers can distinguish "the server said no" from "the
// server was never reached" (nil result + error). This is the primitive
// report submission and gateway forwarding are built on.
func (c *HTTPClient) SubmitBytes(ctx context.Context, endpoint, contentType string, body []byte, cookies []*http.Cookie) (*SubmitResult, error) {
	p := c.Retry.normalized()
	var (
		lastErr error
		last    *SubmitResult
		hint    time.Duration
	)
	for attempt := 0; attempt < p.MaxAttempts; attempt++ {
		if attempt > 0 {
			if err := sleepCtx(ctx, c.retryDelay(attempt-1, hint)); err != nil {
				return last, fmt.Errorf("client: submit deadline: %w", err)
			}
			hint = 0
		}
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, endpoint, bytes.NewReader(body))
		if err != nil {
			return last, fmt.Errorf("client: build request: %w", err)
		}
		req.Header.Set("Content-Type", contentType)
		for _, ck := range cookies {
			req.AddCookie(ck)
		}
		resp, err := c.httpc().Do(req)
		if err != nil {
			lastErr = fmt.Errorf("client: post: %w", err)
			if ctx.Err() != nil {
				return last, fmt.Errorf("client: submit deadline: %w", ctx.Err())
			}
			continue
		}
		respBody, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			lastErr = fmt.Errorf("client: read response: %w", err)
			continue
		}
		last = &SubmitResult{Status: resp.StatusCode, Header: resp.Header, Body: respBody}
		if !retryableStatus(resp.StatusCode) {
			return last, nil
		}
		lastErr = fmt.Errorf("client: status %d", resp.StatusCode)
		hint = retryAfterHint(resp, time.Now())
	}
	if last != nil {
		// Retries exhausted but the server did answer: hand the caller the
		// terminal response to act on (or mirror).
		return last, nil
	}
	return nil, lastErr
}

// SubmitReport POSTs a report to the Oak origin's versioned report
// endpoint, retrying transport failures and retryable statuses
// (503/5xx/429) with exponential backoff and jitter. A 503 from a
// load-shedding origin carries Retry-After; the client honours it, waiting
// at least that long before the next attempt. The whole submission —
// attempts and sleeps — is bounded by SubmitTimeout.
func (c *HTTPClient) SubmitReport(originBase string, rep *report.Report) error {
	return c.SubmitReportCtx(context.Background(), originBase, rep)
}

// SubmitReportCtx is SubmitReport under a caller-supplied context. The
// client's SubmitTimeout (default DefaultSubmitTimeout, negative disables)
// is layered on as a deadline, so even a background context cannot leave a
// submitter in unbounded backoff against a dead origin.
func (c *HTTPClient) SubmitReportCtx(ctx context.Context, originBase string, rep *report.Report) error {
	var (
		data        []byte
		contentType string
		err         error
	)
	if c.Wire == WireBinary {
		data, err = rep.MarshalBinary()
		contentType = report.ContentTypeBinary
	} else {
		data, err = rep.Marshal()
		contentType = report.ContentTypeJSON
	}
	if err != nil {
		return fmt.Errorf("client: marshal report: %w", err)
	}
	timeout := c.SubmitTimeout
	if timeout == 0 {
		timeout = DefaultSubmitTimeout
	}
	if timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, timeout)
		defer cancel()
	}
	endpoint := strings.TrimSuffix(originBase, "/") + reportPathV1
	var cookies []*http.Cookie
	if c.UserID != "" {
		cookies = append(cookies, &http.Cookie{Name: "oak-user", Value: c.UserID})
	}
	res, err := c.SubmitBytes(ctx, endpoint, contentType, data, cookies)
	if err != nil {
		return fmt.Errorf("client: post report: %w", err)
	}
	if res.Status == http.StatusNoContent {
		return nil
	}
	return fmt.Errorf("client: report status %d", res.Status)
}

// LoadAndReport performs a full Oak round: load the page, submit the report.
func (c *HTTPClient) LoadAndReport(originBase, path string) (*LoadResult, string, error) {
	res, html, err := c.LoadPage(originBase, path)
	if err != nil {
		return nil, "", err
	}
	if err := c.SubmitReport(originBase, res.Report); err != nil {
		return nil, "", err
	}
	return res, html, nil
}
