package client

import (
	"bytes"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"time"

	"oak/internal/htmlscan"
	"oak/internal/report"
)

// HostResolver maps a logical hostname from page markup (e.g.
// "cdn.example") to a reachable base like "127.0.0.1:43117". Integration
// tests and examples run providers as loopback servers, so the client
// resolves names itself rather than through DNS — playing the role the
// browser's resolver plays for the paper's client.
type HostResolver func(host string) (string, bool)

// HTTPClient is an Oak-enabled client over real HTTP: it loads pages,
// measures every object download, and reports the timings back to the Oak
// origin, exactly like the paper's modified-WebKit client.
type HTTPClient struct {
	// UserID is the client's Oak cookie value. Empty means "let the origin
	// issue one" — the client adopts the Set-Cookie it receives.
	UserID string
	// Resolve maps markup hostnames to reachable addresses.
	Resolve HostResolver
	// HTTP is the transport; nil means a default client with a sane timeout.
	HTTP *http.Client
}

// httpc returns the underlying http.Client.
func (c *HTTPClient) httpc() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return &http.Client{Timeout: 30 * time.Second}
}

// LoadPage fetches originBase+path from the Oak origin, loads every
// referenced object, and returns the resulting performance report (without
// submitting it). originBase is e.g. "http://127.0.0.1:40001".
func (c *HTTPClient) LoadPage(originBase, path string) (*LoadResult, string, error) {
	pageURL := strings.TrimSuffix(originBase, "/") + path
	req, err := http.NewRequest(http.MethodGet, pageURL, nil)
	if err != nil {
		return nil, "", fmt.Errorf("client: build request: %w", err)
	}
	if c.UserID != "" {
		req.AddCookie(&http.Cookie{Name: "oak-user", Value: c.UserID})
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return nil, "", fmt.Errorf("client: fetch page: %w", err)
	}
	body, err := io.ReadAll(resp.Body)
	_ = resp.Body.Close()
	if err != nil {
		return nil, "", fmt.Errorf("client: read page: %w", err)
	}
	if resp.StatusCode != http.StatusOK {
		return nil, "", fmt.Errorf("client: page status %d", resp.StatusCode)
	}
	for _, ck := range resp.Cookies() {
		if ck.Name == "oak-user" && c.UserID == "" {
			c.UserID = ck.Value
		}
	}
	html := string(body)

	rep := &report.Report{
		UserID:            c.UserID,
		Page:              path,
		GeneratedAtUnixMs: time.Now().UnixMilli(),
	}
	var chains []time.Duration
	fetched := make(map[string]bool)

	fetch := func(raw string, kind report.ObjectKind, prefix time.Duration, initiator string) (time.Duration, []byte, error) {
		if fetched[raw] {
			return 0, nil, nil
		}
		host := htmlscan.HostOf(raw)
		if host == "" {
			return 0, nil, nil // relative URL: served inline by the origin
		}
		addr, ok := c.Resolve(host)
		if !ok {
			return 0, nil, fmt.Errorf("client: cannot resolve %q", host)
		}
		u, err := url.Parse(raw)
		if err != nil {
			return 0, nil, fmt.Errorf("client: bad url %q: %w", raw, err)
		}
		real := "http://" + addr + u.RequestURI()
		start := time.Now()
		resp, err := c.httpc().Get(real)
		if err != nil {
			return 0, nil, fmt.Errorf("client: fetch %q: %w", raw, err)
		}
		data, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err != nil {
			return 0, nil, fmt.Errorf("client: read %q: %w", raw, err)
		}
		dur := time.Since(start)
		if resp.StatusCode != http.StatusOK {
			return 0, nil, fmt.Errorf("client: %q status %d", raw, resp.StatusCode)
		}
		fetched[raw] = true
		rep.Entries = append(rep.Entries, report.Entry{
			URL:            raw,
			ServerAddr:     addr,
			SizeBytes:      int64(len(data)),
			DurationMillis: float64(dur) / float64(time.Millisecond),
			InitiatorURL:   initiator,
			Kind:           kind,
		})
		chains = append(chains, prefix+dur)
		return dur, data, nil
	}

	for _, ref := range htmlscan.ExtractRefs(html) {
		kind := kindForTag(ref.Tag, "")
		dur, data, err := fetch(ref.URL, kind, 0, "")
		if err != nil {
			return nil, "", err
		}
		if ref.Tag == "script" && ref.Attr == "src" && data != nil {
			for _, u := range htmlscan.URLsInText(string(data)) {
				if _, _, err := fetch(u, report.KindOther, dur, ref.URL); err != nil {
					return nil, "", err
				}
			}
		}
	}
	for _, inline := range htmlscan.InlineScripts(html) {
		for _, u := range htmlscan.URLsInText(inline) {
			if _, _, err := fetch(u, report.KindOther, 0, ""); err != nil {
				return nil, "", err
			}
		}
	}

	var plt time.Duration
	for _, d := range chains {
		if d > plt {
			plt = d
		}
	}
	return &LoadResult{Report: rep, PLT: plt}, html, nil
}

// SubmitReport POSTs a report to the Oak origin's report endpoint.
func (c *HTTPClient) SubmitReport(originBase string, rep *report.Report) error {
	data, err := rep.Marshal()
	if err != nil {
		return fmt.Errorf("client: marshal report: %w", err)
	}
	req, err := http.NewRequest(http.MethodPost,
		strings.TrimSuffix(originBase, "/")+"/oak/report", bytes.NewReader(data))
	if err != nil {
		return fmt.Errorf("client: build report request: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if c.UserID != "" {
		req.AddCookie(&http.Cookie{Name: "oak-user", Value: c.UserID})
	}
	resp, err := c.httpc().Do(req)
	if err != nil {
		return fmt.Errorf("client: post report: %w", err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return fmt.Errorf("client: report status %d", resp.StatusCode)
	}
	return nil
}

// LoadAndReport performs a full Oak round: load the page, submit the report.
func (c *HTTPClient) LoadAndReport(originBase, path string) (*LoadResult, string, error) {
	res, html, err := c.LoadPage(originBase, path)
	if err != nil {
		return nil, "", err
	}
	if err := c.SubmitReport(originBase, res.Report); err != nil {
		return nil, "", err
	}
	return res, html, nil
}
