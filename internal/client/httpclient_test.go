package client

import (
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oak/internal/report"
)

// staticResolver maps every host to one test server.
func staticResolver(ts *httptest.Server) HostResolver {
	return func(host string) (string, bool) {
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}
}

func TestHTTPClientLoadPage(t *testing.T) {
	content := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/a.js":
			w.Header().Set("Content-Type", "application/javascript")
			_, _ = w.Write([]byte(`oakFetch("http://deep.example/b.bin");`))
		default:
			_, _ = w.Write(make([]byte, 2048))
		}
	}))
	defer content.Close()

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "oak-user", Value: "issued-1"})
		_, _ = w.Write([]byte(`<html>
<script src="http://cdn.example/a.js"></script>
<img src="http://img.example/c.bin">
<script>var u = "http://inline.example/d.bin"; go(u);</script>
</html>`))
	}))
	defer origin.Close()

	c := &HTTPClient{Resolve: staticResolver(content)}
	res, html, err := c.LoadPage(origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if c.UserID != "issued-1" {
		t.Errorf("client did not adopt issued cookie: %q", c.UserID)
	}
	if !strings.Contains(html, "cdn.example") {
		t.Error("html not returned")
	}
	// Four objects: a.js + its loaded b.bin + c.bin + inline d.bin.
	if len(res.Report.Entries) != 4 {
		t.Fatalf("entries = %d, want 4: %+v", len(res.Report.Entries), res.Report.Entries)
	}
	byURL := make(map[string]report.Entry)
	for _, e := range res.Report.Entries {
		byURL[e.URL] = e
	}
	dep, ok := byURL["http://deep.example/b.bin"]
	if !ok {
		t.Fatal("script-loaded object not fetched")
	}
	if dep.InitiatorURL != "http://cdn.example/a.js" {
		t.Errorf("initiator = %q", dep.InitiatorURL)
	}
	if _, ok := byURL["http://inline.example/d.bin"]; !ok {
		t.Error("inline-script object not fetched")
	}
	if res.PLT <= 0 {
		t.Error("PLT not positive")
	}
}

func TestHTTPClientUnresolvableHost(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<img src="http://ghost.example/x.bin">`))
	}))
	defer origin.Close()

	c := &HTTPClient{Resolve: func(string) (string, bool) { return "", false }}
	if _, _, err := c.LoadPage(origin.URL, "/"); err == nil {
		t.Error("unresolvable host: want error")
	}
}

func TestHTTPClientPageStatusError(t *testing.T) {
	origin := httptest.NewServer(http.NotFoundHandler())
	defer origin.Close()
	c := &HTTPClient{Resolve: func(string) (string, bool) { return "", false }}
	if _, _, err := c.LoadPage(origin.URL, "/missing"); err == nil {
		t.Error("404 page: want error")
	}
}

func TestHTTPClientObjectFailureIsPartialReport(t *testing.T) {
	var hits atomic.Int64
	content := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		http.NotFound(w, r)
	}))
	defer content.Close()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<img src="http://broken.example/x.bin">`))
	}))
	defer origin.Close()

	c := &HTTPClient{Resolve: staticResolver(content), Seed: 1}
	res, _, err := c.LoadPage(origin.URL, "/")
	if err != nil {
		t.Fatalf("dead object must not abort the load: %v", err)
	}
	if got := res.Report.FailedCount(); got != 1 {
		t.Fatalf("FailedCount = %d, want 1: %+v", got, res.Report.Entries)
	}
	e := res.Report.Entries[0]
	if !e.Failed || e.URL != "http://broken.example/x.bin" {
		t.Errorf("failed entry = %+v", e)
	}
	if e.DurationMillis < 0 {
		t.Errorf("failed entry duration = %v", e.DurationMillis)
	}
	// 404 is not retryable: exactly one attempt.
	if hits.Load() != 1 {
		t.Errorf("attempts = %d, want 1 (no retry on 404)", hits.Load())
	}
}

func TestHTTPClientObjectRetriesThenSucceeds(t *testing.T) {
	var hits atomic.Int64
	content := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if hits.Add(1) < 3 {
			http.Error(w, "busy", http.StatusServiceUnavailable)
			return
		}
		_, _ = w.Write(make([]byte, 128))
	}))
	defer content.Close()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<img src="http://flaky.example/x.bin">`))
	}))
	defer origin.Close()

	c := &HTTPClient{
		Resolve: staticResolver(content),
		Seed:    42,
		Retry:   RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
	}
	res, _, err := c.LoadPage(origin.URL, "/")
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Report.FailedCount(); got != 0 {
		t.Fatalf("FailedCount = %d, want 0 after successful retry", got)
	}
	if res.Report.Entries[0].SizeBytes != 128 {
		t.Errorf("entry = %+v", res.Report.Entries[0])
	}
	if hits.Load() != 3 {
		t.Errorf("attempts = %d, want 3", hits.Load())
	}
}

func TestHTTPClientObjectTimeout(t *testing.T) {
	release := make(chan struct{})
	content := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-release // hang until the test ends
	}))
	defer content.Close()
	defer close(release)
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<img src="http://dead.example/x.bin">`))
	}))
	defer origin.Close()

	c := &HTTPClient{
		Resolve:       staticResolver(content),
		Seed:          7,
		ObjectTimeout: 20 * time.Millisecond,
		Retry:         RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: time.Millisecond},
	}
	start := time.Now()
	res, _, err := c.LoadPage(origin.URL, "/")
	if err != nil {
		t.Fatalf("hung provider must not abort the load: %v", err)
	}
	if got := res.Report.FailedCount(); got != 1 {
		t.Fatalf("FailedCount = %d, want 1", got)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("load took %v; per-object deadline not applied", elapsed)
	}
	if res.Report.Entries[0].DurationMillis < 20 {
		t.Errorf("failed entry should record time spent trying, got %vms", res.Report.Entries[0].DurationMillis)
	}
}

func TestHTTPClientSubmitReportRetriesHonoringRetryAfter(t *testing.T) {
	var hits atomic.Int64
	var sawDelay time.Duration
	var last time.Time
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		now := time.Now()
		if n := hits.Add(1); n == 1 {
			last = now
			w.Header().Set("Retry-After", "1")
			http.Error(w, "shed", http.StatusServiceUnavailable)
			return
		}
		sawDelay = now.Sub(last)
		w.WriteHeader(http.StatusNoContent)
	}))
	defer origin.Close()

	c := &HTTPClient{
		Seed:  3,
		Retry: RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond},
	}
	rep := &report.Report{UserID: "u", Page: "/", Entries: []report.Entry{
		{URL: "http://x.example/a", SizeBytes: 1, DurationMillis: 1},
	}}
	if err := c.SubmitReport(origin.URL, rep); err != nil {
		t.Fatal(err)
	}
	if hits.Load() != 2 {
		t.Fatalf("attempts = %d, want 2", hits.Load())
	}
	// The origin said Retry-After: 1s; the client must have waited at least
	// most of it rather than using its (millisecond) backoff schedule.
	if sawDelay < 700*time.Millisecond {
		t.Errorf("delay before retry = %v, want >= ~1s (Retry-After honored)", sawDelay)
	}
}

// TestHTTPClientWireFormats pins what each wire setting puts on the wire:
// WireJSON posts application/json that report.Unmarshal accepts, WireBinary
// posts an OAKRPT1 body under its content type that decodes to the same
// report — and the binary body is the smaller of the two.
func TestHTTPClientWireFormats(t *testing.T) {
	rep := &report.Report{UserID: "wire-u", Page: "/p", Entries: []report.Entry{
		{URL: "http://x.example/a.png", ServerAddr: "1.1.1.1", SizeBytes: 1000, DurationMillis: 42.5},
		{URL: "http://y.example/b.js", ServerAddr: "2.2.2.2", SizeBytes: 90000, DurationMillis: 120, Kind: report.KindScript},
	}}

	type capture struct {
		contentType string
		body        []byte
	}
	var got capture
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		got = capture{contentType: r.Header.Get("Content-Type"), body: body}
		w.WriteHeader(http.StatusNoContent)
	}))
	defer origin.Close()

	c := &HTTPClient{UserID: "wire-u"}
	if err := c.SubmitReport(origin.URL, rep); err != nil {
		t.Fatal(err)
	}
	jsonCap := got
	if jsonCap.contentType != report.ContentTypeJSON {
		t.Errorf("default Content-Type = %q, want %q", jsonCap.contentType, report.ContentTypeJSON)
	}
	if _, err := report.Unmarshal(jsonCap.body); err != nil {
		t.Errorf("default body is not a JSON report: %v", err)
	}

	c.Wire = WireBinary
	if err := c.SubmitReport(origin.URL, rep); err != nil {
		t.Fatal(err)
	}
	if got.contentType != report.ContentTypeBinary {
		t.Errorf("binary Content-Type = %q, want %q", got.contentType, report.ContentTypeBinary)
	}
	decoded, err := report.UnmarshalBinary(got.body)
	if err != nil {
		t.Fatalf("binary body does not decode: %v", err)
	}
	if decoded.UserID != rep.UserID || len(decoded.Entries) != len(rep.Entries) {
		t.Errorf("binary round trip = %+v, want %+v", decoded, rep)
	}
	if len(got.body) >= len(jsonCap.body) {
		t.Errorf("binary body %d bytes >= JSON %d bytes; binary must be smaller", len(got.body), len(jsonCap.body))
	}
}

func TestHTTPClientDefaultClientCached(t *testing.T) {
	c := &HTTPClient{}
	if c.httpc() != c.httpc() {
		t.Error("default http.Client not cached: new allocation per call")
	}
	custom := &http.Client{}
	c2 := &HTTPClient{HTTP: custom}
	if c2.httpc() != custom {
		t.Error("explicit HTTP client not used")
	}
}

func TestHTTPClientSubmitReportStatus(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer origin.Close()
	c := &HTTPClient{}
	rep := &report.Report{UserID: "u", Page: "/", Entries: []report.Entry{
		{URL: "http://x.example/a", SizeBytes: 1, DurationMillis: 1},
	}}
	if err := c.SubmitReport(origin.URL, rep); err == nil {
		t.Error("rejected report: want error")
	}
}

func TestHTTPClientKeepsExplicitUserID(t *testing.T) {
	var gotCookie string
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c, err := r.Cookie("oak-user"); err == nil {
			gotCookie = c.Value
		}
		_, _ = w.Write([]byte("<html></html>"))
	}))
	defer origin.Close()

	c := &HTTPClient{UserID: "pinned"}
	if _, _, err := c.LoadPage(origin.URL, "/"); err != nil {
		t.Fatal(err)
	}
	if gotCookie != "pinned" {
		t.Errorf("sent cookie = %q, want pinned", gotCookie)
	}
	if c.UserID != "pinned" {
		t.Errorf("UserID changed to %q", c.UserID)
	}
}

func TestRetryAfterHintForms(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	mk := func(val string) *http.Response {
		h := http.Header{}
		if val != "" {
			h.Set("Retry-After", val)
		}
		return &http.Response{Header: h}
	}
	cases := []struct {
		name string
		resp *http.Response
		want time.Duration
	}{
		{"nil response", nil, 0},
		{"absent", mk(""), 0},
		{"delta seconds", mk("7"), 7 * time.Second},
		{"zero seconds", mk("0"), 0},
		{"negative seconds", mk("-3"), 0},
		{"http date future", mk(now.Add(90 * time.Second).Format(http.TimeFormat)), 90 * time.Second},
		{"http date past", mk(now.Add(-time.Minute).Format(http.TimeFormat)), 0},
		{"rfc850 date", mk(now.Add(30 * time.Second).Format("Monday, 02-Jan-06 15:04:05 MST")), 30 * time.Second},
		{"garbage", mk("soon"), 0},
	}
	for _, tc := range cases {
		if got := retryAfterHint(tc.resp, now); got != tc.want {
			t.Errorf("%s: retryAfterHint = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// A far-future HTTP-date must not park the client: retryDelay clamps the
// hint to its 30s bound.
func TestRetryDelayClampsDateHint(t *testing.T) {
	now := time.Date(2026, 8, 6, 12, 0, 0, 0, time.UTC)
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", now.Add(time.Hour).Format(http.TimeFormat))
	hint := retryAfterHint(resp, now)
	if hint != time.Hour {
		t.Fatalf("hint = %v, want 1h", hint)
	}
	c := &HTTPClient{Seed: 1}
	if d := c.retryDelay(0, hint); d > 31*time.Second {
		t.Errorf("retryDelay = %v, want clamped to <= ~30s", d)
	}
}
