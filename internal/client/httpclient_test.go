package client

import (
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"testing"

	"oak/internal/report"
)

// staticResolver maps every host to one test server.
func staticResolver(ts *httptest.Server) HostResolver {
	return func(host string) (string, bool) {
		u, err := url.Parse(ts.URL)
		if err != nil {
			return "", false
		}
		return u.Host, true
	}
}

func TestHTTPClientLoadPage(t *testing.T) {
	content := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/a.js":
			w.Header().Set("Content-Type", "application/javascript")
			_, _ = w.Write([]byte(`oakFetch("http://deep.example/b.bin");`))
		default:
			_, _ = w.Write(make([]byte, 2048))
		}
	}))
	defer content.Close()

	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.SetCookie(w, &http.Cookie{Name: "oak-user", Value: "issued-1"})
		_, _ = w.Write([]byte(`<html>
<script src="http://cdn.example/a.js"></script>
<img src="http://img.example/c.bin">
<script>var u = "http://inline.example/d.bin"; go(u);</script>
</html>`))
	}))
	defer origin.Close()

	c := &HTTPClient{Resolve: staticResolver(content)}
	res, html, err := c.LoadPage(origin.URL, "/index.html")
	if err != nil {
		t.Fatal(err)
	}
	if c.UserID != "issued-1" {
		t.Errorf("client did not adopt issued cookie: %q", c.UserID)
	}
	if !strings.Contains(html, "cdn.example") {
		t.Error("html not returned")
	}
	// Four objects: a.js + its loaded b.bin + c.bin + inline d.bin.
	if len(res.Report.Entries) != 4 {
		t.Fatalf("entries = %d, want 4: %+v", len(res.Report.Entries), res.Report.Entries)
	}
	byURL := make(map[string]report.Entry)
	for _, e := range res.Report.Entries {
		byURL[e.URL] = e
	}
	dep, ok := byURL["http://deep.example/b.bin"]
	if !ok {
		t.Fatal("script-loaded object not fetched")
	}
	if dep.InitiatorURL != "http://cdn.example/a.js" {
		t.Errorf("initiator = %q", dep.InitiatorURL)
	}
	if _, ok := byURL["http://inline.example/d.bin"]; !ok {
		t.Error("inline-script object not fetched")
	}
	if res.PLT <= 0 {
		t.Error("PLT not positive")
	}
}

func TestHTTPClientUnresolvableHost(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<img src="http://ghost.example/x.bin">`))
	}))
	defer origin.Close()

	c := &HTTPClient{Resolve: func(string) (string, bool) { return "", false }}
	if _, _, err := c.LoadPage(origin.URL, "/"); err == nil {
		t.Error("unresolvable host: want error")
	}
}

func TestHTTPClientPageStatusError(t *testing.T) {
	origin := httptest.NewServer(http.NotFoundHandler())
	defer origin.Close()
	c := &HTTPClient{Resolve: func(string) (string, bool) { return "", false }}
	if _, _, err := c.LoadPage(origin.URL, "/missing"); err == nil {
		t.Error("404 page: want error")
	}
}

func TestHTTPClientObjectStatusError(t *testing.T) {
	content := httptest.NewServer(http.NotFoundHandler())
	defer content.Close()
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write([]byte(`<img src="http://broken.example/x.bin">`))
	}))
	defer origin.Close()

	c := &HTTPClient{Resolve: staticResolver(content)}
	if _, _, err := c.LoadPage(origin.URL, "/"); err == nil {
		t.Error("404 object: want error")
	}
}

func TestHTTPClientSubmitReportStatus(t *testing.T) {
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "nope", http.StatusBadRequest)
	}))
	defer origin.Close()
	c := &HTTPClient{}
	rep := &report.Report{UserID: "u", Page: "/", Entries: []report.Entry{
		{URL: "http://x.example/a", SizeBytes: 1, DurationMillis: 1},
	}}
	if err := c.SubmitReport(origin.URL, rep); err == nil {
		t.Error("rejected report: want error")
	}
}

func TestHTTPClientKeepsExplicitUserID(t *testing.T) {
	var gotCookie string
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if c, err := r.Cookie("oak-user"); err == nil {
			gotCookie = c.Value
		}
		_, _ = w.Write([]byte("<html></html>"))
	}))
	defer origin.Close()

	c := &HTTPClient{UserID: "pinned"}
	if _, _, err := c.LoadPage(origin.URL, "/"); err != nil {
		t.Fatal(err)
	}
	if gotCookie != "pinned" {
		t.Errorf("sent cookie = %q, want pinned", gotCookie)
	}
	if c.UserID != "pinned" {
		t.Errorf("UserID changed to %q", c.UserID)
	}
}
