package client

import (
	"strings"
	"testing"
	"time"

	"oak/internal/netsim"
	"oak/internal/report"
	"oak/internal/webgen"
)

var simT0 = time.Date(2026, 1, 1, 12, 0, 0, 0, time.UTC)

// simFixture builds a site, a network with one server per host, mirrors in
// one zone, and a client.
type simFixture struct {
	site   *webgen.Site
	assets *webgen.Assets
	net    *netsim.Network
	client *SimClient
}

func newSimFixture(t *testing.T, seed int64) *simFixture {
	t.Helper()
	g := webgen.NewGenerator(webgen.Config{Seed: seed, NumSites: 1})
	site := g.Site(0)
	assets := webgen.NewAssets(site)
	assets.AddMirrors(site, []string{"na"})

	net := netsim.NewNetwork()
	if _, err := RegisterSite(net, site, func(host string) *netsim.Server {
		return &netsim.Server{
			Region:       netsim.NorthAmerica,
			ProcLatency:  10 * time.Millisecond,
			BandwidthBps: 1e6,
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Mirror servers for every external host.
	for _, h := range site.ExternalHosts() {
		mh := webgen.MirrorHost(h, "na")
		if err := net.AddServer(&netsim.Server{
			Addr: "srv-" + mh, Hosts: []string{mh},
			Region: netsim.NorthAmerica, ProcLatency: 10 * time.Millisecond, BandwidthBps: 1e6,
		}); err != nil {
			t.Fatal(err)
		}
	}
	return &simFixture{
		site:   site,
		assets: assets,
		net:    net,
		client: &SimClient{
			ID: "u1", Region: netsim.NorthAmerica, Net: net, Assets: assets,
			Clock: netsim.NewVirtualClock(simT0),
		},
	}
}

func TestSimClientLoadCoversGroundTruth(t *testing.T) {
	f := newSimFixture(t, 11)
	page := f.site.Index()
	res, err := f.client.Load(f.site, page, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Report.Validate(); err != nil {
		t.Fatalf("report invalid: %v", err)
	}
	// Every ground-truth object URL appears exactly once in the report.
	got := make(map[string]int)
	for _, e := range res.Report.Entries {
		got[e.URL]++
	}
	for _, o := range page.Objects {
		if got[o.URL] != 1 {
			t.Errorf("object %s (tier %s) fetched %d times, want 1", o.URL, o.Tier, got[o.URL])
		}
	}
	if len(res.Report.Entries) != len(page.Objects) {
		t.Errorf("report has %d entries, ground truth %d", len(res.Report.Entries), len(page.Objects))
	}
	if res.PLT <= 0 {
		t.Error("PLT not positive")
	}
}

func TestSimClientDeterministic(t *testing.T) {
	f := newSimFixture(t, 12)
	page := f.site.Index()
	a, err := f.client.Load(f.site, page, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.client.Load(f.site, page, page.HTML)
	if err != nil {
		t.Fatal(err)
	}
	if a.PLT != b.PLT || len(a.Report.Entries) != len(b.Report.Entries) {
		t.Error("identical loads differ")
	}
	for i := range a.Report.Entries {
		if a.Report.Entries[i] != b.Report.Entries[i] {
			t.Fatalf("entry %d differs: %+v vs %+v", i, a.Report.Entries[i], b.Report.Entries[i])
		}
	}
}

func TestSimClientViaScriptChains(t *testing.T) {
	// Find a seed whose site has external-js objects, then check initiator
	// attribution and chain-aware PLT.
	for seed := int64(0); seed < 30; seed++ {
		f := newSimFixture(t, seed)
		page := f.site.Index()
		hasJS := false
		for _, o := range page.Objects {
			if o.Tier == webgen.TierExternalJS {
				hasJS = true
			}
		}
		if !hasJS {
			continue
		}
		res, err := f.client.Load(f.site, page, page.HTML)
		if err != nil {
			t.Fatal(err)
		}
		byURL := make(map[string]report.Entry)
		for _, e := range res.Report.Entries {
			byURL[e.URL] = e
		}
		for _, o := range page.Objects {
			if o.Tier != webgen.TierExternalJS {
				continue
			}
			e, ok := byURL[o.URL]
			if !ok {
				t.Fatalf("js object %s not fetched", o.URL)
			}
			if e.InitiatorURL != o.ViaScript {
				t.Errorf("initiator of %s = %q, want %q", o.URL, e.InitiatorURL, o.ViaScript)
			}
			loader := byURL[o.ViaScript]
			chain := loader.Duration() + e.Duration()
			if res.PLT < chain {
				t.Errorf("PLT %v below chain %v", res.PLT, chain)
			}
		}
		return
	}
	t.Skip("no seed with external-js objects in range")
}

func TestSimClientFollowsRewrittenPage(t *testing.T) {
	// Rewrite the page by hand: move one direct-tier host to its mirror.
	for seed := int64(0); seed < 30; seed++ {
		f := newSimFixture(t, seed)
		page := f.site.Index()
		var target string
		for _, h := range f.site.ExternalHosts() {
			frag := f.site.Fragments[h]
			if frag != "" && strings.Contains(page.HTML, h) && strings.Contains(frag, "http://"+h) {
				target = h
				break
			}
		}
		if target == "" {
			continue
		}
		mirror := webgen.MirrorHost(target, "na")
		html := strings.ReplaceAll(page.HTML, target, mirror)
		res, err := f.client.Load(f.site, page, html)
		if err != nil {
			t.Fatal(err)
		}
		var sawMirror, sawDefault bool
		for _, e := range res.Report.Entries {
			if e.Host() == mirror {
				sawMirror = true
			}
			if e.Host() == target {
				sawDefault = true
			}
		}
		if !sawMirror {
			t.Error("rewritten page did not steer fetches to the mirror")
		}
		if sawDefault {
			t.Error("rewritten page still fetched from the default host")
		}
		return
	}
	t.Skip("no suitable direct-tier host found")
}

func TestSimClientHiddenObjectsUnaffectedByRewrite(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		f := newSimFixture(t, seed)
		page := f.site.Index()
		var hidden []webgen.Object
		for _, o := range page.Objects {
			if o.Tier == webgen.TierHidden {
				hidden = append(hidden, o)
			}
		}
		if len(hidden) == 0 {
			continue
		}
		// Even a heavily rewritten page fetches hidden objects verbatim.
		html := strings.ReplaceAll(page.HTML, "http://", "http://x-")
		// Broken rewrite would break direct fetches; use original page but
		// confirm hidden entries exist and come from canonical hosts.
		res, err := f.client.Load(f.site, page, page.HTML)
		if err != nil {
			t.Fatal(err)
		}
		_ = html
		byURL := make(map[string]bool)
		for _, e := range res.Report.Entries {
			byURL[e.URL] = true
		}
		for _, o := range hidden {
			if !byURL[o.URL] {
				t.Errorf("hidden object %s not fetched", o.URL)
			}
		}
		return
	}
	t.Skip("no seed with hidden objects")
}

func TestSimClientUnknownObjectErrors(t *testing.T) {
	f := newSimFixture(t, 13)
	page := f.site.Index()
	html := page.HTML + `<img src="http://ghost.example/missing.png">`
	if _, err := f.client.Load(f.site, page, html); err == nil {
		t.Error("Load with unknown object = nil error")
	}
}

func TestSimClientNeedsWiring(t *testing.T) {
	c := &SimClient{ID: "u"}
	if _, err := c.Load(nil, &webgen.Page{}, ""); err == nil {
		t.Error("unwired client should error")
	}
}

func TestRegisterSiteCoversHosts(t *testing.T) {
	g := webgen.NewGenerator(webgen.Config{Seed: 5, NumSites: 1})
	site := g.Site(0)
	net := netsim.NewNetwork()
	hosts, err := RegisterSite(net, site, func(host string) *netsim.Server {
		return &netsim.Server{Region: netsim.Europe, ProcLatency: time.Millisecond, BandwidthBps: 1e6}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(hosts) != len(site.ExternalHosts())+1 {
		t.Errorf("registered %d hosts, want %d", len(hosts), len(site.ExternalHosts())+1)
	}
	for _, h := range hosts {
		if _, err := net.Resolve(h); err != nil {
			t.Errorf("host %s not resolvable: %v", h, err)
		}
	}
}
