// Package obs is the observability substrate of the Oak server: lock-free
// latency histograms and a bounded decision-trace ring buffer.
//
// Paper mapping: Section 4.2 of "Oak: User-Targeted Web Performance"
// describes a server that continuously maintains "aggregate site
// performance" alongside per-user state, and Section 5 rests every
// evaluation claim on fine-grained timing measurement. This package gives
// the Go reproduction that measurement surface in a form cheap enough to
// stay on in production:
//
//   - Histogram is a fixed-size, log-bucketed latency histogram whose
//     buckets are atomic.Uint64 counters. Observe is wait-free (one atomic
//     add per bucket plus count/sum/max upkeep) and safe from any number of
//     goroutines, so it sits directly on the engine's report-ingest and
//     page-rewrite hot paths. Snapshots extract p50/p90/p99 with bounded
//     relative error (each octave is split into 8 sub-buckets, ≤ 12.5 %).
//
//   - Trace is a bounded ring buffer of Events — one per engine decision
//     (report ingested, violator flagged, rule activated / advanced / kept /
//     deactivated / expired, page modified) carrying the user, rule ID,
//     provider and timestamp. It is the structured source behind the
//     engine's human-readable decision log and behind GET /oak/trace.
//
// The engine (internal/core) feeds both; the origin server
// (internal/origin) serves them at /oak/metrics and /oak/trace; cmd/oakd
// and cmd/oakreport expose them to operators. docs/OPERATIONS.md documents
// how to read each counter and histogram.
package obs
