package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceRecentOrderAndBounds(t *testing.T) {
	tr := NewTrace(4)
	if got := tr.Recent(10); got != nil {
		t.Errorf("Recent on empty trace = %v, want nil", got)
	}
	for i := 1; i <= 3; i++ {
		tr.Record(Event{Kind: EventReport, User: fmt.Sprintf("u%d", i)})
	}
	got := tr.Recent(2)
	if len(got) != 2 || got[0].User != "u2" || got[1].User != "u3" {
		t.Fatalf("Recent(2) = %+v, want u2 then u3", got)
	}
	if got := tr.Recent(100); len(got) != 3 {
		t.Errorf("Recent(100) returned %d events, want all 3", len(got))
	}
	if tr.Recent(0) != nil || tr.Recent(-1) != nil {
		t.Error("Recent(<=0) should be nil")
	}
}

func TestTraceWraparound(t *testing.T) {
	tr := NewTrace(4)
	for i := 1; i <= 10; i++ {
		tr.Record(Event{Kind: EventActivate, User: fmt.Sprintf("u%d", i)})
	}
	if tr.Len() != 4 {
		t.Fatalf("Len = %d, want 4 (bounded)", tr.Len())
	}
	if tr.Total() != 10 {
		t.Fatalf("Total = %d, want 10", tr.Total())
	}
	got := tr.Recent(4)
	want := []string{"u7", "u8", "u9", "u10"}
	for i, ev := range got {
		if ev.User != want[i] {
			t.Errorf("Recent[%d] = %s, want %s", i, ev.User, want[i])
		}
		if ev.Seq != uint64(7+i) {
			t.Errorf("Recent[%d].Seq = %d, want %d", i, ev.Seq, 7+i)
		}
	}
}

func TestTraceTinyCapacity(t *testing.T) {
	tr := NewTrace(0) // clamped to 1
	tr.Record(Event{User: "a"})
	tr.Record(Event{User: "b"})
	got := tr.Recent(5)
	if len(got) != 1 || got[0].User != "b" {
		t.Errorf("Recent = %+v, want only b", got)
	}
}

func TestTraceConcurrent(t *testing.T) {
	tr := NewTrace(64)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				tr.Record(Event{Kind: EventViolator, Time: time.Unix(0, int64(i))})
				if i%100 == 0 {
					_ = tr.Recent(10)
				}
			}
		}()
	}
	wg.Wait()
	if tr.Total() != 8*500 {
		t.Errorf("Total = %d, want %d", tr.Total(), 8*500)
	}
	if tr.Len() != 64 {
		t.Errorf("Len = %d, want full ring 64", tr.Len())
	}
	// Sequence numbers in a window must be strictly increasing.
	evs := tr.Recent(64)
	for i := 1; i < len(evs); i++ {
		if evs[i].Seq <= evs[i-1].Seq {
			t.Fatalf("non-monotone seq at %d: %d then %d", i, evs[i-1].Seq, evs[i].Seq)
		}
	}
}

func TestEventString(t *testing.T) {
	ev := Event{Kind: EventActivate, User: "u1", RuleID: "swap-cdn", Provider: "9.9.9.9", Detail: "alt 1"}
	s := ev.String()
	for _, want := range []string{"u1", "activate", "swap-cdn", "9.9.9.9", "alt 1"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}
