package obs

import (
	"sync"
	"testing"
)

func TestGaugeAddSetValue(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %d, want 0", g.Value())
	}
	g.Add(5)
	g.Add(-2)
	if got := g.Value(); got != 3 {
		t.Errorf("after +5-2: %d, want 3", got)
	}
	g.Set(42)
	if got := g.Value(); got != 42 {
		t.Errorf("after Set(42): %d, want 42", got)
	}
}

func TestGaugeConcurrent(t *testing.T) {
	var g Gauge
	const goroutines, rounds = 8, 1000
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < rounds; j++ {
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := g.Value(); got != 0 {
		t.Errorf("balanced adds left gauge at %d, want 0", got)
	}
}
