package obs

import (
	"sync"
	"time"
)

// EventKind classifies one engine decision.
type EventKind string

// The engine's decision points, in the order they occur in the pipeline.
const (
	// EventReport — a client performance report was ingested.
	EventReport EventKind = "report"
	// EventViolator — a server was flagged as under-performing for a user.
	EventViolator EventKind = "violator"
	// EventActivate — a rule activated for a user.
	EventActivate EventKind = "activate"
	// EventAdvance — an active rule progressed to its next alternative.
	EventAdvance EventKind = "advance"
	// EventKeep — a violating alternate was retained (still beats default).
	EventKeep EventKind = "keep"
	// EventDeactivate — a rule reverted to the default text.
	EventDeactivate EventKind = "deactivate"
	// EventExpire — an activation's TTL lapsed.
	EventExpire EventKind = "expire"
	// EventRewrite — an outgoing page was modified for a user.
	EventRewrite EventKind = "rewrite"
	// EventQuarantine — the guard refused or revoked an intervention: an
	// activation was blocked by an open breaker, a breaker tripped, or a
	// rule was quarantined after repeated rewrite panics.
	EventQuarantine EventKind = "quarantine"
	// EventCanary — a half-open breaker admitted a canary activation.
	EventCanary EventKind = "canary"
	// EventReadmit — a breaker closed: the provider is healthy again.
	EventReadmit EventKind = "readmit"
	// EventRollback — one activation was bulk-deactivated by a breaker trip.
	EventRollback EventKind = "rollback"
	// EventPopDegrade — the population detector flagged a provider whose
	// download-time quantile degraded against its own trailing baseline.
	EventPopDegrade EventKind = "pop-degrade"
	// EventPopRecover — a population-degraded provider returned to baseline.
	EventPopRecover EventKind = "pop-recover"
	// EventSynthesize — a rule activated for a user via population-level
	// synthesis rather than the user's own violation history.
	EventSynthesize EventKind = "synthesize"
)

// Event is one recorded engine decision.
type Event struct {
	// Seq is a monotone sequence number assigned at record time; gaps in a
	// trace window mean older events were overwritten.
	Seq uint64 `json:"seq"`
	// Time is the engine-clock timestamp of the decision.
	Time time.Time `json:"time"`
	Kind EventKind `json:"kind"`
	// User is the affected user ID, if any.
	User string `json:"user,omitempty"`
	// RuleID names the rule involved, for rule-state transitions.
	RuleID string `json:"rule,omitempty"`
	// Provider is the external server tied to the decision (the violator
	// address, or the activation trigger).
	Provider string `json:"provider,omitempty"`
	// Detail carries kind-specific context (distances, alternative index,
	// object counts).
	Detail string `json:"detail,omitempty"`
}

// String renders the event as one human-readable log line.
func (e Event) String() string {
	s := string(e.Kind)
	if e.User != "" {
		s = "user " + e.User + ": " + s
	}
	if e.RuleID != "" {
		s += " rule " + e.RuleID
	}
	if e.Provider != "" {
		s += " (server " + e.Provider + ")"
	}
	if e.Detail != "" {
		s += " — " + e.Detail
	}
	return s
}

// Trace is a bounded ring buffer of engine decision events. When full, new
// events overwrite the oldest. Safe for concurrent use.
type Trace struct {
	mu   sync.Mutex
	buf  []Event
	next int    // buf index the next event lands in
	seq  uint64 // total events ever recorded
}

// DefaultTraceCapacity is the ring size engines use unless configured.
const DefaultTraceCapacity = 1024

// NewTrace builds a ring holding the last capacity events (minimum 1).
func NewTrace(capacity int) *Trace {
	if capacity < 1 {
		capacity = 1
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Record appends an event, stamping its sequence number, and returns it.
func (t *Trace) Record(ev Event) Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.seq++
	ev.Seq = t.seq
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, ev)
	} else {
		t.buf[t.next] = ev
	}
	t.next = (t.next + 1) % cap(t.buf)
	return ev
}

// Len reports how many events the ring currently holds.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.buf)
}

// Total reports how many events were ever recorded (including overwritten).
func (t *Trace) Total() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.seq
}

// Recent returns up to n most recent events in chronological order
// (oldest first). n <= 0 returns nil.
func (t *Trace) Recent(n int) []Event {
	if n <= 0 {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if n > len(t.buf) {
		n = len(t.buf)
	}
	if n == 0 {
		return nil
	}
	out := make([]Event, n)
	// The newest event sits just before t.next (ring full) or at
	// len(buf)-1 (still filling, where next == len(buf) % cap).
	start := t.next - n
	if len(t.buf) < cap(t.buf) {
		start = len(t.buf) - n
	}
	for i := 0; i < n; i++ {
		out[i] = t.buf[(start+i+cap(t.buf))%cap(t.buf)]
	}
	return out
}
