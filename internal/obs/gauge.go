package obs

import "sync/atomic"

// Gauge is a lock-free instantaneous-value metric: unlike the monotone
// counters in core and the latency histograms here, a gauge goes up and
// down — queue depths, in-flight request counts, pool occupancy. The zero
// value is ready to use; all methods are safe for concurrent use.
//
// A Gauge must not be copied after first use.
type Gauge struct {
	v atomic.Int64
}

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Set replaces the gauge value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }
