package obs

import (
	"fmt"
	"math/bits"
	"sync/atomic"
	"time"
)

// Histogram bucket geometry: durations are recorded in nanoseconds into
// log-scaled buckets. Each power-of-two octave is split into 2^subBits
// sub-buckets, bounding the relative error of any reconstructed quantile to
// 1/2^subBits (12.5 %). The smallest 2^subBits buckets are exact.
const (
	subBits    = 3
	subBuckets = 1 << subBits
	// numBuckets covers every representable int64 nanosecond duration:
	// octaves 3..62 each contribute subBuckets buckets on top of the
	// subBuckets exact low buckets.
	numBuckets = (63-subBits)*subBuckets + subBuckets
)

// bucketIndex maps a nanosecond value to its bucket.
func bucketIndex(ns uint64) int {
	if ns < subBuckets {
		return int(ns)
	}
	e := bits.Len64(ns) - 1 // position of the most significant bit, >= subBits
	// Top subBits bits after the MSB select the sub-bucket.
	m := int(ns>>(uint(e)-subBits)) - subBuckets
	return (e-subBits+1)*subBuckets + m
}

// bucketLow returns the inclusive lower bound of bucket i in nanoseconds.
func bucketLow(i int) uint64 {
	if i < subBuckets {
		return uint64(i)
	}
	block := i >> subBits
	off := i & (subBuckets - 1)
	return uint64(subBuckets+off) << uint(block-1)
}

// bucketHigh returns the exclusive upper bound of bucket i in nanoseconds.
func bucketHigh(i int) uint64 {
	if i < subBuckets {
		return uint64(i) + 1
	}
	block := i >> subBits
	off := i & (subBuckets - 1)
	return uint64(subBuckets+off+1) << uint(block-1)
}

// Histogram is a lock-free latency histogram with fixed log-scaled buckets.
// The zero value is ready to use. Observe is safe from any number of
// goroutines; Snapshot may run concurrently with observations (it is weakly
// consistent: counters are monotone, so a snapshot is a valid state that
// existed at some point during the call).
//
// A Histogram must not be copied after first use.
type Histogram struct {
	count   atomic.Uint64
	sum     atomic.Uint64 // nanoseconds
	max     atomic.Uint64 // nanoseconds
	buckets [numBuckets]atomic.Uint64
}

// Observe records one latency. Negative durations are clamped to zero.
func (h *Histogram) Observe(d time.Duration) {
	ns := uint64(0)
	if d > 0 {
		ns = uint64(d)
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.count.Add(1)
	h.sum.Add(ns)
	for {
		cur := h.max.Load()
		if ns <= cur || h.max.CompareAndSwap(cur, ns) {
			return
		}
	}
}

// Bucket is one populated histogram bucket in a snapshot.
type Bucket struct {
	// Low and High bound the bucket: Low <= latency < High.
	Low   time.Duration `json:"low"`
	High  time.Duration `json:"high"`
	Count uint64        `json:"count"`
}

// Snapshot is a point-in-time copy of a Histogram. Only populated buckets
// are retained.
type Snapshot struct {
	Count   uint64        `json:"count"`
	Sum     time.Duration `json:"sum"`
	Max     time.Duration `json:"max"`
	Buckets []Bucket      `json:"buckets,omitempty"`
}

// Snapshot copies the histogram state.
func (h *Histogram) Snapshot() Snapshot {
	s := Snapshot{
		Count: h.count.Load(),
		Sum:   time.Duration(h.sum.Load()),
		Max:   time.Duration(h.max.Load()),
	}
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		s.Buckets = append(s.Buckets, Bucket{
			Low:   time.Duration(bucketLow(i)),
			High:  time.Duration(bucketHigh(i)),
			Count: n,
		})
	}
	return s
}

// Merge folds another snapshot into this one (bucket-wise sum), for
// aggregating histograms across engines — e.g. the experiment harness
// running one engine per site.
func (s Snapshot) Merge(o Snapshot) Snapshot {
	out := Snapshot{Count: s.Count + o.Count, Sum: s.Sum + o.Sum, Max: s.Max}
	if o.Max > out.Max {
		out.Max = o.Max
	}
	i, j := 0, 0
	for i < len(s.Buckets) || j < len(o.Buckets) {
		switch {
		case j >= len(o.Buckets) || (i < len(s.Buckets) && s.Buckets[i].Low < o.Buckets[j].Low):
			out.Buckets = append(out.Buckets, s.Buckets[i])
			i++
		case i >= len(s.Buckets) || o.Buckets[j].Low < s.Buckets[i].Low:
			out.Buckets = append(out.Buckets, o.Buckets[j])
			j++
		default: // same bucket
			b := s.Buckets[i]
			b.Count += o.Buckets[j].Count
			out.Buckets = append(out.Buckets, b)
			i++
			j++
		}
	}
	return out
}

// Mean returns the average observed latency, zero if empty.
func (s Snapshot) Mean() time.Duration {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / time.Duration(s.Count)
}

// Quantile reconstructs the q-quantile (0 <= q <= 1) from the buckets by
// midpoint interpolation; the result is within one sub-bucket (≤ 12.5 %
// relative error) of the true value. Returns zero for an empty snapshot.
func (s Snapshot) Quantile(q float64) time.Duration {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	// rank is 1-based: the smallest observation is rank 1.
	rank := uint64(q*float64(s.Count-1)) + 1
	var seen uint64
	for _, b := range s.Buckets {
		seen += b.Count
		if seen >= rank {
			mid := b.Low + (b.High-b.Low)/2
			if mid > s.Max && s.Max > 0 {
				return s.Max
			}
			return mid
		}
	}
	return s.Max
}

// String summarises the snapshot as one line.
func (s Snapshot) String() string {
	if s.Count == 0 {
		return "n=0"
	}
	return fmt.Sprintf("n=%d p50=%s p90=%s p99=%s max=%s",
		s.Count,
		s.Quantile(0.50).Round(time.Microsecond),
		s.Quantile(0.90).Round(time.Microsecond),
		s.Quantile(0.99).Round(time.Microsecond),
		s.Max.Round(time.Microsecond))
}

// Summary is the JSON-friendly digest of a Snapshot served by
// GET /oak/metrics and printed by oakreport -metrics.
type Summary struct {
	Count  uint64  `json:"count"`
	MeanMs float64 `json:"mean_ms"`
	P50Ms  float64 `json:"p50_ms"`
	P90Ms  float64 `json:"p90_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
}

// Summary digests the snapshot into millisecond percentiles.
func (s Snapshot) Summary() Summary {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return Summary{
		Count:  s.Count,
		MeanMs: ms(s.Mean()),
		P50Ms:  ms(s.Quantile(0.50)),
		P90Ms:  ms(s.Quantile(0.90)),
		P99Ms:  ms(s.Quantile(0.99)),
		MaxMs:  ms(s.Max),
	}
}
