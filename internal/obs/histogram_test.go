package obs

import (
	"math"
	"sync"
	"testing"
	"time"
)

func TestBucketIndexMonotoneAndContinuous(t *testing.T) {
	prev := -1
	for _, ns := range []uint64{0, 1, 2, 7, 8, 9, 15, 16, 31, 32, 1000, 1 << 20, 1 << 40, 1<<62 + 5} {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d: not monotone", ns, i, prev)
		}
		if i < 0 || i >= numBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range [0,%d)", ns, i, numBuckets)
		}
		if lo, hi := bucketLow(i), bucketHigh(i); ns < lo || ns >= hi {
			t.Fatalf("ns %d landed in bucket %d = [%d,%d)", ns, i, lo, hi)
		}
		prev = i
	}
}

func TestBucketBoundsTile(t *testing.T) {
	// Every bucket's upper bound is the next bucket's lower bound: the
	// buckets tile the value space with no gaps or overlaps.
	for i := 0; i < numBuckets-1; i++ {
		if bucketHigh(i) != bucketLow(i+1) {
			t.Fatalf("gap between bucket %d (high %d) and %d (low %d)",
				i, bucketHigh(i), i+1, bucketLow(i+1))
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms uniformly: p50 ≈ 500ms, p90 ≈ 900ms, p99 ≈ 990ms.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("Count = %d, want 1000", s.Count)
	}
	if s.Max != 1000*time.Millisecond {
		t.Errorf("Max = %s, want 1s", s.Max)
	}
	checks := []struct {
		q    float64
		want time.Duration
	}{{0.50, 500 * time.Millisecond}, {0.90, 900 * time.Millisecond}, {0.99, 990 * time.Millisecond}}
	for _, c := range checks {
		got := s.Quantile(c.q)
		rel := math.Abs(float64(got-c.want)) / float64(c.want)
		if rel > 0.125 {
			t.Errorf("Quantile(%.2f) = %s, want %s ± 12.5%% (off by %.1f%%)",
				c.q, got, c.want, rel*100)
		}
	}
	mean := s.Mean()
	if mean < 490*time.Millisecond || mean > 510*time.Millisecond {
		t.Errorf("Mean = %s, want ~500ms", mean)
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	s := h.Snapshot()
	if s.Count != 0 || s.Quantile(0.5) != 0 || s.Mean() != 0 || s.String() != "n=0" {
		t.Errorf("empty snapshot misbehaves: %+v", s)
	}
	h.Observe(-time.Second) // clamped, not a panic
	if got := h.Snapshot().Count; got != 1 {
		t.Errorf("Count after negative observe = %d, want 1", got)
	}
}

func TestHistogramSummary(t *testing.T) {
	var h Histogram
	for i := 0; i < 100; i++ {
		h.Observe(2 * time.Millisecond)
	}
	sum := h.Snapshot().Summary()
	if sum.Count != 100 {
		t.Errorf("Summary.Count = %d", sum.Count)
	}
	if sum.P50Ms < 1.75 || sum.P50Ms > 2.26 {
		t.Errorf("Summary.P50Ms = %f, want ~2", sum.P50Ms)
	}
	if sum.MaxMs != 2 {
		t.Errorf("Summary.MaxMs = %f, want 2", sum.MaxMs)
	}
}

func TestSnapshotMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 500; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 1000 {
		t.Fatalf("merged Count = %d, want 1000", m.Count)
	}
	if m.Max != time.Second {
		t.Errorf("merged Max = %s, want 1s", m.Max)
	}
	var n uint64
	for i, bk := range m.Buckets {
		n += bk.Count
		if i > 0 && bk.Low < m.Buckets[i-1].Low {
			t.Fatalf("merged buckets unsorted at %d", i)
		}
	}
	if n != 1000 {
		t.Errorf("merged bucket counts sum to %d", n)
	}
	p50 := m.Quantile(0.5)
	if rel := math.Abs(float64(p50-500*time.Millisecond)) / float64(500*time.Millisecond); rel > 0.125 {
		t.Errorf("merged p50 = %s, want ~500ms", p50)
	}
	// Merging with an empty snapshot is the identity.
	if id := a.Snapshot().Merge(Snapshot{}); id.Count != 500 || len(id.Buckets) != len(a.Snapshot().Buckets) {
		t.Errorf("merge with empty changed snapshot: %+v", id)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const (
		goroutines = 8
		perG       = 5000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				h.Observe(time.Duration(g*perG+i) * time.Microsecond)
				if i%1000 == 0 {
					_ = h.Snapshot() // concurrent reads must be safe
				}
			}
		}(g)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != goroutines*perG {
		t.Errorf("Count = %d, want %d", s.Count, goroutines*perG)
	}
	var n uint64
	for _, b := range s.Buckets {
		n += b.Count
	}
	if n != s.Count {
		t.Errorf("bucket counts sum to %d, Count = %d", n, s.Count)
	}
}
