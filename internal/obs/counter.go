package obs

import "sync/atomic"

// Counter is a lock-free monotone event counter: unlike Gauge it only moves
// up — faults injected, snapshots recovered, requests shed. The zero value
// is ready to use; all methods are safe for concurrent use.
//
// A Counter must not be copied after first use.
type Counter struct {
	v atomic.Uint64
}

// Inc adds one to the counter.
func (c *Counter) Inc() { c.v.Add(1) }

// Add moves the counter forward by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }
