package obs

import (
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("Value = %d, want 5", c.Value())
	}
}

func TestCounterConcurrent(t *testing.T) {
	var c Counter
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if c.Value() != 8000 {
		t.Errorf("Value = %d, want 8000", c.Value())
	}
}
