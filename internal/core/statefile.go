package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
)

// Crash-safe state files: SaveStateFile writes checksummed snapshots via
// the classic tmp + fsync + rename dance and keeps the previous good
// snapshot as a rotating ".bak"; LoadStateFile restores the snapshot and —
// when the primary file is damaged or missing mid-rotation — falls back to
// the backup instead of failing boot. Together they guarantee that a crash
// at any instant (mid-save, mid-rotation, or external corruption of the
// primary) costs at most one save interval of learned state, never all of
// it.

// BackupSuffix is appended to a state file's path to name the rotating
// last-good snapshot SaveStateFile keeps.
const BackupSuffix = ".bak"

// StateSource says where LoadStateFile got the engine's state from.
type StateSource string

const (
	// StateFresh: neither the snapshot nor its backup existed — a fresh
	// deployment.
	StateFresh StateSource = "fresh"
	// StateSnapshot: the primary snapshot file loaded cleanly.
	StateSnapshot StateSource = "snapshot"
	// StateBackup: the primary was damaged or missing and state was
	// recovered from the rotating backup.
	StateBackup StateSource = "backup"
	// StateShipped: state was rehydrated from a snapshot shipped by
	// another node (cluster node replacement), not from this node's own
	// files. Set by ImportShippedState, never by LoadStateFile.
	StateShipped StateSource = "shipped"
)

// SaveStateFile persists the engine's state to path crash-safely:
//
//  1. the checksummed snapshot is written to path+".tmp" and fsynced, so a
//     crash mid-write never touches the live file;
//  2. the current snapshot, if any, is rotated to path+BackupSuffix;
//  3. the temp file is renamed over path (atomic on POSIX filesystems).
//
// On any failure the temp file is removed rather than leaked. A crash
// between steps 2 and 3 leaves only the backup; LoadStateFile recovers from
// it.
func (e *Engine) SaveStateFile(path string) error {
	data, err := e.ExportSnapshot()
	if err != nil {
		return fmt.Errorf("engine: export snapshot: %w", err)
	}
	tmp := path + ".tmp"
	if err := writeFileSync(tmp, data); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: write snapshot: %w", err)
	}
	if _, err := os.Stat(path); err == nil {
		if err := os.Rename(path, path+BackupSuffix); err != nil {
			os.Remove(tmp)
			return fmt.Errorf("engine: rotate backup: %w", err)
		}
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("engine: install snapshot: %w", err)
	}
	syncDir(filepath.Dir(path))
	return nil
}

// LoadStateFile restores engine state saved by SaveStateFile. A missing
// snapshot with no backup is a fresh deployment, not an error. A damaged
// primary (torn write, checksum mismatch, undecodable payload) falls back
// to the rotating backup — counting one state recovery in the engine's
// metrics — and only fails if the backup is unusable too. The returned
// StateSource says which file actually populated the engine.
func (e *Engine) LoadStateFile(path string) (StateSource, error) {
	bak := path + BackupSuffix
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		// No primary. Either a fresh deployment, or a crash landed between
		// SaveStateFile's rotation and install renames — in which case the
		// backup holds the last good snapshot.
		bdata, berr := os.ReadFile(bak)
		if os.IsNotExist(berr) {
			e.stateSource.Store(StateFresh)
			return StateFresh, nil
		}
		if berr != nil {
			return "", fmt.Errorf("engine: read state backup: %w", berr)
		}
		if ierr := e.importState(bdata, true); ierr != nil {
			return "", fmt.Errorf("engine: import state backup: %w", ierr)
		}
		e.metrics.stateRecoveries.Inc()
		e.stateSource.Store(StateBackup)
		return StateBackup, nil
	}
	if err != nil {
		return "", fmt.Errorf("engine: read state: %w", err)
	}
	// Boot imports merge newer-wins with recovered spill records: a profile
	// spilled (and fsynced) after the snapshot was saved survives the
	// import, so a kill between spill and the next SaveStateFile loses no
	// acknowledged state. See importState.
	primaryErr := e.importState(data, true)
	if primaryErr == nil {
		e.stateSource.Store(StateSnapshot)
		return StateSnapshot, nil
	}
	if !errors.Is(primaryErr, ErrCorruptState) && !errors.Is(primaryErr, ErrStateVersion) {
		return "", primaryErr
	}
	bdata, berr := os.ReadFile(bak)
	if berr != nil {
		// No usable backup: surface the original corruption, not the
		// backup's absence.
		return "", fmt.Errorf("engine: import state (no backup to recover from): %w", primaryErr)
	}
	if ierr := e.importState(bdata, true); ierr != nil {
		return "", fmt.Errorf("engine: snapshot and backup both unusable: %w (backup: %v)", primaryErr, ierr)
	}
	e.metrics.stateRecoveries.Inc()
	e.stateSource.Store(StateBackup)
	return StateBackup, nil
}

// ImportShippedState restores a snapshot shipped from another node — the
// cluster node-replacement path. Beyond ImportState it marks the engine's
// state source as StateShipped and counts a state recovery, so healthz
// shows that this process's state was rebuilt from somewhere other than
// its own files.
func (e *Engine) ImportShippedState(data []byte) error {
	if err := e.ImportState(data); err != nil {
		return err
	}
	e.metrics.stateRecoveries.Inc()
	e.stateSource.Store(StateShipped)
	return nil
}

// StateRecoveries returns how many times state was restored from somewhere
// other than the primary snapshot file: the rotating backup (damaged or
// missing primary) or a shipped snapshot (node replacement).
func (e *Engine) StateRecoveries() uint64 {
	return e.metrics.stateRecoveries.Value()
}

// StateStatus reports where the engine's state last came from and how many
// recoveries have happened. An engine that never loaded a state file reads
// as StateFresh.
func (e *Engine) StateStatus() (StateSource, uint64) {
	src, _ := e.stateSource.Load().(StateSource)
	if src == "" {
		src = StateFresh
	}
	return src, e.metrics.stateRecoveries.Value()
}

// writeFileSync writes data to path and fsyncs it before closing, so the
// bytes are durable before any rename makes the file visible.
func writeFileSync(path string, data []byte) error {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// syncDir fsyncs a directory so a just-completed rename survives power
// loss. Best-effort: some filesystems reject directory fsync, and the data
// itself is already durable.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	_ = d.Sync()
	_ = d.Close()
}
