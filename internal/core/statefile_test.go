package core

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"oak/internal/rules"
)

func statePathIn(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "oak-state.json")
}

func TestSaveLoadStateFileRoundTrip(t *testing.T) {
	clock := newTestClock()
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	path := statePathIn(t)
	if err := e1.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}

	e2, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	src, err := e2.LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if src != StateSnapshot {
		t.Errorf("source = %q, want snapshot", src)
	}
	if e2.Users() != 1 {
		t.Errorf("Users = %d, want 1", e2.Users())
	}
	if e2.StateRecoveries() != 0 {
		t.Errorf("StateRecoveries = %d, want 0", e2.StateRecoveries())
	}
}

func TestLoadStateFileFreshDeployment(t *testing.T) {
	e, _ := NewEngine(nil)
	src, err := e.LoadStateFile(statePathIn(t))
	if err != nil {
		t.Fatal(err)
	}
	if src != StateFresh {
		t.Errorf("source = %q, want fresh", src)
	}
}

// saveTwice persists twice so a previous good snapshot sits in the backup.
func saveTwice(t *testing.T, e *Engine, path string) {
	t.Helper()
	for i := 0; i < 2; i++ {
		if err := e.SaveStateFile(path); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(path + BackupSuffix); err != nil {
		t.Fatalf("no backup after second save: %v", err)
	}
}

func TestLoadStateFileCorruptPrimaryRecoversFromBackup(t *testing.T) {
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	path := statePathIn(t)
	saveTwice(t, e1, path)

	// Flip one payload byte, as a disk fault or torn write would.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-2] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	e2, _ := NewEngine([]*rules.Rule{jqRule(0)})
	src, err := e2.LoadStateFile(path)
	if err != nil {
		t.Fatalf("corrupt primary with good backup: %v", err)
	}
	if src != StateBackup {
		t.Errorf("source = %q, want backup", src)
	}
	if e2.Users() != 1 {
		t.Errorf("recovered Users = %d, want 1", e2.Users())
	}
	if e2.StateRecoveries() != 1 {
		t.Errorf("StateRecoveries = %d, want 1", e2.StateRecoveries())
	}
	if e2.Metrics().StateRecoveries != 1 {
		t.Errorf("Metrics().StateRecoveries = %d, want 1", e2.Metrics().StateRecoveries)
	}
}

func TestLoadStateFileMissingPrimaryUsesBackup(t *testing.T) {
	// A crash between SaveStateFile's two renames leaves only the backup.
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	path := statePathIn(t)
	saveTwice(t, e1, path)
	if err := os.Remove(path); err != nil {
		t.Fatal(err)
	}

	e2, _ := NewEngine([]*rules.Rule{jqRule(0)})
	src, err := e2.LoadStateFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if src != StateBackup {
		t.Errorf("source = %q, want backup", src)
	}
	if e2.Users() != 1 {
		t.Errorf("recovered Users = %d, want 1", e2.Users())
	}
}

func TestLoadStateFileCorruptWithoutBackupFails(t *testing.T) {
	path := statePathIn(t)
	if err := os.WriteFile(path, []byte("OAKSNAP2 crc32c=deadbeef len=3\nxyz"), 0o600); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(nil)
	if _, err := e.LoadStateFile(path); err == nil {
		t.Error("corrupt primary with no backup: want error")
	}
}

func TestLoadStateFileBothCorruptFails(t *testing.T) {
	path := statePathIn(t)
	if err := os.WriteFile(path, []byte("garbage{"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path+BackupSuffix, []byte("also-garbage{"), 0o600); err != nil {
		t.Fatal(err)
	}
	e, _ := NewEngine(nil)
	if _, err := e.LoadStateFile(path); err == nil {
		t.Error("both files corrupt: want error")
	}
}

func TestSaveStateFileLeavesNoTemp(t *testing.T) {
	e, _ := NewEngine(nil)
	path := statePathIn(t)
	if err := e.SaveStateFile(path); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			t.Errorf("temp file leaked: %s", ent.Name())
		}
	}
}

func TestSaveStateFileBackupHoldsPreviousState(t *testing.T) {
	// The backup must be the previous snapshot, not a copy of the new one.
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	path := statePathIn(t)
	if err := e.SaveStateFile(path); err != nil { // empty state
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveStateFile(path); err != nil { // one user
		t.Fatal(err)
	}

	fromBak, _ := NewEngine([]*rules.Rule{jqRule(0)})
	bdata, err := os.ReadFile(path + BackupSuffix)
	if err != nil {
		t.Fatal(err)
	}
	if err := fromBak.ImportState(bdata); err != nil {
		t.Fatal(err)
	}
	if fromBak.Users() != 0 {
		t.Errorf("backup has %d users, want the previous (empty) state", fromBak.Users())
	}
}
