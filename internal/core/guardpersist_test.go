package core

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"oak/internal/rules"
)

// Snapshot compatibility across the guard boundary: pre-guard snapshots (no
// "guard" key) and legacy plain-JSON state files must load into guard-enabled
// engines with empty guard state, and re-export byte-identically; snapshots
// carrying guard state must restore breakers, quarantines and the
// provider→activations index.

// pinnedEngines builds a guardless source engine and a guard-enabled target
// engine on identically pinned clocks, so exports are byte-comparable.
func pinnedEngines(t *testing.T) (src, dst *Engine) {
	t.Helper()
	srcClock, dstClock := newTestClock(), newTestClock()
	var err error
	src, err = NewEngine([]*rules.Rule{jqRule(0)}, WithClock(srcClock.Now))
	if err != nil {
		t.Fatal(err)
	}
	dst, err = NewEngine([]*rules.Rule{jqRule(0)}, WithClock(dstClock.Now),
		WithGuard(GuardConfig{TripThreshold: 3}))
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestPreGuardSnapshotLoadsWithEmptyGuardState(t *testing.T) {
	src, dst := pinnedEngines(t)
	if _, err := src.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	snap, err := src.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// A guardless engine's snapshot is the pre-guard format: no guard key.
	if bytes.Contains(snap, []byte(`"guard"`)) {
		t.Fatalf("guardless snapshot contains a guard section:\n%s", snap)
	}

	if err := dst.ImportState(snap); err != nil {
		t.Fatalf("pre-guard snapshot rejected by guard-enabled engine: %v", err)
	}
	if dst.Users() != 1 {
		t.Errorf("Users = %d, want 1", dst.Users())
	}
	st, ok := dst.GuardStatus()
	if !ok {
		t.Fatal("GuardStatus not ok")
	}
	if len(st.Breakers) != 0 || len(st.Quarantines) != 0 || len(st.QuarantinedRules) != 0 {
		t.Errorf("guard state after pre-guard import = %+v, want empty", st)
	}

	// Healthy guard state exports nothing: the re-export is byte-identical
	// to the pre-guard snapshot.
	reexport, err := dst.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, reexport) {
		t.Errorf("re-export differs from pre-guard snapshot:\n--- original\n%s\n--- re-export\n%s",
			snap, reexport)
	}
}

func TestLegacyPlainJSONLoadsWithEmptyGuardState(t *testing.T) {
	src, dst := pinnedEngines(t)
	if _, err := src.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	legacy, err := src.ExportState() // headerless: the legacy format
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(legacy); err != nil {
		t.Fatalf("legacy state rejected by guard-enabled engine: %v", err)
	}
	st, _ := dst.GuardStatus()
	if len(st.Breakers) != 0 {
		t.Errorf("guard state after legacy import = %+v, want empty", st)
	}
	reexport, err := dst.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, reexport) {
		t.Errorf("re-export differs from legacy state:\n--- original\n%s\n--- re-export\n%s",
			legacy, reexport)
	}
}

func TestGuardStateSurvivesSnapshotRoundTrip(t *testing.T) {
	clock := newTestClock()
	mk := func() *Engine {
		e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now),
			WithGuard(GuardConfig{TripThreshold: 3, OpenFor: time.Minute}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := mk()
	e1.QuarantineProvider("s2.net")
	e1.QuarantineRule("jquery")
	snap, err := e1.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snap, []byte(`"guard"`)) {
		t.Fatalf("snapshot missing guard section:\n%s", snap)
	}

	e2 := mk()
	if err := e2.ImportState(snap); err != nil {
		t.Fatal(err)
	}
	if got := e2.OpenBreakers(); len(got) != 1 || got[0] != "s2.net" {
		t.Errorf("OpenBreakers after import = %v, want [s2.net]", got)
	}
	st, _ := e2.GuardStatus()
	if len(st.QuarantinedRules) != 1 || st.QuarantinedRules[0] != "jquery" {
		t.Errorf("QuarantinedRules after import = %v, want [jquery]", st.QuarantinedRules)
	}
	// The restored quarantine still blocks activations.
	res, _ := e2.HandleReport(slowS1Report("u1"))
	if len(res.Changes) != 0 {
		t.Errorf("activation admitted despite imported quarantine: %+v", res.Changes)
	}
}

func TestImportRebuildsProviderIndex(t *testing.T) {
	// Activations restored from a snapshot must be reachable by a later
	// breaker trip: the provider→activations index is rebuilt at import.
	clock := newTestClock()
	mk := func() *Engine {
		e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now), WithShards(4),
			WithGuard(GuardConfig{TripThreshold: 2}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := mk()
	const users = 6
	for i := 0; i < users; i++ {
		if _, err := e1.HandleReport(slowS1Report(fmt.Sprintf("user-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	snap, err := e1.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}

	e2 := mk()
	if err := e2.ImportState(snap); err != nil {
		t.Fatal(err)
	}
	e2.ObserveProviderOutcome("s2.net", false, 500)
	e2.ObserveProviderOutcome("s2.net", false, 500)
	m := e2.Metrics()
	if m.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", m.BreakerTrips)
	}
	if m.BulkDeactivations != users {
		t.Errorf("BulkDeactivations = %d, want %d (imported index incomplete)",
			m.BulkDeactivations, users)
	}
	page := `<script src="http://s1.com/jquery.js">`
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user-%d", i)
		if out, _ := e2.ModifyPage(u, "/index.html", page); out != page {
			t.Errorf("imported user %s not rolled back", u)
		}
	}
}

func TestGuardlessEngineAcceptsGuardSnapshot(t *testing.T) {
	// Downgrade path: a snapshot with guard state loads into an engine built
	// without WithGuard (the guard section is simply ignored).
	clock := newTestClock()
	e1, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now),
		WithGuard(GuardConfig{TripThreshold: 3}))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	e1.QuarantineProvider("other.example")
	snap, err := e1.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	e2, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ImportState(snap); err != nil {
		t.Fatalf("guardless engine rejected guard snapshot: %v", err)
	}
	if e2.Users() != 1 {
		t.Errorf("Users = %d, want 1", e2.Users())
	}
}
