package core

import (
	"fmt"
	"sync"
	"testing"

	"oak/internal/rules"
)

// TestGuardConcurrentTripAndServe hammers the guard's cross-shard paths under
// the race detector: breaker trips (bulk deactivation, one shard write lock
// at a time) racing ingest, cached serves, state export and manual overrides.
func TestGuardConcurrentTripAndServe(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)},
		WithShards(4),
		WithRewriteCache(64),
		WithGuard(GuardConfig{TripThreshold: 2, HalfOpenCanaries: 2, CloseAfter: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 4
		iters   = 50
	)
	page := `<html><script src="http://s1.com/jquery.js"></script></html>`
	var wg sync.WaitGroup

	// Ingesters: keep activating users onto s2.net.
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := fmt.Sprintf("user-%d-%d", w, i%8)
				if _, err := e.HandleReport(slowS1Report(u)); err != nil {
					t.Errorf("HandleReport: %v", err)
					return
				}
			}
		}(w)
	}
	// Servers: rewrite pages (hitting and filling the rewrite cache).
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				u := fmt.Sprintf("user-%d-%d", w, i%8)
				e.ModifyPage(u, "/index.html", page)
				e.ModifyPage(u, "/index.html", page) // immediate re-serve: cache hit path
			}
		}(w)
	}
	// Tripper: bad outcome bursts (trips + bulk rollbacks) interleaved with
	// good outcomes and manual releases.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e.ObserveProviderOutcome("s2.net", false, 400)
			e.ObserveProviderOutcome("s2.net", false, 400)
			e.ObserveProviderOutcome("s2.net", true, 50)
			if i%5 == 0 {
				e.ReleaseProvider("s2.net")
			}
		}
	}()
	// Rule quarantine flapping: synchronous cross-shard rollback scans.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			e.QuarantineRule("jquery")
			e.ReleaseRule("jquery")
		}
	}()
	// Exporter: weakly consistent cross-shard snapshots during the storm.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < iters/2; i++ {
			if _, err := e.ExportState(); err != nil {
				t.Errorf("ExportState: %v", err)
				return
			}
			e.GuardStatus()
			e.OpenBreakers()
			e.Metrics()
		}
	}()
	wg.Wait()

	// The engine must still be coherent: release everything and confirm the
	// control loop works end to end.
	e.ReleaseProvider("s2.net")
	e.ReleaseRule("jquery")
	if _, err := e.HandleReport(slowS1Report("final-user")); err != nil {
		t.Fatal(err)
	}
	if e.Users() == 0 {
		t.Error("no users after hammer")
	}
	if _, err := e.ExportSnapshot(); err != nil {
		t.Fatalf("final export: %v", err)
	}
}
