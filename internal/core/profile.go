package core

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/rules"
)

// ActiveRule is one activated rule in a user's profile.
type ActiveRule struct {
	// Rule is the activated rule.
	Rule *rules.Rule
	// AltIndex is the currently selected alternative.
	AltIndex int
	// ActivatedAt is when the (latest) activation happened.
	ActivatedAt time.Time
	// ExpiresAt is when the activation lapses; zero means never (TTL 0).
	ExpiresAt time.Time
	// TriggerServer is the violating server that caused the activation.
	TriggerServer string
	// TriggerDistance is the violator's distance from the median at
	// activation time — the yardstick the history mechanism compares the
	// alternate against later (Section 4.2.3).
	TriggerDistance float64
	// Activations counts how many times this rule has (re-)activated for
	// the user, driving linear alternative progression.
	Activations int
	// Synthesized marks provenance: the activation came from
	// population-level rule synthesis rather than this user's own
	// violation history. A later organic (re-)activation clears it.
	Synthesized bool
}

// Expired reports whether the activation has lapsed at time now.
func (a *ActiveRule) Expired(now time.Time) bool {
	return !a.ExpiresAt.IsZero() && now.After(a.ExpiresAt)
}

// Profile is Oak's per-user state: every decision Oak makes is grounded in
// this user's own reported performance, never the aggregate.
type Profile struct {
	// UserID is the identifying cookie value.
	UserID string
	// violations counts, per server address, how many reports flagged the
	// server as a violator for this user. Drives Policy.MinViolations.
	violations map[string]int
	// active maps rule ID to the live activation.
	active map[string]*ActiveRule
	// lastReport is when the user last submitted a report.
	lastReport time.Time

	// epoch increments on every activation-state change (activate,
	// deactivate, prune, observed expiry). Readers validate cached
	// derivations against it instead of rescanning the active map, so the
	// serve path pays nothing while a user's activations are stable.
	epoch atomic.Uint64
	// nextExpiry is the earliest ExpiresAt among live activations in unix
	// nanoseconds (0 = none). The read path checks it to observe TTL expiry
	// lazily — a rule lapsing between two reports bumps the epoch on the
	// first read past the deadline, not on the next ingest.
	nextExpiry atomic.Int64
	// cacheMu guards actCache. Mutations of the activation state itself
	// happen under the owning shard's write lock; the little mutex only
	// serialises concurrent readers publishing derived entries.
	cacheMu sync.Mutex
	// actCache memoizes the per-path derived activation view (activation
	// slice, fingerprint, compiled applier), keyed by page path.
	actCache map[string]*actCacheEntry

	// sizeEst is the profile's last heap-footprint estimate in bytes
	// (estimateSize), the unit the residency byte cap counts in. Maintained
	// only on engines with a residency cap, under the owning shard's write
	// lock.
	sizeEst int
}

// maxActCachePaths bounds the per-profile activation cache; a profile
// browsing more distinct paths than this resets the map rather than growing
// without bound.
const maxActCachePaths = 64

// actCacheEntry is an immutable compiled view of one (profile, path)
// activation state: the derived in-scope activation list, its fingerprint,
// and the single-pass applier compiled from it. Published entries are never
// mutated; validity is (same profile epoch, same rule-set generation,
// earliest-expiry not passed).
type actCacheEntry struct {
	epoch   uint64 // profile epoch at derivation
	gen     uint64 // engine rule-set generation at derivation
	expires int64  // earliest ExpiresAt (unixnano) among acts; 0 = none
	acts    []rules.Activation
	fp      uint64         // activation fingerprint; 0 ⇔ no in-scope activations
	applier *rules.Applier // nil when fp == 0
}

// newProfile creates an empty profile for a user.
func newProfile(userID string) *Profile {
	return &Profile{
		UserID:     userID,
		violations: make(map[string]int),
		active:     make(map[string]*ActiveRule),
	}
}

// recordViolation bumps the per-server violation counter and returns the
// new count.
func (p *Profile) recordViolation(serverAddr string) int {
	p.violations[serverAddr]++
	return p.violations[serverAddr]
}

// violationCount returns how many times the server has violated for this
// user.
func (p *Profile) violationCount(serverAddr string) int {
	return p.violations[serverAddr]
}

// activeRule returns the live activation for the rule ID, nil if none.
func (p *Profile) activeRule(id string) *ActiveRule {
	return p.active[id]
}

// activate records a (re-)activation of rule with the chosen alternative.
// Caller holds the owning shard's write lock.
func (p *Profile) activate(r *rules.Rule, altIndex int, now time.Time, server string, distance float64) *ActiveRule {
	a := p.active[r.ID]
	if a == nil {
		a = &ActiveRule{Rule: r}
		p.active[r.ID] = a
	}
	a.AltIndex = altIndex
	a.ActivatedAt = now
	a.ExpiresAt = r.Expires(now)
	a.TriggerServer = server
	a.TriggerDistance = distance
	a.Activations++
	// Provenance defaults to organic; synthesizeLocked sets Synthesized on
	// the returned activation, and any later organic (re-)activation —
	// meaning the user's own evidence now justifies the rule — clears it.
	a.Synthesized = false
	p.noteExpiry(a.ExpiresAt)
	p.epoch.Add(1)
	return a
}

// deactivate removes the rule's activation. Caller holds the owning shard's
// write lock.
func (p *Profile) deactivate(ruleID string) {
	delete(p.active, ruleID)
	p.epoch.Add(1)
}

// expiredActivation identifies one pruned activation: the rule and the
// alternative that was in effect, so the engine can unindex it from the
// guard's provider→activations index.
type expiredActivation struct {
	ID       string
	AltIndex int
}

// pruneExpired drops lapsed activations and returns what was removed (sorted
// by rule ID). Caller holds the owning shard's write lock.
func (p *Profile) pruneExpired(now time.Time) []expiredActivation {
	var removed []expiredActivation
	for id, a := range p.active {
		if a.Expired(now) {
			delete(p.active, id)
			removed = append(removed, expiredActivation{ID: id, AltIndex: a.AltIndex})
		}
	}
	if len(removed) > 0 {
		// nextExpiry may point at a removed activation; re-derive it from
		// the survivors (safe under the write lock — no reader runs).
		p.nextExpiry.Store(0)
		for _, a := range p.active {
			p.noteExpiry(a.ExpiresAt)
		}
		p.epoch.Add(1)
	}
	sort.Slice(removed, func(i, j int) bool { return removed[i].ID < removed[j].ID })
	return removed
}

// noteExpiry lowers nextExpiry to t if t is an earlier (non-zero) deadline.
func (p *Profile) noteExpiry(t time.Time) {
	if t.IsZero() {
		return
	}
	n := t.UnixNano()
	for {
		cur := p.nextExpiry.Load()
		if cur != 0 && cur <= n {
			return
		}
		if p.nextExpiry.CompareAndSwap(cur, n) {
			return
		}
	}
}

// observeExpiry bumps the epoch once when the earliest activation deadline
// has passed, so read paths notice TTL expiry without waiting for the next
// ingest. The CAS makes the bump exactly-once per deadline under concurrent
// readers; the next derivation re-arms nextExpiry for the survivors.
// ActiveRule.Expired is strict (now.After), so the bump is too.
func (p *Profile) observeExpiry(now time.Time) {
	ne := p.nextExpiry.Load()
	if ne != 0 && now.UnixNano() > ne {
		if p.nextExpiry.CompareAndSwap(ne, 0) {
			p.epoch.Add(1)
		}
	}
}

// cachedActivations returns the memoized compiled activation view for path,
// deriving (and publishing) it only when the profile epoch, rule-set
// generation, or an expiry deadline has invalidated the cached entry.
// Callers must hold the owning shard's lock (read or write); the returned
// entry and everything it references are immutable.
func (p *Profile) cachedActivations(path string, now time.Time, gen uint64) *actCacheEntry {
	p.observeExpiry(now)
	ep := p.epoch.Load()
	p.cacheMu.Lock()
	if ent, ok := p.actCache[path]; ok && ent.epoch == ep && ent.gen == gen &&
		(ent.expires == 0 || now.UnixNano() <= ent.expires) {
		p.cacheMu.Unlock()
		return ent
	}
	p.cacheMu.Unlock()

	ent := p.deriveEntry(path, now, gen, ep)

	p.cacheMu.Lock()
	if p.actCache == nil || len(p.actCache) >= maxActCachePaths {
		p.actCache = make(map[string]*actCacheEntry, 8)
	}
	p.actCache[path] = ent
	p.cacheMu.Unlock()
	return ent
}

// deriveEntry builds a fresh activation view for path at time now. It also
// re-arms nextExpiry from the full live activation set, completing the
// lazy-expiry handshake started by observeExpiry. Caller holds the owning
// shard's lock.
func (p *Profile) deriveEntry(path string, now time.Time, gen, ep uint64) *actCacheEntry {
	ids := make([]string, 0, len(p.active))
	var scopedExpiry time.Time
	for id, a := range p.active {
		if a.Expired(now) {
			continue
		}
		p.noteExpiry(a.ExpiresAt)
		if !a.Rule.InScope(path) {
			continue
		}
		if !a.ExpiresAt.IsZero() && (scopedExpiry.IsZero() || a.ExpiresAt.Before(scopedExpiry)) {
			scopedExpiry = a.ExpiresAt
		}
		ids = append(ids, id)
	}
	ent := &actCacheEntry{epoch: ep, gen: gen}
	if !scopedExpiry.IsZero() {
		ent.expires = scopedExpiry.UnixNano()
	}
	if len(ids) == 0 {
		return ent
	}
	sort.Strings(ids)
	ent.acts = make([]rules.Activation, 0, len(ids))
	for _, id := range ids {
		a := p.active[id]
		ent.acts = append(ent.acts, rules.Activation{
			Rule: a.Rule, AltIndex: a.AltIndex, Synthesized: a.Synthesized,
		})
	}
	ent.fp = activationFingerprint(gen, path, ent.acts)
	ent.applier = rules.NewApplier(ent.acts, path)
	return ent
}

// activationFingerprint hashes an in-scope activation set — rule-set
// generation, page path, and each (rule ID, alternative index) pair — with
// FNV-1a. Zero is reserved for the empty set, so a zero fingerprint always
// means "serve the page untouched"; non-empty sets are forced non-zero.
func activationFingerprint(gen uint64, path string, acts []rules.Activation) uint64 {
	if len(acts) == 0 {
		return 0
	}
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	for i := 0; i < 64; i += 8 {
		h ^= (gen >> i) & 0xff
		h *= prime
	}
	mix := func(s string) {
		for i := 0; i < len(s); i++ {
			h ^= uint64(s[i])
			h *= prime
		}
		h ^= 0xff // terminator so "ab","c" ≠ "a","bc"
		h *= prime
	}
	mix(path)
	for _, a := range acts {
		mix(a.Rule.ID)
		h ^= uint64(uint32(a.AltIndex))
		h *= prime
	}
	if h == 0 {
		h = 1
	}
	return h
}

// activations returns the user's live activations for a page path as an
// ordered rule application list (sorted by rule ID for determinism).
func (p *Profile) activations(path string, now time.Time) []rules.Activation {
	ids := make([]string, 0, len(p.active))
	for id, a := range p.active {
		if a.Expired(now) || !a.Rule.InScope(path) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	acts := make([]rules.Activation, 0, len(ids))
	for _, id := range ids {
		a := p.active[id]
		acts = append(acts, rules.Activation{
			Rule: a.Rule, AltIndex: a.AltIndex, Synthesized: a.Synthesized,
		})
	}
	return acts
}

// ActiveRuleIDs lists the user's live activations (sorted), for inspection.
func (p *Profile) ActiveRuleIDs(now time.Time) []string {
	var ids []string
	for id, a := range p.active {
		if !a.Expired(now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}

// activeRuleIDsInto is ActiveRuleIDs appending into buf's backing array, so
// the per-report reconciliation loop reuses one snapshot buffer instead of
// allocating a fresh slice per violation.
func (p *Profile) activeRuleIDsInto(now time.Time, buf []string) []string {
	ids := buf[:0]
	for id, a := range p.active {
		if !a.Expired(now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
