package core

import (
	"sort"
	"time"

	"oak/internal/rules"
)

// ActiveRule is one activated rule in a user's profile.
type ActiveRule struct {
	// Rule is the activated rule.
	Rule *rules.Rule
	// AltIndex is the currently selected alternative.
	AltIndex int
	// ActivatedAt is when the (latest) activation happened.
	ActivatedAt time.Time
	// ExpiresAt is when the activation lapses; zero means never (TTL 0).
	ExpiresAt time.Time
	// TriggerServer is the violating server that caused the activation.
	TriggerServer string
	// TriggerDistance is the violator's distance from the median at
	// activation time — the yardstick the history mechanism compares the
	// alternate against later (Section 4.2.3).
	TriggerDistance float64
	// Activations counts how many times this rule has (re-)activated for
	// the user, driving linear alternative progression.
	Activations int
}

// Expired reports whether the activation has lapsed at time now.
func (a *ActiveRule) Expired(now time.Time) bool {
	return !a.ExpiresAt.IsZero() && now.After(a.ExpiresAt)
}

// Profile is Oak's per-user state: every decision Oak makes is grounded in
// this user's own reported performance, never the aggregate.
type Profile struct {
	// UserID is the identifying cookie value.
	UserID string
	// violations counts, per server address, how many reports flagged the
	// server as a violator for this user. Drives Policy.MinViolations.
	violations map[string]int
	// active maps rule ID to the live activation.
	active map[string]*ActiveRule
	// lastReport is when the user last submitted a report.
	lastReport time.Time
}

// newProfile creates an empty profile for a user.
func newProfile(userID string) *Profile {
	return &Profile{
		UserID:     userID,
		violations: make(map[string]int),
		active:     make(map[string]*ActiveRule),
	}
}

// recordViolation bumps the per-server violation counter and returns the
// new count.
func (p *Profile) recordViolation(serverAddr string) int {
	p.violations[serverAddr]++
	return p.violations[serverAddr]
}

// violationCount returns how many times the server has violated for this
// user.
func (p *Profile) violationCount(serverAddr string) int {
	return p.violations[serverAddr]
}

// activeRule returns the live activation for the rule ID, nil if none.
func (p *Profile) activeRule(id string) *ActiveRule {
	return p.active[id]
}

// activate records a (re-)activation of rule with the chosen alternative.
func (p *Profile) activate(r *rules.Rule, altIndex int, now time.Time, server string, distance float64) *ActiveRule {
	a := p.active[r.ID]
	if a == nil {
		a = &ActiveRule{Rule: r}
		p.active[r.ID] = a
	}
	a.AltIndex = altIndex
	a.ActivatedAt = now
	a.ExpiresAt = r.Expires(now)
	a.TriggerServer = server
	a.TriggerDistance = distance
	a.Activations++
	return a
}

// deactivate removes the rule's activation.
func (p *Profile) deactivate(ruleID string) {
	delete(p.active, ruleID)
}

// pruneExpired drops lapsed activations and returns the IDs removed.
func (p *Profile) pruneExpired(now time.Time) []string {
	var removed []string
	for id, a := range p.active {
		if a.Expired(now) {
			delete(p.active, id)
			removed = append(removed, id)
		}
	}
	sort.Strings(removed)
	return removed
}

// activations returns the user's live activations for a page path as an
// ordered rule application list (sorted by rule ID for determinism).
func (p *Profile) activations(path string, now time.Time) []rules.Activation {
	ids := make([]string, 0, len(p.active))
	for id, a := range p.active {
		if a.Expired(now) || !a.Rule.InScope(path) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Strings(ids)
	acts := make([]rules.Activation, 0, len(ids))
	for _, id := range ids {
		a := p.active[id]
		acts = append(acts, rules.Activation{Rule: a.Rule, AltIndex: a.AltIndex})
	}
	return acts
}

// ActiveRuleIDs lists the user's live activations (sorted), for inspection.
func (p *Profile) ActiveRuleIDs(now time.Time) []string {
	var ids []string
	for id, a := range p.active {
		if !a.Expired(now) {
			ids = append(ids, id)
		}
	}
	sort.Strings(ids)
	return ids
}
