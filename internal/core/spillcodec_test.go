package core

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"
)

// spillTestProfile is a persisted profile exercising every field: multiple
// violation counters, two activations (one synthesized), a fractional
// trigger distance and sub-second timestamps.
func spillTestProfile() persistedProfile {
	base := time.Date(2026, 3, 14, 9, 26, 53, 589793000, time.UTC)
	return persistedProfile{
		UserID:     "user-α-42",
		LastReport: base,
		Violations: map[string]int{"ip-s1.com": 3, "ip-cdn.example": 1},
		Active: []persistedActivation{
			{
				RuleID:          "jquery",
				AltIndex:        1,
				ActivatedAt:     base.Add(-time.Hour),
				ExpiresAt:       base.Add(time.Hour),
				TriggerServer:   "ip-s1.com",
				TriggerDistance: 3.25,
				Activations:     7,
			},
			{
				RuleID:          "synth-cdn",
				ActivatedAt:     base.Add(-time.Minute),
				TriggerServer:   "ip-cdn.example",
				TriggerDistance: 1.0,
				Activations:     1,
				Synthesized:     true,
			},
		},
	}
}

func TestSpillRecordRoundTrip(t *testing.T) {
	pp := spillTestProfile()
	payload := encodeSpillRecord(nil, &pp)
	got, err := decodeSpillRecord(payload)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(*got, pp) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", *got, pp)
	}
	// The spill tier's core invariant: the decoded record JSON-marshals
	// byte-identically to the original, so an export never depends on which
	// side of the residency cap a profile sits.
	a, _ := json.Marshal(pp)
	b, _ := json.Marshal(*got)
	if string(a) != string(b) {
		t.Errorf("JSON drift through spill codec:\n was %s\n now %s", a, b)
	}
}

func TestSpillRecordRoundTripPreservesZoneOffset(t *testing.T) {
	// encoding/json writes RFC3339Nano with the time's own offset; a codec
	// that collapsed to unix nanos would silently rewrite +05:30 as Z and
	// break export byte-identity.
	loc := time.FixedZone("IST", 5*3600+1800)
	pp := persistedProfile{
		UserID:     "u-tz",
		LastReport: time.Date(2026, 7, 1, 12, 0, 0, 0, loc),
		Violations: map[string]int{},
	}
	got, err := decodeSpillRecord(encodeSpillRecord(nil, &pp))
	if err != nil {
		t.Fatal(err)
	}
	a, _ := json.Marshal(pp.LastReport)
	b, _ := json.Marshal(got.LastReport)
	if string(a) != string(b) {
		t.Errorf("zone offset lost: was %s, now %s", a, b)
	}
}

func TestSpillFrameRoundTrip(t *testing.T) {
	pp := spillTestProfile()
	payload := encodeSpillRecord(nil, &pp)
	frame := appendSpillFrame(nil, payload)
	got, n, err := nextSpillFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(frame) {
		t.Errorf("frame length = %d, want %d", n, len(frame))
	}
	if string(got) != string(payload) {
		t.Error("payload mutated by framing")
	}
	// Two frames back to back: the first parse must consume exactly one.
	double := appendSpillFrame(append([]byte(nil), frame...), payload)
	if _, n2, err := nextSpillFrame(double); err != nil || n2 != len(frame) {
		t.Errorf("first of two frames: n=%d err=%v, want n=%d", n2, err, len(frame))
	}
}

func TestSpillFrameRejectsDamage(t *testing.T) {
	pp := spillTestProfile()
	payload := encodeSpillRecord(nil, &pp)
	frame := appendSpillFrame(nil, payload)

	cases := []struct {
		name string
		b    []byte
		want error
	}{
		{"empty input", nil, ErrSpillTruncated},
		{"torn mid-payload", frame[:len(frame)/2], ErrSpillTruncated},
		{"torn in checksum", frame[:len(frame)-2], ErrSpillTruncated},
		{"zero-length frame", []byte{0x00, 0x00, 0x00, 0x00, 0x00}, ErrSpillCorrupt},
		{"oversized length", binary.AppendUvarint(nil, maxSpillRecordLen+1), ErrSpillOversized},
		{"flipped payload byte", func() []byte {
			b := append([]byte(nil), frame...)
			b[len(b)/2] ^= 0x40
			return b
		}(), ErrSpillCorrupt},
		{"flipped checksum byte", func() []byte {
			b := append([]byte(nil), frame...)
			b[len(b)-1] ^= 0x01
			return b
		}(), ErrSpillCorrupt},
	}
	for _, tc := range cases {
		if _, _, err := nextSpillFrame(tc.b); !errors.Is(err, tc.want) {
			t.Errorf("%s: err = %v, want %v", tc.name, err, tc.want)
		} else if !isSpillDamage(err) {
			t.Errorf("%s: %v not classified as spill damage", tc.name, err)
		}
	}
}

func TestSpillDecodeRejectsHostileRecords(t *testing.T) {
	pp := spillTestProfile()
	good := encodeSpillRecord(nil, &pp)

	cases := []struct {
		name string
		b    []byte
	}{
		{"empty payload", []byte{}},
		{"empty user id", encodeSpillRecord(nil, &persistedProfile{})},
		{"trailing bytes", append(append([]byte(nil), good...), 0xFF)},
		{"truncated record", good[:len(good)-3]},
		{"violation count beyond payload", func() []byte {
			b := appendSpillString(nil, "u")
			b = appendSpillTime(b, time.Time{})
			return appendSpillUvarint(b, 1<<40) // claims a trillion violations
		}()},
		{"activation count beyond payload", func() []byte {
			b := appendSpillString(nil, "u")
			b = appendSpillTime(b, time.Time{})
			b = appendSpillUvarint(b, 0)
			return appendSpillUvarint(b, 1<<40)
		}()},
		{"oversized string", func() []byte {
			return appendSpillUvarint(nil, maxSpillStringLen+1)
		}()},
		{"bad timestamp", func() []byte {
			b := appendSpillString(nil, "u")
			return appendSpillString(b, "not-a-time")
		}()},
	}
	for _, tc := range cases {
		rec, err := decodeSpillRecord(tc.b)
		if err == nil {
			t.Errorf("%s: decoded %+v, want error", tc.name, rec)
			continue
		}
		if !isSpillDamage(err) {
			t.Errorf("%s: %v not classified as spill damage", tc.name, err)
		}
	}
}

func TestSpillUvarintRejectsNonMinimal(t *testing.T) {
	// 0x80 0x00 encodes zero in two bytes; canonical encoders never emit it,
	// so it can only appear via corruption.
	if _, _, err := spillUvarint([]byte{0x80, 0x00}); !errors.Is(err, ErrSpillCorrupt) {
		t.Errorf("non-minimal uvarint: err = %v, want ErrSpillCorrupt", err)
	}
}

func TestSpillSegmentMagicIsOneLine(t *testing.T) {
	// Recovery scans line-structured headers; the magic must stay a single
	// newline-terminated token (file(1)-friendly, like OAKSNAP2).
	if !strings.HasSuffix(spillSegMagic, "\n") || strings.Count(spillSegMagic, "\n") != 1 {
		t.Errorf("spillSegMagic = %q, want one newline-terminated line", spillSegMagic)
	}
}
