//go:build race

package core

// raceEnabled mirrors the race-detector build tag: its instrumentation adds
// allocations of its own, so allocation gates skip when it is on.
const raceEnabled = true
