package core

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oak/internal/rules"
)

// newSpillEngine builds a single-shard engine with a residency cap over a
// temp spill directory. Single-shard so the per-shard cap equals cfg's cap
// and eviction order is fully deterministic (lastReport, then user ID).
func newSpillEngine(t *testing.T, clock *testClock, cfg ResidencyConfig, opts ...Option) *Engine {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	all := append([]Option{WithClock(clock.Now), WithShards(1), WithProfileResidency(cfg)}, opts...)
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, all...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// forceSpill durably evicts the named users regardless of the cap, so tests
// control exactly which profiles are on disk.
func forceSpill(t *testing.T, e *Engine, uids ...string) {
	t.Helper()
	for _, uid := range uids {
		sh := e.shardFor(uid)
		sh.mu.Lock()
		if _, ok := sh.profiles[uid]; ok {
			e.spillProfilesLocked(sh, []string{uid})
		}
		sh.mu.Unlock()
		if got := e.Residency(uid); got != "spilled" {
			t.Fatalf("forceSpill(%s): residency = %q, want spilled", uid, got)
		}
	}
}

// segFiles lists the live segment files under dir, sorted.
func segFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, ent := range ents {
		if strings.HasSuffix(ent.Name(), spillSegSuffix) {
			out = append(out, filepath.Join(dir, ent.Name()))
		}
	}
	return out
}

func TestResidencyConfigValidation(t *testing.T) {
	if _, err := NewEngine(nil, WithProfileResidency(ResidencyConfig{MaxProfiles: 10})); err == nil {
		t.Error("NewEngine accepted a residency cap with no spill directory")
	}
	if _, err := NewEngine(nil, WithProfileResidency(ResidencyConfig{Dir: t.TempDir()})); err == nil {
		t.Error("NewEngine accepted a spill directory with no cap")
	}
}

func TestSpillEvictsColdAndRehydratesLazily(t *testing.T) {
	clock := newTestClock()
	e := newSpillEngine(t, clock, ResidencyConfig{MaxProfiles: 4})
	const users = 10
	for i := 1; i <= users; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st, ok := e.SpillStatus()
	if !ok {
		t.Fatal("SpillStatus not ok on a residency-capped engine")
	}
	if st.ProfilesResident > 4 {
		t.Errorf("ProfilesResident = %d, want <= cap 4", st.ProfilesResident)
	}
	if st.ProfilesResident+st.ProfilesSpilled != users {
		t.Errorf("resident %d + spilled %d != %d users", st.ProfilesResident, st.ProfilesSpilled, users)
	}
	if e.Users() != users {
		t.Errorf("Users = %d, want %d (spilled users still count)", e.Users(), users)
	}
	if st.Spills == 0 || st.SpillBytes == 0 {
		t.Errorf("Spills = %d, SpillBytes = %d after evictions", st.Spills, st.SpillBytes)
	}
	if st.MemoryOnly || e.SpillDegraded() {
		t.Error("healthy spill tier reports degraded")
	}

	// With a pinned clock eviction tie-breaks on user ID: u01 is coldest.
	if got := e.Residency("u01"); got != "spilled" {
		t.Fatalf("Residency(u01) = %q, want spilled", got)
	}
	// Snapshot is a serve-side read: it must rehydrate transparently, with
	// the violation counters and activation intact.
	snap, ok := e.Snapshot("u01")
	if !ok {
		t.Fatal("spilled user unknown to Snapshot")
	}
	if snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("violations after rehydration = %v", snap.Violations)
	}
	if len(snap.ActiveRules) != 1 || snap.ActiveRules[0] != "jquery" {
		t.Errorf("activations after rehydration = %+v", snap.ActiveRules)
	}
	if got := e.Residency("u01"); got != "resident" {
		t.Errorf("Residency(u01) after Snapshot = %q, want resident", got)
	}

	// The page path rehydrates too: a spilled user's activation still
	// rewrites their page.
	spilled := ""
	for i := 1; i <= users; i++ {
		if uid := fmt.Sprintf("u%02d", i); e.Residency(uid) == "spilled" {
			spilled = uid
			break
		}
	}
	if spilled == "" {
		t.Fatal("no spilled user left to serve")
	}
	page := `<script src="http://s1.com/jquery.js">`
	out, _ := e.ModifyPage(spilled, "/index.html", page)
	if !strings.Contains(out, "s2.net") {
		t.Errorf("spilled user %s served unrewritten page", spilled)
	}

	m := e.Metrics()
	if m.Rehydrations != 2 {
		t.Errorf("Rehydrations = %d, want 2", m.Rehydrations)
	}
	if lat := e.Latencies(); lat.Rehydrate.Count != 2 {
		t.Errorf("rehydrate histogram count = %d, want 2", lat.Rehydrate.Count)
	}
}

func TestSpillByteCapEvicts(t *testing.T) {
	clock := newTestClock()
	// ~1.5 profiles' worth of bytes: the second ingest must spill.
	e := newSpillEngine(t, clock, ResidencyConfig{MaxBytes: 900})
	for i := 1; i <= 6; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	st, _ := e.SpillStatus()
	if st.ProfilesSpilled == 0 {
		t.Fatalf("byte cap never evicted: %+v", st)
	}
	if st.ResidentBytes > 900 {
		t.Errorf("ResidentBytes = %d, want <= 900", st.ResidentBytes)
	}
}

func TestSpillIngestRehydratesAndMerges(t *testing.T) {
	clock := newTestClock()
	e := newSpillEngine(t, clock, ResidencyConfig{MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1")
	clock.Advance(time.Minute)
	// The user's next report rehydrates the profile and increments its
	// existing counters instead of starting from zero.
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	snap, _ := e.Snapshot("u1")
	if snap.Violations["ip-s1.com"] != 2 {
		t.Errorf("violations after spilled re-report = %v, want ip-s1.com:2", snap.Violations)
	}
}

// TestSpillExportByteIdentity is the tier's core invariant: an engine whose
// population straddles the residency cap exports exactly the bytes an
// all-resident engine with the same logical state does — whole-engine and
// per-arc, plain and enveloped.
func TestSpillExportByteIdentity(t *testing.T) {
	capped := newSpillEngine(t, newTestClock(), ResidencyConfig{MaxProfiles: 3})
	ref, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(newTestClock().Now), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 12; i++ {
		r := fmt.Sprintf("u%02d", i)
		if _, err := capped.HandleReport(slowS1Report(r)); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.HandleReport(slowS1Report(r)); err != nil {
			t.Fatal(err)
		}
	}
	if st, _ := capped.SpillStatus(); st.ProfilesSpilled == 0 {
		t.Fatal("population never straddled the cap; test is vacuous")
	}

	a, err := capped.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	b, err := ref.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("ExportState differs across residency layouts:\n--- capped\n%s\n--- all-resident\n%s", a, b)
	}
	as, _ := capped.ExportSnapshot()
	bs, _ := ref.ExportSnapshot()
	if !bytes.Equal(as, bs) {
		t.Error("ExportSnapshot differs across residency layouts")
	}
	for _, r := range EqualRanges(4) {
		ar, err := capped.ExportStateRange(r)
		if err != nil {
			t.Fatal(err)
		}
		br, err := ref.ExportStateRange(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ar, br) {
			t.Errorf("ExportStateRange(%v) differs across residency layouts", r)
		}
	}
}

func TestImportStateEvictsBackUnderCap(t *testing.T) {
	src, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(newTestClock().Now), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	const users = 20
	for i := 1; i <= users; i++ {
		if _, err := src.HandleReport(slowS1Report(fmt.Sprintf("u%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	data, err := src.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	dst := newSpillEngine(t, newTestClock(), ResidencyConfig{MaxProfiles: 4})
	if err := dst.ImportState(data); err != nil {
		t.Fatal(err)
	}
	st, _ := dst.SpillStatus()
	if st.ProfilesResident > 4 {
		t.Errorf("ProfilesResident after import = %d, want <= cap 4", st.ProfilesResident)
	}
	if st.ProfilesResident+st.ProfilesSpilled != users {
		t.Errorf("resident %d + spilled %d != %d imported users",
			st.ProfilesResident, st.ProfilesSpilled, users)
	}
	// Re-export of the over-cap import is byte-identical to the source.
	got, err := dst.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("re-export after capped import differs from source")
	}
}

func TestImportStateRangeEvictsBackUnderCap(t *testing.T) {
	src, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(newTestClock().Now), WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 20; i++ {
		if _, err := src.HandleReport(slowS1Report(fmt.Sprintf("u%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	r := EqualRanges(2)[0]
	arc, err := src.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}

	dst := newSpillEngine(t, newTestClock(), ResidencyConfig{MaxProfiles: 3})
	// Pre-populate the arc with stale spilled state the import must replace:
	// the payload is authoritative for its range.
	stale := ""
	for i := 1; i <= 20; i++ {
		if uid := fmt.Sprintf("u%02d", i); r.Contains(UserHash(uid)) {
			stale = uid
			break
		}
	}
	if _, err := dst.HandleReport(slowS1Report(stale)); err != nil {
		t.Fatal(err)
	}
	if _, err := dst.HandleReport(slowS1Report(stale)); err != nil { // 2 violations: differs from payload's 1
		t.Fatal(err)
	}
	forceSpill(t, dst, stale)

	if err := dst.ImportStateRange(r, arc); err != nil {
		t.Fatal(err)
	}
	st, _ := dst.SpillStatus()
	if st.ProfilesResident > 3 {
		t.Errorf("ProfilesResident after range import = %d, want <= cap 3", st.ProfilesResident)
	}
	snap, ok := dst.Snapshot(stale)
	if !ok {
		t.Fatalf("in-range user %s lost by range import", stale)
	}
	if snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("stale spilled record survived an authoritative range import: %v", snap.Violations)
	}
	got, err := dst.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, arc) {
		t.Error("re-export of imported arc differs from donated arc")
	}
}

func TestPruneProfilesRemovesSpilled(t *testing.T) {
	clock := newTestClock()
	e := newSpillEngine(t, clock, ResidencyConfig{MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("old-user")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "old-user")
	clock.Advance(48 * time.Hour)
	if _, err := e.HandleReport(slowS1Report("fresh-user")); err != nil {
		t.Fatal(err)
	}

	cutoff := clock.Now().Add(-time.Hour)
	if removed := e.PruneProfiles(cutoff); removed != 1 {
		t.Fatalf("PruneProfiles removed %d, want 1", removed)
	}
	if got := e.Residency("old-user"); got != "none" {
		t.Errorf("Residency(old-user) after prune = %q, want none", got)
	}
	if e.Users() != 1 {
		t.Errorf("Users after prune = %d, want 1", e.Users())
	}
	st, _ := e.SpillStatus()
	if st.ProfilesSpilled != 0 {
		t.Errorf("ProfilesSpilled after prune = %d, want 0", st.ProfilesSpilled)
	}
}

func TestSpillCompactionReclaimsDeadSegments(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	// SegmentBytes 1: every spill batch seals the previous segment, so dead
	// records accumulate in sealed files the compactor may claim.
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100, SegmentBytes: 1})
	for i := 1; i <= 4; i++ {
		uid := fmt.Sprintf("u%d", i)
		if _, err := e.HandleReport(slowS1Report(uid)); err != nil {
			t.Fatal(err)
		}
		forceSpill(t, e, uid)
	}
	before := len(segFiles(t, dir))
	if before < 2 {
		t.Fatalf("segment files = %d, want >= 2 (rotation never sealed one)", before)
	}
	// Rehydrate everything: every sealed record is now dead.
	for i := 1; i <= 4; i++ {
		if _, ok := e.Snapshot(fmt.Sprintf("u%d", i)); !ok {
			t.Fatalf("u%d lost", i)
		}
	}
	// PruneProfiles with an ancient cutoff removes nothing but runs one
	// ingest-driven compaction round per call.
	cutoff := clock.Now().Add(-time.Hour)
	for i := 0; i < before+1; i++ {
		if removed := e.PruneProfiles(cutoff); removed != 0 {
			t.Fatalf("prune removed %d live profiles", removed)
		}
	}
	m := e.Metrics()
	if m.SegmentCompactions == 0 {
		t.Fatal("no compaction ran over fully-dead sealed segments")
	}
	if after := len(segFiles(t, dir)); after >= before {
		t.Errorf("segment files %d -> %d, want fewer after compaction", before, after)
	}
}

func TestSpillCompactionPreservesLiveRecords(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100, SegmentBytes: 1, CompactRatio: 0.4})
	// One sealed segment holding two records: kill one (rehydrate), keep one.
	if _, err := e.HandleReport(slowS1Report("keep")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("dead")); err != nil {
		t.Fatal(err)
	}
	sh := e.shardFor("keep")
	sh.mu.Lock()
	e.spillProfilesLocked(sh, []string{"keep", "dead"}) // one batch, one segment
	sh.mu.Unlock()
	if _, err := e.HandleReport(slowS1Report("sealer")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "sealer") // rotates: the first segment is now sealed
	if _, ok := e.Snapshot("dead"); !ok {
		t.Fatal("dead user lost before compaction")
	}

	for i := 0; i < 3; i++ {
		e.PruneProfiles(clock.Now().Add(-time.Hour))
	}
	if m := e.Metrics(); m.SegmentCompactions == 0 {
		t.Fatal("compaction never ran")
	}
	// The surviving record still rehydrates from the rewritten segment.
	snap, ok := e.Snapshot("keep")
	if !ok {
		t.Fatal("live record lost by compaction")
	}
	if snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("violations after compacted rehydration = %v", snap.Violations)
	}
}

func TestSpillFailureDegradesToMemoryOnly(t *testing.T) {
	clock := newTestClock()
	e := newSpillEngine(t, clock, ResidencyConfig{MaxProfiles: 2})
	boom := errors.New("disk on fire")
	SetSpillFailpoint(func(op, path string) error {
		if op == "append" || op == "create" {
			return boom
		}
		return nil
	})
	defer SetSpillFailpoint(nil)

	const users = 8
	for i := 1; i <= users; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatalf("ingest failed while spill tier degraded: %v", err)
		}
	}
	st, _ := e.SpillStatus()
	if !st.MemoryOnly {
		t.Fatal("spill I/O failure did not latch memory-only mode")
	}
	if !e.SpillDegraded() {
		t.Error("SpillDegraded = false in memory-only mode")
	}
	if st.SpillErrors == 0 {
		t.Error("SpillErrors = 0 after injected append failure")
	}
	// Nothing was forgotten: every profile is resident and serving works.
	if st.ProfilesResident != users || st.ProfilesSpilled != 0 {
		t.Errorf("resident %d spilled %d, want %d/0 (fsync before forget)",
			st.ProfilesResident, st.ProfilesSpilled, users)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/index.html", page); !strings.Contains(out, "s2.net") {
		t.Error("serving stopped in memory-only mode")
	}
}

func TestSpillRecoveryTruncatesTornTail(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	for _, uid := range []string{"u1", "u2"} {
		if _, err := e.HandleReport(slowS1Report(uid)); err != nil {
			t.Fatal(err)
		}
	}
	forceSpill(t, e, "u1", "u2")
	e.Close()

	// A crash mid-append leaves a partial frame at the tail: a length prefix
	// promising more bytes than the file holds.
	segs := segFiles(t, dir)
	if len(segs) == 0 {
		t.Fatal("no segment files written")
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x7F, 0x01, 0x02}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2 := newSpillEngine(t, newTestClock(), ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if e2.SpillDegraded() {
		t.Error("torn tail quarantined a segment; it should only be truncated")
	}
	for _, uid := range []string{"u1", "u2"} {
		if got := e2.Residency(uid); got != "spilled" {
			t.Errorf("Residency(%s) after torn-tail recovery = %q, want spilled", uid, got)
		}
		snap, ok := e2.Snapshot(uid)
		if !ok || snap.Violations["ip-s1.com"] != 1 {
			t.Errorf("%s state after torn-tail recovery: ok=%v violations=%v", uid, ok, snap.Violations)
		}
	}
}

func TestSpillRecoveryQuarantinesCorruptSegment(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1")
	e.Close()

	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segment files = %d, want 1", len(segs))
	}
	// Flip a payload byte well past the frame's length prefix: the CRC
	// must reject the record and the whole segment with it.
	f, err := os.OpenFile(segs[0], os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 1)
	off := int64(len(spillSegMagic)) + 10
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x40
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
	f.Close()

	e2 := newSpillEngine(t, newTestClock(), ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if !e2.SpillDegraded() {
		t.Fatal("corrupt segment did not mark the tier degraded")
	}
	st, _ := e2.SpillStatus()
	if len(st.QuarantinedSegments) != 1 {
		t.Fatalf("QuarantinedSegments = %v, want one entry", st.QuarantinedSegments)
	}
	if st.SpillErrors == 0 {
		t.Error("SpillErrors = 0 after quarantine")
	}
	// The damaged file was renamed aside for the operator, not deleted.
	if _, err := os.Stat(segs[0] + spillQuarantineSuffix); err != nil {
		t.Errorf("quarantined file missing: %v", err)
	}
	if got := e2.Residency("u1"); got != "none" {
		t.Errorf("Residency(u1) = %q, want none (record lost with its segment)", got)
	}
	// Boot survived and the engine still serves.
	if _, err := e2.HandleReport(slowS1Report("u2")); err != nil {
		t.Errorf("ingest after quarantined boot: %v", err)
	}
}

func TestSpillRehydrationDropsBreakerOpenActivations(t *testing.T) {
	clock := newTestClock()
	e := newSpillEngine(t, clock, ResidencyConfig{MaxProfiles: 100},
		WithGuard(GuardConfig{TripThreshold: 2}))
	if _, err := e.HandleReport(slowS1Report("cold")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("warm")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "cold")

	// Trip the s2.net breaker while "cold" is on disk: the bulk rollback
	// reaches the resident "warm" via the provider index, but cannot touch
	// the spilled activation.
	e.ObserveProviderOutcome("s2.net", false, 500)
	e.ObserveProviderOutcome("s2.net", false, 500)
	if m := e.Metrics(); m.BreakerTrips != 1 || m.BulkDeactivations != 1 {
		t.Fatalf("trips=%d bulk=%d, want 1/1 (only the resident user rolled back)",
			m.BreakerTrips, m.BulkDeactivations)
	}

	// Rehydration must apply the rollback the trip missed.
	page := `<script src="http://s1.com/jquery.js">`
	out, _ := e.ModifyPage("cold", "/index.html", page)
	if out != page {
		t.Error("rehydrated activation on an open breaker still rewrote the page")
	}
	if m := e.Metrics(); m.BulkDeactivations != 2 {
		t.Errorf("BulkDeactivations = %d, want 2 (spilled rollback applied at rehydration)",
			m.BulkDeactivations)
	}
	snap, _ := e.Snapshot("cold")
	if snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("violation counters lost in guarded rehydration: %v", snap.Violations)
	}
}

func TestSpillStatefileNewerWins(t *testing.T) {
	clock := newTestClock()
	dir := t.TempDir()
	state := filepath.Join(t.TempDir(), "oak-state.json")
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	if err := e.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}
	// After the snapshot: u1 reports again (2 violations) and is spilled —
	// durable. u2 appears only after the snapshot and is spilled — durable.
	clock.Advance(time.Minute)
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u2")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1", "u2")
	// Crash: no Close, no save.

	clock2 := newTestClock()
	clock2.Advance(2 * time.Minute)
	e2 := newSpillEngine(t, clock2, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if _, err := e2.LoadStateFile(state); err != nil {
		t.Fatal(err)
	}
	// The spilled records postdate the snapshot: both survive the import.
	snap, ok := e2.Snapshot("u1")
	if !ok || snap.Violations["ip-s1.com"] != 2 {
		t.Errorf("u1 after boot: ok=%v violations=%v, want the newer spilled copy (2)", ok, snap.Violations)
	}
	if snap, ok := e2.Snapshot("u2"); !ok || snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("u2 (spilled after snapshot, absent from it) lost: ok=%v violations=%v", ok, snap.Violations)
	}
}

func TestSpillStatefileAuthoritativeOverOlderSpill(t *testing.T) {
	// The inverse ordering: a spill record older than the snapshot must NOT
	// shadow the snapshot's newer copy at boot.
	clock := newTestClock()
	dir := t.TempDir()
	state := filepath.Join(t.TempDir(), "oak-state.json")
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1")
	clock.Advance(time.Minute)
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil { // rehydrates; now 2 violations, resident
		t.Fatal(err)
	}
	if err := e.SaveStateFile(state); err != nil {
		t.Fatal(err)
	}
	e.Close()

	e2 := newSpillEngine(t, newTestClock(), ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if _, err := e2.LoadStateFile(state); err != nil {
		t.Fatal(err)
	}
	snap, ok := e2.Snapshot("u1")
	if !ok || snap.Violations["ip-s1.com"] != 2 {
		t.Errorf("u1 after boot: ok=%v violations=%v, want the snapshot's copy (2)", ok, snap.Violations)
	}
}

func TestSpillStatefileSaveAfterCloseKeepsSpilled(t *testing.T) {
	// The graceful-shutdown ordering: oakd drains the pipeline with
	// Engine.Close and only then takes the final SaveStateFile. Close
	// releases the segment descriptors, but the save must still export
	// every spilled profile — the record bytes are durable on disk; only
	// the handles are gone.
	clock := newTestClock()
	dir := t.TempDir()
	state := filepath.Join(t.TempDir(), "oak-state.json")
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	const users = 6
	for i := 1; i <= users; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	forceSpill(t, e, "u01", "u02", "u03", "u04") // 4 spilled, 2 resident

	before, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	e.Close()
	after, err := e.ExportState()
	if err != nil {
		t.Fatalf("ExportState after Close: %v", err)
	}
	if !bytes.Equal(before, after) {
		t.Error("export after Close differs from export before Close")
	}
	if err := e.SaveStateFile(state); err != nil {
		t.Fatalf("SaveStateFile after Close: %v", err)
	}

	e2 := newSpillEngine(t, clock, ResidencyConfig{Dir: t.TempDir(), MaxProfiles: 100})
	if _, err := e2.LoadStateFile(state); err != nil {
		t.Fatal(err)
	}
	if got := e2.Users(); got != users {
		t.Fatalf("rebooted engine has %d users, want %d — shutdown save dropped spilled profiles", got, users)
	}
	for i := 1; i <= users; i++ {
		uid := fmt.Sprintf("u%02d", i)
		if snap, ok := e2.Snapshot(uid); !ok || snap.Violations["ip-s1.com"] != 1 {
			t.Errorf("%s after reboot: ok=%v violations=%v, want 1", uid, ok, snap.Violations)
		}
	}
}

func TestSpillExportFailsLoudOnReadError(t *testing.T) {
	// An I/O failure reading a spilled record must fail the export, not
	// silently install a snapshot missing acknowledged profiles — the
	// previous good snapshot staying in place is strictly safer.
	clock := newTestClock()
	e := newSpillEngine(t, clock, ResidencyConfig{MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1")
	SetSpillFailpoint(func(op, path string) error {
		if op == "read" {
			return errors.New("injected read failure")
		}
		return nil
	})
	defer SetSpillFailpoint(nil)
	if _, err := e.ExportState(); err == nil {
		t.Error("ExportState succeeded with an unreadable spilled record; would silently lose acknowledged state")
	}
}

// flipSegByte flips one payload byte well past the first frame's length
// prefix, so the record CRC (and the whole segment with it) must reject.
func flipSegByte(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 1)
	off := int64(len(spillSegMagic)) + 10
	if _, err := f.ReadAt(buf, off); err != nil {
		t.Fatal(err)
	}
	buf[0] ^= 0x40
	if _, err := f.WriteAt(buf, off); err != nil {
		t.Fatal(err)
	}
}

func TestSpillRecoveryFallsBackToSupersededRecord(t *testing.T) {
	// A user spilled twice lands in two segments: the older record in a
	// sealed segment, superseded by the newer one. When recovery quarantines
	// the segment holding the newer record, the older — still valid — copy
	// must come back, and its healthy segment must not be garbage-collected.
	clock := newTestClock()
	dir := t.TempDir()
	// SegmentBytes 1: each spill batch rotates, so the two copies of u1
	// land in different segment files.
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100, SegmentBytes: 1})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1") // older record: segment A
	clock.Advance(time.Minute)
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil { // rehydrates
		t.Fatal(err)
	}
	forceSpill(t, e, "u1") // newer record: segment B
	e.Close()

	segs := segFiles(t, dir)
	if len(segs) != 2 {
		t.Fatalf("segment files = %d, want 2 (no rotation between spills)", len(segs))
	}
	flipSegByte(t, segs[1]) // damage the segment holding the newer record

	e2 := newSpillEngine(t, newTestClock(), ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if !e2.SpillDegraded() {
		t.Fatal("corrupt segment did not mark the tier degraded")
	}
	if _, err := os.Stat(segs[0]); err != nil {
		t.Fatalf("healthy segment holding the surviving copy was deleted: %v", err)
	}
	if got := e2.Residency("u1"); got != "spilled" {
		t.Fatalf("Residency(u1) = %q, want spilled (older record survives)", got)
	}
	snap, ok := e2.Snapshot("u1")
	if !ok {
		t.Fatal("u1 lost: quarantining the newer record must fall back to the older one")
	}
	// The older record pre-dates the second report: one violation, not two.
	if snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("violations = %v, want the first spill's state (1)", snap.Violations)
	}
}

func TestSpillExportQuarantinesDamagedSegment(t *testing.T) {
	// Export discovering a codec-damaged record must quarantine the segment
	// like the rehydrate path would, so healthz surfaces the loss instead of
	// the snapshot silently omitting a user still indexed as spilled.
	clock := newTestClock()
	dir := t.TempDir()
	e := newSpillEngine(t, clock, ResidencyConfig{Dir: dir, MaxProfiles: 100})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u2")); err != nil {
		t.Fatal(err)
	}
	forceSpill(t, e, "u1")
	segs := segFiles(t, dir)
	if len(segs) != 1 {
		t.Fatalf("segment files = %d, want 1", len(segs))
	}
	flipSegByte(t, segs[0])

	out, err := e.ExportState()
	if err != nil {
		t.Fatalf("ExportState: %v", err)
	}
	if bytes.Contains(out, []byte(`"u1"`)) {
		t.Error("export contains the damaged record")
	}
	if !bytes.Contains(out, []byte(`"u2"`)) {
		t.Error("export lost the resident profile")
	}
	if !e.SpillDegraded() {
		t.Error("damaged segment discovered by export did not degrade healthz")
	}
	st, _ := e.SpillStatus()
	if len(st.QuarantinedSegments) != 1 {
		t.Errorf("QuarantinedSegments = %v, want one entry", st.QuarantinedSegments)
	}
	if st.SpillErrors == 0 {
		t.Error("SpillErrors = 0 after export-path quarantine")
	}
}
