package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"oak/internal/report"
	"oak/internal/rules"
)

// randomReport generates arbitrary (but structurally valid) reports to
// hammer the engine with.
type randomReport struct{ rep *report.Report }

var _ quick.Generator = randomReport{}

func (randomReport) Generate(r *rand.Rand, size int) reflect.Value {
	n := 1 + r.Intn(size+1)
	rep := &report.Report{
		UserID: fmt.Sprintf("user-%d", r.Intn(5)),
		Page:   []string{"/index.html", "/shop/cart.html", "/blog/a.html"}[r.Intn(3)],
	}
	for i := 0; i < n; i++ {
		host := fmt.Sprintf("h%d.example", r.Intn(8))
		rep.Entries = append(rep.Entries, report.Entry{
			URL:            fmt.Sprintf("http://%s/o%d.bin", host, r.Intn(4)),
			ServerAddr:     fmt.Sprintf("10.0.0.%d", r.Intn(8)),
			SizeBytes:      int64(r.Intn(600 * 1024)),
			DurationMillis: r.Float64() * 5000,
			Kind:           report.KindScript,
		})
	}
	return reflect.ValueOf(randomReport{rep})
}

// engineInvariants drives the engine with arbitrary reports and checks the
// invariants that must hold regardless of input:
//   - HandleReport never errors on a valid report,
//   - every reported violation really is one of the report's servers,
//   - active rules are always drawn from the configured rule set,
//   - ModifyPage output never contains a rule's default text when that
//     rule is active and in scope.
func TestQuickEngineInvariants(t *testing.T) {
	ruleSet := []*rules.Rule{
		{ID: "r0", Type: rules.TypeReplaceSame,
			Default:      `<img src="http://h0.example/o0.bin">`,
			Alternatives: []string{`<img src="http://alt0.example/o0.bin">`}, Scope: "*"},
		{ID: "r1", Type: rules.TypeRemove,
			Default: `<img src="http://h1.example/o1.bin">`, Scope: "/shop/*"},
		{ID: "r2", Type: rules.TypeReplaceAlt,
			Default:      `<script src="http://h2.example/o2.bin"></script>`,
			Alternatives: []string{"<!-- gone -->", "<b>alt2</b>"}, Scope: "*"},
	}
	e, err := NewEngine(ruleSet)
	if err != nil {
		t.Fatal(err)
	}
	known := map[string]bool{"r0": true, "r1": true, "r2": true}

	f := func(rr randomReport) bool {
		res, err := e.HandleReport(rr.rep)
		if err != nil {
			t.Logf("HandleReport: %v", err)
			return false
		}
		addrs := make(map[string]bool)
		for _, entry := range rr.rep.Entries {
			addrs[entry.ServerAddr] = true
		}
		for _, v := range res.Violations {
			if !addrs[v.Server.Addr] {
				t.Logf("violation names unknown server %q", v.Server.Addr)
				return false
			}
		}
		for _, ch := range res.Changes {
			if !known[ch.RuleID] {
				t.Logf("change names unknown rule %q", ch.RuleID)
				return false
			}
		}
		for _, a := range e.ActiveRules(rr.rep.UserID, rr.rep.Page) {
			if !known[a.Rule.ID] {
				return false
			}
		}
		page := `<img src="http://h0.example/o0.bin"> <img src="http://h1.example/o1.bin">`
		out, _ := e.ModifyPage(rr.rep.UserID, rr.rep.Page, page)
		for _, a := range e.ActiveRules(rr.rep.UserID, rr.rep.Page) {
			if strings.Contains(out, a.Rule.Default) {
				t.Logf("active rule %s default text survived rewrite", a.Rule.ID)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestQuickEngineConcurrentRandom hammers one engine from parallel random
// workers; the race detector plus the absence of panics is the assertion.
func TestQuickEngineConcurrentRandom(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 4)
	for w := 0; w < 4; w++ {
		go func(w int) {
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				rep := randomReport{}.Generate(rng, 10).Interface().(randomReport).rep
				if _, err := e.HandleReport(rep); err != nil {
					done <- err
					return
				}
				e.ModifyPage(rep.UserID, rep.Page, `<script src="http://s1.com/jquery.js">`)
				if _, err := e.ExportState(); err != nil {
					done <- err
					return
				}
			}
			done <- nil
		}(w)
	}
	for w := 0; w < 4; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}
