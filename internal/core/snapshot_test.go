package core

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"testing"

	"oak/internal/rules"
)

// goodSnapshot returns a valid checksummed snapshot holding one user.
func goodSnapshot(t *testing.T) []byte {
	t.Helper()
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	data, err := e.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestSnapshotRoundTrip(t *testing.T) {
	data := goodSnapshot(t)
	if !bytes.HasPrefix(data, []byte("OAKSNAP2 ")) {
		t.Fatalf("snapshot header missing: %q", data[:min(len(data), 40)])
	}
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if err := e.ImportState(data); err != nil {
		t.Fatal(err)
	}
	if e.Users() != 1 {
		t.Errorf("Users = %d, want 1", e.Users())
	}
}

func TestImportLegacyPlainJSONStateStillLoads(t *testing.T) {
	// State files written before the checksummed envelope existed are plain
	// ExportState JSON; they must keep loading.
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	legacy, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	e2, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if err := e2.ImportState(legacy); err != nil {
		t.Fatalf("legacy plain-JSON state rejected: %v", err)
	}
	if e2.Users() != 1 {
		t.Errorf("Users = %d, want 1", e2.Users())
	}
}

func TestImportStateHostileInputs(t *testing.T) {
	good := goodSnapshot(t)
	nl := bytes.IndexByte(good, '\n')
	header, payload := good[:nl+1], good[nl+1:]

	truncated := append(append([]byte{}, header...), payload[:len(payload)/2]...)

	flipped := append([]byte{}, good...)
	flipped[len(flipped)-2] ^= 0x40 // payload bit flip: CRC must catch it

	badCRC := append([]byte(fmt.Sprintf("OAKSNAP2 crc32c=%08x len=%d\n",
		crc32.Checksum(payload, snapshotCRC)^1, len(payload))), payload...)

	futureGen := append([]byte("OAKSNAP3 sha256=00 len=5\n"), []byte("hello")...)

	cases := []struct {
		name string
		data []byte
		want error
	}{
		{"empty", nil, ErrCorruptState},
		{"whitespace only", []byte("  \n\t"), ErrCorruptState},
		{"truncated payload", truncated, ErrCorruptState},
		{"payload bit flip", flipped, ErrCorruptState},
		{"checksum mismatch", badCRC, ErrCorruptState},
		{"unterminated header", []byte("OAKSNAP2 crc32c=00000000 len=10"), ErrCorruptState},
		{"malformed gen-2 header", []byte("OAKSNAP2 what\n{}"), ErrCorruptState},
		{"future generation", futureGen, ErrStateVersion},
		{"wrong payload version", []byte(`{"version":99}`), ErrStateVersion},
		{"undecodable payload", []byte(`{nope`), ErrCorruptState},
		{"profile without user id", []byte(`{"version":1,"profiles":[{"userId":""}]}`), ErrCorruptState},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			e, _ := NewEngine([]*rules.Rule{jqRule(0)})
			err := e.ImportState(tc.data)
			if !errors.Is(err, tc.want) {
				t.Errorf("ImportState error = %v, want %v", err, tc.want)
			}
			if e.Users() != 0 {
				t.Errorf("rejected import still populated %d users", e.Users())
			}
		})
	}
}

func TestImportStateFailureLeavesStateUntouched(t *testing.T) {
	// A failed import must not wipe what the engine already knows.
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("existing")); err != nil {
		t.Fatal(err)
	}
	if err := e.ImportState([]byte("OAKSNAP2 crc32c=00000000 len=3\nxyz")); err == nil {
		t.Fatal("corrupt import succeeded")
	}
	if e.Users() != 1 {
		t.Errorf("failed import disturbed existing state: Users = %d, want 1", e.Users())
	}
}

// FuzzImportState asserts ImportState never panics and never half-imports:
// on any input it either succeeds or leaves the engine exactly as it was.
func FuzzImportState(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte(`{"version":1,"profiles":[{"userId":"u"}]}`))
	f.Add([]byte("OAKSNAP2 crc32c=00000000 len=0\n"))
	f.Add([]byte("OAKSNAP2 crc32c=deadbeef len=3\nxyz"))
	f.Add([]byte("OAKSNAP9 future\n{}"))
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if seed, err := e.ExportSnapshot(); err == nil {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		e, _ := NewEngine([]*rules.Rule{jqRule(0)})
		if _, err := e.HandleReport(slowS1Report("sentinel")); err != nil {
			t.Fatal(err)
		}
		if err := e.ImportState(data); err != nil {
			if e.Users() != 1 {
				t.Fatalf("failed import mutated state: Users = %d", e.Users())
			}
			return
		}
		// Successful imports must re-export cleanly.
		if _, err := e.ExportSnapshot(); err != nil {
			t.Fatalf("re-export after import: %v", err)
		}
	})
}
