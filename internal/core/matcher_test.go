package core

import (
	"errors"
	"testing"

	"oak/internal/report"
	"oak/internal/rules"
)

func srvWithHosts(addr string, hosts ...string) *report.ServerPerf {
	return &report.ServerPerf{Addr: addr, Hosts: hosts}
}

// mapFetcher serves scripts from a map and counts fetches.
type mapFetcher struct {
	scripts map[string]string
	fetches int
}

func (f *mapFetcher) FetchScript(url string) (string, error) {
	f.fetches++
	body, ok := f.scripts[url]
	if !ok {
		return "", errors.New("not found")
	}
	return body, nil
}

func TestMatchDirect(t *testing.T) {
	m := NewMatcher(nil)
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://cdn.example/x.js"></script>`,
	}
	got := m.Match(r, srvWithHosts("10.0.0.1", "cdn.example"), nil)
	if got != MatchDirect {
		t.Errorf("Match = %v, want direct", got)
	}
}

func TestMatchTextFallback(t *testing.T) {
	m := NewMatcher(nil)
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script>loadFrom("track.example" + "/p.gif")</script>`,
	}
	got := m.Match(r, srvWithHosts("10.0.0.1", "track.example"), nil)
	if got != MatchText {
		t.Errorf("Match = %v, want text", got)
	}
}

func TestMatchExternalJS(t *testing.T) {
	// The Figure 6 scenario: page script tag -> s1.com/script1.js, which in
	// turn loads from deep.example (server 3). A rule containing only the
	// script tag must still match a deep.example violation.
	fetcher := &mapFetcher{scripts: map[string]string{
		"http://s1.com/script1.js": `var img = "http://deep.example/image2.jpg"; load(img);`,
	}}
	m := NewMatcher(fetcher)
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://s1.com/script1.js"></script>`,
	}
	scripts := []string{"http://s1.com/script1.js"}
	got := m.Match(r, srvWithHosts("10.0.0.3", "deep.example"), scripts)
	if got != MatchExternalJS {
		t.Errorf("Match = %v, want external-js", got)
	}
}

func TestMatchExternalJSOnlyLabeledScripts(t *testing.T) {
	// A loaded script whose domain does NOT appear in the rule must not
	// extend the rule's surface.
	fetcher := &mapFetcher{scripts: map[string]string{
		"http://unrelated.example/u.js": `fetch("http://deep.example/x")`,
	}}
	m := NewMatcher(fetcher)
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://s1.com/script1.js"></script>`,
	}
	scripts := []string{"http://unrelated.example/u.js"}
	if got := m.Match(r, srvWithHosts("10.0.0.3", "deep.example"), scripts); got != MatchNone {
		t.Errorf("Match = %v, want none (script not labeled by rule)", got)
	}
	if fetcher.fetches != 0 {
		t.Errorf("fetched %d unlabeled scripts, want 0", fetcher.fetches)
	}
}

func TestMatchDepth2(t *testing.T) {
	// script1 -> includes script2 -> mentions deep.example.
	fetcher := &mapFetcher{scripts: map[string]string{
		"http://s1.com/a.js": `document.write('<script src="http://s2.com/b.js"></script>')`,
		"http://s2.com/b.js": `ping("http://deep.example/x")`,
	}}
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://s1.com/a.js"></script>`,
	}
	scripts := []string{"http://s1.com/a.js", "http://s2.com/b.js"}
	violator := srvWithHosts("10.0.0.3", "deep.example")

	m1 := NewMatcher(fetcher) // depth 1: cannot see through b.js
	if got := m1.Match(r, violator, scripts); got != MatchNone {
		t.Errorf("depth1 Match = %v, want none", got)
	}
	m2 := NewMatcher(fetcher)
	m2.Depth = 2
	if got := m2.Match(r, violator, scripts); got != MatchExternalJS {
		t.Errorf("depth2 Match = %v, want external-js", got)
	}
}

func TestMatchLevelCaps(t *testing.T) {
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script>go("text.example")</script>`,
	}
	violator := srvWithHosts("10.0.0.1", "text.example")
	m := NewMatcher(nil)
	m.MaxLevel = MatchDirect
	if got := m.Match(r, violator, nil); got != MatchNone {
		t.Errorf("capped Match = %v, want none (text tier disabled)", got)
	}
	m.MaxLevel = MatchText
	if got := m.Match(r, violator, nil); got != MatchText {
		t.Errorf("Match = %v, want text", got)
	}
}

func TestMatchNilInputs(t *testing.T) {
	m := NewMatcher(nil)
	if got := m.Match(nil, srvWithHosts("a", "h.example"), nil); got != MatchNone {
		t.Errorf("nil rule Match = %v", got)
	}
	r := &rules.Rule{ID: "r", Type: rules.TypeRemove, Default: "x"}
	if got := m.Match(r, nil, nil); got != MatchNone {
		t.Errorf("nil violator Match = %v", got)
	}
	if got := m.Match(r, &report.ServerPerf{Addr: "a"}, nil); got != MatchNone {
		t.Errorf("hostless violator Match = %v", got)
	}
}

func TestMatchNoFetcherSkipsJSTier(t *testing.T) {
	m := NewMatcher(nil) // nil fetcher
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://s1.com/a.js"></script>`,
	}
	got := m.Match(r, srvWithHosts("10.0.0.3", "deep.example"), []string{"http://s1.com/a.js"})
	if got != MatchNone {
		t.Errorf("Match = %v, want none without fetcher", got)
	}
}

func TestFetchCaching(t *testing.T) {
	fetcher := &mapFetcher{scripts: map[string]string{
		"http://s1.com/a.js": `x("deep.example")`,
	}}
	m := NewMatcher(fetcher)
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://s1.com/a.js"></script>`,
	}
	violator := srvWithHosts("10.0.0.3", "deep.example")
	scripts := []string{"http://s1.com/a.js"}
	for i := 0; i < 3; i++ {
		if got := m.Match(r, violator, scripts); got != MatchExternalJS {
			t.Fatalf("Match #%d = %v", i, got)
		}
	}
	if fetcher.fetches != 1 {
		t.Errorf("fetches = %d, want 1 (cached)", fetcher.fetches)
	}
}

func TestFetchFailureCachedAndHarmless(t *testing.T) {
	fetcher := &mapFetcher{scripts: map[string]string{}} // everything 404s
	m := NewMatcher(fetcher)
	r := &rules.Rule{
		ID: "r", Type: rules.TypeRemove,
		Default: `<script src="http://s1.com/gone.js"></script>`,
	}
	violator := srvWithHosts("10.0.0.3", "deep.example")
	scripts := []string{"http://s1.com/gone.js"}
	for i := 0; i < 2; i++ {
		if got := m.Match(r, violator, scripts); got != MatchNone {
			t.Fatalf("Match = %v, want none", got)
		}
	}
	if fetcher.fetches != 1 {
		t.Errorf("fetches = %d, want 1 (failure cached)", fetcher.fetches)
	}
}

func TestMatchesAlternate(t *testing.T) {
	r := &rules.Rule{
		ID: "r", Type: rules.TypeReplaceSame,
		Default:      `<script src="http://s1.com/x.js">`,
		Alternatives: []string{`<script src="http://s2.net/x.js">`, `<script src="http://s3.org/x.js">`},
	}
	if !MatchesAlternate(r, 0, srvWithHosts("a", "s2.net")) {
		t.Error("alt 0 should match s2.net")
	}
	if MatchesAlternate(r, 0, srvWithHosts("a", "s3.org")) {
		t.Error("alt 0 should not match s3.org (that's alt 1)")
	}
	if !MatchesAlternate(r, 1, srvWithHosts("a", "s3.org")) {
		t.Error("alt 1 should match s3.org")
	}
	if MatchesAlternate(r, 0, srvWithHosts("a", "s1.com")) {
		t.Error("default host must not match as alternate")
	}
}

func TestMatchesAlternateType1(t *testing.T) {
	r := &rules.Rule{ID: "r", Type: rules.TypeRemove, Default: "x"}
	if MatchesAlternate(r, 0, srvWithHosts("a", "any.example")) {
		t.Error("type1 rule has no alternate to match")
	}
}

func TestMatchLevelString(t *testing.T) {
	levels := map[MatchLevel]string{
		MatchNone: "none", MatchDirect: "direct", MatchText: "text",
		MatchExternalJS: "external-js", MatchLevel(42): "unknown",
	}
	for l, want := range levels {
		if got := l.String(); got != want {
			t.Errorf("MatchLevel(%d).String() = %q, want %q", int(l), got, want)
		}
	}
}
