package core

import (
	"runtime"
	"sync"
	"sync/atomic"

	"oak/internal/obs"
	"oak/internal/stats"
)

// Sharding: the engine's per-user state (profiles with their violation
// counters and live activations) is partitioned across N lock-striped shards
// keyed by a hash of the user ID. A report only ever touches its user's
// shard, so reports for different users ingest fully in parallel; the old
// design took one global write lock per report and capped ingestion at a
// single core. Cross-user operations (Users, Audit, ExportState,
// ImportState) iterate the shards.
//
// Consistency: each shard is internally consistent (guarded by its own
// RWMutex). Operations that span shards lock them one at a time, so a
// cross-shard view is weakly consistent — it interleaves per-shard states
// that existed during the call, exactly like reading a sharded database
// without a global transaction. ImportState is the exception: it locks every
// shard for the swap so a restore is atomic.

// shard holds the profiles of one partition of the user population.
type shard struct {
	mu       sync.RWMutex
	profiles map[string]*Profile
	// users mirrors len(profiles) lock-free, so liveness surfaces (Users,
	// healthz) never block behind a shard wedged mid-ingest.
	users obs.Gauge
	// ingest is this shard's report-ingest latency histogram; the engine
	// merges the shards for the aggregate view and exposes them raw for
	// per-shard hot-spot diagnosis.
	ingest obs.Histogram
	// provIndex, maintained only on guard-enabled engines, maps alternate
	// provider hostname → user ID → set of rule IDs whose current
	// activation points at that provider. A breaker trip walks it to bulk-
	// deactivate every activation on the dead provider without scanning
	// profiles. Guarded by mu (write lock for every mutation).
	provIndex map[string]map[string]map[string]struct{}
	// pop, maintained only on synthesis-enabled engines, holds this shard's
	// current-window per-provider download-time sketches; the population
	// tick swaps it out and merges across shards. Created lazily on the
	// first fed report. Guarded by mu. See popwire.go.
	pop *shardPop
	// ruleIDScratch is reconciliation's reusable active-rule-ID snapshot
	// buffer; one per shard because it is only touched under mu (write).
	ruleIDScratch []string
	// spilled, allocated only on engines with a profile residency cap, maps
	// user ID → the durable segment record holding the evicted profile. A
	// user is in profiles or spilled, never both. Guarded by mu. See
	// spill.go.
	spilled map[string]spillRef
	// spillSeg is this shard's current append-target segment (nil until the
	// first eviction, and after a rotation). Guarded by mu.
	spillSeg *spillSegment
	// residentBytes estimates the heap bytes of this shard's resident
	// profiles, maintained on engines with a residency cap; it is the
	// quantity the byte cap watches. Atomic so the over-cap precheck stays
	// lock-free.
	residentBytes atomic.Int64
}

// shardPop is one shard's slice of the population aggregation window.
type shardPop struct {
	// provs maps provider hostname → this window's download-time sketch,
	// bounded by SynthesisConfig.MaxProviders.
	provs map[string]*stats.QuantileSketch
	// hh ranks providers by report appearances (space-saving top-k).
	hh *stats.HeavyHitters
}

// Shard-count bounds. The count is always rounded up to a power of two so
// the shard index is a mask, not a modulo.
const (
	minShards = 1
	maxShards = 1024
)

// DefaultShardCount returns the shard count used when WithShards is not
// given: four stripes per logical CPU (rounded up to a power of two, at
// least 8), so uniformly-hashed users rarely collide on a lock even with
// every CPU ingesting.
func DefaultShardCount() int {
	return clampShards(4 * runtime.GOMAXPROCS(0))
}

// clampShards bounds n to [minShards, maxShards] and rounds it up to a
// power of two (minimum 8 for the auto default's sake is applied by
// callers; clampShards itself only enforces the hard bounds).
func clampShards(n int) int {
	if n < 8 {
		n = 8
	}
	return nextPowerOfTwo(boundShards(n))
}

// boundShards applies the hard [minShards, maxShards] bounds.
func boundShards(n int) int {
	if n < minShards {
		return minShards
	}
	if n > maxShards {
		return maxShards
	}
	return n
}

// nextPowerOfTwo rounds n up to the nearest power of two (n >= 1).
func nextPowerOfTwo(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

// WithShards sets how many lock-striped shards hold per-user state. The
// count is rounded up to a power of two and bounded to [1, 1024]; 0 (and
// any negative value) selects the default (DefaultShardCount). One shard
// reproduces the old single-lock engine, which is useful as a contention
// baseline in benchmarks.
func WithShards(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			e.shardCount = 0 // resolved to the default at construction
			return
		}
		e.shardCount = nextPowerOfTwo(boundShards(n))
	}
}

// FNV-1a constants (hash/fnv unrolled so hashing a user ID allocates
// nothing on the ingest hot path).
const (
	fnvOffset32 = 2166136261
	fnvPrime32  = 16777619
)

// userHash is the 32-bit FNV-1a hash of a user ID. It is the one hash the
// whole system partitions users by: the shard index is its low bits, and
// the cluster gateway routes users to backends by contiguous ranges of this
// hash space (see HashRange), so a node's range export contains exactly the
// users a gateway sends it.
func userHash(userID string) uint32 {
	h := uint32(fnvOffset32)
	for i := 0; i < len(userID); i++ {
		h ^= uint32(userID[i])
		h *= fnvPrime32
	}
	return h
}

// UserHash exposes the user-partitioning hash (see userHash). Exported for
// the gateway and tooling; the value is stable across releases because
// snapshots and routing both depend on it.
func UserHash(userID string) uint32 { return userHash(userID) }

// shardIndex maps a user ID to its shard's index.
func (e *Engine) shardIndex(userID string) int {
	return int(userHash(userID) & uint32(len(e.shards)-1))
}

// shardFor returns the shard owning the user ID.
func (e *Engine) shardFor(userID string) *shard {
	return e.shards[e.shardIndex(userID)]
}

// ShardCount returns how many shards partition the engine's per-user state.
func (e *Engine) ShardCount() int { return len(e.shards) }
