package core

import (
	"sync"

	"oak/internal/htmlscan"
	"oak/internal/report"
	"oak/internal/rules"
)

// MatchLevel is the tier of evidence that tied a rule to a violating server
// (Section 4.2.2, studied in Figure 8 of the paper). Higher tiers subsume
// lower ones.
type MatchLevel int

const (
	// MatchNone: the rule could not be tied to the server.
	MatchNone MatchLevel = iota
	// MatchDirect: a src/href attribute in the rule references a domain
	// that resolved to the violating server ("strict include").
	MatchDirect
	// MatchText: a domain of the violating server appears somewhere in the
	// rule's default text (inline scripts constructing URLs, etc.).
	MatchText
	// MatchExternalJS: an external script referenced by the rule — fetched
	// and searched — mentions a domain of the violating server.
	MatchExternalJS
)

// String names the level.
func (l MatchLevel) String() string {
	switch l {
	case MatchNone:
		return "none"
	case MatchDirect:
		return "direct"
	case MatchText:
		return "text"
	case MatchExternalJS:
		return "external-js"
	default:
		return "unknown"
	}
}

// ScriptFetcher loads the body of an external script so the matcher can
// extend a rule's match surface to servers the script connects to. The
// matcher never modifies or re-serves these scripts — it "simply uses them
// to expand the surface to which a rule might match".
type ScriptFetcher interface {
	FetchScript(url string) (string, error)
}

// ScriptFetcherFunc adapts a function to the ScriptFetcher interface.
type ScriptFetcherFunc func(url string) (string, error)

// FetchScript implements ScriptFetcher.
func (f ScriptFetcherFunc) FetchScript(url string) (string, error) { return f(url) }

// Matcher decides whether a rule has a connection dependency on a violating
// server. It is safe for concurrent use.
type Matcher struct {
	// MaxLevel caps how much evidence is considered; the paper's deployed
	// configuration is MatchExternalJS. Lower settings exist for the
	// Figure 8 reproduction and ablations.
	MaxLevel MatchLevel
	// Fetcher loads external scripts for the MatchExternalJS tier. A nil
	// fetcher disables that tier.
	Fetcher ScriptFetcher
	// Depth is how many layers of external-script inclusion to follow.
	// The paper uses one layer and notes "rapidly diminishing" payoff
	// beyond it.
	Depth int

	mu    sync.Mutex
	cache map[string]string // script URL -> body ("" = fetch failed)
}

// NewMatcher returns a matcher at the paper's deployed configuration:
// all three tiers, one layer of script expansion.
func NewMatcher(fetcher ScriptFetcher) *Matcher {
	return &Matcher{MaxLevel: MatchExternalJS, Fetcher: fetcher, Depth: 1}
}

// Match reports the strongest evidence tier tying rule to the violating
// server, considering the scripts the client actually loaded during the
// reported page load (scriptURLs, from the report's entry list).
func (m *Matcher) Match(rule *rules.Rule, violator *report.ServerPerf, scriptURLs []string) MatchLevel {
	if rule == nil || violator == nil || len(violator.Hosts) == 0 {
		return MatchNone
	}

	// Tier 1 — direct inclusion: src/href attributes in the rule point at a
	// domain that resolved to the violating server. Compiled rules answer
	// from their host cache.
	ruleHosts := rule.SrcHosts()
	for _, rh := range ruleHosts {
		if violator.HasHost(rh) {
			return MatchDirect
		}
	}
	if m.MaxLevel < MatchText {
		return MatchNone
	}

	// Tier 2 — text match: any violator domain appears in the rule's text
	// (e.g. inline scripts that build URLs programmatically).
	for _, vh := range violator.Hosts {
		if htmlscan.ContainsHost(rule.Default, vh) {
			return MatchText
		}
	}
	if m.MaxLevel < MatchExternalJS || m.Fetcher == nil || m.Depth < 1 {
		return MatchNone
	}

	// Tier 3 — external JavaScript: scripts the client loaded whose source
	// domain appears in the rule are "activated by" the rule; their bodies
	// extend the rule's match surface. Followed Depth layers deep.
	surface := []string{rule.Default}
	pending := scriptURLs
	for depth := 0; depth < m.Depth && len(pending) > 0; depth++ {
		var next []string
		var newSurface []string
		for _, su := range pending {
			host := htmlscan.HostOf(su)
			if host == "" || !surfaceMentionsHost(surface, host) {
				continue
			}
			body := m.fetchCached(su)
			if body == "" {
				continue
			}
			newSurface = append(newSurface, body)
			next = append(next, htmlscan.ScriptSrcs(body)...)
		}
		if len(newSurface) == 0 {
			break
		}
		for _, vh := range violator.Hosts {
			for _, text := range newSurface {
				if htmlscan.ContainsHost(text, vh) {
					return MatchExternalJS
				}
			}
		}
		surface = append(surface, newSurface...)
		pending = next
	}
	return MatchNone
}

// MatchOwnSurface reports the strongest evidence tier tying rule to the
// violating server considering only the rule's own dependency surface: its
// default text plus the bodies of scripts the rule itself references
// (fetched, followed Depth layers deep). Unlike Match, scripts that are
// merely co-hosted with a domain the rule mentions do not extend the
// surface. Synthesis uses this form: a synthesized activation bypasses the
// per-user violation gate, so the evidence must show that this rule — not a
// neighbouring fragment on a shared script host — depends on the degraded
// provider.
func (m *Matcher) MatchOwnSurface(rule *rules.Rule, violator *report.ServerPerf) MatchLevel {
	if rule == nil || violator == nil || len(violator.Hosts) == 0 {
		return MatchNone
	}
	for _, rh := range rule.SrcHosts() {
		if violator.HasHost(rh) {
			return MatchDirect
		}
	}
	if m.MaxLevel < MatchText {
		return MatchNone
	}
	for _, vh := range violator.Hosts {
		if htmlscan.ContainsHost(rule.Default, vh) {
			return MatchText
		}
	}
	if m.MaxLevel < MatchExternalJS || m.Fetcher == nil || m.Depth < 1 {
		return MatchNone
	}
	pending := htmlscan.ScriptSrcs(rule.Default)
	for depth := 0; depth < m.Depth && len(pending) > 0; depth++ {
		var next []string
		var bodies []string
		for _, su := range pending {
			body := m.fetchCached(su)
			if body == "" {
				continue
			}
			bodies = append(bodies, body)
			next = append(next, htmlscan.ScriptSrcs(body)...)
		}
		for _, vh := range violator.Hosts {
			for _, text := range bodies {
				if htmlscan.ContainsHost(text, vh) {
					return MatchExternalJS
				}
			}
		}
		pending = next
	}
	return MatchNone
}

// surfaceMentionsHost reports whether any accumulated text mentions host.
func surfaceMentionsHost(surface []string, host string) bool {
	for _, text := range surface {
		if htmlscan.ContainsHost(text, host) {
			return true
		}
	}
	return false
}

// fetchCached loads a script body once, caching results (including
// failures, cached as empty) for the matcher's lifetime.
func (m *Matcher) fetchCached(url string) string {
	m.mu.Lock()
	if m.cache == nil {
		m.cache = make(map[string]string)
	}
	if body, ok := m.cache[url]; ok {
		m.mu.Unlock()
		return body
	}
	m.mu.Unlock()

	body, err := m.Fetcher.FetchScript(url)
	if err != nil {
		body = ""
	}

	m.mu.Lock()
	m.cache[url] = body
	m.mu.Unlock()
	return body
}

// MatchesAlternate reports whether the violating server is referenced by the
// rule's currently-selected alternative text — the signal that an activated
// rule's replacement provider has itself become a violator (Section 4.2.3).
func MatchesAlternate(rule *rules.Rule, altIndex int, violator *report.ServerPerf) bool {
	alt := rule.Alternative(altIndex)
	if alt == "" {
		return false
	}
	for _, h := range rule.AlternativeSrcHosts(altIndex) {
		if violator.HasHost(h) {
			return true
		}
	}
	for _, vh := range violator.Hosts {
		if htmlscan.ContainsHost(alt, vh) {
			return true
		}
	}
	return false
}
