package core

import (
	"sort"
	"sync"
)

// Ledger aggregates rule-activation events across all users. It backs the
// paper's Figure 14 (what fraction of a site's users activate each rule) and
// Table 3 (individual vs common problem providers), and doubles as the
// "offline auditing tool" the discussion section describes: operators read
// it to learn which components of their site perform poorly in the wild.
type Ledger struct {
	mu sync.Mutex
	// activations[ruleID][userID] = count
	activations map[string]map[string]int
	users       map[string]bool
}

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{
		activations: make(map[string]map[string]int),
		users:       make(map[string]bool),
	}
}

// RecordUser notes that a user interacted with the site (so activation
// fractions have a denominator even for users who never trigger rules).
func (l *Ledger) RecordUser(userID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.users[userID] = true
}

// RecordActivation notes that userID activated ruleID.
func (l *Ledger) RecordActivation(ruleID, userID string) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.users[userID] = true
	m, ok := l.activations[ruleID]
	if !ok {
		m = make(map[string]int)
		l.activations[ruleID] = m
	}
	m[userID]++
}

// RuleStat summarises one rule's activation footprint.
type RuleStat struct {
	RuleID string
	// Users is how many distinct users activated the rule.
	Users int
	// Activations is the total activation count.
	Activations int
	// UserFraction is Users divided by all users seen by the ledger.
	UserFraction float64
}

// Stats returns per-rule activation statistics sorted by descending user
// fraction, then rule ID.
func (l *Ledger) Stats() []RuleStat {
	l.mu.Lock()
	defer l.mu.Unlock()
	total := len(l.users)
	out := make([]RuleStat, 0, len(l.activations))
	for id, byUser := range l.activations {
		var acts int
		for _, n := range byUser {
			acts += n
		}
		st := RuleStat{RuleID: id, Users: len(byUser), Activations: acts}
		if total > 0 {
			st.UserFraction = float64(len(byUser)) / float64(total)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UserFraction != out[j].UserFraction {
			return out[i].UserFraction > out[j].UserFraction
		}
		return out[i].RuleID < out[j].RuleID
	})
	return out
}

// TotalUsers returns how many distinct users the ledger has seen.
func (l *Ledger) TotalUsers() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.users)
}

// Split partitions rules into "individual" (activated by at most threshold
// of users) and "common" (more), the paper's Table 3 cut at 18 %.
func (l *Ledger) Split(threshold float64) (individual, common []RuleStat) {
	for _, st := range l.Stats() {
		if st.UserFraction > threshold {
			common = append(common, st)
		} else {
			individual = append(individual, st)
		}
	}
	return individual, common
}
