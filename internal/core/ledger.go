package core

import (
	"sort"
	"sync"
)

// Ledger aggregates rule-activation events across all users. It backs the
// paper's Figure 14 (what fraction of a site's users activate each rule) and
// Table 3 (individual vs common problem providers), and doubles as the
// "offline auditing tool" the discussion section describes: operators read
// it to learn which components of their site perform poorly in the wild.
//
// The ledger is written on every report ingested, so like the engine's
// profile state it is lock-striped by user ID: concurrent reports for
// different users rarely touch the same stripe. Reads (Stats, TotalUsers)
// merge the stripes; a user lands in exactly one stripe, so merged counts
// are exact, though a read concurrent with writes is weakly consistent
// across stripes.
type Ledger struct {
	stripes []ledgerStripe
}

// ledgerStripe holds the ledger entries of one slice of the user population.
type ledgerStripe struct {
	mu sync.Mutex
	// activations[ruleID][userID] = count
	activations map[string]map[string]int
	users       map[string]bool
}

// ledgerStripes is the stripe count (power of two; the stripe index is a
// mask). 32 stripes keep collision probability low at any realistic
// ingest parallelism without meaningful memory cost.
const ledgerStripes = 32

// NewLedger returns an empty ledger.
func NewLedger() *Ledger {
	l := &Ledger{stripes: make([]ledgerStripe, ledgerStripes)}
	for i := range l.stripes {
		l.stripes[i].activations = make(map[string]map[string]int)
		l.stripes[i].users = make(map[string]bool)
	}
	return l
}

// stripeFor returns the stripe owning the user ID (FNV-1a, like the
// engine's shard hash).
func (l *Ledger) stripeFor(userID string) *ledgerStripe {
	h := uint32(fnvOffset32)
	for i := 0; i < len(userID); i++ {
		h ^= uint32(userID[i])
		h *= fnvPrime32
	}
	return &l.stripes[h&uint32(len(l.stripes)-1)]
}

// RecordUser notes that a user interacted with the site (so activation
// fractions have a denominator even for users who never trigger rules).
func (l *Ledger) RecordUser(userID string) {
	s := l.stripeFor(userID)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[userID] = true
}

// RecordActivation notes that userID activated ruleID.
func (l *Ledger) RecordActivation(ruleID, userID string) {
	s := l.stripeFor(userID)
	s.mu.Lock()
	defer s.mu.Unlock()
	s.users[userID] = true
	m, ok := s.activations[ruleID]
	if !ok {
		m = make(map[string]int)
		s.activations[ruleID] = m
	}
	m[userID]++
}

// RuleStat summarises one rule's activation footprint.
type RuleStat struct {
	RuleID string
	// Users is how many distinct users activated the rule.
	Users int
	// Activations is the total activation count.
	Activations int
	// UserFraction is Users divided by all users seen by the ledger.
	UserFraction float64
}

// Stats returns per-rule activation statistics sorted by descending user
// fraction, then rule ID.
func (l *Ledger) Stats() []RuleStat {
	type ruleAgg struct {
		users, activations int
	}
	total := 0
	agg := make(map[string]*ruleAgg)
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		total += len(s.users)
		for id, byUser := range s.activations {
			a, ok := agg[id]
			if !ok {
				a = &ruleAgg{}
				agg[id] = a
			}
			// Each user lives in exactly one stripe, so distinct-user
			// counts add without double counting.
			a.users += len(byUser)
			for _, n := range byUser {
				a.activations += n
			}
		}
		s.mu.Unlock()
	}
	out := make([]RuleStat, 0, len(agg))
	for id, a := range agg {
		st := RuleStat{RuleID: id, Users: a.users, Activations: a.activations}
		if total > 0 {
			st.UserFraction = float64(a.users) / float64(total)
		}
		out = append(out, st)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].UserFraction != out[j].UserFraction {
			return out[i].UserFraction > out[j].UserFraction
		}
		return out[i].RuleID < out[j].RuleID
	})
	return out
}

// TotalUsers returns how many distinct users the ledger has seen.
func (l *Ledger) TotalUsers() int {
	total := 0
	for i := range l.stripes {
		s := &l.stripes[i]
		s.mu.Lock()
		total += len(s.users)
		s.mu.Unlock()
	}
	return total
}

// Split partitions rules into "individual" (activated by at most threshold
// of users) and "common" (more), the paper's Table 3 cut at 18 %.
func (l *Ledger) Split(threshold float64) (individual, common []RuleStat) {
	for _, st := range l.Stats() {
		if st.UserFraction > threshold {
			common = append(common, st)
		} else {
			individual = append(individual, st)
		}
	}
	return individual, common
}
