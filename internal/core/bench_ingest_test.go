package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"oak/internal/report"
	"oak/internal/rules"
)

// Ingest benchmarks: the numbers behind BENCH_ingest.json (make bench).
// BenchmarkHandleReportParallel vs BenchmarkHandleReportParallelSingleShard
// is the sharding payoff — the single-shard engine reproduces the old
// one-global-lock design, so the ratio of their reports/sec is the
// parallel-ingest speedup on the machine at hand.

// benchUserPool is how many distinct users each benchmark goroutine cycles
// through, spreading load across every shard.
const benchUserPool = 512

// benchReports pre-builds one report per pool user so the measured loop
// does no allocation beyond the engine's own.
func benchReports(prefix string) []*report.Report {
	reports := make([]*report.Report, benchUserPool)
	for i := range reports {
		reports[i] = slowS1Report(fmt.Sprintf("%s-%d", prefix, i))
	}
	return reports
}

func benchEngine(b *testing.B, opts ...Option) *Engine {
	b.Helper()
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// BenchmarkHandleReportSerial is the single-goroutine ingest cost.
func BenchmarkHandleReportSerial(b *testing.B) {
	e := benchEngine(b)
	reports := benchReports("serial")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(reports[i%benchUserPool]); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b)
}

// BenchmarkHandleReportParallel ingests reports for distinct users from
// every available core against the default-sharded engine.
func BenchmarkHandleReportParallel(b *testing.B) {
	benchParallel(b, benchEngine(b))
}

// BenchmarkHandleReportParallelSingleShard is the contention baseline: one
// shard means one write lock for all users, the pre-sharding design.
func BenchmarkHandleReportParallelSingleShard(b *testing.B) {
	benchParallel(b, benchEngine(b, WithShards(1)))
}

func benchParallel(b *testing.B, e *Engine) {
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine owns a distinct slice of the user population.
		reports := benchReports(fmt.Sprintf("g%d", gid.Add(1)))
		i := 0
		for pb.Next() {
			if _, err := e.HandleReport(reports[i%benchUserPool]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	reportThroughput(b)
}

// BenchmarkHandleBatch measures the batch entry point end to end (fan-out
// across inline workers, no pipeline).
func BenchmarkHandleBatch(b *testing.B) {
	e := benchEngine(b)
	reports := benchReports("batch")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.HandleBatch(context.Background(), reports)
		if res.Failed != 0 {
			b.Fatalf("batch failed: %+v", res)
		}
	}
	b.StopTimer()
	// Normalise to per-report so the number is comparable to the others.
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchUserPool)
	if perOp > 0 {
		b.ReportMetric(1e9/perOp, "reports/sec")
	}
}

// BenchmarkHandleReportPipeline drives the batched-ingest pipeline from
// parallel submitters.
func BenchmarkHandleReportPipeline(b *testing.B) {
	benchParallel(b, benchEngine(b, WithIngestPipeline(IngestConfig{})))
}

// benchWire marshals the bench corpus with the given encoder and measures
// decode+handle end to end, reporting the mean payload size as wire_bytes so
// the JSON and OAKRPT1 rows in BENCH_ingest.json compare both CPU and bytes.
func benchWire(b *testing.B, marshal func(*report.Report) ([]byte, error), decode func([]byte) (*report.Report, error)) {
	e := benchEngine(b)
	reports := benchReports("wire")
	payloads := make([][]byte, len(reports))
	var wireBytes int
	for i, r := range reports {
		data, err := marshal(r)
		if err != nil {
			b.Fatal(err)
		}
		payloads[i] = data
		wireBytes += len(data)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := decode(payloads[i%benchUserPool])
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.HandleReport(rep); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(wireBytes)/float64(len(payloads)), "wire_bytes")
	reportThroughput(b)
}

// BenchmarkIngestJSON is the full JSON ingest path: pooled fast-path decode
// of the serialised report, then HandleReport (which releases it).
func BenchmarkIngestJSON(b *testing.B) {
	benchWire(b, (*report.Report).Marshal, report.DecodePooled)
}

// BenchmarkIngestBinary is the same path over the OAKRPT1 binary format.
func BenchmarkIngestBinary(b *testing.B) {
	benchWire(b, (*report.Report).MarshalBinary, report.DecodeBinaryPooled)
}

// reportThroughput derives reports/sec from the measured ns/op.
func reportThroughput(b *testing.B) {
	if b.N == 0 || b.Elapsed() == 0 {
		return
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/sec")
}
