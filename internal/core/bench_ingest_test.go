package core

import (
	"context"
	"fmt"
	"sync/atomic"
	"testing"

	"oak/internal/report"
	"oak/internal/rules"
)

// Ingest benchmarks: the numbers behind BENCH_ingest.json (make bench).
// BenchmarkHandleReportParallel vs BenchmarkHandleReportParallelSingleShard
// is the sharding payoff — the single-shard engine reproduces the old
// one-global-lock design, so the ratio of their reports/sec is the
// parallel-ingest speedup on the machine at hand.

// benchUserPool is how many distinct users each benchmark goroutine cycles
// through, spreading load across every shard.
const benchUserPool = 512

// benchReports pre-builds one report per pool user so the measured loop
// does no allocation beyond the engine's own.
func benchReports(prefix string) []*report.Report {
	reports := make([]*report.Report, benchUserPool)
	for i := range reports {
		reports[i] = slowS1Report(fmt.Sprintf("%s-%d", prefix, i))
	}
	return reports
}

func benchEngine(b *testing.B, opts ...Option) *Engine {
	b.Helper()
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// BenchmarkHandleReportSerial is the single-goroutine ingest cost.
func BenchmarkHandleReportSerial(b *testing.B) {
	e := benchEngine(b)
	reports := benchReports("serial")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(reports[i%benchUserPool]); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b)
}

// BenchmarkHandleReportParallel ingests reports for distinct users from
// every available core against the default-sharded engine.
func BenchmarkHandleReportParallel(b *testing.B) {
	benchParallel(b, benchEngine(b))
}

// BenchmarkHandleReportParallelSingleShard is the contention baseline: one
// shard means one write lock for all users, the pre-sharding design.
func BenchmarkHandleReportParallelSingleShard(b *testing.B) {
	benchParallel(b, benchEngine(b, WithShards(1)))
}

func benchParallel(b *testing.B, e *Engine) {
	var gid atomic.Int64
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		// Each goroutine owns a distinct slice of the user population.
		reports := benchReports(fmt.Sprintf("g%d", gid.Add(1)))
		i := 0
		for pb.Next() {
			if _, err := e.HandleReport(reports[i%benchUserPool]); err != nil {
				b.Fatal(err)
			}
			i++
		}
	})
	reportThroughput(b)
}

// BenchmarkHandleBatch measures the batch entry point end to end (fan-out
// across inline workers, no pipeline).
func BenchmarkHandleBatch(b *testing.B) {
	e := benchEngine(b)
	reports := benchReports("batch")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := e.HandleBatch(context.Background(), reports)
		if res.Failed != 0 {
			b.Fatalf("batch failed: %+v", res)
		}
	}
	b.StopTimer()
	// Normalise to per-report so the number is comparable to the others.
	perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N*benchUserPool)
	if perOp > 0 {
		b.ReportMetric(1e9/perOp, "reports/sec")
	}
}

// BenchmarkHandleReportPipeline drives the batched-ingest pipeline from
// parallel submitters.
func BenchmarkHandleReportPipeline(b *testing.B) {
	benchParallel(b, benchEngine(b, WithIngestPipeline(IngestConfig{})))
}

// reportThroughput derives reports/sec from the measured ns/op.
func reportThroughput(b *testing.B) {
	if b.N == 0 || b.Elapsed() == 0 {
		return
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/sec")
}
