package core

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/guard"
	"oak/internal/obs"
	"oak/internal/report"
	"oak/internal/rules"
)

// Engine is the Oak server's decision core. It ingests client performance
// reports, maintains per-user profiles, and rewrites outgoing pages with the
// rules active for each user. It is safe for concurrent use.
//
// Per-user state lives in lock-striped shards (see shard.go) keyed by user
// ID, so reports for different users ingest in parallel; the rule set has
// its own lock. An optional batched-ingest pipeline (WithIngestPipeline)
// adds a bounded queue and a worker pool in front of the shards; engines
// with a pipeline should be Closed when no longer needed.
type Engine struct {
	rulesMu sync.RWMutex
	rules   []*rules.Rule
	// rulesGen increments on every SetRules. It feeds the activation
	// fingerprint, so a rule-set swap invalidates both the per-profile
	// activation caches and every rewrite-cache entry without a scan.
	rulesGen atomic.Uint64

	// shards partition per-user state; len(shards) is a power of two fixed
	// at construction. shardCount carries the WithShards request until the
	// shards are built.
	shards     []*shard
	shardCount int

	policy  Policy
	matcher *Matcher
	ledger  *Ledger
	metrics metrics
	now     func() time.Time
	logf    func(format string, args ...any)

	// pipeline is the optional batched-ingest queue + worker pool; nil
	// means HandleReport processes synchronously on the caller's goroutine.
	pipeline       *pipeline
	pipelineConfig *IngestConfig

	// shedPolicy, when set, turns full-queue blocking into deadline-aware
	// admission control (WithLoadShedding).
	shedPolicy *ShedPolicy

	// Observability (internal/obs): every decision point emits a structured
	// trace event; rewrite latency feeds one histogram, ingest latency one
	// histogram per shard (merged on read). traceBuf nil means tracing is
	// disabled and the hot paths skip event construction entirely.
	traceBuf    *obs.Trace
	rewriteHist obs.Histogram

	// rewriteCache, when non-nil, memoizes whole page rewrites keyed by
	// (page content hash, activation fingerprint). See rewritecache.go.
	rewriteCache *rewriteCache

	// guard, when non-nil (WithGuard), holds the per-provider circuit
	// breakers and rule-quarantine table; guardConfig carries the WithGuard
	// request until construction. altHosts caches rule ID → per-alternative
	// provider hostnames for the current rule set (rebuilt by SetRules), so
	// activation-time breaker checks never rescan alternative text. See
	// guardwire.go.
	guard       *guard.Set
	guardConfig *GuardConfig
	altHosts    atomic.Pointer[map[string][][]string]

	// pop, when non-nil (WithSynthesis), holds the population-level
	// detection state: per-provider download-time baselines, the degraded
	// set, and the synthesis machinery; synthConfig carries the
	// WithSynthesis request until construction. See popwire.go.
	pop         *popState
	synthConfig *SynthesisConfig

	// stateSource records where this engine's state last came from
	// (fresh/snapshot/backup/shipped) for healthz and the cluster gateway;
	// set by LoadStateFile and ImportShippedState. Empty reads as StateFresh.
	stateSource atomic.Value // StateSource

	// spill, when non-nil (WithProfileResidency), bounds the resident
	// profile set: cold profiles are evicted to crash-safe segment files and
	// rehydrated lazily on the next report or page request; residencyCfg
	// carries the option until construction. rulesByID is the current rule
	// set indexed by ID, rebuilt by SetRules, so rehydration resolves rule
	// references without scanning; rehydrateHist times rehydrations. See
	// spill.go.
	spill         *spillStore
	residencyCfg  *ResidencyConfig
	rulesByID     atomic.Pointer[map[string]*rules.Rule]
	rehydrateHist obs.Histogram
}

// Option configures an Engine.
type Option func(*Engine)

// WithPolicy sets the operator policy (zero fields take defaults).
func WithPolicy(p Policy) Option {
	return func(e *Engine) { e.policy = p.normalized() }
}

// WithScriptFetcher enables the external-JavaScript matching tier using the
// given fetcher.
func WithScriptFetcher(f ScriptFetcher) Option {
	return func(e *Engine) { e.matcher.Fetcher = f }
}

// WithClock overrides the engine's time source (tests, simulation).
func WithClock(now func() time.Time) Option {
	return func(e *Engine) { e.now = now }
}

// WithLogf directs engine decision logging (rule activations, removals) to
// a printf-style sink. Logging is off by default. The structured source of
// these lines is the decision trace (TraceRecent); the sink receives one
// rendered line per trace event.
func WithLogf(logf func(format string, args ...any)) Option {
	return func(e *Engine) { e.logf = logf }
}

// WithTraceCapacity sizes the decision-trace ring buffer (default
// obs.DefaultTraceCapacity). The ring keeps the most recent n events;
// n <= 0 disables tracing entirely, which also spares the hot paths the
// cost of building event strings.
func WithTraceCapacity(n int) Option {
	return func(e *Engine) {
		if n <= 0 {
			e.traceBuf = nil
			return
		}
		e.traceBuf = obs.NewTrace(n)
	}
}

// NewEngine builds an engine with the given rule set.
// Rules are compiled; an invalid rule fails construction.
func NewEngine(ruleSet []*rules.Rule, opts ...Option) (*Engine, error) {
	e := &Engine{
		policy:   DefaultPolicy(),
		matcher:  NewMatcher(nil),
		ledger:   NewLedger(),
		now:      time.Now,
		traceBuf: obs.NewTrace(obs.DefaultTraceCapacity),
	}
	for _, opt := range opts {
		opt(e)
	}
	e.initGuard()
	e.initPop()
	n := e.shardCount
	if n <= 0 {
		n = DefaultShardCount()
	}
	e.shards = make([]*shard, n)
	for i := range e.shards {
		e.shards[i] = &shard{profiles: make(map[string]*Profile)}
	}
	e.matcher.MaxLevel = e.policy.MatchLevel
	e.matcher.Depth = e.policy.MatchDepth
	if err := e.SetRules(ruleSet); err != nil {
		return nil, err
	}
	if err := e.initSpill(); err != nil {
		return nil, err
	}
	if e.pipelineConfig != nil {
		e.pipeline = newPipeline(e, *e.pipelineConfig)
	}
	return e, nil
}

// Close stops the batched-ingest pipeline, draining queued reports first.
// It is a no-op for engines without a pipeline and is safe to call more
// than once. After Close, HandleReport returns ErrEngineClosed.
func (e *Engine) Close() error {
	if e.pipeline != nil {
		e.pipeline.close()
	}
	if e.spill != nil {
		e.spill.close()
	}
	return nil
}

// SetRules replaces the engine's rule set. Existing per-user activations of
// removed rules are dropped lazily (they no longer match any rule ID at
// page-modification time they remain harmless; profiles keep them until
// expiry). Each rule is compiled.
func (e *Engine) SetRules(ruleSet []*rules.Rule) error {
	seen := make(map[string]bool, len(ruleSet))
	for _, r := range ruleSet {
		if err := r.Compile(); err != nil {
			return fmt.Errorf("engine: %w", err)
		}
		if seen[r.ID] {
			return fmt.Errorf("engine: duplicate rule id %q", r.ID)
		}
		seen[r.ID] = true
	}
	e.rulesMu.Lock()
	defer e.rulesMu.Unlock()
	e.rules = append([]*rules.Rule(nil), ruleSet...)
	byID := make(map[string]*rules.Rule, len(e.rules))
	for _, r := range e.rules {
		byID[r.ID] = r
	}
	e.rulesByID.Store(&byID)
	e.rebuildAltHosts()
	// A new generation changes every activation fingerprint, invalidating
	// cached activation derivations and rewrite-cache entries in one step.
	e.rulesGen.Add(1)
	return nil
}

// Rules returns a copy of the engine's rule set.
func (e *Engine) Rules() []*rules.Rule {
	e.rulesMu.RLock()
	defer e.rulesMu.RUnlock()
	return append([]*rules.Rule(nil), e.rules...)
}

// ruleSnapshot returns the live rule slice for read-only iteration. The
// slice itself is never mutated after SetRules installs it, so holding the
// lock only for the slice-header read is safe.
func (e *Engine) ruleSnapshot() []*rules.Rule {
	e.rulesMu.RLock()
	defer e.rulesMu.RUnlock()
	return e.rules
}

// Ledger exposes the activation ledger (auditing, Figure 14 / Table 3).
func (e *Engine) Ledger() *Ledger { return e.ledger }

// RuleChange describes one activation-state transition made while handling
// a report.
type RuleChange struct {
	RuleID string
	// Action is "activate", "advance" (next alternative), "keep"
	// (alternate violated but still beats the default), "deactivate"
	// (reverted to default) or "expire".
	Action string
	// Server is the violating server that triggered the change, if any.
	Server string
	// AltIndex is the alternative in effect after the change.
	AltIndex int
	// Level is the evidence tier that tied the rule to the server
	// (activations only).
	Level MatchLevel
	// Synthesized marks an activation created by population-level rule
	// synthesis rather than the user's own violation history.
	Synthesized bool
}

// AnalysisResult is what HandleReport decided.
type AnalysisResult struct {
	UserID     string
	Violations []Violation
	Changes    []RuleChange
}

// HandleReport runs the full performance-analysis pipeline of Section 4.2 on
// one client report: group objects by server, detect violators with the MAD
// criterion, reconcile the user's existing activations (rule history), and
// activate any rules with a connection dependency on a violator.
//
// It is HandleReportCtx with a background context.
func (e *Engine) HandleReport(r *report.Report) (*AnalysisResult, error) {
	return e.HandleReportCtx(context.Background(), r)
}

// HandleReportCtx is HandleReport with a context. On an engine with a
// batched-ingest pipeline the report is queued and the call waits for the
// result; cancelling ctx abandons the report while it is still queued (a
// report already being processed completes, but the call returns ctx's
// error immediately). Without a pipeline the report is processed
// synchronously and ctx is only checked on entry.
//
// Submitting transfers ownership of a pooled report (DecodePooled /
// DecodeBinaryPooled) to the engine: it is released exactly once on every
// path out of ingest, and the caller must not touch it after this call.
func (e *Engine) HandleReportCtx(ctx context.Context, r *report.Report) (*AnalysisResult, error) {
	if err := r.Validate(); err != nil {
		r.Release()
		return nil, err
	}
	if err := ctx.Err(); err != nil {
		r.Release()
		return nil, err
	}
	if e.pipeline != nil {
		return e.pipeline.submit(ctx, r)
	}
	return e.process(r)
}

// scriptURLPool recycles the per-report script-URL accumulation buffer.
var scriptURLPool = sync.Pool{New: func() any { return new([]string) }}

// process runs the analysis pipeline on one pre-validated report against
// the report's shard. It is the synchronous core both ingest paths share,
// and the place a pooled report is released once its shard is done with it.
func (e *Engine) process(r *report.Report) (*AnalysisResult, error) {
	defer r.Release()
	sh := e.shardFor(r.UserID)
	start := time.Now()
	defer func() { sh.ingest.Observe(time.Since(start)) }()

	now := e.now()
	servers := report.GroupByServer(r)
	violations := DetectViolators(servers, e.policy.MADMultiplier)
	e.metrics.reportsHandled.Add(1)
	e.metrics.entriesProcessed.Add(uint64(len(r.Entries)))
	e.metrics.violationsDetected.Add(uint64(len(violations)))

	// Script URLs the client actually loaded, for the external-JS tier. The
	// matcher reads the slice only during analyzeLocked, so the buffer is
	// recycled across reports.
	urlBuf := scriptURLPool.Get().(*[]string)
	scriptURLs := (*urlBuf)[:0]
	for _, s := range servers {
		scriptURLs = append(scriptURLs, s.ScriptURLs...)
	}

	activeRules := e.ruleSnapshot()

	sh.mu.Lock()
	res, outcomes := e.analyzeLocked(sh, r, now, servers, violations, scriptURLs, activeRules)
	sh.mu.Unlock()

	*urlBuf = scriptURLs[:0]
	scriptURLPool.Put(urlBuf)

	// Population-level guard outcomes are observed only after the shard lock
	// is released: a transition acts across shards (bulk rollback locks them
	// one at a time), which would deadlock from under sh.mu.
	for _, oc := range outcomes {
		e.ObserveProviderOutcome(oc.provider, oc.good, oc.deltaMs)
	}
	// Likewise the population window tick: it locks shards one at a time to
	// swap their sketches out.
	e.popTickIfDue(now)
	// And the residency cap: eviction re-takes the shard lock and may fsync
	// a spill batch, neither of which belongs inside the critical section.
	e.enforceResidency(sh, "")
	return res, nil
}

// analyzeLocked is process's per-shard critical section: profile
// bookkeeping, expiry pruning, violation handling and rule activation. It
// additionally derives the report's population-level provider outcomes for
// the guard (from the pre-reconciliation activation state) and hands them
// back for the caller to observe lock-free. Caller holds sh.mu for writing.
func (e *Engine) analyzeLocked(sh *shard, r *report.Report, now time.Time, servers []*report.ServerPerf, violations []Violation, scriptURLs []string, activeRules []*rules.Rule) (*AnalysisResult, []providerOutcome) {
	prof := e.profileLocked(sh, r.UserID)
	prof.lastReport = now
	e.ledger.RecordUser(r.UserID)
	if e.tracing() {
		e.traceAt(now, obs.Event{
			Kind: obs.EventReport, User: r.UserID,
			Detail: reportDetail(r.Page, len(r.Entries), len(servers), len(violations)),
		})
	}

	e.feedPopLocked(sh, servers)

	var outcomes []providerOutcome
	if e.guard != nil {
		violated := make(map[string]float64, len(violations))
		for _, v := range violations {
			if d, ok := violated[v.Server.Addr]; !ok || v.Distance > d {
				violated[v.Server.Addr] = v.Distance
			}
		}
		outcomes = e.collectOutcomes(prof, now, servers, violated)
	}

	res := &AnalysisResult{UserID: r.UserID, Violations: violations}

	for _, ex := range prof.pruneExpired(now) {
		e.unindexActivation(sh, r.UserID, ex.ID, ex.AltIndex)
		e.metrics.ruleExpirations.Add(1)
		res.Changes = append(res.Changes, RuleChange{RuleID: ex.ID, Action: "expire"})
		if e.tracing() {
			e.traceAt(now, obs.Event{Kind: obs.EventExpire, User: r.UserID, RuleID: ex.ID})
		}
	}

	for _, v := range violations {
		count := prof.recordViolation(v.Server.Addr)
		if e.tracing() {
			e.traceAt(now, obs.Event{
				Kind: obs.EventViolator, User: r.UserID, Provider: v.Server.Addr,
				Detail: violatorDetail(v.Metric, v.Distance, count),
			})
		}

		// Rule history (Section 4.2.3): if the violator is the alternate of
		// an already-active rule, decide between keeping the alternate,
		// advancing to the next one, and reverting to the default by
		// minimising distance from the median.
		handled := e.reconcileActiveRules(sh, prof, v, now, res)
		if handled {
			continue
		}

		if count < e.policy.MinViolations {
			continue // policy says not yet
		}

		// Activation (Section 4.2.2): find rules with a connection
		// dependency on the violator and activate them for this user.
		for _, rule := range activeRules {
			if !rule.InScope(r.Page) {
				continue
			}
			if existing := prof.activeRule(rule.ID); existing != nil && !existing.Expired(now) {
				continue // already active
			}
			level := e.matcher.Match(rule, v.Server, scriptURLs)
			if level == MatchNone {
				continue
			}
			altIdx := 0
			if rule.Type != rules.TypeRemove {
				altIdx = e.policy.SelectAlternative(rule, -1, r.UserID)
			}
			admit, canary, blockedBy := e.guardAdmit(rule.ID, altIdx)
			if !admit {
				// The target provider (or the rule itself) is quarantined:
				// this user is never steered onto a known-bad alternate.
				e.metrics.activationsBlocked.Inc()
				if e.tracing() {
					e.traceAt(now, obs.Event{
						Kind: obs.EventQuarantine, User: r.UserID, RuleID: rule.ID,
						Provider: blockedBy,
						Detail:   fmt.Sprintf("activation blocked, alt %d", altIdx),
					})
				}
				continue
			}
			prof.activate(rule, altIdx, now, v.Server.Addr, v.Distance)
			e.indexActivation(sh, r.UserID, rule.ID, altIdx)
			e.metrics.ruleActivations.Add(1)
			e.ledger.RecordActivation(rule.ID, r.UserID)
			res.Changes = append(res.Changes, RuleChange{
				RuleID: rule.ID, Action: "activate", Server: v.Server.Addr,
				AltIndex: altIdx, Level: level,
			})
			if canary {
				e.metrics.canaryActivations.Inc()
				if e.tracing() {
					e.traceAt(now, obs.Event{
						Kind: obs.EventCanary, User: r.UserID, RuleID: rule.ID,
						Detail: fmt.Sprintf("canary activation through half-open breaker, alt %d", altIdx),
					})
				}
			}
			if e.tracing() {
				e.traceAt(now, obs.Event{
					Kind: obs.EventActivate, User: r.UserID, RuleID: rule.ID,
					Provider: v.Server.Addr,
					Detail:   fmt.Sprintf("%s match, alt %d", level, altIdx),
				})
			}
		}
	}

	// Population-level synthesis: if the report touched a provider the
	// population detector has flagged, activate matching rules for this user
	// now, without waiting for their personal violation count.
	e.synthesizeLocked(sh, prof, r, now, servers, activeRules, res)

	// The report may have grown the profile; keep the shard's resident-bytes
	// estimate honest for the byte cap.
	e.noteProfileSizeLocked(sh, prof)

	return res, outcomes
}

// reconcileActiveRules implements the rule-history decision for one
// violation. It returns true if the violator was recognised as the alternate
// of an active rule (in which case normal activation matching is skipped for
// this violator). Caller holds sh.mu for writing.
func (e *Engine) reconcileActiveRules(sh *shard, prof *Profile, v Violation, now time.Time, res *AnalysisResult) bool {
	handled := false
	ids := prof.activeRuleIDsInto(now, sh.ruleIDScratch)
	sh.ruleIDScratch = ids // keep the (possibly grown) buffer for reuse
	for _, id := range ids {
		a := prof.activeRule(id)
		if a == nil || !MatchesAlternate(a.Rule, a.AltIndex, v.Server) {
			continue
		}
		handled = true
		switch {
		case v.Distance < a.TriggerDistance:
			// The alternate under-performs its current population but is
			// still closer to the median than the original default was:
			// retain it ("attempting to retain rules which outperform the
			// default").
			res.Changes = append(res.Changes, RuleChange{
				RuleID: id, Action: "keep", Server: v.Server.Addr, AltIndex: a.AltIndex,
			})
			if e.tracing() {
				e.traceAt(now, obs.Event{
					Kind: obs.EventKeep, User: prof.UserID, RuleID: id, Provider: v.Server.Addr,
					Detail: fmt.Sprintf("alt dist %.1f < default dist %.1f", v.Distance, a.TriggerDistance),
				})
			}
		case a.AltIndex+1 < len(a.Rule.Alternatives):
			// A fresh alternative remains: progress linearly.
			next := e.policy.SelectAlternative(a.Rule, a.AltIndex, prof.UserID)
			if next == a.AltIndex {
				next = a.AltIndex + 1 // selector refused to move; force progression
			}
			if admit, canary, blockedBy := e.guardAdmit(id, next); !admit {
				// The next alternative's provider is quarantined: revert to
				// the default rather than steer the user onto it.
				e.metrics.activationsBlocked.Inc()
				e.unindexActivation(sh, prof.UserID, id, a.AltIndex)
				prof.deactivate(id)
				e.metrics.ruleDeactivations.Add(1)
				res.Changes = append(res.Changes, RuleChange{
					RuleID: id, Action: "deactivate", Server: v.Server.Addr,
				})
				if e.tracing() {
					e.traceAt(now, obs.Event{
						Kind: obs.EventQuarantine, User: prof.UserID, RuleID: id,
						Provider: blockedBy,
						Detail:   fmt.Sprintf("advance to alt %d blocked; reverted to default", next),
					})
				}
				break
			} else if canary {
				e.metrics.canaryActivations.Inc()
				if e.tracing() {
					e.traceAt(now, obs.Event{
						Kind: obs.EventCanary, User: prof.UserID, RuleID: id,
						Detail: fmt.Sprintf("canary advance through half-open breaker, alt %d", next),
					})
				}
			}
			e.unindexActivation(sh, prof.UserID, id, a.AltIndex)
			prof.activate(a.Rule, next, now, v.Server.Addr, v.Distance)
			e.indexActivation(sh, prof.UserID, id, next)
			e.metrics.ruleActivations.Add(1)
			e.ledger.RecordActivation(id, prof.UserID)
			res.Changes = append(res.Changes, RuleChange{
				RuleID: id, Action: "advance", Server: v.Server.Addr, AltIndex: next,
			})
			if e.tracing() {
				e.traceAt(now, obs.Event{
					Kind: obs.EventAdvance, User: prof.UserID, RuleID: id, Provider: v.Server.Addr,
					Detail: fmt.Sprintf("alt %d", next),
				})
			}
		default:
			// The alternate is at least as far from the median as the
			// default was and nothing fresh remains: revert.
			e.unindexActivation(sh, prof.UserID, id, a.AltIndex)
			prof.deactivate(id)
			e.metrics.ruleDeactivations.Add(1)
			res.Changes = append(res.Changes, RuleChange{
				RuleID: id, Action: "deactivate", Server: v.Server.Addr,
			})
			if e.tracing() {
				e.traceAt(now, obs.Event{
					Kind: obs.EventDeactivate, User: prof.UserID, RuleID: id, Provider: v.Server.Addr,
					Detail: "alternate worse than default",
				})
			}
		}
	}
	return handled
}

// ActiveRules returns the rule applications live for the user on the given
// page path, in deterministic order. The derivation is memoized per
// (profile, path) against the profile's activation epoch, so repeated calls
// while the user's state is stable do not rescan the profile; the returned
// slice is the caller's to keep.
func (e *Engine) ActiveRules(userID, path string) []rules.Activation {
	sh := e.shardFor(userID)
	e.rlockResident(sh, userID)
	defer sh.mu.RUnlock()
	prof, ok := sh.profiles[userID]
	if !ok {
		return nil
	}
	ent := prof.cachedActivations(path, e.now(), e.rulesGen.Load())
	if len(ent.acts) == 0 {
		return nil
	}
	return append([]rules.Activation(nil), ent.acts...)
}

// ActivationFingerprint returns the fingerprint of the user's activation
// set for path: a cheap hash over the rule-set generation, the path, and
// every (rule ID, alternative) pair. Zero means no in-scope activations —
// the page would be served untouched. Equal fingerprints guarantee
// byte-identical rewrites of the same page.
func (e *Engine) ActivationFingerprint(userID, path string) uint64 {
	sh := e.shardFor(userID)
	e.rlockResident(sh, userID)
	defer sh.mu.RUnlock()
	prof, ok := sh.profiles[userID]
	if !ok {
		return 0
	}
	return prof.cachedActivations(path, e.now(), e.rulesGen.Load()).fp
}

// Rewrite is the outcome of rewriting one outgoing page for one user.
type Rewrite struct {
	// HTML is the page to serve. It is the input string itself (same
	// backing array, no copy) when no rule changed anything.
	HTML string
	// Applied records what each in-scope rule did; nil when no rule
	// replaced anything (see rules.Apply).
	Applied []rules.Applied
	// Hint is the precomputed X-Oak-Alternate header value ("" when no
	// Type 2 rule contributed hints).
	Hint string
	// CacheHit reports whether the rewrite was served from the rewrite
	// cache rather than recomputed.
	CacheHit bool
}

// ModifyPage rewrites an outgoing page for the user (Section 4.3): Type 1
// rules remove their text, Types 2/3 replace it, sub-rules of applied rules
// fire, and Type 2 applications yield cache hints for the X-Oak-Alternate
// header.
func (e *Engine) ModifyPage(userID, path, page string) (string, []rules.Applied) {
	rw := e.RewritePage(userID, path, page)
	return rw.HTML, rw.Applied
}

// RewritePage is ModifyPage with the full result: rewritten page, Applied
// records, precomputed header value, and cache provenance. The fast path —
// a user whose activations have not changed since the last request for this
// page — costs one content hash and one cache probe; a user with no
// in-scope activations costs neither and allocates nothing.
func (e *Engine) RewritePage(userID, path, page string) Rewrite {
	start := time.Now()
	sh := e.shardFor(userID)
	// Cold user: rlockResident brings the profile back before rewriting, so
	// a spilled user's activations survive eviction transparently.
	e.rlockResident(sh, userID)
	rw, _ := e.rewriteLocked(sh, userID, path, page, true)
	sh.mu.RUnlock()
	e.observeRewrite(userID, path, page, start, rw)
	return rw
}

// RewriteCached serves a page only if doing so is near-free: the user has
// no in-scope activations, or the rewrite cache already holds the exact
// (page, activation set) result. It never computes a rewrite and never
// blocks — if the user's shard lock is unavailable (ingest in progress) or
// the result would need computing, it returns ok=false and the caller
// should take the full RewritePage path. A hit is accounted exactly like a
// full rewrite (histogram, page counters, trace).
func (e *Engine) RewriteCached(userID, path, page string) (Rewrite, bool) {
	start := time.Now()
	sh := e.shardFor(userID)
	if !sh.mu.TryRLock() {
		return Rewrite{}, false
	}
	rw, ok := e.rewriteLocked(sh, userID, path, page, false)
	sh.mu.RUnlock()
	if !ok {
		return Rewrite{}, false
	}
	e.observeRewrite(userID, path, page, start, rw)
	return rw, true
}

// rewriteLocked is the serve path under sh.mu (read) with compute
// controlling the miss behavior: true computes and caches the rewrite,
// false reports ok=false so the caller can fall back to the full path.
func (e *Engine) rewriteLocked(sh *shard, userID, path, page string, compute bool) (Rewrite, bool) {
	prof, ok := sh.profiles[userID]
	if !ok {
		if !compute && e.spillPending(sh, userID) {
			// The user's state is on disk; only the full path (which
			// rehydrates first) may serve them.
			return Rewrite{}, false
		}
		return Rewrite{HTML: page}, true
	}
	ent := prof.cachedActivations(path, e.now(), e.rulesGen.Load())
	if ent.fp == 0 {
		return Rewrite{HTML: page}, true
	}
	var key rewriteKey
	if e.rewriteCache != nil {
		key = rewriteKey{page: e.rewriteCache.hash(page), fp: ent.fp}
		if en, ok := e.rewriteCache.get(key, page); ok {
			return Rewrite{HTML: en.html, Applied: en.applied, Hint: en.hint, CacheHit: true}, true
		}
	}
	if !compute {
		return Rewrite{}, false
	}
	out, applied, clean := e.applySafely(ent, path, page)
	rw := Rewrite{HTML: out, Applied: applied, Hint: rules.CacheHintValue(applied)}
	if clean && e.rewriteCache != nil {
		// Panic-path results are never cached: serving them is safe, but
		// memoizing them would mask the breakage and freeze the panic count
		// below the rule-quarantine threshold.
		e.rewriteCache.put(key, page, rw.HTML, rw.Applied, rw.Hint)
	}
	return rw, true
}

// observeRewrite does the per-rewrite accounting: latency histogram, page
// counters, and (only when tracing is on) the trace event.
func (e *Engine) observeRewrite(userID, path, page string, start time.Time, rw Rewrite) {
	e.rewriteHist.Observe(time.Since(start))
	// Applied is non-nil exactly when at least one rule replaced text; the
	// HTML comparison only breaks the tie for degenerate identity
	// replacements, and short-circuits away on the untouched path.
	if len(rw.Applied) > 0 && rw.HTML != page {
		e.metrics.pagesModified.Add(1)
		if e.tracing() {
			e.trace(obs.Event{
				Kind: obs.EventRewrite, User: userID,
				Detail: fmt.Sprintf("page %s: %d rules applied", path, len(rw.Applied)),
			})
		}
	} else {
		e.metrics.pagesUntouched.Add(1)
	}
}

// ProfileSnapshot is a read-only view of a user's profile state.
type ProfileSnapshot struct {
	UserID      string
	ActiveRules []string
	Violations  map[string]int
	LastReport  time.Time
}

// Snapshot returns the profile state for a user, or false if unknown.
func (e *Engine) Snapshot(userID string) (ProfileSnapshot, bool) {
	sh := e.shardFor(userID)
	e.rlockResident(sh, userID)
	defer sh.mu.RUnlock()
	prof, ok := sh.profiles[userID]
	if !ok {
		return ProfileSnapshot{}, false
	}
	snap := ProfileSnapshot{
		UserID:      userID,
		ActiveRules: prof.ActiveRuleIDs(e.now()),
		Violations:  make(map[string]int, len(prof.violations)),
		LastReport:  prof.lastReport,
	}
	for k, n := range prof.violations {
		snap.Violations[k] = n
	}
	return snap, ok
}

// Users returns the number of profiles the engine holds, summed shard by
// shard (weakly consistent under concurrent ingest).
func (e *Engine) Users() int {
	// Lock-free by design: healthz calls this, and a liveness probe must
	// answer even while a shard is wedged mid-ingest (stuck script fetch,
	// saturated pipeline). Each shard mirrors its profile count in a gauge.
	total := int64(0)
	for _, sh := range e.shards {
		total += sh.users.Value()
	}
	if e.spill != nil {
		// Spilled profiles are still the engine's users — they are served
		// and counted; only their bytes live on disk.
		total += e.spill.spilledUsers.Value()
	}
	return int(total)
}

// reportDetail renders the EventReport detail line. It fires once per
// ingested report, hot enough that fmt.Sprintf's reflection showed up in
// profiles; the output is byte-identical to the Sprintf it replaced, at one
// allocation (the builder's own buffer, handed off by String).
func reportDetail(page string, objects, servers, violators int) string {
	var tmp [20]byte
	var b strings.Builder
	b.Grow(len(page) + 48)
	b.WriteString("page ")
	b.WriteString(page)
	b.WriteString(": ")
	b.Write(strconv.AppendInt(tmp[:0], int64(objects), 10))
	b.WriteString(" objects, ")
	b.Write(strconv.AppendInt(tmp[:0], int64(servers), 10))
	b.WriteString(" servers, ")
	b.Write(strconv.AppendInt(tmp[:0], int64(violators), 10))
	b.WriteString(" violators")
	return b.String()
}

// violatorDetail renders the EventViolator detail line (one per violation,
// same byte-identical-to-Sprintf contract as reportDetail).
func violatorDetail(metric MetricKind, distance float64, count int) string {
	var tmp [32]byte
	var b strings.Builder
	b.Grow(64)
	b.WriteString(metric.String())
	b.WriteByte(' ')
	b.Write(strconv.AppendFloat(tmp[:0], distance, 'f', 1, 64))
	b.WriteString(" beyond median, violation #")
	b.Write(strconv.AppendInt(tmp[:0], int64(count), 10))
	return b.String()
}

// tracing reports whether any trace sink is attached. Hot paths gate event
// construction on it — building an obs.Event (and especially its Sprintf'd
// detail) allocates, and doing that per page served with no sink attached
// is pure waste.
func (e *Engine) tracing() bool {
	return e.traceBuf != nil || e.logf != nil
}

// trace records one decision event in the ring buffer, stamping it with the
// engine clock, and mirrors it to the logf sink when one is configured.
func (e *Engine) trace(ev obs.Event) {
	e.traceAt(e.now(), ev)
}

// traceAt is trace with the caller's already-read clock value: ingest emits
// several events per report, and re-reading the clock for each showed up in
// profiles.
func (e *Engine) traceAt(now time.Time, ev obs.Event) {
	ev.Time = now
	if e.traceBuf != nil {
		e.traceBuf.Record(ev)
	}
	if e.logf != nil {
		e.logf("%s", ev.String())
	}
}

// TraceRecent returns up to n most recent decision-trace events in
// chronological order. The trace is a bounded ring: older events are
// overwritten (gaps show as jumps in Event.Seq). It returns nil when
// tracing is disabled (WithTraceCapacity(0)).
func (e *Engine) TraceRecent(n int) []obs.Event {
	if e.traceBuf == nil {
		return nil
	}
	return e.traceBuf.Recent(n)
}

// LatencySnapshots are point-in-time copies of the engine's hot-path
// latency histograms.
type LatencySnapshots struct {
	// Ingest is per-report HandleReport latency (grouping through
	// decision-making), merged across all shards.
	Ingest obs.Snapshot
	// IngestShards holds each shard's ingest histogram, indexed by shard.
	// A shard whose latencies stand out from its peers indicates a hot
	// user population (hash skew or a few very busy users).
	IngestShards []obs.Snapshot
	// Rewrite is per-page ModifyPage latency.
	Rewrite obs.Snapshot
	// Rehydrate is per-profile spill-rehydration latency (engines with a
	// profile residency cap; empty otherwise).
	Rehydrate obs.Snapshot
}

// Latencies snapshots the ingest (overall and per shard) and rewrite
// histograms.
func (e *Engine) Latencies() LatencySnapshots {
	ls := LatencySnapshots{
		IngestShards: make([]obs.Snapshot, len(e.shards)),
		Rewrite:      e.rewriteHist.Snapshot(),
		Rehydrate:    e.rehydrateHist.Snapshot(),
	}
	for i, sh := range e.shards {
		ls.IngestShards[i] = sh.ingest.Snapshot()
		ls.Ingest = ls.Ingest.Merge(ls.IngestShards[i])
	}
	return ls
}
