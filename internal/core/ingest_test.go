package core

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"oak/internal/report"
	"oak/internal/rules"
)

func pipelineEngine(t *testing.T, workers, queueLen int, opts ...Option) *Engine {
	t.Helper()
	opts = append(opts, WithIngestPipeline(IngestConfig{Workers: workers, QueueLen: queueLen}))
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

func TestPipelineProcessesReports(t *testing.T) {
	e := pipelineEngine(t, 2, 16)
	for i := 0; i < 20; i++ {
		res, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%d", i)))
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Changes) != 1 || res.Changes[0].Action != "activate" {
			t.Fatalf("changes = %+v, want one activation", res.Changes)
		}
	}
	if got := e.Users(); got != 20 {
		t.Errorf("Users() = %d, want 20", got)
	}
	if depth, capacity := e.IngestQueue(); depth != 0 || capacity == 0 {
		t.Errorf("queue depth=%d capacity=%d, want drained queue with capacity", depth, capacity)
	}
}

func TestPipelineRejectsInvalidReport(t *testing.T) {
	e := pipelineEngine(t, 1, 4)
	if _, err := e.HandleReport(&report.Report{UserID: "", Page: "/"}); !errors.Is(err, report.ErrNoUserID) {
		t.Errorf("err = %v, want ErrNoUserID", err)
	}
}

func TestPipelineClosedEngineRejects(t *testing.T) {
	e := pipelineEngine(t, 1, 4)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("late")); !errors.Is(err, ErrEngineClosed) {
		t.Errorf("err = %v, want ErrEngineClosed", err)
	}
}

// TestPipelineCancelWhileQueued wedges the single worker (via a blocking
// logf sink), fills the one-slot queue behind it, and checks that (a) a
// submission with no queue space honours ctx cancellation, and (b) a queued
// report whose ctx is cancelled is dropped un-processed.
func TestPipelineCancelWhileQueued(t *testing.T) {
	release := make(chan struct{})
	var once sync.Once
	blockingLogf := func(string, ...any) { <-release }
	unblock := func() { once.Do(func() { close(release) }) }
	defer unblock()

	e := pipelineEngine(t, 1, 1, WithLogf(blockingLogf))

	type outcome struct {
		res *AnalysisResult
		err error
	}
	submit := func(ctx context.Context, user string) chan outcome {
		ch := make(chan outcome, 1)
		go func() {
			res, err := e.HandleReportCtx(ctx, slowS1Report(user))
			ch <- outcome{res, err}
		}()
		return ch
	}

	// A occupies the worker (blocked in logf under the shard lock).
	aCh := submit(context.Background(), "a")
	waitForDepth := func(want int64) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for {
			if d, _ := e.IngestQueue(); d >= want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("queue depth never reached %d", want)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitForDepth(1)

	// B sits in the queue.
	bCtx, bCancel := context.WithCancel(context.Background())
	bCh := submit(bCtx, "b")
	waitForDepth(2)

	// C cannot even enqueue (queue full): cancelling its ctx must unblock
	// the submission.
	cCtx, cCancel := context.WithCancel(context.Background())
	cCh := submit(cCtx, "c")
	waitForDepth(3)
	cCancel()
	if out := <-cCh; !errors.Is(out.err, context.Canceled) {
		t.Errorf("c err = %v, want context.Canceled", out.err)
	}

	// Cancel B while it is queued, then release the worker: B must be
	// dropped without touching its profile.
	bCancel()
	unblock()
	if out := <-bCh; !errors.Is(out.err, context.Canceled) {
		t.Errorf("b err = %v, want context.Canceled", out.err)
	}
	if out := <-aCh; out.err != nil || len(out.res.Changes) != 1 {
		t.Errorf("a outcome = %+v, %v; want one activation", out.res, out.err)
	}

	e.Close() // drain before asserting state
	if _, ok := e.Snapshot("b"); ok {
		t.Error("cancelled-while-queued report mutated the profile")
	}
	if _, ok := e.Snapshot("a"); !ok {
		t.Error("processed report left no profile")
	}
}

func TestHandleBatchWithoutPipeline(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	var reports []*report.Report
	for i := 0; i < 30; i++ {
		reports = append(reports, slowS1Report(fmt.Sprintf("u%d", i)))
	}
	reports = append(reports, &report.Report{UserID: "", Page: "/"}) // invalid
	res := e.HandleBatch(context.Background(), reports)
	if res.Submitted != 31 || res.Processed != 30 || res.Failed != 1 {
		t.Fatalf("batch result = %+v", res)
	}
	if len(res.Errors) != 1 {
		t.Errorf("errors = %v, want the one validation message", res.Errors)
	}
	if got := e.Users(); got != 30 {
		t.Errorf("Users() = %d, want 30", got)
	}
}

func TestHandleBatchThroughPipeline(t *testing.T) {
	e := pipelineEngine(t, 4, 8)
	var reports []*report.Report
	for i := 0; i < 100; i++ {
		reports = append(reports, slowS1Report(fmt.Sprintf("u%d", i)))
	}
	res := e.HandleBatch(context.Background(), reports)
	if res.Processed != 100 || res.Failed != 0 {
		t.Fatalf("batch result = %+v", res)
	}
	if got := e.Users(); got != 100 {
		t.Errorf("Users() = %d, want 100", got)
	}
}

func TestHandleBatchEmpty(t *testing.T) {
	e, err := NewEngine(nil)
	if err != nil {
		t.Fatal(err)
	}
	res := e.HandleBatch(context.Background(), nil)
	if res.Submitted != 0 || res.Processed != 0 || res.Failed != 0 {
		t.Errorf("empty batch result = %+v", res)
	}
}

// TestBatchedIngestRace hammers the pipeline from many goroutines while
// ExportState, SetRules, Audit and Users run concurrently — the guard for
// the sharded engine's lock discipline under `go test -race`.
func TestBatchedIngestRace(t *testing.T) {
	e := pipelineEngine(t, 4, 32)

	const (
		writers          = 4
		reportsPerWriter = 50
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})

	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			var batch []*report.Report
			for i := 0; i < reportsPerWriter; i++ {
				batch = append(batch, slowS1Report(fmt.Sprintf("w%d-u%d", w, i)))
			}
			res := e.HandleBatch(context.Background(), batch)
			if res.Failed != 0 {
				t.Errorf("writer %d: %d failed: %v", w, res.Failed, res.Errors)
			}
		}(w)
	}

	// Readers and rule-churners run until the writers finish.
	churn := func(f func()) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					f()
				}
			}
		}()
	}
	churn(func() {
		if _, err := e.ExportState(); err != nil {
			t.Error(err)
		}
	})
	churn(func() {
		if err := e.SetRules([]*rules.Rule{jqRule(0)}); err != nil {
			t.Error(err)
		}
	})
	churn(func() {
		e.Audit()
		e.Users()
		e.Latencies()
		e.IngestQueue()
	})

	done := make(chan struct{})
	go func() {
		// Wait for the writers only, then stop the churners.
		defer close(done)
		for {
			if e.Metrics().ReportsHandled >= writers*reportsPerWriter {
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	<-done
	close(stop)
	wg.Wait()

	if got := e.Users(); got != writers*reportsPerWriter {
		t.Errorf("Users() = %d, want %d", got, writers*reportsPerWriter)
	}
}

// tier3Report builds a report whose violator (evil.example) can only be tied
// to loaderRule through the external-JavaScript tier — processing it makes
// the engine call the script fetcher, which tests use to block a pipeline
// worker deterministically.
func tier3Report(user string) *report.Report {
	return &report.Report{UserID: user, Page: "/index.html", Entries: []report.Entry{
		{URL: "http://lib.example/loader.js", ServerAddr: "ip-lib.example", SizeBytes: 1024, DurationMillis: 95, Kind: report.KindScript},
		{URL: "http://evil.example/pixel.png", ServerAddr: "ip-evil.example", SizeBytes: 1024, DurationMillis: 2000, Kind: report.KindImage},
		{URL: "http://a.example/a.png", ServerAddr: "ip-a.example", SizeBytes: 1024, DurationMillis: 100, Kind: report.KindImage},
		{URL: "http://b.example/b.png", ServerAddr: "ip-b.example", SizeBytes: 1024, DurationMillis: 110, Kind: report.KindImage},
	}}
}

// loaderRule references lib.example's loader script but not evil.example, so
// matching evil.example requires fetching the script body.
func loaderRule() *rules.Rule {
	return &rules.Rule{
		ID:      "loader",
		Type:    rules.TypeRemove,
		Default: `<script src="http://lib.example/loader.js"></script>`,
		Scope:   "*",
	}
}

func TestLoadSheddingShedsWhenSaturated(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	e, err := NewEngine([]*rules.Rule{loaderRule()},
		WithScriptFetcher(fetcher),
		WithIngestPipeline(IngestConfig{Workers: 1, QueueLen: 1}),
		WithLoadShedding(ShedPolicy{MaxWait: 5 * time.Millisecond, RetryAfter: 2 * time.Second}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	released := false
	defer func() {
		if !released {
			close(release)
		}
	}()

	done := make(chan error, 2)
	// Report 1: the worker picks it up and blocks inside the fetcher.
	go func() {
		_, err := e.HandleReport(tier3Report("u-block"))
		done <- err
	}()
	<-entered
	// Report 2: fills the queue (capacity 1) behind the stuck worker.
	go func() {
		_, err := e.HandleReport(slowS1Report("u-queued"))
		done <- err
	}()
	waitFor(t, func() bool { depth, _ := e.IngestQueue(); return depth == 2 })

	// Report 3: nowhere to go — must be shed, not block.
	_, err = e.HandleReport(slowS1Report("u-shed"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("saturated submit err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter != 2*time.Second {
		t.Errorf("overload error = %#v, want RetryAfter 2s", err)
	}
	if got := e.Metrics().ReportsShed; got != 1 {
		t.Errorf("ReportsShed = %d, want 1", got)
	}

	// Unblocking the worker drains the queue; nothing was lost or wedged.
	released = true
	close(release)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Errorf("queued report %d failed: %v", i, err)
		}
	}
	e.Close()
	if e.Users() != 2 {
		t.Errorf("Users = %d, want 2 (shed report not processed)", e.Users())
	}
}

func TestLoadSheddingZeroWaitShedsImmediately(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	e, err := NewEngine([]*rules.Rule{loaderRule()},
		WithScriptFetcher(fetcher),
		WithIngestPipeline(IngestConfig{Workers: 1, QueueLen: 1}),
		WithLoadShedding(ShedPolicy{}), // MaxWait 0: no grace at all
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	defer close(release)

	done := make(chan error, 2)
	go func() {
		_, err := e.HandleReport(tier3Report("u-block"))
		done <- err
	}()
	<-entered
	go func() {
		_, err := e.HandleReport(slowS1Report("u-queued"))
		done <- err
	}()
	waitFor(t, func() bool { depth, _ := e.IngestQueue(); return depth == 2 })

	start := time.Now()
	_, err = e.HandleReport(slowS1Report("u-shed"))
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("err = %v, want ErrOverloaded", err)
	}
	var oe *OverloadError
	if !errors.As(err, &oe) || oe.RetryAfter != DefaultRetryAfter {
		t.Errorf("RetryAfter = %#v, want default %v", err, DefaultRetryAfter)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Errorf("immediate shed took %v", elapsed)
	}
}

func TestNoSheddingBlocksInsteadOfRefusing(t *testing.T) {
	// Without WithLoadShedding a saturated queue applies backpressure: the
	// submission waits and eventually succeeds once the worker frees up.
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	e, err := NewEngine([]*rules.Rule{loaderRule()},
		WithScriptFetcher(fetcher),
		WithIngestPipeline(IngestConfig{Workers: 1, QueueLen: 1}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()

	done := make(chan error, 3)
	go func() {
		_, err := e.HandleReport(tier3Report("u-block"))
		done <- err
	}()
	<-entered
	for _, u := range []string{"u2", "u3"} {
		u := u
		go func() {
			_, err := e.HandleReport(slowS1Report(u))
			done <- err
		}()
	}
	waitFor(t, func() bool { depth, _ := e.IngestQueue(); return depth >= 2 })
	close(release)
	for i := 0; i < 3; i++ {
		if err := <-done; err != nil {
			t.Errorf("backpressured report %d failed: %v", i, err)
		}
	}
	if e.Metrics().ReportsShed != 0 {
		t.Errorf("ReportsShed = %d without a shed policy", e.Metrics().ReportsShed)
	}
}

// waitFor polls cond until it holds or the test times out.
func waitFor(t *testing.T, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not reached within 5s")
		}
		time.Sleep(time.Millisecond)
	}
}
