package core

import (
	"container/list"
	"hash/maphash"
	"sync"

	"oak/internal/obs"
	"oak/internal/rules"
)

// The rewrite cache memoizes whole page rewrites keyed by (page content
// hash, activation fingerprint). Because the fingerprint covers the
// rule-set generation, the page path, and every (rule ID, alternative)
// pair, two requests hit the same entry exactly when the rewrite would be
// byte-identical — so a hit can serve the stored page, Applied records, and
// precomputed X-Oak-Alternate header without touching the rules at all.
// Invalidation is implicit: an activation change produces a new
// fingerprint, a page change a new content hash; stale entries age out of
// the LRU. FlushRewriteCache drops everything eagerly on page-registry
// changes.

// rewriteCacheShards stripes the LRU so concurrent serves for different
// pages rarely contend on one mutex.
const rewriteCacheShards = 16

// RewriteCacheStats is a point-in-time view of the rewrite cache's
// counters (all zero when the cache is disabled).
type RewriteCacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	// Bytes approximates resident cache memory: per entry the source page,
	// the rewritten page, and the header value.
	Bytes   int64 `json:"bytes"`
	Entries int   `json:"entries"`
	// Enabled reports whether a cache is configured at all.
	Enabled bool `json:"enabled"`
}

type rewriteKey struct {
	page uint64 // maphash of the page content
	fp   uint64 // activation fingerprint
}

type rewriteEntry struct {
	key rewriteKey
	// src is the exact source page the entry was computed from; lookups
	// verify src against the requested page so a hash collision can never
	// serve the wrong rewrite. Registry pages are interned strings, so the
	// comparison is a pointer check in the steady state.
	src     string
	html    string
	applied []rules.Applied
	hint    string
}

func (en *rewriteEntry) bytes() int64 {
	return int64(len(en.src) + len(en.html) + len(en.hint))
}

type rcShard struct {
	mu      sync.Mutex
	entries map[rewriteKey]*list.Element
	order   *list.List // front = most recently used
	cap     int
}

type rewriteCache struct {
	seed   maphash.Seed
	shards [rewriteCacheShards]rcShard

	hits      obs.Counter
	misses    obs.Counter
	evictions obs.Counter
	bytes     obs.Gauge
	entries   obs.Gauge
}

// newRewriteCache builds a cache bounded to totalEntries across its shards.
func newRewriteCache(totalEntries int) *rewriteCache {
	c := &rewriteCache{seed: maphash.MakeSeed()}
	per := (totalEntries + rewriteCacheShards - 1) / rewriteCacheShards
	if per < 1 {
		per = 1
	}
	for i := range c.shards {
		c.shards[i] = rcShard{
			entries: make(map[rewriteKey]*list.Element),
			order:   list.New(),
			cap:     per,
		}
	}
	return c
}

// hash fingerprints page content. maphash reads the string directly —
// no []byte conversion, no allocation.
func (c *rewriteCache) hash(page string) uint64 {
	return maphash.String(c.seed, page)
}

func (c *rewriteCache) shardFor(key rewriteKey) *rcShard {
	return &c.shards[key.page%rewriteCacheShards]
}

// get returns the cached rewrite for key if present and computed from
// exactly this page.
func (c *rewriteCache) get(key rewriteKey, page string) (*rewriteEntry, bool) {
	s := c.shardFor(key)
	s.mu.Lock()
	el, ok := s.entries[key]
	if ok {
		en := el.Value.(*rewriteEntry)
		if en.src == page {
			s.order.MoveToFront(el)
			s.mu.Unlock()
			c.hits.Inc()
			return en, true
		}
	}
	s.mu.Unlock()
	c.misses.Inc()
	return nil, false
}

// put stores a computed rewrite, evicting least-recently-used entries past
// the shard's capacity.
func (c *rewriteCache) put(key rewriteKey, src string, html string, applied []rules.Applied, hint string) {
	en := &rewriteEntry{key: key, src: src, html: html, applied: applied, hint: hint}
	s := c.shardFor(key)
	s.mu.Lock()
	if el, ok := s.entries[key]; ok {
		old := el.Value.(*rewriteEntry)
		c.bytes.Add(en.bytes() - old.bytes())
		el.Value = en
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return
	}
	s.entries[key] = s.order.PushFront(en)
	c.bytes.Add(en.bytes())
	c.entries.Add(1)
	evicted := 0
	for s.order.Len() > s.cap {
		back := s.order.Back()
		old := back.Value.(*rewriteEntry)
		s.order.Remove(back)
		delete(s.entries, old.key)
		c.bytes.Add(-old.bytes())
		c.entries.Add(-1)
		evicted++
	}
	s.mu.Unlock()
	if evicted > 0 {
		c.evictions.Add(uint64(evicted))
	}
}

// flush drops every entry (page registry changed).
func (c *rewriteCache) flush() {
	for i := range c.shards {
		s := &c.shards[i]
		s.mu.Lock()
		n := int64(len(s.entries))
		var freed int64
		for _, el := range s.entries {
			freed += el.Value.(*rewriteEntry).bytes()
		}
		s.entries = make(map[rewriteKey]*list.Element)
		s.order.Init()
		s.mu.Unlock()
		c.bytes.Add(-freed)
		c.entries.Add(-n)
	}
}

func (c *rewriteCache) stats() RewriteCacheStats {
	return RewriteCacheStats{
		Hits:      c.hits.Value(),
		Misses:    c.misses.Value(),
		Evictions: c.evictions.Value(),
		Bytes:     c.bytes.Value(),
		Entries:   int(c.entries.Value()),
		Enabled:   true,
	}
}

// WithRewriteCache bounds the engine's rewrite cache to entries cached
// rewrites (whole rewritten pages keyed by page content + activation
// fingerprint). entries <= 0 disables the cache entirely; serving behavior
// is then identical, every page just recomputes its rewrite.
func WithRewriteCache(entries int) Option {
	return func(e *Engine) {
		if entries <= 0 {
			e.rewriteCache = nil
			return
		}
		e.rewriteCache = newRewriteCache(entries)
	}
}

// RewriteCacheStats snapshots the rewrite cache counters (zero-valued,
// Enabled=false, when no cache is configured).
func (e *Engine) RewriteCacheStats() RewriteCacheStats {
	if e.rewriteCache == nil {
		return RewriteCacheStats{}
	}
	return e.rewriteCache.stats()
}

// FlushRewriteCache drops every cached rewrite. The origin server calls it
// when the page registry changes (SetPage/RemovePage/LoadPages); content
// hashes make stale entries unreachable anyway, so this is about releasing
// their memory promptly, not correctness.
func (e *Engine) FlushRewriteCache() {
	if e.rewriteCache != nil {
		e.rewriteCache.flush()
	}
}
