package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/obs"
	"oak/internal/report"
	"oak/internal/rules"
	"oak/internal/stats"
)

// Population wiring: cross-user detection and automatic rule synthesis.
//
// The paper's MAD detector is strictly per-user — a user must personally
// accumulate MinViolations bad reports before a rule activates for them. A
// provider that is slow for *everyone* therefore gets rediscovered once per
// user, and users who report rarely may never accumulate enough evidence at
// all. The population layer closes that gap:
//
//   - every ingested report feeds per-provider-hostname download-time
//     sketches (internal/stats.QuantileSketch) held per shard, under the
//     shard lock the ingest path already holds — no new locks on the hot
//     path;
//   - once per window the engine merges the shard sketches (the sketches are
//     exactly mergeable) and compares each provider's window quantile
//     against its own exponentially-decayed trailing baseline; a provider
//     whose quantile degrades by DegradeFactor is flagged;
//   - while a provider is flagged, the synthesizer turns the rule catalog's
//     alternatives into candidate activations for affected users on their
//     next report — bypassing the per-user MinViolations gate — so users who
//     haven't individually tripped yet are mitigated too. Every synthesized
//     activation is admitted through the same guard breaker machinery as an
//     organic one (and carries Synthesized provenance), so a bad synthetic
//     rule self-rolls-back via the population-outcome breaker trip without
//     operator action.
//
// Lock discipline: popState.mu is a leaf lock taken only inside the window
// tick and the status/manual verbs, never under a shard lock. The hot path
// touches only the owning shard's sketches (under the already-held sh.mu)
// and one atomic load of the degraded-provider set — nil whenever no
// provider is flagged, so a healthy population costs the ingest path a
// single pointer load.

// Defaults for SynthesisConfig's zero fields.
const (
	defaultPopWindow        = 2 * time.Minute
	defaultPopDegradeFactor = 1.5
	defaultPopQuantile      = 0.75
	defaultPopMinSamples    = 20
	defaultPopMaxProviders  = 64
	popRecoverFactor        = 1.1
)

// SynthesisConfig enables and tunes population-level detection and rule
// synthesis (WithSynthesis). Zero fields take defaults.
type SynthesisConfig struct {
	// Window is the aggregation window: sketches accumulate for one window,
	// then are compared against the trailing baseline and folded into it.
	// Default 2m.
	Window time.Duration
	// DegradeFactor flags a provider when its window quantile exceeds
	// DegradeFactor × its baseline quantile. Default 1.5.
	DegradeFactor float64
	// Quantile is the compared quantile, in (0,1). Default 0.75.
	Quantile float64
	// MinSamples is the minimum window sample count before a provider is
	// judged. Default 20.
	MinSamples int
	// MinBaselineSamples is the minimum baseline weight before a provider
	// is judged (default: MinSamples). A provider with no history is never
	// flagged — the first windows only warm the baseline.
	MinBaselineSamples int
	// MaxProviders bounds how many provider sketches each shard window (and
	// the baseline set) tracks; excess providers' samples are dropped and
	// counted (PopulationSamplesDropped). With the fixed-size sketches this
	// makes population memory a hard ceiling: see PopulationStatus.
	// SketchMemoryBytes. Default 64.
	MaxProviders int
}

// normalized fills zero fields with defaults.
func (c SynthesisConfig) normalized() SynthesisConfig {
	if c.Window <= 0 {
		c.Window = defaultPopWindow
	}
	if c.DegradeFactor <= 1 {
		c.DegradeFactor = defaultPopDegradeFactor
	}
	if c.Quantile <= 0 || c.Quantile >= 1 {
		c.Quantile = defaultPopQuantile
	}
	if c.MinSamples <= 0 {
		c.MinSamples = defaultPopMinSamples
	}
	if c.MinBaselineSamples <= 0 {
		c.MinBaselineSamples = c.MinSamples
	}
	if c.MaxProviders <= 0 {
		c.MaxProviders = defaultPopMaxProviders
	}
	return c
}

// WithSynthesis enables population-level detection and automatic rule
// synthesis. Without it the engine behaves exactly as before: no sketches
// are fed and the ingest path pays one nil check.
func WithSynthesis(cfg SynthesisConfig) Option {
	return func(e *Engine) { e.synthConfig = &cfg }
}

// popEpisode is one provider's ongoing degradation: when it was flagged and
// the quantile evidence at flag (updated each tick while it persists).
type popEpisode struct {
	Since      time.Time
	Ratio      float64
	BaselineMs float64
	WindowMs   float64
	Manual     bool
}

// popState is the engine-global population state. baseline and degraded are
// guarded by mu (a leaf lock, never taken under a shard lock); degradedSet
// is the lock-free hot-path view, nil whenever nothing is degraded.
type popState struct {
	cfg SynthesisConfig

	mu       sync.Mutex
	baseline map[string]*stats.QuantileSketch
	hh       *stats.HeavyHitters
	degraded map[string]*popEpisode

	degradedSet atomic.Pointer[map[string]*popEpisode]
	nextTick    atomic.Int64
}

// initPop builds the population state from the stored config. Called by
// NewEngine after options run (so WithClock is respected).
func (e *Engine) initPop() {
	if e.synthConfig == nil {
		return
	}
	cfg := e.synthConfig.normalized()
	e.pop = &popState{
		cfg:      cfg,
		baseline: make(map[string]*stats.QuantileSketch),
		hh:       stats.NewHeavyHitters(cfg.MaxProviders),
		degraded: make(map[string]*popEpisode),
	}
}

// SynthesisEnabled reports whether the engine was built with WithSynthesis.
func (e *Engine) SynthesisEnabled() bool { return e.pop != nil }

// feedPopLocked feeds one report's per-server download times into the
// owning shard's provider sketches. One sample per (report, provider
// hostname): the server's small-object mean time, the same signal the MAD
// detector judges. Caller holds sh.mu for writing; no-op without synthesis.
func (e *Engine) feedPopLocked(sh *shard, servers []*report.ServerPerf) {
	if e.pop == nil {
		return
	}
	sp := sh.pop
	if sp == nil {
		sp = &shardPop{
			provs: make(map[string]*stats.QuantileSketch),
			hh:    stats.NewHeavyHitters(e.pop.cfg.MaxProviders),
		}
		sh.pop = sp
	}
	for _, s := range servers {
		if s.SmallCount == 0 {
			continue
		}
		for _, h := range s.Hosts {
			sp.hh.Add(h, 1)
			sk := sp.provs[h]
			if sk == nil {
				if len(sp.provs) >= e.pop.cfg.MaxProviders {
					e.metrics.popSamplesDropped.Inc()
					continue
				}
				sk = &stats.QuantileSketch{}
				sp.provs[h] = sk
			}
			sk.Add(s.SmallMeanTimeMs)
		}
	}
}

// popTickIfDue rolls the aggregation window when it has elapsed. Driven by
// ingest (no background goroutine, so it works under a virtual clock); the
// CAS elects exactly one caller to run the tick. Callers must not hold any
// shard lock — the tick locks shards one at a time.
func (e *Engine) popTickIfDue(now time.Time) {
	if e.pop == nil {
		return
	}
	n := now.UnixNano()
	nt := e.pop.nextTick.Load()
	if nt == 0 {
		// First report arms the window; nothing to judge yet.
		e.pop.nextTick.CompareAndSwap(0, n+int64(e.pop.cfg.Window))
		return
	}
	if n < nt {
		return
	}
	if !e.pop.nextTick.CompareAndSwap(nt, n+int64(e.pop.cfg.Window)) {
		return // another caller won the tick
	}
	e.runPopTick(now)
}

// runPopTick closes the current window: it swaps every shard's sketches out
// (under that shard's lock, one at a time), merges them, judges each
// provider's window quantile against its trailing baseline, flags and
// recovers degraded providers, folds healthy windows into the baseline, and
// publishes the new degraded-provider set for the hot path.
func (e *Engine) runPopTick(now time.Time) {
	p := e.pop
	window := make(map[string]*stats.QuantileSketch)
	tickHH := stats.NewHeavyHitters(p.cfg.MaxProviders)
	for _, sh := range e.shards {
		sh.mu.Lock()
		sp := sh.pop
		if sp == nil || (len(sp.provs) == 0 && sp.hh.Len() == 0) {
			sh.mu.Unlock()
			continue
		}
		provs, hh := sp.provs, sp.hh
		sp.provs = make(map[string]*stats.QuantileSketch)
		sp.hh = stats.NewHeavyHitters(p.cfg.MaxProviders)
		sh.mu.Unlock()

		for h, sk := range provs {
			if agg := window[h]; agg != nil {
				agg.Merge(sk)
			} else {
				window[h] = sk
			}
		}
		tickHH.Merge(hh)
	}

	p.mu.Lock()
	p.hh.Merge(tickHH)

	// Judge deterministically (sorted) so trace order is stable.
	provs := make([]string, 0, len(window))
	for h := range window {
		provs = append(provs, h)
	}
	sort.Strings(provs)
	for _, h := range provs {
		ws := window[h]
		base := p.baseline[h]
		ep := p.degraded[h]
		if ws.Count() >= uint64(p.cfg.MinSamples) &&
			base != nil && base.Count() >= uint64(p.cfg.MinBaselineSamples) {
			wq := ws.Quantile(p.cfg.Quantile)
			bq := base.Quantile(p.cfg.Quantile)
			switch {
			case ep == nil && bq > 0 && wq >= p.cfg.DegradeFactor*bq:
				ep = &popEpisode{Since: now, Ratio: wq / bq, BaselineMs: bq, WindowMs: wq}
				p.degraded[h] = ep
				e.metrics.popTrips.Inc()
				if e.tracing() {
					e.trace(obs.Event{Kind: obs.EventPopDegrade, Provider: h,
						Detail: fmt.Sprintf("p%.0f %.1fms vs baseline %.1fms (%.2fx)",
							p.cfg.Quantile*100, wq, bq, wq/bq)})
				}
			case ep != nil && !ep.Manual && bq > 0 && wq <= popRecoverFactor*bq:
				delete(p.degraded, h)
				ep = nil
				e.metrics.popRecoveries.Inc()
				if e.tracing() {
					e.trace(obs.Event{Kind: obs.EventPopRecover, Provider: h,
						Detail: fmt.Sprintf("p%.0f %.1fms back to baseline %.1fms",
							p.cfg.Quantile*100, wq, bq)})
				}
			case ep != nil && !ep.Manual:
				// Still degraded: refresh the evidence, keep Since.
				ep.Ratio = wq / bq
				ep.BaselineMs = bq
				ep.WindowMs = wq
			}
		}
		if ep == nil {
			// Healthy providers fold their window into the baseline; a
			// degraded provider's window is discarded so the baseline never
			// chases the fault (and its baseline is frozen below).
			if base == nil {
				if len(p.baseline) >= p.cfg.MaxProviders {
					e.evictColdBaselineLocked()
				}
				if len(p.baseline) < p.cfg.MaxProviders {
					base = &stats.QuantileSketch{}
					p.baseline[h] = base
				}
			}
			if base != nil {
				base.Merge(ws)
			}
		}
	}

	// Exponential forgetting: halve every healthy baseline each window, so
	// the baseline tracks roughly the last few windows. Degraded providers'
	// baselines are frozen — they are the recovery reference. Drained
	// baselines are dropped.
	for h, base := range p.baseline {
		if _, deg := p.degraded[h]; deg {
			continue
		}
		base.Decay()
		if base.Count() == 0 {
			delete(p.baseline, h)
		}
	}

	e.publishDegradedLocked()
	p.mu.Unlock()
}

// evictColdBaselineLocked drops the lowest-weight non-degraded baseline to
// make room under MaxProviders. Caller holds p.mu.
func (e *Engine) evictColdBaselineLocked() {
	p := e.pop
	var coldest string
	var coldestCount uint64
	for h, b := range p.baseline {
		if _, deg := p.degraded[h]; deg {
			continue
		}
		if coldest == "" || b.Count() < coldestCount ||
			(b.Count() == coldestCount && h < coldest) {
			coldest, coldestCount = h, b.Count()
		}
	}
	if coldest != "" {
		delete(p.baseline, coldest)
	}
}

// publishDegradedLocked rebuilds the hot path's atomic degraded-provider
// view: nil when nothing is degraded (the common case — one pointer load
// and done), otherwise an immutable copy. Caller holds p.mu.
func (e *Engine) publishDegradedLocked() {
	p := e.pop
	if len(p.degraded) == 0 {
		p.degradedSet.Store(nil)
		return
	}
	m := make(map[string]*popEpisode, len(p.degraded))
	for h, ep := range p.degraded {
		cp := *ep
		m[h] = &cp
	}
	p.degradedSet.Store(&m)
}

// synthesizeLocked is the synthesis arm of analyzeLocked: when the report
// touched a population-degraded provider, activate the catalog's matching
// rules for this user now — bypassing the per-user MinViolations gate — so
// users who haven't individually tripped are mitigated on their next
// report. Everything else mirrors the organic activation path: scope check,
// evidence-tier matching, guard admission (with fallback to the next
// admitted alternative when the preferred one is quarantined), indexing,
// ledger, metrics, trace. Caller holds sh.mu for writing.
func (e *Engine) synthesizeLocked(sh *shard, prof *Profile, r *report.Report, now time.Time, servers []*report.ServerPerf, activeRules []*rules.Rule, res *AnalysisResult) {
	if e.pop == nil {
		return
	}
	degp := e.pop.degradedSet.Load()
	if degp == nil {
		return
	}
	deg := *degp
	for _, s := range servers {
		var ep *popEpisode
		for _, h := range s.Hosts {
			if got, ok := deg[h]; ok {
				ep = got
				break
			}
		}
		if ep == nil {
			continue
		}
		for _, rule := range activeRules {
			if !rule.InScope(r.Page) {
				continue
			}
			if existing := prof.activeRule(rule.ID); existing != nil && !existing.Expired(now) {
				continue // already active (organically or synthesized)
			}
			// The same evidence tiers as the organic path tie the rule to
			// the degraded server, but restricted to the rule's own
			// dependency surface: the organic path's report-wide script
			// expansion is corroborated by per-user violations, which a
			// synthesized activation deliberately skips.
			level := e.matcher.MatchOwnSurface(rule, s)
			if level == MatchNone {
				continue
			}
			altIdx := 0
			if rule.Type != rules.TypeRemove {
				altIdx = e.policy.SelectAlternative(rule, -1, r.UserID)
			}
			admit, canary, blockedBy := e.guardAdmit(rule.ID, altIdx)
			if !admit && rule.Type != rules.TypeRemove && !e.guard.RuleQuarantined(rule.ID) {
				// The preferred alternative's provider is quarantined; a
				// synthesized activation has no per-user history to respect,
				// so try the remaining alternatives before giving up.
				for next := 0; next < len(rule.Alternatives); next++ {
					if next == altIdx {
						continue
					}
					if a2, c2, _ := e.guardAdmit(rule.ID, next); a2 {
						admit, canary, blockedBy = true, c2, ""
						altIdx = next
						break
					}
				}
			}
			if !admit {
				e.metrics.synthesisBlocked.Inc()
				if e.tracing() {
					e.trace(obs.Event{
						Kind: obs.EventQuarantine, User: r.UserID, RuleID: rule.ID,
						Provider: blockedBy,
						Detail:   "synthesized activation blocked; no admitted alternative",
					})
				}
				continue
			}
			// The population delta stands in for the per-user violation
			// distance: reconciliation later compares the alternate's own
			// violations against how bad the default was population-wide.
			dist := ep.WindowMs - ep.BaselineMs
			if dist < 0 {
				dist = 0
			}
			a := prof.activate(rule, altIdx, now, s.Addr, dist)
			a.Synthesized = true
			e.indexActivation(sh, r.UserID, rule.ID, altIdx)
			e.metrics.ruleActivations.Add(1)
			e.metrics.synthesizedActivations.Inc()
			e.ledger.RecordActivation(rule.ID, r.UserID)
			res.Changes = append(res.Changes, RuleChange{
				RuleID: rule.ID, Action: "activate", Server: s.Addr,
				AltIndex: altIdx, Level: level, Synthesized: true,
			})
			if canary {
				e.metrics.canaryActivations.Inc()
				if e.tracing() {
					e.trace(obs.Event{
						Kind: obs.EventCanary, User: r.UserID, RuleID: rule.ID,
						Detail: fmt.Sprintf("canary synthesis through half-open breaker, alt %d", altIdx),
					})
				}
			}
			if e.tracing() {
				e.trace(obs.Event{
					Kind: obs.EventSynthesize, User: r.UserID, RuleID: rule.ID,
					Provider: s.Addr,
					Detail: fmt.Sprintf("%s match, alt %d, population %.2fx baseline",
						level, altIdx, ep.Ratio),
				})
			}
		}
	}
}

// MarkDegraded manually flags a provider as population-degraded: synthesis
// treats it exactly like an automatically flagged one, but it never
// auto-recovers — only ClearDegraded lifts it. No-op without synthesis.
func (e *Engine) MarkDegraded(provider string) {
	if e.pop == nil || provider == "" {
		return
	}
	p := e.pop
	p.mu.Lock()
	if _, ok := p.degraded[provider]; !ok {
		p.degraded[provider] = &popEpisode{Since: e.now(), Manual: true}
		e.metrics.popTrips.Inc()
		if e.tracing() {
			e.trace(obs.Event{Kind: obs.EventPopDegrade, Provider: provider,
				Detail: "manually marked degraded"})
		}
	}
	e.publishDegradedLocked()
	p.mu.Unlock()
}

// ClearDegraded lifts a provider's degraded flag, manual or automatic.
// No-op without synthesis.
func (e *Engine) ClearDegraded(provider string) {
	if e.pop == nil || provider == "" {
		return
	}
	p := e.pop
	p.mu.Lock()
	if _, ok := p.degraded[provider]; ok {
		delete(p.degraded, provider)
		e.metrics.popRecoveries.Inc()
		if e.tracing() {
			e.trace(obs.Event{Kind: obs.EventPopRecover, Provider: provider,
				Detail: "manually cleared"})
		}
	}
	e.publishDegradedLocked()
	p.mu.Unlock()
}

// DegradedProvider is one population-degraded provider in PopulationStatus.
type DegradedProvider struct {
	Provider string    `json:"provider"`
	Since    time.Time `json:"since"`
	// Ratio is window quantile / baseline quantile at the last tick (0 for
	// manual flags).
	Ratio      float64 `json:"ratio,omitempty"`
	BaselineMs float64 `json:"baselineMs,omitempty"`
	WindowMs   float64 `json:"windowMs,omitempty"`
	// Manual marks an operator MarkDegraded flag (never auto-recovers).
	Manual bool `json:"manual,omitempty"`
}

// ProviderPopulation is one provider's trailing-baseline distribution in
// PopulationStatus.
type ProviderPopulation struct {
	Provider string  `json:"provider"`
	Samples  uint64  `json:"samples"`
	P50Ms    float64 `json:"p50Ms"`
	P75Ms    float64 `json:"p75Ms"`
	P99Ms    float64 `json:"p99Ms"`
	Degraded bool    `json:"degraded,omitempty"`
}

// PopulationStatus is the population layer's externally visible state,
// served under "population" in /oak/metrics and at /oak/v1/population.
type PopulationStatus struct {
	// Degraded lists currently flagged providers, sorted by provider.
	Degraded []DegradedProvider `json:"degraded,omitempty"`
	// Providers is each tracked provider's trailing-baseline distribution,
	// sorted by provider.
	Providers []ProviderPopulation `json:"providers,omitempty"`
	// TopProviders ranks providers by report appearances (space-saving
	// estimates; Error bounds the overcount).
	TopProviders []stats.HeavyHitter `json:"topProviders,omitempty"`
	// TrackedProviders is how many providers currently hold a baseline.
	TrackedProviders int `json:"trackedProviders"`
	// SketchMemoryBytes is the current population-sketch footprint: the
	// per-provider ceiling is MemoryBytes per sketch × MaxProviders ×
	// (shards + 1 baseline), all fixed-size.
	SketchMemoryBytes int `json:"sketchMemoryBytes"`
	// PopulationTrips / PopulationRecoveries count providers flagged and
	// recovered (including manual verbs).
	PopulationTrips      uint64 `json:"populationTrips"`
	PopulationRecoveries uint64 `json:"populationRecoveries"`
	// SynthesizedActivations counts rule activations created by synthesis;
	// SynthesisBlocked counts synthesis attempts the guard refused outright.
	SynthesizedActivations uint64 `json:"synthesizedActivations"`
	SynthesisBlocked       uint64 `json:"synthesisBlocked"`
	// SamplesDropped counts samples discarded by the MaxProviders cap.
	SamplesDropped uint64 `json:"samplesDropped"`
}

// PopulationStatus snapshots the population layer; ok is false on engines
// built without WithSynthesis.
func (e *Engine) PopulationStatus() (PopulationStatus, bool) {
	if e.pop == nil {
		return PopulationStatus{}, false
	}
	p := e.pop
	p.mu.Lock()
	defer p.mu.Unlock()

	st := PopulationStatus{
		TrackedProviders:       len(p.baseline),
		PopulationTrips:        e.metrics.popTrips.Value(),
		PopulationRecoveries:   e.metrics.popRecoveries.Value(),
		SynthesizedActivations: e.metrics.synthesizedActivations.Value(),
		SynthesisBlocked:       e.metrics.synthesisBlocked.Value(),
		SamplesDropped:         e.metrics.popSamplesDropped.Value(),
	}

	degProvs := make([]string, 0, len(p.degraded))
	for h := range p.degraded {
		degProvs = append(degProvs, h)
	}
	sort.Strings(degProvs)
	for _, h := range degProvs {
		ep := p.degraded[h]
		st.Degraded = append(st.Degraded, DegradedProvider{
			Provider: h, Since: ep.Since, Ratio: ep.Ratio,
			BaselineMs: ep.BaselineMs, WindowMs: ep.WindowMs, Manual: ep.Manual,
		})
	}

	baseProvs := make([]string, 0, len(p.baseline))
	for h := range p.baseline {
		baseProvs = append(baseProvs, h)
	}
	sort.Strings(baseProvs)
	var memory int
	for _, h := range baseProvs {
		b := p.baseline[h]
		_, deg := p.degraded[h]
		st.Providers = append(st.Providers, ProviderPopulation{
			Provider: h, Samples: b.Count(),
			P50Ms: b.Quantile(0.5), P75Ms: b.Quantile(0.75), P99Ms: b.Quantile(0.99),
			Degraded: deg,
		})
		memory += b.MemoryBytes()
	}
	st.SketchMemoryBytes = memory
	st.TopProviders = p.hh.Top(10)
	return st, true
}

// DegradedProviders lists currently flagged providers (nil on engines
// without synthesis). Healthz surfaces this next to open breakers.
func (e *Engine) DegradedProviders() []string {
	if e.pop == nil {
		return nil
	}
	degp := e.pop.degradedSet.Load()
	if degp == nil {
		return nil
	}
	out := make([]string, 0, len(*degp))
	for h := range *degp {
		out = append(out, h)
	}
	sort.Strings(out)
	return out
}

// popPersisted is the population section of the state snapshot. Only the
// degraded-provider episodes persist: baselines are cheap to re-warm (a few
// windows of traffic) and deliberately restart fresh, but an ongoing
// degradation must survive a restart or the synthesized mitigation would
// lapse exactly when the engine is most fragile.
type popPersisted struct {
	Degraded []popPersistedEpisode `json:"degraded"`
}

type popPersistedEpisode struct {
	Provider   string    `json:"provider"`
	Since      time.Time `json:"since"`
	Ratio      float64   `json:"ratio,omitempty"`
	BaselineMs float64   `json:"baselineMs,omitempty"`
	WindowMs   float64   `json:"windowMs,omitempty"`
	Manual     bool      `json:"manual,omitempty"`
}

// exportPop returns the population section, nil when there is nothing to
// persist (no synthesis, or no ongoing episodes) so pre-synthesis snapshots
// stay byte-identical.
func (e *Engine) exportPop() *popPersisted {
	if e.pop == nil {
		return nil
	}
	p := e.pop
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.degraded) == 0 {
		return nil
	}
	provs := make([]string, 0, len(p.degraded))
	for h := range p.degraded {
		provs = append(provs, h)
	}
	sort.Strings(provs)
	out := &popPersisted{}
	for _, h := range provs {
		ep := p.degraded[h]
		out.Degraded = append(out.Degraded, popPersistedEpisode{
			Provider: h, Since: ep.Since, Ratio: ep.Ratio,
			BaselineMs: ep.BaselineMs, WindowMs: ep.WindowMs, Manual: ep.Manual,
		})
	}
	return out
}

// importPop restores the population section. A nil section (pre-synthesis
// or legacy snapshot) imports as empty population state. No-op on engines
// without synthesis. Called from ImportState inside the all-shard-locks
// window; popState.mu is a leaf so taking it here is safe.
func (e *Engine) importPop(pp *popPersisted) {
	if e.pop == nil {
		return
	}
	p := e.pop
	p.mu.Lock()
	p.degraded = make(map[string]*popEpisode)
	if pp != nil {
		for _, ep := range pp.Degraded {
			if ep.Provider == "" {
				continue
			}
			p.degraded[ep.Provider] = &popEpisode{
				Since: ep.Since, Ratio: ep.Ratio,
				BaselineMs: ep.BaselineMs, WindowMs: ep.WindowMs, Manual: ep.Manual,
			}
		}
	}
	e.publishDegradedLocked()
	p.mu.Unlock()
}
