package core

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"oak/internal/report"
	"oak/internal/rules"
)

// syncEngine is a pipeline-less engine for the synchronous-path tests.
func syncEngine(t *testing.T) *Engine {
	t.Helper()
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { e.Close() })
	return e
}

// Pooled-report lifecycle tests. A report from report.DecodePooled is owned
// by the engine from the submit call on, and must be released exactly once
// on every path out of ingest: processed, validation-failed, cancelled while
// queued, shed, engine closed. A double release puts the same *Report into
// the pool twice, so two concurrent decoders end up writing the same struct
// — which is exactly the kind of corruption the race detector flags. The
// hammer below mixes all the exit paths under -race to pin that discipline.

// hammerPayloads pre-marshals JSON reports for a small user population so
// the hammer spends its time in decode+submit, not fmt.
func hammerPayloads(t testing.TB, users int) [][]byte {
	t.Helper()
	payloads := make([][]byte, users)
	for i := range payloads {
		data, err := slowS1Report(fmt.Sprintf("hammer-%d", i)).Marshal()
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = data
	}
	return payloads
}

// TestPooledReleaseHammer drives pooled reports through a small, easily
// saturated pipeline from many goroutines while randomly cancelling
// submissions and finally closing the engine mid-flight, so the processed,
// shed, cancelled-while-queued and closed exit paths all fire concurrently
// with pool reuse. Run under -race this catches a report released twice
// (two decoders sharing one struct) or not at all being resurrected dirty.
func TestPooledReleaseHammer(t *testing.T) {
	e := pipelineEngine(t, 2, 2, WithLoadShedding(ShedPolicy{MaxWait: 50 * time.Microsecond}))
	payloads := hammerPayloads(t, 8)

	const goroutines = 8
	const perGoroutine = 400
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < perGoroutine; i++ {
				rep, err := report.DecodePooled(payloads[rng.Intn(len(payloads))])
				if err != nil {
					errCh <- err
					return
				}
				ctx := context.Background()
				var cancel context.CancelFunc
				if rng.Intn(3) == 0 {
					// A third of the submissions race a cancellation, so some
					// reports are abandoned while queued and some submissions
					// give up waiting for queue space.
					ctx, cancel = context.WithCancel(ctx)
					go cancel()
				}
				_, err = e.HandleReportCtx(ctx, rep)
				if cancel != nil {
					cancel()
				}
				switch {
				case err == nil:
				case errors.Is(err, ErrOverloaded):
				case errors.Is(err, context.Canceled):
				case errors.Is(err, ErrShuttingDown):
				default:
					errCh <- fmt.Errorf("unexpected submit error: %w", err)
					return
				}
			}
		}(g)
	}

	// Close the engine while submissions are still in flight: reports queued
	// at that moment drain through the workers, late submissions take the
	// closed path — both must still release.
	time.Sleep(5 * time.Millisecond)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The closed path releases too: a post-close submission must hand its
	// report back to the pool, not leak it.
	rep, err := report.DecodePooled(payloads[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReportCtx(context.Background(), rep); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-close submit err = %v, want ErrShuttingDown", err)
	}
	if rep.Pooled() {
		t.Error("post-close submission did not release the pooled report")
	}
}

// TestPooledReleaseOnValidationFailure pins the synchronous failure exit: a
// pooled report the engine rejects before touching any shard is still
// released by the engine, per the ownership contract.
func TestPooledReleaseOnValidationFailure(t *testing.T) {
	e := syncEngine(t)
	rep, err := report.DecodePooled([]byte(`{"userId":"","page":"/x","entries":[]}`))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(rep); !errors.Is(err, report.ErrNoUserID) {
		t.Fatalf("err = %v, want ErrNoUserID", err)
	}
	if rep.Pooled() {
		t.Error("validation-failed submission did not release the pooled report")
	}
}

// TestHandleReportSteadyStateAllocs gates the steady-state allocation budget
// of the synchronous JSON ingest path (the BenchmarkHandleReportSerial
// shape): grouping slabs, the violations slice, the analysis result and its
// two detail strings. The ISSUE-9 budget is ≤ 8 allocs/op; a regression here
// means a scratch buffer or pool stopped being reused.
func TestHandleReportSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts differ under the race detector")
	}
	e := syncEngine(t)
	reports := make([]*report.Report, 8)
	for i := range reports {
		reports[i] = slowS1Report(fmt.Sprintf("alloc-%d", i))
	}
	// Warm up: create the profiles, size the scratch pools and maps.
	for range 4 {
		for _, r := range reports {
			if _, err := e.HandleReport(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	i := 0
	avg := testing.AllocsPerRun(200, func() {
		if _, err := e.HandleReport(reports[i%len(reports)]); err != nil {
			t.Fatal(err)
		}
		i++
	})
	if avg > 8 {
		t.Errorf("steady-state HandleReport allocs/op = %.1f, want <= 8", avg)
	}
}
