package core

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// Auditing: the paper's discussion observes that "examining which rules are
// being activated by clients enables site operators to determine which
// components of their sites are performing poorly, effectively using the
// performance reports of Oak as an offline auditing tool". Audit assembles
// that view: per-rule activation footprints, the worst-offending servers,
// and the engine's aggregate counters.

// AuditEntry is one rule's activation footprint.
type AuditEntry struct {
	RuleID string
	// Users / UserFraction / Activations come from the ledger.
	Users        int
	UserFraction float64
	Activations  int
	// Classification is "common" (>18 % of users, a provider-side problem)
	// or "individual" (client-specific conditions), the paper's Table 3
	// split.
	Classification string
}

// AuditServerEntry is one server's violation footprint across users.
type AuditServerEntry struct {
	ServerAddr string
	// Users counts distinct users for whom the server violated.
	Users int
	// Violations is the total violation count across reports.
	Violations int
}

// Audit is an operator-facing summary of everything Oak has learned.
type Audit struct {
	GeneratedAt time.Time
	Users       int
	Metrics     Metrics
	Rules       []AuditEntry
	// WorstServers lists servers by violation footprint, descending.
	WorstServers []AuditServerEntry
}

// commonThreshold is the paper's individual/common cut (18 % of users).
const commonThreshold = 0.18

// Audit builds the operator summary.
func (e *Engine) Audit() *Audit {
	a := &Audit{
		GeneratedAt: e.now(),
		Users:       e.Users(),
		Metrics:     e.Metrics(),
	}
	for _, st := range e.ledger.Stats() {
		cls := "individual"
		if st.UserFraction > commonThreshold {
			cls = "common"
		}
		a.Rules = append(a.Rules, AuditEntry{
			RuleID:         st.RuleID,
			Users:          st.Users,
			UserFraction:   st.UserFraction,
			Activations:    st.Activations,
			Classification: cls,
		})
	}

	type sv struct {
		users, violations int
	}
	// Violation footprints are collected shard by shard (weakly consistent
	// under concurrent ingest; each user lives in exactly one shard, so
	// per-server user counts stay exact).
	servers := make(map[string]*sv)
	for _, sh := range e.shards {
		sh.mu.RLock()
		for _, prof := range sh.profiles {
			for addr, n := range prof.violations {
				entry, ok := servers[addr]
				if !ok {
					entry = &sv{}
					servers[addr] = entry
				}
				entry.users++
				entry.violations += n
			}
		}
		sh.mu.RUnlock()
	}
	for addr, entry := range servers {
		a.WorstServers = append(a.WorstServers, AuditServerEntry{
			ServerAddr: addr, Users: entry.users, Violations: entry.violations,
		})
	}
	sort.Slice(a.WorstServers, func(i, j int) bool {
		if a.WorstServers[i].Violations != a.WorstServers[j].Violations {
			return a.WorstServers[i].Violations > a.WorstServers[j].Violations
		}
		return a.WorstServers[i].ServerAddr < a.WorstServers[j].ServerAddr
	})
	return a
}

// Render formats the audit as a text report.
func (a *Audit) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Oak audit — generated %s\n", a.GeneratedAt.Format(time.RFC3339))
	fmt.Fprintf(&b, "users: %d   reports: %d   objects: %d   violations: %d\n",
		a.Users, a.Metrics.ReportsHandled, a.Metrics.EntriesProcessed, a.Metrics.ViolationsDetected)
	fmt.Fprintf(&b, "rule activations: %d   reverts: %d   expiries: %d   pages rewritten: %d\n",
		a.Metrics.RuleActivations, a.Metrics.RuleDeactivations, a.Metrics.RuleExpirations,
		a.Metrics.PagesModified)

	if len(a.WorstServers) > 0 {
		b.WriteString("\nworst servers (by violation count):\n")
		top := a.WorstServers
		if len(top) > 10 {
			top = top[:10]
		}
		for _, s := range top {
			fmt.Fprintf(&b, "  %-40s violations=%-5d users=%d\n", s.ServerAddr, s.Violations, s.Users)
		}
	}
	if len(a.Rules) > 0 {
		b.WriteString("\nrule activation footprint:\n")
		for _, r := range a.Rules {
			fmt.Fprintf(&b, "  %-40s %-10s users=%-4d (%.0f%%) activations=%d\n",
				r.RuleID, r.Classification, r.Users, 100*r.UserFraction, r.Activations)
		}
	}
	return b.String()
}
