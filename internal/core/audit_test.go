package core

import (
	"strings"
	"testing"

	"oak/internal/rules"
)

func TestAuditSummarises(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range []string{"u1", "u2", "u3"} {
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
	}
	a := e.Audit()
	if a.Users != 3 {
		t.Errorf("Users = %d, want 3", a.Users)
	}
	if a.Metrics.ReportsHandled != 3 || a.Metrics.RuleActivations != 3 {
		t.Errorf("metrics = %+v", a.Metrics)
	}
	if len(a.Rules) != 1 || a.Rules[0].RuleID != "jquery" {
		t.Fatalf("rules = %+v", a.Rules)
	}
	if a.Rules[0].Classification != "common" {
		t.Errorf("jquery classification = %q, want common (all users activated)", a.Rules[0].Classification)
	}
	if len(a.WorstServers) == 0 || a.WorstServers[0].ServerAddr != "ip-s1.com" {
		t.Errorf("worst servers = %+v", a.WorstServers)
	}
	if a.WorstServers[0].Users != 3 || a.WorstServers[0].Violations != 3 {
		t.Errorf("s1 footprint = %+v", a.WorstServers[0])
	}
}

func TestAuditClassifiesIndividual(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	// Nine healthy users, one with the problem: 10% < 18% -> individual.
	if _, err := e.HandleReport(slowS1Report("unlucky")); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 9; i++ {
		rep := loadReport("fine-"+string(rune('a'+i)), map[string]float64{
			"a.example": 100, "b.example": 105, "c.example": 95,
		})
		if _, err := e.HandleReport(rep); err != nil {
			t.Fatal(err)
		}
	}
	a := e.Audit()
	if len(a.Rules) != 1 || a.Rules[0].Classification != "individual" {
		t.Errorf("rules = %+v, want individual jquery", a.Rules)
	}
}

func TestAuditRender(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	out := e.Audit().Render()
	for _, want := range []string{"Oak audit", "users: 1", "worst servers", "ip-s1.com", "jquery"} {
		if !strings.Contains(out, want) {
			t.Errorf("Render missing %q:\n%s", want, out)
		}
	}
}

func TestAuditEmptyEngine(t *testing.T) {
	e, _ := NewEngine(nil)
	a := e.Audit()
	if a.Users != 0 || len(a.Rules) != 0 || len(a.WorstServers) != 0 {
		t.Errorf("empty audit = %+v", a)
	}
	if out := a.Render(); !strings.Contains(out, "users: 0") {
		t.Errorf("empty Render = %q", out)
	}
}
