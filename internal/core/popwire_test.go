package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"oak/internal/obs"
	"oak/internal/rules"
)

// Population-detection and synthesis behaviour: flagging against the
// trailing baseline, recovery, synthesis for users who never tripped the
// per-user detector, guard admission of synthesized activations, and the
// manual operator verbs.

// popEngine builds a synthesis-enabled engine on a test clock with a small
// window and sample floors sized for hand-fed traffic.
func popEngine(t *testing.T, extra ...Option) (*Engine, *testClock) {
	t.Helper()
	clock := newTestClock()
	opts := append([]Option{
		WithClock(clock.Now),
		WithSynthesis(SynthesisConfig{
			Window:             time.Minute,
			DegradeFactor:      1.5,
			Quantile:           0.75,
			MinSamples:         3,
			MinBaselineSamples: 3,
			MaxProviders:       8,
		}),
	}, extra...)
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e, clock
}

// feedWindow handles n single-server reports for s1.com at the given mean
// time, one per distinct user, then rolls the window by advancing past it
// and ingesting one neutral report (the tick is ingest-driven).
func feedWindow(t *testing.T, e *Engine, clock *testClock, tag string, n int, ms float64) {
	t.Helper()
	for i := 0; i < n; i++ {
		u := fmt.Sprintf("%s-%d", tag, i)
		if _, err := e.HandleReport(loadReport(u, map[string]float64{"s1.com": ms})); err != nil {
			t.Fatal(err)
		}
	}
	clock.Advance(61 * time.Second)
	if _, err := e.HandleReport(loadReport(tag+"-tick", map[string]float64{"neutral.example": 50})); err != nil {
		t.Fatal(err)
	}
}

func TestPopulationFlagsAndRecoversDegradedProvider(t *testing.T) {
	e, clock := popEngine(t, WithTraceCapacity(64))

	// Window 1 warms the baseline (~100ms); nothing can be flagged yet.
	feedWindow(t, e, clock, "warm", 8, 100)
	if got := e.DegradedProviders(); len(got) != 0 {
		t.Fatalf("DegradedProviders after warm-up = %v, want none", got)
	}

	// Window 2 degrades 10x; the tick flags s1.com against its baseline.
	feedWindow(t, e, clock, "bad", 4, 1000)
	if got := e.DegradedProviders(); len(got) != 1 || got[0] != "s1.com" {
		t.Fatalf("DegradedProviders = %v, want [s1.com]", got)
	}
	ps, ok := e.PopulationStatus()
	if !ok {
		t.Fatal("PopulationStatus not ok on synthesis-enabled engine")
	}
	if len(ps.Degraded) != 1 || ps.Degraded[0].Provider != "s1.com" {
		t.Fatalf("status degraded = %+v, want s1.com", ps.Degraded)
	}
	if ps.Degraded[0].Ratio < 1.5 {
		t.Errorf("degraded ratio = %.2f, want >= degrade factor 1.5", ps.Degraded[0].Ratio)
	}
	if ps.PopulationTrips != 1 {
		t.Errorf("PopulationTrips = %d, want 1", ps.PopulationTrips)
	}
	var sawTrace bool
	for _, ev := range e.TraceRecent(64) {
		if ev.Kind == obs.EventPopDegrade && ev.Provider == "s1.com" {
			sawTrace = true
		}
	}
	if !sawTrace {
		t.Error("no population-degrade trace event")
	}

	// Windows of healthy traffic recover the provider: the baseline was
	// frozen while degraded, so the healthy quantile falls back under it.
	feedWindow(t, e, clock, "heal", 4, 100)
	if got := e.DegradedProviders(); len(got) != 0 {
		t.Fatalf("DegradedProviders after recovery = %v, want none", got)
	}
	ps, _ = e.PopulationStatus()
	if ps.PopulationRecoveries != 1 {
		t.Errorf("PopulationRecoveries = %d, want 1", ps.PopulationRecoveries)
	}
}

func TestSynthesisActivatesUserBelowPerUserGate(t *testing.T) {
	e, clock := popEngine(t)
	feedWindow(t, e, clock, "warm", 8, 100)
	feedWindow(t, e, clock, "bad", 4, 1000)

	// A fresh user's report touches only the degraded provider: one server,
	// so the per-user MAD detector has no peers and never fires — only the
	// population layer can mitigate this user.
	res, err := e.HandleReport(loadReport("fresh", map[string]float64{"s1.com": 900}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("single-server report produced per-user violations: %+v", res.Violations)
	}
	if len(res.Changes) != 1 || res.Changes[0].Action != "activate" || !res.Changes[0].Synthesized {
		t.Fatalf("changes = %+v, want one synthesized activate", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("fresh", "/index.html", page); !strings.Contains(out, "s2.net") {
		t.Errorf("synthesized activation did not rewrite the page: %q", out)
	}
	m := e.Metrics()
	if m.SynthesizedActivations != 1 {
		t.Errorf("SynthesizedActivations = %d, want 1", m.SynthesizedActivations)
	}

	// A second report while the activation is live must not re-activate.
	res, err = e.HandleReport(loadReport("fresh", map[string]float64{"s1.com": 900}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Errorf("repeat report changes = %+v, want none (already active)", res.Changes)
	}

	// A user whose report never touches the degraded provider is left alone.
	res, err = e.HandleReport(loadReport("bystander", map[string]float64{"other.example": 900}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Errorf("bystander changes = %+v, want none", res.Changes)
	}
}

func TestSynthesizedActivationsRollBackViaGuard(t *testing.T) {
	e, clock := popEngine(t, WithGuard(GuardConfig{TripThreshold: 3, OpenFor: time.Minute}))
	feedWindow(t, e, clock, "warm", 8, 100)
	feedWindow(t, e, clock, "bad", 4, 1000)

	// Synthesize activations for several users onto the s2.net alternate.
	const users = 4
	page := `<script src="http://s1.com/jquery.js">`
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("synth-%d", i)
		if _, err := e.HandleReport(loadReport(u, map[string]float64{"s1.com": 900})); err != nil {
			t.Fatal(err)
		}
		if out, _ := e.ModifyPage(u, "/index.html", page); !strings.Contains(out, "s2.net") {
			t.Fatalf("user %s not synthesized onto s2.net", u)
		}
	}

	// The alternate goes bad: population-level outcomes trip its breaker,
	// and the bulk rollback takes the synthesized activations with it — no
	// operator action.
	for i := 0; i < 3; i++ {
		e.ObserveProviderOutcome("s2.net", false, 500)
	}
	m := e.Metrics()
	if m.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1", m.BreakerTrips)
	}
	if m.BulkDeactivations != users {
		t.Errorf("BulkDeactivations = %d, want %d", m.BulkDeactivations, users)
	}
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("synth-%d", i)
		if out, _ := e.ModifyPage(u, "/index.html", page); out != page {
			t.Errorf("user %s still rewritten after rollback: %q", u, out)
		}
	}

	// While the breaker is open and the rule has no other alternative, new
	// synthesis attempts are refused and counted.
	res, err := e.HandleReport(loadReport("late", map[string]float64{"s1.com": 900}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Errorf("late changes = %+v, want none while breaker open", res.Changes)
	}
	if m := e.Metrics(); m.SynthesisBlocked == 0 {
		t.Error("SynthesisBlocked = 0, want > 0")
	}
}

func TestSynthesisFallsBackToAdmittedAlternative(t *testing.T) {
	// Two alternatives; the preferred one's provider is quarantined, so the
	// synthesized activation advances to the admitted one instead of giving
	// up (it has no per-user history to respect).
	rule := jqRule(0,
		`<script src="http://s2.net/jquery.js">`,
		`<script src="http://s3.net/jquery.js">`)
	clock := newTestClock()
	e, err := NewEngine([]*rules.Rule{rule},
		WithClock(clock.Now),
		WithGuard(GuardConfig{TripThreshold: 3, OpenFor: time.Minute}),
		WithSynthesis(SynthesisConfig{
			Window: time.Minute, MinSamples: 3, MinBaselineSamples: 3, MaxProviders: 8,
		}))
	if err != nil {
		t.Fatal(err)
	}
	e.QuarantineProvider("s2.net")
	e.MarkDegraded("s1.com")

	res, err := e.HandleReport(loadReport("u1", map[string]float64{"s1.com": 900}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 1 || !res.Changes[0].Synthesized || res.Changes[0].AltIndex != 1 {
		t.Fatalf("changes = %+v, want synthesized activate on alt 1", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/index.html", page); !strings.Contains(out, "s3.net") {
		t.Errorf("page = %q, want rewrite onto admitted s3.net", out)
	}
}

func TestMarkAndClearDegraded(t *testing.T) {
	e, _ := popEngine(t)

	// Manual flag: no traffic needed, synthesis starts immediately.
	e.MarkDegraded("s1.com")
	if got := e.DegradedProviders(); len(got) != 1 || got[0] != "s1.com" {
		t.Fatalf("DegradedProviders = %v, want [s1.com]", got)
	}
	ps, _ := e.PopulationStatus()
	if len(ps.Degraded) != 1 || !ps.Degraded[0].Manual {
		t.Fatalf("status degraded = %+v, want one manual episode", ps.Degraded)
	}
	res, err := e.HandleReport(loadReport("u1", map[string]float64{"s1.com": 60}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 1 || !res.Changes[0].Synthesized {
		t.Fatalf("changes = %+v, want synthesized activate under manual flag", res.Changes)
	}

	// Duplicate marks don't double-count.
	e.MarkDegraded("s1.com")
	if ps, _ := e.PopulationStatus(); ps.PopulationTrips != 1 {
		t.Errorf("PopulationTrips after duplicate mark = %d, want 1", ps.PopulationTrips)
	}

	e.ClearDegraded("s1.com")
	if got := e.DegradedProviders(); len(got) != 0 {
		t.Fatalf("DegradedProviders after clear = %v, want none", got)
	}
	if ps, _ := e.PopulationStatus(); ps.PopulationRecoveries != 1 {
		t.Errorf("PopulationRecoveries = %d, want 1", ps.PopulationRecoveries)
	}
}

func TestPopulationDisabledWithoutSynthesis(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	if e.SynthesisEnabled() {
		t.Error("SynthesisEnabled = true on plain engine")
	}
	if _, ok := e.PopulationStatus(); ok {
		t.Error("PopulationStatus ok on plain engine")
	}
	if got := e.DegradedProviders(); got != nil {
		t.Errorf("DegradedProviders = %v, want nil", got)
	}
	// Manual verbs are no-ops, not panics.
	e.MarkDegraded("s1.com")
	e.ClearDegraded("s1.com")
}

func TestPopulationStatusReportsDistributions(t *testing.T) {
	e, clock := popEngine(t)
	feedWindow(t, e, clock, "warm", 6, 100)

	ps, _ := e.PopulationStatus()
	if ps.TrackedProviders == 0 {
		t.Fatal("TrackedProviders = 0 after a folded window")
	}
	if ps.SketchMemoryBytes <= 0 {
		t.Error("SketchMemoryBytes not reported")
	}
	var s1 *ProviderPopulation
	for i := range ps.Providers {
		if ps.Providers[i].Provider == "s1.com" {
			s1 = &ps.Providers[i]
		}
	}
	if s1 == nil {
		t.Fatalf("providers = %+v, want s1.com baseline", ps.Providers)
	}
	if s1.Samples == 0 || s1.P75Ms <= 0 {
		t.Errorf("s1.com baseline = %+v, want samples and quantiles", *s1)
	}
	if len(ps.TopProviders) == 0 {
		t.Error("TopProviders empty after traffic")
	}
}
