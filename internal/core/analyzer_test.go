package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"oak/internal/report"
)

// mkServers builds per-server summaries with the given mean small times.
func mkServersSmall(times ...float64) []*report.ServerPerf {
	out := make([]*report.ServerPerf, len(times))
	for i, tm := range times {
		out[i] = &report.ServerPerf{
			Addr:            fmt.Sprintf("10.0.0.%d", i+1),
			Hosts:           []string{fmt.Sprintf("h%d.example", i+1)},
			SmallCount:      1,
			SmallMeanTimeMs: tm,
		}
	}
	return out
}

func mkServersLarge(tputs ...float64) []*report.ServerPerf {
	out := make([]*report.ServerPerf, len(tputs))
	for i, tp := range tputs {
		out[i] = &report.ServerPerf{
			Addr:             fmt.Sprintf("10.0.1.%d", i+1),
			Hosts:            []string{fmt.Sprintf("l%d.example", i+1)},
			LargeCount:       1,
			LargeMeanTputBps: tp,
		}
	}
	return out
}

func TestDetectViolatorsSmallTime(t *testing.T) {
	// Times 100,105,110,115,500: median 110, MAD 5, cutoff 120 -> only 500.
	servers := mkServersSmall(100, 105, 110, 115, 500)
	vs := DetectViolators(servers, 2)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	v := vs[0]
	if v.Server.Addr != "10.0.0.5" || v.Metric != MetricSmallTime {
		t.Errorf("violation = %s/%v, want 10.0.0.5/small-time", v.Server.Addr, v.Metric)
	}
	if v.Median != 110 || v.MAD != 5 {
		t.Errorf("median/MAD = %v/%v, want 110/5", v.Median, v.MAD)
	}
	if v.Distance != 390 {
		t.Errorf("Distance = %v, want 390", v.Distance)
	}
}

func TestDetectViolatorsLargeTput(t *testing.T) {
	// Throughputs 1000,1050,1100,1150,100: median 1050, MAD 50, cutoff 950.
	servers := mkServersLarge(1000, 1050, 1100, 1150, 100)
	vs := DetectViolators(servers, 2)
	if len(vs) != 1 {
		t.Fatalf("got %d violations, want 1: %+v", len(vs), vs)
	}
	if vs[0].Server.Addr != "10.0.1.5" || vs[0].Metric != MetricLargeTput {
		t.Errorf("violation = %s/%v, want 10.0.1.5/large-throughput", vs[0].Server.Addr, vs[0].Metric)
	}
	if vs[0].Distance != 950 {
		t.Errorf("Distance = %v, want 950", vs[0].Distance)
	}
}

func TestDetectViolatorsNoFalsePositiveOnUniformSlow(t *testing.T) {
	// The paper's motivating property: a uniformly slow client (e.g. on a
	// narrow long-haul link) must not flag anyone.
	servers := mkServersSmall(2000, 2100, 2050, 2080, 1990)
	if vs := DetectViolators(servers, 2); len(vs) != 0 {
		t.Errorf("uniformly slow client produced violations: %+v", vs)
	}
}

func TestDetectViolatorsEitherMetricSuffices(t *testing.T) {
	// One server has fine small-object times but terrible throughput.
	servers := mkServersSmall(100, 100, 100, 100)
	mixed := &report.ServerPerf{
		Addr: "10.0.0.99", Hosts: []string{"mixed.example"},
		SmallCount: 1, SmallMeanTimeMs: 100,
		LargeCount: 1, LargeMeanTputBps: 10,
	}
	others := mkServersLarge(5000, 5100, 4900, 5050)
	all := append(append(servers, mixed), others...)
	vs := DetectViolators(all, 2)
	if len(vs) != 1 || vs[0].Server.Addr != "10.0.0.99" || vs[0].Metric != MetricLargeTput {
		t.Errorf("violations = %+v, want mixed server via throughput", vs)
	}
}

func TestDetectViolatorsDedupesAcrossMetrics(t *testing.T) {
	// Server bad on both metrics appears once (small-time wins, reported
	// first per the implementation's dedupe order).
	bad := &report.ServerPerf{
		Addr: "10.0.0.9", Hosts: []string{"bad.example"},
		SmallCount: 1, SmallMeanTimeMs: 9999,
		LargeCount: 1, LargeMeanTputBps: 1,
	}
	all := append(mkServersSmall(100, 110, 105, 95), bad)
	all = append(all, mkServersLarge(5000, 5100, 4900, 5050)...)
	vs := DetectViolators(all, 2)
	var hits int
	for _, v := range vs {
		if v.Server.Addr == "10.0.0.9" {
			hits++
			if v.Metric != MetricSmallTime {
				t.Errorf("dedupe kept %v, want small-time first", v.Metric)
			}
		}
	}
	if hits != 1 {
		t.Errorf("bad server flagged %d times, want exactly 1", hits)
	}
}

func TestDetectViolatorsEmpty(t *testing.T) {
	if vs := DetectViolators(nil, 2); vs != nil {
		t.Errorf("DetectViolators(nil) = %v, want nil", vs)
	}
}

func TestDetectViolatorsKSensitivity(t *testing.T) {
	// 130 is beyond k=2 (cutoff 110+2*5=120) but within k=5 (cutoff 135).
	servers := mkServersSmall(100, 105, 110, 115, 130)
	if vs := DetectViolators(servers, 2); len(vs) != 1 {
		t.Errorf("k=2: got %d violations, want 1", len(vs))
	}
	if vs := DetectViolators(servers, 5); len(vs) != 0 {
		t.Errorf("k=5: got %d violations, want 0", len(vs))
	}
}

func TestDetectViolatorsAbsolute(t *testing.T) {
	servers := append(mkServersSmall(100, 2000), mkServersLarge(500, 9000)...)
	th := AbsoluteThresholds{MaxSmallTimeMs: 1000, MinLargeTputBps: 1000}
	vs := DetectViolatorsAbsolute(servers, th)
	if len(vs) != 2 {
		t.Fatalf("got %d violations, want 2: %+v", len(vs), vs)
	}
	addrs := []string{vs[0].Server.Addr, vs[1].Server.Addr}
	want := []string{"10.0.0.2", "10.0.1.1"}
	if !reflect.DeepEqual(addrs, want) {
		t.Errorf("violators = %v, want %v", addrs, want)
	}
}

func TestDetectViolatorsAbsoluteDisabled(t *testing.T) {
	servers := mkServersSmall(99999)
	if vs := DetectViolatorsAbsolute(servers, AbsoluteThresholds{}); len(vs) != 0 {
		t.Errorf("disabled thresholds flagged: %+v", vs)
	}
}

func TestMetricKindString(t *testing.T) {
	if MetricSmallTime.String() != "small-time" || MetricLargeTput.String() != "large-throughput" {
		t.Error("MetricKind names wrong")
	}
	if MetricKind(9).String() != "metric-9" {
		t.Error("unknown MetricKind name wrong")
	}
}

// Property: the detector never flags more than half the servers (the MAD
// criterion judges against the median, so a majority can't all be outliers
// on the same side).
func TestQuickDetectorFlagsMinority(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := 3 + int(nRaw%20)
		rng := rand.New(rand.NewSource(seed))
		times := make([]float64, n)
		for i := range times {
			times[i] = 50 + rng.Float64()*1000
		}
		vs := DetectViolators(mkServersSmall(times...), 2)
		return len(vs) <= n/2
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: every reported violation really crosses the stated cutoff, and
// Distance is positive.
func TestQuickViolationsConsistent(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(15)
		times := make([]float64, n)
		for i := range times {
			times[i] = 50 + rng.Float64()*500
		}
		if rng.Intn(2) == 0 {
			times[rng.Intn(n)] *= 20 // inject an outlier sometimes
		}
		for _, v := range DetectViolators(mkServersSmall(times...), 2) {
			if v.Value <= v.Median+2*v.MAD {
				return false
			}
			if v.Distance <= 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
