package core

import (
	"hash/fnv"

	"oak/internal/rules"
)

// AltSelector chooses which alternative of a rule to use for a given user at
// a given (re-)activation. prev is the previously used index, or -1 on first
// activation.
type AltSelector func(r *rules.Rule, prev int, userID string) int

// LinearSelector is the paper's default: "Oak progresses through the list
// linearly with each activation."
func LinearSelector(r *rules.Rule, prev int, _ string) int {
	next := prev + 1
	if next >= len(r.Alternatives) {
		next = len(r.Alternatives) - 1
	}
	if next < 0 {
		next = 0
	}
	return next
}

// HashSelector spreads users across alternatives by a stable hash of the
// user id — an example of the paper's note that selection "can further be
// configured via a selection policy ... for example by IP subnet, or other
// network level features".
func HashSelector(r *rules.Rule, _ int, userID string) int {
	if len(r.Alternatives) == 0 {
		return 0
	}
	h := fnv.New32a()
	_, _ = h.Write([]byte(userID))
	return int(h.Sum32() % uint32(len(r.Alternatives)))
}

// Policy is the operator-tunable behaviour of the engine (Section 4.2.4).
type Policy struct {
	// MADMultiplier is k in the violator criterion; the paper uses 2.
	MADMultiplier float64
	// MinViolations is how many violations a server must accumulate for a
	// user before rules matching it may activate. The paper's example:
	// an expensive CDN switch might require 3. Default 1 (act immediately).
	MinViolations int
	// SelectAlternative picks among a rule's alternatives. Defaults to
	// LinearSelector.
	SelectAlternative AltSelector
	// MatchLevel caps the evidence tier used to tie rules to violators.
	// Defaults to MatchExternalJS (the full pipeline).
	MatchLevel MatchLevel
	// MatchDepth is the number of external-script layers followed.
	// Defaults to 1, per the paper.
	MatchDepth int
}

// DefaultPolicy returns the paper's deployed configuration.
func DefaultPolicy() Policy {
	return Policy{
		MADMultiplier:     2,
		MinViolations:     1,
		SelectAlternative: LinearSelector,
		MatchLevel:        MatchExternalJS,
		MatchDepth:        1,
	}
}

// normalized fills zero-valued fields with defaults so a partially
// constructed Policy behaves sensibly.
func (p Policy) normalized() Policy {
	d := DefaultPolicy()
	if p.MADMultiplier <= 0 {
		p.MADMultiplier = d.MADMultiplier
	}
	if p.MinViolations <= 0 {
		p.MinViolations = d.MinViolations
	}
	if p.SelectAlternative == nil {
		p.SelectAlternative = d.SelectAlternative
	}
	if p.MatchLevel == MatchNone {
		p.MatchLevel = d.MatchLevel
	}
	if p.MatchDepth <= 0 {
		p.MatchDepth = d.MatchDepth
	}
	return p
}
