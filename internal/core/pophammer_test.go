package core

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"oak/internal/rules"
)

// TestPopulationConcurrentHammer races everything the population layer
// exposes — ingest (which feeds sketches and elects window ticks), status
// reads, snapshot export/import, and the manual mark/clear verbs — on a
// real clock with a tiny window so ticks genuinely interleave with
// traffic. The assertions are loose on purpose; the test exists for the
// race detector.
func TestPopulationConcurrentHammer(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)},
		WithSynthesis(SynthesisConfig{
			Window:             5 * time.Millisecond,
			MinSamples:         2,
			MinBaselineSamples: 2,
		}))
	if err != nil {
		t.Fatal(err)
	}

	const (
		workers = 8
		rounds  = 50
	)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				user := fmt.Sprintf("u%d-%d", w, i%5)
				ms := 100.0
				if w%2 == 0 {
					ms = 900 // half the fleet reports a slow provider
				}
				if _, err := e.HandleReport(loadReport(user, map[string]float64{
					"s1.com":                     ms,
					fmt.Sprintf("peer%d.com", w): 80,
				})); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	wg.Add(3)
	go func() { // status + export reader
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			if _, ok := e.PopulationStatus(); !ok {
				t.Error("PopulationStatus reported disabled on a synthesis engine")
				return
			}
			e.DegradedProviders()
			if _, err := e.ExportSnapshot(); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() { // manual mark/clear flapping
		defer wg.Done()
		for i := 0; i < rounds; i++ {
			e.MarkDegraded("manual.example")
			e.ClearDegraded("manual.example")
		}
	}()
	go func() { // import races against everything else
		defer wg.Done()
		snap, err := e.ExportSnapshot()
		if err != nil {
			t.Error(err)
			return
		}
		e2, err := NewEngine([]*rules.Rule{jqRule(0)},
			WithSynthesis(SynthesisConfig{Window: 5 * time.Millisecond}))
		if err != nil {
			t.Error(err)
			return
		}
		if err := e2.ImportState(snap); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	// Baselines (and so TrackedProviders) only fill when a tick closes a
	// window; on a fast machine the whole hammer can finish inside the
	// first 5ms window with zero ticks. Sleep past the window and send one
	// more report to force a fold before asserting.
	time.Sleep(10 * time.Millisecond)
	if _, err := e.HandleReport(loadReport("u-final", map[string]float64{"s1.com": 100})); err != nil {
		t.Fatal(err)
	}

	ps, ok := e.PopulationStatus()
	if !ok {
		t.Fatal("PopulationStatus disabled after hammer")
	}
	if ps.TrackedProviders == 0 {
		t.Error("no providers tracked after concurrent ingest")
	}
	var total uint64
	for _, p := range ps.Providers {
		total += p.Samples
	}
	if total == 0 && ps.SamplesDropped == 0 {
		t.Error("population sketches saw no samples")
	}
}
