package core

import (
	"fmt"
	"testing"

	"oak/internal/rules"
)

// Guard benchmarks: the numbers behind BENCH_guard.json (make bench-guard).
//
// Two questions matter for the guardrail design:
//
//  1. What does the breaker check cost on the activation path?
//     BenchmarkActivationGuardOff vs BenchmarkActivationGuardOn run the
//     identical activating-ingest load without and with WithGuard; the
//     reports/sec ratio is the per-activation toll of the breaker Allow
//     call plus provider-index maintenance (target: <= 5%).
//
//  2. What does a trip cost once it fires? BenchmarkGuardRollback{100,1000,
//     5000} measure one breaker trip bulk-deactivating that many users'
//     activations across all shards via the provider index — the latency
//     between "provider declared dead" and "no user is on it any more".

// benchGuardActivation ingests b.N activating reports, one fresh user each,
// so every iteration walks the full violation→activation path.
func benchGuardActivation(b *testing.B, opts ...Option) {
	b.Helper()
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, opts...)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("bench-user-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "reports/sec")
}

// BenchmarkActivationGuardOff is the baseline: activating ingest with no
// guard (no breaker checks, no index maintenance).
func BenchmarkActivationGuardOff(b *testing.B) {
	benchGuardActivation(b)
}

// BenchmarkActivationGuardOn is the same load with the guard enabled and
// every breaker closed — pure check overhead, nothing ever blocks.
func BenchmarkActivationGuardOn(b *testing.B) {
	benchGuardActivation(b, WithGuard(GuardConfig{}))
}

// benchGuardRollback measures one trip's bulk rollback of `users`
// activations. The populated state is imported fresh each iteration
// (off-timer); the timed region is the single bad outcome that trips the
// breaker and deactivates everyone.
func benchGuardRollback(b *testing.B, users int) {
	b.Helper()
	e, err := NewEngine([]*rules.Rule{jqRule(0)},
		WithShards(8),
		WithGuard(GuardConfig{TripThreshold: 1}),
	)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < users; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("bench-user-%d", i))); err != nil {
			b.Fatal(err)
		}
	}
	snap, err := e.ExportState()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		if err := e.ImportState(snap); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		e.ObserveProviderOutcome("s2.net", false, 500)
	}
	b.StopTimer()
	if got := e.Metrics().BulkDeactivations; got < uint64(users) {
		b.Fatalf("BulkDeactivations = %d, want >= %d — rollback did not cover the population", got, users)
	}
	b.ReportMetric(float64(users), "deactivations/op")
}

func BenchmarkGuardRollback100(b *testing.B)  { benchGuardRollback(b, 100) }
func BenchmarkGuardRollback1000(b *testing.B) { benchGuardRollback(b, 1000) }
func BenchmarkGuardRollback5000(b *testing.B) { benchGuardRollback(b, 5000) }
