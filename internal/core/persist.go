package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"oak/internal/rules"
)

// State persistence: an Oak deployment restarts without losing what it has
// learned about its users. ExportState captures every profile's violation
// counters and live activations; ImportState restores them against the
// current rule set (activations of rules that no longer exist are dropped,
// and expired activations are not resurrected).
//
// Both operations iterate the engine's shards deterministically: profiles
// are collected shard by shard (each shard read-locked while it is copied)
// and the output is globally sorted by user ID, so an export is stable
// regardless of shard count or hash layout, and a state file exported from
// an engine with one shard count imports cleanly into an engine with
// another. An export taken during concurrent ingest is weakly consistent
// across shards (each shard's slice is a true point-in-time copy).

// persistedState is the on-disk envelope.
type persistedState struct {
	Version  int                `json:"version"`
	SavedAt  time.Time          `json:"savedAt"`
	Profiles []persistedProfile `json:"profiles"`
}

type persistedProfile struct {
	UserID     string                `json:"userId"`
	Violations map[string]int        `json:"violations,omitempty"`
	Active     []persistedActivation `json:"active,omitempty"`
	LastReport time.Time             `json:"lastReport,omitempty"`
}

type persistedActivation struct {
	RuleID          string    `json:"ruleId"`
	AltIndex        int       `json:"altIndex"`
	ActivatedAt     time.Time `json:"activatedAt"`
	ExpiresAt       time.Time `json:"expiresAt,omitempty"`
	TriggerServer   string    `json:"triggerServer,omitempty"`
	TriggerDistance float64   `json:"triggerDistance,omitempty"`
	Activations     int       `json:"activations"`
}

// stateVersion is the current persistence format version.
const stateVersion = 1

// ExportState serialises all per-user state as JSON.
func (e *Engine) ExportState() ([]byte, error) {
	st := persistedState{Version: stateVersion, SavedAt: e.now()}

	for _, sh := range e.shards {
		sh.mu.RLock()
		for _, prof := range sh.profiles {
			st.Profiles = append(st.Profiles, snapshotProfile(prof))
		}
		sh.mu.RUnlock()
	}
	// Global ordering by user ID keeps the export deterministic and
	// independent of the shard layout.
	sort.Slice(st.Profiles, func(i, j int) bool {
		return st.Profiles[i].UserID < st.Profiles[j].UserID
	})
	return json.MarshalIndent(st, "", "  ")
}

// snapshotProfile deep-copies one profile into its persisted form. The
// caller must hold the profile's shard lock.
func snapshotProfile(prof *Profile) persistedProfile {
	pp := persistedProfile{
		UserID:     prof.UserID,
		Violations: make(map[string]int, len(prof.violations)),
		LastReport: prof.lastReport,
	}
	for srv, n := range prof.violations {
		pp.Violations[srv] = n
	}
	ruleIDs := make([]string, 0, len(prof.active))
	for rid := range prof.active {
		ruleIDs = append(ruleIDs, rid)
	}
	sort.Strings(ruleIDs)
	for _, rid := range ruleIDs {
		a := prof.active[rid]
		pp.Active = append(pp.Active, persistedActivation{
			RuleID:          rid,
			AltIndex:        a.AltIndex,
			ActivatedAt:     a.ActivatedAt,
			ExpiresAt:       a.ExpiresAt,
			TriggerServer:   a.TriggerServer,
			TriggerDistance: a.TriggerDistance,
			Activations:     a.Activations,
		})
	}
	return pp
}

// ImportState restores per-user state exported by ExportState, replacing
// any existing profiles. Activations referring to rules absent from the
// engine's current rule set are dropped silently (the operator changed the
// configuration); expired activations are dropped too. The restore is
// atomic: every shard is locked for the swap, so no concurrent reader sees
// a half-imported state.
func (e *Engine) ImportState(data []byte) error {
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("engine: decode state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("engine: unsupported state version %d", st.Version)
	}

	now := e.now()

	ruleSet := e.ruleSnapshot()
	byID := make(map[string]*rules.Rule, len(ruleSet))
	for _, r := range ruleSet {
		byID[r.ID] = r
	}

	// Build the new shard contents off-lock, then swap under all locks.
	fresh := make([]map[string]*Profile, len(e.shards))
	for i := range fresh {
		fresh[i] = make(map[string]*Profile)
	}
	for _, pp := range st.Profiles {
		if pp.UserID == "" {
			return fmt.Errorf("engine: state has profile without user id")
		}
		prof := newProfile(pp.UserID)
		prof.lastReport = pp.LastReport
		for srv, n := range pp.Violations {
			if n > 0 {
				prof.violations[srv] = n
			}
		}
		for _, pa := range pp.Active {
			rule, ok := byID[pa.RuleID]
			if !ok {
				continue // rule removed since export
			}
			if !pa.ExpiresAt.IsZero() && now.After(pa.ExpiresAt) {
				continue // lapsed while the engine was down
			}
			prof.active[pa.RuleID] = &ActiveRule{
				Rule:            rule,
				AltIndex:        pa.AltIndex,
				ActivatedAt:     pa.ActivatedAt,
				ExpiresAt:       pa.ExpiresAt,
				TriggerServer:   pa.TriggerServer,
				TriggerDistance: pa.TriggerDistance,
				Activations:     pa.Activations,
			}
		}
		fresh[e.shardIndex(pp.UserID)][pp.UserID] = prof
	}

	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	for i, sh := range e.shards {
		sh.profiles = fresh[i]
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	return nil
}
