package core

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"oak/internal/guard"
	"oak/internal/rules"
)

// State persistence: an Oak deployment restarts without losing what it has
// learned about its users. ExportState captures every profile's violation
// counters and live activations; ImportState restores them against the
// current rule set (activations of rules that no longer exist are dropped,
// and expired activations are not resurrected).
//
// Both operations iterate the engine's shards deterministically: profiles
// are collected shard by shard (each shard read-locked while it is copied)
// and the output is globally sorted by user ID, so an export is stable
// regardless of shard count or hash layout, and a state file exported from
// an engine with one shard count imports cleanly into an engine with
// another. An export taken during concurrent ingest is weakly consistent
// across shards (each shard's slice is a true point-in-time copy).

// persistedState is the on-disk envelope. Guard and Population are additive
// (omitted when empty or on engines without the subsystem), so snapshots
// from engines without that state stay byte-identical to the earlier
// formats, and older snapshots decode with nil sections — which import as
// empty guard/population state.
type persistedState struct {
	Version int       `json:"version"`
	SavedAt time.Time `json:"savedAt"`
	// Range, present only on partial (per-user-range) exports, records the
	// half-open arc of the user-hash ring the profiles were filtered to.
	// Whole-engine exports omit it, so they stay byte-identical to earlier
	// format generations.
	Range      *persistedRange    `json:"range,omitempty"`
	Profiles   []persistedProfile `json:"profiles"`
	Guard      *guard.Persisted   `json:"guard,omitempty"`
	Population *popPersisted      `json:"population,omitempty"`
}

// persistedRange is the on-disk form of a HashRange.
type persistedRange struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

type persistedProfile struct {
	UserID     string                `json:"userId"`
	Violations map[string]int        `json:"violations,omitempty"`
	Active     []persistedActivation `json:"active,omitempty"`
	LastReport time.Time             `json:"lastReport,omitempty"`
}

type persistedActivation struct {
	RuleID          string    `json:"ruleId"`
	AltIndex        int       `json:"altIndex"`
	ActivatedAt     time.Time `json:"activatedAt"`
	ExpiresAt       time.Time `json:"expiresAt,omitempty"`
	TriggerServer   string    `json:"triggerServer,omitempty"`
	TriggerDistance float64   `json:"triggerDistance,omitempty"`
	Activations     int       `json:"activations"`
	Synthesized     bool      `json:"synthesized,omitempty"`
}

// stateVersion is the current persistence format version.
const stateVersion = 1

// Typed import failures. ErrCorruptState covers everything a damaged file
// can look like — truncation, checksum mismatch, undecodable JSON, an empty
// file — so callers (LoadStateFile, oakd boot) can tell "this file is
// damaged, try the backup" apart from I/O errors. ErrStateVersion marks a
// structurally intact snapshot written by an incompatible format version.
var (
	ErrCorruptState = errors.New("engine: corrupt state")
	ErrStateVersion = errors.New("engine: unsupported state version")
)

// Snapshot envelope: ExportSnapshot wraps the JSON payload in a one-line
// header carrying a magic marker, a CRC-32C checksum and the payload
// length, so ImportState can detect torn or bit-flipped state files instead
// of restoring garbage. Headerless input is accepted as the legacy plain
// JSON format, so snapshot files written before the envelope existed still
// load.
const (
	snapshotMagic  = "OAKSNAP"
	snapshotHeader = snapshotMagic + "2 crc32c=%08x len=%d\n"
)

// snapshotCRC is the Castagnoli table used for snapshot checksums.
var snapshotCRC = crc32.MakeTable(crc32.Castagnoli)

// ExportSnapshot serialises all per-user state as a checksummed snapshot:
// one header line (magic, CRC-32C of the payload, payload length) followed
// by the ExportState JSON payload. ImportState verifies the checksum before
// touching any profile.
func (e *Engine) ExportSnapshot() ([]byte, error) {
	payload, err := e.ExportState()
	if err != nil {
		return nil, err
	}
	return wrapSnapshot(payload), nil
}

// wrapSnapshot prepends the checksummed OAKSNAP2 envelope to a state
// payload.
func wrapSnapshot(payload []byte) []byte {
	header := fmt.Sprintf(snapshotHeader, crc32.Checksum(payload, snapshotCRC), len(payload))
	return append([]byte(header), payload...)
}

// unwrapSnapshot strips and verifies the snapshot envelope, returning the
// JSON payload. Input without the magic prefix is returned as-is (legacy
// plain-JSON state files). A present-but-damaged envelope is ErrCorruptState;
// an envelope from an unknown format generation is ErrStateVersion.
func unwrapSnapshot(data []byte) ([]byte, error) {
	if !bytes.HasPrefix(data, []byte(snapshotMagic)) {
		return data, nil
	}
	nl := bytes.IndexByte(data, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("%w: snapshot header not terminated", ErrCorruptState)
	}
	var (
		sum    uint32
		length int
	)
	n, err := fmt.Sscanf(string(data[:nl+1]), snapshotHeader, &sum, &length)
	if err != nil || n != 2 {
		// The magic matched but the header did not parse as generation 2:
		// either a corrupted header or a future format.
		if bytes.HasPrefix(data, []byte(snapshotMagic+"2 ")) {
			return nil, fmt.Errorf("%w: malformed snapshot header", ErrCorruptState)
		}
		return nil, fmt.Errorf("%w: unknown snapshot generation %q", ErrStateVersion, string(data[:nl]))
	}
	payload := data[nl+1:]
	if len(payload) != length {
		return nil, fmt.Errorf("%w: snapshot truncated: header says %d payload bytes, have %d",
			ErrCorruptState, length, len(payload))
	}
	if got := crc32.Checksum(payload, snapshotCRC); got != sum {
		return nil, fmt.Errorf("%w: snapshot checksum mismatch: header %08x, payload %08x",
			ErrCorruptState, sum, got)
	}
	return payload, nil
}

// ExportState serialises all per-user state as JSON.
func (e *Engine) ExportState() ([]byte, error) {
	return e.exportStateRange(HashRange{})
}

// exportStateRange serialises the per-user state of one arc of the hash
// ring (the whole ring when r is the whole-space range). Guard and
// population sections are engine-global, not per-user, so every range
// export carries them in full; a whole-space export is byte-identical to
// ExportState.
func (e *Engine) exportStateRange(r HashRange) ([]byte, error) {
	st := persistedState{Version: stateVersion, SavedAt: e.now()}
	if !r.Whole() {
		st.Range = &persistedRange{Lo: r.Lo, Hi: r.Hi}
	}
	if e.guard != nil {
		st.Guard = e.guard.Export() // nil (omitted) when nothing to persist
	}
	st.Population = e.exportPop() // nil (omitted) when nothing to persist

	for _, sh := range e.shards {
		sh.mu.RLock()
		for uid, prof := range sh.profiles {
			if !r.Contains(userHash(uid)) {
				continue
			}
			st.Profiles = append(st.Profiles, snapshotProfile(prof))
		}
		// Spilled profiles are part of the engine's state: their records
		// decode straight to the persisted form, so a mixed resident/spilled
		// population exports byte-identically to an all-resident one. The
		// OAKPROF1 time encoding preserves the wall clock and offset exactly
		// for this reason.
		for uid, ref := range sh.spilled {
			if !r.Contains(userHash(uid)) {
				continue
			}
			if ref.seg.quarantined.Load() {
				continue // record lost with its segment; statefile covers it
			}
			pp, err := e.spill.readRecord(ref)
			if err != nil {
				if isSpillDamage(err) {
					// Damaged record: the segment's bytes are proven bad, so
					// quarantine it exactly as the rehydrate path would —
					// healthz goes degraded and the loss shows up in the
					// quarantine accounting instead of the export silently
					// omitting a user still indexed as spilled. The ref
					// itself is dropped lazily on next touch (we hold only
					// the read lock here).
					e.spill.quarantineSegment(e, ref.seg, err)
					continue
				}
				// I/O failure: fail the export rather than install a
				// snapshot silently missing acknowledged profiles — the
				// previous good snapshot stays in place and the segment
				// records remain recoverable at next boot.
				sh.mu.RUnlock()
				return nil, fmt.Errorf("engine: export spilled profile %q: %w", uid, err)
			}
			st.Profiles = append(st.Profiles, *pp)
		}
		sh.mu.RUnlock()
	}
	// Global ordering by user ID keeps the export deterministic and
	// independent of the shard layout.
	sort.Slice(st.Profiles, func(i, j int) bool {
		return st.Profiles[i].UserID < st.Profiles[j].UserID
	})
	return json.MarshalIndent(st, "", "  ")
}

// snapshotProfile deep-copies one profile into its persisted form. The
// caller must hold the profile's shard lock.
func snapshotProfile(prof *Profile) persistedProfile {
	pp := persistedProfile{
		UserID:     prof.UserID,
		Violations: make(map[string]int, len(prof.violations)),
		LastReport: prof.lastReport,
	}
	for srv, n := range prof.violations {
		pp.Violations[srv] = n
	}
	ruleIDs := make([]string, 0, len(prof.active))
	for rid := range prof.active {
		ruleIDs = append(ruleIDs, rid)
	}
	sort.Strings(ruleIDs)
	for _, rid := range ruleIDs {
		a := prof.active[rid]
		pp.Active = append(pp.Active, persistedActivation{
			RuleID:          rid,
			AltIndex:        a.AltIndex,
			ActivatedAt:     a.ActivatedAt,
			ExpiresAt:       a.ExpiresAt,
			TriggerServer:   a.TriggerServer,
			TriggerDistance: a.TriggerDistance,
			Activations:     a.Activations,
			Synthesized:     a.Synthesized,
		})
	}
	return pp
}

// ImportState restores per-user state exported by ExportState or
// ExportSnapshot (the checksummed envelope is detected and verified;
// headerless input is treated as the legacy plain-JSON format), replacing
// any existing profiles. Activations referring to rules absent from the
// engine's current rule set are dropped silently (the operator changed the
// configuration); expired activations are dropped too. The restore is
// atomic: every shard is locked for the swap, so no concurrent reader sees
// a half-imported state. Damaged input fails with ErrCorruptState — before
// any profile is touched — and incompatible format versions with
// ErrStateVersion.
func (e *Engine) ImportState(data []byte) error {
	return e.importState(data, false)
}

// importState is ImportState with the spill-tier merge policy as a knob.
// Authoritative (preserveNewerSpill false): every existing spill record is
// dropped — the payload is the complete truth, as a node replacement or an
// operator restore demands. Newer-wins (true, the LoadStateFile boot path):
// a spill record with a last-report strictly after the payload's copy of
// that user survives the import, and spilled users absent from the payload
// survive too — that is what makes a crash between spill-fsync and the next
// SaveStateFile lose nothing that was acknowledged.
//
// On engines with a residency cap the import ends by re-enforcing the cap,
// so restoring a huge snapshot immediately evicts back under it.
func (e *Engine) importState(data []byte, preserveNewerSpill bool) error {
	st, err := decodeState(data)
	if err != nil {
		return err
	}
	fresh, freshIdx, err := e.buildImport(st, HashRange{})
	if err != nil {
		return err
	}

	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	spilledLive := int64(0)
	for i, sh := range e.shards {
		if sh.spilled != nil {
			e.mergeSpillLocked(sh, fresh[i], freshIdx[i], preserveNewerSpill, HashRange{})
			spilledLive += int64(len(sh.spilled))
		}
		sh.profiles = fresh[i]
		sh.provIndex = freshIdx[i]
		sh.users.Set(int64(len(fresh[i])))
		if e.spill != nil {
			bytes := int64(0)
			for _, prof := range fresh[i] {
				bytes += int64(prof.sizeEst)
			}
			sh.residentBytes.Store(bytes)
		}
	}
	if e.spill != nil {
		e.spill.spilledUsers.Set(spilledLive)
	}
	if e.guard != nil {
		// Inside the all-locks window, so profiles and breaker states from
		// the same snapshot become visible together. st.Guard is nil for
		// pre-guard and legacy snapshots — that imports as empty guard state.
		e.guard.Import(st.Guard)
	}
	// Same discipline for the population section: nil (pre-synthesis or
	// legacy snapshots) imports as empty population state.
	e.importPop(st.Population)
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	// A restored population can exceed the residency cap; evict back under
	// it (outside the all-locks window — eviction takes one shard at a time).
	if e.spill != nil {
		for _, sh := range e.shards {
			e.enforceResidency(sh, "")
		}
	}
	return nil
}

// mergeSpillLocked reconciles one shard's spill index with an incoming
// import limited to r (whole ring for full imports). Authoritative mode
// drops every in-range spill record; newer-wins mode keeps records that are
// strictly newer than the payload's copy of the same user (removing that
// user from the incoming maps) and records for in-range users the payload
// does not carry. Caller holds every shard lock (import's all-locks window).
func (e *Engine) mergeSpillLocked(sh *shard, fresh map[string]*Profile,
	freshIdx map[string]map[string]map[string]struct{}, preserveNewer bool, r HashRange) {
	for uid, ref := range sh.spilled {
		if !r.Contains(userHash(uid)) {
			continue // outside the imported arc: untouched
		}
		if preserveNewer && !ref.seg.quarantined.Load() {
			np, inPayload := fresh[uid]
			if !inPayload {
				continue // spilled-only user: survives a newer-wins import
			}
			if ref.last.After(np.lastReport) {
				// The spill record post-dates the snapshot: the record wins
				// and the payload's stale copy is discarded.
				delete(fresh, uid)
				for host, users := range freshIdx {
					delete(users, uid)
					if len(users) == 0 {
						delete(freshIdx, host)
					}
				}
				continue
			}
		}
		delete(sh.spilled, uid)
		ref.seg.dead.Add(1)
	}
}

// decodeState unwraps (and, when the envelope is present, verifies) a
// snapshot and decodes its JSON payload, enforcing the format version.
func decodeState(data []byte) (*persistedState, error) {
	if len(bytes.TrimSpace(data)) == 0 {
		return nil, fmt.Errorf("%w: empty state file", ErrCorruptState)
	}
	payload, err := unwrapSnapshot(data)
	if err != nil {
		return nil, err
	}
	var st persistedState
	if err := json.Unmarshal(payload, &st); err != nil {
		return nil, fmt.Errorf("%w: decode state: %v", ErrCorruptState, err)
	}
	if st.Version != stateVersion {
		return nil, fmt.Errorf("%w %d", ErrStateVersion, st.Version)
	}
	return &st, nil
}

// buildImport constructs, off-lock, the per-shard profile maps (and, on
// guard-enabled engines, the provider→activations indexes) for the
// payload's profiles. Every profile must hash into want — a payload profile
// outside the declared range means the file does not match what it claims
// to contain, which is a form of corruption. Activations of rules absent
// from the current rule set and activations that expired while in transit
// are dropped.
func (e *Engine) buildImport(st *persistedState, want HashRange) (fresh []map[string]*Profile, freshIdx []map[string]map[string]map[string]struct{}, err error) {
	now := e.now()

	ruleSet := e.ruleSnapshot()
	byID := make(map[string]*rules.Rule, len(ruleSet))
	for _, r := range ruleSet {
		byID[r.ID] = r
	}

	fresh = make([]map[string]*Profile, len(e.shards))
	freshIdx = make([]map[string]map[string]map[string]struct{}, len(e.shards))
	for i := range fresh {
		fresh[i] = make(map[string]*Profile)
	}
	for _, pp := range st.Profiles {
		if pp.UserID == "" {
			return nil, nil, fmt.Errorf("%w: state has profile without user id", ErrCorruptState)
		}
		if !want.Contains(userHash(pp.UserID)) {
			return nil, nil, fmt.Errorf("%w: profile %q hashes to %08x, outside range %v",
				ErrCorruptState, pp.UserID, userHash(pp.UserID), want)
		}
		si := e.shardIndex(pp.UserID)
		prof := newProfile(pp.UserID)
		prof.lastReport = pp.LastReport
		for srv, n := range pp.Violations {
			if n > 0 {
				prof.violations[srv] = n
			}
		}
		for _, pa := range pp.Active {
			rule, ok := byID[pa.RuleID]
			if !ok {
				continue // rule removed since export
			}
			if !pa.ExpiresAt.IsZero() && now.After(pa.ExpiresAt) {
				continue // lapsed while the engine was down
			}
			prof.active[pa.RuleID] = &ActiveRule{
				Rule:            rule,
				AltIndex:        pa.AltIndex,
				ActivatedAt:     pa.ActivatedAt,
				ExpiresAt:       pa.ExpiresAt,
				TriggerServer:   pa.TriggerServer,
				TriggerDistance: pa.TriggerDistance,
				Activations:     pa.Activations,
				Synthesized:     pa.Synthesized,
			}
			// Arm lazy expiry so an imported TTL'd activation lapses on the
			// serve path just like a live-activated one.
			prof.noteExpiry(pa.ExpiresAt)
			if e.guard != nil {
				for _, h := range e.altHostsFor(pa.RuleID, pa.AltIndex) {
					idx := freshIdx[si]
					if idx == nil {
						idx = make(map[string]map[string]map[string]struct{})
						freshIdx[si] = idx
					}
					users := idx[h]
					if users == nil {
						users = make(map[string]map[string]struct{})
						idx[h] = users
					}
					set := users[pp.UserID]
					if set == nil {
						set = make(map[string]struct{})
						users[pp.UserID] = set
					}
					set[pa.RuleID] = struct{}{}
				}
			}
		}
		prof.sizeEst = prof.estimateSize()
		fresh[si][pp.UserID] = prof
	}
	return fresh, freshIdx, nil
}
