package core

import (
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"oak/internal/rules"
)

// State persistence: an Oak deployment restarts without losing what it has
// learned about its users. ExportState captures every profile's violation
// counters and live activations; ImportState restores them against the
// current rule set (activations of rules that no longer exist are dropped,
// and expired activations are not resurrected).

// persistedState is the on-disk envelope.
type persistedState struct {
	Version  int                `json:"version"`
	SavedAt  time.Time          `json:"savedAt"`
	Profiles []persistedProfile `json:"profiles"`
}

type persistedProfile struct {
	UserID     string                `json:"userId"`
	Violations map[string]int        `json:"violations,omitempty"`
	Active     []persistedActivation `json:"active,omitempty"`
	LastReport time.Time             `json:"lastReport,omitempty"`
}

type persistedActivation struct {
	RuleID          string    `json:"ruleId"`
	AltIndex        int       `json:"altIndex"`
	ActivatedAt     time.Time `json:"activatedAt"`
	ExpiresAt       time.Time `json:"expiresAt,omitempty"`
	TriggerServer   string    `json:"triggerServer,omitempty"`
	TriggerDistance float64   `json:"triggerDistance,omitempty"`
	Activations     int       `json:"activations"`
}

// stateVersion is the current persistence format version.
const stateVersion = 1

// ExportState serialises all per-user state as JSON.
func (e *Engine) ExportState() ([]byte, error) {
	e.mu.RLock()
	defer e.mu.RUnlock()

	st := persistedState{Version: stateVersion, SavedAt: e.now()}
	ids := make([]string, 0, len(e.profiles))
	for id := range e.profiles {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		prof := e.profiles[id]
		pp := persistedProfile{
			UserID:     prof.UserID,
			Violations: make(map[string]int, len(prof.violations)),
			LastReport: prof.lastReport,
		}
		for srv, n := range prof.violations {
			pp.Violations[srv] = n
		}
		ruleIDs := make([]string, 0, len(prof.active))
		for rid := range prof.active {
			ruleIDs = append(ruleIDs, rid)
		}
		sort.Strings(ruleIDs)
		for _, rid := range ruleIDs {
			a := prof.active[rid]
			pp.Active = append(pp.Active, persistedActivation{
				RuleID:          rid,
				AltIndex:        a.AltIndex,
				ActivatedAt:     a.ActivatedAt,
				ExpiresAt:       a.ExpiresAt,
				TriggerServer:   a.TriggerServer,
				TriggerDistance: a.TriggerDistance,
				Activations:     a.Activations,
			})
		}
		st.Profiles = append(st.Profiles, pp)
	}
	return json.MarshalIndent(st, "", "  ")
}

// ImportState restores per-user state exported by ExportState, replacing
// any existing profiles. Activations referring to rules absent from the
// engine's current rule set are dropped silently (the operator changed the
// configuration); expired activations are dropped too.
func (e *Engine) ImportState(data []byte) error {
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("engine: decode state: %w", err)
	}
	if st.Version != stateVersion {
		return fmt.Errorf("engine: unsupported state version %d", st.Version)
	}

	e.mu.Lock()
	defer e.mu.Unlock()
	now := e.now()

	byID := make(map[string]*rules.Rule, len(e.rules))
	for _, r := range e.rules {
		byID[r.ID] = r
	}

	profiles := make(map[string]*Profile, len(st.Profiles))
	for _, pp := range st.Profiles {
		if pp.UserID == "" {
			return fmt.Errorf("engine: state has profile without user id")
		}
		prof := newProfile(pp.UserID)
		prof.lastReport = pp.LastReport
		for srv, n := range pp.Violations {
			if n > 0 {
				prof.violations[srv] = n
			}
		}
		for _, pa := range pp.Active {
			rule, ok := byID[pa.RuleID]
			if !ok {
				continue // rule removed since export
			}
			if !pa.ExpiresAt.IsZero() && now.After(pa.ExpiresAt) {
				continue // lapsed while the engine was down
			}
			prof.active[pa.RuleID] = &ActiveRule{
				Rule:            rule,
				AltIndex:        pa.AltIndex,
				ActivatedAt:     pa.ActivatedAt,
				ExpiresAt:       pa.ExpiresAt,
				TriggerServer:   pa.TriggerServer,
				TriggerDistance: pa.TriggerDistance,
				Activations:     pa.Activations,
			}
		}
		profiles[pp.UserID] = prof
	}
	e.profiles = profiles
	return nil
}
