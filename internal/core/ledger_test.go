package core

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"oak/internal/rules"
)

func TestLedgerStats(t *testing.T) {
	l := NewLedger()
	l.RecordUser("u1")
	l.RecordUser("u2")
	l.RecordUser("u3")
	l.RecordUser("u4")
	l.RecordActivation("fonts", "u1")
	l.RecordActivation("fonts", "u2")
	l.RecordActivation("fonts", "u3")
	l.RecordActivation("fonts", "u1") // repeat by same user
	l.RecordActivation("ads", "u1")

	stats := l.Stats()
	if len(stats) != 2 {
		t.Fatalf("got %d stats, want 2", len(stats))
	}
	if stats[0].RuleID != "fonts" {
		t.Errorf("stats[0] = %+v, want fonts first (highest fraction)", stats[0])
	}
	if stats[0].Users != 3 || stats[0].Activations != 4 || stats[0].UserFraction != 0.75 {
		t.Errorf("fonts stat = %+v", stats[0])
	}
	if stats[1].Users != 1 || stats[1].UserFraction != 0.25 {
		t.Errorf("ads stat = %+v", stats[1])
	}
	if l.TotalUsers() != 4 {
		t.Errorf("TotalUsers = %d, want 4", l.TotalUsers())
	}
}

func TestLedgerSplit(t *testing.T) {
	l := NewLedger()
	for _, u := range []string{"u1", "u2", "u3", "u4", "u5", "u6", "u7", "u8", "u9", "u10"} {
		l.RecordUser(u)
	}
	// common: 5/10 users; individual: 1/10.
	for _, u := range []string{"u1", "u2", "u3", "u4", "u5"} {
		l.RecordActivation("common-fonts", u)
	}
	l.RecordActivation("individual-img", "u1")

	individual, common := l.Split(0.18)
	if len(common) != 1 || common[0].RuleID != "common-fonts" {
		t.Errorf("common = %+v", common)
	}
	if len(individual) != 1 || individual[0].RuleID != "individual-img" {
		t.Errorf("individual = %+v", individual)
	}
}

func TestLedgerEmpty(t *testing.T) {
	l := NewLedger()
	if got := l.Stats(); len(got) != 0 {
		t.Errorf("empty Stats = %v", got)
	}
	if l.TotalUsers() != 0 {
		t.Error("empty TotalUsers != 0")
	}
}

func TestLedgerActivationWithoutRecordUser(t *testing.T) {
	l := NewLedger()
	l.RecordActivation("r", "uX") // should implicitly count the user
	if l.TotalUsers() != 1 {
		t.Errorf("TotalUsers = %d, want 1", l.TotalUsers())
	}
	if st := l.Stats(); st[0].UserFraction != 1 {
		t.Errorf("UserFraction = %v, want 1", st[0].UserFraction)
	}
}

func TestLedgerConcurrent(t *testing.T) {
	l := NewLedger()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				l.RecordActivation("r", "u")
				l.Stats()
			}
		}(i)
	}
	wg.Wait()
	if st := l.Stats(); st[0].Activations != 800 {
		t.Errorf("Activations = %d, want 800", st[0].Activations)
	}
}

func TestProfilePruneExpiredSorted(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	p := newProfile("u")
	mk := func(id string) *rules.Rule {
		return &rules.Rule{ID: id, Type: rules.TypeRemove, Default: "x", TTL: time.Minute}
	}
	p.activate(mk("zeta"), 0, now, "s", 1)
	p.activate(mk("alpha"), 0, now, "s", 1)
	removed := p.pruneExpired(now.Add(2 * time.Minute))
	want := []expiredActivation{{ID: "alpha"}, {ID: "zeta"}}
	if !reflect.DeepEqual(removed, want) {
		t.Errorf("pruneExpired = %v, want sorted [alpha zeta]", removed)
	}
	if len(p.ActiveRuleIDs(now)) != 0 {
		t.Error("activations survive pruning")
	}
}

func TestProfileActivationsFilterScopeAndExpiry(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	p := newProfile("u")
	scoped := &rules.Rule{ID: "scoped", Type: rules.TypeRemove, Default: "x", Scope: "/a/*"}
	expired := &rules.Rule{ID: "expired", Type: rules.TypeRemove, Default: "y", TTL: time.Second}
	forever := &rules.Rule{ID: "forever", Type: rules.TypeRemove, Default: "z", Scope: "*"}
	p.activate(scoped, 0, now, "s", 1)
	p.activate(expired, 0, now, "s", 1)
	p.activate(forever, 0, now, "s", 1)

	later := now.Add(time.Minute)
	acts := p.activations("/b/page.html", later)
	if len(acts) != 1 || acts[0].Rule.ID != "forever" {
		t.Errorf("activations = %+v, want only forever", acts)
	}
	acts = p.activations("/a/page.html", later)
	if len(acts) != 2 {
		t.Errorf("activations = %+v, want scoped+forever", acts)
	}
}

func TestProfileViolationCounts(t *testing.T) {
	p := newProfile("u")
	if p.violationCount("s") != 0 {
		t.Error("fresh profile has violations")
	}
	if got := p.recordViolation("s"); got != 1 {
		t.Errorf("first recordViolation = %d", got)
	}
	if got := p.recordViolation("s"); got != 2 {
		t.Errorf("second recordViolation = %d", got)
	}
}

func TestActiveRuleExpired(t *testing.T) {
	now := time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)
	never := &ActiveRule{}
	if never.Expired(now) {
		t.Error("zero ExpiresAt must never expire")
	}
	timed := &ActiveRule{ExpiresAt: now}
	if timed.Expired(now) {
		t.Error("not expired exactly at deadline")
	}
	if !timed.Expired(now.Add(time.Nanosecond)) {
		t.Error("expired after deadline")
	}
}

func TestLinearSelector(t *testing.T) {
	r := &rules.Rule{ID: "r", Type: rules.TypeReplaceSame, Default: "d", Alternatives: []string{"a", "b"}}
	if got := LinearSelector(r, -1, "u"); got != 0 {
		t.Errorf("first selection = %d, want 0", got)
	}
	if got := LinearSelector(r, 0, "u"); got != 1 {
		t.Errorf("second selection = %d, want 1", got)
	}
	if got := LinearSelector(r, 1, "u"); got != 1 {
		t.Errorf("saturated selection = %d, want 1", got)
	}
}

func TestHashSelectorStable(t *testing.T) {
	r := &rules.Rule{ID: "r", Type: rules.TypeReplaceSame, Default: "d", Alternatives: []string{"a", "b", "c"}}
	first := HashSelector(r, -1, "user-42")
	for i := 0; i < 5; i++ {
		if got := HashSelector(r, i, "user-42"); got != first {
			t.Errorf("HashSelector not stable: %d != %d", got, first)
		}
	}
	empty := &rules.Rule{ID: "e", Type: rules.TypeRemove, Default: "d"}
	if got := HashSelector(empty, -1, "u"); got != 0 {
		t.Errorf("HashSelector(no alts) = %d, want 0", got)
	}
}

func TestPolicyNormalized(t *testing.T) {
	p := Policy{}.normalized()
	if p.MADMultiplier != 2 || p.MinViolations != 1 || p.SelectAlternative == nil {
		t.Errorf("normalized zero policy = %+v", p)
	}
	if p.MatchLevel != MatchExternalJS || p.MatchDepth != 1 {
		t.Errorf("normalized match config = %v/%d", p.MatchLevel, p.MatchDepth)
	}
	custom := Policy{MADMultiplier: 3, MinViolations: 5, MatchLevel: MatchDirect, MatchDepth: 2}.normalized()
	if custom.MADMultiplier != 3 || custom.MinViolations != 5 || custom.MatchLevel != MatchDirect || custom.MatchDepth != 2 {
		t.Errorf("normalized custom policy = %+v", custom)
	}
}
