package core

import (
	"encoding/json"
	"strings"
	"testing"
	"time"

	"oak/internal/rules"
)

func TestExportImportRoundTrip(t *testing.T) {
	clock := newTestClock()
	e1, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	if _, err := e1.HandleReport(slowS1Report("u2")); err != nil {
		t.Fatal(err)
	}
	data, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	// A fresh engine with the same rules imports the state and behaves
	// identically.
	e2, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	if e2.Users() != 2 {
		t.Errorf("Users = %d, want 2", e2.Users())
	}
	page := `<script src="http://s1.com/jquery.js">`
	out, _ := e2.ModifyPage("u1", "/index.html", page)
	if !strings.Contains(out, "s2.net") {
		t.Error("imported activation not applied")
	}
	snap, ok := e2.Snapshot("u2")
	if !ok || snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("u2 snapshot = %+v", snap)
	}
}

func TestImportDropsUnknownRules(t *testing.T) {
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	data, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// The new deployment no longer has the jquery rule.
	other := &rules.Rule{ID: "other", Type: rules.TypeRemove, Default: "X", Scope: "*"}
	e2, _ := NewEngine([]*rules.Rule{other})
	if err := e2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	snap, ok := e2.Snapshot("u1")
	if !ok {
		t.Fatal("profile lost")
	}
	if len(snap.ActiveRules) != 0 {
		t.Errorf("activation of removed rule survived: %v", snap.ActiveRules)
	}
	if snap.Violations["ip-s1.com"] != 1 {
		t.Error("violation counters lost")
	}
}

func TestImportDropsExpiredActivations(t *testing.T) {
	clock := newTestClock()
	e1, _ := NewEngine([]*rules.Rule{jqRule(time.Hour)}, WithClock(clock.Now))
	if _, err := e1.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	data, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// Restart happens two hours later.
	clock.Advance(2 * time.Hour)
	e2, _ := NewEngine([]*rules.Rule{jqRule(time.Hour)}, WithClock(clock.Now))
	if err := e2.ImportState(data); err != nil {
		t.Fatal(err)
	}
	snap, _ := e2.Snapshot("u1")
	if len(snap.ActiveRules) != 0 {
		t.Errorf("expired activation resurrected: %v", snap.ActiveRules)
	}
}

func TestImportRejectsGarbage(t *testing.T) {
	e, _ := NewEngine(nil)
	if err := e.ImportState([]byte("{")); err == nil {
		t.Error("ImportState(bad json) = nil error")
	}
	if err := e.ImportState([]byte(`{"version":99}`)); err == nil {
		t.Error("ImportState(bad version) = nil error")
	}
	if err := e.ImportState([]byte(`{"version":1,"profiles":[{"userId":""}]}`)); err == nil {
		t.Error("ImportState(empty user id) = nil error")
	}
}

func TestImportReplacesExistingProfiles(t *testing.T) {
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e1.HandleReport(slowS1Report("old-user")); err != nil {
		t.Fatal(err)
	}
	empty := persistedState{Version: stateVersion}
	data, _ := json.Marshal(empty)
	if err := e1.ImportState(data); err != nil {
		t.Fatal(err)
	}
	if e1.Users() != 0 {
		t.Errorf("Users = %d after importing empty state, want 0", e1.Users())
	}
}

func TestExportDeterministic(t *testing.T) {
	clock := newTestClock()
	e, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	for _, u := range []string{"c", "a", "b"} {
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
	}
	d1, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	d2, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if string(d1) != string(d2) {
		t.Error("ExportState not deterministic")
	}
	// Profiles sorted by user id in the envelope.
	var st persistedState
	if err := json.Unmarshal(d1, &st); err != nil {
		t.Fatal(err)
	}
	if len(st.Profiles) != 3 || st.Profiles[0].UserID != "a" || st.Profiles[2].UserID != "c" {
		t.Errorf("profiles not sorted: %+v", st.Profiles)
	}
}
