package core

import (
	"strings"
	"sync"
	"testing"

	"oak/internal/obs"
	"oak/internal/rules"
)

func TestEngineTraceRecordsDecisions(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	page := `<html><script src="http://s1.com/jquery.js"></html>`
	if out, _ := e.ModifyPage("u1", "/index.html", page); out == page {
		t.Fatal("page not modified; activation did not take")
	}

	evs := e.TraceRecent(100)
	kinds := make(map[obs.EventKind]int)
	for _, ev := range evs {
		kinds[ev.Kind]++
		if ev.User != "u1" {
			t.Errorf("event %s has user %q, want u1", ev.Kind, ev.User)
		}
		if ev.Time.IsZero() {
			t.Errorf("event %s has zero timestamp", ev.Kind)
		}
	}
	for _, want := range []obs.EventKind{obs.EventReport, obs.EventViolator, obs.EventActivate, obs.EventRewrite} {
		if kinds[want] == 0 {
			t.Errorf("trace missing %s event; got %v", want, kinds)
		}
	}
	// The activation event carries the full decision context.
	for _, ev := range evs {
		if ev.Kind == obs.EventActivate {
			if ev.RuleID != "jquery" || ev.Provider != "ip-s1.com" {
				t.Errorf("activate event = %+v, want rule jquery provider ip-s1.com", ev)
			}
			if !strings.Contains(ev.Detail, "alt") {
				t.Errorf("activate detail = %q, want alternative index", ev.Detail)
			}
		}
	}
}

func TestEngineTraceBounded(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithTraceCapacity(8))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
			t.Fatal(err)
		}
	}
	if got := len(e.TraceRecent(1000)); got != 8 {
		t.Errorf("TraceRecent returned %d events, want ring capacity 8", got)
	}
}

func TestEngineLatencyHistograms(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	lat := e.Latencies()
	if lat.Ingest.Count != 0 || lat.Rewrite.Count != 0 {
		t.Fatalf("fresh engine has non-empty histograms: %+v", lat)
	}
	for i := 0; i < 5; i++ {
		if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
			t.Fatal(err)
		}
		e.ModifyPage("u1", "/index.html", "<html></html>")
	}
	lat = e.Latencies()
	if lat.Ingest.Count != 5 {
		t.Errorf("Ingest.Count = %d, want 5", lat.Ingest.Count)
	}
	if lat.Rewrite.Count != 5 {
		t.Errorf("Rewrite.Count = %d, want 5", lat.Rewrite.Count)
	}
	if lat.Ingest.Quantile(0.99) <= 0 || lat.Ingest.Max <= 0 {
		t.Errorf("Ingest percentiles not populated: %s", lat.Ingest)
	}
}

// TestEngineObsConcurrent hammers ingest, rewrite, trace reads and histogram
// snapshots from many goroutines; run with -race.
func TestEngineObsConcurrent(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithTraceCapacity(64))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			user := []string{"u1", "u2", "u3", "u4"}[g]
			for i := 0; i < 50; i++ {
				if _, err := e.HandleReport(slowS1Report(user)); err != nil {
					t.Error(err)
					return
				}
				e.ModifyPage(user, "/index.html", `<script src="http://s1.com/jquery.js">`)
				_ = e.TraceRecent(10)
				_ = e.Latencies()
			}
		}(g)
	}
	wg.Wait()
	lat := e.Latencies()
	if lat.Ingest.Count != 200 {
		t.Errorf("Ingest.Count = %d, want 200", lat.Ingest.Count)
	}
	if m := e.Metrics(); m.ReportsHandled != 200 {
		t.Errorf("ReportsHandled = %d, want 200", m.ReportsHandled)
	}
}
