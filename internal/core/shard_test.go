package core

import (
	"bytes"
	"fmt"
	"testing"

	"oak/internal/rules"
)

func TestWithShardsRounding(t *testing.T) {
	cases := []struct{ in, want int }{
		{1, 1}, {2, 2}, {3, 4}, {5, 8}, {16, 16}, {17, 32},
		{maxShards, maxShards}, {maxShards + 1, maxShards},
	}
	for _, c := range cases {
		e, err := NewEngine(nil, WithShards(c.in))
		if err != nil {
			t.Fatal(err)
		}
		if got := e.ShardCount(); got != c.want {
			t.Errorf("WithShards(%d): %d shards, want %d", c.in, got, c.want)
		}
	}
	// 0 selects the default, which is a power of two >= 8.
	e, err := NewEngine(nil, WithShards(0))
	if err != nil {
		t.Fatal(err)
	}
	n := e.ShardCount()
	if n < 8 || n&(n-1) != 0 {
		t.Errorf("default shard count %d: want power of two >= 8", n)
	}
}

func TestShardIndexStableAndInRange(t *testing.T) {
	e, err := NewEngine(nil, WithShards(16))
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[int]int)
	for i := 0; i < 1000; i++ {
		id := fmt.Sprintf("user-%d", i)
		idx := e.shardIndex(id)
		if idx < 0 || idx >= e.ShardCount() {
			t.Fatalf("shardIndex(%q) = %d out of range", id, idx)
		}
		if idx != e.shardIndex(id) {
			t.Fatalf("shardIndex(%q) not stable", id)
		}
		seen[idx]++
	}
	// 1000 uniform users over 16 shards: every shard should see someone.
	if len(seen) != 16 {
		t.Errorf("only %d of 16 shards populated", len(seen))
	}
}

// TestCrossShardOperations drives users that land on many shards and checks
// every cross-user view still adds up.
func TestCrossShardOperations(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithShards(8))
	if err != nil {
		t.Fatal(err)
	}
	const users = 40
	for i := 0; i < users; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := e.Users(); got != users {
		t.Errorf("Users() = %d, want %d", got, users)
	}
	if got := e.Ledger().TotalUsers(); got != users {
		t.Errorf("ledger TotalUsers = %d, want %d", got, users)
	}
	a := e.Audit()
	if a.Users != users {
		t.Errorf("audit users = %d, want %d", a.Users, users)
	}
	if len(a.WorstServers) == 0 || a.WorstServers[0].ServerAddr != "ip-s1.com" {
		t.Fatalf("worst servers = %+v, want ip-s1.com first", a.WorstServers)
	}
	if a.WorstServers[0].Users != users {
		t.Errorf("s1 violating users = %d, want %d", a.WorstServers[0].Users, users)
	}
	if len(a.Rules) != 1 || a.Rules[0].Users != users {
		t.Errorf("rule footprint = %+v, want jquery across %d users", a.Rules, users)
	}
	for i := 0; i < users; i++ {
		snap, ok := e.Snapshot(fmt.Sprintf("u%d", i))
		if !ok || len(snap.ActiveRules) != 1 {
			t.Fatalf("snapshot u%d = %+v ok=%v, want one active rule", i, snap, ok)
		}
	}
}

// TestExportDeterministicAcrossShardCounts: the same user population must
// export byte-identically regardless of how it is sharded, and a state file
// must import cleanly into an engine with a different shard count.
func TestExportDeterministicAcrossShardCounts(t *testing.T) {
	build := func(shards int) *Engine {
		clock := newTestClock()
		e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithShards(shards), WithClock(clock.Now))
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("user-%d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return e
	}

	e1, e16 := build(1), build(16)
	st1, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	st16, err := e16.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st1, st16) {
		t.Fatalf("export differs between 1 and 16 shards:\n%s\n---\n%s", st1, st16)
	}

	// Import the 16-shard export into a 4-shard engine.
	clock := newTestClock()
	e4, err := NewEngine([]*rules.Rule{jqRule(0)}, WithShards(4), WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	if err := e4.ImportState(st16); err != nil {
		t.Fatal(err)
	}
	if got := e4.Users(); got != 25 {
		t.Errorf("imported users = %d, want 25", got)
	}
	st4, err := e4.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(st4, st16) {
		t.Error("re-export after cross-shard-count import differs")
	}
	snap, ok := e4.Snapshot("user-7")
	if !ok || len(snap.ActiveRules) != 1 || snap.ActiveRules[0] != "jquery" {
		t.Errorf("imported snapshot = %+v ok=%v", snap, ok)
	}
}

func TestSingleShardStillIsolatesUsers(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithShards(1))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("only")); err != nil {
		t.Fatal(err)
	}
	if got := len(e.ActiveRules("other", "/index.html")); got != 0 {
		t.Errorf("unrelated user has %d active rules", got)
	}
	if got := len(e.ActiveRules("only", "/index.html")); got != 1 {
		t.Errorf("reporting user has %d active rules, want 1", got)
	}
}

func TestPerShardIngestHistograms(t *testing.T) {
	e, err := NewEngine(nil, WithShards(4))
	if err != nil {
		t.Fatal(err)
	}
	const reports = 30
	for i := 0; i < reports; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	lat := e.Latencies()
	if lat.Ingest.Count != reports {
		t.Errorf("merged ingest count = %d, want %d", lat.Ingest.Count, reports)
	}
	if len(lat.IngestShards) != 4 {
		t.Fatalf("got %d shard histograms, want 4", len(lat.IngestShards))
	}
	var sum uint64
	for _, s := range lat.IngestShards {
		sum += s.Count
	}
	if sum != reports {
		t.Errorf("shard counts sum to %d, want %d", sum, reports)
	}
}
