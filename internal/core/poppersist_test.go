package core

import (
	"bytes"
	"testing"
	"time"

	"oak/internal/rules"
)

// Snapshot compatibility across the synthesis boundary: pre-synthesis
// snapshots (no "population" key) and legacy plain-JSON state files must
// load into synthesis-enabled engines with empty population state and
// re-export byte-identically; snapshots carrying degraded episodes must
// restore them (and the Synthesized provenance on activations).

// popPinnedEngines builds a synthesis-less source engine and a
// synthesis-enabled target engine on identically pinned clocks, so exports
// are byte-comparable.
func popPinnedEngines(t *testing.T) (src, dst *Engine) {
	t.Helper()
	srcClock, dstClock := newTestClock(), newTestClock()
	var err error
	src, err = NewEngine([]*rules.Rule{jqRule(0)}, WithClock(srcClock.Now))
	if err != nil {
		t.Fatal(err)
	}
	dst, err = NewEngine([]*rules.Rule{jqRule(0)}, WithClock(dstClock.Now),
		WithSynthesis(SynthesisConfig{Window: time.Minute}))
	if err != nil {
		t.Fatal(err)
	}
	return src, dst
}

func TestPreSynthesisSnapshotLoadsWithEmptyPopulationState(t *testing.T) {
	src, dst := popPinnedEngines(t)
	if _, err := src.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	snap, err := src.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(snap, []byte(`"population"`)) {
		t.Fatalf("synthesis-less snapshot contains a population section:\n%s", snap)
	}

	if err := dst.ImportState(snap); err != nil {
		t.Fatalf("pre-synthesis snapshot rejected by synthesis-enabled engine: %v", err)
	}
	if dst.Users() != 1 {
		t.Errorf("Users = %d, want 1", dst.Users())
	}
	if got := dst.DegradedProviders(); len(got) != 0 {
		t.Errorf("DegradedProviders after pre-synthesis import = %v, want none", got)
	}

	// With no ongoing episodes the population section is omitted, so the
	// re-export is byte-identical to the pre-synthesis snapshot.
	reexport, err := dst.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, reexport) {
		t.Errorf("re-export differs from pre-synthesis snapshot:\n--- original\n%s\n--- re-export\n%s",
			snap, reexport)
	}
}

func TestLegacyPlainJSONLoadsWithEmptyPopulationState(t *testing.T) {
	src, dst := popPinnedEngines(t)
	if _, err := src.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	legacy, err := src.ExportState() // headerless: the legacy format
	if err != nil {
		t.Fatal(err)
	}
	if err := dst.ImportState(legacy); err != nil {
		t.Fatalf("legacy state rejected by synthesis-enabled engine: %v", err)
	}
	reexport, err := dst.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(legacy, reexport) {
		t.Errorf("re-export differs from legacy state:\n--- original\n%s\n--- re-export\n%s",
			legacy, reexport)
	}
}

func TestPopulationStateSurvivesSnapshotRoundTrip(t *testing.T) {
	clock := newTestClock()
	mk := func() *Engine {
		e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now),
			WithSynthesis(SynthesisConfig{Window: time.Minute}))
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	e1 := mk()
	e1.MarkDegraded("s1.com")
	// A synthesized activation under the flag, so provenance round-trips.
	if _, err := e1.HandleReport(loadReport("u1", map[string]float64{"s1.com": 60})); err != nil {
		t.Fatal(err)
	}
	snap, err := e1.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(snap, []byte(`"population"`)) {
		t.Fatalf("snapshot missing population section:\n%s", snap)
	}
	if !bytes.Contains(snap, []byte(`"synthesized": true`)) {
		t.Fatalf("snapshot missing synthesized provenance:\n%s", snap)
	}

	e2 := mk()
	if err := e2.ImportState(snap); err != nil {
		t.Fatal(err)
	}
	if got := e2.DegradedProviders(); len(got) != 1 || got[0] != "s1.com" {
		t.Errorf("DegradedProviders after import = %v, want [s1.com]", got)
	}
	ps, _ := e2.PopulationStatus()
	if len(ps.Degraded) != 1 || !ps.Degraded[0].Manual {
		t.Errorf("degraded after import = %+v, want one manual episode", ps.Degraded)
	}
	// The imported state re-exports byte-identically (before any new
	// traffic mutates it).
	reexport, err := e2.ExportSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(snap, reexport) {
		t.Errorf("round-trip re-export differs:\n--- original\n%s\n--- re-export\n%s", snap, reexport)
	}
	// And the restored flag still drives synthesis for new users.
	res, err := e2.HandleReport(loadReport("u2", map[string]float64{"s1.com": 60}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 1 || !res.Changes[0].Synthesized {
		t.Errorf("changes after import = %+v, want synthesized activate", res.Changes)
	}
}
