package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"oak/internal/obs"
	"oak/internal/rules"
)

// guardEngine builds an engine with a tight guard config and a test clock.
func guardEngine(t *testing.T, rs []*rules.Rule, extra ...Option) (*Engine, *testClock) {
	t.Helper()
	clock := newTestClock()
	opts := append([]Option{
		WithClock(clock.Now),
		WithGuard(GuardConfig{
			TripThreshold:    3,
			OpenFor:          time.Minute,
			HalfOpenCanaries: 1,
			CloseAfter:       1,
			PanicThreshold:   2,
		}),
	}, extra...)
	e, err := NewEngine(rs, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return e, clock
}

func TestGuardOpenBreakerBlocksActivation(t *testing.T) {
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)}, WithTraceCapacity(32))
	e.QuarantineProvider("s2.net")

	res, err := e.HandleReport(slowS1Report("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Fatalf("changes = %+v, want none while s2.net quarantined", res.Changes)
	}
	m := e.Metrics()
	if m.ActivationsBlocked == 0 {
		t.Error("ActivationsBlocked = 0, want > 0")
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/index.html", page); out != page {
		t.Error("page rewritten despite blocked activation")
	}
	var sawQuarantineTrace bool
	for _, ev := range e.TraceRecent(32) {
		if ev.Kind == obs.EventQuarantine && ev.Provider == "s2.net" {
			sawQuarantineTrace = true
		}
	}
	if !sawQuarantineTrace {
		t.Error("no quarantine trace event for blocked activation")
	}
}

func TestGuardTripBulkRollsBackAllUsers(t *testing.T) {
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)}, WithShards(4), WithTraceCapacity(128))

	// Activate many users onto the s2.net alternate, spread across shards.
	const users = 12
	page := `<script src="http://s1.com/jquery.js">`
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user-%d", i)
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
		if out, _ := e.ModifyPage(u, "/index.html", page); !strings.Contains(out, "s2.net") {
			t.Fatalf("user %s not activated", u)
		}
	}

	// Three consecutive bad population-level outcomes trip the breaker.
	for i := 0; i < 3; i++ {
		e.ObserveProviderOutcome("s2.net", false, 500)
	}

	m := e.Metrics()
	if m.BreakerTrips != 1 {
		t.Errorf("BreakerTrips = %d, want 1", m.BreakerTrips)
	}
	if m.BulkDeactivations != users {
		t.Errorf("BulkDeactivations = %d, want %d", m.BulkDeactivations, users)
	}
	// Every user — including ones that never reported the bad provider —
	// is rolled back to the default page.
	for i := 0; i < users; i++ {
		u := fmt.Sprintf("user-%d", i)
		if out, _ := e.ModifyPage(u, "/index.html", page); out != page {
			t.Errorf("user %s still rewritten after trip: %q", u, out)
		}
	}
	// No new user is activated onto the dead provider while the breaker is
	// open.
	res, err := e.HandleReport(slowS1Report("late-user"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Errorf("late-user changes = %+v, want none while open", res.Changes)
	}
	if got := e.OpenBreakers(); len(got) != 1 || got[0] != "s2.net" {
		t.Errorf("OpenBreakers = %v, want [s2.net]", got)
	}
	var sawRollback bool
	for _, ev := range e.TraceRecent(128) {
		if ev.Kind == obs.EventRollback && ev.Provider == "s2.net" {
			sawRollback = true
		}
	}
	if !sawRollback {
		t.Error("no rollback trace events after trip")
	}
}

func TestGuardTripsFromIngestedReports(t *testing.T) {
	// Population-level aggregation: no manual ObserveProviderOutcome calls —
	// three users' reports showing the alternate violating trip the breaker.
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)})

	for i := 0; i < 3; i++ {
		u := fmt.Sprintf("user-%d", i)
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		u := fmt.Sprintf("user-%d", i)
		if _, err := e.HandleReport(loadReport(u, map[string]float64{
			"s2.net":    5000,
			"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
		})); err != nil {
			t.Fatal(err)
		}
	}
	m := e.Metrics()
	if m.BreakerTrips != 1 {
		t.Fatalf("BreakerTrips = %d, want 1 (from report aggregation alone)", m.BreakerTrips)
	}
	res, _ := e.HandleReport(slowS1Report("fresh"))
	if len(res.Changes) != 0 {
		t.Errorf("fresh user activated onto tripped provider: %+v", res.Changes)
	}
}

func TestGuardHealthyReportsKeepBreakerClosed(t *testing.T) {
	// A good outcome resets the bad streak: alternating bad/good reports
	// never trip.
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)})
	for i := 0; i < 6; i++ {
		u := fmt.Sprintf("user-%d", i)
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		u := fmt.Sprintf("user-%d", i)
		times := map[string]float64{
			"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
		}
		if i%2 == 0 {
			times["s2.net"] = 5000 // bad
		} else {
			times["s2.net"] = 100 // good: resets the streak
		}
		if _, err := e.HandleReport(loadReport(u, times)); err != nil {
			t.Fatal(err)
		}
	}
	if m := e.Metrics(); m.BreakerTrips != 0 {
		t.Errorf("BreakerTrips = %d, want 0 with alternating outcomes", m.BreakerTrips)
	}
}

func TestGuardHalfOpenCanaryThenClose(t *testing.T) {
	e, clock := guardEngine(t, []*rules.Rule{jqRule(0)}, WithTraceCapacity(64))
	e.QuarantineProvider("s2.net")

	// Cool-down not elapsed: still blocked.
	res, _ := e.HandleReport(slowS1Report("u1"))
	if len(res.Changes) != 0 {
		t.Fatalf("activated during cool-down: %+v", res.Changes)
	}

	clock.Advance(2 * time.Minute)

	// First activation after the cool-down is admitted as the one canary.
	res, _ = e.HandleReport(slowS1Report("u2"))
	if len(res.Changes) != 1 || res.Changes[0].Action != "activate" {
		t.Fatalf("canary not admitted: %+v", res.Changes)
	}
	m := e.Metrics()
	if m.CanaryActivations != 1 {
		t.Errorf("CanaryActivations = %d, want 1", m.CanaryActivations)
	}
	// Canary budget (1) exhausted: the next user is blocked again.
	res, _ = e.HandleReport(slowS1Report("u3"))
	if len(res.Changes) != 0 {
		t.Fatalf("second activation admitted beyond canary budget: %+v", res.Changes)
	}

	// A good outcome for the canary closes the breaker (CloseAfter: 1)...
	e.ObserveProviderOutcome("s2.net", true, 50)
	if m := e.Metrics(); m.BreakerCloses != 1 {
		t.Errorf("BreakerCloses = %d, want 1", m.BreakerCloses)
	}
	if got := e.OpenBreakers(); len(got) != 0 {
		t.Errorf("OpenBreakers = %v after close, want none", got)
	}
	// ...and activation is free again.
	res, _ = e.HandleReport(slowS1Report("u4"))
	if len(res.Changes) != 1 {
		t.Fatalf("activation still blocked after close: %+v", res.Changes)
	}
	var sawCanary, sawReadmit bool
	for _, ev := range e.TraceRecent(64) {
		switch ev.Kind {
		case obs.EventCanary:
			sawCanary = true
		case obs.EventReadmit:
			sawReadmit = true
		}
	}
	if !sawCanary || !sawReadmit {
		t.Errorf("trace canary=%v readmit=%v, want both", sawCanary, sawReadmit)
	}
}

func TestGuardBadCanaryReopens(t *testing.T) {
	e, clock := guardEngine(t, []*rules.Rule{jqRule(0)})
	e.QuarantineProvider("s2.net")
	clock.Advance(2 * time.Minute)

	res, _ := e.HandleReport(slowS1Report("u1"))
	if len(res.Changes) != 1 {
		t.Fatalf("canary not admitted: %+v", res.Changes)
	}
	// The canary went badly: the breaker reopens and rolls the canary back.
	e.ObserveProviderOutcome("s2.net", false, 900)
	if got := e.OpenBreakers(); len(got) != 1 {
		t.Fatalf("OpenBreakers = %v, want s2.net open again", got)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/index.html", page); out != page {
		t.Error("canary activation survived reopen")
	}
	if m := e.Metrics(); m.BreakerTrips < 2 {
		t.Errorf("BreakerTrips = %d, want >= 2 (manual + reopen)", m.BreakerTrips)
	}
}

func TestGuardBlockedAdvanceRevertsToDefault(t *testing.T) {
	// Two alternatives; the second's provider is quarantined, so when the
	// first turns bad the advance is blocked and the rule reverts to the
	// default instead.
	r := jqRule(0,
		`<script src="http://s2.net/jquery.js">`,
		`<script src="http://s3.org/jquery.js">`,
	)
	e, _ := guardEngine(t, []*rules.Rule{r})
	e.QuarantineProvider("s3.org")

	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	res, _ := e.HandleReport(loadReport("u1", map[string]float64{
		"s2.net":    5000,
		"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
	}))
	var deactivated, advanced bool
	for _, ch := range res.Changes {
		switch ch.Action {
		case "deactivate":
			deactivated = true
		case "advance":
			advanced = true
		}
	}
	if advanced {
		t.Fatalf("advanced onto quarantined s3.org: %+v", res.Changes)
	}
	if !deactivated {
		t.Fatalf("changes = %+v, want deactivate when advance blocked", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/", page); out != page {
		t.Error("page still rewritten after blocked advance")
	}
}

func TestGuardStatusSurface(t *testing.T) {
	plain, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := plain.GuardStatus(); ok {
		t.Error("GuardStatus ok on guardless engine")
	}
	if plain.GuardEnabled() {
		t.Error("GuardEnabled on guardless engine")
	}
	if got := plain.OpenBreakers(); got != nil {
		t.Errorf("OpenBreakers = %v on guardless engine", got)
	}

	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)})
	st, ok := e.GuardStatus()
	if !ok {
		t.Fatal("GuardStatus not ok with WithGuard")
	}
	if len(st.Breakers) != 0 || len(st.Quarantines) != 0 {
		t.Errorf("fresh guard status = %+v, want empty", st)
	}
	e.QuarantineProvider("s2.net")
	st, _ = e.GuardStatus()
	if len(st.Quarantines) != 1 || st.Quarantines[0] != "s2.net" {
		t.Errorf("Quarantines = %v, want [s2.net]", st.Quarantines)
	}
	if len(st.Breakers) != 1 || st.Breakers[0].State != "open" {
		t.Errorf("Breakers = %+v, want one open s2.net", st.Breakers)
	}
	e.ReleaseProvider("s2.net")
	if got := e.OpenBreakers(); len(got) != 0 {
		t.Errorf("OpenBreakers = %v after release", got)
	}
}

func TestGuardAlternateProviders(t *testing.T) {
	r := jqRule(0,
		`<script src="http://s2.net/jquery.js">`,
		`<script src="http://s3.org/jquery.js">`,
	)
	e, _ := guardEngine(t, []*rules.Rule{r})
	provs := e.AlternateProviders()
	for _, host := range []string{"s2.net", "s3.org"} {
		urls, ok := provs[host]
		if !ok || len(urls) == 0 {
			t.Errorf("AlternateProviders missing %s: %v", host, provs)
			continue
		}
		if !strings.Contains(urls[0], host) {
			t.Errorf("%s probe URL = %q", host, urls[0])
		}
	}
}

func TestServePanicIsolationServesUnmodifiedPage(t *testing.T) {
	// Panic isolation is always on — even without WithGuard a panicking
	// rewrite serves the unmodified page instead of crashing the request.
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	rules.SetApplyFailpoint(func(ruleID string) bool { return ruleID == "jquery" })
	defer rules.SetApplyFailpoint(nil)

	page := `<html><script src="http://s1.com/jquery.js"></script></html>`
	out, applied := e.ModifyPage("u1", "/index.html", page)
	if out != page {
		t.Errorf("panicking rewrite altered the page: %q", out)
	}
	if len(applied) != 0 {
		t.Errorf("applied = %+v, want none", applied)
	}
	if m := e.Metrics(); m.RewritePanics == 0 {
		t.Error("RewritePanics = 0, want > 0")
	}

	// Uninstalling the failpoint restores normal rewriting (no quarantine
	// ledger without guard).
	rules.SetApplyFailpoint(nil)
	if out, _ := e.ModifyPage("u1", "/index.html", page); !strings.Contains(out, "s2.net") {
		t.Errorf("rewrite not restored after failpoint removal: %q", out)
	}
}

func TestServePanicIsolationSparesHealthyRules(t *testing.T) {
	// Two active rules, one poisoned: the degraded sequential pass still
	// applies the healthy one.
	other := &rules.Rule{
		ID:           "other",
		Type:         rules.TypeReplaceSame,
		Default:      `<script src="http://s1.com/app.js">`,
		Alternatives: []string{`<script src="http://s2.net/app.js">`},
		Scope:        "*",
	}
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0), other})
	rep := slowS1Report("u1")
	if _, err := e.HandleReport(rep); err != nil {
		t.Fatal(err)
	}
	page := `<script src="http://s1.com/jquery.js"> <script src="http://s1.com/app.js">`
	if out, _ := e.ModifyPage("u1", "/index.html", page); strings.Contains(out, "s1.com") {
		t.Fatalf("both rules should be active; got %q", out)
	}

	rules.SetApplyFailpoint(func(ruleID string) bool { return ruleID == "jquery" })
	defer rules.SetApplyFailpoint(nil)
	out, _ := e.ModifyPage("u1", "/index.html", page)
	if !strings.Contains(out, `http://s1.com/jquery.js`) {
		t.Errorf("poisoned rule applied anyway: %q", out)
	}
	if !strings.Contains(out, `http://s2.net/app.js`) {
		t.Errorf("healthy rule lost in degraded pass: %q", out)
	}
}

func TestServePanicQuarantinesRule(t *testing.T) {
	// PanicThreshold 2 (guardEngine config): after two panicking serves the
	// rule is quarantined and its activations rolled back.
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	rules.SetApplyFailpoint(func(ruleID string) bool { return ruleID == "jquery" })
	defer rules.SetApplyFailpoint(nil)

	page := `<script src="http://s1.com/jquery.js">`
	for i := 0; i < 2; i++ {
		if out, _ := e.ModifyPage("u1", "/index.html", page); out != page {
			t.Fatalf("serve %d: page modified: %q", i, out)
		}
	}
	st, _ := e.GuardStatus()
	if len(st.QuarantinedRules) != 1 || st.QuarantinedRules[0] != "jquery" {
		t.Fatalf("QuarantinedRules = %v, want [jquery]", st.QuarantinedRules)
	}
	if m := e.Metrics(); m.RuleQuarantines != 1 {
		t.Errorf("RuleQuarantines = %d, want 1", m.RuleQuarantines)
	}

	// The rollback runs asynchronously; once it lands, the page stays
	// unmodified even with the failpoint removed.
	rules.SetApplyFailpoint(nil)
	deadline := time.Now().Add(2 * time.Second)
	for {
		if out, _ := e.ModifyPage("u1", "/index.html", page); out == page {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("quarantined rule's activation never rolled back")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Fresh activations of the quarantined rule are blocked.
	res, _ := e.HandleReport(slowS1Report("u2"))
	if len(res.Changes) != 0 {
		t.Errorf("quarantined rule re-activated: %+v", res.Changes)
	}
}

func TestGuardRuleQuarantineViaManualOverride(t *testing.T) {
	e, _ := guardEngine(t, []*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/", page); !strings.Contains(out, "s2.net") {
		t.Fatal("rule not active before quarantine")
	}
	e.QuarantineRule("jquery")
	st, _ := e.GuardStatus()
	if len(st.QuarantinedRules) != 1 || st.QuarantinedRules[0] != "jquery" {
		t.Fatalf("QuarantinedRules = %v", st.QuarantinedRules)
	}
	// Quarantining a rule rolls back its activations synchronously.
	if out, _ := e.ModifyPage("u1", "/", page); out != page {
		t.Error("quarantined rule still applied")
	}
	// And blocks fresh activations of the same rule.
	res, _ := e.HandleReport(slowS1Report("u2"))
	if len(res.Changes) != 0 {
		t.Errorf("quarantined rule activated: %+v", res.Changes)
	}
	e.ReleaseRule("jquery")
	res, _ = e.HandleReport(slowS1Report("u3"))
	if len(res.Changes) != 1 {
		t.Errorf("released rule did not activate: %+v", res.Changes)
	}
}
