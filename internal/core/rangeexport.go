package core

import "fmt"

// Per-user-range state transfer: the cluster gateway partitions users
// across backends by contiguous arcs of the 32-bit FNV-1a user-hash ring —
// the same hash that stripes users across an engine's shards. These
// functions let a node export or import just one arc, which is what makes
// live rebalancing and snapshot-driven node replacement possible: a standby
// can donate exactly the range a dead node owned, and a new node can
// ingest it without disturbing users it already holds.
//
// A whole-space range (Lo == Hi) degenerates to the whole-engine paths:
// ExportStateRange of the whole space is byte-identical to ExportState, so
// the union of a disjoint cover of the ring carries exactly the profiles of
// a whole-engine export.

// HashRange is a half-open arc [Lo, Hi) of the 32-bit user-hash ring
// (UserHash space). Hi may be numerically below Lo, in which case the arc
// wraps through zero. Lo == Hi denotes the whole ring — there is no empty
// HashRange, because an empty transfer has no use.
type HashRange struct {
	Lo uint32 `json:"lo"`
	Hi uint32 `json:"hi"`
}

// Whole reports whether the range covers the entire hash ring.
func (r HashRange) Whole() bool { return r.Lo == r.Hi }

// Contains reports whether a user-hash value falls inside the arc.
func (r HashRange) Contains(h uint32) bool {
	switch {
	case r.Lo == r.Hi:
		return true
	case r.Lo < r.Hi:
		return h >= r.Lo && h < r.Hi
	default: // wraps through zero
		return h >= r.Lo || h < r.Hi
	}
}

// String renders the arc in the [lo,hi) hex form used in errors and logs.
func (r HashRange) String() string {
	if r.Whole() {
		return "[whole ring]"
	}
	return fmt.Sprintf("[%08x,%08x)", r.Lo, r.Hi)
}

// EqualRanges splits the hash ring into n contiguous, disjoint, equal-width
// arcs whose union is the whole ring — the partition a gateway uses to
// assign users to n backends. n <= 0 yields nil; n == 1 yields the
// whole-space range.
func EqualRanges(n int) []HashRange {
	if n <= 0 {
		return nil
	}
	if n == 1 {
		return []HashRange{{}}
	}
	step := uint64(1<<32) / uint64(n)
	out := make([]HashRange, n)
	for i := range out {
		out[i].Lo = uint32(uint64(i) * step)
		if i < n-1 {
			out[i].Hi = uint32(uint64(i+1) * step)
		}
		// The last arc's Hi stays 0: [Lo, 2^32) expressed on the ring.
	}
	return out
}

// RangeFor returns which of a disjoint cover's arcs owns the user. The
// ranges must cover the ring (as EqualRanges' do); -1 means they do not.
func RangeFor(userID string, ranges []HashRange) int {
	h := userHash(userID)
	for i, r := range ranges {
		if r.Contains(h) {
			return i
		}
	}
	return -1
}

// ExportStateRange serialises the per-user state of one arc of the hash
// ring as JSON. The guard and population sections are engine-global and are
// carried in full by every range export — a partial export is still enough
// to rebuild a node's protective state. Exporting the whole-space range is
// byte-identical to ExportState.
func (e *Engine) ExportStateRange(r HashRange) ([]byte, error) {
	return e.exportStateRange(r)
}

// ExportSnapshotRange is ExportStateRange wrapped in the checksummed
// OAKSNAP2 envelope, the form shipped between nodes.
func (e *Engine) ExportSnapshotRange(r HashRange) ([]byte, error) {
	payload, err := e.exportStateRange(r)
	if err != nil {
		return nil, err
	}
	return wrapSnapshot(payload), nil
}

// ImportStateRange restores one arc of the hash ring from a range (or
// whole-engine) export, replacing existing profiles inside the arc and
// leaving every profile outside it untouched. The payload is authoritative
// for the arc: in-range users absent from it are removed. Profiles that
// hash outside the arc fail the import with ErrCorruptState before any
// state is touched.
//
// Unlike ImportState, the engine-global guard and population sections are
// only overwritten when the payload carries them — a range donated by a
// peer updates this node's breaker and degraded-provider state, while a
// stripped payload tops up profiles without clobbering local protective
// state. The swap holds every shard lock, so readers never see a
// half-imported arc.
func (e *Engine) ImportStateRange(r HashRange, data []byte) error {
	st, err := decodeState(data)
	if err != nil {
		return err
	}
	fresh, freshIdx, err := e.buildImport(st, r)
	if err != nil {
		return err
	}

	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	spilledLive := int64(0)
	for i, sh := range e.shards {
		// Evict the arc's current population: profiles, their provider-index
		// entries, and — the payload is authoritative for the arc — any
		// spilled records of in-range users.
		for uid, prof := range sh.profiles {
			if r.Contains(userHash(uid)) {
				delete(sh.profiles, uid)
				if e.spill != nil {
					sh.residentBytes.Add(-int64(prof.sizeEst))
				}
			}
		}
		if sh.spilled != nil {
			e.mergeSpillLocked(sh, fresh[i], freshIdx[i], false, r)
			spilledLive += int64(len(sh.spilled))
		}
		for host, users := range sh.provIndex {
			for uid := range users {
				if r.Contains(userHash(uid)) {
					delete(users, uid)
				}
			}
			if len(users) == 0 {
				delete(sh.provIndex, host)
			}
		}
		// Install the payload's profiles (all verified in-range above).
		for uid, prof := range fresh[i] {
			sh.profiles[uid] = prof
			if e.spill != nil {
				sh.residentBytes.Add(int64(prof.sizeEst))
			}
		}
		for host, users := range freshIdx[i] {
			if sh.provIndex == nil {
				sh.provIndex = make(map[string]map[string]map[string]struct{})
			}
			dst := sh.provIndex[host]
			if dst == nil {
				dst = make(map[string]map[string]struct{}, len(users))
				sh.provIndex[host] = dst
			}
			for uid, set := range users {
				dst[uid] = set
			}
		}
		sh.users.Set(int64(len(sh.profiles)))
	}
	if st.Guard != nil && e.guard != nil {
		e.guard.Import(st.Guard)
	}
	if st.Population != nil {
		e.importPop(st.Population)
	}
	if e.spill != nil {
		e.spill.spilledUsers.Set(spilledLive)
	}
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	// The donated arc can push the node over its residency cap; evict back
	// under it.
	if e.spill != nil {
		for _, sh := range e.shards {
			e.enforceResidency(sh, "")
		}
	}
	return nil
}
