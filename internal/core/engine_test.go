package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"oak/internal/report"
	"oak/internal/rules"
)

// testClock is a controllable time source.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.t = c.t.Add(d)
}

// jqRule is the paper's example rule: identical jquery on an alternate host.
func jqRule(ttl time.Duration, alts ...string) *rules.Rule {
	if len(alts) == 0 {
		alts = []string{`<script src="http://s2.net/jquery.js">`}
	}
	return &rules.Rule{
		ID:           "jquery",
		Type:         rules.TypeReplaceSame,
		Default:      `<script src="http://s1.com/jquery.js">`,
		Alternatives: alts,
		TTL:          ttl,
		Scope:        "*",
	}
}

// loadReport builds a report where serverTimes maps host -> mean small time.
// Every host resolves to an address "ip-<host>".
func loadReport(user string, serverTimes map[string]float64) *report.Report {
	r := &report.Report{UserID: user, Page: "/index.html"}
	for host, ms := range serverTimes {
		r.Entries = append(r.Entries, report.Entry{
			URL:            fmt.Sprintf("http://%s/obj.js", host),
			ServerAddr:     "ip-" + host,
			SizeBytes:      1024,
			DurationMillis: ms,
			Kind:           report.KindScript,
		})
	}
	return r
}

// slowS1Report: s1.com badly under-performs four healthy peers.
func slowS1Report(user string) *report.Report {
	return loadReport(user, map[string]float64{
		"s1.com":    2000,
		"a.example": 100,
		"b.example": 110,
		"c.example": 105,
		"d.example": 95,
	})
}

func TestEngineActivatesOnViolation(t *testing.T) {
	clock := newTestClock()
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if err != nil {
		t.Fatal(err)
	}
	res, err := e.HandleReport(slowS1Report("u1"))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 1 || res.Violations[0].Server.Addr != "ip-s1.com" {
		t.Fatalf("violations = %+v, want ip-s1.com", res.Violations)
	}
	if len(res.Changes) != 1 || res.Changes[0].Action != "activate" || res.Changes[0].RuleID != "jquery" {
		t.Fatalf("changes = %+v, want jquery activate", res.Changes)
	}
	if res.Changes[0].Level != MatchDirect {
		t.Errorf("match level = %v, want direct", res.Changes[0].Level)
	}

	page := `<html><script src="http://s1.com/jquery.js"></script></html>`
	out, applied := e.ModifyPage("u1", "/index.html", page)
	if !strings.Contains(out, "s2.net") || strings.Contains(out, "s1.com") {
		t.Errorf("page not rewritten: %q", out)
	}
	if len(applied) != 1 || applied[0].Replacements != 1 {
		t.Errorf("applied = %+v", applied)
	}
}

func TestEnginePerUserIsolation(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	page := `<script src="http://s1.com/jquery.js">`
	// u1 gets the rewrite; u2 (never reported) gets the default page.
	out1, _ := e.ModifyPage("u1", "/index.html", page)
	out2, _ := e.ModifyPage("u2", "/index.html", page)
	if !strings.Contains(out1, "s2.net") {
		t.Error("u1 page not rewritten")
	}
	if out2 != page {
		t.Error("u2 page modified despite no reports — per-user isolation broken")
	}
}

func TestEngineNoViolationNoActivation(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	res, err := e.HandleReport(loadReport("u1", map[string]float64{
		"s1.com": 100, "a.example": 105, "b.example": 95, "c.example": 110,
	}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 || len(res.Changes) != 0 {
		t.Errorf("healthy load produced %+v", res)
	}
}

func TestEngineTTLExpiry(t *testing.T) {
	clock := newTestClock()
	e, _ := NewEngine([]*rules.Rule{jqRule(time.Hour)}, WithClock(clock.Now))
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/", page); !strings.Contains(out, "s2.net") {
		t.Fatal("rule not active after activation")
	}
	clock.Advance(2 * time.Hour)
	if out, _ := e.ModifyPage("u1", "/", page); out != page {
		t.Error("rule still applied after TTL expiry")
	}
	// The next report prunes and logs the expiry.
	res, _ := e.HandleReport(loadReport("u1", map[string]float64{
		"a.example": 100, "b.example": 100, "c.example": 100,
	}))
	var expired bool
	for _, ch := range res.Changes {
		if ch.Action == "expire" && ch.RuleID == "jquery" {
			expired = true
		}
	}
	if !expired {
		t.Errorf("changes = %+v, want expire record", res.Changes)
	}
}

func TestEngineMinViolationsPolicy(t *testing.T) {
	e, _ := NewEngine(
		[]*rules.Rule{jqRule(0)},
		WithPolicy(Policy{MinViolations: 3}),
	)
	for i := 1; i <= 2; i++ {
		res, _ := e.HandleReport(slowS1Report("u1"))
		if len(res.Changes) != 0 {
			t.Fatalf("report %d: activated early: %+v", i, res.Changes)
		}
	}
	res, _ := e.HandleReport(slowS1Report("u1"))
	if len(res.Changes) != 1 || res.Changes[0].Action != "activate" {
		t.Fatalf("3rd violation: changes = %+v, want activation", res.Changes)
	}
}

func TestEngineRuleHistoryRevert(t *testing.T) {
	// Single alternative; after switching, the alternate performs even
	// worse than the default did -> revert (deactivate).
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	// Now s2.net (the alternate) violates with a larger distance (default
	// s1 was 2000 vs median ~102; distance ~1900; s2 now 5000).
	res, _ := e.HandleReport(loadReport("u1", map[string]float64{
		"s2.net":    5000,
		"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
	}))
	var deactivated bool
	for _, ch := range res.Changes {
		if ch.Action == "deactivate" && ch.RuleID == "jquery" {
			deactivated = true
		}
	}
	if !deactivated {
		t.Fatalf("changes = %+v, want deactivate", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/", page); out != page {
		t.Error("page still rewritten after revert")
	}
}

func TestEngineRuleHistoryKeep(t *testing.T) {
	// The alternate violates, but by less than the default did -> keep it.
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil { // s1 distance ~1895
		t.Fatal(err)
	}
	res, _ := e.HandleReport(loadReport("u1", map[string]float64{
		"s2.net":    200, // violates (median ~100, MAD ~5) but distance only ~98
		"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
	}))
	var kept bool
	for _, ch := range res.Changes {
		if ch.Action == "keep" && ch.RuleID == "jquery" {
			kept = true
		}
		if ch.Action == "deactivate" {
			t.Fatalf("rule deactivated though alternate beats default: %+v", res.Changes)
		}
	}
	if !kept {
		t.Fatalf("changes = %+v, want keep", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/", page); !strings.Contains(out, "s2.net") {
		t.Error("kept rule no longer applied")
	}
}

func TestEngineRuleHistoryAdvance(t *testing.T) {
	// Two alternatives; when the first alternate turns bad, progress to the
	// second instead of reverting.
	r := jqRule(0,
		`<script src="http://s2.net/jquery.js">`,
		`<script src="http://s3.org/jquery.js">`,
	)
	e, _ := NewEngine([]*rules.Rule{r})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	res, _ := e.HandleReport(loadReport("u1", map[string]float64{
		"s2.net":    5000,
		"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
	}))
	var advanced bool
	for _, ch := range res.Changes {
		if ch.Action == "advance" && ch.AltIndex == 1 {
			advanced = true
		}
	}
	if !advanced {
		t.Fatalf("changes = %+v, want advance to alt 1", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	out, _ := e.ModifyPage("u1", "/", page)
	if !strings.Contains(out, "s3.org") {
		t.Errorf("page = %q, want s3.org (second alternative)", out)
	}
}

func TestEngineScopeRestrictsActivationAndApplication(t *testing.T) {
	r := jqRule(0)
	r.Scope = "/shop/*"
	e, _ := NewEngine([]*rules.Rule{r})
	// Violation reported from an out-of-scope page: no activation.
	rep := slowS1Report("u1")
	rep.Page = "/index.html"
	res, _ := e.HandleReport(rep)
	if len(res.Changes) != 0 {
		t.Fatalf("out-of-scope activation: %+v", res.Changes)
	}
	// Violation from an in-scope page activates, and application honours
	// scope per page.
	rep2 := slowS1Report("u1")
	rep2.Page = "/shop/cart.html"
	res, _ = e.HandleReport(rep2)
	if len(res.Changes) != 1 {
		t.Fatalf("in-scope changes = %+v", res.Changes)
	}
	page := `<script src="http://s1.com/jquery.js">`
	if out, _ := e.ModifyPage("u1", "/shop/cart.html", page); !strings.Contains(out, "s2.net") {
		t.Error("in-scope page not rewritten")
	}
	if out, _ := e.ModifyPage("u1", "/index.html", page); out != page {
		t.Error("out-of-scope page rewritten")
	}
}

func TestEngineInvalidReportRejected(t *testing.T) {
	e, _ := NewEngine(nil)
	if _, err := e.HandleReport(&report.Report{}); err == nil {
		t.Error("HandleReport(invalid) = nil error")
	}
}

func TestEngineRejectsBadRules(t *testing.T) {
	if _, err := NewEngine([]*rules.Rule{{ID: "", Type: rules.TypeRemove, Default: "x"}}); err == nil {
		t.Error("NewEngine(invalid rule) = nil error")
	}
	if _, err := NewEngine([]*rules.Rule{
		{ID: "dup", Type: rules.TypeRemove, Default: "x"},
		{ID: "dup", Type: rules.TypeRemove, Default: "y"},
	}); err == nil {
		t.Error("NewEngine(duplicate ids) = nil error")
	}
}

func TestEngineSnapshot(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, ok := e.Snapshot("nobody"); ok {
		t.Error("Snapshot(unknown) = ok")
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	snap, ok := e.Snapshot("u1")
	if !ok {
		t.Fatal("Snapshot(u1) not found")
	}
	if len(snap.ActiveRules) != 1 || snap.ActiveRules[0] != "jquery" {
		t.Errorf("ActiveRules = %v", snap.ActiveRules)
	}
	if snap.Violations["ip-s1.com"] != 1 {
		t.Errorf("Violations = %v", snap.Violations)
	}
	if e.Users() != 1 {
		t.Errorf("Users = %d, want 1", e.Users())
	}
}

func TestEngineLedgerRecordsActivations(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	for _, u := range []string{"u1", "u2", "u3"} {
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
	}
	// u4 reports healthy: counted as a user, no activations.
	if _, err := e.HandleReport(loadReport("u4", map[string]float64{
		"a.example": 100, "b.example": 100, "c.example": 100,
	})); err != nil {
		t.Fatal(err)
	}
	stats := e.Ledger().Stats()
	if len(stats) != 1 || stats[0].RuleID != "jquery" {
		t.Fatalf("ledger stats = %+v", stats)
	}
	if stats[0].Users != 3 || stats[0].UserFraction != 0.75 {
		t.Errorf("stat = %+v, want 3 users / 0.75 fraction", stats[0])
	}
}

func TestEngineHashSelector(t *testing.T) {
	r := jqRule(0, "ALT0", "ALT1", "ALT2", "ALT3")
	e, _ := NewEngine([]*rules.Rule{r}, WithPolicy(Policy{SelectAlternative: HashSelector}))
	seen := make(map[int]bool)
	for i := 0; i < 20; i++ {
		u := fmt.Sprintf("user-%d", i)
		if _, err := e.HandleReport(slowS1Report(u)); err != nil {
			t.Fatal(err)
		}
		acts := e.ActiveRules(u, "/index.html")
		if len(acts) != 1 {
			t.Fatalf("user %s: %d active rules", u, len(acts))
		}
		seen[acts[0].AltIndex] = true
	}
	if len(seen) < 2 {
		t.Errorf("hash selector used %d alternatives across 20 users, want >=2", len(seen))
	}
}

func TestEngineConcurrentUse(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			u := fmt.Sprintf("user-%d", i%4)
			for j := 0; j < 25; j++ {
				if _, err := e.HandleReport(slowS1Report(u)); err != nil {
					t.Errorf("HandleReport: %v", err)
					return
				}
				e.ModifyPage(u, "/index.html", `<script src="http://s1.com/jquery.js">`)
				e.Snapshot(u)
				e.Ledger().Stats()
			}
		}(i)
	}
	wg.Wait()
	if e.Users() != 4 {
		t.Errorf("Users = %d, want 4", e.Users())
	}
}

func TestEngineLogf(t *testing.T) {
	var mu sync.Mutex
	var lines []string
	logf := func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		lines = append(lines, fmt.Sprintf(format, args...))
	}
	e, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithLogf(logf))
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	mu.Lock()
	defer mu.Unlock()
	if len(lines) == 0 || !strings.Contains(strings.Join(lines, "\n"), "activate") {
		t.Errorf("log lines = %v, want activation log", lines)
	}
}

func TestEngineSetRulesReplaces(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	other := &rules.Rule{ID: "other", Type: rules.TypeRemove, Default: "X", Scope: "*"}
	if err := e.SetRules([]*rules.Rule{other}); err != nil {
		t.Fatal(err)
	}
	got := e.Rules()
	if len(got) != 1 || got[0].ID != "other" {
		t.Errorf("Rules() = %v", got)
	}
}

func TestEngineSetRulesKeepsStaleActivationsHarmless(t *testing.T) {
	// Replacing the rule set does not corrupt existing profiles: stale
	// activations keep applying their captured rule until expiry (they are
	// the user's current page configuration), and new activations only
	// come from the new set.
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	newRule := &rules.Rule{ID: "new", Type: rules.TypeRemove, Default: "XX", Scope: "*"}
	if err := e.SetRules([]*rules.Rule{newRule}); err != nil {
		t.Fatal(err)
	}
	page := `<script src="http://s1.com/jquery.js"> XX`
	out, _ := e.ModifyPage("u1", "/index.html", page)
	if !strings.Contains(out, "s2.net") {
		t.Error("stale activation stopped applying after SetRules")
	}
	// A fresh user can only trigger the new rule set.
	res, err := e.HandleReport(slowS1Report("u2"))
	if err != nil {
		t.Fatal(err)
	}
	for _, ch := range res.Changes {
		if ch.RuleID == "jquery" {
			t.Error("removed rule activated for a fresh user")
		}
	}
}

func TestEngineReportWithSingleServer(t *testing.T) {
	// A report naming one server can never produce a violation (nothing to
	// be relative to) and must not panic or activate anything.
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	res, err := e.HandleReport(loadReport("solo", map[string]float64{"s1.com": 9999}))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 || len(res.Changes) != 0 {
		t.Errorf("single-server report produced %+v", res)
	}
}
