package core

import (
	"fmt"
	"sort"
	"time"

	"oak/internal/guard"
	"oak/internal/htmlscan"
	"oak/internal/obs"
	"oak/internal/report"
	"oak/internal/rules"
)

// Guard wiring: population-level guardrails over the engine's own decisions.
// The per-user control loop only protects a user after they personally
// suffered a bad alternate; the guard pools alternate-provider outcomes
// across every report (plus an optional active prober) into per-provider
// circuit breakers (internal/guard) and acts engine-wide:
//
//   - every activation (and alternative advance) consults the target
//     provider's breaker first — an open breaker blocks it, a half-open one
//     admits it as a bounded canary;
//   - a breaker trip bulk-deactivates all existing activations pointing at
//     the provider, across every shard, via the provider→activations index
//     each shard maintains;
//   - the serve path isolates rewrite panics (compiled applier → sequential
//     per-rule fallback → unmodified page) and quarantines a rule implicated
//     in repeated panics.
//
// Lock discipline: the guard's own mutex is a leaf — Allow/observe calls are
// safe under a shard lock — but acting on a trip locks shards one at a time,
// so ObserveProviderOutcome must only ever be called with NO shard lock
// held. process() therefore collects outcomes under the shard lock and
// observes them after unlocking.

// GuardConfig enables and tunes the engine's guardrails (WithGuard). Zero
// fields take the guard package defaults.
type GuardConfig struct {
	// TripThreshold is how many consecutive bad population-level outcomes
	// trip a provider's breaker (default guard.DefaultTripThreshold).
	TripThreshold int
	// OpenFor is the quarantine cool-down before canaries are admitted
	// (default guard.DefaultOpenFor).
	OpenFor time.Duration
	// HalfOpenCanaries bounds canary activations per half-open episode
	// (default guard.DefaultHalfOpenCanaries).
	HalfOpenCanaries int
	// CloseAfter is how many good canary outcomes close a breaker
	// (default guard.DefaultCloseAfter).
	CloseAfter int
	// PanicThreshold is how many rewrite panics quarantine a rule
	// (default guard.DefaultPanicThreshold).
	PanicThreshold int
}

// WithGuard enables the per-provider circuit breakers and rule quarantine.
// Without it the engine behaves exactly as before (no index maintenance, no
// breaker checks); rewrite panic isolation is always on.
func WithGuard(cfg GuardConfig) Option {
	return func(e *Engine) { e.guardConfig = &cfg }
}

// initGuard builds the guard set from the stored config. Called by NewEngine
// after options run (so WithClock is respected) and before SetRules (so the
// alternate-host index is built for the initial rule set).
func (e *Engine) initGuard() {
	if e.guardConfig == nil {
		return
	}
	e.guard = guard.New(guard.Config{
		TripThreshold:    e.guardConfig.TripThreshold,
		OpenFor:          e.guardConfig.OpenFor,
		HalfOpenCanaries: e.guardConfig.HalfOpenCanaries,
		CloseAfter:       e.guardConfig.CloseAfter,
		PanicThreshold:   e.guardConfig.PanicThreshold,
		Now:              func() time.Time { return e.now() },
	})
}

// GuardEnabled reports whether the engine was built with WithGuard.
func (e *Engine) GuardEnabled() bool { return e.guard != nil }

// altHostsOf extracts the provider hostnames an alternative's text points at
// (src/href attributes plus free-text host mentions — the same surfaces
// MatchesAlternate recognises).
func altHostsOf(alt string) []string {
	if alt == "" {
		return nil
	}
	seen := make(map[string]bool)
	var hosts []string
	for _, h := range htmlscan.ExtractSrcHosts(alt) {
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	for _, h := range htmlscan.HostsInText(alt) {
		if !seen[h] {
			seen[h] = true
			hosts = append(hosts, h)
		}
	}
	return hosts
}

// rebuildAltHosts precomputes rule ID → per-alternative provider host lists
// for the current rule set, so activation-time breaker checks never rescan
// alternative text. Caller holds rulesMu; no-op on guardless engines.
func (e *Engine) rebuildAltHosts() {
	if e.guard == nil {
		return
	}
	m := make(map[string][][]string, len(e.rules))
	for _, r := range e.rules {
		if r.Type == rules.TypeRemove || len(r.Alternatives) == 0 {
			continue // removal has no target provider
		}
		per := make([][]string, len(r.Alternatives))
		for i, alt := range r.Alternatives {
			per[i] = altHostsOf(alt)
		}
		m[r.ID] = per
	}
	e.altHosts.Store(&m)
}

// altHostsFor returns the provider hostnames of one (rule, alternative)
// activation target, nil when there are none (Type 1 removals, host-less
// alternatives, guardless engines).
func (e *Engine) altHostsFor(ruleID string, altIdx int) []string {
	mp := e.altHosts.Load()
	if mp == nil {
		return nil
	}
	per, ok := (*mp)[ruleID]
	if !ok || len(per) == 0 {
		return nil
	}
	// Mirror Rule.Alternative's index clamping.
	if altIdx < 0 {
		altIdx = 0
	}
	if altIdx >= len(per) {
		altIdx = len(per) - 1
	}
	return per[altIdx]
}

// guardAdmit consults the guard before activating (rule, altIdx): the rule
// must not be quarantined and every provider the alternative points at must
// admit. canary marks an admission that consumed a half-open canary slot (of
// any provider). Safe under a shard lock (the guard mutex is a leaf).
func (e *Engine) guardAdmit(ruleID string, altIdx int) (admit, canary bool, blockedBy string) {
	if e.guard == nil {
		return true, false, ""
	}
	if e.guard.RuleQuarantined(ruleID) {
		return false, false, "rule:" + ruleID
	}
	for _, h := range e.altHostsFor(ruleID, altIdx) {
		d := e.guard.Allow(h)
		if !d.Admit {
			return false, canary, h
		}
		if d.Canary {
			canary = true
		}
	}
	return true, canary, ""
}

// indexActivation records (user, rule@altIdx) under each provider the
// alternative points at. Caller holds sh.mu for writing; no-op without a
// guard.
func (e *Engine) indexActivation(sh *shard, userID, ruleID string, altIdx int) {
	if e.guard == nil {
		return
	}
	hosts := e.altHostsFor(ruleID, altIdx)
	if len(hosts) == 0 {
		return
	}
	if sh.provIndex == nil {
		sh.provIndex = make(map[string]map[string]map[string]struct{})
	}
	for _, h := range hosts {
		users := sh.provIndex[h]
		if users == nil {
			users = make(map[string]map[string]struct{})
			sh.provIndex[h] = users
		}
		set := users[userID]
		if set == nil {
			set = make(map[string]struct{})
			users[userID] = set
		}
		set[ruleID] = struct{}{}
	}
}

// unindexActivation removes (user, rule@altIdx) from the provider index.
// Caller holds sh.mu for writing; no-op without a guard.
func (e *Engine) unindexActivation(sh *shard, userID, ruleID string, altIdx int) {
	if e.guard == nil || sh.provIndex == nil {
		return
	}
	for _, h := range e.altHostsFor(ruleID, altIdx) {
		users := sh.provIndex[h]
		if users == nil {
			continue
		}
		if set := users[userID]; set != nil {
			delete(set, ruleID)
			if len(set) == 0 {
				delete(users, userID)
			}
		}
		if len(users) == 0 {
			delete(sh.provIndex, h)
		}
	}
}

// providerOutcome is one population-level signal extracted from a report
// under the shard lock and observed after it is released.
type providerOutcome struct {
	provider string
	good     bool
	deltaMs  float64
}

// collectOutcomes derives per-provider outcomes from one report for the
// user's live activations: a provider an active alternative points at was
// either flagged as a violator in this report (bad, with the violation
// distance) or served its objects unremarkably (good). Providers the report
// never touched yield nothing. Must run before reconciliation mutates the
// profile; caller holds sh.mu.
func (e *Engine) collectOutcomes(prof *Profile, now time.Time, servers []*report.ServerPerf, violated map[string]float64) []providerOutcome {
	if e.guard == nil || len(prof.active) == 0 {
		return nil
	}
	type agg struct {
		good    bool
		bad     bool
		deltaMs float64
	}
	byProv := make(map[string]*agg)
	for _, a := range prof.active {
		if a.Expired(now) {
			continue
		}
		for _, h := range e.altHostsFor(a.Rule.ID, a.AltIndex) {
			for _, s := range servers {
				if !s.HasHost(h) {
					continue
				}
				g := byProv[h]
				if g == nil {
					g = &agg{}
					byProv[h] = g
				}
				if d, bad := violated[s.Addr]; bad {
					g.bad = true
					if d > g.deltaMs {
						g.deltaMs = d
					}
				} else {
					g.good = true
				}
			}
		}
	}
	if len(byProv) == 0 {
		return nil
	}
	provs := make([]string, 0, len(byProv))
	for p := range byProv {
		provs = append(provs, p)
	}
	sort.Strings(provs)
	out := make([]providerOutcome, 0, len(provs))
	for _, p := range provs {
		g := byProv[p]
		// Bad wins: one violating server on the provider outweighs another
		// answering fine (partial failure is failure for the user hit by it).
		out = append(out, providerOutcome{provider: p, good: !g.bad, deltaMs: g.deltaMs})
	}
	return out
}

// ObserveProviderOutcome feeds one population-level outcome for an alternate
// provider into its breaker and acts on the resulting transition: a trip
// (or half-open reopen) bulk-deactivates every activation pointing at the
// provider across all shards; a close re-admits it. This is also the sink
// the active prober reports through, so probe results and user reports drive
// the same machinery.
//
// Callers must not hold any shard lock: the rollback locks shards itself.
// No-op on guardless engines.
func (e *Engine) ObserveProviderOutcome(provider string, good bool, deltaMs float64) {
	if e.guard == nil || provider == "" {
		return
	}
	switch e.guard.Observe(provider, good, deltaMs) {
	case guard.TransitionTrip, guard.TransitionReopen:
		e.tripProvider(provider, fmt.Sprintf("breaker tripped (delta %.1fms)", deltaMs))
	case guard.TransitionClose:
		e.metrics.breakerCloses.Inc()
		if e.tracing() {
			e.trace(obs.Event{Kind: obs.EventReadmit, Provider: provider,
				Detail: "breaker closed after good canary outcomes"})
		}
	}
}

// tripProvider does the engine-side bookkeeping of a breaker trip: metrics,
// trace, and the cross-shard bulk rollback. Caller must not hold shard locks.
func (e *Engine) tripProvider(provider, detail string) {
	e.metrics.breakerTrips.Inc()
	if e.tracing() {
		e.trace(obs.Event{Kind: obs.EventQuarantine, Provider: provider, Detail: detail})
	}
	n := e.rollbackProvider(provider)
	if n > 0 && e.tracing() {
		e.trace(obs.Event{Kind: obs.EventRollback, Provider: provider,
			Detail: fmt.Sprintf("%d activations rolled back", n)})
	}
}

// rollbackProvider deactivates every activation pointing at the provider,
// shard by shard, returning how many were removed. Each shard is write-
// locked only while its own entries are processed.
func (e *Engine) rollbackProvider(provider string) int {
	if e.guard == nil {
		return 0
	}
	total := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		users := sh.provIndex[provider]
		if len(users) == 0 {
			sh.mu.Unlock()
			continue
		}
		// Snapshot the entries first: unindexActivation mutates the very
		// maps being ranged over.
		type entry struct{ user, rule string }
		entries := make([]entry, 0, len(users))
		for uid, set := range users {
			for rid := range set {
				entries = append(entries, entry{user: uid, rule: rid})
			}
		}
		for _, en := range entries {
			prof, ok := sh.profiles[en.user]
			if !ok {
				continue
			}
			a := prof.activeRule(en.rule)
			if a == nil {
				continue
			}
			e.unindexActivation(sh, en.user, en.rule, a.AltIndex)
			prof.deactivate(en.rule)
			e.metrics.ruleDeactivations.Add(1)
			e.metrics.bulkDeactivations.Inc()
			total++
			if e.tracing() {
				e.trace(obs.Event{Kind: obs.EventRollback, User: en.user,
					RuleID: en.rule, Provider: provider, Detail: "breaker trip"})
			}
		}
		// Whatever is left under the provider key is stale (activations the
		// profiles no longer hold); drop it wholesale.
		delete(sh.provIndex, provider)
		sh.mu.Unlock()
	}
	return total
}

// rollbackRule deactivates the rule for every user holding it, across all
// shards (rule quarantine; there is no per-rule index — quarantines are rare
// and a full scan is acceptable). Returns how many activations were removed.
// Caller must not hold shard locks.
func (e *Engine) rollbackRule(ruleID string) int {
	total := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		for uid, prof := range sh.profiles {
			a := prof.activeRule(ruleID)
			if a == nil {
				continue
			}
			e.unindexActivation(sh, uid, ruleID, a.AltIndex)
			prof.deactivate(ruleID)
			e.metrics.ruleDeactivations.Add(1)
			e.metrics.bulkDeactivations.Inc()
			total++
			if e.tracing() {
				e.trace(obs.Event{Kind: obs.EventRollback, User: uid,
					RuleID: ruleID, Detail: "rule quarantine"})
			}
		}
		sh.mu.Unlock()
	}
	return total
}

// noteRulePanic attributes one rewrite panic to a rule and, when the panic
// count crosses the quarantine threshold, quarantines the rule and rolls its
// activations back asynchronously (the caller sits under a shard read lock,
// and the rollback needs write locks). No-op on guardless engines — panic
// isolation still serves the safe page, there is just no quarantine ledger.
func (e *Engine) noteRulePanic(ruleID string) {
	if e.guard == nil || ruleID == "" {
		return
	}
	if !e.guard.ObserveRulePanic(ruleID) {
		return
	}
	e.metrics.ruleQuarantines.Inc()
	if e.tracing() {
		e.trace(obs.Event{Kind: obs.EventQuarantine, RuleID: ruleID,
			Detail: "rule quarantined after repeated rewrite panics"})
	}
	go e.rollbackRule(ruleID)
}

// QuarantineProvider trips the provider's breaker manually (operator
// override). Existing activations on the provider are rolled back exactly as
// on an automatic trip. No-op on guardless engines.
func (e *Engine) QuarantineProvider(provider string) {
	if e.guard == nil || provider == "" {
		return
	}
	if e.guard.ForceOpen(provider) {
		e.tripProvider(provider, "manual quarantine")
	}
}

// ReleaseProvider force-closes the provider's breaker (operator override).
// No-op on guardless engines.
func (e *Engine) ReleaseProvider(provider string) {
	if e.guard == nil || provider == "" {
		return
	}
	if e.guard.ForceClose(provider) {
		e.metrics.breakerCloses.Inc()
		if e.tracing() {
			e.trace(obs.Event{Kind: obs.EventReadmit, Provider: provider,
				Detail: "manual release"})
		}
	}
}

// QuarantineRule quarantines a rule manually, rolling back its activations.
// No-op on guardless engines.
func (e *Engine) QuarantineRule(ruleID string) {
	if e.guard == nil || ruleID == "" {
		return
	}
	if !e.guard.QuarantineRule(ruleID) {
		return
	}
	e.metrics.ruleQuarantines.Inc()
	if e.tracing() {
		e.trace(obs.Event{Kind: obs.EventQuarantine, RuleID: ruleID,
			Detail: "manual rule quarantine"})
	}
	e.rollbackRule(ruleID)
}

// ReleaseRule lifts a rule's quarantine. No-op on guardless engines.
func (e *Engine) ReleaseRule(ruleID string) {
	if e.guard == nil {
		return
	}
	e.guard.ReleaseRule(ruleID)
}

// GuardStatus is the guard's externally visible state, served under "guard"
// in /oak/metrics.
type GuardStatus struct {
	// Breakers is every tracked provider breaker, sorted by provider.
	Breakers []guard.ProviderStatus `json:"breakers,omitempty"`
	// Quarantines lists providers whose breakers are open.
	Quarantines []string `json:"quarantines,omitempty"`
	// QuarantinedRules lists rules quarantined after rewrite panics (or
	// manually).
	QuarantinedRules []string `json:"quarantined_rules,omitempty"`
	// CanaryActivations counts activations admitted through half-open
	// canary budgets.
	CanaryActivations uint64 `json:"canary_activations"`
	// RewritePanics counts panics recovered on the serve path.
	RewritePanics uint64 `json:"rewrite_panics"`
}

// GuardStatus snapshots the guard state; ok is false on guardless engines.
func (e *Engine) GuardStatus() (GuardStatus, bool) {
	if e.guard == nil {
		return GuardStatus{}, false
	}
	return GuardStatus{
		Breakers:          e.guard.Snapshot(),
		Quarantines:       e.guard.OpenProviders(),
		QuarantinedRules:  e.guard.QuarantinedRules(),
		CanaryActivations: e.metrics.canaryActivations.Value(),
		RewritePanics:     e.metrics.rewritePanics.Value(),
	}, true
}

// OpenBreakers lists providers currently quarantined by an open breaker
// (nil on guardless engines). Healthz surfaces this.
func (e *Engine) OpenBreakers() []string {
	if e.guard == nil {
		return nil
	}
	return e.guard.OpenProviders()
}

// AlternateProviders maps each alternate provider hostname referenced by the
// current rule set to candidate probe URLs found in the alternatives' text.
// This is the prober's target set: probing these URLs exercises exactly the
// providers the guard gates activations on. Providers mentioned without a
// full URL get a synthesized "http://host/" probe target.
func (e *Engine) AlternateProviders() map[string][]string {
	out := make(map[string][]string)
	for _, r := range e.ruleSnapshot() {
		if r.Type == rules.TypeRemove {
			continue
		}
		for _, alt := range r.Alternatives {
			for _, u := range htmlscan.URLsInText(alt) {
				h := htmlscan.HostOf(u)
				if h == "" {
					continue
				}
				if !containsString(out[h], u) {
					out[h] = append(out[h], u)
				}
			}
			for _, h := range altHostsOf(alt) {
				if len(out[h]) == 0 {
					out[h] = append(out[h], "http://"+h+"/")
				}
			}
		}
	}
	return out
}

func containsString(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

// applySafely is the serve path's panic-isolated rewrite: the compiled
// applier runs under recover(); if it panics, the activations are re-applied
// one rule at a time through the sequential reference, each individually
// recovered (quarantined rules skipped, panicking rules attributed via
// noteRulePanic); a rule that cannot be applied simply contributes nothing,
// so the worst case is the unmodified page — never a failed request. clean
// is false when any panic occurred; such results must not enter the rewrite
// cache (a cached safe-but-degraded page would both mask the breakage and
// stop the panic count from ever reaching the quarantine threshold).
// Panic isolation is always on, guard or not. Caller holds sh.mu (read).
func (e *Engine) applySafely(ent *actCacheEntry, path, page string) (out string, applied []rules.Applied, clean bool) {
	out, clean = page, true
	func() {
		defer func() {
			if r := recover(); r != nil {
				clean = false
				e.metrics.rewritePanics.Inc()
				if e.logf != nil {
					e.logf("core: recovered rewrite panic (compiled applier, path %s): %v", path, r)
				}
			}
		}()
		out, applied = ent.applier.Apply(page)
	}()
	if clean {
		return out, applied, true
	}
	// Degraded pass: per-rule sequential application so one poisoned rule
	// cannot take the others down with it.
	out, applied = page, nil
	for _, act := range ent.acts {
		if act.Rule == nil {
			continue
		}
		id := act.Rule.ID
		if e.guard != nil && e.guard.RuleQuarantined(id) {
			continue
		}
		func() {
			defer func() {
				if r := recover(); r != nil {
					e.metrics.rewritePanics.Inc()
					if e.logf != nil {
						e.logf("core: recovered rewrite panic (rule %s, path %s): %v", id, path, r)
					}
					e.noteRulePanic(id)
				}
			}()
			next, ap := rules.Apply(out, path, []rules.Activation{act})
			out = next
			applied = append(applied, ap...)
		}()
	}
	return out, applied, false
}
