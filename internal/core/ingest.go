package core

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"time"

	"oak/internal/obs"
	"oak/internal/report"
)

// Batched ingest: an optional bounded queue plus worker pool in front of the
// sharded engine. HTTP handlers (and any other producer) hand reports to the
// queue and the workers drain them shard by shard — each worker owns a fixed
// subset of shards, so a user's reports are always processed by the same
// worker, in submission order, and workers never contend on a shard lock.
// When the queue is full, Submit blocks: backpressure propagates to the
// producer instead of growing memory without bound. WithLoadShedding turns
// that unbounded blocking into a deadline-aware admission policy: a
// submission that would wait on a full queue longer than the configured
// budget is refused with ErrOverloaded instead, so producers (and their
// clients, via 503 + Retry-After) find out immediately and the server keeps
// serving pages while ingest is saturated.

// ErrShuttingDown is returned by report submission after Engine.Close: the
// engine is draining and accepts no new work.
var ErrShuttingDown = errors.New("engine: shutting down")

// ErrEngineClosed is the historical name for ErrShuttingDown; the two are
// the same error value, so errors.Is matches either.
var ErrEngineClosed = ErrShuttingDown

// ErrOverloaded is the sentinel all shed submissions match via errors.Is:
// the ingest queue stayed full past the shedding budget and the report was
// refused, not queued. The concrete error is *OverloadError, which carries
// the retry hint.
var ErrOverloaded = errors.New("engine: overloaded")

// OverloadError is the error a shed submission returns. It unwraps to
// ErrOverloaded and carries the retry hint the origin server turns into a
// Retry-After header.
type OverloadError struct {
	// RetryAfter is how long the shedding policy suggests the client wait
	// before resubmitting.
	RetryAfter time.Duration
}

// Error implements error.
func (e *OverloadError) Error() string {
	return fmt.Sprintf("engine: overloaded, retry in %v", e.RetryAfter)
}

// Unwrap makes errors.Is(err, ErrOverloaded) true.
func (e *OverloadError) Unwrap() error { return ErrOverloaded }

// ShedPolicy configures deadline-aware load shedding on the batched-ingest
// pipeline (WithLoadShedding).
type ShedPolicy struct {
	// MaxWait is how long a submission may wait on a full queue before
	// being shed with ErrOverloaded. Zero (or negative) sheds immediately:
	// a full queue refuses new reports without blocking at all.
	MaxWait time.Duration
	// RetryAfter is the retry hint shed submissions carry (and the origin
	// server advertises as Retry-After). Zero takes DefaultRetryAfter.
	RetryAfter time.Duration
}

// DefaultRetryAfter is the retry hint used when ShedPolicy.RetryAfter is
// zero.
const DefaultRetryAfter = time.Second

// normalized fills defaults in.
func (p ShedPolicy) normalized() ShedPolicy {
	if p.MaxWait < 0 {
		p.MaxWait = 0
	}
	if p.RetryAfter <= 0 {
		p.RetryAfter = DefaultRetryAfter
	}
	return p
}

// WithLoadShedding enables overload protection on the batched-ingest
// pipeline: instead of blocking a producer indefinitely while its queue is
// full (the default backpressure behaviour), a submission that cannot be
// queued within p.MaxWait fails fast with an *OverloadError. Sheds are
// counted in Metrics.ReportsShed. The option has no effect on an engine
// without WithIngestPipeline — synchronous ingest never queues, so it never
// sheds.
func WithLoadShedding(p ShedPolicy) Option {
	return func(e *Engine) {
		pol := p.normalized()
		e.shedPolicy = &pol
	}
}

// Default pipeline sizing.
const (
	// DefaultIngestQueueLen is the per-worker queue bound used when
	// IngestConfig.QueueLen is zero.
	DefaultIngestQueueLen = 256
)

// IngestConfig sizes the batched-ingest pipeline.
type IngestConfig struct {
	// Workers is the worker-pool size; 0 means one worker per logical CPU.
	// More workers than shards is never useful and is clamped down.
	Workers int
	// QueueLen bounds each worker's queue; 0 means DefaultIngestQueueLen.
	// Total queued capacity is Workers * QueueLen.
	QueueLen int
}

// normalized fills defaults in.
func (c IngestConfig) normalized(shards int) IngestConfig {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.Workers > shards {
		c.Workers = shards
	}
	if c.QueueLen <= 0 {
		c.QueueLen = DefaultIngestQueueLen
	}
	return c
}

// WithIngestPipeline enables the batched-ingest pipeline: HandleReport and
// HandleReportCtx enqueue into a bounded queue drained by a worker pool
// instead of processing on the caller's goroutine. Engines built with this
// option must be Closed to stop the workers.
func WithIngestPipeline(cfg IngestConfig) Option {
	return func(e *Engine) {
		c := cfg
		e.pipelineConfig = &c
	}
}

// ingestOutcome is what processing one queued report produced.
type ingestOutcome struct {
	res *AnalysisResult
	err error
}

// ingestTask is one queued report and the channel its result goes to.
type ingestTask struct {
	ctx context.Context
	rep *report.Report
	res chan ingestOutcome // buffered(1); workers never block sending
}

// pipeline is the running queue + worker pool.
type pipeline struct {
	engine *Engine
	queues []chan ingestTask
	wg     sync.WaitGroup

	// depth counts reports queued or in flight, for the /oak/metrics
	// queue-depth gauge.
	depth    obs.Gauge
	capacity int

	// mu guards closed: submits hold it shared so close cannot shut the
	// queues while a send is in progress.
	mu     sync.RWMutex
	closed bool
}

// newPipeline starts the worker pool.
func newPipeline(e *Engine, cfg IngestConfig) *pipeline {
	cfg = cfg.normalized(len(e.shards))
	p := &pipeline{
		engine:   e,
		queues:   make([]chan ingestTask, cfg.Workers),
		capacity: cfg.Workers * cfg.QueueLen,
	}
	for i := range p.queues {
		p.queues[i] = make(chan ingestTask, cfg.QueueLen)
		p.wg.Add(1)
		go p.worker(p.queues[i])
	}
	return p
}

// submit queues one pre-validated report and waits for its result.
// Cancelling ctx while the report is still queued abandons it (the worker
// discards it un-processed); cancelling after a worker picked it up returns
// immediately while the report still takes effect. With a shedding policy,
// a submission that cannot be queued within the policy's budget is refused
// with *OverloadError instead of blocking.
//
// Pooled-report ownership: a report refused before it reaches a queue
// (pipeline closed, shed, cancelled while enqueueing) is released here; a
// report that made it onto a queue belongs to its worker, which releases it
// on both the drop and the process path — including when this call has
// already returned ctx's error to the submitter.
func (p *pipeline) submit(ctx context.Context, r *report.Report) (*AnalysisResult, error) {
	t := ingestTask{ctx: ctx, rep: r, res: make(chan ingestOutcome, 1)}
	// Shard affinity: one worker owns all reports of a given shard.
	q := p.queues[p.engine.shardIndex(r.UserID)%len(p.queues)]

	p.mu.RLock()
	if p.closed {
		p.mu.RUnlock()
		r.Release()
		return nil, ErrShuttingDown
	}
	p.depth.Add(1)
	if err := p.enqueue(ctx, q, t); err != nil {
		p.depth.Add(-1)
		p.mu.RUnlock()
		r.Release()
		return nil, err
	}
	p.mu.RUnlock()

	select {
	case out := <-t.res:
		return out.res, out.err
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// enqueue places the task on its worker's queue, honouring the engine's
// shedding policy: without one it blocks until there is room (or ctx is
// cancelled); with one it waits at most the policy's budget on a full queue
// before refusing with *OverloadError. The caller holds p.mu shared.
func (p *pipeline) enqueue(ctx context.Context, q chan ingestTask, t ingestTask) error {
	shed := p.engine.shedPolicy
	if shed == nil {
		select {
		case q <- t:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	}
	// Fast path: room right now.
	select {
	case q <- t:
		return nil
	default:
	}
	// Queue full. Wait at most the shedding budget before refusing —
	// blocking here would tie up the producer (an HTTP handler goroutine)
	// and lie to the client about progress.
	if shed.MaxWait > 0 {
		timer := time.NewTimer(shed.MaxWait)
		defer timer.Stop()
		select {
		case q <- t:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
	}
	p.engine.metrics.reportsShed.Inc()
	return &OverloadError{RetryAfter: shed.RetryAfter}
}

// worker drains one queue until close drains and closes it.
func (p *pipeline) worker(q chan ingestTask) {
	defer p.wg.Done()
	for t := range q {
		if err := t.ctx.Err(); err != nil {
			// Cancelled while queued: the submitter is gone; drop the
			// report without touching any profile.
			t.rep.Release()
			p.depth.Add(-1)
			t.res <- ingestOutcome{err: err}
			continue
		}
		res, err := p.engine.process(t.rep) // process releases t.rep
		p.depth.Add(-1)
		t.res <- ingestOutcome{res: res, err: err}
	}
}

// close stops the pipeline: no new submissions are accepted, queued reports
// are drained, and the workers exit. Idempotent.
func (p *pipeline) close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	for _, q := range p.queues {
		close(q)
	}
	p.mu.Unlock()
	p.wg.Wait()
}

// queueStatus reports the pipeline's live depth and total capacity.
func (p *pipeline) queueStatus() (depth int64, capacity int) {
	return p.depth.Value(), p.capacity
}

// IngestQueue reports the batched-ingest queue's current depth (reports
// queued or being processed) and total capacity. Both are zero on an engine
// without a pipeline.
func (e *Engine) IngestQueue() (depth int64, capacity int) {
	if e.pipeline == nil {
		return 0, 0
	}
	return e.pipeline.queueStatus()
}

// BatchResult summarises one HandleBatch call.
type BatchResult struct {
	// Submitted is how many reports the batch contained.
	Submitted int `json:"submitted"`
	// Processed is how many reports were analysed successfully.
	Processed int `json:"processed"`
	// Failed is how many reports were rejected (validation or processing
	// error, shedding, or cancellation while queued).
	Failed int `json:"failed"`
	// Overloaded is the subset of Failed refused by the load-shedding
	// admission policy; clients should retry those after the advertised
	// Retry-After.
	Overloaded int `json:"overloaded,omitempty"`
	// Errors holds the first few distinct failure messages, as a debugging
	// aid; it is capped, not exhaustive.
	Errors []string `json:"errors,omitempty"`
}

// batchErrorCap bounds BatchResult.Errors.
const batchErrorCap = 8

// BatchSink is a streaming batch ingest: reports are submitted one at a
// time as a producer parses them off the wire, fanned out across shards
// concurrently, and summarised on Wait. It replaces the
// accumulate-the-whole-slice-then-HandleBatch shape — a batch body is never
// fully materialised as []*report.Report.
//
// Usage: s := e.StartBatch(ctx); s.Submit(r)...; res := s.Wait(). Submit
// and Wait must be called from the producer's goroutine (Submit is not safe
// for concurrent use); Submit after Wait panics on the closed channel.
// Submitted pooled reports are owned by the sink/engine and released on
// every path, like HandleReportCtx.
type BatchSink struct {
	engine *Engine
	ctx    context.Context
	next   chan *report.Report
	wg     sync.WaitGroup

	// workers counts spawned submitters; they are started lazily so a
	// one-report batch costs one goroutine, not a full pool.
	workers    int
	maxWorkers int

	mu  sync.Mutex
	res BatchResult
}

// StartBatch begins a streaming batch ingest governed by ctx. Reports may
// be processed in any order; cancelling ctx counts not-yet-processed
// reports as failed.
func (e *Engine) StartBatch(ctx context.Context) *BatchSink {
	max := runtime.GOMAXPROCS(0)
	if e.pipeline != nil {
		// The pipeline workers do the processing; submissions only block on
		// backpressure, so a few more submitters keep the queues fed.
		max = 2 * len(e.pipeline.queues)
	}
	return &BatchSink{
		engine:     e,
		ctx:        ctx,
		next:       make(chan *report.Report),
		maxWorkers: max,
	}
}

// record folds one report's outcome into the result.
func (s *BatchSink) record(err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err == nil {
		s.res.Processed++
		return
	}
	s.res.Failed++
	if errors.Is(err, ErrOverloaded) {
		s.res.Overloaded++
	}
	if len(s.res.Errors) < batchErrorCap {
		msg := err.Error()
		for _, prev := range s.res.Errors {
			if prev == msg {
				return
			}
		}
		s.res.Errors = append(s.res.Errors, msg)
	}
}

// Submit hands one report to the sink. It blocks only when every worker is
// busy (backpressure from the engine); after ctx is cancelled it fails the
// report immediately without processing it.
func (s *BatchSink) Submit(r *report.Report) {
	s.mu.Lock()
	s.res.Submitted++
	spawn := s.workers < s.maxWorkers
	if spawn {
		s.workers++
	}
	s.mu.Unlock()
	if spawn {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for r := range s.next {
				_, err := s.engine.HandleReportCtx(s.ctx, r)
				s.record(err)
			}
		}()
	}
	select {
	case s.next <- r:
	case <-s.ctx.Done():
		// Cancelled before any worker took it: it will never be processed.
		r.Release()
		s.record(s.ctx.Err())
	}
}

// Wait closes the sink, waits for in-flight reports, and returns the batch
// summary. The sink must not be used afterwards.
func (s *BatchSink) Wait() BatchResult {
	close(s.next)
	s.wg.Wait()
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.res
}

// HandleBatch ingests a pre-materialised batch of reports through a
// BatchSink: fanned out across shards (through the pipeline when one is
// configured, otherwise over a bounded pool of inline workers), processed
// in any order. The call returns when every report has been processed or
// ctx is cancelled; cancellation counts not-yet-processed reports as
// failed. Producers that parse reports off the wire should stream into
// StartBatch directly instead of building the slice.
func (e *Engine) HandleBatch(ctx context.Context, reports []*report.Report) BatchResult {
	s := e.StartBatch(ctx)
	for _, r := range reports {
		s.Submit(r)
	}
	return s.Wait()
}
