package core

import (
	"testing"

	"oak/internal/rules"
)

func TestMetricsCountReportsAndActivations(t *testing.T) {
	e, err := NewEngine([]*rules.Rule{jqRule(0)})
	if err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m != (Metrics{}) {
		t.Errorf("fresh engine metrics = %+v, want zero", m)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	if m.ReportsHandled != 1 {
		t.Errorf("ReportsHandled = %d, want 1", m.ReportsHandled)
	}
	if m.EntriesProcessed != 5 {
		t.Errorf("EntriesProcessed = %d, want 5", m.EntriesProcessed)
	}
	if m.ViolationsDetected != 1 || m.RuleActivations != 1 {
		t.Errorf("violations/activations = %d/%d, want 1/1", m.ViolationsDetected, m.RuleActivations)
	}
}

func TestMetricsPageCounters(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	page := `<script src="http://s1.com/jquery.js">`

	// No activations yet: page untouched.
	e.ModifyPage("u1", "/", page)
	if m := e.Metrics(); m.PagesUntouched != 1 || m.PagesModified != 0 {
		t.Errorf("counters = %+v, want 1 untouched", m)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	e.ModifyPage("u1", "/", page)
	if m := e.Metrics(); m.PagesModified != 1 {
		t.Errorf("PagesModified = %d, want 1", m.PagesModified)
	}
}

func TestMetricsDeactivations(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	// Alternate turns far worse than the default was: history revert.
	if _, err := e.HandleReport(loadReport("u1", map[string]float64{
		"s2.net":    5000,
		"a.example": 100, "b.example": 110, "c.example": 105, "d.example": 95,
	})); err != nil {
		t.Fatal(err)
	}
	if m := e.Metrics(); m.RuleDeactivations != 1 {
		t.Errorf("RuleDeactivations = %d, want 1", m.RuleDeactivations)
	}
}
