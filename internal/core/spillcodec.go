package core

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
	"sort"
	"time"
)

// OAKPROF1 is the spill tier's binary profile encoding, in the spirit of the
// OAKRPT1 report wire format: length-prefixed strings and counts as uvarints,
// float64s as raw IEEE-754 bits, and every record carried in a
// length-prefixed frame closed by a CRC-32C of the payload, so a damaged
// record is detected before a single field of it is trusted.
//
// Timestamps are encoded as RFC3339Nano strings rather than unix
// nanoseconds: a profile's persisted JSON form carries the wall clock *and*
// the UTC offset, and export byte-identity across resident and spilled
// layouts (the spill tier's core invariant) requires the round trip through
// a segment file to preserve exactly what encoding/json would have written.
//
// A segment file is the magic line followed by frames back to back:
//
//	OAKPROF1\n
//	uvarint(len(payload)) | payload | crc32c(payload) LE
//	uvarint(len(payload)) | payload | crc32c(payload) LE
//	...
//
// Appends are fsynced before the in-memory profile is forgotten, so the tail
// of a segment after a crash is at worst torn — recovery truncates it. Each
// payload is one profile:
//
//	userID      string
//	lastReport  time string
//	violations  uvarint count, then per server (sorted): addr string, count uvarint
//	actives     uvarint count, then per rule (sorted by ID):
//	            ruleID string, altIndex uvarint, activatedAt time string,
//	            expiresAt time string, triggerServer string,
//	            triggerDistance float64 bits LE, activations uvarint,
//	            flags byte (bit 0 = synthesized)

// spillSegMagic is the first line of every segment file.
const spillSegMagic = "OAKPROF1\n"

const (
	// maxSpillStringLen bounds any one string field, so a corrupted length
	// prefix cannot demand a gigabyte allocation.
	maxSpillStringLen = 1 << 20
	// maxSpillRecordLen bounds a whole record frame.
	maxSpillRecordLen = 1 << 24
	// spillFrameOverhead is the fixed cost of framing a payload: the worst-
	// case length prefix plus the checksum.
	spillFrameOverhead = binary.MaxVarintLen32 + crc32.Size
)

// Typed spill-codec failures, mirroring the OAKRPT1 error taxonomy.
// ErrSpillTruncated specifically means "the bytes end mid-frame" — at the
// tail of a segment that is a torn write and recovery truncates to the last
// whole frame; anywhere else it is corruption.
var (
	ErrSpillMagic     = errors.New("core: spill segment magic mismatch")
	ErrSpillTruncated = errors.New("core: spill record truncated")
	ErrSpillOversized = errors.New("core: spill record oversized")
	ErrSpillCorrupt   = errors.New("core: spill record corrupt")
)

// isSpillDamage reports whether err is a codec-level rejection (as opposed
// to an I/O failure): the segment's bytes are wrong, not the disk's
// plumbing. Damage quarantines the segment; I/O failures degrade the store
// to memory-only mode.
func isSpillDamage(err error) bool {
	return errors.Is(err, ErrSpillCorrupt) || errors.Is(err, ErrSpillTruncated) ||
		errors.Is(err, ErrSpillOversized) || errors.Is(err, ErrSpillMagic)
}

// appendSpillUvarint appends v as a uvarint.
func appendSpillUvarint(b []byte, v uint64) []byte {
	return binary.AppendUvarint(b, v)
}

// appendSpillString appends s as uvarint length + bytes.
func appendSpillString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

// appendSpillTime appends t in the RFC3339Nano form encoding/json uses, as a
// spill string. The zero time round-trips through "0001-01-01T00:00:00Z".
func appendSpillTime(b []byte, t time.Time) []byte {
	b = binary.AppendUvarint(b, uint64(len(t.AppendFormat(nil, time.RFC3339Nano))))
	return t.AppendFormat(b, time.RFC3339Nano)
}

// spillUvarint decodes a canonical (minimal-length) uvarint from b.
func spillUvarint(b []byte) (uint64, int, error) {
	v, n := binary.Uvarint(b)
	if n == 0 {
		return 0, 0, fmt.Errorf("%w: uvarint cut short", ErrSpillTruncated)
	}
	if n < 0 {
		return 0, 0, fmt.Errorf("%w: uvarint overflows 64 bits", ErrSpillCorrupt)
	}
	if n > 1 && b[n-1] == 0 {
		return 0, 0, fmt.Errorf("%w: non-minimal uvarint", ErrSpillCorrupt)
	}
	return v, n, nil
}

// spillString decodes a length-prefixed string from b.
func spillString(b []byte) (string, int, error) {
	l, n, err := spillUvarint(b)
	if err != nil {
		return "", 0, err
	}
	if l > maxSpillStringLen {
		return "", 0, fmt.Errorf("%w: string of %d bytes", ErrSpillOversized, l)
	}
	if uint64(len(b)-n) < l {
		return "", 0, fmt.Errorf("%w: string cut short", ErrSpillTruncated)
	}
	return string(b[n : n+int(l)]), n + int(l), nil
}

// spillTime decodes a spill time string.
func spillTime(b []byte) (time.Time, int, error) {
	s, n, err := spillString(b)
	if err != nil {
		return time.Time{}, 0, err
	}
	t, err := time.Parse(time.RFC3339Nano, s)
	if err != nil {
		return time.Time{}, 0, fmt.Errorf("%w: bad timestamp %q", ErrSpillCorrupt, s)
	}
	return t, n, nil
}

// encodeSpillRecord appends the OAKPROF1 payload for one persisted profile.
func encodeSpillRecord(b []byte, pp *persistedProfile) []byte {
	b = appendSpillString(b, pp.UserID)
	b = appendSpillTime(b, pp.LastReport)

	b = appendSpillUvarint(b, uint64(len(pp.Violations)))
	srvs := make([]string, 0, len(pp.Violations))
	for srv := range pp.Violations {
		srvs = append(srvs, srv)
	}
	sort.Strings(srvs)
	for _, srv := range srvs {
		b = appendSpillString(b, srv)
		b = appendSpillUvarint(b, uint64(pp.Violations[srv]))
	}

	b = appendSpillUvarint(b, uint64(len(pp.Active)))
	for i := range pp.Active {
		pa := &pp.Active[i]
		b = appendSpillString(b, pa.RuleID)
		b = appendSpillUvarint(b, uint64(pa.AltIndex))
		b = appendSpillTime(b, pa.ActivatedAt)
		b = appendSpillTime(b, pa.ExpiresAt)
		b = appendSpillString(b, pa.TriggerServer)
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(pa.TriggerDistance))
		b = appendSpillUvarint(b, uint64(pa.Activations))
		var flags byte
		if pa.Synthesized {
			flags |= 1
		}
		b = append(b, flags)
	}
	return b
}

// decodeSpillRecord decodes one OAKPROF1 payload. The persisted form is the
// same neutral shape ExportState emits and ImportState consumes, so export
// uses the decoded record directly and rehydration resolves it against the
// live rule set exactly like an import would.
func decodeSpillRecord(payload []byte) (*persistedProfile, error) {
	pp := &persistedProfile{}
	b := payload
	var n int
	var err error

	if pp.UserID, n, err = spillString(b); err != nil {
		return nil, fmt.Errorf("user id: %w", err)
	}
	b = b[n:]
	if pp.UserID == "" {
		return nil, fmt.Errorf("%w: empty user id", ErrSpillCorrupt)
	}
	if pp.LastReport, n, err = spillTime(b); err != nil {
		return nil, fmt.Errorf("last report: %w", err)
	}
	b = b[n:]

	nv, n, err := spillUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("violation count: %w", err)
	}
	b = b[n:]
	if nv > uint64(len(b)) {
		return nil, fmt.Errorf("%w: %d violations in %d bytes", ErrSpillCorrupt, nv, len(b))
	}
	pp.Violations = make(map[string]int, nv)
	for i := uint64(0); i < nv; i++ {
		srv, n, err := spillString(b)
		if err != nil {
			return nil, fmt.Errorf("violation server: %w", err)
		}
		b = b[n:]
		cnt, n, err := spillUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("violation count for %q: %w", srv, err)
		}
		b = b[n:]
		pp.Violations[srv] = int(cnt)
	}

	na, n, err := spillUvarint(b)
	if err != nil {
		return nil, fmt.Errorf("activation count: %w", err)
	}
	b = b[n:]
	if na > uint64(len(b)) {
		return nil, fmt.Errorf("%w: %d activations in %d bytes", ErrSpillCorrupt, na, len(b))
	}
	if na > 0 {
		pp.Active = make([]persistedActivation, 0, na)
	}
	for i := uint64(0); i < na; i++ {
		var pa persistedActivation
		if pa.RuleID, n, err = spillString(b); err != nil {
			return nil, fmt.Errorf("rule id: %w", err)
		}
		b = b[n:]
		alt, n, err := spillUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("alt index: %w", err)
		}
		b = b[n:]
		pa.AltIndex = int(alt)
		if pa.ActivatedAt, n, err = spillTime(b); err != nil {
			return nil, fmt.Errorf("activated at: %w", err)
		}
		b = b[n:]
		if pa.ExpiresAt, n, err = spillTime(b); err != nil {
			return nil, fmt.Errorf("expires at: %w", err)
		}
		b = b[n:]
		if pa.TriggerServer, n, err = spillString(b); err != nil {
			return nil, fmt.Errorf("trigger server: %w", err)
		}
		b = b[n:]
		if len(b) < 8 {
			return nil, fmt.Errorf("%w: trigger distance cut short", ErrSpillTruncated)
		}
		pa.TriggerDistance = math.Float64frombits(binary.LittleEndian.Uint64(b))
		b = b[8:]
		acts, n, err := spillUvarint(b)
		if err != nil {
			return nil, fmt.Errorf("activation counter: %w", err)
		}
		b = b[n:]
		pa.Activations = int(acts)
		if len(b) < 1 {
			return nil, fmt.Errorf("%w: flags cut short", ErrSpillTruncated)
		}
		pa.Synthesized = b[0]&1 != 0
		b = b[1:]
		pp.Active = append(pp.Active, pa)
	}
	if len(b) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes after record", ErrSpillCorrupt, len(b))
	}
	return pp, nil
}

// appendSpillFrame wraps a record payload in the segment frame: uvarint
// length, payload, CRC-32C (the snapshot envelope's Castagnoli table).
func appendSpillFrame(dst, payload []byte) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(payload)))
	dst = append(dst, payload...)
	return binary.LittleEndian.AppendUint32(dst, crc32.Checksum(payload, snapshotCRC))
}

// nextSpillFrame parses one frame from the head of b, returning the payload
// and the total frame length consumed. ErrSpillTruncated means b ends
// mid-frame (a torn tail when b runs to the segment's end); a checksum
// mismatch or an impossible length is ErrSpillCorrupt/ErrSpillOversized.
func nextSpillFrame(b []byte) (payload []byte, frameLen int, err error) {
	l, n, err := spillUvarint(b)
	if err != nil {
		return nil, 0, err
	}
	if l == 0 {
		// No record is empty (a user ID is mandatory); a zero length prefix
		// is what zero-filled corruption (hole punches) looks like.
		return nil, 0, fmt.Errorf("%w: empty frame", ErrSpillCorrupt)
	}
	if l > maxSpillRecordLen {
		return nil, 0, fmt.Errorf("%w: frame of %d bytes", ErrSpillOversized, l)
	}
	total := n + int(l) + crc32.Size
	if len(b) < total {
		return nil, 0, fmt.Errorf("%w: frame needs %d bytes, have %d", ErrSpillTruncated, total, len(b))
	}
	payload = b[n : n+int(l)]
	want := binary.LittleEndian.Uint32(b[n+int(l):])
	if got := crc32.Checksum(payload, snapshotCRC); got != want {
		return nil, 0, fmt.Errorf("%w: frame checksum mismatch: stored %08x, payload %08x",
			ErrSpillCorrupt, want, got)
	}
	return payload, total, nil
}
