package core

import (
	"fmt"
	"testing"
	"time"

	"oak/internal/obs"
	"oak/internal/rules"
)

// Memory-tier benchmarks: the spill→rehydrate round trip, serve latency
// over a population that is 95% cold (spilled), and the bounded resident
// footprint under ingest churn. scripts/bench_memory.sh turns these into
// BENCH_memory.json; the headline numbers are resident bytes per user,
// rehydration latency percentiles, and the cold-population serve p99
// (which must sit far inside origin.DefaultRewriteBudget).

func benchSpillEngine(b *testing.B, cfg ResidencyConfig) *Engine {
	b.Helper()
	cfg.Dir = b.TempDir()
	e, err := NewEngine([]*rules.Rule{jqRule(0)}, WithShards(1), WithProfileResidency(cfg))
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { e.Close() })
	return e
}

// BenchmarkSpillRehydrate measures one full residency round trip: durably
// spill a profile (encode + append + fsync) and bring it back through the
// serve path. The engine's own rehydrate histogram is reported as
// rehydrate_p50_ms / rehydrate_p99_ms, isolating the read side.
func BenchmarkSpillRehydrate(b *testing.B) {
	e := benchSpillEngine(b, ResidencyConfig{MaxProfiles: 1 << 20})
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		b.Fatal(err)
	}
	sh := e.shardFor("u1")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sh.mu.Lock()
		e.spillProfilesLocked(sh, []string{"u1"})
		sh.mu.Unlock()
		if _, ok := e.Snapshot("u1"); !ok {
			b.Fatal("rehydration lost the profile")
		}
	}
	b.StopTimer()
	sum := e.Latencies().Rehydrate.Summary()
	b.ReportMetric(sum.P50Ms, "rehydrate_p50_ms")
	b.ReportMetric(sum.P99Ms, "rehydrate_p99_ms")
}

// BenchmarkServeCold95 serves pages off a population sized 20x its
// residency cap — at any moment 95% of profiles are spilled — walking the
// users in order so nearly every request pays the worst case: rehydrate
// from disk, evict someone else. Per-request latency lands in a local
// histogram; the p50/p99 are reported alongside ns/op so the JSON can be
// checked against the delivery budget envelope.
func BenchmarkServeCold95(b *testing.B) {
	const population = 2000
	e := benchSpillEngine(b, ResidencyConfig{MaxProfiles: population / 20})
	for i := 0; i < population; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%04d", i))); err != nil {
			b.Fatal(err)
		}
	}
	st, _ := e.SpillStatus()
	if st.ProfilesSpilled == 0 {
		b.Fatal("population not cold; benchmark is vacuous")
	}
	page := `<html><script src="http://s1.com/jquery.js"></script></html>`
	var hist obs.Histogram
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		user := fmt.Sprintf("u%04d", i%population)
		start := time.Now()
		out, _ := e.ModifyPage(user, "/index.html", page)
		hist.Observe(time.Since(start))
		if out == page {
			b.Fatal("cold serve did not rewrite")
		}
	}
	b.StopTimer()
	sum := hist.Snapshot().Summary()
	b.ReportMetric(sum.P50Ms, "serve_p50_ms")
	b.ReportMetric(sum.P99Ms, "serve_p99_ms")
	fin, _ := e.SpillStatus()
	b.ReportMetric(float64(fin.ProfilesResident), "resident_profiles")
}

// BenchmarkIngestCapped is steady-state ingest with the residency cap
// doing its job: reports over a 10x-cap user population, every few of
// which push the shard over the watermark and spill a batch. ns/op is the
// amortised ingest cost with the spill tier on; the footprint metrics show
// the cap holding (resident bytes per user and resident profile count stay
// flat no matter how many users report).
func BenchmarkIngestCapped(b *testing.B) {
	const capProfiles = 200
	e := benchSpillEngine(b, ResidencyConfig{MaxProfiles: capProfiles})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(slowS1Report(fmt.Sprintf("u%04d", i%(capProfiles*10)))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	st, _ := e.SpillStatus()
	if st.ProfilesResident > 0 {
		b.ReportMetric(float64(st.ResidentBytes)/float64(st.ProfilesResident), "bytes_per_resident_user")
	}
	b.ReportMetric(float64(st.ProfilesResident), "resident_profiles")
	b.ReportMetric(float64(st.ProfilesResident)+float64(st.ProfilesSpilled), "total_profiles")
}
