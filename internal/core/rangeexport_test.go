package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"

	"oak/internal/rules"
)

func TestHashRangeContains(t *testing.T) {
	whole := HashRange{}
	if !whole.Whole() || !whole.Contains(0) || !whole.Contains(1<<31) || !whole.Contains(^uint32(0)) {
		t.Error("whole range must contain everything")
	}
	plain := HashRange{Lo: 100, Hi: 200}
	for h, want := range map[uint32]bool{99: false, 100: true, 199: true, 200: false} {
		if plain.Contains(h) != want {
			t.Errorf("plain.Contains(%d) = %v, want %v", h, !want, want)
		}
	}
	wrap := HashRange{Lo: 0xF0000000, Hi: 0x10000000}
	for h, want := range map[uint32]bool{
		0xF0000000: true, 0xFFFFFFFF: true, 0: true, 0x0FFFFFFF: true,
		0x10000000: false, 0x80000000: false,
	} {
		if wrap.Contains(h) != want {
			t.Errorf("wrap.Contains(%08x) = %v, want %v", h, !want, want)
		}
	}
}

func TestEqualRangesCoverDisjointly(t *testing.T) {
	for _, n := range []int{1, 2, 3, 4, 7, 16} {
		ranges := EqualRanges(n)
		if len(ranges) != n {
			t.Fatalf("EqualRanges(%d) has %d arcs", n, len(ranges))
		}
		// Every probe hash must land in exactly one arc.
		probes := []uint32{0, 1, 1 << 30, 1 << 31, 3 << 30, ^uint32(0)}
		for i := 0; i < 64; i++ {
			probes = append(probes, userHash(fmt.Sprintf("probe-%d", i)))
		}
		for _, h := range probes {
			owners := 0
			for _, r := range ranges {
				if r.Contains(h) {
					owners++
				}
			}
			if owners != 1 {
				t.Fatalf("n=%d: hash %08x owned by %d arcs", n, h, owners)
			}
		}
	}
	if EqualRanges(0) != nil {
		t.Error("EqualRanges(0) should be nil")
	}
}

func TestRangeForMatchesShardHash(t *testing.T) {
	ranges := EqualRanges(4)
	for i := 0; i < 100; i++ {
		uid := fmt.Sprintf("user-%d", i)
		want := int(UserHash(uid) / (1 << 30))
		if got := RangeFor(uid, ranges); got != want {
			t.Errorf("RangeFor(%q) = %d, want %d", uid, got, want)
		}
	}
	if got := RangeFor("anyone", []HashRange{{Lo: 1, Hi: 2}}); got != -1 {
		t.Errorf("RangeFor over a non-cover = %d, want -1", got)
	}
}

// seedUsers ingests one slow-s1 report for each of n distinct users. The
// IDs carry a multiplicative-hash suffix because FNV-1a clusters sequential
// strings badly — plain "user-0..n" IDs can all land on one arc.
func seedUsers(t *testing.T, e *Engine, n int) []string {
	t.Helper()
	users := make([]string, n)
	for i := range users {
		users[i] = fmt.Sprintf("range-user-%d-%08x", i, uint32(i)*2654435761)
		if _, err := e.HandleReport(slowS1Report(users[i])); err != nil {
			t.Fatal(err)
		}
	}
	return users
}

func TestExportStateRangeWholeIsByteIdentical(t *testing.T) {
	clock := newTestClock()
	e, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	seedUsers(t, e, 16)

	whole, err := e.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	ranged, err := e.ExportStateRange(HashRange{})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, ranged) {
		t.Error("whole-space ExportStateRange differs from ExportState")
	}
	// And the whole export must not mention a range at all, so snapshots
	// written before range exports existed stay byte-compatible.
	if bytes.Contains(whole, []byte(`"range"`)) {
		t.Error("whole export carries a range field")
	}
}

func TestRangeExportRoundTripsByteStably(t *testing.T) {
	clock := newTestClock()
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	users := seedUsers(t, e1, 24)

	r := EqualRanges(4)[1]
	data, err := e1.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}
	inRange := 0
	for _, u := range users {
		if r.Contains(UserHash(u)) {
			inRange++
		}
	}
	if inRange == 0 {
		t.Fatal("test users all missed the arc; widen the seed")
	}

	e2, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if err := e2.ImportStateRange(r, data); err != nil {
		t.Fatal(err)
	}
	if e2.Users() != inRange {
		t.Errorf("imported %d users, want %d", e2.Users(), inRange)
	}
	again, err := e2.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data, again) {
		t.Error("range export did not round-trip byte-stably")
	}
	// The imported activations still rewrite pages.
	for _, u := range users {
		if !r.Contains(UserHash(u)) {
			continue
		}
		out, _ := e2.ModifyPage(u, "/index.html", `<script src="http://s1.com/jquery.js">`)
		if !strings.Contains(out, "s2.net") {
			t.Fatalf("user %s lost activation across range round-trip", u)
		}
		break
	}
}

func TestRangeUnionEqualsWholeExport(t *testing.T) {
	clock := newTestClock()
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	seedUsers(t, e1, 32)
	whole, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}

	// Import each arc of a disjoint cover into a fresh engine; the union
	// must rebuild the donor exactly.
	e2, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	for _, r := range EqualRanges(5) {
		data, err := e1.ExportStateRange(r)
		if err != nil {
			t.Fatal(err)
		}
		if err := e2.ImportStateRange(r, data); err != nil {
			t.Fatalf("import %v: %v", r, err)
		}
	}
	if e2.Users() != e1.Users() {
		t.Fatalf("union rebuilt %d users, donor has %d", e2.Users(), e1.Users())
	}
	rebuilt, err := e2.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(whole, rebuilt) {
		t.Error("union of range imports re-exports differently from the donor")
	}
}

func TestImportStateRangeIsAuthoritativeForArc(t *testing.T) {
	clock := newTestClock()
	e, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	users := seedUsers(t, e, 16)
	r := EqualRanges(2)[0]
	var inRange, outRange int
	for _, u := range users {
		if r.Contains(UserHash(u)) {
			inRange++
		} else {
			outRange++
		}
	}

	// An empty payload for the arc removes every in-range user and leaves
	// the rest untouched.
	donor, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	empty, err := donor.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ImportStateRange(r, empty); err != nil {
		t.Fatal(err)
	}
	if e.Users() != outRange {
		t.Errorf("after authoritative empty import: %d users, want %d", e.Users(), outRange)
	}
}

func TestImportStateRangeRejectsOutOfRangeProfiles(t *testing.T) {
	e1, _ := NewEngine([]*rules.Rule{jqRule(0)})
	seedUsers(t, e1, 8)
	whole, err := e1.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	// A narrow arc cannot absorb a whole-engine export: some profile hashes
	// outside it, and the import must fail without touching state.
	e2, _ := NewEngine([]*rules.Rule{jqRule(0)})
	narrow := HashRange{Lo: 1, Hi: 2}
	err = e2.ImportStateRange(narrow, whole)
	if !errors.Is(err, ErrCorruptState) {
		t.Fatalf("out-of-range import error = %v, want ErrCorruptState", err)
	}
	if e2.Users() != 0 {
		t.Errorf("failed import leaked %d profiles", e2.Users())
	}
}

func TestExportSnapshotRangeCarriesEnvelope(t *testing.T) {
	clock := newTestClock()
	e, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	seedUsers(t, e, 8)
	r := EqualRanges(2)[1]
	snap, err := e.ExportSnapshotRange(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.HasPrefix(snap, []byte("OAKSNAP2 ")) {
		t.Fatalf("snapshot missing envelope: %q", snap[:20])
	}
	// The envelope is accepted by the range importer (unwrap + verify).
	e2, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithClock(clock.Now))
	if err := e2.ImportStateRange(r, snap); err != nil {
		t.Fatal(err)
	}
	// A flipped bit fails the checksum.
	bad := append([]byte(nil), snap...)
	bad[len(bad)-2] ^= 0x40
	if err := e2.ImportStateRange(r, bad); !errors.Is(err, ErrCorruptState) {
		t.Errorf("corrupted snapshot error = %v, want ErrCorruptState", err)
	}
}

// TestRangeImportHammer drives range imports, report ingest and page serves
// concurrently; run under -race it proves the all-shard-lock swap never
// exposes a half-imported arc.
func TestRangeImportHammer(t *testing.T) {
	e, _ := NewEngine([]*rules.Rule{jqRule(0)}, WithShards(4))
	donor, _ := NewEngine([]*rules.Rule{jqRule(0)})
	users := seedUsers(t, donor, 16)
	r := EqualRanges(2)[0]
	data, err := donor.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}

	const iters = 200
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if err := e.ImportStateRange(r, data); err != nil {
				t.Errorf("import: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < iters; i++ {
			if _, err := e.HandleReport(slowS1Report(users[i%len(users)])); err != nil {
				t.Errorf("ingest: %v", err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		page := `<script src="http://s1.com/jquery.js">`
		for i := 0; i < iters; i++ {
			_, _ = e.ModifyPage(users[i%len(users)], "/index.html", page)
			_ = e.Users()
			_, _ = e.Snapshot(users[(i+7)%len(users)])
		}
	}()
	wg.Wait()

	// The final import wins for the arc; everything must still be coherent.
	if err := e.ImportStateRange(r, data); err != nil {
		t.Fatal(err)
	}
	again, err := e.ExportStateRange(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(again) == 0 {
		t.Fatal("empty export after hammer")
	}
}
