// Package core implements the Oak engine (Section 4 of the paper): violator
// detection over client-reported performance, connection-dependency rule
// matching, per-user rule activation with history, and page modification.
package core

import (
	"fmt"
	"sync"

	"oak/internal/report"
	"oak/internal/stats"
)

// MetricKind identifies which performance signal flagged a server.
type MetricKind int

const (
	// MetricSmallTime flags mean small-object (<50 KB) download time:
	// longer is worse.
	MetricSmallTime MetricKind = iota + 1
	// MetricLargeTput flags mean large-object throughput: lower is worse.
	MetricLargeTput
)

// String names the metric.
func (m MetricKind) String() string {
	switch m {
	case MetricSmallTime:
		return "small-time"
	case MetricLargeTput:
		return "large-throughput"
	default:
		return fmt.Sprintf("metric-%d", int(m))
	}
}

// Violation is one server flagged as under-performing relative to the other
// servers the same client contacted during the same load.
type Violation struct {
	// Server is the flagged server's per-load summary.
	Server *report.ServerPerf
	// Metric says which signal crossed the MAD criterion.
	Metric MetricKind
	// Value is the server's metric value (ms or B/s).
	Value float64
	// Median and MAD describe the population the server was judged against.
	Median float64
	MAD    float64
	// Distance is how far beyond the median, in the "worse" direction, the
	// server sits. It feeds the rule-history mechanism (Section 4.2.3).
	Distance float64
}

// DetectViolators applies the paper's MAD criterion (Section 4.2.1) to one
// report's per-server summaries: a server is a violator if its mean
// small-object time exceeds median + k*MAD of the small-object times, or its
// mean large-object throughput falls below median - k*MAD of the
// throughputs. A server with both object classes violates if either signal
// does; it is reported once, with the first violating metric.
//
// The criterion is relative by construction: a client whose every path is
// slow produces a high median and flags nothing, so Oak "need not waste its
// time with such cases".
//
// Detection runs once per report on the ingest hot path, so the subset
// slices and the sort buffers the MAD needs come from a pooled scratch:
// the only allocation left is the violations slice itself, and only when
// there are violations.
func DetectViolators(servers []*report.ServerPerf, k float64) []Violation {
	sc := detectPool.Get().(*detectScratch)
	out := sc.detect(servers, k)
	detectPool.Put(sc)
	return out
}

var detectPool = sync.Pool{New: func() any { return new(detectScratch) }}

// detectScratch is the reusable working memory of one DetectViolators run:
// the parallel server/value subsets for the metric under evaluation, and the
// sort buffer MedianMADInto consumes.
type detectScratch struct {
	srvs []*report.ServerPerf
	vals []float64
	sort []float64
}

func (sc *detectScratch) detect(servers []*report.ServerPerf, k float64) []Violation {
	var out []Violation

	sc.srvs, sc.vals = sc.srvs[:0], sc.vals[:0]
	for _, s := range servers {
		if s.SmallCount > 0 {
			sc.srvs = append(sc.srvs, s)
			sc.vals = append(sc.vals, s.SmallMeanTimeMs)
		}
	}
	med, mad, buf, err := stats.MedianMADInto(sc.vals, sc.sort)
	sc.sort = buf
	if err == nil {
		th := stats.OutlierThreshold{Median: med, MAD: mad, K: k, Side: stats.UpperOutlier}
		for i, s := range sc.srvs {
			if th.IsOutlier(sc.vals[i]) {
				out = append(out, Violation{
					Server:   s,
					Metric:   MetricSmallTime,
					Value:    sc.vals[i],
					Median:   th.Median,
					MAD:      th.MAD,
					Distance: th.Distance(sc.vals[i]),
				})
			}
		}
	}

	// The small pass is complete, so its subsets can be recycled for the
	// large pass; servers already flagged are found in out itself.
	sc.srvs, sc.vals = sc.srvs[:0], sc.vals[:0]
	for _, s := range servers {
		if s.LargeCount > 0 {
			sc.srvs = append(sc.srvs, s)
			sc.vals = append(sc.vals, s.LargeMeanTputBps)
		}
	}
	med, mad, buf, err = stats.MedianMADInto(sc.vals, sc.sort)
	sc.sort = buf
	if err == nil {
		th := stats.OutlierThreshold{Median: med, MAD: mad, K: k, Side: stats.LowerOutlier}
		for i, s := range sc.srvs {
			if violatesAlready(out, s.Addr) {
				continue // already a violator via small objects
			}
			if th.IsOutlier(sc.vals[i]) {
				out = append(out, Violation{
					Server:   s,
					Metric:   MetricLargeTput,
					Value:    sc.vals[i],
					Median:   th.Median,
					MAD:      th.MAD,
					Distance: th.Distance(sc.vals[i]),
				})
			}
		}
	}
	return out
}

// violatesAlready reports whether addr is already flagged in out. Violations
// per report are few, so a linear scan beats allocating a set.
func violatesAlready(out []Violation, addr string) bool {
	for i := range out {
		if out[i].Server.Addr == addr {
			return true
		}
	}
	return false
}

// AbsoluteThresholds is the naive alternative Oak's design rejects
// (Section 6): fixed cutoffs instead of per-load relative ones. It exists
// for the ablation benchmarks that quantify the difference.
type AbsoluteThresholds struct {
	// MaxSmallTimeMs flags servers whose mean small-object time exceeds
	// this many milliseconds. Zero disables the check.
	MaxSmallTimeMs float64
	// MinLargeTputBps flags servers whose mean large-object throughput
	// falls below this many bytes/second. Zero disables the check.
	MinLargeTputBps float64
}

// DetectViolatorsAbsolute flags servers against fixed thresholds.
func DetectViolatorsAbsolute(servers []*report.ServerPerf, th AbsoluteThresholds) []Violation {
	var out []Violation
	for _, s := range servers {
		switch {
		case th.MaxSmallTimeMs > 0 && s.SmallCount > 0 && s.SmallMeanTimeMs > th.MaxSmallTimeMs:
			out = append(out, Violation{
				Server:   s,
				Metric:   MetricSmallTime,
				Value:    s.SmallMeanTimeMs,
				Median:   th.MaxSmallTimeMs,
				Distance: s.SmallMeanTimeMs - th.MaxSmallTimeMs,
			})
		case th.MinLargeTputBps > 0 && s.LargeCount > 0 && s.LargeMeanTputBps < th.MinLargeTputBps:
			out = append(out, Violation{
				Server:   s,
				Metric:   MetricLargeTput,
				Value:    s.LargeMeanTputBps,
				Median:   th.MinLargeTputBps,
				Distance: th.MinLargeTputBps - s.LargeMeanTputBps,
			})
		}
	}
	return out
}
