// Package core implements the Oak engine (Section 4 of the paper): violator
// detection over client-reported performance, connection-dependency rule
// matching, per-user rule activation with history, and page modification.
package core

import (
	"fmt"

	"oak/internal/report"
	"oak/internal/stats"
)

// MetricKind identifies which performance signal flagged a server.
type MetricKind int

const (
	// MetricSmallTime flags mean small-object (<50 KB) download time:
	// longer is worse.
	MetricSmallTime MetricKind = iota + 1
	// MetricLargeTput flags mean large-object throughput: lower is worse.
	MetricLargeTput
)

// String names the metric.
func (m MetricKind) String() string {
	switch m {
	case MetricSmallTime:
		return "small-time"
	case MetricLargeTput:
		return "large-throughput"
	default:
		return fmt.Sprintf("metric-%d", int(m))
	}
}

// Violation is one server flagged as under-performing relative to the other
// servers the same client contacted during the same load.
type Violation struct {
	// Server is the flagged server's per-load summary.
	Server *report.ServerPerf
	// Metric says which signal crossed the MAD criterion.
	Metric MetricKind
	// Value is the server's metric value (ms or B/s).
	Value float64
	// Median and MAD describe the population the server was judged against.
	Median float64
	MAD    float64
	// Distance is how far beyond the median, in the "worse" direction, the
	// server sits. It feeds the rule-history mechanism (Section 4.2.3).
	Distance float64
}

// DetectViolators applies the paper's MAD criterion (Section 4.2.1) to one
// report's per-server summaries: a server is a violator if its mean
// small-object time exceeds median + k*MAD of the small-object times, or its
// mean large-object throughput falls below median - k*MAD of the
// throughputs. A server with both object classes violates if either signal
// does; it is reported once, with the first violating metric.
//
// The criterion is relative by construction: a client whose every path is
// slow produces a high median and flags nothing, so Oak "need not waste its
// time with such cases".
func DetectViolators(servers []*report.ServerPerf, k float64) []Violation {
	var out []Violation
	flagged := make(map[string]bool)

	smallServers, times := report.SmallTimes(servers)
	if th, err := stats.NewOutlierThreshold(times, k, stats.UpperOutlier); err == nil {
		for i, s := range smallServers {
			if th.IsOutlier(times[i]) {
				flagged[s.Addr] = true
				out = append(out, Violation{
					Server:   s,
					Metric:   MetricSmallTime,
					Value:    times[i],
					Median:   th.Median,
					MAD:      th.MAD,
					Distance: th.Distance(times[i]),
				})
			}
		}
	}

	largeServers, tputs := report.LargeTputs(servers)
	if th, err := stats.NewOutlierThreshold(tputs, k, stats.LowerOutlier); err == nil {
		for i, s := range largeServers {
			if flagged[s.Addr] {
				continue // already a violator via small objects
			}
			if th.IsOutlier(tputs[i]) {
				flagged[s.Addr] = true
				out = append(out, Violation{
					Server:   s,
					Metric:   MetricLargeTput,
					Value:    tputs[i],
					Median:   th.Median,
					MAD:      th.MAD,
					Distance: th.Distance(tputs[i]),
				})
			}
		}
	}
	return out
}

// AbsoluteThresholds is the naive alternative Oak's design rejects
// (Section 6): fixed cutoffs instead of per-load relative ones. It exists
// for the ablation benchmarks that quantify the difference.
type AbsoluteThresholds struct {
	// MaxSmallTimeMs flags servers whose mean small-object time exceeds
	// this many milliseconds. Zero disables the check.
	MaxSmallTimeMs float64
	// MinLargeTputBps flags servers whose mean large-object throughput
	// falls below this many bytes/second. Zero disables the check.
	MinLargeTputBps float64
}

// DetectViolatorsAbsolute flags servers against fixed thresholds.
func DetectViolatorsAbsolute(servers []*report.ServerPerf, th AbsoluteThresholds) []Violation {
	var out []Violation
	for _, s := range servers {
		switch {
		case th.MaxSmallTimeMs > 0 && s.SmallCount > 0 && s.SmallMeanTimeMs > th.MaxSmallTimeMs:
			out = append(out, Violation{
				Server:   s,
				Metric:   MetricSmallTime,
				Value:    s.SmallMeanTimeMs,
				Median:   th.MaxSmallTimeMs,
				Distance: s.SmallMeanTimeMs - th.MaxSmallTimeMs,
			})
		case th.MinLargeTputBps > 0 && s.LargeCount > 0 && s.LargeMeanTputBps < th.MinLargeTputBps:
			out = append(out, Violation{
				Server:   s,
				Metric:   MetricLargeTput,
				Value:    s.LargeMeanTputBps,
				Median:   th.MinLargeTputBps,
				Distance: th.MinLargeTputBps - s.LargeMeanTputBps,
			})
		}
	}
	return out
}
