package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"oak/internal/rules"
)

// Serve-path benchmarks: cold (every request recomputes the rewrite), warm
// (rewrite cache hit), no-op (user with no activations — must not
// allocate), and parallel warm serving. scripts/bench_serve.sh turns these
// into BENCH_serve.json.

// benchServeRules builds n Type 2/1 rules over distinct third-party blocks.
func benchServeRules(n int) []*rules.Rule {
	rs := make([]*rules.Rule, 0, n)
	for i := 0; i < n; i++ {
		if i%3 == 0 {
			rs = append(rs, &rules.Rule{
				ID:      fmt.Sprintf("kill-%d", i),
				Type:    rules.TypeRemove,
				Default: fmt.Sprintf(`<script src="http://tracker%d.example/t.js"></script>`, i),
				Scope:   "*",
			})
			continue
		}
		rs = append(rs, &rules.Rule{
			ID:      fmt.Sprintf("swap-%d", i),
			Type:    rules.TypeReplaceSame,
			Default: fmt.Sprintf(`<script src="http://cdn%d.example/lib.js">`, i),
			Alternatives: []string{
				fmt.Sprintf(`<script src="http://alt%d.example/lib.js">`, i),
			},
			Scope: "*",
		})
	}
	return rs
}

// benchServePage builds a page where every rule matches once, padded with
// realistic filler so the scan cost is visible.
func benchServePage(rs []*rules.Rule) string {
	var b strings.Builder
	b.WriteString("<html><head><title>bench</title></head><body>\n")
	for i, r := range rs {
		fmt.Fprintf(&b, "<div class=\"sect-%d\">%s</div>\n", i, strings.Repeat("<p>copy copy copy</p>", 20))
		b.WriteString(r.Default)
		if r.Type == rules.TypeRemove {
			b.WriteString("") // Default already carries the closing tag
		} else {
			b.WriteString("</script>")
		}
		b.WriteString("\n")
	}
	b.WriteString("</body></html>\n")
	return b.String()
}

// benchServeEngine builds an engine with every rule activated for "u1".
func benchServeEngine(b *testing.B, rs []*rules.Rule, opts ...Option) *Engine {
	b.Helper()
	e, err := NewEngine(rs, opts...)
	if err != nil {
		b.Fatal(err)
	}
	now := time.Now()
	sh := e.shardFor("u1")
	sh.mu.Lock()
	prof := e.profileLocked(sh, "u1")
	for _, r := range e.ruleSnapshot() {
		prof.activate(r, 0, now, "bench-server", 10)
	}
	sh.mu.Unlock()
	return e
}

const benchServeRuleCount = 8

// BenchmarkModifyPageCold measures the per-request rewrite with no rewrite
// cache: the compiled applier recomputes the page every time (the
// activation derivation itself is still epoch-cached, as in production).
func BenchmarkModifyPageCold(b *testing.B) {
	rs := benchServeRules(benchServeRuleCount)
	page := benchServePage(rs)
	e := benchServeEngine(b, rs)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, applied := e.ModifyPage("u1", "/index.html", page)
		if len(applied) == 0 || out == page {
			b.Fatal("rewrite did not apply")
		}
	}
}

// BenchmarkModifyPageWarm measures the same rewrite served from the rewrite
// cache: one content hash, one probe, zero rule work.
func BenchmarkModifyPageWarm(b *testing.B) {
	rs := benchServeRules(benchServeRuleCount)
	page := benchServePage(rs)
	e := benchServeEngine(b, rs, WithRewriteCache(1024))
	if rw := e.RewritePage("u1", "/index.html", page); len(rw.Applied) == 0 {
		b.Fatal("warming rewrite did not apply")
	}
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rw := e.RewritePage("u1", "/index.html", page)
		if !rw.CacheHit {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkModifyPageNoOp measures serving a user with no activations; the
// acceptance bar is zero allocations per call.
func BenchmarkModifyPageNoOp(b *testing.B) {
	rs := benchServeRules(benchServeRuleCount)
	page := benchServePage(rs)
	e := benchServeEngine(b, rs, WithRewriteCache(1024))
	e.ModifyPage("visitor", "/index.html", page) // settle any one-time state
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, applied := e.ModifyPage("visitor", "/index.html", page)
		if applied != nil || out != page {
			b.Fatal("no-op path modified the page")
		}
	}
}

// BenchmarkModifyPageParallel serves the warm path from all CPUs at once.
func BenchmarkModifyPageParallel(b *testing.B) {
	rs := benchServeRules(benchServeRuleCount)
	page := benchServePage(rs)
	e := benchServeEngine(b, rs, WithRewriteCache(1024))
	e.RewritePage("u1", "/index.html", page)
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			rw := e.RewritePage("u1", "/index.html", page)
			if rw.HTML == page {
				b.Fatal("rewrite did not apply")
			}
		}
	})
}

// BenchmarkApplySequentialReference is the pre-compilation baseline: the
// sequential Count+ReplaceAll chain the compiled applier replaces.
func BenchmarkApplySequentialReference(b *testing.B) {
	rs := benchServeRules(benchServeRuleCount)
	page := benchServePage(rs)
	e := benchServeEngine(b, rs)
	acts := e.ActiveRules("u1", "/index.html")
	b.SetBytes(int64(len(page)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out, applied := rules.Apply(page, "/index.html", acts)
		if len(applied) == 0 || out == page {
			b.Fatal("rewrite did not apply")
		}
	}
}
