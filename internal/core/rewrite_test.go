package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"oak/internal/rules"
)

const rewriteTestPage = `<html><body>
<script src="http://s1.com/jquery.js"></script>
<p>content</p>
</body></html>`

// activatedEngine builds an engine with a TTL'd jquery rule activated for
// user "u1" via a real report.
func activatedEngine(t *testing.T, ttl time.Duration, opts ...Option) (*Engine, *testClock) {
	t.Helper()
	clock := newTestClock()
	opts = append([]Option{WithClock(clock.Now)}, opts...)
	e, err := NewEngine([]*rules.Rule{jqRule(ttl)}, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.HandleReport(slowS1Report("u1")); err != nil {
		t.Fatal(err)
	}
	return e, clock
}

func TestRewritePageMatchesModifyPage(t *testing.T) {
	e, _ := activatedEngine(t, 0)
	rw := e.RewritePage("u1", "/index.html", rewriteTestPage)
	out, applied := e.ModifyPage("u1", "/index.html", rewriteTestPage)
	if rw.HTML != out {
		t.Errorf("RewritePage HTML %q != ModifyPage %q", rw.HTML, out)
	}
	if len(rw.Applied) != len(applied) {
		t.Errorf("Applied mismatch: %+v vs %+v", rw.Applied, applied)
	}
	if want := rules.CacheHintValue(applied); rw.Hint != want {
		t.Errorf("Hint = %q, want %q", rw.Hint, want)
	}
	if !strings.Contains(rw.HTML, "s2.net") {
		t.Errorf("rewrite did not apply: %q", rw.HTML)
	}
}

func TestRewritePageUnknownUserNoOp(t *testing.T) {
	e, _ := activatedEngine(t, 0)
	rw := e.RewritePage("nobody", "/index.html", rewriteTestPage)
	if rw.HTML != rewriteTestPage || rw.Applied != nil || rw.Hint != "" || rw.CacheHit {
		t.Errorf("unknown user rewrite = %+v", rw)
	}
}

// TestActivationEpochExpiryBoundary is the satellite expiry-boundary test: a
// rule lapsing exactly between two ActiveRules calls — with no ingest in
// between — must bump the profile epoch and invalidate both the activation
// cache and the rewrite cache.
func TestActivationEpochExpiryBoundary(t *testing.T) {
	e, clock := activatedEngine(t, time.Minute, WithRewriteCache(16))

	if got := e.ActiveRules("u1", "/index.html"); len(got) != 1 {
		t.Fatalf("activations before expiry = %+v, want 1", got)
	}
	fpBefore := e.ActivationFingerprint("u1", "/index.html")
	if fpBefore == 0 {
		t.Fatal("fingerprint zero while a rule is active")
	}
	// Warm the rewrite cache.
	rw := e.RewritePage("u1", "/index.html", rewriteTestPage)
	if !strings.Contains(rw.HTML, "s2.net") {
		t.Fatalf("warming rewrite did not apply: %q", rw.HTML)
	}
	rw = e.RewritePage("u1", "/index.html", rewriteTestPage)
	if !rw.CacheHit {
		t.Fatal("second rewrite should hit the cache")
	}

	// At exactly ExpiresAt the rule is still active (Expired uses After).
	clock.Advance(time.Minute)
	if got := e.ActiveRules("u1", "/index.html"); len(got) != 1 {
		t.Fatalf("activations at exact expiry instant = %+v, want still 1", got)
	}
	rw = e.RewritePage("u1", "/index.html", rewriteTestPage)
	if !strings.Contains(rw.HTML, "s2.net") {
		t.Errorf("rewrite at exact expiry instant lost the rule: %q", rw.HTML)
	}

	// One nanosecond past the deadline the activation is gone — observed on
	// the read path with no ingest.
	clock.Advance(time.Nanosecond)
	if got := e.ActiveRules("u1", "/index.html"); len(got) != 0 {
		t.Fatalf("activations after expiry = %+v, want none", got)
	}
	if fp := e.ActivationFingerprint("u1", "/index.html"); fp != 0 {
		t.Errorf("fingerprint after expiry = %d, want 0", fp)
	}
	rw = e.RewritePage("u1", "/index.html", rewriteTestPage)
	if rw.HTML != rewriteTestPage || rw.CacheHit {
		t.Errorf("rewrite after expiry = %+v, want untouched page, no cache hit", rw)
	}
}

func TestRewriteCacheHitMissEviction(t *testing.T) {
	e, _ := activatedEngine(t, 0, WithRewriteCache(rewriteCacheShards)) // 1 entry per shard

	rw := e.RewritePage("u1", "/index.html", rewriteTestPage)
	if rw.CacheHit {
		t.Fatal("first rewrite cannot be a cache hit")
	}
	rw2 := e.RewritePage("u1", "/index.html", rewriteTestPage)
	if !rw2.CacheHit || rw2.HTML != rw.HTML || rw2.Hint != rw.Hint {
		t.Fatalf("second rewrite = %+v, want cache hit identical to first", rw2)
	}
	st := e.RewriteCacheStats()
	if st.Hits != 1 || st.Misses != 1 || !st.Enabled {
		t.Errorf("stats after hit = %+v", st)
	}
	if st.Bytes <= 0 || st.Entries != 1 {
		t.Errorf("stats accounting = %+v, want positive bytes and 1 entry", st)
	}

	// Distinct page contents eventually collide on a shard (1 entry each)
	// and evict.
	for i := 0; i < 64; i++ {
		page := fmt.Sprintf("%s<!-- v%d -->", rewriteTestPage, i)
		e.RewritePage("u1", "/index.html", page)
	}
	if st = e.RewriteCacheStats(); st.Evictions == 0 {
		t.Errorf("no evictions after overfilling: %+v", st)
	}
	if st.Entries > rewriteCacheShards {
		t.Errorf("entries %d exceed capacity %d", st.Entries, rewriteCacheShards)
	}

	e.FlushRewriteCache()
	if st = e.RewriteCacheStats(); st.Entries != 0 || st.Bytes != 0 {
		t.Errorf("stats after flush = %+v, want empty", st)
	}
}

func TestRewriteCacheDisabledIdenticalBehavior(t *testing.T) {
	eCached, _ := activatedEngine(t, 0, WithRewriteCache(64))
	ePlain, _ := activatedEngine(t, 0, WithRewriteCache(0))

	for i := 0; i < 3; i++ {
		a := eCached.RewritePage("u1", "/index.html", rewriteTestPage)
		b := ePlain.RewritePage("u1", "/index.html", rewriteTestPage)
		if a.HTML != b.HTML || a.Hint != b.Hint || len(a.Applied) != len(b.Applied) {
			t.Fatalf("pass %d: cached %+v != plain %+v", i, a, b)
		}
		if b.CacheHit {
			t.Fatal("disabled cache reported a hit")
		}
	}
	if st := ePlain.RewriteCacheStats(); st.Enabled || st.Hits != 0 || st.Misses != 0 {
		t.Errorf("disabled cache stats = %+v, want zero", st)
	}
}

func TestRewriteCacheInvalidatedBySetRules(t *testing.T) {
	e, _ := activatedEngine(t, 0, WithRewriteCache(64))
	e.RewritePage("u1", "/index.html", rewriteTestPage)
	rw := e.RewritePage("u1", "/index.html", rewriteTestPage)
	if !rw.CacheHit {
		t.Fatal("expected warm cache")
	}
	if err := e.SetRules([]*rules.Rule{jqRule(0)}); err != nil {
		t.Fatal(err)
	}
	rw = e.RewritePage("u1", "/index.html", rewriteTestPage)
	if rw.CacheHit {
		t.Error("cache hit survived a rule-set swap")
	}
}

func TestRewriteCachedFastPath(t *testing.T) {
	e, _ := activatedEngine(t, 0, WithRewriteCache(64))

	// Unknown user: servable without computing anything.
	rw, ok := e.RewriteCached("nobody", "/index.html", rewriteTestPage)
	if !ok || rw.HTML != rewriteTestPage {
		t.Fatalf("RewriteCached(nobody) = (%+v, %v), want no-op ok", rw, ok)
	}
	// Active user, cold cache: must decline.
	if _, ok := e.RewriteCached("u1", "/index.html", rewriteTestPage); ok {
		t.Fatal("RewriteCached served a rewrite it should have declined to compute")
	}
	e.RewritePage("u1", "/index.html", rewriteTestPage)
	rw, ok = e.RewriteCached("u1", "/index.html", rewriteTestPage)
	if !ok || !rw.CacheHit || !strings.Contains(rw.HTML, "s2.net") {
		t.Fatalf("RewriteCached after warm = (%+v, %v), want cache hit", rw, ok)
	}
}

func TestRewriteCachedNoCacheConfigured(t *testing.T) {
	e, _ := activatedEngine(t, 0)
	// No cache: active user always declines, no-activation user still served.
	if _, ok := e.RewriteCached("u1", "/index.html", rewriteTestPage); ok {
		t.Fatal("RewriteCached computed a rewrite without a cache")
	}
	if rw, ok := e.RewriteCached("nobody", "/index.html", rewriteTestPage); !ok || rw.HTML != rewriteTestPage {
		t.Fatalf("RewriteCached(nobody) = (%+v, %v)", rw, ok)
	}
}

// TestRewriteNoOpPathZeroAlloc is the acceptance criterion that serving a
// user with no activations allocates nothing.
func TestRewriteNoOpPathZeroAlloc(t *testing.T) {
	e, _ := activatedEngine(t, 0, WithRewriteCache(64))
	// Users that have reported but activated nothing also take the no-op
	// path; exercise the stricter profile-less variant and the cached-entry
	// variant.
	e.RewritePage("nobody", "/index.html", rewriteTestPage) // warm (first call may build cache state)
	if allocs := testing.AllocsPerRun(200, func() {
		e.RewritePage("nobody", "/index.html", rewriteTestPage)
	}); allocs != 0 {
		t.Errorf("no-profile RewritePage allocates %v/call, want 0", allocs)
	}
	if allocs := testing.AllocsPerRun(200, func() {
		if _, ok := e.RewriteCached("nobody", "/index.html", rewriteTestPage); !ok {
			t.Fatal("fast path declined")
		}
	}); allocs != 0 {
		t.Errorf("no-profile RewriteCached allocates %v/call, want 0", allocs)
	}
}

// TestModifyPageConcurrentWithIngest hammers the serve path against
// ingest-driven activation changes and TTL expiry; run with -race this
// checks the epoch/cache machinery publishes entries safely.
func TestModifyPageConcurrentWithIngest(t *testing.T) {
	clock := newTestClock()
	e, err := NewEngine([]*rules.Rule{jqRule(50 * time.Millisecond)},
		WithClock(clock.Now), WithRewriteCache(32))
	if err != nil {
		t.Fatal(err)
	}
	const (
		users   = 4
		readers = 4
		iters   = 300
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Clock mover: expire activations mid-flight. Stopped after the
	// workers finish.
	var clockWG sync.WaitGroup
	clockWG.Add(1)
	go func() {
		defer clockWG.Done()
		for {
			select {
			case <-stop:
				return
			default:
				clock.Advance(10 * time.Millisecond)
			}
		}
	}()
	// Ingest writers: re-activate rules (epoch bumps under write lock).
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			user := fmt.Sprintf("u%d", u)
			for i := 0; i < iters; i++ {
				if _, err := e.HandleReport(slowS1Report(user)); err != nil {
					t.Error(err)
					return
				}
			}
		}(u)
	}
	// Serve readers: ModifyPage + the cached fast path, checking invariants.
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters*2; i++ {
				user := fmt.Sprintf("u%d", (g+i)%users)
				out, applied := e.ModifyPage(user, "/index.html", rewriteTestPage)
				if len(applied) > 0 && applied[0].Replacements > 0 {
					if !strings.Contains(out, "s2.net") || strings.Contains(out, "s1.com") {
						t.Errorf("inconsistent rewrite: applied=%+v out=%q", applied, out)
						return
					}
				} else if out != rewriteTestPage {
					t.Errorf("no-op rewrite changed the page: %q", out)
					return
				}
				if rw, ok := e.RewriteCached(user, "/index.html", rewriteTestPage); ok {
					if rw.HTML != rewriteTestPage && !strings.Contains(rw.HTML, "s2.net") {
						t.Errorf("cached rewrite inconsistent: %q", rw.HTML)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	clockWG.Wait()
}
