package core

import (
	"testing"
	"time"
)

// Population-ingest benchmarks: the numbers behind BENCH_synth.json (make
// bench-synth). SynthOff is the pre-population baseline; SynthOn adds the
// per-report sketch feed plus the amortised window tick. The acceptance
// bar for the population layer is SynthOn within 5% of SynthOff.

// benchSynthesis is a production-shaped config: a window long enough that
// tick elections almost never fire inside the measured loop, so the
// numbers isolate the steady-state per-report cost (sketch feed + degraded
// pointer load), not the periodic fold.
func benchSynthesis() Option {
	return WithSynthesis(SynthesisConfig{Window: time.Hour})
}

// BenchmarkHandleReportSynthOff is the baseline: same engine, same
// reports, population layer disabled.
func BenchmarkHandleReportSynthOff(b *testing.B) {
	e := benchEngine(b)
	reports := benchReports("synthoff")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(reports[i%benchUserPool]); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b)
}

// BenchmarkHandleReportSynthOn measures ingest with the population layer
// feeding per-provider sketches on every report.
func BenchmarkHandleReportSynthOn(b *testing.B) {
	e := benchEngine(b, benchSynthesis())
	reports := benchReports("synthon")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(reports[i%benchUserPool]); err != nil {
			b.Fatal(err)
		}
	}
	reportThroughput(b)
}

// BenchmarkHandleReportSynthOnParallel is the contended variant: sketch
// feeds happen under the shard write lock, so any added contention shows
// up here rather than in the serial number.
func BenchmarkHandleReportSynthOnParallel(b *testing.B) {
	benchParallel(b, benchEngine(b, benchSynthesis()))
}
