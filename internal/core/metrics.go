package core

import (
	"sync/atomic"

	"oak/internal/obs"
)

// Metrics are the engine's aggregate counters — the "aggregate site
// performance" bookkeeping the paper's server maintains alongside per-user
// state. All counters are monotone and safe to read concurrently.
type Metrics struct {
	// ReportsHandled counts successfully processed performance reports.
	ReportsHandled uint64
	// EntriesProcessed counts object timings across all reports.
	EntriesProcessed uint64
	// ViolationsDetected counts violator flags across all reports.
	ViolationsDetected uint64
	// RuleActivations counts activate + advance transitions.
	RuleActivations uint64
	// RuleDeactivations counts deactivate transitions (history reverts).
	RuleDeactivations uint64
	// RuleExpirations counts TTL lapses observed at report time.
	RuleExpirations uint64
	// PagesModified counts ModifyPage calls that changed the page.
	PagesModified uint64
	// PagesUntouched counts ModifyPage calls that returned the page as-is.
	PagesUntouched uint64
	// ReportsShed counts report submissions refused with ErrOverloaded by
	// the load-shedding admission policy (WithLoadShedding).
	ReportsShed uint64
	// StateRecoveries counts boots (LoadStateFile calls) that restored
	// state from the rotating backup because the primary snapshot was
	// damaged or missing.
	StateRecoveries uint64
}

// metrics is the engine-internal atomic representation.
type metrics struct {
	reportsHandled     atomic.Uint64
	entriesProcessed   atomic.Uint64
	violationsDetected atomic.Uint64
	ruleActivations    atomic.Uint64
	ruleDeactivations  atomic.Uint64
	ruleExpirations    atomic.Uint64
	pagesModified      atomic.Uint64
	pagesUntouched     atomic.Uint64
	reportsShed        obs.Counter
	stateRecoveries    obs.Counter
}

// snapshot copies the counters.
func (m *metrics) snapshot() Metrics {
	return Metrics{
		ReportsHandled:     m.reportsHandled.Load(),
		EntriesProcessed:   m.entriesProcessed.Load(),
		ViolationsDetected: m.violationsDetected.Load(),
		RuleActivations:    m.ruleActivations.Load(),
		RuleDeactivations:  m.ruleDeactivations.Load(),
		RuleExpirations:    m.ruleExpirations.Load(),
		PagesModified:      m.pagesModified.Load(),
		PagesUntouched:     m.pagesUntouched.Load(),
		ReportsShed:        m.reportsShed.Value(),
		StateRecoveries:    m.stateRecoveries.Value(),
	}
}

// Metrics returns a snapshot of the engine's aggregate counters.
func (e *Engine) Metrics() Metrics {
	return e.metrics.snapshot()
}
