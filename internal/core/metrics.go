package core

import (
	"sync/atomic"

	"oak/internal/obs"
)

// Metrics are the engine's aggregate counters — the "aggregate site
// performance" bookkeeping the paper's server maintains alongside per-user
// state. All counters are monotone and safe to read concurrently.
type Metrics struct {
	// ReportsHandled counts successfully processed performance reports.
	ReportsHandled uint64
	// EntriesProcessed counts object timings across all reports.
	EntriesProcessed uint64
	// ViolationsDetected counts violator flags across all reports.
	ViolationsDetected uint64
	// RuleActivations counts activate + advance transitions.
	RuleActivations uint64
	// RuleDeactivations counts deactivate transitions (history reverts).
	RuleDeactivations uint64
	// RuleExpirations counts TTL lapses observed at report time.
	RuleExpirations uint64
	// PagesModified counts ModifyPage calls that changed the page.
	PagesModified uint64
	// PagesUntouched counts ModifyPage calls that returned the page as-is.
	PagesUntouched uint64
	// ReportsShed counts report submissions refused with ErrOverloaded by
	// the load-shedding admission policy (WithLoadShedding).
	ReportsShed uint64
	// StateRecoveries counts boots (LoadStateFile calls) that restored
	// state from the rotating backup because the primary snapshot was
	// damaged or missing.
	StateRecoveries uint64
	// BreakerTrips counts guard breaker trips (including half-open
	// reopens): a provider crossing into quarantine.
	BreakerTrips uint64
	// BreakerCloses counts breakers closing after successful half-open
	// canaries: a provider re-admitted.
	BreakerCloses uint64
	// ActivationsBlocked counts activations (and advances) the guard
	// refused because the target provider's breaker was not admitting.
	ActivationsBlocked uint64
	// BulkDeactivations counts activations rolled back by breaker trips
	// and rule quarantines (one per activation removed, across all users).
	BulkDeactivations uint64
	// CanaryActivations counts activations admitted through a half-open
	// breaker's canary budget.
	CanaryActivations uint64
	// RewritePanics counts panics recovered on the serve path (compiled
	// applier or per-rule fallback); each one served a safe page instead
	// of failing the request.
	RewritePanics uint64
	// RuleQuarantines counts rules auto-quarantined after repeated
	// rewrite panics.
	RuleQuarantines uint64
	// PopulationTrips counts providers flagged as population-degraded
	// (window quantile vs trailing baseline, plus manual MarkDegraded).
	PopulationTrips uint64
	// PopulationRecoveries counts degraded providers returning to baseline
	// (plus manual ClearDegraded).
	PopulationRecoveries uint64
	// SynthesizedActivations counts rule activations created by
	// population-level synthesis (also included in RuleActivations).
	SynthesizedActivations uint64
	// SynthesisBlocked counts synthesis attempts refused by the guard with
	// no admissible alternative.
	SynthesisBlocked uint64
	// PopulationSamplesDropped counts population samples discarded by the
	// per-shard MaxProviders cap.
	PopulationSamplesDropped uint64
	// ProfileSpills counts profiles evicted from memory to the spill tier's
	// segment files (WithProfileResidency).
	ProfileSpills uint64
	// Rehydrations counts spilled profiles brought back into memory by a
	// report or page request.
	Rehydrations uint64
	// SegmentCompactions counts spill segments rewritten (or removed) by
	// the ingest-driven compactor.
	SegmentCompactions uint64
	// SpillErrors counts spill-tier failures: I/O errors that degraded the
	// store to memory-only mode and segments quarantined for damage.
	SpillErrors uint64
}

// metrics is the engine-internal atomic representation.
type metrics struct {
	reportsHandled     atomic.Uint64
	entriesProcessed   atomic.Uint64
	violationsDetected atomic.Uint64
	ruleActivations    atomic.Uint64
	ruleDeactivations  atomic.Uint64
	ruleExpirations    atomic.Uint64
	pagesModified      atomic.Uint64
	pagesUntouched     atomic.Uint64
	reportsShed        obs.Counter
	stateRecoveries    obs.Counter
	breakerTrips       obs.Counter
	breakerCloses      obs.Counter
	activationsBlocked obs.Counter
	bulkDeactivations  obs.Counter
	canaryActivations  obs.Counter
	rewritePanics      obs.Counter
	ruleQuarantines    obs.Counter

	popTrips               obs.Counter
	popRecoveries          obs.Counter
	synthesizedActivations obs.Counter
	synthesisBlocked       obs.Counter
	popSamplesDropped      obs.Counter

	profileSpills      obs.Counter
	rehydrations       obs.Counter
	segmentCompactions obs.Counter
	spillErrors        obs.Counter
}

// snapshot copies the counters.
func (m *metrics) snapshot() Metrics {
	return Metrics{
		ReportsHandled:     m.reportsHandled.Load(),
		EntriesProcessed:   m.entriesProcessed.Load(),
		ViolationsDetected: m.violationsDetected.Load(),
		RuleActivations:    m.ruleActivations.Load(),
		RuleDeactivations:  m.ruleDeactivations.Load(),
		RuleExpirations:    m.ruleExpirations.Load(),
		PagesModified:      m.pagesModified.Load(),
		PagesUntouched:     m.pagesUntouched.Load(),
		ReportsShed:        m.reportsShed.Value(),
		StateRecoveries:    m.stateRecoveries.Value(),
		BreakerTrips:       m.breakerTrips.Value(),
		BreakerCloses:      m.breakerCloses.Value(),
		ActivationsBlocked: m.activationsBlocked.Value(),
		BulkDeactivations:  m.bulkDeactivations.Value(),
		CanaryActivations:  m.canaryActivations.Value(),
		RewritePanics:      m.rewritePanics.Value(),
		RuleQuarantines:    m.ruleQuarantines.Value(),

		PopulationTrips:          m.popTrips.Value(),
		PopulationRecoveries:     m.popRecoveries.Value(),
		SynthesizedActivations:   m.synthesizedActivations.Value(),
		SynthesisBlocked:         m.synthesisBlocked.Value(),
		PopulationSamplesDropped: m.popSamplesDropped.Value(),

		ProfileSpills:      m.profileSpills.Value(),
		Rehydrations:       m.rehydrations.Value(),
		SegmentCompactions: m.segmentCompactions.Value(),
		SpillErrors:        m.spillErrors.Value(),
	}
}

// Metrics returns a snapshot of the engine's aggregate counters.
func (e *Engine) Metrics() Metrics {
	return e.metrics.snapshot()
}
