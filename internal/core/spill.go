package core

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"oak/internal/guard"
	"oak/internal/obs"
)

// The spill tier bounds the engine's resident set. Profiles of users who
// have not reported recently are evicted from their shard's map, encoded as
// OAKPROF1 records (spillcodec.go) and appended — fsync before forget — to
// segment files; the next report or page request for a spilled user
// rehydrates the profile transparently. Everything is ingest-driven: there
// is no background goroutine, so the tier works identically under virtual
// clocks and never races a shutdown.
//
// Durability contract: a profile is only removed from memory after its
// record is durable (write + fsync). A crash at any instant therefore loses
// at most the purely-resident state since the last SaveStateFile — exactly
// the guarantee the engine gave before the spill tier existed — and never a
// spilled profile. Boot recovery replays the segment directory: later
// records supersede earlier ones, a torn tail (crash mid-append) is
// truncated away, and a segment that fails its checksums is quarantined and
// skipped rather than aborting boot.
//
// Failure contract: any spill I/O failure (create, append, fsync) latches
// the store into memory-only mode — evictions stop, resident state grows as
// if the tier were disabled, healthz reports degraded, and serving
// continues. Damaged segment bytes discovered at runtime quarantine that
// segment the same way boot recovery would.

// ResidencyConfig bounds the resident profile population (WithProfileResidency).
type ResidencyConfig struct {
	// Dir is the segment directory (required). Created if absent.
	Dir string
	// MaxProfiles caps resident profiles across the engine; 0 = no count cap.
	MaxProfiles int
	// MaxBytes caps estimated resident profile bytes across the engine;
	// 0 = no byte cap. At least one cap must be set.
	MaxBytes int64
	// SegmentBytes rotates the append segment when it grows past this size
	// (default 4 MiB).
	SegmentBytes int64
	// CompactRatio is the dead-record fraction at which the ingest-driven
	// compactor rewrites a sealed segment (default 0.5).
	CompactRatio float64
}

// spillDefaultSegmentBytes is the default segment rotation size.
const spillDefaultSegmentBytes = 4 << 20

// spillDefaultCompactRatio is the default dead-record compaction threshold.
const spillDefaultCompactRatio = 0.5

// withDefaults fills zero tuning fields.
func (c ResidencyConfig) withDefaults() ResidencyConfig {
	if c.SegmentBytes <= 0 {
		c.SegmentBytes = spillDefaultSegmentBytes
	}
	if c.CompactRatio <= 0 || c.CompactRatio > 1 {
		c.CompactRatio = spillDefaultCompactRatio
	}
	return c
}

// WithProfileResidency bounds the engine's resident profile set, spilling
// cold profiles to crash-safe segment files under cfg.Dir and rehydrating
// them lazily on the next report or page request. An invalid configuration
// (no directory, no cap) fails engine construction, as does an unusable
// directory; damaged segment files do not — they are quarantined.
func WithProfileResidency(cfg ResidencyConfig) Option {
	return func(e *Engine) { e.residencyCfg = &cfg }
}

// spillRef locates one user's durable record: segment, frame offset and
// length, plus the profile's last-report time for cold-ranking, prune and
// the newer-wins statefile merge. Guarded by the owning shard's mu.
type spillRef struct {
	seg  *spillSegment
	off  int64
	n    int
	last time.Time
}

// spillSegment is one append-log file. A segment is the append target of at
// most one shard at a time (active); sealed segments are immutable and only
// read (ReadAt) or compacted away.
type spillSegment struct {
	seq  uint64
	path string
	f    *os.File
	// size is the file length in bytes (header + frames).
	size atomic.Int64
	// total and dead count records written and records no longer referenced.
	// dead/total is the compaction trigger.
	total atomic.Int64
	dead  atomic.Int64
	// active marks the segment as some shard's current append target;
	// compaction skips active segments.
	active atomic.Bool
	// quarantined marks the segment's bytes as untrustworthy; refs into it
	// are dropped lazily on next touch.
	quarantined atomic.Bool
}

// deadRatio returns the fraction of records no longer referenced.
func (s *spillSegment) deadRatio() float64 {
	t := s.total.Load()
	if t <= 0 {
		return 0
	}
	return float64(s.dead.Load()) / float64(t)
}

// spillStore is the engine-level segment table and degradation latch.
type spillStore struct {
	dir string
	cfg ResidencyConfig
	// perShardProfiles / perShardBytes are the engine caps divided across
	// shards (0 = that cap unset). Residency is enforced per shard so
	// eviction never takes more than one shard lock.
	perShardProfiles int64
	perShardBytes    int64

	mu          sync.Mutex
	segs        map[uint64]*spillSegment
	nextSeq     uint64
	quarantined []string // quarantined segment file names, in discovery order
	closed      bool

	// failed latches memory-only mode after a spill I/O failure.
	failed atomic.Bool
	// compacting serialises the ingest-driven compactor (CAS-elected).
	compacting atomic.Bool

	// spilledUsers counts live spill refs; spillBytes counts live segment
	// file bytes. Lock-free for healthz and the over-cap precheck.
	spilledUsers obs.Gauge
	spillBytes   obs.Gauge
}

// spillFailpoint, when set, is consulted before every spill I/O operation
// (ops: "create", "append", "sync", "read", "compact") and its non-nil error
// is injected as that operation's failure. Tests only — the same idiom as
// rules.SetApplyFailpoint.
var spillFailpoint atomic.Pointer[func(op, path string) error]

// SetSpillFailpoint installs fn as the spill I/O failpoint (nil uninstalls).
// Deterministic disk-fault injection for the chaos suite.
func SetSpillFailpoint(fn func(op, path string) error) {
	if fn == nil {
		spillFailpoint.Store(nil)
		return
	}
	spillFailpoint.Store(&fn)
}

// spillFail consults the failpoint.
func spillFail(op, path string) error {
	if fp := spillFailpoint.Load(); fp != nil {
		return (*fp)(op, path)
	}
	return nil
}

// spillSegPrefix/spillSegSuffix name segment files: seg-%016x.seg.
const (
	spillSegPrefix        = "seg-"
	spillSegSuffix        = ".seg"
	spillQuarantineSuffix = ".quarantined"
)

// spillSegPath names segment seq inside dir.
func spillSegPath(dir string, seq uint64) string {
	return filepath.Join(dir, fmt.Sprintf("%s%016x%s", spillSegPrefix, seq, spillSegSuffix))
}

// initSpill builds the spill store from WithProfileResidency's config and
// replays the segment directory. Called once from NewEngine after the
// shards exist; a config or directory error fails construction.
func (e *Engine) initSpill() error {
	if e.residencyCfg == nil {
		return nil
	}
	cfg := e.residencyCfg.withDefaults()
	if cfg.Dir == "" {
		return errors.New("core: profile residency requires a spill directory")
	}
	if cfg.MaxProfiles <= 0 && cfg.MaxBytes <= 0 {
		return errors.New("core: profile residency requires a profile or byte cap")
	}
	if err := os.MkdirAll(cfg.Dir, 0o700); err != nil {
		return fmt.Errorf("core: create spill directory: %w", err)
	}
	st := &spillStore{
		dir:  cfg.Dir,
		cfg:  cfg,
		segs: make(map[uint64]*spillSegment),
	}
	shards := int64(len(e.shards))
	if cfg.MaxProfiles > 0 {
		st.perShardProfiles = max64(1, int64(cfg.MaxProfiles)/shards)
	}
	if cfg.MaxBytes > 0 {
		st.perShardBytes = max64(1, cfg.MaxBytes/shards)
	}
	for _, sh := range e.shards {
		sh.spilled = make(map[string]spillRef)
	}
	e.spill = st
	return e.recoverSpill()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// recoverSpill replays the segment directory into the shards' spill
// indexes. Later records (higher segment seq, then higher offset) supersede
// earlier ones for the same user. A torn tail is truncated to the last whole
// frame; any other damage quarantines the whole segment — its earlier
// records are no longer trusted either — and boot continues.
func (e *Engine) recoverSpill() error {
	st := e.spill
	ents, err := os.ReadDir(st.dir)
	if err != nil {
		return fmt.Errorf("core: read spill directory: %w", err)
	}
	var seqs []uint64
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, spillSegPrefix) || !strings.HasSuffix(name, spillSegSuffix) {
			continue
		}
		var seq uint64
		if _, err := fmt.Sscanf(name, spillSegPrefix+"%016x"+spillSegSuffix, &seq); err != nil {
			continue
		}
		seqs = append(seqs, seq)
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })

	type recovered struct {
		ref      spillRef
		shardIdx int
	}
	byUser := make(map[string]recovered)
	for _, seq := range seqs {
		path := spillSegPath(st.dir, seq)
		if seq >= st.nextSeq {
			st.nextSeq = seq + 1
		}
		data, err := os.ReadFile(path)
		if err != nil {
			return fmt.Errorf("core: read spill segment %s: %w", path, err)
		}
		if len(data) < len(spillSegMagic) {
			// Crash between segment create and header write: the file holds
			// no records, so nothing acknowledged is in it. Remove it.
			os.Remove(path)
			continue
		}
		if string(data[:len(spillSegMagic)]) != spillSegMagic {
			st.quarantineFile(e, path, fmt.Errorf("%w: %s", ErrSpillMagic, filepath.Base(path)))
			continue
		}
		seg := &spillSegment{seq: seq, path: path}
		// Two-phase replay: parse and validate the whole segment first,
		// committing nothing. Only a segment that proved good end-to-end gets
		// to supersede earlier records and bump their segments' dead counts —
		// a quarantined segment must leave the previous (still valid) refs
		// and counters exactly as they were, or the end-of-recovery GC would
		// delete a healthy segment holding the newest surviving copy of a
		// user's profile.
		type segRec struct {
			uid string
			ref spillRef
		}
		var recs []segRec
		off := int64(len(spillSegMagic))
		damaged := false
		for off < int64(len(data)) {
			payload, frameLen, ferr := nextSpillFrame(data[off:])
			if errors.Is(ferr, ErrSpillTruncated) {
				// Crash mid-append: drop the torn tail, keep everything
				// before it.
				if terr := os.Truncate(path, off); terr != nil {
					return fmt.Errorf("core: truncate torn spill segment %s: %w", path, terr)
				}
				data = data[:off]
				break
			}
			if ferr != nil {
				damaged = true
				break
			}
			pp, derr := decodeSpillRecord(payload)
			if derr != nil {
				damaged = true
				break
			}
			recs = append(recs, segRec{
				uid: pp.UserID,
				ref: spillRef{seg: seg, off: off, n: frameLen, last: pp.LastReport},
			})
			off += int64(frameLen)
		}
		if damaged {
			st.quarantineFile(e, path, fmt.Errorf("%w: %s", ErrSpillCorrupt, filepath.Base(path)))
			continue
		}
		// Validated: commit the segment's records in order.
		for _, rec := range recs {
			seg.total.Add(1)
			if prev, ok := byUser[rec.uid]; ok {
				prev.ref.seg.dead.Add(1)
			}
			byUser[rec.uid] = recovered{ref: rec.ref, shardIdx: e.shardIndex(rec.uid)}
		}
		seg.size.Store(int64(len(data)))
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			return fmt.Errorf("core: open spill segment %s: %w", path, err)
		}
		seg.f = f
		st.segs[seg.seq] = seg
		st.spillBytes.Add(seg.size.Load())
	}

	live := int64(0)
	for uid, rec := range byUser {
		if rec.ref.seg.quarantined.Load() {
			continue
		}
		e.shards[rec.shardIdx].spilled[uid] = rec.ref
		live++
	}
	st.spilledUsers.Set(live)

	// Segments with no surviving records are garbage from previous runs;
	// removing them now keeps restart loops from accreting files.
	for seq, seg := range st.segs {
		if seg.dead.Load() >= seg.total.Load() {
			livingRef := false
			for _, sh := range e.shards {
				for _, ref := range sh.spilled {
					if ref.seg == seg {
						livingRef = true
						break
					}
				}
				if livingRef {
					break
				}
			}
			if !livingRef {
				st.spillBytes.Add(-seg.size.Load())
				seg.f.Close()
				os.Remove(seg.path)
				delete(st.segs, seq)
			}
		}
	}
	return nil
}

// quarantineFile quarantines a segment discovered damaged before it was
// opened (boot path): renamed aside for the operator, recorded, counted.
func (st *spillStore) quarantineFile(e *Engine, path string, err error) {
	st.quarantined = append(st.quarantined, filepath.Base(path))
	e.metrics.spillErrors.Inc()
	if os.Rename(path, path+spillQuarantineSuffix) == nil {
		syncDir(st.dir)
	}
	if e.logf != nil {
		e.logf("core: spill segment quarantined: %v", err)
	}
}

// quarantineSegment takes a live segment out of service after its bytes
// failed validation at runtime. Refs into it are dropped lazily (next
// touch); the file is renamed aside for the operator. Safe to call with the
// owning shard's lock held (lock order is shard → store).
func (st *spillStore) quarantineSegment(e *Engine, seg *spillSegment, err error) {
	if seg.quarantined.Swap(true) {
		return // already quarantined by a concurrent reader
	}
	st.mu.Lock()
	delete(st.segs, seg.seq)
	st.quarantined = append(st.quarantined, filepath.Base(seg.path))
	st.mu.Unlock()
	st.spillBytes.Add(-seg.size.Load())
	e.metrics.spillErrors.Inc()
	// The open handle keeps working for readers that raced the rename; new
	// lookups drop their refs on the quarantined flag.
	if os.Rename(seg.path, seg.path+spillQuarantineSuffix) == nil {
		syncDir(st.dir)
	}
	if e.logf != nil {
		e.logf("core: spill segment %s quarantined: %v", filepath.Base(seg.path), err)
	}
}

// degrade latches memory-only mode after a spill I/O failure: evictions
// stop, rehydration of already-spilled state is still attempted, serving
// continues, healthz reports degraded.
func (st *spillStore) degrade(e *Engine, op string, err error) {
	e.metrics.spillErrors.Inc()
	if st.failed.Swap(true) {
		return
	}
	if e.logf != nil {
		e.logf("core: spill %s failed, falling back to memory-only mode: %v", op, err)
	}
}

// close closes every segment file handle. Called from Engine.Close.
func (st *spillStore) close() {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.closed {
		return
	}
	st.closed = true
	for _, seg := range st.segs {
		if seg.f != nil {
			seg.f.Close()
		}
	}
}

// overCap is the lock-free eviction precheck: does the shard exceed either
// per-shard watermark?
func (st *spillStore) overCap(sh *shard) bool {
	if st.perShardProfiles > 0 && sh.users.Value() > st.perShardProfiles {
		return true
	}
	if st.perShardBytes > 0 && sh.residentBytes.Load() > st.perShardBytes {
		return true
	}
	return false
}

// enforceResidency evicts the shard's coldest profiles down to the low
// watermark when it is over cap. Called after ingest (process) and after a
// serve-path rehydration — the only two events that grow the resident set.
// pin names a profile exempt from this pass: the user a serve-path
// rehydration just brought back, who is often also the shard's coldest and
// would otherwise be re-evicted before the caller can read them.
func (e *Engine) enforceResidency(sh *shard, pin string) {
	st := e.spill
	if st == nil || st.failed.Load() || !st.overCap(sh) {
		return
	}
	sh.mu.Lock()
	e.evictColdLocked(sh, pin)
	sh.mu.Unlock()
	e.maybeCompact()
}

// evictColdLocked spills the shard's coldest profiles (oldest lastReport,
// user ID as the deterministic tie-break) until the shard is below both
// watermarks, with a batch floor so each fsync amortises over several
// profiles. The records are durable — written and fsynced — before any
// profile is removed from memory. Caller holds sh.mu for writing.
func (e *Engine) evictColdLocked(sh *shard, pin string) {
	st := e.spill
	if st == nil || st.failed.Load() {
		return
	}
	// Low watermarks: evict ~10% below cap so the next few ingests don't
	// immediately re-trigger eviction.
	targetProfiles := int64(-1)
	if st.perShardProfiles > 0 {
		targetProfiles = st.perShardProfiles - max64(st.perShardProfiles/10, 1)
	}
	targetBytes := int64(-1)
	if st.perShardBytes > 0 {
		targetBytes = st.perShardBytes - max64(st.perShardBytes/10, 1)
	}
	over := func(profiles, bytes int64) bool {
		return (targetProfiles >= 0 && profiles > targetProfiles) ||
			(targetBytes >= 0 && bytes > targetBytes)
	}
	profiles := int64(len(sh.profiles))
	bytes := sh.residentBytes.Load()
	if !over(profiles, bytes) {
		return
	}

	type cand struct {
		uid  string
		last time.Time
		size int64
	}
	cands := make([]cand, 0, len(sh.profiles))
	for uid, prof := range sh.profiles {
		if uid == pin {
			continue
		}
		cands = append(cands, cand{uid: uid, last: prof.lastReport, size: int64(prof.sizeEst)})
	}
	sort.Slice(cands, func(i, j int) bool {
		if !cands[i].last.Equal(cands[j].last) {
			return cands[i].last.Before(cands[j].last)
		}
		return cands[i].uid < cands[j].uid
	})
	var victims []string
	for _, c := range cands {
		if !over(profiles, bytes) {
			break
		}
		victims = append(victims, c.uid)
		profiles--
		bytes -= c.size
	}
	if len(victims) == 0 {
		return
	}
	e.spillProfilesLocked(sh, victims)
}

// spillProfilesLocked encodes and durably appends the named resident
// profiles, then — only after the fsync — forgets them from memory. On any
// I/O failure nothing is forgotten and the store degrades to memory-only
// mode. Caller holds sh.mu for writing.
func (e *Engine) spillProfilesLocked(sh *shard, victims []string) {
	st := e.spill
	var buf []byte
	type framePos struct {
		uid  string
		off  int64 // relative to the batch start
		n    int
		last time.Time
	}
	frames := make([]framePos, 0, len(victims))
	var scratch []byte
	for _, uid := range victims {
		prof, ok := sh.profiles[uid]
		if !ok {
			continue
		}
		pp := snapshotProfile(prof)
		scratch = encodeSpillRecord(scratch[:0], &pp)
		start := int64(len(buf))
		buf = appendSpillFrame(buf, scratch)
		frames = append(frames, framePos{uid: uid, off: start, n: int(int64(len(buf)) - start), last: prof.lastReport})
	}
	if len(frames) == 0 {
		return
	}
	seg, base, err := st.appendLocked(sh, buf)
	if err != nil {
		st.degrade(e, "append", err)
		return
	}
	// Durable: now it is safe to forget.
	for _, fr := range frames {
		prof := sh.profiles[fr.uid]
		for rid, a := range prof.active {
			e.unindexActivation(sh, fr.uid, rid, a.AltIndex)
		}
		delete(sh.profiles, fr.uid)
		sh.users.Add(-1)
		sh.residentBytes.Add(-int64(prof.sizeEst))
		if old, ok := sh.spilled[fr.uid]; ok {
			old.seg.dead.Add(1)
		} else {
			st.spilledUsers.Add(1)
		}
		sh.spilled[fr.uid] = spillRef{seg: seg, off: base + fr.off, n: fr.n, last: fr.last}
		seg.total.Add(1)
		e.metrics.profileSpills.Inc()
	}
}

// appendLocked durably appends buf to the shard's active segment (rotating
// or creating one as needed) and returns the segment and the offset the
// batch landed at. Caller holds sh.mu for writing; only the owning shard
// appends to its active segment, so the offset arithmetic is single-writer.
func (st *spillStore) appendLocked(sh *shard, buf []byte) (*spillSegment, int64, error) {
	seg := sh.spillSeg
	if seg != nil && (seg.quarantined.Load() ||
		(seg.size.Load() > int64(len(spillSegMagic)) && seg.size.Load()+int64(len(buf)) > st.cfg.SegmentBytes)) {
		seg.active.Store(false)
		sh.spillSeg = nil
		seg = nil
	}
	if seg == nil {
		var err error
		seg, err = st.newSegment()
		if err != nil {
			return nil, 0, err
		}
		sh.spillSeg = seg
	}
	base := seg.size.Load()
	if err := spillFail("append", seg.path); err != nil {
		return nil, 0, err
	}
	if _, err := seg.f.WriteAt(buf, base); err != nil {
		return nil, 0, err
	}
	if err := spillFail("sync", seg.path); err != nil {
		return nil, 0, err
	}
	if err := seg.f.Sync(); err != nil {
		return nil, 0, err
	}
	seg.size.Add(int64(len(buf)))
	st.spillBytes.Add(int64(len(buf)))
	return seg, base, nil
}

// newSegment creates, registers and makes durable the next segment file.
func (st *spillStore) newSegment() (*spillSegment, error) {
	st.mu.Lock()
	seq := st.nextSeq
	st.nextSeq++
	st.mu.Unlock()
	path := spillSegPath(st.dir, seq)
	if err := spillFail("create", path); err != nil {
		return nil, err
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE|os.O_EXCL, 0o600)
	if err != nil {
		return nil, err
	}
	if _, err := f.WriteAt([]byte(spillSegMagic), 0); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	seg := &spillSegment{seq: seq, path: path, f: f}
	seg.size.Store(int64(len(spillSegMagic)))
	seg.active.Store(true)
	st.mu.Lock()
	st.segs[seq] = seg
	st.mu.Unlock()
	st.spillBytes.Add(seg.size.Load())
	// Make the directory entry durable so a crash cannot orphan frames in a
	// file whose name never hit the disk.
	syncDir(st.dir)
	return seg, nil
}

// readRecord reads and decodes one spilled record.
func (st *spillStore) readRecord(ref spillRef) (*persistedProfile, error) {
	if err := spillFail("read", ref.seg.path); err != nil {
		return nil, err
	}
	buf := make([]byte, ref.n)
	if err := st.segReadAt(ref.seg, buf, ref.off); err != nil {
		return nil, err
	}
	payload, frameLen, err := nextSpillFrame(buf)
	if err != nil {
		return nil, err
	}
	if frameLen != ref.n {
		return nil, fmt.Errorf("%w: frame length drifted: ref %d, parsed %d", ErrSpillCorrupt, ref.n, frameLen)
	}
	return decodeSpillRecord(payload)
}

// segReadAt reads from the segment's long-lived handle, falling back to a
// one-shot read-only open when that handle has been closed. Engine.Close
// releases segment descriptors, but the final SaveStateFile of a graceful
// shutdown runs after Close (the pipeline must drain into the shards
// first) and must still export spilled records — the bytes are durable on
// disk; only the descriptor is gone.
func (st *spillStore) segReadAt(seg *spillSegment, buf []byte, off int64) error {
	if seg.f != nil {
		_, err := seg.f.ReadAt(buf, off)
		if err == nil || !errors.Is(err, os.ErrClosed) {
			return err
		}
	}
	f, err := os.Open(seg.path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.ReadAt(buf, off)
	return err
}

// rehydrateLocked brings a spilled user's profile back into memory. It
// returns nil when the user has no spilled record, or when the record is
// unreadable — in which case the ref is dropped (the segment is quarantined
// for damage, the store degraded for I/O failures) and the caller proceeds
// as if the user were unknown. Caller holds sh.mu for writing.
func (e *Engine) rehydrateLocked(sh *shard, userID string) *Profile {
	st := e.spill
	if st == nil || sh.spilled == nil {
		return nil
	}
	ref, ok := sh.spilled[userID]
	if !ok {
		return nil
	}
	start := time.Now()
	delete(sh.spilled, userID)
	st.spilledUsers.Add(-1)
	ref.seg.dead.Add(1)
	if ref.seg.quarantined.Load() {
		// The segment's bytes are untrusted; the record is gone. Acked state
		// is still covered by the statefile (LoadStateFile merges it back).
		return nil
	}
	pp, err := st.readRecord(ref)
	if err != nil {
		if isSpillDamage(err) {
			st.quarantineSegment(e, ref.seg, err)
		} else {
			st.degrade(e, "read", err)
		}
		return nil
	}
	prof := e.installRecordLocked(sh, pp)
	e.metrics.rehydrations.Inc()
	e.rehydrateHist.Observe(time.Since(start))
	return prof
}

// installRecordLocked converts a decoded record into a live profile under
// the current rule set — the same drops an ImportState applies: activations
// of removed rules, activations that lapsed while spilled, and (new here)
// activations whose target provider's breaker opened while the user was
// spilled, which the trip's bulk rollback could not reach. Caller holds
// sh.mu for writing.
func (e *Engine) installRecordLocked(sh *shard, pp *persistedProfile) *Profile {
	now := e.now()
	prof := newProfile(pp.UserID)
	prof.lastReport = pp.LastReport
	for srv, n := range pp.Violations {
		if n > 0 {
			prof.violations[srv] = n
		}
	}
	byID := e.rulesByID.Load()
	for _, pa := range pp.Active {
		if byID == nil {
			break
		}
		rule, ok := (*byID)[pa.RuleID]
		if !ok {
			continue // rule removed while spilled
		}
		if !pa.ExpiresAt.IsZero() && now.After(pa.ExpiresAt) {
			continue // lapsed while spilled
		}
		if e.spillActivationBarred(pa.RuleID, pa.AltIndex) {
			// The provider was quarantined while this user was spilled; the
			// bulk rollback missed the activation, so it is applied now.
			e.metrics.bulkDeactivations.Inc()
			continue
		}
		prof.active[pa.RuleID] = &ActiveRule{
			Rule:            rule,
			AltIndex:        pa.AltIndex,
			ActivatedAt:     pa.ActivatedAt,
			ExpiresAt:       pa.ExpiresAt,
			TriggerServer:   pa.TriggerServer,
			TriggerDistance: pa.TriggerDistance,
			Activations:     pa.Activations,
			Synthesized:     pa.Synthesized,
		}
		prof.noteExpiry(pa.ExpiresAt)
		e.indexActivation(sh, pp.UserID, pa.RuleID, pa.AltIndex)
	}
	prof.sizeEst = prof.estimateSize()
	sh.profiles[pp.UserID] = prof
	sh.users.Add(1)
	sh.residentBytes.Add(int64(prof.sizeEst))
	return prof
}

// spillActivationBarred reports whether a rehydrating activation must be
// dropped because the guard no longer admits its target: the rule is
// quarantined, or a target provider's breaker is open/half-open (the trip's
// bulk rollback would have removed the activation had it been resident).
func (e *Engine) spillActivationBarred(ruleID string, altIdx int) bool {
	if e.guard == nil {
		return false
	}
	if e.guard.RuleQuarantined(ruleID) {
		return true
	}
	for _, h := range e.altHostsFor(ruleID, altIdx) {
		if e.guard.State(h) != guard.Closed {
			return true
		}
	}
	return false
}

// spillPending reports whether the user's profile is currently spilled (not
// resident, durable record indexed). Caller holds sh.mu (read or write).
func (e *Engine) spillPending(sh *shard, userID string) bool {
	if e.spill == nil || sh.spilled == nil {
		return false
	}
	if _, ok := sh.profiles[userID]; ok {
		return false
	}
	_, ok := sh.spilled[userID]
	return ok
}

// rehydrateUser upgrades to the shard's write lock and rehydrates the user
// if still needed — the serve-path entry point (read paths hold RLock, drop
// it, call this, and retake RLock). Rehydration grows the resident set, so
// the residency cap is re-enforced afterwards.
func (e *Engine) rehydrateUser(sh *shard, userID string) {
	sh.mu.Lock()
	if _, ok := sh.profiles[userID]; !ok {
		e.rehydrateLocked(sh, userID)
	}
	sh.mu.Unlock()
	e.enforceResidency(sh, userID)
}

// rehydrateRetries bounds the serve-path rehydrate loop: between dropping
// the read lock after a rehydrate and retaking it, a concurrent ingest's
// eviction pass can re-spill the user (the pin only covers rehydrateUser's
// own residency pass), so readers retry a few times rather than serving a
// stateful user as empty. The race needs an adversarial interleaving per
// iteration, so a small bound is ample.
const rehydrateRetries = 4

// rlockResident takes sh.mu for reading with userID resident if the user
// has a spilled record, rehydrating (bounded retries, see rehydrateRetries)
// as needed. The caller must release sh.mu for reading; the profile lookup
// can still miss for users the engine has never seen.
func (e *Engine) rlockResident(sh *shard, userID string) {
	sh.mu.RLock()
	for i := 0; i < rehydrateRetries && e.spillPending(sh, userID); i++ {
		sh.mu.RUnlock()
		e.rehydrateUser(sh, userID)
		sh.mu.RLock()
	}
}

// profileLocked returns the user's profile, rehydrating a spilled one or
// creating a fresh one. The ingest-path replacement for the old
// shard.profileLocked. Caller holds sh.mu for writing.
func (e *Engine) profileLocked(sh *shard, userID string) *Profile {
	if prof, ok := sh.profiles[userID]; ok {
		return prof
	}
	if prof := e.rehydrateLocked(sh, userID); prof != nil {
		return prof
	}
	prof := newProfile(userID)
	sh.profiles[userID] = prof
	sh.users.Add(1)
	if e.spill != nil {
		prof.sizeEst = prof.estimateSize()
		sh.residentBytes.Add(int64(prof.sizeEst))
	}
	return prof
}

// maybeCompact runs one ingest-driven compaction round if a sealed segment
// has crossed the dead-record threshold. CAS-elected so concurrent ingests
// never stack compactions; callers hold no shard locks.
func (e *Engine) maybeCompact() {
	st := e.spill
	if st == nil || st.failed.Load() {
		return
	}
	if !st.compacting.CompareAndSwap(false, true) {
		return
	}
	defer st.compacting.Store(false)
	victim := st.pickCompactionVictim()
	if victim == nil {
		return
	}
	e.compactSegment(victim)
}

// pickCompactionVictim returns the sealed, non-quarantined segment with the
// highest dead-record ratio at or above the threshold, nil if none.
func (st *spillStore) pickCompactionVictim() *spillSegment {
	st.mu.Lock()
	defer st.mu.Unlock()
	var victim *spillSegment
	var worst float64
	for _, seg := range st.segs {
		if seg.active.Load() || seg.quarantined.Load() || seg.total.Load() == 0 {
			continue
		}
		if r := seg.deadRatio(); r >= st.cfg.CompactRatio && (victim == nil || r > worst) {
			victim = seg
			worst = r
		}
	}
	return victim
}

// compactSegment rewrites a sealed segment without its dead records: the
// surviving frames are copied byte-for-byte into a new segment written with
// the statefile discipline (tmp → fsync → rename → dir fsync), the refs are
// swapped under every shard lock, and the victim is deleted. A victim whose
// records are all dead is simply removed.
//
// All disk I/O happens before any shard lock is taken, so ingest and
// serving never stall behind a slow disk. That order is sound because a
// sealed segment's bytes are immutable and refs into it only ever die (new
// spills land in active segments; the CAS in maybeCompact keeps a second
// compactor away): the candidate set snapshotted below is a superset of
// whatever is still live at swap time, and a candidate that died in the
// window simply becomes a dead record in the new segment.
func (e *Engine) compactSegment(victim *spillSegment) {
	st := e.spill
	if err := spillFail("compact", victim.path); err != nil {
		st.degrade(e, "compact", err)
		return
	}
	data := make([]byte, victim.size.Load())
	if _, err := victim.f.ReadAt(data, 0); err != nil {
		st.degrade(e, "compact", err)
		return
	}
	type frame struct {
		uid string
		off int64
		n   int
	}
	var frames []frame
	off := int64(len(spillSegMagic))
	for off < int64(len(data)) {
		payload, frameLen, err := nextSpillFrame(data[off:])
		if err != nil {
			// The sealed bytes no longer parse: external damage. Quarantine
			// instead of propagating it into a fresh segment.
			st.quarantineSegment(e, victim, err)
			return
		}
		pp, err := decodeSpillRecord(payload)
		if err != nil {
			st.quarantineSegment(e, victim, err)
			return
		}
		frames = append(frames, frame{uid: pp.UserID, off: off, n: frameLen})
		off += int64(frameLen)
	}

	// Candidate frames: those that are some shard's live ref into the victim
	// right now (weakly consistent, one shard read lock at a time).
	type moved struct {
		uid    string
		oldOff int64
		off    int64
		n      int
	}
	var cands []moved
	newSize := int64(len(spillSegMagic))
	for _, fr := range frames {
		sh := e.shardFor(fr.uid)
		sh.mu.RLock()
		ref, ok := sh.spilled[fr.uid]
		sh.mu.RUnlock()
		if ok && ref.seg == victim && ref.off == fr.off {
			cands = append(cands, moved{uid: fr.uid, oldOff: fr.off, off: newSize, n: fr.n})
			newSize += int64(fr.n)
		}
	}

	// Build and durably write the replacement segment — still lock-free.
	var seg *spillSegment
	if len(cands) > 0 {
		st.mu.Lock()
		seq := st.nextSeq
		st.nextSeq++
		st.mu.Unlock()
		path := spillSegPath(st.dir, seq)
		out := make([]byte, 0, newSize)
		out = append(out, spillSegMagic...)
		for _, mv := range cands {
			out = append(out, data[mv.oldOff:mv.oldOff+int64(mv.n)]...)
		}
		tmp := path + ".tmp"
		if err := writeFileSync(tmp, out); err != nil {
			os.Remove(tmp)
			st.degrade(e, "compact", err)
			return
		}
		if err := os.Rename(tmp, path); err != nil {
			os.Remove(tmp)
			st.degrade(e, "compact", err)
			return
		}
		syncDir(st.dir)
		f, err := os.OpenFile(path, os.O_RDWR, 0)
		if err != nil {
			// The new segment is durable but unopenable — nothing was
			// swapped yet, so the victim stays authoritative.
			os.Remove(path)
			st.degrade(e, "compact", err)
			return
		}
		seg = &spillSegment{seq: seq, path: path, f: f}
		seg.size.Store(int64(len(out)))
	}

	// Swap refs under every shard lock: re-filter the candidates (some may
	// have rehydrated or been pruned since the snapshot) and retire the
	// victim. No disk I/O in this window.
	for _, sh := range e.shards {
		sh.mu.Lock()
	}
	live := int64(0)
	if seg != nil {
		for _, mv := range cands {
			sh := e.shardFor(mv.uid)
			if ref, ok := sh.spilled[mv.uid]; ok && ref.seg == victim && ref.off == mv.oldOff {
				sh.spilled[mv.uid] = spillRef{seg: seg, off: mv.off, n: mv.n, last: ref.last}
				live++
			}
		}
		seg.total.Store(int64(len(cands)))
		seg.dead.Store(int64(len(cands)) - live)
		if live > 0 {
			st.mu.Lock()
			st.segs[seg.seq] = seg
			st.mu.Unlock()
			st.spillBytes.Add(seg.size.Load())
		}
	}
	st.dropSegmentLocked(victim)
	for _, sh := range e.shards {
		sh.mu.Unlock()
	}
	victim.f.Close()
	os.Remove(victim.path)
	if seg != nil && live == 0 {
		// Every candidate died between the write and the swap: the new
		// segment holds only dead records and was never registered.
		seg.f.Close()
		os.Remove(seg.path)
	}
	syncDir(st.dir)
	e.metrics.segmentCompactions.Inc()
}

// dropSegmentLocked removes a segment from the table and the byte gauge.
// Any shard it was the append target of rotates on next spill. Callers hold
// every shard lock (so no reader holds a ref mid-read).
func (st *spillStore) dropSegmentLocked(seg *spillSegment) {
	st.mu.Lock()
	delete(st.segs, seg.seq)
	st.mu.Unlock()
	st.spillBytes.Add(-seg.size.Load())
	seg.active.Store(false)
}

// PruneProfiles removes every profile — resident or spilled — whose last
// report is before cutoff, and returns how many were removed. Spilled
// profiles are dropped by marking their records dead (the ingest-driven
// compactor reclaims the bytes); resident removals unindex their guard
// entries like any deactivation.
func (e *Engine) PruneProfiles(cutoff time.Time) int {
	removed := 0
	for _, sh := range e.shards {
		sh.mu.Lock()
		for uid, prof := range sh.profiles {
			if !prof.lastReport.Before(cutoff) {
				continue
			}
			for rid, a := range prof.active {
				e.unindexActivation(sh, uid, rid, a.AltIndex)
			}
			delete(sh.profiles, uid)
			sh.users.Add(-1)
			if e.spill != nil {
				sh.residentBytes.Add(-int64(prof.sizeEst))
			}
			removed++
		}
		if sh.spilled != nil {
			for uid, ref := range sh.spilled {
				if !ref.last.Before(cutoff) {
					continue
				}
				delete(sh.spilled, uid)
				ref.seg.dead.Add(1)
				e.spill.spilledUsers.Add(-1)
				removed++
			}
		}
		sh.mu.Unlock()
	}
	e.maybeCompact()
	return removed
}

// Residency reports where a user's profile currently lives: "resident",
// "spilled", or "none". Diagnostic surface for tests and tooling.
func (e *Engine) Residency(userID string) string {
	sh := e.shardFor(userID)
	sh.mu.RLock()
	defer sh.mu.RUnlock()
	if _, ok := sh.profiles[userID]; ok {
		return "resident"
	}
	if sh.spilled != nil {
		if _, ok := sh.spilled[userID]; ok {
			return "spilled"
		}
	}
	return "none"
}

// SpillStatus is the spill tier's health and occupancy snapshot, exposed by
// /oak/v1/metrics and oakreport -memory.
type SpillStatus struct {
	// Enabled is true on engines built WithProfileResidency.
	Enabled bool `json:"enabled"`
	// MemoryOnly is true after a spill I/O failure latched the store into
	// memory-only degraded mode (evictions suspended, serving continues).
	MemoryOnly bool `json:"memoryOnly"`
	// ProfilesResident / ProfilesSpilled count where profiles live now.
	ProfilesResident int64 `json:"profilesResident"`
	ProfilesSpilled  int64 `json:"profilesSpilled"`
	// ResidentBytes is the engine's running estimate of resident profile
	// heap bytes (the quantity MaxBytes caps).
	ResidentBytes int64 `json:"residentBytes"`
	// SpillBytes is the live segment files' on-disk size.
	SpillBytes int64 `json:"spillBytes"`
	// Segments counts live segment files; QuarantinedSegments names the
	// segments taken out of service for damage.
	Segments            int      `json:"segments"`
	QuarantinedSegments []string `json:"quarantinedSegments,omitempty"`
	// Spills / Rehydrations / SegmentCompactions / SpillErrors are the
	// tier's lifetime event counters.
	Spills             uint64 `json:"spills"`
	Rehydrations       uint64 `json:"rehydrations"`
	SegmentCompactions uint64 `json:"segmentCompactions"`
	SpillErrors        uint64 `json:"spillErrors"`
	// MaxProfiles / MaxBytes echo the configured caps.
	MaxProfiles int   `json:"maxProfiles,omitempty"`
	MaxBytes    int64 `json:"maxBytes,omitempty"`
}

// SpillStatus reports the spill tier's current state; ok is false on
// engines without one.
func (e *Engine) SpillStatus() (SpillStatus, bool) {
	st := e.spill
	if st == nil {
		return SpillStatus{}, false
	}
	s := SpillStatus{
		Enabled:            true,
		MemoryOnly:         st.failed.Load(),
		ProfilesSpilled:    st.spilledUsers.Value(),
		SpillBytes:         st.spillBytes.Value(),
		Spills:             e.metrics.profileSpills.Value(),
		Rehydrations:       e.metrics.rehydrations.Value(),
		SegmentCompactions: e.metrics.segmentCompactions.Value(),
		SpillErrors:        e.metrics.spillErrors.Value(),
		MaxProfiles:        st.cfg.MaxProfiles,
		MaxBytes:           st.cfg.MaxBytes,
	}
	for _, sh := range e.shards {
		s.ProfilesResident += sh.users.Value()
		s.ResidentBytes += sh.residentBytes.Load()
	}
	st.mu.Lock()
	s.Segments = len(st.segs)
	s.QuarantinedSegments = append([]string(nil), st.quarantined...)
	st.mu.Unlock()
	return s, true
}

// SpillDegraded reports whether the spill tier is in a degraded state that
// healthz must surface: memory-only mode or quarantined segments.
func (e *Engine) SpillDegraded() bool {
	st := e.spill
	if st == nil {
		return false
	}
	if st.failed.Load() {
		return true
	}
	st.mu.Lock()
	q := len(st.quarantined)
	st.mu.Unlock()
	return q > 0
}

// Profile size estimation: the byte cap needs a cheap, allocation-free
// approximation of a profile's heap footprint. The constants cover the map
// headers, the Profile struct and per-entry overheads; they are estimates,
// not measurements — the cap is a watermark, not an accounting identity.
const (
	profileBaseSize    = 256
	violationEntrySize = 48
	activeEntrySize    = 176
)

// estimateSize approximates the profile's heap footprint in bytes. Caller
// holds the owning shard's lock.
func (p *Profile) estimateSize() int {
	n := profileBaseSize + len(p.UserID)
	for srv := range p.violations {
		n += violationEntrySize + len(srv)
	}
	for id, a := range p.active {
		n += activeEntrySize + len(id) + len(a.TriggerServer)
	}
	return n
}

// noteProfileSizeLocked refreshes the reporting profile's size estimate and
// the shard's resident-bytes gauge after ingest mutated it. Caller holds
// sh.mu for writing.
func (e *Engine) noteProfileSizeLocked(sh *shard, prof *Profile) {
	if e.spill == nil {
		return
	}
	est := prof.estimateSize()
	sh.residentBytes.Add(int64(est - prof.sizeEst))
	prof.sizeEst = est
}
