package core

import (
	"errors"
	"testing"
	"time"

	"oak/internal/rules"
)

// Shed benchmarks: the numbers behind BENCH_sheds.json (make bench-shed).
//
// Two questions matter for the overload-protection design:
//
//  1. What does admission control cost when the server is NOT overloaded?
//     BenchmarkPipelineSheddingOff vs BenchmarkPipelineSheddingOn run the
//     same parallel ingest load with and without a ShedPolicy; the
//     reports/sec ratio is the happy-path toll (it should be ~1.0 — the
//     fast path is a single non-blocking channel send either way).
//
//  2. What does overload cost once it happens? BenchmarkShedSaturated
//     wedges the one pipeline worker and fills the queue, so every
//     HandleReport is refused. Its ns/op is the full price of saying no —
//     with shedding, an overloaded submitter is turned away in
//     microseconds with a truthful Retry-After, where the blocking design
//     parks it for an unbounded wait.

// BenchmarkPipelineSheddingOff is the baseline: pipeline ingest with
// blocking backpressure (no ShedPolicy), parallel submitters.
func BenchmarkPipelineSheddingOff(b *testing.B) {
	benchParallel(b, benchEngine(b, WithIngestPipeline(IngestConfig{})))
}

// BenchmarkPipelineSheddingOn is the same load with deadline-aware
// admission enabled. The queue is sized so nothing sheds; any refusal
// fails the benchmark, so the number isolates pure policy overhead.
func BenchmarkPipelineSheddingOn(b *testing.B) {
	benchParallel(b, benchEngine(b,
		WithIngestPipeline(IngestConfig{}),
		WithLoadShedding(ShedPolicy{MaxWait: time.Second}),
	))
}

// BenchmarkShedSaturated measures the overload path itself: a wedged
// worker, a full queue and MaxWait zero mean every HandleReport sheds.
func BenchmarkShedSaturated(b *testing.B) {
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	e, err := NewEngine([]*rules.Rule{loaderRule()},
		WithScriptFetcher(fetcher),
		WithIngestPipeline(IngestConfig{Workers: 1, QueueLen: 1}),
		WithLoadShedding(ShedPolicy{MaxWait: 0}),
	)
	if err != nil {
		b.Fatal(err)
	}
	// Wedge the worker inside a tier-3 script fetch, then fill the one
	// queue slot behind it. Both submissions block until release.
	go func() { _, _ = e.HandleReport(tier3Report("bench-wedged")) }()
	<-entered
	go func() { _, _ = e.HandleReport(tier3Report("bench-filler")) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if depth, _ := e.IngestQueue(); depth == 2 {
			break
		}
		if time.Now().After(deadline) {
			b.Fatal("queue never saturated")
		}
		time.Sleep(time.Millisecond)
	}
	b.Cleanup(func() {
		close(release)
		e.Close()
	})

	rep := slowS1Report("bench-shed")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.HandleReport(rep); !errors.Is(err, ErrOverloaded) {
			b.Fatalf("want ErrOverloaded, got %v", err)
		}
	}
	b.StopTimer()
	if got := e.Metrics().ReportsShed; got < uint64(b.N) {
		b.Fatalf("ReportsShed = %d, want >= %d", got, b.N)
	}
	reportShedRate(b)
}

// reportShedRate derives sheds/sec from the measured loop.
func reportShedRate(b *testing.B) {
	if b.N == 0 || b.Elapsed() == 0 {
		return
	}
	b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "sheds/sec")
}
