package htmlscan

import (
	"reflect"
	"testing"
)

const samplePage = `<!DOCTYPE html>
<html>
<head>
  <link rel="stylesheet" href="http://static.example/site.css">
  <script src="http://s1.com/jquery.js"></script>
  <script>
    var base = "http://tracker.example";
    load(base + "/pixel.gif");
  </script>
</head>
<body>
  <IMG SRC='http://img.example/hero.jpg'>
  <img src=//proto.example/rel.png>
  <a href="/local/page.html">local</a>
  <script src="https://ads.example/ad.js" async></script>
</body>
</html>`

func TestExtractRefs(t *testing.T) {
	refs := ExtractRefs(samplePage)
	var urls []string
	for _, r := range refs {
		urls = append(urls, r.URL)
	}
	want := []string{
		"http://static.example/site.css",
		"http://s1.com/jquery.js",
		"http://img.example/hero.jpg",
		"//proto.example/rel.png",
		"/local/page.html",
		"https://ads.example/ad.js",
	}
	if !reflect.DeepEqual(urls, want) {
		t.Errorf("ExtractRefs urls = %v, want %v", urls, want)
	}
}

func TestExtractRefsTagsAndAttrs(t *testing.T) {
	refs := ExtractRefs(`<SCRIPT SRC="http://a.example/x.js"></SCRIPT>`)
	if len(refs) != 1 {
		t.Fatalf("got %d refs, want 1", len(refs))
	}
	if refs[0].Tag != "script" || refs[0].Attr != "src" {
		t.Errorf("ref = %+v, want lowercase script/src", refs[0])
	}
}

func TestExtractSrcHosts(t *testing.T) {
	hosts := ExtractSrcHosts(samplePage)
	want := []string{"static.example", "s1.com", "img.example", "proto.example", "ads.example"}
	if !reflect.DeepEqual(hosts, want) {
		t.Errorf("ExtractSrcHosts = %v, want %v", hosts, want)
	}
}

func TestExtractSrcHostsDedupes(t *testing.T) {
	html := `<img src="http://a.example/1.png"><img src="http://a.example/2.png">`
	hosts := ExtractSrcHosts(html)
	if !reflect.DeepEqual(hosts, []string{"a.example"}) {
		t.Errorf("hosts = %v, want [a.example]", hosts)
	}
}

func TestInlineScripts(t *testing.T) {
	bodies := InlineScripts(samplePage)
	if len(bodies) != 1 {
		t.Fatalf("got %d inline scripts, want 1: %v", len(bodies), bodies)
	}
	if !ContainsHost(bodies[0], "tracker.example") {
		t.Errorf("inline script body missing tracker.example: %q", bodies[0])
	}
}

func TestInlineScriptsSkipsExternal(t *testing.T) {
	html := `<script src="http://x.example/a.js">leftover body</script>`
	if got := InlineScripts(html); len(got) != 0 {
		t.Errorf("InlineScripts = %v, want none for external script", got)
	}
}

func TestScriptSrcs(t *testing.T) {
	srcs := ScriptSrcs(samplePage)
	want := []string{"http://s1.com/jquery.js", "https://ads.example/ad.js"}
	if !reflect.DeepEqual(srcs, want) {
		t.Errorf("ScriptSrcs = %v, want %v", srcs, want)
	}
}

func TestHostOf(t *testing.T) {
	tests := []struct {
		in   string
		want string
	}{
		{"http://CDN.Example:8080/x", "cdn.example"},
		{"//proto.example/y", "proto.example"},
		{"/relative/path", ""},
		{"not a url at all \x00", ""},
		{"https://a.b.c.example/z?q=1", "a.b.c.example"},
	}
	for _, tt := range tests {
		if got := HostOf(tt.in); got != tt.want {
			t.Errorf("HostOf(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestContainsHost(t *testing.T) {
	tests := []struct {
		name string
		text string
		host string
		want bool
	}{
		{"in tag", `<script src="http://s1.com/jquery.js">`, "s1.com", true},
		{"in js string concat", `var u = "http://" + "track.example" + "/p.gif"`, "track.example", true},
		{"case insensitive", `SRC="HTTP://CDN.EXAMPLE/x"`, "cdn.example", true},
		{"absent", `<img src="http://other.example/x">`, "cdn.example", false},
		{"no partial-label match", `http://badcdn.example/x`, "cdn.example", false},
		{"no prefix match", `http://cdn.example.evil.com/x`, "cdn.example", false},
		{"boundary at punctuation ok", `load('cdn.example')`, "cdn.example", true},
		{"empty host", "anything", "", false},
		{"second occurrence matches", `xcdn.example then cdn.example`, "cdn.example", true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := ContainsHost(tt.text, tt.host); got != tt.want {
				t.Errorf("ContainsHost(%q, %q) = %v, want %v", tt.text, tt.host, got, tt.want)
			}
		})
	}
}

func TestHostsInText(t *testing.T) {
	text := `fetch("http://a.example/x"); var h = 'b.example'; // a.example again; 3.14 not a host`
	hosts := HostsInText(text)
	want := []string{"a.example", "b.example"}
	if !reflect.DeepEqual(hosts, want) {
		t.Errorf("HostsInText = %v, want %v", hosts, want)
	}
}

func TestHostsInTextIgnoresNumbers(t *testing.T) {
	if got := HostsInText("version 1.2 costs 3.50"); len(got) != 0 {
		t.Errorf("HostsInText(numbers) = %v, want none", got)
	}
}

func TestURLsInText(t *testing.T) {
	text := `a http://one.example/x.js b https://two.example/y?q=1 c`
	got := URLsInText(text)
	want := []string{"http://one.example/x.js", "https://two.example/y?q=1"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("URLsInText = %v, want %v", got, want)
	}
}

func TestURLsInTextTrailingPunctuation(t *testing.T) {
	got := URLsInText(`see http://a.example/p.`)
	if !reflect.DeepEqual(got, []string{"http://a.example/p"}) {
		t.Errorf("URLsInText = %v", got)
	}
}

func TestURLsInTextQuoted(t *testing.T) {
	got := URLsInText(`oakFetch("http://h.example/a.js");`)
	if !reflect.DeepEqual(got, []string{"http://h.example/a.js"}) {
		t.Errorf("URLsInText = %v", got)
	}
}

func TestURLsInTextNone(t *testing.T) {
	if got := URLsInText("no urls here"); got != nil {
		t.Errorf("URLsInText = %v, want nil", got)
	}
}

func TestEmptyDocument(t *testing.T) {
	if got := ExtractRefs(""); got != nil {
		t.Errorf("ExtractRefs(\"\") = %v, want nil", got)
	}
	if got := InlineScripts(""); got != nil {
		t.Errorf("InlineScripts(\"\") = %v, want nil", got)
	}
	if got := HostsInText(""); got != nil {
		t.Errorf("HostsInText(\"\") = %v, want nil", got)
	}
}

func TestMultilineInlineScript(t *testing.T) {
	html := "<script>\nline1();\nvar x = 'deep.example';\nline3();\n</script>"
	bodies := InlineScripts(html)
	if len(bodies) != 1 {
		t.Fatalf("got %d bodies, want 1", len(bodies))
	}
	if !ContainsHost(bodies[0], "deep.example") {
		t.Error("multiline script body lost content")
	}
}

func TestExtractRefsAcrossNewlines(t *testing.T) {
	html := "<img\n  class=\"hero\"\n  src=\"http://multi.example/x.png\"\n>"
	refs := ExtractRefs(html)
	if len(refs) != 1 || refs[0].URL != "http://multi.example/x.png" {
		t.Errorf("multiline tag refs = %+v", refs)
	}
}

func TestExtractRefsUnquotedAttr(t *testing.T) {
	refs := ExtractRefs(`<img src=http://bare.example/x.png>`)
	if len(refs) != 1 || refs[0].URL != "http://bare.example/x.png" {
		t.Errorf("bare attr refs = %+v", refs)
	}
}

func TestExtractRefsSingleQuotes(t *testing.T) {
	refs := ExtractRefs(`<script src='http://sq.example/a.js'></script>`)
	if len(refs) != 1 || refs[0].URL != "http://sq.example/a.js" {
		t.Errorf("single-quote refs = %+v", refs)
	}
}

func TestHostOfUppercaseScheme(t *testing.T) {
	if got := HostOf("HTTP://UPPER.EXAMPLE/x"); got != "upper.example" {
		t.Errorf("HostOf uppercase = %q", got)
	}
}

func TestInlineScriptsMultipleBlocks(t *testing.T) {
	html := `<script>one("a.example")</script><p></p><script>two("b.example")</script>`
	bodies := InlineScripts(html)
	if len(bodies) != 2 {
		t.Fatalf("got %d bodies, want 2", len(bodies))
	}
}

func TestContainsHostUnicodePage(t *testing.T) {
	text := "日本語テキスト <img src=\"http://jp.example/画像.png\"> 終わり"
	if !ContainsHost(text, "jp.example") {
		t.Error("host not found amid unicode text")
	}
}
