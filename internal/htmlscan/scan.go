// Package htmlscan is a minimal, dependency-free HTML and script scanner.
//
// Oak's rule matcher does not need a browser-grade DOM: per Section 4.2.2 of
// the paper it only needs to know whether a block of page text could have
// caused a connection to a given server ("connection dependency"). That
// requires three capabilities, all provided here:
//
//  1. extracting src/href attribute URLs from tags (direct inclusion),
//  2. extracting inline script bodies (programmatic URL construction), and
//  3. finding hostnames mentioned anywhere in free text (text match).
package htmlscan

import (
	"net/url"
	"regexp"
	"strings"
)

// TagRef is one resource reference found in markup.
type TagRef struct {
	// Tag is the lower-cased element name ("script", "img", "link", ...).
	Tag string
	// Attr is the attribute the URL came from ("src" or "href").
	Attr string
	// URL is the raw attribute value.
	URL string
}

// Host returns the hostname of the reference URL, or "" if not parseable or
// relative.
func (t TagRef) Host() string { return HostOf(t.URL) }

// HostOf extracts the lower-cased hostname from a URL string, tolerating
// scheme-relative ("//cdn.example/x") forms. It returns "" for relative or
// unparseable URLs.
func HostOf(raw string) string {
	raw = strings.TrimSpace(raw)
	if strings.HasPrefix(raw, "//") {
		raw = "http:" + raw
	}
	u, err := url.Parse(raw)
	if err != nil {
		return ""
	}
	return strings.ToLower(u.Hostname())
}

var (
	// tagRe captures element name and attribute blob of each start tag.
	tagRe = regexp.MustCompile(`(?is)<([a-z][a-z0-9]*)\b([^>]*)>`)
	// attrRe captures src= and href= attribute values (quoted or bare).
	attrRe = regexp.MustCompile(`(?is)\b(src|href)\s*=\s*(?:"([^"]*)"|'([^']*)'|([^\s>]+))`)
	// inlineScriptRe captures the body of <script>...</script> elements
	// that have no src attribute (checked by the caller).
	scriptRe = regexp.MustCompile(`(?is)<script\b([^>]*)>(.*?)</script>`)
)

// ExtractRefs returns every src/href resource reference in the document, in
// document order. Multiple URLs inside one tag (unusual but legal in broken
// markup) are all returned.
func ExtractRefs(html string) []TagRef {
	var refs []TagRef
	for _, m := range tagRe.FindAllStringSubmatch(html, -1) {
		tag := strings.ToLower(m[1])
		attrs := m[2]
		for _, am := range attrRe.FindAllStringSubmatch(attrs, -1) {
			val := am[2]
			if val == "" {
				val = am[3]
			}
			if val == "" {
				val = am[4]
			}
			if val == "" {
				continue
			}
			refs = append(refs, TagRef{Tag: tag, Attr: strings.ToLower(am[1]), URL: val})
		}
	}
	return refs
}

// ExtractSrcHosts returns the set of distinct external-reference hostnames
// found in src/href attributes, lower-cased, in first-seen order.
func ExtractSrcHosts(html string) []string {
	seen := make(map[string]bool)
	var hosts []string
	for _, ref := range ExtractRefs(html) {
		h := ref.Host()
		if h == "" || seen[h] {
			continue
		}
		seen[h] = true
		hosts = append(hosts, h)
	}
	return hosts
}

// InlineScripts returns the bodies of all <script> elements without a src
// attribute — the scripts that may construct URLs programmatically.
func InlineScripts(html string) []string {
	var bodies []string
	for _, m := range scriptRe.FindAllStringSubmatch(html, -1) {
		attrs := m[1]
		if attrRe.MatchString(attrs) {
			continue // external script; body (if any) is inert
		}
		body := strings.TrimSpace(m[2])
		if body != "" {
			bodies = append(bodies, body)
		}
	}
	return bodies
}

// ScriptSrcs returns the src URLs of all external <script> elements.
func ScriptSrcs(html string) []string {
	var srcs []string
	for _, ref := range ExtractRefs(html) {
		if ref.Tag == "script" && ref.Attr == "src" {
			srcs = append(srcs, ref.URL)
		}
	}
	return srcs
}

// hostInTextRe matches dotted hostnames in free text: dot-separated labels
// ending in an alphabetic TLD, so bare words and decimal numbers don't match.
var hostInTextRe = regexp.MustCompile(`(?i)\b(?:[a-z0-9](?:[a-z0-9-]{0,61}[a-z0-9])?\.)+[a-z]{2,}\b`)

// ContainsHost reports whether text mentions the given hostname anywhere —
// in markup, quoted strings, or concatenation fragments. This is the paper's
// second rule-activation condition: "Did traffic from the violating server
// include any domain names which appear in the default object text of the
// rule?". The match is case-insensitive and must fall on label boundaries so
// "cdn.example" does not match "badcdn.example".
func ContainsHost(text, host string) bool {
	if host == "" {
		return false
	}
	lower := strings.ToLower(text)
	host = strings.ToLower(host)
	idx := 0
	for {
		i := strings.Index(lower[idx:], host)
		if i < 0 {
			return false
		}
		start := idx + i
		end := start + len(host)
		beforeOK := start == 0 || !isHostChar(lower[start-1])
		afterOK := end == len(lower) || !isHostChar(lower[end])
		if beforeOK && afterOK {
			return true
		}
		idx = start + 1
	}
}

func isHostChar(c byte) bool {
	return c == '-' || c == '.' ||
		(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || (c >= '0' && c <= '9')
}

// URLsInText extracts absolute http/https URLs from free text, in order of
// appearance, with trailing sentence punctuation trimmed. It is how the
// simulated client and the cache-hint builder discover the URLs a script
// body or rule fragment references.
func URLsInText(text string) []string {
	var urls []string
	i := 0
	for i < len(text) {
		j := indexURLStart(text[i:])
		if j < 0 {
			break
		}
		start := i + j
		end := start
		for end < len(text) && isURLChar(text[end]) {
			end++
		}
		urls = append(urls, strings.TrimRight(text[start:end], ".,;"))
		i = end
	}
	return urls
}

func indexURLStart(s string) int {
	h := strings.Index(s, "http://")
	hs := strings.Index(s, "https://")
	switch {
	case h < 0:
		return hs
	case hs < 0:
		return h
	case h < hs:
		return h
	default:
		return hs
	}
}

func isURLChar(c byte) bool {
	switch {
	case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		return true
	}
	return strings.IndexByte("-._~:/?#[]@!$&()*+,;=%", c) >= 0
}

// HostsInText returns all distinct hostnames mentioned in free text, in
// first-seen order, lower-cased. Dotted names inside URL paths (e.g. the
// "x.js" of "http://host/x.js") are excluded: a match directly preceded by a
// single "/" is a path component, while "//" marks an authority and is kept.
func HostsInText(text string) []string {
	seen := make(map[string]bool)
	var hosts []string
	for _, loc := range hostInTextRe.FindAllStringIndex(text, -1) {
		start, end := loc[0], loc[1]
		if start >= 1 && text[start-1] == '/' && (start < 2 || text[start-2] != '/') {
			continue // path component, not an authority
		}
		h := strings.ToLower(text[start:end])
		if seen[h] {
			continue
		}
		seen[h] = true
		hosts = append(hosts, h)
	}
	return hosts
}
