package faultinject_test

// Guard chaos: kill an alternate provider mid-run and assert the guard loop
// end to end — population-level reports trip the provider's breaker within a
// bounded number of reports, every user (reporters and non-reporters alike)
// is bulk-rolled-back to the default page, no new user is activated onto the
// dead provider while the breaker is open, re-admission happens only through
// half-open canaries, and an injected rewrite panic serves the unmodified
// page instead of a 500. Run with `make chaos` (go test -race -run Chaos).

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"oak"
	"oak/internal/rules"
)

// chaosHost is one logical provider: an httptest server whose latency and
// liveness switch atomically mid-run.
type chaosHost struct {
	ts      *httptest.Server
	delayMs atomic.Int64
	dead    atomic.Bool
}

func newChaosHost(t *testing.T, delay time.Duration) *chaosHost {
	t.Helper()
	h := &chaosHost{}
	h.delayMs.Store(int64(delay / time.Millisecond))
	h.ts = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		time.Sleep(time.Duration(h.delayMs.Load()) * time.Millisecond)
		if h.dead.Load() {
			http.Error(w, "provider down", http.StatusInternalServerError)
			return
		}
		_, _ = w.Write(make([]byte, 512))
	}))
	t.Cleanup(h.ts.Close)
	return h
}

func (h *chaosHost) addr(t *testing.T) string {
	t.Helper()
	u, err := url.Parse(h.ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return u.Host
}

const guardChaosPage = `<html>
<script src="http://s1.com/jquery.js"></script>
<img src="http://a.example/a.png">
<img src="http://b.example/b.png">
<img src="http://c.example/c.png">
</html>`

// guardChaosClient builds a client whose hosts resolve to the per-provider
// chaos servers.
func guardChaosClient(user string, seed int64, hosts map[string]string) *oak.Client {
	return &oak.Client{
		UserID: user,
		Resolve: func(host string) (string, bool) {
			addr, ok := hosts[host]
			return addr, ok
		},
		ObjectTimeout: 2 * time.Second,
		Retry:         oak.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 5 * time.Millisecond},
		Seed:          seed,
	}
}

// pageAs fetches path from the origin as the given user and returns the body.
func pageAs(t *testing.T, originURL, user string) string {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, originURL+"/index.html", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.AddCookie(&http.Cookie{Name: oak.CookieName, Value: user})
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("page as %s: status %d", user, resp.StatusCode)
	}
	return string(body)
}

func TestChaosGuardKillsAlternateMidRun(t *testing.T) {
	// Logical providers. s1.com is the chronically slow default, s2.net the
	// fast alternate that dies mid-run; bystanders have staggered delays so
	// the MAD criterion has spread to work with.
	s1 := newChaosHost(t, 60*time.Millisecond)
	s2 := newChaosHost(t, 5*time.Millisecond)
	bystA := newChaosHost(t, 5*time.Millisecond)
	bystB := newChaosHost(t, 10*time.Millisecond)
	bystC := newChaosHost(t, 15*time.Millisecond)
	hosts := map[string]string{
		"s1.com":    s1.addr(t),
		"s2.net":    s2.addr(t),
		"a.example": bystA.addr(t),
		"b.example": bystB.addr(t),
		"c.example": bystC.addr(t),
	}

	engine, err := oak.NewEngine([]*oak.Rule{chaosRule(t)},
		oak.WithGuard(oak.GuardConfig{
			TripThreshold:    3,
			OpenFor:          150 * time.Millisecond,
			HalfOpenCanaries: 1,
			CloseAfter:       1,
			PanicThreshold:   2,
		}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	server := oak.NewServer(engine)
	server.SetPage("/index.html", guardChaosPage)
	origin := httptest.NewServer(server)
	defer origin.Close()

	users := []string{"u0", "u1", "u2", "u3", "u4", "u5"}
	load := func(user string, seed int64) {
		t.Helper()
		c := guardChaosClient(user, seed, hosts)
		if _, _, err := c.LoadAndReport(origin.URL, "/index.html"); err != nil {
			t.Fatalf("load as %s: %v", user, err)
		}
	}

	// Phase 1 — activate: every user suffers the slow default and is moved
	// onto the s2.net alternate.
	for i, u := range users {
		load(u, int64(i+1))
		if body := pageAs(t, origin.URL, u); !strings.Contains(body, "s2.net") {
			t.Fatalf("phase 1: %s not activated onto s2.net:\n%s", u, body)
		}
	}

	// Phase 2 — kill the alternate. Users keep browsing; their reports show
	// s2.net failing and must trip its breaker within a bounded number of
	// reports.
	s2.dead.Store(true)
	s2.delayMs.Store(25)
	const reportBudget = 8
	tripped := -1
	for i := 0; i < reportBudget; i++ {
		load(users[i%len(users)], int64(100+i))
		if breakers := engine.OpenBreakers(); len(breakers) == 1 && breakers[0] == "s2.net" {
			tripped = i + 1
			break
		}
	}
	if tripped < 0 {
		t.Fatalf("breaker never tripped within %d reports of killing s2.net", reportBudget)
	}
	t.Logf("breaker tripped after %d post-kill reports", tripped)
	m := engine.Metrics()
	if m.BreakerTrips == 0 || m.BulkDeactivations == 0 {
		t.Fatalf("trip metrics: trips=%d bulk=%d, want both > 0", m.BreakerTrips, m.BulkDeactivations)
	}
	// Bulk rollback covers every user — including ones that never reported
	// after the kill.
	for _, u := range users {
		if body := pageAs(t, origin.URL, u); strings.Contains(body, "s2.net") {
			t.Errorf("phase 2: %s still on dead s2.net after trip", u)
		}
	}
	// No new user is activated onto the dead provider while the breaker is
	// open.
	load("late-joiner", 777)
	if body := pageAs(t, origin.URL, "late-joiner"); strings.Contains(body, "s2.net") {
		t.Error("phase 2: late joiner activated onto an open breaker's provider")
	}
	if engine.Metrics().ActivationsBlocked == 0 {
		t.Error("phase 2: ActivationsBlocked = 0, want > 0")
	}

	// Phase 3 — revive and re-admit. After the cool-down the first activation
	// is a canary; its good outcome closes the breaker; then activation flows
	// freely again.
	s2.dead.Store(false)
	s2.delayMs.Store(5)
	time.Sleep(200 * time.Millisecond) // past OpenFor

	load("canary-user", 888)
	if engine.Metrics().CanaryActivations == 0 {
		t.Fatal("phase 3: no canary activation after cool-down")
	}
	if body := pageAs(t, origin.URL, "canary-user"); !strings.Contains(body, "s2.net") {
		t.Fatal("phase 3: canary user not activated")
	}
	// The canary browses the rewritten page: the healthy alternate outcome
	// closes the breaker. (OpenBreakers is already empty here — half-open is
	// not open — so watch the close counter.)
	deadline := time.Now().Add(3 * time.Second)
	for i := 0; engine.Metrics().BreakerCloses == 0; i++ {
		if time.Now().After(deadline) {
			t.Fatal("phase 3: breaker never closed after good canary outcomes")
		}
		load("canary-user", int64(900+i))
	}
	if got := engine.OpenBreakers(); len(got) != 0 {
		t.Errorf("phase 3: OpenBreakers = %v after close", got)
	}
	load("post-recovery-user", 999)
	if body := pageAs(t, origin.URL, "post-recovery-user"); !strings.Contains(body, "s2.net") {
		t.Error("phase 3: activation still blocked after breaker closed")
	}

	// Phase 4 — rewrite panic isolation: a poisoned rule serves the
	// unmodified page (HTTP 200), never a 500, and repeated panics quarantine
	// the rule.
	rules.SetApplyFailpoint(func(ruleID string) bool { return ruleID == "jquery" })
	defer rules.SetApplyFailpoint(nil)
	for i := 0; i < 2; i++ {
		body := pageAs(t, origin.URL, "canary-user") // asserts status 200
		if !strings.Contains(body, "s1.com") || strings.Contains(body, "s2.net") {
			t.Fatalf("phase 4: panicking rewrite did not serve the unmodified page:\n%s", body)
		}
	}
	if engine.Metrics().RewritePanics == 0 {
		t.Error("phase 4: RewritePanics = 0, want > 0")
	}
	st, ok := engine.GuardStatus()
	if !ok {
		t.Fatal("GuardStatus not ok")
	}
	if len(st.QuarantinedRules) != 1 || st.QuarantinedRules[0] != "jquery" {
		t.Errorf("phase 4: QuarantinedRules = %v, want [jquery]", st.QuarantinedRules)
	}
	// With the rule quarantined the failpoint no longer fires (the rule is
	// skipped entirely once its activations roll back).
	rules.SetApplyFailpoint(nil)
	deadline = time.Now().Add(2 * time.Second)
	for {
		if body := pageAs(t, origin.URL, "canary-user"); !strings.Contains(body, "s2.net") {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("phase 4: quarantined rule's activations never rolled back")
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestChaosProberTripsDeadProvider drives the active prober against a dead
// alternate: with no reports at all, probe failures through the normal client
// transport trip the provider's breaker.
func TestChaosProberTripsDeadProvider(t *testing.T) {
	s2 := newChaosHost(t, time.Millisecond)
	s2.dead.Store(true)

	engine, err := oak.NewEngine([]*oak.Rule{chaosRule(t)},
		oak.WithGuard(oak.GuardConfig{TripThreshold: 2}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()

	addr := s2.addr(t)
	prober := &oak.Prober{
		Targets:  engine.AlternateProviders,
		Report:   engine.ObserveProviderOutcome,
		Interval: 10 * time.Millisecond,
		Resolve: func(host string) (string, bool) {
			if host == "s2.net" {
				return addr, true
			}
			return "", false
		},
	}
	prober.Start()
	defer prober.Stop()

	deadline := time.Now().Add(5 * time.Second)
	for {
		if breakers := engine.OpenBreakers(); len(breakers) == 1 && breakers[0] == "s2.net" {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("prober never tripped the dead provider; breakers = %v, metrics = %+v",
				engine.OpenBreakers(), engine.Metrics())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if engine.Metrics().BreakerTrips == 0 {
		t.Error("BreakerTrips = 0 after prober trip")
	}
	// A user who violates onto the probed-dead provider is not activated.
	res, err := engine.HandleReport(mustReport(t, fmt.Sprintf(`{"userId":%q,"page":"/","entries":[
	  {"url":"http://s1.com/jquery.js","serverAddr":"ip-s1","sizeBytes":1024,"durationMillis":2000},
	  {"url":"http://a.example/a.png","serverAddr":"ip-a","sizeBytes":1024,"durationMillis":100},
	  {"url":"http://b.example/b.png","serverAddr":"ip-b","sizeBytes":1024,"durationMillis":110},
	  {"url":"http://c.example/c.png","serverAddr":"ip-c","sizeBytes":1024,"durationMillis":95}
	]}`, "prober-victim")))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Changes) != 0 {
		t.Errorf("user activated onto prober-tripped provider: %+v", res.Changes)
	}
}

func mustReport(t *testing.T, raw string) *oak.Report {
	t.Helper()
	rep, err := oak.UnmarshalReport([]byte(raw))
	if err != nil {
		t.Fatal(err)
	}
	return rep
}
