package faultinject_test

// Chaos tests: drive the full Oak loop — client page loads and report
// submissions over a fault-injecting transport, into an origin server whose
// engine persists snapshots that get corrupted mid-run — and assert the
// system degrades instead of breaking: the server stays available, page
// delivery and ingest never deadlock, shed reports get truthful 503s, and a
// reboot over a corrupted snapshot recovers the last good state from the
// rotating backup. Run them with `make chaos` (go test -race -run Chaos).

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/url"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"oak"
	"oak/internal/core"
	"oak/internal/faultinject"
)

// chaosRule is a jquery-style swap rule so the engine has something to
// learn; the chaos assertions are about survival, not rule semantics.
func chaosRule(t *testing.T) *oak.Rule {
	t.Helper()
	rs, err := oak.ParseRulesJSON([]byte(`[{
		"id":"jquery","type":2,
		"default":"<script src=\"http://s1.com/jquery.js\"></script>",
		"alternatives":["<script src=\"http://s2.net/jquery.js\"></script>"],
		"scope":"*","ttlMillis":0
	}]`))
	if err != nil {
		t.Fatal(err)
	}
	return rs[0]
}

const chaosPage = `<html>
<script src="http://s1.com/jquery.js"></script>
<img src="http://a.example/a.png">
<img src="http://b.example/b.png">
<img src="http://c.example/c.png">
</html>`

// resolveTo maps every markup host to one test server.
func resolveTo(t *testing.T, ts *httptest.Server) oak.HostResolver {
	t.Helper()
	u, err := url.Parse(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	return func(string) (string, bool) { return u.Host, true }
}

// TestChaosEndToEndSurvivesFaultsAndCorruption is the headline chaos run:
// 10% injected transport errors, 5% truncated bodies, a snapshot corrupted
// mid-run — the loop must complete (no deadlock), most page loads must
// succeed (client retries + partial reports), user state must survive into
// reports, and a reboot must recover the last good snapshot from the
// backup.
func TestChaosEndToEndSurvivesFaultsAndCorruption(t *testing.T) {
	content := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_, _ = w.Write(make([]byte, 2048))
	}))
	defer content.Close()

	engine, err := oak.NewEngine([]*oak.Rule{chaosRule(t)},
		oak.WithIngestPipeline(oak.IngestConfig{Workers: 2, QueueLen: 16}),
		oak.WithLoadShedding(oak.ShedPolicy{MaxWait: 20 * time.Millisecond}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	server := oak.NewServer(engine)
	server.SetPage("/index.html", chaosPage)
	origin := httptest.NewServer(server)
	defer origin.Close()

	faulty := &faultinject.Transport{
		Seed:         1234,
		ErrorRate:    0.10,
		TruncateRate: 0.05,
	}
	statePath := filepath.Join(t.TempDir(), "oak-state.json")

	const loads = 40
	var succeeded, failedEntries int
	var usersAtFirstSave int
	for i := 0; i < loads; i++ {
		c := &oak.Client{
			UserID:        fmt.Sprintf("chaos-user-%d", i%8),
			Resolve:       resolveTo(t, content),
			HTTP:          &http.Client{Transport: faulty, Timeout: 10 * time.Second},
			ObjectTimeout: 2 * time.Second,
			Retry:         oak.RetryPolicy{MaxAttempts: 3, BaseDelay: time.Millisecond, MaxDelay: 10 * time.Millisecond},
			Seed:          int64(i + 1),
		}
		res, _, err := c.LoadAndReport(origin.URL, "/index.html")
		if err == nil {
			succeeded++
			failedEntries += res.Report.FailedCount()
		}

		switch i {
		case 19:
			// First snapshot of what the engine has learned so far.
			if err := engine.SaveStateFile(statePath); err != nil {
				t.Fatalf("mid-run save: %v", err)
			}
			usersAtFirstSave = engine.Users()
		case 29:
			// Second save rotates the first into the backup; then the primary
			// is corrupted, as a disk fault would.
			if err := engine.SaveStateFile(statePath); err != nil {
				t.Fatalf("second save: %v", err)
			}
			if err := faultinject.CorruptFile(statePath, 99, faultinject.FlipBytes); err != nil {
				t.Fatalf("corrupt state: %v", err)
			}
		}
	}

	if succeeded < loads/2 {
		t.Errorf("only %d/%d page loads succeeded under 10%%/5%% faults", succeeded, loads)
	}
	st := faulty.Stats()
	if st.Errors == 0 || st.Truncated == 0 {
		t.Errorf("faults not exercised: %+v", st)
	}
	if failedEntries == 0 {
		t.Error("no partial reports seen: injected faults should surface as Failed entries")
	}
	if engine.Users() == 0 {
		t.Fatal("no user state learned during the chaos run")
	}
	if usersAtFirstSave == 0 {
		t.Fatal("no users at first save; chaos seed starved ingest entirely")
	}

	// Reboot over the corrupted primary: state must come back from the
	// rotating backup, not vanish and not abort boot.
	if err := engine.Close(); err != nil {
		t.Fatal(err)
	}
	rebooted, err := oak.NewEngine([]*oak.Rule{chaosRule(t)})
	if err != nil {
		t.Fatal(err)
	}
	src, err := rebooted.LoadStateFile(statePath)
	if err != nil {
		t.Fatalf("reboot over corrupted snapshot: %v", err)
	}
	if src != oak.StateBackup {
		t.Errorf("state source = %q, want backup (primary was corrupted)", src)
	}
	if got := rebooted.Users(); got != usersAtFirstSave {
		t.Errorf("recovered %d users, want %d (the backup snapshot)", got, usersAtFirstSave)
	}
	if rebooted.StateRecoveries() != 1 {
		t.Errorf("StateRecoveries = %d, want 1", rebooted.StateRecoveries())
	}
}

// TestChaosShedsUnderSaturationWhilePagesServe wedges the single ingest
// worker and fills the queue, then asserts report ingest sheds with a
// truthful 503 + Retry-After while page delivery — the availability
// surface — keeps answering, including for the wedged user via the rewrite
// budget.
func TestChaosShedsUnderSaturationWhilePagesServe(t *testing.T) {
	entered := make(chan struct{})
	release := make(chan struct{})
	fetcher := core.ScriptFetcherFunc(func(string) (string, error) {
		close(entered)
		<-release
		return "", nil
	})
	loader, err := oak.ParseRulesJSON([]byte(`[{
		"id":"loader","type":1,
		"default":"<script src=\"http://lib.example/loader.js\"></script>",
		"scope":"*","ttlMillis":0
	}]`))
	if err != nil {
		t.Fatal(err)
	}
	engine, err := oak.NewEngine(loader,
		oak.WithScriptFetcher(fetcher),
		oak.WithIngestPipeline(oak.IngestConfig{Workers: 1, QueueLen: 1}),
		oak.WithLoadShedding(oak.ShedPolicy{MaxWait: 5 * time.Millisecond, RetryAfter: 3 * time.Second}),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer engine.Close()
	defer close(release)

	server := oak.NewServer(engine, oak.WithRewriteBudget(50*time.Millisecond))
	server.SetPage("/index.html", "<html>alive</html>")
	origin := httptest.NewServer(server)
	defer origin.Close()

	// Wedge the worker with a report that requires a script fetch, then fill
	// the one-slot queue behind it.
	tier3 := `{"userId":"wedged","page":"/index.html","entries":[
	  {"url":"http://lib.example/loader.js","serverAddr":"ip-lib","sizeBytes":1024,"durationMillis":95,"kind":"script"},
	  {"url":"http://evil.example/p.png","serverAddr":"ip-evil","sizeBytes":1024,"durationMillis":2000},
	  {"url":"http://a.example/a.png","serverAddr":"ip-a","sizeBytes":1024,"durationMillis":100},
	  {"url":"http://b.example/b.png","serverAddr":"ip-b","sizeBytes":1024,"durationMillis":110}
	]}`
	filler := strings.Replace(tier3, "wedged", "filler", 1)
	blockRep, err := oak.UnmarshalReport([]byte(tier3))
	if err != nil {
		t.Fatal(err)
	}
	fillRep, err := oak.UnmarshalReport([]byte(filler))
	if err != nil {
		t.Fatal(err)
	}
	go func() { _, _ = engine.HandleReport(blockRep) }()
	<-entered
	go func() { _, _ = engine.HandleReport(fillRep) }()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if depth, _ := engine.IngestQueue(); depth == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("queue never saturated")
		}
		time.Sleep(time.Millisecond)
	}

	// Ingest sheds with the truth: 503 and the policy's Retry-After.
	resp, err := http.Post(origin.URL+oak.ReportPath, "application/json", strings.NewReader(filler))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("saturated ingest status = %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "3" {
		t.Errorf("Retry-After = %q, want \"3\"", got)
	}

	// A client that honours Retry-After gives up with the server's last
	// answer, not a hang.
	c := &oak.Client{Seed: 5, Retry: oak.RetryPolicy{MaxAttempts: 2, BaseDelay: time.Millisecond, MaxDelay: 2 * time.Millisecond}}
	rep, err := oak.UnmarshalReport([]byte(filler))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.SubmitReport(origin.URL, rep); err == nil {
		t.Error("submit against saturated server: want error after retries")
	}

	// Page delivery keeps answering — for a fresh user instantly, and for
	// the wedged user within the rewrite budget (degraded, unmodified).
	for _, user := range []string{"fresh-user", "wedged"} {
		req, _ := http.NewRequest(http.MethodGet, origin.URL+"/index.html", nil)
		req.AddCookie(&http.Cookie{Name: oak.CookieName, Value: user})
		start := time.Now()
		presp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatalf("page GET as %s: %v", user, err)
		}
		body, _ := io.ReadAll(presp.Body)
		presp.Body.Close()
		if presp.StatusCode != http.StatusOK || !strings.Contains(string(body), "alive") {
			t.Errorf("page as %s: status %d body %q", user, presp.StatusCode, body)
		}
		if elapsed := time.Since(start); elapsed > 5*time.Second {
			t.Errorf("page as %s took %v: availability lost", user, elapsed)
		}
	}
	if server.PagesDegraded() == 0 {
		t.Error("wedged user's page should have been served degraded")
	}

	// Healthz reports degraded, not a hang, while saturated.
	hresp, err := http.Get(origin.URL + oak.HealthzPath)
	if err != nil {
		t.Fatal(err)
	}
	hbody, _ := io.ReadAll(hresp.Body)
	hresp.Body.Close()
	if !strings.Contains(string(hbody), "degraded") {
		t.Errorf("healthz while saturated = %s, want degraded", hbody)
	}
}

// TestChaosRebootLoop restarts an engine repeatedly under alternating
// snapshot damage and asserts boot always succeeds and state never falls
// back further than the last good save.
func TestChaosRebootLoop(t *testing.T) {
	statePath := filepath.Join(t.TempDir(), "oak-state.json")
	rule := chaosRule(t)

	report := func(user string) *oak.Report {
		rep, err := oak.UnmarshalReport([]byte(fmt.Sprintf(`{"userId":%q,"page":"/","entries":[
		  {"url":"http://s1.com/jquery.js","serverAddr":"ip-s1","sizeBytes":1024,"durationMillis":2000},
		  {"url":"http://a.example/a.png","serverAddr":"ip-a","sizeBytes":1024,"durationMillis":100},
		  {"url":"http://b.example/b.png","serverAddr":"ip-b","sizeBytes":1024,"durationMillis":110},
		  {"url":"http://c.example/c.png","serverAddr":"ip-c","sizeBytes":1024,"durationMillis":95}
		]}`, user)))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}

	modes := []faultinject.CorruptMode{faultinject.Truncate, faultinject.FlipBytes, faultinject.Empty}
	users := 0
	for round := 0; round < 6; round++ {
		engine, err := oak.NewEngine([]*oak.Rule{rule})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := engine.LoadStateFile(statePath); err != nil {
			t.Fatalf("round %d: boot failed: %v", round, err)
		}
		if got := engine.Users(); got != users {
			t.Fatalf("round %d: booted with %d users, want %d", round, got, users)
		}
		if _, err := engine.HandleReport(report(fmt.Sprintf("user-%d", round))); err != nil {
			t.Fatal(err)
		}
		if err := engine.SaveStateFile(statePath); err != nil {
			t.Fatal(err)
		}
		users = engine.Users()

		if round%2 == 1 {
			// Damage the primary a different way each time; the next boot
			// must recover from the backup (one round's learning lost).
			if err := faultinject.CorruptFile(statePath, int64(round), modes[round%len(modes)]); err != nil {
				t.Fatal(err)
			}
			users-- // the backup predates this round's report
		}
	}
}
