// Package faultinject provides deterministic fault injection for resilience
// testing: an http.RoundTripper wrapper that injects transport errors, added
// latency and truncated response bodies at seeded, reproducible rates, and a
// state-file corrupter that damages snapshots the way torn writes and disk
// faults do. The chaos tests drive the full Oak loop (client → origin →
// engine → persistence) through these faults and assert the system degrades
// instead of breaking: no deadlocks, no lost user state, truthful status
// codes.
// The scenario engine (internal/experiment, restart faults) reuses the
// corrupter to exercise the backup-recovery path inside scored end-to-end
// workloads.
//
// Everything is seeded: the same Seed produces the same fault sequence, so
// a chaos-test failure reproduces exactly.
package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sync"
	"time"
)

// ErrInjected is the transport error injected requests fail with. It is
// distinguishable from real network errors so tests can tell injected
// faults from genuine breakage.
var ErrInjected = errors.New("faultinject: injected transport error")

// Stats counts what a Transport has done, for asserting that faults were
// actually exercised.
type Stats struct {
	// Requests is how many requests passed through the transport.
	Requests uint64
	// Errors is how many were failed with ErrInjected.
	Errors uint64
	// Truncated is how many responses had their bodies cut short.
	Truncated uint64
	// Delayed is how many requests had latency injected.
	Delayed uint64
}

// Transport is an http.RoundTripper that injects faults in front of a real
// transport at seeded, deterministic rates. Safe for concurrent use; with a
// single in-flight request at a time the fault sequence is fully
// reproducible from the seed.
type Transport struct {
	// Base performs the real round trips; nil means http.DefaultTransport.
	Base http.RoundTripper
	// Seed makes the fault sequence deterministic; 0 seeds from the clock
	// (reproducibility lost).
	Seed int64
	// ErrorRate is the probability ([0,1]) a request fails with ErrInjected
	// before reaching the network.
	ErrorRate float64
	// TruncateRate is the probability a successful response's body is cut
	// short mid-read, the way a torn connection looks to the client.
	TruncateRate float64
	// LatencyRate is the probability a request is delayed by Latency before
	// being sent.
	LatencyRate float64
	// Latency is the injected delay.
	Latency time.Duration

	mu    sync.Mutex
	rng   *rand.Rand
	stats Stats
}

// roll draws one uniform [0,1) decision from the seeded stream.
func (t *Transport) roll() float64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.rng == nil {
		seed := t.Seed
		if seed == 0 {
			seed = time.Now().UnixNano()
		}
		t.rng = rand.New(rand.NewSource(seed))
	}
	return t.rng.Float64()
}

// RoundTrip implements http.RoundTripper: an error roll fails the request
// outright, a latency roll delays it, and a truncation roll lets the real
// response through with its body cut short so the reader sees an unexpected
// EOF mid-stream.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	t.mu.Lock()
	t.stats.Requests++
	t.mu.Unlock()

	if t.ErrorRate > 0 && t.roll() < t.ErrorRate {
		t.mu.Lock()
		t.stats.Errors++
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %s %s", ErrInjected, req.Method, req.URL)
	}
	if t.LatencyRate > 0 && t.Latency > 0 && t.roll() < t.LatencyRate {
		t.mu.Lock()
		t.stats.Delayed++
		t.mu.Unlock()
		timer := time.NewTimer(t.Latency)
		select {
		case <-timer.C:
		case <-req.Context().Done():
			timer.Stop()
			return nil, req.Context().Err()
		}
	}

	base := t.Base
	if base == nil {
		base = http.DefaultTransport
	}
	resp, err := base.RoundTrip(req)
	if err != nil {
		return nil, err
	}
	if t.TruncateRate > 0 && t.roll() < t.TruncateRate {
		t.mu.Lock()
		t.stats.Truncated++
		t.mu.Unlock()
		resp.Body = truncateBody(resp.Body)
	}
	return resp, nil
}

// Stats returns a copy of the transport's fault counters.
func (t *Transport) Stats() Stats {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.stats
}

// truncateBody reads the full body and replaces it with a reader that
// serves half the bytes and then fails with io.ErrUnexpectedEOF — what a
// connection torn mid-transfer looks like to io.ReadAll.
func truncateBody(body io.ReadCloser) io.ReadCloser {
	data, _ := io.ReadAll(body)
	_ = body.Close()
	return &tornReader{r: bytes.NewReader(data[:len(data)/2])}
}

// tornReader serves its buffer then fails, instead of reporting a clean EOF.
type tornReader struct {
	r *bytes.Reader
}

func (t *tornReader) Read(p []byte) (int, error) {
	n, err := t.r.Read(p)
	if err == io.EOF {
		return n, io.ErrUnexpectedEOF
	}
	return n, err
}

func (t *tornReader) Close() error { return nil }

// CorruptMode selects how CorruptFile damages a file.
type CorruptMode int

const (
	// Truncate cuts the file to half its length — a torn write.
	Truncate CorruptMode = iota
	// FlipBytes XORs a few bytes at seeded offsets — silent media
	// corruption.
	FlipBytes
	// Empty leaves a zero-byte file — a crash after create, before write.
	Empty
	// HolePunch zero-fills a seeded byte range in the middle of the file —
	// what a filesystem hole punch (or a lost write over an allocated
	// extent) looks like: the length is intact, a span of the content is
	// zeros.
	HolePunch
)

// String names the mode.
func (m CorruptMode) String() string {
	switch m {
	case Truncate:
		return "truncate"
	case FlipBytes:
		return "flip-bytes"
	case Empty:
		return "empty"
	case HolePunch:
		return "hole-punch"
	default:
		return "unknown"
	}
}

// CorruptFile damages the file at path in the given mode, deterministically
// under seed. It is the state-file half of the harness: chaos tests corrupt
// a snapshot mid-run and assert recovery from the rotating backup.
func CorruptFile(path string, seed int64, mode CorruptMode) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("faultinject: read %s: %w", path, err)
	}
	switch mode {
	case Truncate:
		data = data[:len(data)/2]
	case FlipBytes:
		if len(data) > 0 {
			rng := rand.New(rand.NewSource(seed))
			flips := 1 + len(data)/64
			for i := 0; i < flips; i++ {
				data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
			}
		}
	case Empty:
		data = nil
	case HolePunch:
		if len(data) > 0 {
			rng := rand.New(rand.NewSource(seed))
			// Zero a span of up to a quarter of the file at a seeded
			// offset in its back half, so leading magic survives and the
			// damage lands in content.
			n := 1 + rng.Intn(len(data)/4+1)
			off := len(data)/2 + rng.Intn(len(data)-len(data)/2)
			for i := 0; i < n && off+i < len(data); i++ {
				data[off+i] = 0
			}
		}
	default:
		return fmt.Errorf("faultinject: unknown corrupt mode %d", mode)
	}
	if err := os.WriteFile(path, data, 0o600); err != nil {
		return fmt.Errorf("faultinject: write %s: %w", path, err)
	}
	return nil
}
